package analyzers

import (
	"flag"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// MapOrder flags range-over-map loops whose body observably depends on
// iteration order: appending to an outer slice (without a later sort),
// writing output, sending on a channel, feeding a hash, or selecting a
// "best" key without a tie-break on the key. This is the class of the PR 4
// DeepestCommonParent bug, where an equal-depth tie was broken by map
// iteration order and leaked into Figure 9/11 output.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive consumption of map iteration in kernel/output packages\n\n" +
		"Every pipeline artifact must be a pure function of its inputs; Go map\n" +
		"iteration order is randomized, so anything ordered that is built while\n" +
		"ranging a map (slices that reach output, stream writes, channel sends,\n" +
		"hash feeds, arg-max selections with ties) must sort first or tie-break\n" +
		"on the key.",
	Run: runMapOrder,
}

var mapOrderScope = scopeFlag{expr: kernelScope}

func init() {
	MapOrder.Flags.Init("maporder", flag.ExitOnError)
	MapOrder.Flags.StringVar(&mapOrderScope.expr, "packages", mapOrderScope.expr,
		"regexp of package paths the analyzer applies to")
}

func runMapOrder(pass *analysis.Pass) (any, error) {
	if !mapOrderScope.match(pass.Pkg.Path()) {
		return nil, nil
	}
	rep := newReporter(pass, "maporder")
	for _, f := range sourceFiles(pass) {
		for _, body := range functionBodies(f) {
			checkMapOrderBody(pass, rep, body)
		}
	}
	return nil, nil
}

// functionBodies returns the body of every function declared in f —
// FuncDecls and FuncLits alike — so each body is analyzed exactly once as
// its own unit.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

// walkShallow walks n without descending into nested function literals,
// whose statements belong to a different execution context.
func walkShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit && m != n {
			return false
		}
		return fn(m)
	})
}

func checkMapOrderBody(pass *analysis.Pass, rep *reporter, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// sortedObjs collects every object that appears in the arguments of a
	// sort/slices call in this body, with the call position: an append
	// inside a map range is fine when the slice is deterministically
	// ordered before anyone reads it.
	type sortCall struct {
		obj types.Object
		pos token.Pos
	}
	var sorts []sortCall
	walkShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := calleeFunc(info, call); ok && fn.Pkg() != nil {
			if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
				for _, arg := range call.Args {
					ast.Inspect(arg, func(a ast.Node) bool {
						if id, ok := a.(*ast.Ident); ok {
							if obj := info.ObjectOf(id); obj != nil {
								sorts = append(sorts, sortCall{obj, call.Pos()})
							}
						}
						return true
					})
				}
			}
		}
		return true
	})
	sortedAfter := func(obj types.Object, pos token.Pos) bool {
		for _, s := range sorts {
			if s.obj == obj && s.pos > pos {
				return true
			}
		}
		return false
	}

	walkShallow(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, rep, rs, sortedAfter)
		return true
	})
}

func checkMapRange(pass *analysis.Pass, rep *reporter, rs *ast.RangeStmt, sortedAfter func(types.Object, token.Pos) bool) {
	info := pass.TypesInfo
	keyObj := identObject(info, rs.Key)

	// outer reports whether the identifier resolves to a variable declared
	// outside the range statement (whose state therefore survives the loop
	// in iteration order).
	outer := func(id *ast.Ident) (types.Object, bool) {
		obj := info.ObjectOf(id)
		if obj == nil || obj.Pos() == token.NoPos {
			return nil, false
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
			return nil, false
		}
		return obj, true
	}

	// ifStack tracks the conditions guarding the node under inspection so
	// selection assignments can be checked for a key tie-break.
	var ifStack []*ast.IfStmt
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return
		case *ast.IfStmt:
			ifStack = append(ifStack, n)
			visit(n.Body)
			if n.Else != nil {
				visit(n.Else)
			}
			ifStack = ifStack[:len(ifStack)-1]
			if n.Init != nil {
				visit(n.Init)
			}
			return
		case *ast.SendStmt:
			rep.reportNode(n, "channel send inside range over map: delivery order depends on map iteration order")
		case *ast.AssignStmt:
			checkSelectionAssign(rep, n, keyObj, outer, ifStack, info)
		case *ast.CallExpr:
			checkMapRangeCall(rep, n, rs, outer, sortedAfter, info)
		}
		// Generic descent (skipping the cases handled above that return).
		children(n, visit)
	}
	visit(rs.Body)
}

// children invokes visit on each direct child node of n.
func children(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m != nil {
			visit(m)
		}
		return false
	})
}

// checkMapRangeCall flags appends to outer slices, output writes, and hash
// feeds inside a map-range body.
func checkMapRangeCall(rep *reporter, call *ast.CallExpr, rs *ast.RangeStmt, outer func(*ast.Ident) (types.Object, bool), sortedAfter func(types.Object, token.Pos) bool, info *types.Info) {
	// append(dst, ...) where dst outlives the loop.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if b, ok := info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
			if root := rootIdent(call.Args[0]); root != nil {
				if obj, isOuter := outer(root); isOuter && !sortedAfter(obj, rs.End()) {
					rep.reportNode(call, "append to %s inside range over map builds an iteration-ordered slice: sort it before it is read, or iterate sorted keys", root.Name)
				}
			}
		}
		return
	}
	fn, ok := calleeFunc(info, call)
	if !ok || fn.Pkg() == nil {
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
		rep.reportNode(call, "%s.%s inside range over map writes in map iteration order", path, name)
	case strings.HasPrefix(path, "crypto/") || path == "hash" || strings.HasPrefix(path, "hash/"):
		rep.reportNode(call, "hash feed (%s.%s) inside range over map: the digest depends on map iteration order", path, name)
	case fn.Type() != nil && isWriterMethod(fn):
		rep.reportNode(call, "%s.%s inside range over map writes in map iteration order", recvTypeName(fn), name)
	}
}

// isWriterMethod reports whether fn is a method whose name marks it as an
// ordered output or hash sink.
func isWriterMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		return true
	}
	return false
}

func recvTypeName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// checkSelectionAssign flags `best = key`-style updates that are guarded
// only by comparisons on derived values: when two keys compare equal on the
// derived value, the winner is whichever the map yields first. A comparison
// with the key itself anywhere in the guarding conditions is the
// deterministic tie-break (the post-PR 4 DeepestCommonParent shape).
func checkSelectionAssign(rep *reporter, as *ast.AssignStmt, keyObj types.Object, outer func(*ast.Ident) (types.Object, bool), ifStack []*ast.IfStmt, info *types.Info) {
	if keyObj == nil {
		return
	}
	usesKey := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == keyObj {
				found = true
			}
			return !found
		})
		return found
	}
	assignsKeyToOuter := false
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue // index/selector targets (m[k]=v, s.f=...) are keyed, not ordered
		}
		if _, isOuter := outer(id); !isOuter {
			continue
		}
		rhs := as.Rhs[0]
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}
		// append(dst, ...key...) grows a slice rather than selecting a
		// winner; the append rule owns that case (with its sort-awareness).
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				continue
			}
		}
		if usesKey(rhs) {
			assignsKeyToOuter = true
		}
	}
	if !assignsKeyToOuter {
		return
	}
	// Look for a direct comparison against the key in any guarding
	// condition; `a < best` in the update guard is the tie-break that makes
	// the selection a pure function of the map's contents.
	for _, ifs := range ifStack {
		tieBreak := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				for _, side := range []ast.Expr{be.X, be.Y} {
					if id, ok := ast.Unparen(side).(*ast.Ident); ok && info.ObjectOf(id) == keyObj {
						tieBreak = true
					}
				}
			}
			return !tieBreak
		})
		if tieBreak {
			return
		}
	}
	rep.reportNode(as, "selection of map key %q without a tie-break on the key: on ties the winner depends on map iteration order (the PR 4 DeepestCommonParent bug)", keyObj.Name())
}

// calleeFunc resolves the called function or method, if statically known.
func calleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, ok := info.ObjectOf(fun).(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		fn, ok := info.ObjectOf(fun.Sel).(*types.Func)
		return fn, ok
	}
	return nil, false
}

// rootIdent returns the base identifier of expressions like x, x.f, x[i].
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// identObject resolves e to its object when e is a plain identifier.
func identObject(info *types.Info, e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
		return info.ObjectOf(id)
	}
	return nil
}
