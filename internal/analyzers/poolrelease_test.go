package analyzers_test

import (
	"testing"

	"parsample/internal/analyzers"
	"parsample/internal/analyzers/analyzertest"
)

// TestPoolRelease covers the release-before-join positive (direct and via
// a same-package helper), the deferred release with and without a join,
// the join-then-release negative, and a reasoned suppression.
func TestPoolRelease(t *testing.T) {
	analyzertest.Run(t, analyzers.PoolRelease, "poolrelease/arena")
}
