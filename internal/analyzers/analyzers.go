// Package analyzers is parsamplevet: a go/analysis suite that
// machine-enforces the repository's determinism, cancellation, and
// cache-identity invariants. Each invariant was bought with a real bug or a
// deliberate design decision in an earlier PR, and the persistent-artifact
// roadmap items turn violations from per-process bugs into durable cache
// corruption — so the conventions are enforced by a compiler-grade gate
// instead of review memory. DESIGN.md §9 documents each invariant and the
// recipe for adding a new analyzer.
//
// The suite:
//
//   - maporder: order-sensitive consumption of map iteration (append, send,
//     write, hash feed, or tie-blind selection) in kernel/output packages.
//   - ctxpoll: ...Context kernel entry points whose loops never poll
//     cancellation, and context.Context stored in struct fields.
//   - nondeterm: wall-clock, global rand, environment reads, and multi-way
//     selects inside kernel packages.
//   - fingerprint: run parameters leaking into the cache-identity hash.
//   - poolrelease: sync.Pool.Put reachable before spawned workers are
//     joined.
//
// Suppression: a finding is silenced by a directive on the flagged line or
// the line directly above it, with a mandatory reason:
//
//	//parsamplevet:ignore <name> <reason>
//	//lint:ignore parsamplevet/<name> <reason>
//
// The first form is native (and invisible to other linters); the second is
// the staticcheck-style spelling. A directive without a reason is itself a
// diagnostic.
package analyzers

import (
	"go/ast"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Suite returns the full parsamplevet analyzer set, in stable order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MapOrder,
		CtxPoll,
		NonDeterm,
		Fingerprint,
		PoolRelease,
	}
}

// kernelScope matches the packages whose outputs are part of the
// deterministic artifact contract: the compute kernels, the pipeline
// engine, and the figure/output assembly layers. internal/server,
// internal/faultinject and the cmd front ends are deliberately outside —
// they own wall-clock, environment, and operational nondeterminism.
const kernelScope = `(^|/)(expr|chordal|mcode|analysis|sampling|pipeline|graph|ontology|cliques|centrality|datasets|experiments|mpisim|api|parsample)$`

// scopeFlag compiles a packages-regexp flag value once per run.
type scopeFlag struct {
	expr string
	re   *regexp.Regexp
}

func (s *scopeFlag) match(path string) bool {
	if s.re == nil || s.re.String() != s.expr {
		s.re = regexp.MustCompile(s.expr)
	}
	return s.re.MatchString(path)
}

// isTestFile reports whether the file position name ends in _test.go.
// The determinism contract covers shipped code; tests are free to use
// clocks, environment, and unordered iteration.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	name := pass.Fset.File(f.FileStart).Name()
	return strings.HasSuffix(name, "_test.go")
}

// sourceFiles yields the non-test files of the package under analysis.
func sourceFiles(pass *analysis.Pass) []*ast.File {
	out := make([]*ast.File, 0, len(pass.Files))
	for _, f := range pass.Files {
		if !isTestFile(pass, f) {
			out = append(out, f)
		}
	}
	return out
}
