package analyzers_test

import (
	"testing"

	"parsample/internal/analyzers"
	"parsample/internal/analyzers/analyzertest"
)

// TestNonDeterm covers wall-clock reads, the global rand source versus the
// explicitly seeded generator, environment reads, racy multi-way selects
// versus the cancellation-receive shape, and a reasoned suppression.
func TestNonDeterm(t *testing.T) {
	analyzertest.Run(t, analyzers.NonDeterm, "nondeterm/sampling")
}
