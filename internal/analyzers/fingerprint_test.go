package analyzers_test

import (
	"testing"

	"parsample/internal/analyzers"
	"parsample/internal/analyzers/analyzertest"
)

// TestFingerprint covers whole-struct leaks (run-param block and
// classified field), the clear-before-hash and json:"-" negatives,
// delegation through a same-package hashing helper, a direct selector
// chain into the digest, and a suppressed legacy fingerprint.
func TestFingerprint(t *testing.T) {
	analyzertest.Run(t, analyzers.Fingerprint, "fingerprint/api")
}
