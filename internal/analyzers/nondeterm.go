package analyzers

import (
	"flag"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// NonDeterm flags ambient nondeterminism inside kernel packages: wall-clock
// reads, the global math/rand source, environment reads, and multi-way
// selects among ready channels. Randomness must flow through the SplitMix64
// purpose-tagged seed streams (PR 3's determinism contract) and wall-clock
// belongs only to the serving/loadgen/mpisim-virtual-clock layers — a
// kernel that consults the clock or ambient state produces artifacts that
// are no longer a pure function of their inputs, which the persistent
// artifact tier would then cache forever.
var NonDeterm = &analysis.Analyzer{
	Name: "nondeterm",
	Doc: "flag wall-clock, global rand, env reads and racy selects in kernel packages\n\n" +
		"Replicated-sampling results are only comparable because runs are\n" +
		"bit-reproducible: seeds are explicit (SplitMix64 purpose tags), inputs\n" +
		"are explicit, and nothing reads the clock or the environment inside a\n" +
		"kernel.",
	Run: runNonDeterm,
}

// nonDetermScope is kernelScope minus mpisim and transport: their clocks
// are native (mpisim's virtual clocks model time; transport measures real
// wall clocks next to the modeled seconds by design), so time-shaped code
// belongs there; the serving/ops layers are outside kernelScope to begin
// with. comm is in scope: it owns the clock *arithmetic* both backends
// share, which must itself never read the machine clock.
var nonDetermScope = scopeFlag{expr: `(^|/)(expr|chordal|mcode|analysis|sampling|pipeline|graph|ontology|cliques|centrality|datasets|experiments|api|comm|parsample)$`}

func init() {
	NonDeterm.Flags.Init("nondeterm", flag.ExitOnError)
	NonDeterm.Flags.StringVar(&nonDetermScope.expr, "packages", nonDetermScope.expr,
		"regexp of package paths the analyzer applies to")
}

// randConstructors are the math/rand functions that build an explicitly
// seeded generator — the only approved way randomness enters a kernel.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func runNonDeterm(pass *analysis.Pass) (any, error) {
	if !nonDetermScope.match(pass.Pkg.Path()) {
		return nil, nil
	}
	rep := newReporter(pass, "nondeterm")
	for _, f := range sourceFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNonDetermCall(pass, rep, n)
			case *ast.SelectStmt:
				checkSelect(pass, rep, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkNonDetermCall(pass *analysis.Pass, rep *reporter, call *ast.CallExpr) {
	fn, ok := calleeFunc(pass.TypesInfo, call)
	if !ok || fn.Pkg() == nil || !isPkgLevelFunc(fn) {
		// Methods are fine: draws on a *rand.Rand built from an explicit
		// seed are exactly the approved pattern.
		return
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch path {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			rep.reportNode(call, "time.%s in kernel code: wall-clock belongs to server/loadgen/mpisim virtual clocks, never to artifact computation", name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] {
			rep.reportNode(call, "%s.%s draws from the global rand source: derive a generator from a SplitMix64 purpose-tagged seed instead", path, name)
		}
	case "os":
		if name == "Getenv" || name == "LookupEnv" || name == "Environ" {
			rep.reportNode(call, "os.%s in kernel code: kernel behavior must be a function of explicit inputs, not the environment", name)
		}
	}
}

// isPkgLevelFunc reports whether fn is a package-level function (not a
// method).
func isPkgLevelFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// checkSelect flags selects that choose among two or more ready non-
// cancellation channels: the runtime picks uniformly at random. A select
// whose extra cases are ctx.Done()-style cancellation receives is the
// approved shape (that nondeterminism only decides *when* work stops, never
// what it computes).
func checkSelect(pass *analysis.Pass, rep *reporter, sel *ast.SelectStmt) {
	racy := 0
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue // default case
		}
		if !isCancellationComm(pass, cc.Comm) {
			racy++
		}
	}
	if racy >= 2 {
		rep.reportNode(sel, "select among %d ready channels resolves nondeterministically: kernel event order must be explicit (deliver by deterministic stamp, as mpisim.AnyRecv does)", racy)
	}
}

// isCancellationComm reports whether the comm statement is a receive from a
// context's Done channel.
func isCancellationComm(pass *analysis.Pass, comm ast.Stmt) bool {
	var recv ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		recv = s.Rhs[0]
	default:
		return false
	}
	ue, ok := ast.Unparen(recv).(*ast.UnaryExpr)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(ue.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return isContextExpr(pass.TypesInfo, sel.X)
}
