package analyzers

import (
	"flag"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Fingerprint enforces the PR 6 cache-identity rule: api.Request.Fingerprint
// hashes data identity (the network source and inline ontology) and never
// run parameters (thresholds, p-cuts, precision, workers, deadlines). A run
// parameter that leaks into the fingerprint splits the cache namespace —
// requests that should share artifacts stop sharing, batched sweeps stop
// coalescing — and once the persistent artifact tier lands, the wrong key
// is corruption on disk, not just a cold cache.
//
// The analyzer tracks which struct fields reach the hash inside the
// fingerprint functions' call graph: every value that flows into a hash
// sink (json.Marshal feeding the digest, hash.Hash.Write, crypto Sum
// functions) is walked field-by-field, and any field classified as a run
// parameter is reported unless the function explicitly clears it first
// (the `net.Correlation = nil` idiom).
var Fingerprint = &analysis.Analyzer{
	Name: "fingerprint",
	Doc: "flag run parameters leaking into the request fingerprint hash\n\n" +
		"Cache identity is data identity: the fingerprint must be a function of\n" +
		"what is computed on, never of how it is computed (DESIGN.md §6, §7).",
	Run: runFingerprint,
}

var (
	fingerprintScope = scopeFlag{expr: `(^|/)api$`}
	fingerprintFuncs = scopeFlag{expr: `^Fingerprint$`}
	// fingerprintParams classifies run-parameter fields as
	// "Type:field;Type:*;..." — `*` marks every field of the type.
	fingerprintParams = "CorrelationSpec:*;FilterSpec:*;ClusterSpec:*;ScoreSpec:Enabled;OutputSpec:*;Request:DeadlineMillis"
)

func init() {
	Fingerprint.Flags.Init("fingerprint", flag.ExitOnError)
	Fingerprint.Flags.StringVar(&fingerprintScope.expr, "packages", fingerprintScope.expr,
		"regexp of package paths the analyzer applies to")
	Fingerprint.Flags.StringVar(&fingerprintFuncs.expr, "funcs", fingerprintFuncs.expr,
		"regexp of function names that compute cache identity")
	Fingerprint.Flags.StringVar(&fingerprintParams, "runparams", fingerprintParams,
		"run-parameter classification, Type:field;Type:*;...")
}

// paramSet answers "is (typeName, field) a run parameter?".
type paramSet map[string]map[string]bool

func parseParamSet(s string) paramSet {
	ps := paramSet{}
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		typ, field, ok := strings.Cut(entry, ":")
		if !ok {
			continue
		}
		if ps[typ] == nil {
			ps[typ] = map[string]bool{}
		}
		ps[typ][field] = true
	}
	return ps
}

func (ps paramSet) field(typeName, field string) bool {
	m := ps[typeName]
	return m != nil && (m[field] || m["*"])
}

func (ps paramSet) wholeType(typeName string) bool {
	m := ps[typeName]
	return m != nil && m["*"]
}

func runFingerprint(pass *analysis.Pass) (any, error) {
	if !fingerprintScope.match(pass.Pkg.Path()) {
		return nil, nil
	}
	rep := newReporter(pass, "fingerprint")
	params := parseParamSet(fingerprintParams)
	hashers := hashingFuncs(pass)

	for _, f := range sourceFiles(pass) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fingerprintFuncs.match(fd.Name.Name) {
				continue
			}
			checkFingerprintFunc(pass, rep, params, hashers, fd)
		}
	}
	return nil, nil
}

// isDirectSink reports whether the call feeds bytes into a digest: a
// json/gob encode that the fingerprint hashes, a crypto/hash package
// function, or a Write-family method on a crypto/hash type.
func isDirectSink(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeFunc(info, call)
	if !ok || fn.Pkg() == nil {
		return false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "encoding/json" && strings.HasPrefix(name, "Marshal"):
		return true
	case strings.HasPrefix(path, "crypto/") || path == "hash" || strings.HasPrefix(path, "hash/"):
		return true
	}
	return false
}

// hashingFuncs computes the same-package functions that (transitively)
// contain a direct hash sink, so a fingerprint that delegates its hashing
// to a helper is still tracked at every call site.
func hashingFuncs(pass *analysis.Pass) map[*types.Func]bool {
	info := pass.TypesInfo
	bodies := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.ObjectOf(fd.Name).(*types.Func); ok {
					bodies[fn] = fd
				}
			}
		}
	}
	hashing := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for fn, fd := range bodies {
			if hashing[fn] {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isDirectSink(info, call) {
					found = true
					return false
				}
				if callee, ok := calleeFunc(info, call); ok && hashing[callee] {
					found = true
					return false
				}
				return true
			})
			if found {
				hashing[fn] = true
				changed = true
			}
		}
	}
	return hashing
}

func checkFingerprintFunc(pass *analysis.Pass, rep *reporter, params paramSet, hashers map[*types.Func]bool, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// cleared records explicit zeroing assignments `x.Field = nil/0/""`:
	// the approved way to carry a mixed struct into the hash is to clear
	// its run-param fields first (keyed by owner type so the walk below can
	// skip them). Lexical position gates "cleared before hashed".
	type clearedField struct {
		owner, field string
		pos          token.Pos
	}
	var cleared []clearedField
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok || !isZeroExpr(as.Rhs[i]) {
				continue
			}
			if owner := namedTypeName(info.TypeOf(sel.X)); owner != "" {
				cleared = append(cleared, clearedField{owner, sel.Sel.Name, as.Pos()})
			}
		}
		return true
	})
	isCleared := func(owner, field string, before token.Pos) bool {
		for _, c := range cleared {
			if c.owner == owner && c.field == field && c.pos < before {
				return true
			}
		}
		return false
	}

	reported := map[string]bool{}
	report := func(pos token.Pos, owner, field, why string) {
		key := owner + "." + field
		if reported[key] {
			return
		}
		reported[key] = true
		rep.reportf(pos, "fingerprint hashes run parameter %s.%s (%s): cache identity must cover data only — clear the field before hashing or move it to the artifact key", owner, field, why)
	}

	// walkType recursively checks every field of t reachable by the
	// encoder/hasher at the sink.
	var walkType func(t types.Type, pos token.Pos, seen map[*types.Named]bool)
	walkType = func(t types.Type, pos token.Pos, seen map[*types.Named]bool) {
		t = derefType(t)
		named, _ := t.(*types.Named)
		if named != nil {
			if seen[named] {
				return
			}
			seen[named] = true
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return
		}
		ownerName := ""
		if named != nil {
			ownerName = named.Obj().Name()
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if tag := reflect.StructTag(st.Tag(i)).Get("json"); strings.Split(tag, ",")[0] == "-" {
				continue // never marshaled
			}
			if ownerName != "" && isCleared(ownerName, f.Name(), pos) {
				continue
			}
			ft := derefType(f.Type())
			switch {
			case ownerName != "" && params.field(ownerName, f.Name()):
				report(pos, ownerName, f.Name(), "run parameter field")
			case namedTypeName(ft) != "" && params.wholeType(namedTypeName(ft)):
				report(pos, ownerName+orAnon(ownerName), f.Name(), "carries run-param struct "+namedTypeName(ft))
			default:
				walkType(ft, pos, seen)
			}
		}
	}

	// checkArgExpr also catches selector chains that name a run-param field
	// directly, e.g. h.Write(...r.Filter.Seed...).
	checkArgExpr := func(arg ast.Expr, pos token.Pos) {
		ast.Inspect(arg, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v, ok := info.ObjectOf(sel.Sel).(*types.Var)
			if !ok || !v.IsField() {
				return true
			}
			owner := namedTypeName(info.TypeOf(sel.X))
			if owner == "" {
				return true
			}
			if isCleared(owner, sel.Sel.Name, pos) {
				return true
			}
			if params.field(owner, sel.Sel.Name) {
				report(sel.Pos(), owner, sel.Sel.Name, "run parameter field")
			}
			return true
		})
		walkType(info.TypeOf(arg), pos, map[*types.Named]bool{})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, resolvable := calleeFunc(info, call)
		isHelper := resolvable && hashers[callee]
		if !isDirectSink(info, call) && !isHelper {
			return true
		}
		for _, arg := range call.Args {
			checkArgExpr(arg, call.Pos())
		}
		// A helper method's receiver carries data into the hash too.
		if isHelper {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := info.Types[sel.X]; ok && tv.IsValue() {
					checkArgExpr(sel.X, call.Pos())
				}
			}
		}
		return true
	})
}

func orAnon(owner string) string {
	if owner == "" {
		return "(anonymous)"
	}
	return ""
}

// derefType strips pointers, slices, arrays, and map values down to the
// element type an encoder would visit.
func derefType(t types.Type) types.Type {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		default:
			return t
		}
	}
}

// namedTypeName returns the name of t's (possibly pointed-to) named type,
// or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if n, ok := derefType(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isZeroExpr reports whether e is a zero-value literal: nil, 0, "", false,
// or an empty composite literal.
func isZeroExpr(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name == "nil" || v.Name == "false"
	case *ast.BasicLit:
		return v.Value == "0" || v.Value == `""` || v.Value == "``" || v.Value == "0.0"
	case *ast.CompositeLit:
		return len(v.Elts) == 0
	}
	return false
}
