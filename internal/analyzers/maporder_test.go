package analyzers_test

import (
	"testing"

	"parsample/internal/analyzers"
	"parsample/internal/analyzers/analyzertest"
)

// TestMapOrder covers the order-sensitive consumption classes (append,
// send, write, hash feed, tie-blind selection — including the PR 4
// DeepestCommonParent bug verbatim and its smallest-id fix), the sorted
// and loop-local negatives, and both suppression spellings.
func TestMapOrder(t *testing.T) {
	analyzertest.Run(t, analyzers.MapOrder, "maporder/expr")
}
