// Package arena is poolrelease analyzer testdata: pooled buffers released
// before and after their workers are joined.
package arena

import "sync"

// releaseEarly returns the buffer to the pool while workers may still
// write it: the pool republishes it immediately.
func releaseEarly(p *sync.Pool, n int) {
	buf := p.Get().([]byte)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf[0] = 1
		}()
	}
	p.Put(buf) // want "pool release reachable after spawning workers without an intervening Wait"
	wg.Wait()
}

// releaseAfterJoin is the approved order: join, then release.
func releaseAfterJoin(p *sync.Pool, n int) {
	buf := p.Get().([]byte)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf[0] = 1
		}()
	}
	wg.Wait()
	p.Put(buf)
}

// deferNoJoin defers the release but never joins its workers: the deferred
// Put runs at return with the workers still live.
func deferNoJoin(p *sync.Pool) {
	buf := p.Get().([]byte)
	defer p.Put(buf) // want "deferred pool release in a function that spawns workers but never joins them"
	go func() {
		buf[0] = 1
	}()
}

// deferWithJoin is the shipped shape: deferred release, workers joined
// before return.
func deferWithJoin(p *sync.Pool, n int) {
	buf := p.Get().([]byte)
	defer p.Put(buf)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf[0] = 1
		}()
	}
	wg.Wait()
}

// release is a same-package helper; a Put through it is still tracked.
func release(p *sync.Pool, b []byte) {
	p.Put(b)
}

// helperEarly releases through the helper before the join.
func helperEarly(p *sync.Pool) {
	buf := p.Get().([]byte)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf[0] = 1
	}()
	release(p, buf) // want "pool release reachable after spawning workers without an intervening Wait"
	wg.Wait()
}

// suppressedEarly documents a release the workers can never touch.
func suppressedEarly(p *sync.Pool) {
	buf := p.Get().([]byte)
	scratch := p.Get().([]byte)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf[0] = 1
	}()
	//parsamplevet:ignore poolrelease scratch is never handed to the workers; only buf is
	p.Put(scratch)
	wg.Wait()
}
