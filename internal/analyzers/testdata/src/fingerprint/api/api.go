// Package api is fingerprint analyzer testdata: request shapes mirroring
// the real api package's cache-identity split between data identity and
// run parameters.
package api

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// DatasetSpec is data identity: what is computed on.
type DatasetSpec struct {
	Path   string
	SHA256 string
}

// FilterSpec is a run-parameter block (classified FilterSpec:* by the
// analyzer's default -runparams).
type FilterSpec struct {
	Method string
	Seed   int64
}

// Request mirrors the real request: data identity plus run parameters,
// with the deadline classified field-by-field (Request:DeadlineMillis).
type Request struct {
	Dataset        DatasetSpec
	Filter         FilterSpec
	DeadlineMillis int64
}

// Fingerprint hashes the whole request, leaking both the filter block and
// the deadline into cache identity.
func (r Request) Fingerprint() string {
	b, _ := json.Marshal(r) // want "Request.Filter" "Request.DeadlineMillis"
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ScrubRequest carries a run-param block but clears it before hashing.
type ScrubRequest struct {
	Dataset DatasetSpec
	Filter  FilterSpec
}

// Fingerprint clears the run-param block first — the approved idiom for
// hashing a mixed struct (the real package's `net.Correlation = nil`).
func (r ScrubRequest) Fingerprint() string {
	r.Filter = FilterSpec{}
	b, _ := json.Marshal(r)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TaggedRequest excludes its run-param block from marshaling entirely.
type TaggedRequest struct {
	Dataset DatasetSpec
	Filter  FilterSpec `json:"-"`
}

// Fingerprint never sees the json:"-" field, so nothing leaks.
func (r TaggedRequest) Fingerprint() string {
	b, _ := json.Marshal(r)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// WrappedRequest delegates its hashing to a same-package helper.
type WrappedRequest struct {
	Dataset DatasetSpec
	Filter  FilterSpec
}

// Fingerprint delegates to digest; the helper is transitively a hash sink,
// so the leak is caught at the delegation call.
func (r WrappedRequest) Fingerprint() string {
	return digest(r) // want "WrappedRequest.Filter"
}

// digest is the shared hashing helper.
func digest(v any) string {
	b, _ := json.Marshal(v)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// KeyedRequest feeds a single run-param field straight into the digest.
type KeyedRequest struct {
	Dataset DatasetSpec
	Filter  FilterSpec
}

// Fingerprint hashes a run-param field through a selector chain.
func (r KeyedRequest) Fingerprint() string {
	sum := sha256.Sum256([]byte(r.Filter.Method)) // want "FilterSpec.Method"
	return hex.EncodeToString(sum[:])
}

// LegacyRequest keeps the v0 fingerprint for migration compatibility.
type LegacyRequest struct {
	Filter FilterSpec
}

// Fingerprint intentionally includes the filter; the suppression documents
// the compat contract.
func (r LegacyRequest) Fingerprint() string {
	//parsamplevet:ignore fingerprint v0 compat fixture: the legacy namespace intentionally splits on filter params
	b, _ := json.Marshal(r)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
