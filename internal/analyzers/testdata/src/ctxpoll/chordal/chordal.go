// Package chordal is ctxpoll analyzer testdata: ...Context kernel entry
// points with and without cancellation polls, and stored-context fields.
package chordal

import "context"

// SweepContext loops without ever consulting ctx: a cancelled run sits
// through the whole sweep.
func SweepContext(ctx context.Context, xs []int) (int, error) { // want "SweepContext loops but never polls cancellation"
	n := 0
	for _, x := range xs {
		n += x
	}
	return n, nil
}

// PolledSweepContext checks ctx.Err inside the loop — the contract shape.
func PolledSweepContext(ctx context.Context, xs []int) (int, error) {
	n := 0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		n += x
	}
	return n, nil
}

// DelegatingSweepContext passes ctx onward each iteration: the callee owns
// the poll, which satisfies the contract at this level.
func DelegatingSweepContext(ctx context.Context, xs []int) (int, error) {
	n := 0
	for _, x := range xs {
		v, err := stepContext(ctx, x)
		if err != nil {
			return 0, err
		}
		n += v
	}
	return n, nil
}

func stepContext(ctx context.Context, x int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return x * x, nil
}

// SelectPollContext polls through the Done channel instead of Err.
func SelectPollContext(ctx context.Context, xs []int) (int, error) {
	n := 0
	for _, x := range xs {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		default:
		}
		n += x
	}
	return n, nil
}

// sum is not a ...Context entry point; unpolled loops are fine here.
func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// widthContext has the suffix but no leading context parameter, so it is
// outside the naming contract.
func widthContext(xs []int) int {
	w := 0
	for _, x := range xs {
		if x > w {
			w = x
		}
	}
	return w
}

// holder stores a context outside the allowed carrier types: the context
// outlives its call and detaches the held work from cancellation.
type holder struct {
	ctx context.Context // want "context.Context stored in struct field of holder"
	n   int
}

// scanJob matches the Request|Job|Task allowlist: a job state machine that
// owns the request lifetime may carry its context.
type scanJob struct {
	ctx context.Context
	id  int
}

// legacyScanContext predates the poll contract; the suppression documents
// why it is allowed to remain.
//
//parsamplevet:ignore ctxpoll pinned pre-contract shape kept as the suppression fixture
func legacyScanContext(ctx context.Context, xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
