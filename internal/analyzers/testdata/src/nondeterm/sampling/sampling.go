// Package sampling is nondeterm analyzer testdata: ambient nondeterminism
// (clock, global rand, environment, racy selects) in kernel code.
package sampling

import (
	"context"
	"math/rand"
	"os"
	"time"
)

// stamp reads the wall clock inside a kernel.
func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in kernel code"
}

// elapsed derives a duration from the wall clock.
func elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want "time.Since in kernel code"
}

// draw uses the global rand source: unseedable, process-global state.
func draw(n int) int {
	return rand.Intn(n) // want "math/rand.Intn draws from the global rand source"
}

// seededDraw is the approved pattern: an explicitly seeded generator whose
// constructor and method draws are both allowed.
func seededDraw(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// configured reads the environment: kernel behavior must be a function of
// explicit inputs.
func configured() bool {
	return os.Getenv("PARSAMPLE_MODE") != "" // want "os.Getenv in kernel code"
}

// merge resolves two ready channels by the runtime's coin flip.
func merge(a, b chan int) int {
	select { // want "select among 2 ready channels resolves nondeterministically"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// cancellableRecv is the approved select shape: the only extra case is the
// cancellation receive, which decides when work stops, never what it
// computes.
func cancellableRecv(ctx context.Context, a chan int) (int, error) {
	select {
	case v := <-a:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// tracedKernel documents an approved wall-clock read.
func tracedKernel() int64 {
	//parsamplevet:ignore nondeterm trace-only timing fixture; never reaches an artifact
	return time.Now().UnixNano()
}
