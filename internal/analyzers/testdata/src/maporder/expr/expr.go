// Package expr is maporder analyzer testdata: order-sensitive and
// order-insensitive consumption of map iteration.
package expr

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sort"
)

// appendNoSort builds an output slice in map iteration order.
func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside range over map builds an iteration-ordered slice"
	}
	return out
}

// appendThenSort is the approved shape: collect, then sort before anyone
// reads the slice.
func appendThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// localAppend appends to a slice scoped inside the loop body: no state
// survives the iteration in map order.
func localAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}

// accumulate folds values commutatively; the key is never consumed.
func accumulate(m map[string]int) int {
	n := 0
	for k, v := range m {
		_ = k
		n += v
	}
	return n
}

// sliceAppend ranges a slice: order is already deterministic.
func sliceAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// sendKeys streams keys in map iteration order.
func sendKeys(m map[int]bool, ch chan int) {
	for k := range m {
		ch <- k // want "channel send inside range over map"
	}
}

// printKeys writes keys to stdout in map iteration order.
func printKeys(m map[int]bool) {
	for k := range m {
		fmt.Println(k) // want "fmt.Println inside range over map writes in map iteration order"
	}
}

// digestValues feeds the digest in map iteration order, and collects the
// per-value sums in that order too.
func digestValues(m map[string][]byte) [][32]byte {
	var sums [][32]byte
	for _, v := range m {
		sums = append(sums, sha256.Sum256(v)) // want "append to sums" "hash feed"
	}
	return sums
}

// writeKeys serializes keys in map iteration order.
func writeKeys(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) // want "Buffer.WriteString inside range over map writes in map iteration order"
	}
}

// deepestTieBlind reproduces the PR 4 DeepestCommonParent bug verbatim:
// equal-depth ties are broken by whichever key the map yields first.
func deepestTieBlind(common map[int32]bool, depth map[int32]int) int32 {
	best, bestDepth := int32(-1), -1
	for a := range common {
		if d := depth[a]; d > bestDepth {
			best, bestDepth = a, d // want "selection of map key \"a\" without a tie-break"
		}
	}
	return best
}

// deepestSmallestID is the fixed form: an equal-depth tie breaks on the
// smallest id, making the selection a pure function of the map's contents.
func deepestSmallestID(common map[int32]bool, depth map[int32]int) int32 {
	best, bestDepth := int32(-1), -1
	for a := range common {
		d := depth[a]
		if d > bestDepth || (d == bestDepth && a < best) {
			best, bestDepth = a, d
		}
	}
	return best
}

// suppressedAppend documents an order-insensitive accumulation with the
// native directive.
func suppressedAppend(m map[string]int) int {
	var all []int
	for _, v := range m {
		//parsamplevet:ignore maporder all feeds only the order-insensitive sum below
		all = append(all, v)
	}
	n := 0
	for _, v := range all {
		n += v
	}
	return n
}

// suppressedLintSpelling uses the staticcheck-style directive form.
func suppressedLintSpelling(m map[string]int, ch chan string) {
	for k := range m {
		//lint:ignore parsamplevet/maporder the consumer drains into a set; delivery order is immaterial
		ch <- k
	}
}

// sink receives missingReason's keys in map iteration order.
var sink []string

// missingReason carries a directive without a reason: the directive is
// itself a diagnostic, and it suppresses nothing.
func missingReason(m map[string]int) {
	for k := range m {
		// want+1 "suppression of parsamplevet/maporder requires a reason"
		//parsamplevet:ignore maporder
		sink = append(sink, k) // want "append to sink inside range over map"
	}
}
