// Package analyzertest is a miniature, dependency-light analysistest: it
// loads one package from testdata/src, typechecks it against the standard
// library with the source importer (no go command, no export data — the
// same offline constraint the rest of the toolchain integration lives
// under), runs a single analyzer over it, and matches the reported
// diagnostics against // want expectations embedded in the testdata.
//
// Expectation syntax, checked per line:
//
//	code()        // want "regexp"
//	code()        // want "first regexp" "second regexp"
//	// want+1 "regexp on the NEXT line"
//
// The offset form exists for diagnostics that land on a line already fully
// occupied by a //-comment — e.g. a suppression directive missing its
// reason, which is reported at the directive itself.
package analyzertest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// expectation is one parsed // want entry: a diagnostic whose message
// matches re must be reported at (file, line).
type expectation struct {
	file string
	line int
	src  string // the original pattern text, for failure messages
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile(`^//\s*want([+-][0-9]+)?\s+(.+)$`)

// Run loads testdata/src/<path> (path doubles as the package's import path,
// so analyzer package-scope regexps see it), applies a, and compares
// diagnostics against the // want comments. Exactly the analysistest
// contract: every diagnostic must be expected, every expectation must fire.
func Run(t *testing.T, a *analysis.Analyzer, path string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no testdata sources in %s: %v", dir, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}

	wants := collectWants(t, fset, files)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]any{},
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	for _, d := range diags {
		p := fset.Position(d.Pos)
		file := filepath.Base(p.Filename)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == file && w.line == p.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", file, p.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.src)
		}
	}
}

// collectWants parses every // want comment of the package.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				offset := 0
				if m[1] != "" {
					offset, _ = strconv.Atoi(m[1])
				}
				rest := strings.TrimSpace(m[2])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want pattern: %s", pos, rest)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line + offset,
						src:  pat,
						re:   re,
					})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants
}
