package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// A reporter is a suppression-aware Report front end for one analyzer. A
// diagnostic is dropped when the flagged line, or the line directly above
// it, carries a directive naming the analyzer:
//
//	//parsamplevet:ignore <name>[,<name>...] <reason>
//	//lint:ignore parsamplevet/<name>[,...] <reason>
//
// The reason is mandatory: a directive without one is reported in place of
// the suppression — an undocumented exception to an invariant is itself a
// violation.
type reporter struct {
	pass *analysis.Pass
	name string
	// suppressed maps file name → set of line numbers covered by a
	// directive naming this analyzer.
	suppressed map[string]map[int]bool
}

// newReporter indexes the package's suppression directives for the named
// analyzer and reports any directive that names it without a reason.
func newReporter(pass *analysis.Pass, name string) *reporter {
	r := &reporter{pass: pass, name: name, suppressed: map[string]map[int]bool{}}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason, ok := parseIgnore(c.Text)
				if !ok || !names[name] {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				if reason == "" {
					pass.Report(analysis.Diagnostic{
						Pos:     c.Pos(),
						Message: fmt.Sprintf("suppression of parsamplevet/%s requires a reason (//parsamplevet:ignore %s <why>)", name, name),
					})
					continue
				}
				lines := r.suppressed[pos.Filename]
				if lines == nil {
					lines = map[int]bool{}
					r.suppressed[pos.Filename] = lines
				}
				// A trailing directive covers its own line; a standalone
				// directive covers the line below it. Covering both is
				// harmless (a standalone directive's own line holds no code).
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	return r
}

// reportf emits a diagnostic unless it is suppressed.
func (r *reporter) reportf(pos token.Pos, format string, args ...any) {
	p := r.pass.Fset.Position(pos)
	if lines := r.suppressed[p.Filename]; lines != nil && lines[p.Line] {
		return
	}
	r.pass.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// reportNode reports at the node's start position.
func (r *reporter) reportNode(n ast.Node, format string, args ...any) {
	r.reportf(n.Pos(), format, args...)
}

// parseIgnore recognizes both directive spellings and returns the analyzer
// names the directive covers plus the free-text reason.
func parseIgnore(text string) (names map[string]bool, reason string, ok bool) {
	var rest string
	switch {
	case strings.HasPrefix(text, "//parsamplevet:ignore"):
		rest = strings.TrimPrefix(text, "//parsamplevet:ignore")
	case strings.HasPrefix(text, "//lint:ignore "):
		// Only claim the staticcheck-style directive when it names a
		// parsamplevet check; other tools' ignores are none of our business.
		rest = strings.TrimPrefix(text, "//lint:ignore")
		if !strings.Contains(rest, "parsamplevet/") {
			return nil, "", false
		}
	default:
		return nil, "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", false
	}
	names = map[string]bool{}
	for _, n := range strings.Split(fields[0], ",") {
		names[strings.TrimPrefix(n, "parsamplevet/")] = true
	}
	return names, strings.TrimSpace(strings.Join(fields[1:], " ")), true
}
