package analyzers

import "testing"

// TestParseIgnore pins the directive grammar both spellings share.
func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text   string
		names  []string
		reason string
		ok     bool
	}{
		{"//parsamplevet:ignore maporder keys are pre-sorted", []string{"maporder"}, "keys are pre-sorted", true},
		{"//parsamplevet:ignore maporder,nondeterm shared fixture", []string{"maporder", "nondeterm"}, "shared fixture", true},
		{"//parsamplevet:ignore maporder", []string{"maporder"}, "", true},
		{"//lint:ignore parsamplevet/ctxpoll legacy shape", []string{"ctxpoll"}, "legacy shape", true},
		{"//lint:ignore SA4006 someone else's directive", nil, "", false},
		{"// plain comment", nil, "", false},
		{"//parsamplevet:ignore", nil, "", false},
	}
	for _, c := range cases {
		names, reason, ok := parseIgnore(c.text)
		if ok != c.ok {
			t.Errorf("parseIgnore(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if reason != c.reason {
			t.Errorf("parseIgnore(%q) reason = %q, want %q", c.text, reason, c.reason)
		}
		for _, n := range c.names {
			if !names[n] {
				t.Errorf("parseIgnore(%q) missing name %q", c.text, n)
			}
		}
		if len(names) != len(c.names) {
			t.Errorf("parseIgnore(%q) names = %v, want %v", c.text, names, c.names)
		}
	}
}
