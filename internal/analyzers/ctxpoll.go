package analyzers

import (
	"flag"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// CtxPoll enforces the PR 4 cancellation contract: a ...Context kernel
// entry point that loops must poll cancellation inside the loop — directly
// (ctx.Err / ctx.Done) or by delegating to another context-aware call — so
// a cancelled pipeline run unwinds mid-kernel instead of running the sweep
// to completion. It also flags context.Context stored in struct fields
// outside the known request/job carrier types: a stored context outlives
// its request and silently detaches work from cancellation.
var CtxPoll = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc: "flag ...Context kernel functions whose loops never poll cancellation\n\n" +
		"Cancellation in the kernels is cooperative: every BuildNetworkContext-\n" +
		"style entry point promises a bounded poll interval (DESIGN.md §5). A\n" +
		"loop that neither checks ctx.Err()/ctx.Done() nor passes ctx onward\n" +
		"breaks that promise for the whole pipeline above it.",
	Run: runCtxPoll,
}

var (
	ctxPollScope = scopeFlag{expr: `(^|/)(expr|chordal|mcode|analysis|sampling|pipeline|comm|transport)$`}
	// ctxFieldAllow matches struct type names that may legitimately carry a
	// context (request/job state machines that own the request lifetime).
	ctxFieldAllow = scopeFlag{expr: `(Request|Job|Task)$`}
)

func init() {
	CtxPoll.Flags.Init("ctxpoll", flag.ExitOnError)
	CtxPoll.Flags.StringVar(&ctxPollScope.expr, "packages", ctxPollScope.expr,
		"regexp of package paths the analyzer applies to")
	CtxPoll.Flags.StringVar(&ctxFieldAllow.expr, "ctxfields", ctxFieldAllow.expr,
		"regexp of struct type names allowed to store a context.Context")
}

func runCtxPoll(pass *analysis.Pass) (any, error) {
	if !ctxPollScope.match(pass.Pkg.Path()) {
		return nil, nil
	}
	rep := newReporter(pass, "ctxpoll")
	for _, f := range sourceFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxFunc(pass, rep, n)
			case *ast.TypeSpec:
				checkCtxField(pass, rep, n)
			}
			return true
		})
	}
	return nil, nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxFunc flags ...Context functions that loop without polling.
func checkCtxFunc(pass *analysis.Pass, rep *reporter, fd *ast.FuncDecl) {
	if fd.Body == nil || !isContextFuncName(fd.Name.Name) {
		return
	}
	params := fd.Type.Params
	if params == nil || params.NumFields() == 0 {
		return
	}
	firstParam := params.List[0]
	if t := pass.TypesInfo.TypeOf(firstParam.Type); t == nil || !isContextType(t) {
		return
	}

	loops, polledLoops := 0, 0
	var inspectLoop func(n ast.Node)
	inspectLoop = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			var body *ast.BlockStmt
			switch l := m.(type) {
			case *ast.ForStmt:
				body = l.Body
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			loops++
			if loopPolls(pass, body) {
				polledLoops++
			}
			return true
		})
	}
	inspectLoop(fd.Body)
	if loops > 0 && polledLoops == 0 {
		rep.reportf(fd.Name.Pos(), "%s loops but never polls cancellation: check ctx.Err()/ctx.Done() (or pass ctx onward) inside the loop", fd.Name.Name)
	}
}

// isContextFuncName reports whether the function participates in the
// ...Context naming contract.
func isContextFuncName(name string) bool {
	const suffix = "Context"
	return len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix
}

// loopPolls reports whether the loop body contains a cancellation poll: a
// ctx.Err()/ctx.Done() call, or any call that receives a context.Context
// argument (delegation to a context-aware callee — including the kernels'
// own polling helpers — counts as a poll at this level).
func loopPolls(pass *analysis.Pass, body *ast.BlockStmt) bool {
	info := pass.TypesInfo
	polled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if polled {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isContextExpr(info, sel.X) {
				polled = true
				return false
			}
		}
		for _, arg := range call.Args {
			if isContextExpr(info, arg) {
				polled = true
				return false
			}
		}
		return true
	})
	return polled
}

func isContextExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isContextType(t)
}

// checkCtxField flags context.Context struct fields outside the allowed
// request/job carrier types.
func checkCtxField(pass *analysis.Pass, rep *reporter, ts *ast.TypeSpec) {
	st, ok := ts.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	if ctxFieldAllow.match(ts.Name.Name) {
		return
	}
	for _, field := range st.Fields.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && isContextType(t) {
			rep.reportNode(field, "context.Context stored in struct field of %s: contexts are call-scoped; thread ctx through calls or allowlist the type via -ctxpoll.ctxfields", ts.Name.Name)
		}
	}
}
