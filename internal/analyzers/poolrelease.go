package analyzers

import (
	"flag"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"
)

// PoolRelease enforces the PR 6 arena lifetime rule: a pooled buffer may be
// returned to its sync.Pool only after every worker goroutine spawned by
// the same function has been joined. A Put on a path where a spawned worker
// may still be running republishes the buffer while it is still written —
// the resulting corruption is a data race that -race only catches when the
// reuse actually interleaves.
//
// The check is control-flow based: from every `go` statement, any
// reachable sync.Pool.Put (direct, or via a same-package release helper)
// that is not preceded by a WaitGroup/errgroup-style Wait on that path is
// flagged. A `defer`red release is accepted when the function joins its
// workers somewhere; it is flagged when no join exists at all.
var PoolRelease = &analysis.Analyzer{
	Name: "poolrelease",
	Doc: "flag sync.Pool.Put reachable before spawned workers are joined\n\n" +
		"Arena pools release only after worker join (DESIGN.md §7): the pool\n" +
		"republishes the buffer immediately, so a straggler worker writing into\n" +
		"it corrupts whoever drew it next.",
	Run: runPoolRelease,
}

var poolReleaseScope = scopeFlag{expr: `.`}

func init() {
	PoolRelease.Flags.Init("poolrelease", flag.ExitOnError)
	PoolRelease.Flags.StringVar(&poolReleaseScope.expr, "packages", poolReleaseScope.expr,
		"regexp of package paths the analyzer applies to")
}

// isPoolPut reports whether call is (*sync.Pool).Put.
func isPoolPut(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeFunc(info, call)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Put" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isJoin reports whether call is a worker join: any method named Wait
// (sync.WaitGroup, errgroup.Group, and equivalents).
func isJoin(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeFunc(info, call)
	if !ok || fn.Name() != "Wait" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// transitiveCallers returns the same-package functions that (transitively)
// make a call satisfying isDirect.
func transitiveCallers(pass *analysis.Pass, isDirect func(*types.Info, *ast.CallExpr) bool) map[*types.Func]bool {
	info := pass.TypesInfo
	bodies := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.ObjectOf(fd.Name).(*types.Func); ok {
					bodies[fn] = fd
				}
			}
		}
	}
	out := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for fn, fd := range bodies {
			if out[fn] {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if isDirect(info, call) {
						found = true
						return false
					}
					if callee, ok := calleeFunc(info, call); ok && out[callee] {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				out[fn] = true
				changed = true
			}
		}
	}
	return out
}

func runPoolRelease(pass *analysis.Pass) (any, error) {
	if !poolReleaseScope.match(pass.Pkg.Path()) {
		return nil, nil
	}
	rep := newReporter(pass, "poolrelease")
	releasers := transitiveCallers(pass, isPoolPut)
	joiners := transitiveCallers(pass, isJoin)

	for _, f := range sourceFiles(pass) {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkPoolFunc(pass, rep, fd, releasers, joiners)
			return true
		})
	}
	return nil, nil
}

// event is one ordered occurrence inside a CFG block node.
type poolEvent struct {
	kind int // 0 spawn, 1 join, 2 release
	node ast.Node
}

const (
	evSpawn = iota
	evJoin
	evRelease
)

func checkPoolFunc(pass *analysis.Pass, rep *reporter, fd *ast.FuncDecl, releasers, joiners map[*types.Func]bool) {
	info := pass.TypesInfo
	isRelease := func(call *ast.CallExpr) bool {
		if isPoolPut(info, call) {
			return true
		}
		callee, ok := calleeFunc(info, call)
		return ok && releasers[callee]
	}
	isJoinCall := func(call *ast.CallExpr) bool {
		if isJoin(info, call) {
			return true
		}
		callee, ok := calleeFunc(info, call)
		return ok && joiners[callee]
	}

	// Quick scan: only functions that both spawn and release need the CFG.
	spawns, releases, joins, deferredReleases := 0, 0, 0, []*ast.CallExpr{}
	walkShallow(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			spawns++
			return false // the goroutine body is the worker's context
		case *ast.DeferStmt:
			if isRelease(n.Call) {
				deferredReleases = append(deferredReleases, n.Call)
			}
			return false
		case *ast.CallExpr:
			if isRelease(n) {
				releases++
			}
			if isJoinCall(n) {
				joins++
			}
		}
		return true
	})
	if spawns == 0 {
		return
	}
	for _, call := range deferredReleases {
		if joins == 0 {
			rep.reportNode(call, "deferred pool release in a function that spawns workers but never joins them: the arena returns to the pool while workers may still write it")
		}
	}
	if releases == 0 {
		return
	}

	// events extracts the ordered spawn/join/release occurrences of one CFG
	// node, without descending into goroutine bodies.
	events := func(n ast.Node) []poolEvent {
		var evs []poolEvent
		walkShallow(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				evs = append(evs, poolEvent{evSpawn, m})
				return false
			case *ast.DeferStmt:
				return false // handled above
			case *ast.CallExpr:
				switch {
				case isJoinCall(m):
					evs = append(evs, poolEvent{evJoin, m})
				case isRelease(m):
					evs = append(evs, poolEvent{evRelease, m})
				}
			}
			return true
		})
		return evs
	}

	g := cfg.New(fd.Body, func(*ast.CallExpr) bool { return true })
	type loc struct {
		block *cfg.Block
		idx   int // node index to start scanning at
	}
	flagged := map[ast.Node]bool{}
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			for _, ev := range events(n) {
				if ev.kind != evSpawn {
					continue
				}
				// BFS from just after the spawn; a join ends the path, a
				// release before any join is a flag.
				queue := []loc{{b, i + 1}}
				visited := map[*cfg.Block]bool{}
				for len(queue) > 0 {
					l := queue[0]
					queue = queue[1:]
					stopped := false
					for j := l.idx; j < len(l.block.Nodes) && !stopped; j++ {
						for _, e := range events(l.block.Nodes[j]) {
							if e.kind == evJoin {
								stopped = true
								break
							}
							if e.kind == evRelease && !flagged[e.node] {
								flagged[e.node] = true
								rep.reportNode(e.node, "pool release reachable after spawning workers without an intervening Wait: join workers before returning the arena to the pool")
							}
						}
					}
					if stopped {
						continue
					}
					for _, succ := range l.block.Succs {
						if !visited[succ] {
							visited[succ] = true
							queue = append(queue, loc{succ, 0})
						}
					}
				}
			}
		}
	}
}
