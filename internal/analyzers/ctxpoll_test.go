package analyzers_test

import (
	"testing"

	"parsample/internal/analyzers"
	"parsample/internal/analyzers/analyzertest"
)

// TestCtxPoll covers the unpolled-loop positive, the three approved poll
// shapes (ctx.Err, Done-channel select, delegation), the out-of-contract
// negatives, stored-context fields with and without the carrier-type
// allowlist, and a suppressed legacy entry point.
func TestCtxPoll(t *testing.T) {
	analyzertest.Run(t, analyzers.CtxPoll, "ctxpoll/chordal")
}
