package server

import (
	"context"
	"math"
	"sync"
	"time"

	"parsample/api"
)

// The admission gate (DESIGN.md §8) keeps the daemon inside its compute
// budget: every request is priced in cost units (api.EstimateCost; 1 unit
// ≈ 1 ms of single-threaded kernel time on the reference machine) and
// must acquire that many units from a weighted semaphore before any
// kernel runs. Requests that do not fit wait in a bounded FIFO queue —
// two of them, one per priority class, interactive served strictly before
// batch — and requests beyond the queue bound are rejected immediately
// with a structured 429 carrying Retry-After. A per-client token bucket
// (X-Parsample-Client) keeps one chatty client from monopolizing the
// budget. The gate never blocks cheap work behind the mutex: admission is
// O(1) bookkeeping; only over-budget requests park.

// Priority classes. Interactive waiters are granted strictly before batch
// waiters (head-of-line within a class is FIFO; a big interactive head is
// never bypassed, so it cannot starve).
type classID int

const (
	classInteractive classID = iota
	classBatch
	numClasses
)

// Request headers read by the admission layer.
const (
	// PriorityHeader selects the class: "interactive" (default for
	// POST /v1/pipeline) or "batch" (default for POST /v1/jobs).
	PriorityHeader = "X-Parsample-Priority"
	// ClientHeader identifies the caller for per-client fairness; absent
	// callers share the "anonymous" bucket.
	ClientHeader = "X-Parsample-Client"
)

// admitConfig parameterizes the gate; zero fields select defaults in
// newAdmitGate.
type admitConfig struct {
	// Capacity is the concurrent compute budget in cost units.
	Capacity float64
	// QueueLimit bounds queued waiters across both classes.
	QueueLimit int
	// ClientRate is each client's token-bucket refill in units/second;
	// ClientBurst is the bucket depth.
	ClientRate  float64
	ClientBurst float64
}

type admitWaiter struct {
	units float64
	ready chan struct{} // closed on grant
}

// tokenBucket is one client's fair-share budget.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// interactiveHeadroomFrac sizes the express lane: an interactive request
// costing no more than this fraction of capacity may overdraft the
// semaphore by the same fraction instead of queueing. A cold burst that
// saturates the budget then cannot push cached interactive lookups from
// sub-millisecond to multi-kernel queue waits. The overdraft is bounded
// (≤ 5% of capacity outstanding beyond the budget) and queued waiters
// still drain against the base capacity, so batch work is delayed by at
// most the headroom slice, never starved.
const interactiveHeadroomFrac = 0.05

// admitGate is the weighted-semaphore admission gate.
type admitGate struct {
	cfg admitConfig

	mu      sync.Mutex
	inUse   float64
	queues  [numClasses][]*admitWaiter
	queued  int
	clients map[string]*tokenBucket

	admitted        int64
	rejOverloaded   int64
	rejOverCapacity int64
	rejDegraded     int64
	rejThrottled    int64
	rejTooLarge     int64
	shedCold        int64
	shedSSE         int64

	now func() time.Time // test hook for bucket refill
}

func newAdmitGate(cfg admitConfig) *admitGate {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 2000
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 64
	}
	if cfg.ClientRate <= 0 {
		cfg.ClientRate = cfg.Capacity / 2
	}
	if cfg.ClientBurst <= 0 {
		cfg.ClientBurst = cfg.Capacity
	}
	return &admitGate{cfg: cfg, clients: make(map[string]*tokenBucket), now: time.Now}
}

// Admit acquires units for one request, waiting in the class queue when
// the budget is full. It returns a release closure on success, or a
// structured rejection: over_capacity when the request can never fit,
// overloaded (with Retry-After) when the queue is full or the client's
// fair share is spent. ctx abandons the wait (queue time is the caller's
// to bound; compute deadlines start after admission).
func (g *admitGate) Admit(ctx context.Context, client string, class classID, units float64) (func(), *api.Error) {
	if units < 1 {
		units = 1
	}
	g.mu.Lock()
	if units > g.cfg.Capacity {
		g.rejOverCapacity++
		g.mu.Unlock()
		return nil, api.Errorf(api.CodeOverCapacity,
			"request costs %.0f units but the server's whole budget is %.0f; it can never be admitted under current limits", units, g.cfg.Capacity)
	}
	fits := g.queued == 0 && g.inUse+units <= g.cfg.Capacity
	if !fits && class == classInteractive && units <= interactiveHeadroomFrac*g.cfg.Capacity {
		// Express lane: cheap interactive work bypasses the queue into the
		// bounded headroom overdraft.
		fits = g.inUse+units <= (1+interactiveHeadroomFrac)*g.cfg.Capacity
	}
	if !fits && g.queued >= g.cfg.QueueLimit {
		g.rejOverloaded++
		retry := g.retryAfterLocked(units)
		g.mu.Unlock()
		ae := api.Errorf(api.CodeOverloaded, "admission queue is full (%d waiters); retry after %ds", g.cfg.QueueLimit, retry)
		ae.RetryAfterSec = retry
		return nil, ae
	}
	if retry, ok := g.chargeClientLocked(client, units); !ok {
		g.rejThrottled++
		g.mu.Unlock()
		ae := api.Errorf(api.CodeOverloaded, "client %q spent its fair-share budget; retry after %ds", client, retry)
		ae.RetryAfterSec = retry
		return nil, ae
	}
	if fits {
		g.inUse += units
		g.admitted++
		g.mu.Unlock()
		return g.releaseFunc(units), nil
	}
	w := &admitWaiter{units: units, ready: make(chan struct{})}
	g.queues[class] = append(g.queues[class], w)
	g.queued++
	g.mu.Unlock()

	select {
	case <-w.ready:
		g.mu.Lock()
		g.admitted++
		g.mu.Unlock()
		return g.releaseFunc(units), nil
	case <-ctx.Done():
		g.mu.Lock()
		for c := range g.queues {
			for i, q := range g.queues[c] {
				if q == w {
					g.queues[c] = append(g.queues[c][:i], g.queues[c][i+1:]...)
					g.queued--
					g.mu.Unlock()
					ae := api.WrapError(api.CodeCancelled, ctx.Err(), "abandoned admission queue: %v", ctx.Err())
					return nil, ae
				}
			}
		}
		g.mu.Unlock()
		// Granted concurrently with cancellation: hand the units straight
		// back (the grant already left the queue).
		g.release(units)
		return nil, api.WrapError(api.CodeCancelled, ctx.Err(), "abandoned admission queue: %v", ctx.Err())
	}
}

func (g *admitGate) releaseFunc(units float64) func() {
	var once sync.Once
	return func() { once.Do(func() { g.release(units) }) }
}

func (g *admitGate) release(units float64) {
	g.mu.Lock()
	g.inUse -= units
	if g.inUse < 0 {
		g.inUse = 0
	}
	g.grantLocked()
	g.mu.Unlock()
}

// grantLocked wakes queued waiters in strict priority order while they
// fit. The head of the interactive queue blocks everything behind it —
// deliberate: skipping a large waiter in favor of small ones would starve
// it under sustained small-request load.
func (g *admitGate) grantLocked() {
	for {
		var q *[]*admitWaiter
		switch {
		case len(g.queues[classInteractive]) > 0:
			q = &g.queues[classInteractive]
		case len(g.queues[classBatch]) > 0:
			q = &g.queues[classBatch]
		default:
			return
		}
		w := (*q)[0]
		if g.inUse+w.units > g.cfg.Capacity {
			return
		}
		g.inUse += w.units
		*q = (*q)[1:]
		g.queued--
		close(w.ready)
	}
}

// chargeClientLocked spends units from client's token bucket, refilling
// by elapsed time first. On insufficient tokens it reports the seconds
// until the bucket covers the request.
func (g *admitGate) chargeClientLocked(client string, units float64) (retryAfter int, ok bool) {
	b := g.clients[client]
	now := g.now()
	if b == nil {
		b = &tokenBucket{tokens: g.cfg.ClientBurst, last: now}
		g.clients[client] = b
		// Bound the map: a client id costs ~few dozen bytes; a loadgen or
		// adversary cycling ids would otherwise grow it without limit.
		if len(g.clients) > 4096 {
			for k := range g.clients {
				if k != client {
					delete(g.clients, k)
					break
				}
			}
		}
	}
	b.tokens = math.Min(g.cfg.ClientBurst, b.tokens+g.cfg.ClientRate*now.Sub(b.last).Seconds())
	b.last = now
	// A request bigger than the bucket depth could never pass; cap its
	// charge at the depth so over-capacity pricing stays the semaphore's
	// job, not the fairness layer's.
	charge := math.Min(units, g.cfg.ClientBurst)
	if b.tokens < charge {
		return clampRetry((charge - b.tokens) / g.cfg.ClientRate), false
	}
	b.tokens -= charge
	return 0, true
}

// retryAfterLocked estimates when capacity for units frees up: the
// backlog ahead of the caller drained at full capacity.
func (g *admitGate) retryAfterLocked(units float64) int {
	backlog := g.inUse + units
	for c := range g.queues {
		for _, w := range g.queues[c] {
			backlog += w.units
		}
	}
	// Units are ≈ milliseconds of single-threaded compute; capacity units
	// run concurrently, so the drain estimate is backlog/capacity seconds
	// scaled by the unit's 1ms grain.
	return clampRetry(backlog / g.cfg.Capacity)
}

func clampRetry(sec float64) int {
	s := int(math.Ceil(sec))
	if s < 1 {
		s = 1
	}
	if s > 60 {
		s = 60
	}
	return s
}

// Degradation levels (the ladder's rungs; DESIGN.md §8).
const (
	// degradeNone: normal operation.
	degradeNone = iota
	// degradeCoalesce: sustained pressure — widen the sweep-batch window
	// so concurrent cold sweeps coalesce harder. Everything still admitted.
	degradeCoalesce
	// degradeShedCold: near saturation — cold synthesis requests (whose
	// artifacts are not resident) are shed with 503 degraded before any
	// cached work is turned away.
	degradeShedCold
)

// queueFull reports whether a request of units would be rejected at the
// queue bound right now (it neither fits immediately nor finds queue
// room). The serving tier consults it so a doomed request gets the
// honest 429 overloaded instead of a 503 degraded shed.
func (g *admitGate) queueFull(units float64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	fits := g.queued == 0 && g.inUse+units <= g.cfg.Capacity
	return !fits && g.queued >= g.cfg.QueueLimit
}

// level derives the current degradation rung from gate pressure: queue
// formation marks level 1, a half-full queue marks level 2. Reading it is
// O(1); the serving tier re-evaluates on every admission and release.
func (g *admitGate) level() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch {
	case g.queued > g.cfg.QueueLimit/2:
		return degradeShedCold
	case g.queued > 0 || g.inUse > 0.75*g.cfg.Capacity:
		return degradeCoalesce
	default:
		return degradeNone
	}
}

func (g *admitGate) countShedCold() {
	g.mu.Lock()
	g.shedCold++
	g.rejDegraded++
	g.mu.Unlock()
}

func (g *admitGate) countShedSSE() {
	g.mu.Lock()
	g.shedSSE++
	g.mu.Unlock()
}

func (g *admitGate) countTooLarge() {
	g.mu.Lock()
	g.rejTooLarge++
	g.mu.Unlock()
}

// admitStats is the /statsz wire form of the gate.
type admitStats struct {
	CapacityUnits float64        `json:"capacityUnits"`
	InUseUnits    float64        `json:"inUseUnits"`
	QueueDepth    int            `json:"queueDepth"`
	QueueLimit    int            `json:"queueLimit"`
	Admitted      int64          `json:"admitted"`
	Rejected      rejectedCounts `json:"rejected"`
	Shed          shedCounts     `json:"shed"`
	Level         int            `json:"level"`
	BatchWindowMS float64        `json:"batchWindowMs"`
}

// rejectedCounts is the rejection breakdown by structured error class.
type rejectedCounts struct {
	Overloaded      int64 `json:"overloaded"`
	OverCapacity    int64 `json:"overCapacity"`
	Degraded        int64 `json:"degraded"`
	ClientThrottled int64 `json:"clientThrottled"`
	PayloadTooLarge int64 `json:"payloadTooLarge"`
}

// shedCounts tallies graceful-degradation actions.
type shedCounts struct {
	ColdRequests     int64 `json:"coldRequests"`
	SSESlowConsumers int64 `json:"sseSlowConsumers"`
}

func (g *admitGate) stats() admitStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return admitStats{
		CapacityUnits: g.cfg.Capacity,
		InUseUnits:    g.inUse,
		QueueDepth:    g.queued,
		QueueLimit:    g.cfg.QueueLimit,
		Admitted:      g.admitted,
		Rejected: rejectedCounts{
			Overloaded:      g.rejOverloaded,
			OverCapacity:    g.rejOverCapacity,
			Degraded:        g.rejDegraded,
			ClientThrottled: g.rejThrottled,
			PayloadTooLarge: g.rejTooLarge,
		},
		Shed: shedCounts{ColdRequests: g.shedCold, SSESlowConsumers: g.shedSSE},
	}
}
