package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"parsample"
	"parsample/api"
	"parsample/internal/faultinject"
)

// TestMain asserts the serving tier leaks no goroutines: shed SSE
// streams, cancelled jobs, admission waiters and fault-injected runs must
// all unwind. The grace loop absorbs net/http's connection teardown.
func TestMain(m *testing.M) {
	base := runtime.NumGoroutine()
	code := m.Run()
	http.DefaultClient.CloseIdleConnections()
	if code == 0 {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > base {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			fmt.Fprintf(os.Stderr, "server: %d goroutines leaked (baseline %d):\n%s\n", n-base, base, buf)
			code = 1
		}
	}
	os.Exit(code)
}

// decodeAPIError unmarshals a structured error body.
func decodeAPIError(t *testing.T, body []byte) *api.Error {
	t.Helper()
	var ae api.Error
	if err := json.Unmarshal(body, &ae); err != nil {
		t.Fatalf("error body is not a structured api.Error: %v (%s)", err, body)
	}
	return &ae
}

// synthBody builds a synthesis request body with its knobs exposed.
func synthBody(genes, samples, seed int, extra string) string {
	return fmt.Sprintf(`{
		"network": {"synthesis": {"genes": %d, "samples": %d, "modules": 4, "moduleSize": 8, "seed": %d}},
		"filter": {"algorithm": "chordal-nocomm", "ordering": "HD", "p": 2, "seed": 3}%s
	}`, genes, samples, seed, extra)
}

// ---------------------------------------------------------- satellite: 413

// TestPayloadTooLarge: a body over the limit must produce a structured
// 413 payload_too_large (not a bare 400), counted in the /statsz
// rejection breakdown.
func TestPayloadTooLarge(t *testing.T) {
	p := parsample.New()
	ts := httptest.NewServer(New(Config{Pipeline: p, MaxBodyBytes: 256}))
	t.Cleanup(ts.Close)

	big := synthBody(192, 24, 7, `, "padding": "`+strings.Repeat("x", 512)+`"`)
	resp, body := post(t, ts.URL+"/v1/pipeline", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", resp.StatusCode, body)
	}
	if ae := decodeAPIError(t, body); ae.Code != api.CodePayloadTooLarge {
		t.Fatalf("code = %q, want %q", ae.Code, api.CodePayloadTooLarge)
	}
	_, sb := get(t, ts.URL+"/statsz")
	var st struct {
		Admission admitStats `json:"admission"`
	}
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.Rejected.PayloadTooLarge != 1 {
		t.Fatalf("statsz payloadTooLarge = %d, want 1", st.Admission.Rejected.PayloadTooLarge)
	}
}

// ------------------------------------------------ satellite: DELETE races

// TestJobDeleteIdempotentOnFinished: DELETE on a job in a terminal state
// is a 200 no-op that cannot change the outcome, repeatably.
func TestJobDeleteIdempotentOnFinished(t *testing.T) {
	ts, _ := newTestServer(t)
	_, body := post(t, ts.URL+"/v1/jobs", smallSynthBody)
	var ji JobInfo
	if err := json.Unmarshal(body, &ji); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, ts.URL+"/v1/jobs/"+ji.ID, JobDone, 30*time.Second)

	for i := 0; i < 3; i++ {
		resp, body := doDelete(t, ts.URL+"/v1/jobs/"+ji.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE #%d on finished job: status %d, want 200 (%s)", i, resp.StatusCode, body)
		}
		var info JobInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Status != JobDone || info.Response == nil {
			t.Fatalf("DELETE #%d mutated the finished job: status %q", i, info.Status)
		}
	}
}

// TestJobDeleteConcurrentRace: many DELETEs racing one running job (and
// each other) must all succeed structurally — each sees 200 or 202 and a
// coherent status — and the job must land exactly once in a terminal
// state (cancelled, or done if the run won the race).
func TestJobDeleteConcurrentRace(t *testing.T) {
	ts, _ := newTestServer(t)
	// A heavier synthesis so cancellation usually lands mid-kernel.
	_, body := post(t, ts.URL+"/v1/jobs", synthBody(1024, 48, 11, ""))
	var ji JobInfo
	if err := json.Unmarshal(body, &ji); err != nil {
		t.Fatal(err)
	}
	const racers = 8
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+ji.ID, nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("racing DELETE: status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	// Whatever the race produced, the job settles in exactly one terminal
	// state and stays there.
	var final JobInfo
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := get(t, ts.URL+"/v1/jobs/"+ji.ID)
		if err := json.Unmarshal(body, &final); err != nil {
			t.Fatal(err)
		}
		if final.Status != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never settled after concurrent DELETEs (status %q)", final.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.Status != JobCancelled && final.Status != JobDone {
		t.Fatalf("terminal status = %q, want cancelled or done", final.Status)
	}
	if resp, _ := doDelete(t, ts.URL+"/v1/jobs/"+ji.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE after settlement: status %d, want 200", resp.StatusCode)
	}
}

// ------------------------------------------------------- admission gate

// neutralFairness disables per-client throttling so a test exercises the
// semaphore alone.
func neutralFairness(cfg Config) Config {
	cfg.ClientRateUnits = 1e9
	cfg.ClientBurstUnits = 1e9
	return cfg
}

// TestAdmissionOverCapacity: a request whose cold estimate exceeds the
// whole budget is a structured 503 over_capacity — it could never run.
func TestAdmissionOverCapacity(t *testing.T) {
	p := parsample.New()
	ts := httptest.NewServer(New(neutralFairness(Config{Pipeline: p, CapacityUnits: 5})))
	t.Cleanup(ts.Close)

	resp, body := post(t, ts.URL+"/v1/pipeline", synthBody(2048, 64, 5, ""))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (%s)", resp.StatusCode, body)
	}
	if ae := decodeAPIError(t, body); ae.Code != api.CodeOverCapacity {
		t.Fatalf("code = %q, want %q", ae.Code, api.CodeOverCapacity)
	}
}

// TestAdmissionQueueFullRejects429: with the budget held by a stalled
// request and the queue at its bound, the next arrival is rejected
// immediately with 429 overloaded + Retry-After, while queued requests
// eventually run. The stall is a delay failpoint in the sweep kernel —
// real compute holding real units.
func TestAdmissionQueueFullRejects429(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	p := parsample.New()
	ts := httptest.NewServer(New(neutralFairness(Config{Pipeline: p, CapacityUnits: 2, QueueLimit: 1})))
	t.Cleanup(ts.Close)

	faultinject.Enable("expr.sweep.tile", faultinject.Spec{Mode: faultinject.ModeDelay, Delay: 600 * time.Millisecond, Count: 1})

	type result struct {
		status int
		body   []byte
		retry  string
	}
	do := func(seed int) result {
		resp, err := http.Post(ts.URL+"/v1/pipeline", "application/json", strings.NewReader(synthBody(192, 24, seed, "")))
		if err != nil {
			t.Error(err)
			return result{}
		}
		b := make([]byte, 4096)
		n, _ := resp.Body.Read(b)
		resp.Body.Close()
		return result{status: resp.StatusCode, body: b[:n], retry: resp.Header.Get("Retry-After")}
	}

	resA := make(chan result, 1)
	go func() { resA <- do(101) }() // admitted; stalls 600ms in the kernel
	time.Sleep(150 * time.Millisecond)
	resB := make(chan result, 1)
	go func() { resB <- do(102) }() // does not fit; parks in the queue
	time.Sleep(150 * time.Millisecond)

	// The queue is at its bound of 1: this arrival must bounce.
	c := do(103)
	if c.status != http.StatusTooManyRequests {
		t.Fatalf("third request status = %d, want 429 (%s)", c.status, c.body)
	}
	if ae := decodeAPIError(t, c.body); ae.Code != api.CodeOverloaded || ae.RetryAfterSec < 1 {
		t.Fatalf("rejection = %+v, want overloaded with RetryAfterSec ≥ 1", ae)
	}
	if c.retry == "" {
		t.Fatal("429 carried no Retry-After header")
	}

	a, b := <-resA, <-resB
	if a.status != http.StatusOK {
		t.Fatalf("stalled request status = %d (%s)", a.status, a.body)
	}
	if b.status != http.StatusOK {
		t.Fatalf("queued request status = %d (%s)", b.status, b.body)
	}
}

// TestClientFairnessThrottles: one client spending past its token bucket
// is throttled 429 while a different client is still admitted.
func TestClientFairnessThrottles(t *testing.T) {
	p := parsample.New()
	// Burst covers ~1 cold small request (≈1.5 units); refill is slow.
	ts := httptest.NewServer(New(Config{Pipeline: p, CapacityUnits: 1000, ClientRateUnits: 0.001, ClientBurstUnits: 2}))
	t.Cleanup(ts.Close)

	doAs := func(client string, seed int) (int, []byte) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/pipeline", strings.NewReader(synthBody(192, 24, seed, "")))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(ClientHeader, client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, 1<<20)
		n, _ := resp.Body.Read(b)
		resp.Body.Close()
		return resp.StatusCode, b[:n]
	}

	if st, body := doAs("alice", 201); st != http.StatusOK {
		t.Fatalf("alice's first request: %d (%s)", st, body)
	}
	st, body := doAs("alice", 202)
	if st != http.StatusTooManyRequests {
		t.Fatalf("alice's second request: %d, want 429 (%s)", st, body)
	}
	if ae := decodeAPIError(t, body); ae.Code != api.CodeOverloaded || ae.RetryAfterSec < 1 {
		t.Fatalf("throttle error = %+v", ae)
	}
	if st, body := doAs("bob", 203); st != http.StatusOK {
		t.Fatalf("bob (fresh bucket) was throttled by alice's spend: %d (%s)", st, body)
	}
}

// ---------------------------------------------------------- deadlines

// TestDeadlineInfeasibleRejected: a deadline below the compute estimate
// is rejected up front as 503 over_capacity — before spending any budget.
func TestDeadlineInfeasibleRejected(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/pipeline", synthBody(2048, 64, 31, `, "deadline_ms": 2`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (%s)", resp.StatusCode, body)
	}
	if ae := decodeAPIError(t, body); ae.Code != api.CodeOverCapacity {
		t.Fatalf("code = %q, want %q", ae.Code, api.CodeOverCapacity)
	}
}

// TestDeadlineExceededMidRun: a feasible deadline blown mid-kernel (a
// delay failpoint stalls the sweep) surfaces as 504 deadline_exceeded,
// and the interrupted artifacts are not poisoned — the retry without a
// deadline completes.
func TestDeadlineExceededMidRun(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	ts, _ := newTestServer(t)
	faultinject.Enable("expr.sweep.tile", faultinject.Spec{Mode: faultinject.ModeDelay, Delay: 700 * time.Millisecond, Count: 1})

	resp, body := post(t, ts.URL+"/v1/pipeline", synthBody(192, 24, 41, `, "deadline_ms": 150`))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", resp.StatusCode, body)
	}
	if ae := decodeAPIError(t, body); ae.Code != api.CodeDeadlineExceeded {
		t.Fatalf("code = %q, want %q", ae.Code, api.CodeDeadlineExceeded)
	}
	if resp, body := post(t, ts.URL+"/v1/pipeline", synthBody(192, 24, 41, "")); resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after deadline: %d (%s)", resp.StatusCode, body)
	}
}

// ------------------------------------------------------- degradation

// TestDegradationShedsColdBeforeWarm: at rung 2 a cold synthesis request
// is shed 503 degraded while the resident repeat of a prior request would
// still be priced at the floor. Also checks the batch-window widening
// side effect of rung ≥ 1 and its restoration.
func TestDegradationShedsColdBeforeWarm(t *testing.T) {
	p := parsample.New(parsample.WithBatchWindow(2 * time.Millisecond))
	srv := New(neutralFairness(Config{Pipeline: p, CapacityUnits: 4, QueueLimit: 4}))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Warm one request while the gate is idle.
	if resp, body := post(t, ts.URL+"/v1/pipeline", synthBody(192, 24, 51, "")); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: %d (%s)", resp.StatusCode, body)
	}

	// Manufacture rung-2 pressure: fill the budget, then park three
	// waiters (over half the queue bound of 4, but not at it — a full
	// queue means 429s, not sheds).
	relFill, ae := srv.gate.Admit(context.Background(), "filler", classInteractive, 4)
	if ae != nil {
		t.Fatal(ae)
	}
	ctxW, cancelW := context.WithCancel(context.Background())
	var waiters sync.WaitGroup
	for i := 0; i < 3; i++ {
		waiters.Add(1)
		go func() {
			defer waiters.Done()
			if rel, ae := srv.gate.Admit(ctxW, "filler", classInteractive, 4); ae == nil {
				rel()
			}
		}()
	}
	for deadline := time.Now().Add(5 * time.Second); srv.gate.level() < degradeShedCold; {
		if time.Now().After(deadline) {
			t.Fatal("gate never reached rung 2")
		}
		time.Sleep(time.Millisecond)
	}
	srv.applyPressure()
	if w := p.BatchWindow(); w != 16*time.Millisecond {
		t.Errorf("batch window under pressure = %v, want 16ms (8× the configured 2ms)", w)
	}

	// A cold synthesis request (unseen seed) is shed with 503 degraded.
	resp, body := post(t, ts.URL+"/v1/pipeline", synthBody(192, 24, 52, ""))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold request under rung 2: %d, want 503 (%s)", resp.StatusCode, body)
	}
	if ae := decodeAPIError(t, body); ae.Code != api.CodeDegraded || ae.RetryAfterSec < 1 {
		t.Fatalf("shed error = %+v, want degraded with Retry-After", ae)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 degraded carried no Retry-After header")
	}

	// Drop the pressure; the window must restore and cold requests admit
	// again.
	cancelW()
	waiters.Wait()
	relFill()
	srv.applyPressure()
	if w := p.BatchWindow(); w != 2*time.Millisecond {
		t.Errorf("batch window after pressure = %v, want the configured 2ms", w)
	}
	if resp, body := post(t, ts.URL+"/v1/pipeline", synthBody(192, 24, 52, "")); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold request after recovery: %d (%s)", resp.StatusCode, body)
	}
	_, sb := get(t, ts.URL+"/statsz")
	var st struct {
		Admission admitStats `json:"admission"`
	}
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.Shed.ColdRequests != 1 || st.Admission.Rejected.Degraded != 1 {
		t.Errorf("shed stats = %+v, want 1 cold shed", st.Admission)
	}
}

// ------------------------------------------------- gate unit behavior

// TestGateStrictPriority: interactive waiters are granted before batch
// waiters, and a too-big interactive head is never bypassed.
func TestGateStrictPriority(t *testing.T) {
	g := newAdmitGate(admitConfig{Capacity: 10, QueueLimit: 8, ClientRate: 1e9, ClientBurst: 1e9})
	relHold, ae := g.Admit(context.Background(), "c", classInteractive, 10)
	if ae != nil {
		t.Fatal(ae)
	}

	type grant struct {
		rel func()
		ae  *api.Error
	}
	enqueue := func(class classID, units float64) chan grant {
		ch := make(chan grant, 1)
		go func() {
			rel, ae := g.Admit(context.Background(), "c", class, units)
			ch <- grant{rel, ae}
		}()
		return ch
	}
	waitQueued := func(n int) {
		t.Helper()
		for deadline := time.Now().Add(5 * time.Second); g.stats().QueueDepth < n; {
			if time.Now().After(deadline) {
				t.Fatalf("queue depth never reached %d", n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	batchCh := enqueue(classBatch, 7)
	waitQueued(1)
	interCh := enqueue(classInteractive, 7)
	waitQueued(2)

	relHold() // 10 units free: interactive (7) fits, batch head (7) does not
	inter := <-interCh
	if inter.ae != nil {
		t.Fatalf("interactive waiter rejected: %v", inter.ae)
	}
	select {
	case b := <-batchCh:
		t.Fatalf("batch waiter granted before interactive released (ae=%v)", b.ae)
	case <-time.After(100 * time.Millisecond):
	}
	st := g.stats()
	if st.InUseUnits != 7 || st.QueueDepth != 1 {
		t.Fatalf("after priority grant: inUse=%v queued=%d, want 7/1", st.InUseUnits, st.QueueDepth)
	}
	inter.rel()
	b := <-batchCh
	if b.ae != nil {
		t.Fatalf("batch waiter rejected after capacity freed: %v", b.ae)
	}
	b.rel()
	if st := g.stats(); st.InUseUnits != 0 || st.QueueDepth != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
}

// TestGateAbandonedWaiterLeavesQueue: a queued waiter whose context dies
// is removed (no stuck queue slots, no lost units).
func TestGateAbandonedWaiterLeavesQueue(t *testing.T) {
	g := newAdmitGate(admitConfig{Capacity: 5, QueueLimit: 4, ClientRate: 1e9, ClientBurst: 1e9})
	rel, ae := g.Admit(context.Background(), "c", classInteractive, 5)
	if ae != nil {
		t.Fatal(ae)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan *api.Error, 1)
	go func() {
		_, ae := g.Admit(ctx, "c", classInteractive, 3)
		errCh <- ae
	}()
	for deadline := time.Now().Add(5 * time.Second); g.stats().QueueDepth < 1; {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if ae := <-errCh; ae == nil || ae.Code != api.CodeCancelled {
		t.Fatalf("abandoned waiter error = %v, want cancelled", ae)
	}
	if st := g.stats(); st.QueueDepth != 0 {
		t.Fatalf("queue depth = %d after abandonment, want 0", st.QueueDepth)
	}
	rel()
	if st := g.stats(); st.InUseUnits != 0 {
		t.Fatalf("inUse = %v after release, want 0", st.InUseUnits)
	}
}

// TestGateTokenBucketRefills: a throttled client recovers as its bucket
// refills; the clock is faked so the test is deterministic.
func TestGateTokenBucketRefills(t *testing.T) {
	g := newAdmitGate(admitConfig{Capacity: 100, QueueLimit: 4, ClientRate: 10, ClientBurst: 20})
	now := time.Unix(1000, 0)
	g.now = func() time.Time { return now }

	rel1, ae := g.Admit(context.Background(), "alice", classInteractive, 15)
	if ae != nil {
		t.Fatal(ae)
	}
	rel1()
	_, ae = g.Admit(context.Background(), "alice", classInteractive, 15)
	if ae == nil || ae.Code != api.CodeOverloaded || ae.RetryAfterSec != 1 {
		t.Fatalf("throttle = %v, want overloaded retry-after 1s (needs 10 more tokens at 10/s)", ae)
	}
	if _, ae := g.Admit(context.Background(), "bob", classInteractive, 15); ae != nil {
		t.Fatalf("bob throttled by alice's spend: %v", ae)
	}
	now = now.Add(2 * time.Second) // alice refills 5 + 20 ≥ cap 20
	rel3, ae := g.Admit(context.Background(), "alice", classInteractive, 15)
	if ae != nil {
		t.Fatalf("alice still throttled after refill: %v", ae)
	}
	rel3()
}

// TestCostHeaders: a synchronous response reports the admission estimate
// and measured compute; the warm repeat reports ~zero actual cost.
func TestCostHeaders(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/pipeline", synthBody(192, 24, 61, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get(CostEstimateHeader) == "" || resp.Header.Get(CostActualHeader) == "" {
		t.Fatalf("missing cost headers: estimate=%q actual=%q",
			resp.Header.Get(CostEstimateHeader), resp.Header.Get(CostActualHeader))
	}
	warm, _ := post(t, ts.URL+"/v1/pipeline", synthBody(192, 24, 61, ""))
	if warm.Header.Get(CacheHeader) != "hit" {
		t.Fatalf("repeat was not a cache hit (%q)", warm.Header.Get(CacheHeader))
	}
	if act := warm.Header.Get(CostActualHeader); act != "0.0" {
		t.Errorf("warm actual cost = %q, want 0.0 (no stage computed)", act)
	}
}

// TestGateInteractiveExpressLane: with the budget saturated by batch
// work, a cheap interactive request (≤ 5% of capacity) is admitted
// immediately through the headroom overdraft, while an equally cheap
// batch request still queues, and an interactive request above the
// express threshold also queues.
func TestGateInteractiveExpressLane(t *testing.T) {
	g := newAdmitGate(admitConfig{Capacity: 100, QueueLimit: 8, ClientRate: 1e9, ClientBurst: 1e9})
	relBig, ae := g.Admit(context.Background(), "filler", classBatch, 100)
	if ae != nil {
		t.Fatal(ae)
	}
	defer relBig()

	relFast, ae := g.Admit(context.Background(), "probe", classInteractive, 2)
	if ae != nil {
		t.Fatalf("cheap interactive request should ride the express lane, got %v", ae)
	}
	defer relFast()
	if st := g.stats(); st.InUseUnits != 102 {
		t.Fatalf("inUse = %v, want 102 (overdraft)", st.InUseUnits)
	}

	// Same cost, batch class: no express lane, must queue.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, ae := g.Admit(ctx, "probe", classBatch, 2); ae == nil || ae.Code != api.CodeCancelled {
		t.Fatalf("cheap batch request bypassed the queue: %v", ae)
	}
	// Interactive but above the 5-unit express threshold: must queue.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	if _, ae := g.Admit(ctx2, "probe", classInteractive, 6); ae == nil || ae.Code != api.CodeCancelled {
		t.Fatalf("expensive interactive request bypassed the queue: %v", ae)
	}
	// The overdraft itself is bounded: a second express request that would
	// exceed capacity+headroom queues like everyone else.
	ctx3, cancel3 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel3()
	if _, ae := g.Admit(ctx3, "probe", classInteractive, 4); ae == nil || ae.Code != api.CodeCancelled {
		t.Fatalf("express lane exceeded its headroom bound: %v", ae)
	}
}

// TestSSESlowConsumerShedViaFailpoint: the server.sse.write failpoint
// stands in for a consumer whose TCP buffer never drains (a blocked
// write that trips the per-frame deadline). The stream must be dropped
// without disturbing the job, and the shed must land in /statsz.
func TestSSESlowConsumerShedViaFailpoint(t *testing.T) {
	p := parsample.New()
	ts := httptest.NewServer(New(neutralFairness(Config{Pipeline: p})))
	t.Cleanup(ts.Close)
	resp, body := post(t, ts.URL+"/v1/jobs", smallSynthBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var ji JobInfo
	if err := json.Unmarshal(body, &ji); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, ts.URL+"/v1/jobs/"+ji.ID, JobDone, 30*time.Second)

	t.Cleanup(faultinject.Reset)
	faultinject.Enable("server.sse.write", faultinject.Spec{Mode: faultinject.ModeError, Count: 1})

	resp, body = get(t, ts.URL+"/v1/jobs/"+ji.ID+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("shed stream delivered frames anyway: %q", body)
	}
	if got := faultinject.Fired("server.sse.write"); got != 1 {
		t.Fatalf("failpoint fired %d times, want 1", got)
	}
	var st struct {
		Admission admitStats `json:"admission"`
	}
	_, body = get(t, ts.URL+"/statsz")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.Shed.SSESlowConsumers != 1 {
		t.Fatalf("shed.sseSlowConsumers = %d, want 1", st.Admission.Shed.SSESlowConsumers)
	}

	// The job itself is untouched and a healthy consumer still replays
	// the full stream.
	resp, body = get(t, ts.URL+"/v1/jobs/"+ji.ID+"/events")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "event: done") {
		t.Fatalf("replay after shed: %d %q", resp.StatusCode, body)
	}
}
