// Package server is the HTTP serving tier of parsample: a thin, stateless
// handler layer over one shared parsample.Pipeline, so every request —
// concurrent, repeated, or overlapping — funnels into the same memoizing
// artifact store (identical in-flight requests compute each stage once;
// warm repeats are served from cache in microseconds).
//
// Endpoints (DESIGN.md §6):
//
//	POST   /v1/pipeline        synchronous run: api.Request in, api.Response out
//	POST   /v1/jobs            async submission; returns a job id immediately
//	GET    /v1/jobs/{id}       job status (+ response once done)
//	DELETE /v1/jobs/{id}       cancel a running job mid-kernel
//	GET    /v1/jobs/{id}/events  SSE per-stage progress from the engine trace
//	GET    /healthz            liveness
//	GET    /statsz             artifact-store counters
//
// Every non-2xx response body is a structured api.Error. Synchronous
// responses carry an X-Parsample-Cache header ("hit" when every stage was
// served from the store, "miss" otherwise) — cache provenance stays out of
// the body so response bytes remain a pure function of the request.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"parsample"
	"parsample/api"
	"parsample/internal/pipeline"
)

// Config parameterizes a Server.
type Config struct {
	// Pipeline is the shared engine every request runs on. Required.
	Pipeline *parsample.Pipeline
	// MaxBodyBytes bounds request bodies (0: 64 MiB).
	MaxBodyBytes int64
}

// CacheHeader is the response header reporting cache provenance of a
// synchronous run: "hit" when every stage was served resident, "miss"
// when any stage computed.
const CacheHeader = "X-Parsample-Cache"

// Server routes the v1 service API onto one shared Pipeline. Safe for
// concurrent use; create with New.
type Server struct {
	p       *parsample.Pipeline
	maxBody int64
	jobs    *jobStore
	mux     *http.ServeMux
}

// New creates a Server over cfg.Pipeline.
func New(cfg Config) *Server {
	if cfg.Pipeline == nil {
		panic("server: Config.Pipeline is required")
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 64 << 20
	}
	s := &Server{p: cfg.Pipeline, maxBody: maxBody, jobs: newJobStore()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/pipeline", s.handlePipeline)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handlePipeline is POST /v1/pipeline: one synchronous end-to-end run.
func (s *Server) handlePipeline(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	warm := true
	ctx := pipeline.WithObserver(r.Context(), func(e pipeline.TraceEntry) {
		if e.Source == pipeline.Computed {
			warm = false
		}
	})
	resp, err := s.p.Do(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	cache := "miss"
	if warm {
		cache = "hit"
	}
	w.Header().Set(CacheHeader, cache)
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStatsz is GET /statsz: the artifact-store counters plus job
// bookkeeping.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	type statsz struct {
		Store parsample.PipelineStats `json:"store"`
		Jobs  jobCounts               `json:"jobs"`
	}
	writeJSON(w, http.StatusOK, statsz{Store: s.p.Stats(), Jobs: s.jobs.counts()})
}

// decodeRequest reads and strictly decodes the request body, writing a
// structured 400 on failure.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*api.Request, bool) {
	req, err := api.ReadRequest(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		writeError(w, err)
		return nil, false
	}
	return req, true
}

// writeJSON marshals v compactly. Marshalling the schema types cannot
// fail; a failure here is a programming error worth a 500.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"code":"internal","message":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
	w.Write([]byte("\n"))
}

// statusCancelled is nginx's "client closed request": the run was
// cancelled (client disconnect or job DELETE) before a response existed.
const statusCancelled = 499

// writeError maps an error onto a status code and a structured api.Error
// body.
func writeError(w http.ResponseWriter, err error) {
	var ae *api.Error
	if !errors.As(err, &ae) {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ae = api.Errorf(api.CodeCancelled, "run cancelled: %v", err)
		} else {
			ae = api.Errorf(api.CodeInternal, "%v", err)
		}
	}
	writeJSON(w, errorStatus(ae), ae)
}

// errorStatus maps an api.Error code to its HTTP status.
func errorStatus(ae *api.Error) int {
	switch ae.Code {
	case api.CodeBadRequest:
		return http.StatusBadRequest
	case api.CodeNotFound:
		return http.StatusNotFound
	case api.CodeCancelled:
		return statusCancelled
	default:
		return http.StatusInternalServerError
	}
}

// pathID extracts the {id} wildcard, 404ing on empty.
func pathID(w http.ResponseWriter, r *http.Request) (string, bool) {
	id := r.PathValue("id")
	if id == "" {
		writeError(w, api.Errorf(api.CodeNotFound, "missing job id"))
		return "", false
	}
	return id, true
}
