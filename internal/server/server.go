// Package server is the HTTP serving tier of parsample: a thin, stateless
// handler layer over one shared parsample.Pipeline, so every request —
// concurrent, repeated, or overlapping — funnels into the same memoizing
// artifact store (identical in-flight requests compute each stage once;
// warm repeats are served from cache in microseconds).
//
// Endpoints (DESIGN.md §6):
//
//	POST   /v1/pipeline        synchronous run: api.Request in, api.Response out
//	POST   /v1/jobs            async submission; returns a job id immediately
//	GET    /v1/jobs/{id}       job status (+ response once done)
//	DELETE /v1/jobs/{id}       cancel a running job mid-kernel
//	GET    /v1/jobs/{id}/events  SSE per-stage progress from the engine trace
//	GET    /healthz            liveness
//	GET    /statsz             artifact-store counters
//
// Every non-2xx response body is a structured api.Error. Synchronous
// responses carry an X-Parsample-Cache header ("hit" when every stage was
// served from the store, "disk" when served without compute but through
// the persistent tier, "miss" otherwise) — cache provenance stays out of
// the body so response bytes remain a pure function of the request.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"parsample"
	"parsample/api"
	"parsample/internal/pipeline"
)

// Config parameterizes a Server.
type Config struct {
	// Pipeline is the shared engine every request runs on. Required.
	Pipeline *parsample.Pipeline
	// MaxBodyBytes bounds request bodies (0: 64 MiB).
	MaxBodyBytes int64
	// CapacityUnits is the admission gate's concurrent compute budget in
	// cost units (api.EstimateCost; 0: 2000 — about two seconds of
	// single-threaded kernel time in flight).
	CapacityUnits float64
	// QueueLimit bounds waiters parked at the admission gate across both
	// priority classes (0: 64). Requests beyond it get a 429.
	QueueLimit int
	// ClientRateUnits / ClientBurstUnits parameterize the per-client
	// fairness token bucket (0: capacity/2 per second, burst = capacity).
	ClientRateUnits  float64
	ClientBurstUnits float64
}

// CacheHeader is the response header reporting cache provenance of a
// synchronous run: "hit" when every stage was served from the in-memory
// store, "disk" when no stage computed but at least one was loaded from
// the persistent tier (the warm-restart signature), "miss" when any stage
// computed.
const CacheHeader = "X-Parsample-Cache"

// Cost headers: the admission-time estimate and the measured compute of a
// synchronous run, both in cost units. They travel as headers for the
// same reason CacheHeader does — response bodies are a pure function of
// the normalized request, and cost is server state, not result.
const (
	CostEstimateHeader = "X-Parsample-Cost-Estimate"
	CostActualHeader   = "X-Parsample-Cost-Actual"
)

// warmCostUnits is the admission price of a request whose expensive
// artifacts are already resident (Pipeline.Resident): a warm repeat is a
// store lookup, not a kernel run, so it is admitted at the floor price
// and never queues behind cold work it would not contend with.
const warmCostUnits = 1

// degradedRetryAfterSec is the Retry-After of a cold request shed at
// degradation level 2: pressure that trips the ladder drains on the order
// of the queue, not of one request.
const degradedRetryAfterSec = 2

// Server routes the v1 service API onto one shared Pipeline. Safe for
// concurrent use; create with New.
type Server struct {
	p       *parsample.Pipeline
	maxBody int64
	jobs    *jobStore
	mux     *http.ServeMux

	gate       *admitGate
	baseWindow time.Duration // the batch window degradation restores to
	lastLevel  atomic.Int32  // last applied degradation rung
}

// New creates a Server over cfg.Pipeline.
func New(cfg Config) *Server {
	if cfg.Pipeline == nil {
		panic("server: Config.Pipeline is required")
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 64 << 20
	}
	s := &Server{
		p:       cfg.Pipeline,
		maxBody: maxBody,
		jobs:    newJobStore(),
		gate: newAdmitGate(admitConfig{
			Capacity:    cfg.CapacityUnits,
			QueueLimit:  cfg.QueueLimit,
			ClientRate:  cfg.ClientRateUnits,
			ClientBurst: cfg.ClientBurstUnits,
		}),
		baseWindow: cfg.Pipeline.BatchWindow(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/pipeline", s.handlePipeline)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handlePipeline is POST /v1/pipeline: one synchronous end-to-end run,
// behind the admission gate (priced by api.EstimateCost, discounted when
// the request's artifacts are resident).
func (s *Server) handlePipeline(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	norm, err := req.Normalized()
	if err != nil {
		writeError(w, err)
		return
	}
	adm, ae := s.admit(r, norm, classFor(r, classInteractive))
	if ae != nil {
		writeError(w, ae)
		return
	}
	defer adm.release()

	ctx := r.Context()
	if norm.DeadlineMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(norm.DeadlineMillis)*time.Millisecond)
		defer cancel()
	}
	warm := true
	anyDisk := false
	var computedMS float64
	ctx = pipeline.WithObserver(ctx, func(e pipeline.TraceEntry) {
		switch e.Source {
		case pipeline.Computed:
			warm = false
			computedMS += float64(e.Duration.Microseconds()) / 1000
		case pipeline.Disk:
			anyDisk = true
		}
	})
	resp, err := s.p.Do(ctx, norm)
	if err != nil {
		if norm.DeadlineMillis > 0 && errors.Is(err, context.DeadlineExceeded) {
			err = api.WrapError(api.CodeDeadlineExceeded, err,
				"run exceeded its %dms deadline", norm.DeadlineMillis)
		}
		writeError(w, err)
		return
	}
	// Provenance precedence: any computed stage makes the request a miss;
	// otherwise any persistent-tier load reports "disk" (the warm-restart
	// signature); otherwise everything came from memory — "hit".
	cache := "miss"
	if warm {
		cache = "hit"
		if anyDisk {
			cache = "disk"
		}
	}
	w.Header().Set(CacheHeader, cache)
	w.Header().Set(CostEstimateHeader, formatUnits(adm.estimate))
	w.Header().Set(CostActualHeader, formatUnits(computedMS))
	writeJSON(w, http.StatusOK, resp)
}

// admission is one admitted request's grant.
type admission struct {
	release  func()
	estimate float64 // the cold-cost estimate in units (pre-discount)
	units    float64 // the admitted (possibly warm-discounted) price
}

// classFor maps the priority header onto a class; dflt applies when the
// header is absent or unknown.
func classFor(r *http.Request, dflt classID) classID {
	switch r.Header.Get(PriorityHeader) {
	case "interactive":
		return classInteractive
	case "batch":
		return classBatch
	}
	return dflt
}

// admit prices norm, applies the degradation ladder, and acquires the
// admission gate. On rejection the returned *api.Error is ready to write
// (structured code + Retry-After). On success the caller owns
// admission.release.
func (s *Server) admit(r *http.Request, norm *api.Request, class classID) (*admission, *api.Error) {
	est := api.EstimateCost(norm)
	units := est.Units
	warm := s.p.Resident(norm)
	if warm {
		units = warmCostUnits
	}
	// Deadline feasibility: a request whose own deadline is below its
	// compute estimate can never succeed; reject it before it spends
	// budget. Queue wait is excluded by the DeadlineMillis contract.
	if norm.DeadlineMillis > 0 && units > float64(norm.DeadlineMillis) {
		return nil, api.Errorf(api.CodeOverCapacity,
			"deadline %dms is below the estimated compute cost of %.0f units; raise the deadline or shrink the request",
			norm.DeadlineMillis, units)
	}
	// Degradation rung 2: shed cold synthesis work before any cached work
	// is turned away — resident artifacts answer in microseconds and keep
	// the service useful while the backlog drains. A request the queue
	// bound would reject anyway skips the shed and gets the gate's 429.
	if !warm && norm.Network.Synthesis != nil &&
		s.gate.level() >= degradeShedCold && !s.gate.queueFull(units) {
		s.gate.countShedCold()
		s.applyPressure()
		ae := api.Errorf(api.CodeDegraded,
			"server is shedding cold synthesis requests under load; retry after %ds", degradedRetryAfterSec)
		ae.RetryAfterSec = degradedRetryAfterSec
		return nil, ae
	}
	client := r.Header.Get(ClientHeader)
	if client == "" {
		client = "anonymous"
	}
	release, ae := s.gate.Admit(r.Context(), client, class, units)
	if ae != nil {
		s.applyPressure()
		return nil, ae
	}
	s.applyPressure()
	return &admission{
		release: func() {
			release()
			s.applyPressure()
		},
		estimate: est.Units,
		units:    units,
	}, nil
}

// applyPressure re-derives the degradation rung from gate pressure and
// applies its batch-window side effect: rung ≥ 1 widens the engine's
// sweep-batch window 8× (concurrent cold sweeps coalesce harder, cutting
// kernel work per admitted request), rung 0 restores the configured
// window. A pipeline configured with batching disabled stays disabled —
// the operator's choice outranks the ladder.
func (s *Server) applyPressure() {
	lvl := int32(s.gate.level())
	if s.lastLevel.Swap(lvl) == lvl || s.baseWindow <= 0 {
		return
	}
	if lvl >= degradeCoalesce {
		s.p.SetBatchWindow(8 * s.baseWindow)
	} else {
		s.p.SetBatchWindow(s.baseWindow)
	}
}

func formatUnits(u float64) string {
	return strconv.FormatFloat(u, 'f', 1, 64)
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStatsz is GET /statsz: the artifact-store counters, job
// bookkeeping, and the admission gate's pressure counters.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	type statsz struct {
		Store     parsample.PipelineStats `json:"store"`
		Jobs      jobCounts               `json:"jobs"`
		Admission admitStats              `json:"admission"`
	}
	adm := s.gate.stats()
	adm.Level = s.gate.level()
	adm.BatchWindowMS = float64(s.p.BatchWindow().Microseconds()) / 1000
	writeJSON(w, http.StatusOK, statsz{Store: s.p.Stats(), Jobs: s.jobs.counts(), Admission: adm})
}

// decodeRequest reads and strictly decodes the request body, writing a
// structured 400 on failure — or a structured 413 payload_too_large when
// the body-limit reader tripped (api.ReadRequest preserves the
// *http.MaxBytesError in its error chain for exactly this check).
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*api.Request, bool) {
	req, err := api.ReadRequest(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.gate.countTooLarge()
			err = api.WrapError(api.CodePayloadTooLarge, err,
				"request body exceeds the %d-byte limit", mbe.Limit)
		}
		writeError(w, err)
		return nil, false
	}
	return req, true
}

// writeJSON marshals v compactly. Marshalling the schema types cannot
// fail; a failure here is a programming error worth a 500.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"code":"internal","message":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
	w.Write([]byte("\n"))
}

// statusCancelled is nginx's "client closed request": the run was
// cancelled (client disconnect or job DELETE) before a response existed.
const statusCancelled = 499

// writeError maps an error onto a status code and a structured api.Error
// body; load-shedding errors additionally carry a Retry-After header
// mirroring RetryAfterSec.
func writeError(w http.ResponseWriter, err error) {
	var ae *api.Error
	if !errors.As(err, &ae) {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			ae = api.Errorf(api.CodeCancelled, "run cancelled: %v", err)
		} else {
			ae = api.Errorf(api.CodeInternal, "%v", err)
		}
	}
	if ae.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ae.RetryAfterSec))
	}
	writeJSON(w, errorStatus(ae), ae)
}

// errorStatus maps an api.Error code to its HTTP status.
func errorStatus(ae *api.Error) int {
	switch ae.Code {
	case api.CodeBadRequest:
		return http.StatusBadRequest
	case api.CodeNotFound:
		return http.StatusNotFound
	case api.CodeCancelled:
		return statusCancelled
	case api.CodePayloadTooLarge:
		return http.StatusRequestEntityTooLarge
	case api.CodeOverloaded:
		return http.StatusTooManyRequests
	case api.CodeOverCapacity, api.CodeDegraded:
		return http.StatusServiceUnavailable
	case api.CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// pathID extracts the {id} wildcard, 404ing on empty.
func pathID(w http.ResponseWriter, r *http.Request) (string, bool) {
	id := r.PathValue("id")
	if id == "" {
		writeError(w, api.Errorf(api.CodeNotFound, "missing job id"))
		return "", false
	}
	return id, true
}
