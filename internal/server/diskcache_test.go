package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"parsample"
)

// A daemon restart with a persistent cache directory: replica A computes and
// exits, replica B sharing the directory serves the same request from disk
// snapshots — byte-identical body, "disk" cache header, zero kernels run —
// and the repeat on B is an ordinary memory hit.
func TestWarmRestartServesFromDiskByteIdentical(t *testing.T) {
	dir := t.TempDir()

	pa := parsample.New(parsample.WithCacheDir(dir))
	tsA := httptest.NewServer(New(Config{Pipeline: pa}))
	respA, bodyA := post(t, tsA.URL+"/v1/pipeline", smallSynthBody)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", respA.StatusCode, bodyA)
	}
	if c := respA.Header.Get(CacheHeader); c != "miss" {
		t.Fatalf("cold request cache header = %q, want miss", c)
	}
	tsA.Close()
	pa.Close() // the daemon's shutdown path: drain, then flush write-behind

	pb := parsample.New(parsample.WithCacheDir(dir))
	defer pb.Close()
	tsB := httptest.NewServer(New(Config{Pipeline: pb}))
	defer tsB.Close()

	respB, bodyB := post(t, tsB.URL+"/v1/pipeline", smallSynthBody)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("warm-restart status %d: %s", respB.StatusCode, bodyB)
	}
	if c := respB.Header.Get(CacheHeader); c != "disk" {
		t.Fatalf("warm-restart cache header = %q, want disk", c)
	}
	if !bytes.Equal(bodyA, bodyB) {
		t.Fatal("warm-restart response differs from the original bytes")
	}
	st := pb.Stats()
	if st.Misses != 0 {
		t.Fatalf("warm restart ran %d kernels, want 0; stats %+v", st.Misses, st)
	}
	if st.DiskHits == 0 {
		t.Fatalf("no disk hits recorded; stats %+v", st)
	}

	// Now resident: the repeat is a plain memory hit.
	respC, bodyC := post(t, tsB.URL+"/v1/pipeline", smallSynthBody)
	if c := respC.Header.Get(CacheHeader); c != "hit" {
		t.Fatalf("repeat cache header = %q, want hit", c)
	}
	if !bytes.Equal(bodyA, bodyC) {
		t.Fatal("resident repeat differs")
	}

	// /statsz serves the disk-tier counters on the wire.
	_, statsBody := get(t, tsB.URL+"/statsz")
	var wire struct {
		Store map[string]json.RawMessage `json:"store"`
	}
	if err := json.Unmarshal(statsBody, &wire); err != nil {
		t.Fatalf("statsz: %v\n%s", err, statsBody)
	}
	for _, k := range []string{"disk_hits", "disk_misses", "write_behind_pending", "write_behind_errors", "disk_bytes_used"} {
		if _, ok := wire.Store[k]; !ok {
			t.Fatalf("statsz store block lacks %q: %s", k, statsBody)
		}
	}
}
