package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"parsample"
	"parsample/api"
	"parsample/internal/graph"
)

// smallSynthBody is a fast end-to-end request: a synthesized matrix with
// planted modules and a generated ontology, so every stage (network →
// order → filter → cluster → score) runs.
const smallSynthBody = `{
	"network": {"synthesis": {"genes": 192, "samples": 24, "modules": 4, "moduleSize": 8, "seed": 7}},
	"filter": {"algorithm": "chordal-nocomm", "ordering": "HD", "p": 4, "seed": 3}
}`

func newTestServer(t testing.TB, opts ...parsample.Option) (*httptest.Server, *parsample.Pipeline) {
	t.Helper()
	p := parsample.New(opts...)
	ts := httptest.NewServer(New(Config{Pipeline: p}))
	t.Cleanup(ts.Close)
	return ts, p
}

func post(t testing.TB, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func get(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestPipelineSyncRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/pipeline", smallSynthBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if c := resp.Header.Get(CacheHeader); c != "miss" {
		t.Fatalf("cold request cache header = %q, want miss", c)
	}
	var r api.Response
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("bad response body: %v\n%s", err, body)
	}
	if r.Version != api.Version {
		t.Fatalf("version = %d", r.Version)
	}
	if r.Network.Vertices != 192 || r.Network.Edges == 0 {
		t.Fatalf("network = %+v", r.Network)
	}
	if r.Filtered == nil || r.Filtered.Edges == 0 || r.Filtered.Edges > r.Network.Edges {
		t.Fatalf("filtered = %+v", r.Filtered)
	}
	if len(r.Clusters) == 0 {
		t.Fatal("no clusters from planted modules")
	}
	if len(r.Scores) != len(r.Clusters) {
		t.Fatalf("scores = %d, clusters = %d (synthesis defaults scoring on)", len(r.Scores), len(r.Clusters))
	}
	if r.Request == nil || r.Request.Filter.Algorithm != "chordal-nocomm" || *r.Request.Cluster.MinScore != 3.0 {
		t.Fatalf("normalized request echo: %+v", r.Request)
	}

	// Warm repeat: cache-hit header and byte-identical body.
	resp2, body2 := post(t, ts.URL+"/v1/pipeline", smallSynthBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d", resp2.StatusCode)
	}
	if c := resp2.Header.Get(CacheHeader); c != "hit" {
		t.Fatalf("warm request cache header = %q, want hit", c)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("warm repeat returned different bytes")
	}
}

// The same request must marshal to byte-identical responses across daemon
// instances and worker counts — the determinism contract of the v1 schema.
func TestResponseDeterministicAcrossRunsAndWorkers(t *testing.T) {
	var first []byte
	for i, workers := range []int{1, 4} {
		ts, _ := newTestServer(t, parsample.WithWorkers(workers))
		resp, body := post(t, ts.URL+"/v1/pipeline", smallSynthBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d status %d: %s", workers, resp.StatusCode, body)
		}
		if i == 0 {
			first = body
		} else if !bytes.Equal(first, body) {
			t.Fatalf("workers=%d produced different response bytes", workers)
		}
	}
}

// Acceptance: N concurrent identical requests against one daemon compute
// each stage once. The engine's singleflight means exactly one miss per
// stage (5 stages: network, order, filter, cluster, score); every other
// request joins in flight or hits the store.
func TestConcurrentIdenticalRequestsDedupe(t *testing.T) {
	ts, p := newTestServer(t)
	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/pipeline", "application/json", strings.NewReader(smallSynthBody))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
	st := p.Stats()
	if st.Misses != 5 {
		t.Fatalf("misses = %d, want exactly 5 (one per stage)", st.Misses)
	}
	if st.Shared+st.Hits == 0 {
		t.Fatal("no request shared in-flight work or hit the store")
	}
}

func TestMalformedRequests400(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"syntax", `{"network":`},
		{"unknown field", `{"network":{"dataset":"YNG"},"fitler":{}}`},
		{"no source", `{"filter":{"algorithm":"chordal-seq"}}`},
		{"two sources", `{"network":{"dataset":"YNG","edgeList":"0 1"}}`},
		{"bad algorithm", `{"network":{"dataset":"YNG"},"filter":{"algorithm":"quantum"}}`},
		{"zero minScore", `{"network":{"dataset":"YNG"},"cluster":{"minScore":0}}`},
	}
	for _, tc := range cases {
		for _, ep := range []string{"/v1/pipeline", "/v1/jobs"} {
			resp, body := post(t, ts.URL+ep, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s %s: status %d, want 400 (%s)", tc.name, ep, resp.StatusCode, body)
			}
			var ae api.Error
			if err := json.Unmarshal(body, &ae); err != nil || ae.Code != api.CodeBadRequest || ae.Message == "" {
				t.Fatalf("%s %s: body %s is not a structured bad_request", tc.name, ep, body)
			}
		}
	}
	// Content-level errors surface when the source is materialized: a 400
	// synchronously, a failed job (with the same structured error)
	// asynchronously.
	badContent := `{"network":{"edgeList":"0 one\n"}}`
	resp, body := post(t, ts.URL+"/v1/pipeline", badContent)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad edge list sync: status %d (%s)", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/jobs", badContent)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bad edge list submit: status %d (%s)", resp.StatusCode, body)
	}
	var ji JobInfo
	if err := json.Unmarshal(body, &ji); err != nil {
		t.Fatal(err)
	}
	failed := waitStatus(t, ts.URL+"/v1/jobs/"+ji.ID, JobFailed, 10*time.Second)
	if failed.Error == nil || failed.Error.Code != api.CodeBadRequest {
		t.Fatalf("failed job error = %+v", failed.Error)
	}
}

func waitStatus(t *testing.T, url string, want string, timeout time.Duration) JobInfo {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		_, body := get(t, url)
		var ji JobInfo
		if err := json.Unmarshal(body, &ji); err != nil {
			t.Fatalf("job body: %v\n%s", err, body)
		}
		if ji.Status == want {
			return ji
		}
		if ji.Status != JobRunning {
			t.Fatalf("job reached %q (error %+v), want %q", ji.Status, ji.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q after %v", ji.Status, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sseEvents reads SSE frames from r until a "done" frame or EOF.
func sseEvents(t *testing.T, r io.Reader) []Event {
	t.Helper()
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad SSE data %q: %v", line, err)
		}
		out = append(out, e)
		if e.Type == "done" {
			break
		}
	}
	return out
}

func TestJobLifecycleAndEventOrder(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := post(t, ts.URL+"/v1/jobs", smallSynthBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var ji JobInfo
	if err := json.Unmarshal(body, &ji); err != nil || ji.ID == "" {
		t.Fatalf("submit body: %s", body)
	}

	// Live SSE stream, opened while the job runs.
	evResp, err := http.Get(ts.URL + "/v1/jobs/" + ji.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	if ct := evResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	events := sseEvents(t, evResp.Body)

	done := waitStatus(t, ts.URL+"/v1/jobs/"+ji.ID, JobDone, 30*time.Second)
	if done.Response == nil || len(done.Response.Clusters) == 0 {
		t.Fatalf("done job carries no response: %+v", done)
	}

	// Cold-run stage completion order is the dependency order.
	var stages []string
	for _, e := range events {
		if e.Type == "stage" {
			stages = append(stages, e.Stage)
		}
	}
	want := []string{"network", "order", "filter", "cluster", "score"}
	if fmt.Sprint(stages) != fmt.Sprint(want) {
		t.Fatalf("stage order = %v, want %v", stages, want)
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.Status != JobDone {
		t.Fatalf("terminal frame = %+v", last)
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}

	// A replay subscription after completion sees the identical sequence.
	evResp2, err := http.Get(ts.URL + "/v1/jobs/" + ji.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp2.Body.Close()
	replay := sseEvents(t, evResp2.Body)
	if fmt.Sprint(replay) != fmt.Sprint(events) {
		t.Fatalf("replay differs:\n%v\n%v", replay, events)
	}
}

// Cancelling a running job mid-filter unwinds the kernels promptly, lands
// the job in "cancelled" with a structured error, and leaves the store
// unpoisoned (the same request then completes).
func TestJobCancelMidFilter(t *testing.T) {
	// A large inline edge list makes the filter stage the dominant cost
	// (the source resolves instantly, the network stage adopts the graph).
	g := graph.Gnm(20000, 300000, 11)
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	req := api.Request{
		Network: api.NetworkSource{EdgeList: buf.String()},
		Filter:  api.FilterSpec{Algorithm: "chordal-seq"},
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	ts, _ := newTestServer(t)
	resp, sub := post(t, ts.URL+"/v1/jobs", string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, sub)
	}
	var ji JobInfo
	if err := json.Unmarshal(sub, &ji); err != nil {
		t.Fatal(err)
	}
	delResp, delBody := doDelete(t, ts.URL+"/v1/jobs/"+ji.ID)
	if delResp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d: %s", delResp.StatusCode, delBody)
	}
	cancelled := waitStatus(t, ts.URL+"/v1/jobs/"+ji.ID, JobCancelled, 20*time.Second)
	if cancelled.Error == nil || cancelled.Error.Code != api.CodeCancelled {
		t.Fatalf("cancelled job error = %+v", cancelled.Error)
	}
	if cancelled.Response != nil {
		t.Fatal("cancelled job carries a response")
	}

	// The terminal SSE frame reports the cancellation.
	evResp, err := http.Get(ts.URL + "/v1/jobs/" + ji.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	events := sseEvents(t, evResp.Body)
	if len(events) == 0 || events[len(events)-1].Status != JobCancelled {
		t.Fatalf("events = %+v", events)
	}

	// Store left unpoisoned: the same request completes synchronously.
	okResp, okBody := post(t, ts.URL+"/v1/pipeline", string(body))
	if okResp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel rerun status %d: %s", okResp.StatusCode, okBody[:min(len(okBody), 200)])
	}
}

func doDelete(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestJobNotFound(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, ep := range []string{"/v1/jobs/nope", "/v1/jobs/nope/events"} {
		resp, body := get(t, ts.URL+ep)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d", ep, resp.StatusCode)
		}
		var ae api.Error
		if err := json.Unmarshal(body, &ae); err != nil || ae.Code != api.CodeNotFound {
			t.Fatalf("%s: body %s", ep, body)
		}
	}
	resp, _ := doDelete(t, ts.URL+"/v1/jobs/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	post(t, ts.URL+"/v1/pipeline", smallSynthBody)
	resp, body = get(t, ts.URL+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz: %d", resp.StatusCode)
	}
	var st struct {
		Store parsample.PipelineStats `json:"store"`
		Jobs  jobCounts               `json:"jobs"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("statsz body: %v\n%s", err, body)
	}
	if st.Store.BytesBudget == 0 || st.Store.Misses == 0 {
		t.Fatalf("statsz counters: %+v", st.Store)
	}
}

// BenchmarkServerPipeline measures end-to-end HTTP request latency against
// the daemon, cold (fresh engine per iteration) vs warm (every stage served
// from the shared store) — the serving-layer counterpart of
// BenchmarkPipelineEndToEnd.
func BenchmarkServerPipeline(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := parsample.New()
			ts := httptest.NewServer(New(Config{Pipeline: p}))
			b.StartTimer()
			resp, body := post(b, ts.URL+"/v1/pipeline", smallSynthBody)
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			b.StopTimer()
			ts.Close()
			b.StartTimer()
		}
	})
	b.Run("warm", func(b *testing.B) {
		ts, _ := newTestServer(b)
		if resp, body := post(b, ts.URL+"/v1/pipeline", smallSynthBody); resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, _ := post(b, ts.URL+"/v1/pipeline", smallSynthBody)
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	})
}
