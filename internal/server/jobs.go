package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"parsample/api"
	"parsample/internal/faultinject"
	"parsample/internal/pipeline"
)

// Job statuses. A job is running from submission until its run returns;
// cancellation requested via DELETE lands as "cancelled" once the kernels
// unwind.
const (
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobInfo is the wire form of a job's state (GET /v1/jobs/{id} and the
// submission/cancellation acknowledgements).
type JobInfo struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// Error is set for failed and cancelled jobs.
	Error *api.Error `json:"error,omitempty"`
	// Response is set once the job is done.
	Response *api.Response `json:"response,omitempty"`
}

// Event is one SSE frame of a job's progress stream: a completed engine
// stage request ("stage"), or the terminal frame ("done") carrying the
// job's final status.
type Event struct {
	Seq int `json:"seq"`
	// Type is "stage" or "done".
	Type string `json:"type"`
	// Stage/Variant/Source/Millis describe a stage event: which artifact,
	// whether it was computed / served resident / joined in-flight, and the
	// request's wall time.
	Stage   string  `json:"stage,omitempty"`
	Variant string  `json:"variant,omitempty"`
	Source  string  `json:"source,omitempty"`
	Millis  float64 `json:"ms,omitempty"`
	// Status is the job's final status on the "done" frame.
	Status string `json:"status,omitempty"`
}

// job is one asynchronous run.
type job struct {
	id     string
	cancel context.CancelFunc

	mu     sync.Mutex
	status string
	resp   *api.Response
	err    *api.Error
	events []Event
	subs   map[chan Event]bool
}

// record appends an event and fans it out to live subscribers. Buffered
// subscriber channels are sized past any plausible event count; a
// (pathological) full subscriber is skipped rather than blocking the
// compute goroutine.
func (j *job) record(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e.Seq = len(j.events)
	j.events = append(j.events, e)
	for ch := range j.subs {
		select {
		case ch <- e:
		default:
		}
	}
}

// subscribe registers a live channel and returns a snapshot of everything
// recorded so far. Snapshot and registration happen under one lock, so the
// replay + live stream is gapless and in order.
func (j *job) subscribe(ch chan Event) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := append([]Event(nil), j.events...)
	j.subs[ch] = true
	return snap
}

func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.subs, ch)
}

// info snapshots the job's wire form.
func (j *job) info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobInfo{ID: j.id, Status: j.status, Error: j.err, Response: j.resp}
}

// finish records the terminal state and emits the "done" frame.
func (j *job) finish(status string, resp *api.Response, jerr *api.Error) {
	j.mu.Lock()
	j.status = status
	j.resp = resp
	j.err = jerr
	j.mu.Unlock()
	j.record(Event{Type: "done", Status: status})
}

// jobStore tracks jobs by id, retaining the most recent finished jobs up
// to a cap (running jobs are never evicted).
type jobStore struct {
	mu       sync.Mutex
	seq      int
	jobs     map[string]*job
	finished []string // eviction order
	capacity int
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*job), capacity: 256}
}

// create publishes a new running job. cancel must be supplied here: the
// job is reachable by id (and ids are predictable) the moment it enters
// the map, so a concurrently arriving DELETE may invoke it immediately.
func (s *jobStore) create(cancel context.CancelFunc) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &job{
		id:     fmt.Sprintf("job-%06d", s.seq),
		cancel: cancel,
		status: JobRunning,
		subs:   make(map[chan Event]bool),
	}
	s.jobs[j.id] = j
	return j
}

func (s *jobStore) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// retire marks a job finished for retention accounting, evicting the
// oldest finished jobs beyond the cap.
func (s *jobStore) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, id)
	for len(s.finished) > s.capacity {
		old := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, old)
	}
}

type jobCounts struct {
	Running  int `json:"running"`
	Finished int `json:"finished"`
}

func (s *jobStore) counts() jobCounts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return jobCounts{Running: len(s.jobs) - len(s.finished), Finished: len(s.finished)}
}

// handleJobSubmit is POST /v1/jobs: validate eagerly (malformed requests
// fail with a 400 now, not a failed job later), admit through the gate
// (batch class by default — a 429/503 rejection happens at submission,
// not as a failed job later), then run in the background and return the
// job id immediately. The job holds its admitted units until its run
// returns, so queued async work counts against the same compute budget
// as synchronous requests.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	norm, err := req.Normalized()
	if err != nil {
		writeError(w, err)
		return
	}
	adm, ae := s.admit(r, norm, classFor(r, classBatch))
	if ae != nil {
		writeError(w, ae)
		return
	}
	req = norm
	ctx, cancel := context.WithCancel(context.Background())
	if norm.DeadlineMillis > 0 {
		// The deadline clocks compute, not queue time — and admission has
		// already happened, so it starts now.
		dctx, dcancel := context.WithTimeout(ctx, time.Duration(norm.DeadlineMillis)*time.Millisecond)
		ctx = dctx
		prev := cancel
		cancel = func() { dcancel(); prev() }
	}
	j := s.jobs.create(cancel)
	// One event per artifact: the engine traces every store request,
	// including cache hits taken while resolving a later stage's
	// dependencies, so a key's first completion is the progress signal and
	// the rest are noise. The observer runs on the job's single compute
	// goroutine, so the seen-set needs no lock.
	seen := make(map[pipeline.Key]bool)
	ctx = pipeline.WithObserver(ctx, func(e pipeline.TraceEntry) {
		if seen[e.Key] {
			return
		}
		seen[e.Key] = true
		j.record(Event{
			Type:    "stage",
			Stage:   e.Key.Stage.String(),
			Variant: e.Key.Variant.String(),
			Source:  e.Source.String(),
			Millis:  float64(e.Duration.Microseconds()) / 1000,
		})
	})
	go func() {
		defer cancel()
		defer adm.release()
		resp, err := s.p.Do(ctx, req)
		switch {
		case err == nil:
			j.finish(JobDone, resp, nil)
		case req.DeadlineMillis > 0 && errors.Is(err, context.DeadlineExceeded):
			j.finish(JobFailed, nil, api.WrapError(api.CodeDeadlineExceeded, err,
				"job exceeded its %dms deadline", req.DeadlineMillis))
		case errors.Is(err, context.Canceled):
			j.finish(JobCancelled, nil, api.Errorf(api.CodeCancelled, "job cancelled"))
		default:
			var ae *api.Error
			if !errors.As(err, &ae) {
				ae = api.Errorf(api.CodeInternal, "%v", err)
			}
			j.finish(JobFailed, nil, ae)
		}
		s.jobs.retire(j.id)
	}()
	writeJSON(w, http.StatusAccepted, j.info())
}

// handleJobGet is GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, api.Errorf(api.CodeNotFound, "no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

// handleJobCancel is DELETE /v1/jobs/{id}: request cancellation. The
// kernels unwind cooperatively; poll GET (or watch the event stream) for
// the terminal "cancelled" status.
//
// DELETE is idempotent: on a job that already reached a terminal state it
// is a no-op answered 200 with the (unchanged) terminal info, and
// concurrent DELETEs of one job are safe — context.CancelFunc is
// idempotent, and the cancel-then-snapshot order below means at least one
// racer observes (and reports) the still-running state as 202 while none
// can resurrect or corrupt a finished job.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, api.Errorf(api.CodeNotFound, "no job %q", id))
		return
	}
	j.cancel()
	info := j.info()
	status := http.StatusAccepted
	if info.Status != JobRunning {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// handleJobEvents is GET /v1/jobs/{id}/events: an SSE stream replaying the
// job's recorded stage events and following live until the terminal
// "done" frame. Events arrive in engine completion order — for a cold
// run: network, order, filter, cluster, score — each frame a JSON Event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, api.Errorf(api.CodeNotFound, "no job %q", id))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, api.Errorf(api.CodeInternal, "response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Slow-consumer shedding: each frame gets sseWriteTimeout to drain
	// into the peer's socket. A consumer that cannot keep up stalls its
	// own connection only — the write deadline trips, the stream is
	// dropped (counted in /statsz shed.sseSlowConsumers), and the compute
	// side is untouched (j.record never blocks on subscribers).
	sse := &sseWriter{w: w, fl: fl, rc: http.NewResponseController(w)}

	ch := make(chan Event, 256)
	replay := j.subscribe(ch)
	defer j.unsubscribe(ch)
	for _, e := range replay {
		if !sse.writeEvent(e) {
			s.gate.countShedSSE()
			return
		}
		if e.Type == "done" {
			return
		}
	}
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case e := <-ch:
			if !sse.writeEvent(e) {
				s.gate.countShedSSE()
				return
			}
			if e.Type == "done" {
				return
			}
		case <-heartbeat.C:
			// SSE comment frame: keeps idle proxies from timing the
			// stream out while a long kernel runs.
			if !sse.writeRaw(": keepalive\n\n") {
				s.gate.countShedSSE()
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// sseWriteTimeout is the per-frame write deadline of an SSE stream; a
// consumer that cannot drain a frame this fast is shed.
const sseWriteTimeout = 10 * time.Second

// sseWriter writes SSE frames under a per-write deadline.
type sseWriter struct {
	w  http.ResponseWriter
	fl http.Flusher
	rc *http.ResponseController
}

// writeEvent emits one SSE frame; false when the client is gone or too
// slow.
func (s *sseWriter) writeEvent(e Event) bool {
	b, err := json.Marshal(e)
	if err != nil {
		return false
	}
	return s.writeRaw(fmt.Sprintf("event: %s\ndata: %s\n\n", e.Type, b))
}

func (s *sseWriter) writeRaw(frame string) bool {
	// Failpoint: a slow consumer whose TCP buffer is full surfaces as a
	// blocked write that trips the deadline; the injected error simulates
	// that without needing a real stalled socket.
	if err := faultinject.Eval("server.sse.write"); err != nil {
		return false
	}
	// Roll the deadline forward for this frame. ErrNotSupported (a
	// recorder or a middleware without deadline plumbing) degrades to
	// unbounded writes rather than failing the stream.
	if err := s.rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout)); err != nil && !errors.Is(err, http.ErrNotSupported) {
		return false
	}
	if _, err := fmt.Fprint(s.w, frame); err != nil {
		return false
	}
	s.fl.Flush()
	return true
}
