package server

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parsample"
	"parsample/internal/faultinject"
)

// RunDaemon parses daemon flags and serves the v1 API until SIGINT/SIGTERM,
// then drains in-flight requests (10 s grace). It is the shared main of
// cmd/parsampled and `parsample serve`; prog names the flag set in usage
// output.
func RunDaemon(prog string, args []string) error {
	fs := flag.NewFlagSet(prog, flag.ExitOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		cacheMB   = fs.Int64("cache-mb", 0, "artifact-store budget in MiB (0: the 256 MiB default)")
		workers   = fs.Int("workers", 0, "max concurrently executing stage kernels (0: GOMAXPROCS)")
		datasets  = fs.String("datasets", "", "comma-separated datasets to serve, pre-built at startup (YNG,MID,UNT,CRE); empty serves all, built lazily")
		maxBodyMB = fs.Int64("max-body-mb", 64, "request body limit in MiB")
		batchWin  = fs.Duration("batch-window", 2*time.Millisecond, "how long a correlation-network build waits to coalesce concurrent same-data sweeps into one batched kernel pass (0 disables)")
		capacity  = fs.Float64("capacity-units", 0, "admission budget in cost units concurrently in flight (0: 2000; see api.EstimateCost)")
		queueLim  = fs.Int("queue-limit", 0, "max requests queued at the admission gate before 429s (0: 64)")
		clientRt  = fs.Float64("client-rate", 0, "per-client fair-share refill in cost units/second (0: capacity/2)")
		clientBur = fs.Float64("client-burst", 0, "per-client fair-share bucket depth in cost units (0: capacity)")
		failpts   = fs.String("failpoints", os.Getenv("PARSAMPLE_FAILPOINTS"), "fault-injection spec, e.g. \"pipeline.store.put=error;prob=0.01\" (default: $PARSAMPLE_FAILPOINTS; testing only)")
		cacheDir  = fs.String("cache-dir", "", "persistent artifact-cache directory: computed artifacts are snapshotted here and survive restarts; replicas may share one directory (empty disables)")
		diskBytes = fs.Int64("disk-cache-bytes", 0, "persistent cache pruning budget in bytes, least-recently-accessed snapshots deleted beyond it (0: 1 GiB; needs -cache-dir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *failpts != "" {
		if err := faultinject.Configure(*failpts); err != nil {
			return fmt.Errorf("%s: -failpoints: %w", prog, err)
		}
		log.Printf("%s: fault injection armed: %s", prog, *failpts)
	}

	var opts []parsample.Option
	if *cacheMB > 0 {
		opts = append(opts, parsample.WithCacheBytes(*cacheMB<<20))
	}
	if *workers > 0 {
		opts = append(opts, parsample.WithWorkers(*workers))
	}
	if *batchWin > 0 {
		opts = append(opts, parsample.WithBatchWindow(*batchWin))
	}
	if *datasets != "" {
		names := strings.Split(*datasets, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		opts = append(opts, parsample.WithDatasets(names...))
	}
	if *cacheDir != "" {
		// Validate here so a bad flag is a friendly error, not the
		// facade's documented panic (after MkdirAll succeeds, New cannot
		// fail on the directory).
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			return fmt.Errorf("%s: -cache-dir: %w", prog, err)
		}
		opts = append(opts, parsample.WithCacheDir(*cacheDir))
		if *diskBytes > 0 {
			opts = append(opts, parsample.WithDiskCacheBytes(*diskBytes))
		}
	}
	p := parsample.New(opts...)
	// On shutdown, after the listener drains: flush pending write-behind
	// snapshots so everything computed this lifetime is disk-warm for the
	// next one.
	defer p.Close()
	srv := &http.Server{
		Addr: *addr,
		Handler: New(Config{
			Pipeline:         p,
			MaxBodyBytes:     *maxBodyMB << 20,
			CapacityUnits:    *capacity,
			QueueLimit:       *queueLim,
			ClientRateUnits:  *clientRt,
			ClientBurstUnits: *clientBur,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(shutCtx)
	}()

	log.Printf("%s: serving v1 API on %s", prog, *addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-done
}
