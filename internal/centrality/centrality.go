// Package centrality implements the node-centrality measures the paper's
// background ties to gene essentiality in biological networks (Section II:
// "high centrality nodes (degree, betweenness, closeness and their
// combinations) relate to node essentiality"): degree, closeness and
// betweenness centrality, with a parallel Brandes implementation for the
// latter, plus centrality-preservation diagnostics for evaluating filters.
package centrality

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"parsample/internal/graph"
)

// Degree returns the degree centrality of every vertex, normalized by n−1
// (1.0 = connected to every other vertex). For n ≤ 1 all values are 0.
func Degree(g *graph.Graph) []float64 {
	n := g.N()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	denom := float64(n - 1)
	for v := 0; v < n; v++ {
		out[v] = float64(g.Degree(int32(v))) / denom
	}
	return out
}

// Closeness returns the harmonic closeness centrality of every vertex:
// sum over reachable u ≠ v of 1/d(v,u), normalized by n−1. Harmonic
// closeness handles disconnected networks gracefully (unreachable vertices
// contribute zero), which matters for sparse correlation networks.
func Closeness(g *graph.Graph) []float64 {
	n := g.N()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	denom := float64(n - 1)
	off, nbr := g.CSR()
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dist := make([]int32, n)
			queue := make([]int32, 0, n)
			for v := w; v < n; v += workers {
				for i := range dist {
					dist[i] = -1
				}
				dist[v] = 0
				queue = append(queue[:0], int32(v))
				var sum float64
				for len(queue) > 0 {
					x := queue[0]
					queue = queue[1:]
					if dist[x] > 0 {
						sum += 1 / float64(dist[x])
					}
					for _, y := range nbr[off[x]:off[x+1]] {
						if dist[y] < 0 {
							dist[y] = dist[x] + 1
							queue = append(queue, y)
						}
					}
				}
				out[v] = sum / denom
			}
		}(w)
	}
	wg.Wait()
	return out
}

// Betweenness returns the (unweighted, undirected) betweenness centrality of
// every vertex via Brandes' algorithm, parallelized over source vertices.
// Scores are halved to account for undirected double counting and normalized
// by (n−1)(n−2)/2 so values lie in [0, 1].
func Betweenness(g *graph.Graph) []float64 {
	n := g.N()
	out := make([]float64, n)
	if n < 3 {
		return out
	}
	off, nbr := g.CSR()
	workers := runtime.GOMAXPROCS(0)
	partial := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bc := make([]float64, n)
			partial[w] = bc
			// Per-worker scratch.
			sigma := make([]float64, n) // shortest path counts
			dist := make([]int32, n)
			delta := make([]float64, n)
			preds := make([][]int32, n)
			stack := make([]int32, 0, n)
			queue := make([]int32, 0, n)
			for s := w; s < n; s += workers {
				if g.Degree(int32(s)) == 0 {
					continue
				}
				for i := range dist {
					dist[i] = -1
					sigma[i] = 0
					delta[i] = 0
					preds[i] = preds[i][:0]
				}
				sigma[s] = 1
				dist[s] = 0
				stack = stack[:0]
				queue = append(queue[:0], int32(s))
				for len(queue) > 0 {
					v := queue[0]
					queue = queue[1:]
					stack = append(stack, v)
					for _, u := range nbr[off[v]:off[v+1]] {
						if dist[u] < 0 {
							dist[u] = dist[v] + 1
							queue = append(queue, u)
						}
						if dist[u] == dist[v]+1 {
							sigma[u] += sigma[v]
							preds[u] = append(preds[u], v)
						}
					}
				}
				for i := len(stack) - 1; i >= 0; i-- {
					v := stack[i]
					for _, p := range preds[v] {
						delta[p] += sigma[p] / sigma[v] * (1 + delta[v])
					}
					if int(v) != s {
						bc[v] += delta[v]
					}
				}
			}
		}(w)
	}
	wg.Wait()
	norm := float64(n-1) * float64(n-2) // ×1/2 for pairs, ×2 for undirected double count cancel
	for _, bc := range partial {
		for v, x := range bc {
			out[v] += x / norm
		}
	}
	return out
}

// TopK returns the indices of the k largest scores, ties broken by vertex id.
func TopK(scores []float64, k int) []int32 {
	idx := make([]int32, len(scores))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(i, j int) bool {
		if scores[idx[i]] != scores[idx[j]] {
			return scores[idx[i]] > scores[idx[j]]
		}
		return idx[i] < idx[j]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// TopKOverlap measures how well a filtered network preserves the top-k
// central vertices of the original: |topK(orig) ∩ topK(filtered)| / k.
// The paper's adaptive-sampling thesis is that objective-relevant structure
// (here: hub genes) should survive filtering.
func TopKOverlap(orig, filtered []float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	a := TopK(orig, k)
	b := TopK(filtered, k)
	set := make(map[int32]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	hit := 0
	for _, v := range b {
		if set[v] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// SpearmanRank returns the Spearman rank correlation between two centrality
// vectors (e.g. original vs filtered), a standard summary of how well a
// sample preserves a centrality ranking. Returns 0 for length mismatch or
// degenerate input.
func SpearmanRank(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	rx := ranks(x)
	ry := ranks(y)
	// Pearson on ranks.
	n := float64(len(x))
	var sx, sy float64
	for i := range rx {
		sx += rx[i]
		sy += ry[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range rx {
		dx, dy := rx[i]-mx, ry[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// ranks assigns average ranks (1-based) with tie handling.
func ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
