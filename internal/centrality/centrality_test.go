package centrality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parsample/internal/graph"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDegreeCentrality(t *testing.T) {
	// Star graph: center degree 1.0, leaves 1/(n-1).
	n := 6
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	g := b.Build()
	d := Degree(g)
	if !almostEq(d[0], 1) {
		t.Fatalf("center degree centrality = %v", d[0])
	}
	for i := 1; i < n; i++ {
		if !almostEq(d[i], 1.0/5) {
			t.Fatalf("leaf centrality = %v", d[i])
		}
	}
	if v := Degree(graph.FromEdges(1, nil)); v[0] != 0 {
		t.Fatal("singleton degree centrality must be 0")
	}
}

func TestClosenessStar(t *testing.T) {
	// Star K1,4: center reaches 4 vertices at distance 1 → 4/4 = 1.
	// Leaf: 1 at distance 1, 3 at distance 2 → (1 + 3·0.5)/4 = 0.625.
	b := graph.NewBuilder(5)
	for i := 1; i < 5; i++ {
		b.AddEdge(0, int32(i))
	}
	c := Closeness(b.Build())
	if !almostEq(c[0], 1) {
		t.Fatalf("center closeness = %v", c[0])
	}
	if !almostEq(c[1], 0.625) {
		t.Fatalf("leaf closeness = %v", c[1])
	}
}

func TestClosenessDisconnected(t *testing.T) {
	// Two K2 components in a 4-vertex graph: each vertex reaches one other
	// vertex at distance 1 → 1/3.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	c := Closeness(b.Build())
	for v, x := range c {
		if !almostEq(x, 1.0/3) {
			t.Fatalf("closeness[%d] = %v, want 1/3", v, x)
		}
	}
}

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2: vertex 1 lies on the single shortest path between 0 and 2.
	// Normalized: 1 / ((n-1)(n-2)/2) = 1/1 = 1... with our normalization
	// (halved double counting already folded in): bc[1] counts pair (0,2)
	// once in each direction => 2/((n-1)(n-2)) = 2/2 = 1.
	bc := Betweenness(graph.Path(3))
	if !almostEq(bc[1], 1) {
		t.Fatalf("middle betweenness = %v, want 1", bc[1])
	}
	if !almostEq(bc[0], 0) || !almostEq(bc[2], 0) {
		t.Fatalf("endpoints betweenness = %v, %v", bc[0], bc[2])
	}
}

func TestBetweennessStarCenter(t *testing.T) {
	// Star: all shortest paths between leaves pass the center; center
	// normalized betweenness = 1, leaves 0.
	n := 7
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	bc := Betweenness(b.Build())
	if !almostEq(bc[0], 1) {
		t.Fatalf("center betweenness = %v, want 1", bc[0])
	}
	for i := 1; i < n; i++ {
		if !almostEq(bc[i], 0) {
			t.Fatalf("leaf betweenness = %v", bc[i])
		}
	}
}

func TestBetweennessCompleteZero(t *testing.T) {
	// In K_n every pair is adjacent: nobody lies between anyone.
	for _, bc := range Betweenness(graph.Complete(6)) {
		if !almostEq(bc, 0) {
			t.Fatalf("K6 betweenness = %v, want 0", bc)
		}
	}
}

func TestBetweennessCycleUniform(t *testing.T) {
	bc := Betweenness(graph.Cycle(8))
	for i := 1; i < len(bc); i++ {
		if !almostEq(bc[i], bc[0]) {
			t.Fatalf("cycle betweenness not uniform: %v", bc)
		}
	}
	if bc[0] <= 0 {
		t.Fatal("cycle betweenness must be positive")
	}
}

func TestBetweennessTinyGraphs(t *testing.T) {
	if bc := Betweenness(graph.Path(2)); bc[0] != 0 || bc[1] != 0 {
		t.Fatal("n<3 should be all zeros")
	}
	if bc := Betweenness(graph.FromEdges(0, nil)); len(bc) != 0 {
		t.Fatal("empty graph")
	}
}

// Property: betweenness values are non-negative and bounded by 1 on random
// graphs; closeness is bounded by 1; degree centrality matches definition.
func TestCentralityBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		g := graph.Gnm(n, rng.Intn(3*n), seed)
		for _, x := range Betweenness(g) {
			if x < -1e-12 || x > 1+1e-9 {
				return false
			}
		}
		for _, x := range Closeness(g) {
			if x < 0 || x > 1+1e-9 {
				return false
			}
		}
		d := Degree(g)
		for v := 0; v < n; v++ {
			if !almostEq(d[v], float64(g.Degree(int32(v)))/float64(n-1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	top := TopK(scores, 3)
	if len(top) != 3 || top[0] != 1 || top[1] != 3 || top[2] != 2 {
		t.Fatalf("top = %v", top)
	}
	if got := TopK(scores, 99); len(got) != 5 {
		t.Fatal("k > n should clamp")
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []float64{5, 4, 3, 2, 1}
	b := []float64{5, 4, 0, 2, 3}
	// top3(a) = {0,1,2}; top3(b) = {0,1,4} → overlap 2/3.
	if got := TopKOverlap(a, b, 3); !almostEq(got, 2.0/3) {
		t.Fatalf("overlap = %v", got)
	}
	if TopKOverlap(a, b, 0) != 0 {
		t.Fatal("k=0 must be 0")
	}
	if got := TopKOverlap(a, a, 5); !almostEq(got, 1) {
		t.Fatalf("self overlap = %v", got)
	}
}

func TestSpearmanRank(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	if got := SpearmanRank(x, y); !almostEq(got, 1) {
		t.Fatalf("monotone spearman = %v", got)
	}
	rev := []float64{50, 40, 30, 20, 10}
	if got := SpearmanRank(x, rev); !almostEq(got, -1) {
		t.Fatalf("reversed spearman = %v", got)
	}
	if SpearmanRank(x, []float64{1}) != 0 {
		t.Fatal("length mismatch must be 0")
	}
	if SpearmanRank([]float64{2, 2, 2}, []float64{1, 2, 3}) != 0 {
		t.Fatal("constant vector must give 0")
	}
}

func TestSpearmanTieHandling(t *testing.T) {
	// Ties get averaged ranks; a tied x against any y must stay in [-1, 1].
	x := []float64{1, 1, 2, 2, 3}
	y := []float64{1, 2, 3, 4, 5}
	got := SpearmanRank(x, y)
	if got < 0.8 || got > 1 {
		t.Fatalf("tied spearman = %v", got)
	}
}

// The thesis check: the chordal filter preserves hub genes far better than
// random deletion of the same number of edges.
func TestFilterPreservesHubs(t *testing.T) {
	pr := graph.PlantedModules(600, 500, graph.ModuleSpec{
		Count: 8, MinSize: 6, MaxSize: 9, Density: 0.7, NoiseDeg: 0.5, Window: 3,
	}, 3)
	g := pr.G
	origDeg := Degree(g)
	// A planted module member is among the top-degree vertices.
	top := TopK(origDeg, 30)
	inModule := map[int32]bool{}
	for _, mod := range pr.Modules {
		for _, v := range mod {
			inModule[v] = true
		}
	}
	hubHits := 0
	for _, v := range top {
		if inModule[v] {
			hubHits++
		}
	}
	if hubHits < 15 {
		t.Fatalf("only %d/30 hubs are module members; generator regression?", hubHits)
	}
}

func BenchmarkBetweenness(b *testing.B) {
	g := graph.Gnm(2000, 6000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Betweenness(g)
	}
}
