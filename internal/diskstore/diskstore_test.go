package diskstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"parsample/internal/faultinject"
)

// TestMain asserts the package leaks no goroutines: every Store opened by a
// test must be Closed, unwinding its write-behind writer.
func TestMain(m *testing.M) {
	base := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > base {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			fmt.Fprintf(os.Stderr, "diskstore: %d goroutines leaked (baseline %d):\n%s\n", n-base, base, buf)
			code = 1
		}
	}
	os.Exit(code)
}

func open(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestPutGetContainsDrop(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	blob := []byte("0123456789abcdef")
	name := strings.Repeat("ab", 32)
	if s.Contains(name) {
		t.Fatal("empty store contains blob")
	}
	if _, ok := s.Get(name); ok {
		t.Fatal("empty store served blob")
	}
	if err := s.Put(name, blob); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(name) {
		t.Fatal("published blob not visible")
	}
	got, ok := s.Get(name)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Get = (%q, %v), want the published blob", got, ok)
	}
	s.Drop(name)
	if s.Contains(name) {
		t.Fatal("dropped blob still visible")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.IntegrityDrops != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutAsyncFlushedByClose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte{0xAA}, 64)
	name := strings.Repeat("cd", 32)
	var doneErr error
	var doneCalled bool
	if !s.PutAsync(name, func() ([]byte, error) { return blob, nil }, func(err error) {
		doneCalled = true
		doneErr = err
	}) {
		t.Fatal("enqueue refused on an idle queue")
	}
	s.Close() // drains the queue
	if !doneCalled || doneErr != nil {
		t.Fatalf("done = (%v, %v), want (true, nil)", doneCalled, doneErr)
	}
	if !s.Contains(name) {
		t.Fatal("Close did not flush the pending write")
	}
	// A Store that never wrote this blob sees it on Open (warm restart).
	s2 := open(t, dir, 0)
	got, ok := s2.Get(name)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatal("fresh store handle missed the published blob")
	}
	if used := s2.Stats().BytesUsed; used != int64(len(blob)) {
		t.Fatalf("open-time scan found %d bytes, want %d", used, len(blob))
	}
	// PutAsync after Close is a counted shed, not a hang or a panic.
	if s.PutAsync(name, func() ([]byte, error) { return blob, nil }, nil) {
		t.Fatal("enqueue accepted after Close")
	}
	if s.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", s.Stats().Dropped)
	}
}

func TestPutAsyncShedsWhenFull(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), QueueLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Block the writer on its first item so the queue backs up.
	release := make(chan struct{})
	s.PutAsync("aa", func() ([]byte, error) { <-release; return []byte("x"), nil }, nil)
	s.PutAsync("bb", func() ([]byte, error) { return []byte("y"), nil }, nil) // fills the queue (writer may or may not have picked up aa yet)
	// With the writer blocked and the buffer full, further enqueues shed.
	deadline := time.Now().Add(time.Second)
	shed := false
	for time.Now().Before(deadline) {
		if !s.PutAsync("cc", func() ([]byte, error) { return []byte("z"), nil }, nil) {
			shed = true
			break
		}
	}
	close(release)
	if !shed {
		t.Fatal("full queue never shed a write")
	}
	if s.Stats().Dropped == 0 {
		t.Fatal("shed write not counted")
	}
}

func TestEncodeErrorAndPanicContained(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	boom := errors.New("encode failed")
	done := make(chan error, 1)
	s.PutAsync("ee", func() ([]byte, error) { return nil, boom }, func(err error) { done <- err })
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("done err = %v, want the encode error", err)
	}
	s.PutAsync("ff", func() ([]byte, error) { panic("encoder bug") }, func(err error) { done <- err })
	if err := <-done; err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("done err = %v, want a contained panic", err)
	}
	if s.Contains("ee") || s.Contains("ff") {
		t.Fatal("failed writes published a blob")
	}
	if st := s.Stats(); st.WriteErrors != 2 {
		t.Fatalf("write errors = %d, want 2", st.WriteErrors)
	}
}

// The crash-consistency test: the diskstore.write failpoint kills the write
// after half the blob is on disk. Nothing may be published — a torn snapshot
// must be unobservable, exactly as if the process died mid-write — and no
// temp litter may leak into the published namespace.
func TestWriteFailpointMidSnapshotPublishesNothing(t *testing.T) {
	faultinject.Enable("diskstore.write", faultinject.Spec{Mode: faultinject.ModeError})
	defer faultinject.Disable("diskstore.write")

	s := open(t, t.TempDir(), 0)
	name := strings.Repeat("77", 32)
	err := s.Put(name, bytes.Repeat([]byte{0x55}, 4096))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	if s.Contains(name) {
		t.Fatal("a write killed mid-snapshot was published")
	}
	// The half-written temp file is cleaned up on the error path; after a
	// real SIGKILL it would linger but never match the *.snap suffix readers
	// and the pruner look for.
	ents, err := os.ReadDir(filepath.Join(s.dir, name[:2]))
	if err == nil {
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".snap") {
				t.Fatalf("published blob %s exists after mid-snapshot kill", e.Name())
			}
			if strings.HasPrefix(e.Name(), "tmp-") {
				t.Fatalf("temp file %s leaked after a contained write failure", e.Name())
			}
		}
	}
	faultinject.Disable("diskstore.write")
	// The failure is transient, not poisoning: the same Put now succeeds.
	if err := s.Put(name, bytes.Repeat([]byte{0x55}, 4096)); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(name) {
		t.Fatal("store poisoned by a previous injected failure")
	}
}

// Acceptance criterion: two Stores (standing in for two replica processes)
// share one directory, hammer overlapping content-addressed names
// concurrently, and every read observes either absence or a complete,
// correct blob — never torn bytes. Run under -race in CI.
func TestConcurrentWritersSharedDirNoTornReads(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, 0)
	b := open(t, dir, 0)

	const keys = 8
	blobFor := func(k int) []byte {
		// Content-addressing means both writers of a key produce identical
		// bytes; make each key's blob distinctive and large enough to span
		// several write(2) calls internally.
		return bytes.Repeat([]byte{byte('A' + k)}, 8192+k)
	}
	nameFor := func(k int) string { return fmt.Sprintf("%02x", k) + strings.Repeat("00", 31) }

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 64)
	for _, s := range []*Store{a, b} {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(s *Store, seed int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := (i + seed) % keys
					if err := s.Put(nameFor(k), blobFor(k)); err != nil {
						errc <- err
						return
					}
				}
			}(s, w*3)
		}
		wg.Add(1)
		go func(s *Store) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := i % keys
				if data, ok := s.Get(nameFor(k)); ok {
					if !bytes.Equal(data, blobFor(k)) {
						errc <- fmt.Errorf("torn read for key %d: %d bytes", k, len(data))
						return
					}
				}
			}
		}(s)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestPruneEvictsOldestStamped(t *testing.T) {
	dir := t.TempDir()
	// Budget fits two 1 KiB blobs, not three.
	s := open(t, dir, 2048)
	blob := bytes.Repeat([]byte{1}, 1024)
	names := []string{
		strings.Repeat("aa", 32),
		strings.Repeat("bb", 32),
		strings.Repeat("cc", 32),
	}
	if err := s.Put(names[0], blob); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(names[1], blob); err != nil {
		t.Fatal(err)
	}
	// Backdate blob 1 and freshen blob 0 so the victim is unambiguous even
	// on filesystems with coarse timestamps.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(s.path(names[1]), old, old); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(names[0]); !ok { // bumps the access stamp
		t.Fatal("blob 0 missing")
	}
	if err := s.Put(names[2], blob); err != nil { // 3 KiB > 2 KiB: prune
		t.Fatal(err)
	}
	if s.Contains(names[1]) {
		t.Fatal("pruner kept the least-recently-accessed blob")
	}
	if !s.Contains(names[0]) || !s.Contains(names[2]) {
		t.Fatal("pruner evicted a recently used blob")
	}
	st := s.Stats()
	if st.Prunes != 1 {
		t.Fatalf("prunes = %d, want 1", st.Prunes)
	}
	if st.BytesUsed > 2048 {
		t.Fatalf("bytes used = %d, want ≤ budget after prune", st.BytesUsed)
	}
}

// Blobs above the mmap threshold round-trip identically through the mapped
// load path (on Linux; the portable path elsewhere).
func TestLargeBlobRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	blob := make([]byte, mmapThreshold+4096)
	for i := range blob {
		blob[i] = byte(i * 2654435761)
	}
	name := strings.Repeat("dd", 32)
	if err := s.Put(name, blob); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(name)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("large blob round trip failed: ok=%v len=%d", ok, len(got))
	}
}
