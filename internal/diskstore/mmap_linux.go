//go:build linux

package diskstore

import (
	"os"
	"syscall"
)

// loadFile returns a blob's bytes: small blobs are read (a copy is cheaper
// than a mapping), large ones are mapped read-only and shared. The mapping
// is intentionally never unmapped — decoded artifacts alias it (zero-copy
// CSR arenas), and since we never write through it the pages stay clean
// file-backed memory the kernel reclaims at will. Unlinking a mapped blob
// (pruning, Drop, a sibling replica's rename-over) is safe: the inode
// outlives its directory entry for as long as the mapping exists.
func loadFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 || size < mmapThreshold {
		return os.ReadFile(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err != nil {
		// Fall back to a plain read (e.g. a filesystem without mmap).
		return os.ReadFile(path)
	}
	return data, nil
}
