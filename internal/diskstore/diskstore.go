// Package diskstore is the persistent content-addressed blob tier beneath
// the pipeline's in-memory artifact store (DESIGN.md §10). It stores opaque
// snapshot blobs keyed by hex content hashes, with:
//
//   - Atomic publication: blobs are written to a unique temp file in the
//     target directory and renamed into place, so a reader (this process or
//     a sibling replica sharing the directory) either sees a complete blob
//     or no blob — never a torn write. rename(2) over an existing name is
//     itself atomic, so concurrent writers of one key are safe: last
//     publisher wins, and both publish identical bytes by construction
//     (content-addressed keys).
//
//   - Bounded asynchronous write-behind: PutAsync enqueues onto a fixed
//     channel served by one background writer; a full queue drops the
//     write (counted) rather than blocking the serving path. Close drains
//     the queue, so a SIGTERM'd daemon flushes its warm artifacts.
//
//   - LRU-by-access pruning: every Get bumps the blob's timestamp, and when
//     the directory exceeds its byte budget the writer deletes
//     oldest-stamped blobs until back under. Deleting a blob another
//     replica holds open (or mmap'd) is safe on the platforms we serve
//     from: the inode lives until the last reference drops.
//
//   - mmap loads: blobs at or above mmapThreshold are mapped read-only
//     instead of copied (Linux; other platforms read). Mappings are
//     deliberately never unmapped — decoded artifacts alias them for the
//     life of the process, and the pages are clean file-backed memory the
//     kernel can reclaim under pressure.
//
// The store knows nothing about snapshot formats; integrity is the codec's
// job (checksummed envelopes, see internal/snapshot). When a caller finds a
// blob corrupt it calls Drop, turning the poisoned entry into a miss for
// the whole fleet.
package diskstore

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parsample/internal/faultinject"
)

// DefaultMaxBytes is the disk budget when a configuration leaves it unset.
const DefaultMaxBytes int64 = 1 << 30

// defaultQueueLen bounds pending write-behind snapshots. Each queued item
// holds its artifact alive until encoded, so the bound also caps write-path
// memory amplification.
const defaultQueueLen = 128

// mmapThreshold is the blob size at which Get maps instead of reads. Small
// blobs (orders, cluster sets) are cheaper to copy than to map; big CSR
// arenas win from zero-copy.
const mmapThreshold = 128 << 10

// Config parameterizes Open.
type Config struct {
	// Dir is the cache directory (created if missing). It may be shared by
	// any number of replicas.
	Dir string
	// MaxBytes is the pruning budget for the directory (≤ 0 →
	// DefaultMaxBytes). Replicas sharing a directory each enforce their own
	// budget against the shared usage.
	MaxBytes int64
	// QueueLen bounds pending write-behind blobs (≤ 0 → a 128 default).
	QueueLen int
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Writes counts published blobs; WriteErrors counts write-behind
	// failures (including injected ones); Dropped counts writes shed
	// because the queue was full.
	Writes, WriteErrors, Dropped int64
	// Pending is the current write-behind queue depth.
	Pending int
	// BytesUsed is the directory usage as of the last full scan, adjusted
	// by writes since.
	BytesUsed int64
	// MaxBytes is the configured pruning budget.
	MaxBytes int64
	// Prunes counts blobs deleted by the byte-budget pruner.
	Prunes int64
	// IntegrityDrops counts blobs removed via Drop (failed decode upstream).
	IntegrityDrops int64
}

type writeReq struct {
	name   string
	encode func() ([]byte, error)
	done   func(err error)
}

// Store is one handle on a cache directory. All methods are safe for
// concurrent use; any number of Stores (across processes) may share a
// directory.
type Store struct {
	dir   string
	max   int64
	queue chan writeReq
	wg    sync.WaitGroup

	mu     sync.Mutex // guards closed and the usage estimate
	closed bool
	bytes  int64

	hits           atomic.Int64
	misses         atomic.Int64
	writes         atomic.Int64
	writeErrors    atomic.Int64
	dropped        atomic.Int64
	prunes         atomic.Int64
	integrityDrops atomic.Int64
}

// Open creates (if needed) and scans the cache directory, then starts the
// write-behind goroutine. The only hard failure is an unusable directory.
func Open(cfg Config) (*Store, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	max := cfg.MaxBytes
	if max <= 0 {
		max = DefaultMaxBytes
	}
	qlen := cfg.QueueLen
	if qlen <= 0 {
		qlen = defaultQueueLen
	}
	s := &Store{
		dir:   cfg.Dir,
		max:   max,
		queue: make(chan writeReq, qlen),
	}
	s.bytes = s.scanBytes()
	s.wg.Add(1)
	go s.writer()
	return s, nil
}

// Close stops accepting writes, drains the pending queue to disk and stops
// the writer goroutine. Safe to call once; Get keeps working afterwards.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// path shards blobs across 256 subdirectories by hash prefix so a big cache
// never piles every entry into one directory.
func (s *Store) path(name string) string {
	shard := "xx"
	if len(name) >= 2 {
		shard = name[:2]
	}
	return filepath.Join(s.dir, shard, name+".snap")
}

// Get returns the blob stored under name. The returned bytes may alias a
// read-only mmap — treat them as immutable and do not retain past the
// artifact they decode into... which may be forever; that is fine (see the
// package comment on mappings). A hit bumps the blob's timestamp, feeding
// the LRU-by-access pruner.
func (s *Store) Get(name string) ([]byte, bool) {
	data, err := loadFile(s.path(name))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	// Access stamp for the pruner; racing with a concurrent rename or
	// delete just loses the bump.
	//parsamplevet:ignore nondeterm access stamps order pruning only; no artifact bytes derive from them
	now := time.Now()
	_ = os.Chtimes(s.path(name), now, now)
	return data, true
}

// Contains reports whether a blob is published under name, without reading
// it or bumping its access stamp.
func (s *Store) Contains(name string) bool {
	_, err := os.Stat(s.path(name))
	return err == nil
}

// Put encodes and publishes a blob synchronously.
func (s *Store) Put(name string, data []byte) error {
	err := s.write(name, func() ([]byte, error) { return data, nil })
	if err != nil {
		s.writeErrors.Add(1)
	} else {
		s.writes.Add(1)
	}
	return err
}

// PutAsync enqueues a blob for the write-behind goroutine. encode runs on
// that goroutine (keeping serialization cost off the serving path); done,
// when non-nil, is called with the write outcome. Returns false — counting
// a dropped write — when the queue is full or the store is closed.
func (s *Store) PutAsync(name string, encode func() ([]byte, error), done func(err error)) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.dropped.Add(1)
		return false
	}
	// Enqueue under mu so close(queue) cannot race a send.
	select {
	case s.queue <- writeReq{name: name, encode: encode, done: done}:
		s.mu.Unlock()
		return true
	default:
		s.mu.Unlock()
		s.dropped.Add(1)
		return false
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	bytes := s.bytes
	s.mu.Unlock()
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Writes:         s.writes.Load(),
		WriteErrors:    s.writeErrors.Load(),
		Dropped:        s.dropped.Load(),
		Pending:        len(s.queue),
		BytesUsed:      bytes,
		MaxBytes:       s.max,
		Prunes:         s.prunes.Load(),
		IntegrityDrops: s.integrityDrops.Load(),
	}
}

// Drop removes a published blob — the corrupt-snapshot path: the caller
// failed to decode it, so deleting turns a poisoned entry into an ordinary
// miss for every replica.
func (s *Store) Drop(name string) {
	p := s.path(name)
	if fi, err := os.Stat(p); err == nil {
		if os.Remove(p) == nil {
			s.integrityDrops.Add(1)
			s.addBytes(-fi.Size())
		}
	}
}

// writer is the write-behind goroutine: it publishes queued blobs, prunes
// when over budget, and survives panicking encoders (a snapshot is an
// optimization, never worth the process).
func (s *Store) writer() {
	defer s.wg.Done()
	for req := range s.queue {
		err := s.writeContained(req.name, req.encode)
		if err != nil {
			s.writeErrors.Add(1)
		} else {
			s.writes.Add(1)
		}
		if req.done != nil {
			req.done(err)
		}
	}
}

// writeContained is write with panic containment.
func (s *Store) writeContained(name string, encode func() ([]byte, error)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("diskstore: snapshot write panicked: %v", r)
		}
	}()
	return s.write(name, encode)
}

// write encodes and atomically publishes one blob, then prunes if the
// budget is exceeded. The `diskstore.write` failpoint fires after the first
// half of the blob is on disk — an injected error there is exactly a
// write-behind killed mid-snapshot, leaving an unpublished temp file that
// no reader can ever observe (the crash-consistency argument in one line).
func (s *Store) write(name string, encode func() ([]byte, error)) error {
	data, err := encode()
	if err != nil {
		return err
	}
	p := s.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		// On any failure below the temp file is removed; publication happens
		// only through the rename.
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	half := len(data) / 2
	if _, err := tmp.Write(data[:half]); err != nil {
		return err
	}
	// Failpoint: die mid-snapshot (DESIGN.md §8 failpoint catalog).
	if err := faultinject.Eval("diskstore.write"); err != nil {
		return err
	}
	if _, err := tmp.Write(data[half:]); err != nil {
		return err
	}
	tmpName := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(tmpName)
		return err
	}
	tmp = nil // publication path owns the file now
	var replaced int64
	if fi, err := os.Stat(p); err == nil {
		replaced = fi.Size()
	}
	if err := os.Rename(tmpName, p); err != nil {
		os.Remove(tmpName)
		return err
	}
	s.addBytes(int64(len(data)) - replaced)
	s.maybePrune()
	return nil
}

func (s *Store) addBytes(delta int64) {
	s.mu.Lock()
	s.bytes += delta
	if s.bytes < 0 {
		s.bytes = 0
	}
	s.mu.Unlock()
}

// maybePrune rescans the directory and deletes oldest-stamped blobs until
// usage fits the budget. The rescan also resynchronizes the usage estimate
// with writes made by sibling replicas sharing the directory.
func (s *Store) maybePrune() {
	s.mu.Lock()
	over := s.bytes > s.max
	s.mu.Unlock()
	if !over {
		return
	}
	type blob struct {
		path  string
		size  int64
		stamp time.Time
	}
	var blobs []blob
	var total int64
	_ = filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil // a racing delete by a sibling is not an error
		}
		if filepath.Ext(path) != ".snap" {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return nil
		}
		blobs = append(blobs, blob{path: path, size: fi.Size(), stamp: fi.ModTime()})
		total += fi.Size()
		return nil
	})
	sort.Slice(blobs, func(i, j int) bool {
		if !blobs[i].stamp.Equal(blobs[j].stamp) {
			return blobs[i].stamp.Before(blobs[j].stamp)
		}
		return blobs[i].path < blobs[j].path
	})
	for _, b := range blobs {
		if total <= s.max {
			break
		}
		if os.Remove(b.path) == nil {
			total -= b.size
			s.prunes.Add(1)
		}
	}
	s.mu.Lock()
	s.bytes = total
	s.mu.Unlock()
}

// scanBytes sums published blob sizes (Open-time baseline).
func (s *Store) scanBytes() int64 {
	var total int64
	_ = filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".snap" {
			return nil
		}
		if fi, err := d.Info(); err == nil {
			total += fi.Size()
		}
		return nil
	})
	return total
}
