//go:build !linux

package diskstore

import "os"

// loadFile reads a blob. The portable path copies; the Linux build maps
// large blobs read-only instead (see mmap_linux.go).
func loadFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}
