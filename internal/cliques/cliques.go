// Package cliques enumerates maximal cliques — the "regions of highly
// connected subgraphs" whose retention is the stated objective of the
// paper's adaptive filter. Two algorithms are provided: Bron–Kerbosch with
// pivoting for arbitrary graphs, and the linear-time perfect-elimination
// sweep for chordal graphs (a chordal graph has at most n maximal cliques).
// Their agreement on chordal inputs doubles as a cross-check of the chordal
// machinery.
package cliques

import (
	"sort"

	"parsample/internal/chordal"
	"parsample/internal/graph"
)

// MaximalCliques enumerates all maximal cliques of g using Bron–Kerbosch
// with greedy pivoting. Each clique is returned as a sorted vertex slice;
// the result is sorted lexicographically for determinism. Intended for the
// sparse networks of this domain; worst-case output is exponential, so
// maxCliques (if > 0) caps the enumeration.
//
// Adjacency tests inside the recursion run through HasEdgeFast; on vertex
// universes small enough for dense rows (graph.EnsureDense) every test is a
// single bit probe, which is where most of the pivoting cost goes. Building
// the rows is a one-time mutation of the shared graph — callers running
// concurrent HasEdge readers on g should call g.EnsureDense() themselves
// before fanning out.
func MaximalCliques(g *graph.Graph, maxCliques int) [][]int32 {
	n := g.N()
	var out [][]int32
	if n == 0 {
		return out
	}
	g.EnsureDense()
	// Degeneracy-ordered outer loop keeps the recursion shallow on sparse
	// graphs (Eppstein–Löffler–Strash).
	order := degeneracyOrder(g)
	pos := graph.InversePerm(order)

	stop := func() bool { return maxCliques > 0 && len(out) >= maxCliques }

	var bk func(r, p, x []int32)
	bk = func(r, p, x []int32) {
		if stop() {
			return
		}
		if len(p) == 0 && len(x) == 0 {
			clique := append([]int32(nil), r...)
			sort.Slice(clique, func(i, j int) bool { return clique[i] < clique[j] })
			out = append(out, clique)
			return
		}
		// Pivot: vertex of P ∪ X with most neighbors in P.
		pivot := int32(-1)
		best := -1
		for _, cand := range [2][]int32{p, x} {
			for _, u := range cand {
				cnt := 0
				if row := g.Row(u); row != nil {
					for _, v := range p {
						if row.Has(v) {
							cnt++
						}
					}
				} else {
					for _, v := range p {
						if u != v && g.HasEdgeFast(u, v) {
							cnt++
						}
					}
				}
				if cnt > best {
					best, pivot = cnt, u
				}
			}
		}
		// Candidates: P \ N(pivot).
		var cands []int32
		for _, v := range p {
			if pivot < 0 || pivot == v || !g.HasEdgeFast(pivot, v) {
				cands = append(cands, v)
			}
		}
		for _, v := range cands {
			var np, nx []int32
			for _, w := range p {
				if v != w && g.HasEdgeFast(v, w) {
					np = append(np, w)
				}
			}
			for _, w := range x {
				if v != w && g.HasEdgeFast(v, w) {
					nx = append(nx, w)
				}
			}
			bk(append(r, v), np, nx)
			if stop() {
				return
			}
			// Move v from P to X.
			p = remove(p, v)
			x = append(x, v)
		}
	}

	// Outer level over degeneracy order.
	for _, v := range order {
		if stop() {
			break
		}
		var p, x []int32
		for _, w := range g.Neighbors(v) {
			if pos[w] > pos[v] {
				p = append(p, w)
			} else {
				x = append(x, w)
			}
		}
		bk([]int32{v}, p, x)
	}
	sortCliques(out)
	return out
}

// ChordalMaximalCliques enumerates the maximal cliques of a chordal graph in
// O(n + m) using a perfect elimination ordering: for each vertex v, the set
// {v} ∪ RN(v) (later neighbors in the PEO) is a clique, and it is maximal
// unless it is contained in a successor's clique. Returns nil if g is not
// chordal.
func ChordalMaximalCliques(g *graph.Graph) [][]int32 {
	order := chordal.MCSOrder(g)
	peo := make([]int32, len(order))
	for i, v := range order {
		peo[len(order)-1-i] = v
	}
	if !chordal.IsPerfectEliminationOrdering(g, peo) {
		return nil
	}
	pos := graph.InversePerm(peo)
	n := g.N()
	// For each v: C(v) = {v} ∪ later neighbors. C(v) is maximal iff no
	// earlier vertex u with parent(u) = v has |RN(u)| = |C(v)|; standard
	// criterion: C(v) is dominated iff some u with parent u = v satisfies
	// |RN(u)| - 1 >= |RN(v)| ... we use the simpler subset filter below.
	rn := make([][]int32, n)
	for v := int32(0); int(v) < n; v++ {
		for _, w := range g.Neighbors(v) {
			if pos[w] > pos[v] {
				rn[v] = append(rn[v], w)
			}
		}
	}
	// A candidate clique C(v) is dominated iff there is an earlier u whose
	// RN(u) \ {parent} chain passes through v with size |RN(v)|+1; the
	// classical test: C(v) is maximal iff no u with parent(u)=v has
	// |RN(u)| = |RN(v)| + 1.
	domCount := make([]int, n)
	for u := int32(0); int(u) < n; u++ {
		if len(rn[u]) == 0 {
			continue
		}
		// parent = earliest later-neighbor in PEO.
		p := rn[u][0]
		for _, w := range rn[u][1:] {
			if pos[w] < pos[p] {
				p = w
			}
		}
		if len(rn[u]) == len(rn[p])+1 {
			domCount[p]++
		}
	}
	var out [][]int32
	for v := int32(0); int(v) < n; v++ {
		if domCount[v] > 0 {
			continue // C(v) ⊂ C(u) for some child u
		}
		clique := append([]int32{v}, rn[v]...)
		sort.Slice(clique, func(i, j int) bool { return clique[i] < clique[j] })
		out = append(out, clique)
	}
	out = dedupSubsets(out)
	sortCliques(out)
	return out
}

// CliqueRetention measures the fraction of g's maximal cliques of size ≥
// minSize that survive intact (all edges present) in the filtered graph —
// the paper's "retaining all or most of such cliques" objective, made
// quantitative.
func CliqueRetention(g, filtered *graph.Graph, minSize int) float64 {
	filtered.EnsureDense()
	cliques := MaximalCliques(g, 100000)
	total, kept := 0, 0
	for _, c := range cliques {
		if len(c) < minSize {
			continue
		}
		total++
		intact := true
	outer:
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if !filtered.HasEdge(c[i], c[j]) {
					intact = false
					break outer
				}
			}
		}
		if intact {
			kept++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(kept) / float64(total)
}

// degeneracyOrder returns a degeneracy (smallest-last) vertex ordering.
func degeneracyOrder(g *graph.Graph) []int32 {
	n := g.N()
	deg := make([]int, n)
	removed := make([]bool, n)
	buckets := make([][]int32, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	order := make([]int32, 0, n)
	cur := 0
	for len(order) < n {
		if cur >= n {
			break
		}
		bk := buckets[cur]
		if len(bk) == 0 {
			cur++
			continue
		}
		v := bk[len(bk)-1]
		buckets[cur] = bk[:len(bk)-1]
		if removed[v] || deg[v] != cur {
			continue
		}
		removed[v] = true
		order = append(order, v)
		for _, w := range g.Neighbors(v) {
			if !removed[w] {
				deg[w]--
				if deg[w] < 0 {
					deg[w] = 0
				}
				buckets[deg[w]] = append(buckets[deg[w]], w)
				if deg[w] < cur {
					cur = deg[w]
				}
			}
		}
	}
	return order
}

func remove(s []int32, v int32) []int32 {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// dedupSubsets drops cliques fully contained in another listed clique (the
// domination filter can leave duplicates on graphs with twin vertices).
func dedupSubsets(cs [][]int32) [][]int32 {
	sort.Slice(cs, func(i, j int) bool { return len(cs[i]) > len(cs[j]) })
	var out [][]int32
	for _, c := range cs {
		sub := false
		for _, big := range out {
			if isSubset(c, big) {
				sub = true
				break
			}
		}
		if !sub {
			out = append(out, c)
		}
	}
	return out
}

func isSubset(a, b []int32) bool {
	if len(a) > len(b) {
		return false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

func sortCliques(cs [][]int32) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
