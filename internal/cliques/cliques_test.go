package cliques

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"parsample/internal/chordal"
	"parsample/internal/graph"
)

func TestMaximalCliquesKn(t *testing.T) {
	cs := MaximalCliques(graph.Complete(5), 0)
	if len(cs) != 1 || len(cs[0]) != 5 {
		t.Fatalf("K5 cliques = %v", cs)
	}
}

func TestMaximalCliquesPath(t *testing.T) {
	// Path: every edge is a maximal clique.
	cs := MaximalCliques(graph.Path(5), 0)
	if len(cs) != 4 {
		t.Fatalf("path cliques = %d, want 4", len(cs))
	}
	for _, c := range cs {
		if len(c) != 2 {
			t.Fatalf("path clique size %d", len(c))
		}
	}
}

func TestMaximalCliquesTriangleWithTail(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	cs := MaximalCliques(b.Build(), 0)
	want := [][]int32{{0, 1, 2}, {2, 3}, {3, 4}}
	if !reflect.DeepEqual(cs, want) {
		t.Fatalf("cliques = %v, want %v", cs, want)
	}
}

func TestMaximalCliquesCap(t *testing.T) {
	cs := MaximalCliques(graph.Path(50), 3)
	if len(cs) != 3 {
		t.Fatalf("cap ignored: %d cliques", len(cs))
	}
}

func TestMaximalCliquesEmpty(t *testing.T) {
	if cs := MaximalCliques(graph.FromEdges(0, nil), 0); len(cs) != 0 {
		t.Fatal("empty graph should have no cliques")
	}
	// Isolated vertices are maximal cliques of size 1.
	cs := MaximalCliques(graph.FromEdges(3, nil), 0)
	if len(cs) != 3 {
		t.Fatalf("3 isolated vertices should give 3 singleton cliques, got %d", len(cs))
	}
}

func TestChordalMaximalCliquesRejectsNonChordal(t *testing.T) {
	if cs := ChordalMaximalCliques(graph.Cycle(5)); cs != nil {
		t.Fatal("non-chordal input should return nil")
	}
}

func TestChordalMaximalCliquesTree(t *testing.T) {
	// A tree's maximal cliques are its edges.
	cs := ChordalMaximalCliques(graph.Path(6))
	if len(cs) != 5 {
		t.Fatalf("path cliques = %d, want 5", len(cs))
	}
}

func TestChordalAgreesWithBKQuick(t *testing.T) {
	// On chordal graphs (outputs of the DSW filter), both enumerators find
	// the same maximal clique set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		m := rng.Intn(3 * n)
		g := graph.Gnm(n, m, seed)
		sub := chordal.MaximalSubgraph(g, graph.NaturalOrder(n)).Edges.Graph(n)
		a := ChordalMaximalCliques(sub)
		b := MaximalCliques(sub, 0)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueCountBoundChordal(t *testing.T) {
	// A chordal graph has at most n maximal cliques.
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Gnm(60, 200, seed)
		sub := chordal.MaximalSubgraph(g, graph.NaturalOrder(60)).Edges.Graph(60)
		cs := ChordalMaximalCliques(sub)
		if len(cs) > 60 {
			t.Fatalf("chordal graph with %d > n maximal cliques", len(cs))
		}
	}
}

func TestCliqueRetentionChordalFilterBeatsRandom(t *testing.T) {
	// The design objective: the chordal filter retains (most) cliques;
	// random edge deletion of the same magnitude does not.
	pr := graph.PlantedModules(400, 320, graph.ModuleSpec{
		Count: 6, MinSize: 5, MaxSize: 7, Density: 0.9, NoiseDeg: 0.4, Window: 3,
	}, 9)
	g := pr.G
	sub := chordal.MaximalSubgraph(g, graph.NaturalOrder(g.N())).Edges.Graph(g.N())
	chordalRet := CliqueRetention(g, sub, 3)

	// Random subgraph with the same edge count.
	rng := rand.New(rand.NewSource(1))
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	rnd := graph.FromEdges(g.N(), edges[:sub.M()])
	randomRet := CliqueRetention(g, rnd, 3)

	if chordalRet <= randomRet {
		t.Fatalf("chordal retention %.2f not above random %.2f", chordalRet, randomRet)
	}
	if chordalRet < 0.5 {
		t.Fatalf("chordal filter retained only %.2f of cliques", chordalRet)
	}
}

func TestCliqueRetentionNoCliques(t *testing.T) {
	g := graph.Path(10)
	if r := CliqueRetention(g, g, 5); r != 1 {
		t.Fatalf("no qualifying cliques should give 1, got %v", r)
	}
}

func BenchmarkMaximalCliques(b *testing.B) {
	pr := graph.PlantedModules(1000, 800, graph.ModuleSpec{
		Count: 12, MinSize: 6, MaxSize: 9, Density: 0.8, NoiseDeg: 0.5,
	}, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximalCliques(pr.G, 0)
	}
}
