package sampling

import (
	"context"
	"math/rand"

	"parsample/internal/comm"
	"parsample/internal/graph"
)

// Forest-fire sampling (Leskovec & Faloutsos, KDD'06) is the second agnostic
// control filter the paper's related-work section cites as "good at
// extracting samples from large networks". It is implemented here as an
// extension baseline: fires start at random vertices and spread to a
// geometrically distributed number of unburned neighbors; traversed edges
// are selected. The stopping rule matches the random-walk control: the
// process runs until the number of edge selections is half the edge count.

// forestFire runs fires over an adjacency view until `selections` edges have
// been selected (repeat selections across fires count, as in the random
// walk). pf is the forward-burning probability. Selected edges accumulate
// into set; n is the vertex universe (for the burn-tag array).
// ctx is polled once per fire; a cancelled run returns early with ctx.Err().
func forestFire(ctx context.Context, verts []int32, n int, neighbors func(int32) []int32, selections int,
	pf float64, rng *rand.Rand, set graph.EdgeCollection) (int64, error) {
	var ops int64
	if len(verts) == 0 || selections <= 0 {
		return ops, nil
	}
	// burnedAt is O(n) per rank (all ranks run concurrently); int32 halves
	// the footprint versus int.
	burnedAt := make([]int32, n) // vertex -> fire id that burned it (0 = never)
	fire := int32(0)
	sel := 0
	idle := 0
	for sel < selections {
		if err := ctx.Err(); err != nil {
			return ops, err
		}
		fire++
		if idle > len(verts) {
			break // nothing left to burn anywhere
		}
		start := verts[rng.Intn(len(verts))]
		queue := []int32{start}
		burnedAt[start] = fire
		burnedAny := false
		for len(queue) > 0 && sel < selections {
			v := queue[0]
			queue = queue[1:]
			// Geometric(1-pf) burst size: number of neighbors to burn.
			k := 0
			for rng.Float64() < pf {
				k++
			}
			nb := neighbors(v)
			ops += int64(len(nb)) + 1
			// Burn up to k unburned (this fire) neighbors, chosen randomly.
			perm := rng.Perm(len(nb))
			for _, pi := range perm {
				if k == 0 || sel >= selections {
					break
				}
				u := nb[pi]
				if burnedAt[u] == fire {
					continue
				}
				burnedAt[u] = fire
				set.Add(v, u)
				sel++
				k--
				burnedAny = true
				queue = append(queue, u)
			}
		}
		if burnedAny {
			idle = 0
		} else {
			idle++
		}
	}
	return ops, nil
}

// forestFireSequential applies the forest-fire filter to the whole network.
func forestFireSequential(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	verts := graph.NaturalOrder(g.N())
	set := graph.NewAccumulator(g.N(), g.M()/4)
	ops, err := forestFire(ctx, verts, g.N(), g.Neighbors, g.M()/2, defaultForwardProb, rng, set)
	if err != nil {
		return nil, err
	}
	res := &Result{Algorithm: ForestFireSeq, Edges: set}
	res.Stats.P = 1
	res.Stats.RankOps = []int64{ops}
	return res, nil
}

// defaultForwardProb is Leskovec's recommended forward-burning probability.
const defaultForwardProb = 0.7

// forestFireParallel partitions the network like the other parallel filters:
// local fires over internal edges, hash-coin admission for border edges
// (communication-free, like the parallel random walk); partial results reach
// the merge rank through one Gatherv.
func forestFireParallel(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	pt := graph.BlockPartition(opts.Order, opts.P)
	p := pt.P()
	internal, border := pt.InternalEdgeCount(g)
	parts := make([]rankResult, p)
	cm := newComm(opts, p)
	defer cm.AbortOnCancel(ctx)()
	runErr := cm.Run(func(r comm.Rank) {
		rank := r.ID()
		rng := rand.New(rand.NewSource(opts.Seed + int64(rank)*104729))
		block := pt.Parts[rank]
		nb := func(v int32) []int32 {
			var out []int32
			for _, w := range g.Neighbors(v) {
				if pt.Part[w] == int32(rank) {
					out = append(out, w)
				}
			}
			return out
		}
		set := graph.NewAccumulator(g.N(), internal[rank]/4)
		ops, err := forestFire(ctx, block, g.N(), nb, internal[rank]/2, defaultForwardProb, rng, set)
		if err != nil {
			r.Abort()
		}
		for bi, a := range block {
			if bi%4096 == 0 {
				abortIfCancelled(ctx, r)
			}
			for _, x := range g.Neighbors(a) {
				if pt.Part[x] != int32(rank) {
					ops++
					if edgeCoin(a, x, opts.Seed) {
						set.Add(a, x)
					}
				}
			}
		}
		r.Compute(ops)
		gatherParts(r, rankResult{edges: set}, parts)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return mergeRanks(ForestFirePar, g.N(), parts, border, cm), nil
}
