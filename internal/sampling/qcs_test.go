package sampling

import (
	"testing"

	"parsample/internal/chordal"
	"parsample/internal/graph"
)

// The paper (Section III.A) observes that the communication-free triangle
// rule "leads to fewer larger cycles" than the earlier communicating
// algorithm, because border-edge pairs are admitted only when a triangle
// closes them. FillInCount quantifies distance-from-chordality: the
// quasi-chordal output of the no-comm variant must be far closer to chordal
// than both the comm variant's output and the original network.
func TestQuasiChordalFewerLargeCycles(t *testing.T) {
	g := graph.Gnm(600, 2000, 5)
	origFill := chordal.FillInCount(g)
	if origFill == 0 {
		t.Fatal("test graph should be far from chordal")
	}
	for _, p := range []int{4, 8, 16} {
		nc := mustRun(t, ChordalNoComm, g, Options{P: p})
		cm := mustRun(t, ChordalComm, g, Options{P: p})
		ncFill := chordal.FillInCount(nc.Graph(g.N()))
		cmFill := chordal.FillInCount(cm.Graph(g.N()))
		if ncFill >= cmFill {
			t.Fatalf("P=%d: no-comm fill-in %d not below comm fill-in %d", p, ncFill, cmFill)
		}
		if cmFill >= origFill {
			t.Fatalf("P=%d: comm fill-in %d not below original %d", p, cmFill, origFill)
		}
		// The no-comm output should be nearly chordal: tiny fill-in
		// relative to its own edge count.
		if ncFill > nc.Edges.Len() {
			t.Fatalf("P=%d: no-comm fill-in %d exceeds its edge count %d", p, ncFill, nc.Edges.Len())
		}
	}
}

// At P=1 both parallel variants are exactly chordal.
func TestParallelVariantsChordalAtP1(t *testing.T) {
	g := graph.Gnm(300, 900, 8)
	for _, alg := range []Algorithm{ChordalNoComm, ChordalComm} {
		res := mustRun(t, alg, g, Options{P: 1})
		if chordal.FillInCount(res.Graph(g.N())) != 0 {
			t.Fatalf("%v at P=1 is not chordal", alg)
		}
	}
}
