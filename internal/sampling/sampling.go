// Package sampling implements the paper's network sampling filters:
//
//   - sequential maximal chordal subgraph extraction (Section III.A),
//   - the earlier parallel chordal sampler WITH border-edge communication
//     (sender/receiver exchange, quasi-chordal output),
//   - the paper's improved COMMUNICATION-FREE parallel chordal sampler
//     (border edges admitted only when they close a triangle with a local
//     chordal edge),
//   - sequential and parallel random-walk sampling as the control filter.
//
// All parallel variants partition the vertex processing order into P
// contiguous blocks (one per simulated processor) and report per-rank
// operation counts plus communication volume, which internal/mpisim turns
// into modeled cluster execution times for the scalability study (Fig. 10).
package sampling

import (
	"context"
	"fmt"

	"parsample/internal/comm"
	"parsample/internal/graph"
	"parsample/internal/mpisim"
)

// Algorithm identifies a sampling filter.
type Algorithm int

const (
	// ChordalSeq is the sequential Dearing–Shier–Warner maximal chordal
	// subgraph filter.
	ChordalSeq Algorithm = iota
	// ChordalComm is the earlier parallel chordal filter that exchanges
	// border edges between processor pairs (sender → receiver) and lets the
	// receiver retain the ones that keep its subgraph chordal.
	ChordalComm
	// ChordalNoComm is the paper's improved communication-free parallel
	// chordal filter: a pair of border edges sharing an external endpoint is
	// admitted iff the local edge closing the triangle is a chordal edge.
	ChordalNoComm
	// RandomWalkSeq is the sequential random-walk control filter.
	RandomWalkSeq
	// RandomWalkPar is the parallel random-walk control filter with
	// coin-flip border-edge admission.
	RandomWalkPar
	// ForestFireSeq is the sequential forest-fire control filter (Leskovec &
	// Faloutsos), an extension baseline beyond the paper's random walk.
	ForestFireSeq
	// ForestFirePar is the parallel forest-fire control filter.
	ForestFirePar
)

// All lists every implemented filter, in declaration order. It is the
// single source of truth for name-driven front ends (CLI flag parsing, the
// service API's wire names).
var All = []Algorithm{
	ChordalSeq, ChordalComm, ChordalNoComm,
	RandomWalkSeq, RandomWalkPar,
	ForestFireSeq, ForestFirePar,
}

// String returns the name used in reports and figures.
func (a Algorithm) String() string {
	switch a {
	case ChordalSeq:
		return "chordal-seq"
	case ChordalComm:
		return "chordal-comm"
	case ChordalNoComm:
		return "chordal-nocomm"
	case RandomWalkSeq:
		return "randomwalk-seq"
	case RandomWalkPar:
		return "randomwalk-par"
	case ForestFireSeq:
		return "forestfire-seq"
	case ForestFirePar:
		return "forestfire-par"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options configures a sampling run.
type Options struct {
	// Order is the vertex processing order (a permutation of 0..N-1). If
	// nil, the natural order is used.
	Order []int32
	// P is the number of simulated processors for parallel algorithms
	// (default 1).
	P int
	// Seed drives the random-walk filters.
	Seed int64
	// Model is the cost model driving the simulated runtime's virtual
	// clocks (nil selects mpisim.DefaultCostModel). The resulting
	// Stats.RankSeconds are in this model's units, so pass the same model
	// to CostModel.Time.
	Model *mpisim.CostModel
	// Comm overrides the communicator a parallel run executes on (nil
	// builds a fresh mpisim simulation over P ranks). internal/transport
	// passes its TCP communicator here so the same kernel closures run as
	// one rank of a genuinely distributed job; the communicator's size must
	// equal the partition count the run derives from Order and P.
	Comm comm.Comm
}

// newComm builds the runtime for a parallel run under opts: the injected
// communicator when one is set, otherwise a fresh mpisim simulation.
func newComm(opts Options, p int) comm.Comm {
	if opts.Comm != nil {
		if got := opts.Comm.P(); got != p {
			panic(fmt.Sprintf("sampling: injected communicator has %d ranks, partition has %d", got, p))
		}
		return opts.Comm
	}
	model := mpisim.DefaultCostModel()
	if opts.Model != nil {
		model = *opts.Model
	}
	return mpisim.NewCommModel(p, model)
}

// Result is the output of a sampling run.
type Result struct {
	// Algorithm that produced the result.
	Algorithm Algorithm
	// Edges of the sampled (filtered) subgraph, duplicates removed. The
	// concrete representation is chosen per run: the sequential chordal
	// filter returns its duplicate-free flat edge list directly; parallel
	// merges use a dense bitset matrix on small vertex universes and a hash
	// set on large ones (graph.NewAccumulator).
	Edges graph.EdgeView
	// Stats feeds the mpisim cost model (per-rank ops, message/byte counts,
	// serial post-processing ops).
	Stats mpisim.RunStats
	// DuplicateBorderEdges counts border edges independently admitted by
	// more than one processor (removed during the sequential merge, as in
	// the paper).
	DuplicateBorderEdges int
	// BorderEdges is the number of cross-partition edges in the input.
	BorderEdges int
}

// Graph materializes the sampled subgraph over n vertices.
func (r *Result) Graph(n int) *graph.Graph { return r.Edges.Graph(n) }

// Run applies the given filter to g.
func Run(alg Algorithm, g *graph.Graph, opts Options) (*Result, error) {
	return RunContext(context.Background(), alg, g, opts)
}

// RunContext is Run with cooperative cancellation. Sequential filters poll
// ctx inside their traversal loops; parallel filters additionally tie the
// simulated runtime to ctx (mpisim.Comm.AbortOnCancel), so ranks blocked in
// receives or collectives unwind promptly when ctx is cancelled. A
// cancelled run returns (nil, ctx.Err()) and leaks no goroutines; a
// completed run is identical to Run (the determinism contract is
// unaffected — ctx only decides whether the run finishes, never what it
// computes).
func RunContext(ctx context.Context, alg Algorithm, g *graph.Graph, opts Options) (*Result, error) {
	if opts.Order == nil {
		opts.Order = graph.NaturalOrder(g.N())
	}
	if !graph.IsPermutation(opts.Order, g.N()) {
		return nil, fmt.Errorf("sampling: order is not a permutation of 0..%d", g.N()-1)
	}
	if opts.P < 1 {
		opts.P = 1
	}
	switch alg {
	case ChordalSeq:
		return chordalSequential(ctx, g, opts)
	case ChordalComm:
		return chordalWithComm(ctx, g, opts)
	case ChordalNoComm:
		return chordalNoComm(ctx, g, opts)
	case RandomWalkSeq:
		return randomWalkSequential(ctx, g, opts)
	case RandomWalkPar:
		return randomWalkParallel(ctx, g, opts)
	case ForestFireSeq:
		return forestFireSequential(ctx, g, opts)
	case ForestFirePar:
		return forestFireParallel(ctx, g, opts)
	}
	return nil, fmt.Errorf("sampling: unknown algorithm %d", int(alg))
}

// abortIfCancelled unwinds the calling rank goroutine when ctx is
// cancelled; Comm.Run recovers the unwind and the sampler returns ctx.Err().
// Rank compute loops call this at coarse strides so a cancelled parallel
// run terminates promptly even when no rank is blocked in the runtime.
func abortIfCancelled(ctx context.Context, r comm.Rank) {
	if ctx.Err() != nil {
		r.Abort()
	}
}

// rankResult is a per-processor partial result, gathered to rank 0 by the
// runtime's Gatherv at the end of every parallel run. Operation counts and
// virtual clocks live in the communicator (charged via Rank.Compute).
type rankResult struct {
	edges    graph.EdgeCollection
	restarts int64
}

// payloadBytes is the modeled wire size of a gathered partial result: two
// int32 endpoints per edge.
func (pr rankResult) payloadBytes() int { return 8 * pr.edges.Len() }

// gatherParts ends a rank's run: it gathers every rank's partial result to
// rank 0 through the runtime (charging the collective's modeled cost) and,
// on rank 0, scatters the payloads into parts for the sequential merge.
func gatherParts(r comm.Rank, mine rankResult, parts []rankResult) {
	gathered := r.Gatherv(0, mine, mine.payloadBytes())
	if r.ID() != 0 {
		return
	}
	for rk, v := range gathered {
		parts[rk] = v.(rankResult)
	}
}

// mergeRanks unions per-rank edge sets sequentially (the paper notes the
// duplicate removal is done during the sequential analysis phase), counts
// duplicates, and copies the runtime's accounting (per-rank ops, virtual
// clocks, point-to-point and collective traffic) into the result stats.
// n is the vertex universe of the input graph.
func mergeRanks(alg Algorithm, n int, parts []rankResult, border int, cm comm.Comm) *Result {
	total := 0
	for _, pr := range parts {
		if pr.edges == nil {
			continue // non-root transport rank: Gatherv delivered nothing here
		}
		total += pr.edges.Len()
	}
	merged := graph.NewAccumulator(n, total)
	res := &Result{
		Algorithm:   alg,
		Edges:       merged,
		BorderEdges: border,
	}
	cm.FillStats(&res.Stats)
	for _, pr := range parts {
		res.Stats.Restarts += pr.restarts
		if pr.edges == nil {
			continue
		}
		pr.edges.ForEach(merged.Add)
	}
	res.DuplicateBorderEdges = total - merged.Len()
	res.Stats.SerialOps = int64(total)
	return res
}
