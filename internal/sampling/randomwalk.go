package sampling

import (
	"context"
	"math/rand"

	"parsample/internal/comm"
	"parsample/internal/graph"
)

// walkEdges performs the paper's random-walk traversal over an adjacency
// view: starting from a random vertex, at each step one incident edge of the
// current vertex is selected with probability 1/d and the walk moves along
// it; no visited bookkeeping is kept, and the process stops after
// `selections` edge selections (the paper uses half the edge count, counting
// repeats). Vertices with no eligible edges cause a uniform restart.
//
// neighbors(v) returns the eligible neighbor list of v; verts is the pool of
// restart vertices. Selected edges accumulate into set.
//
// Only successful selections are charged as compute ops; restarts are
// counted separately so dead-end retries on sparse partitions do not
// inflate the modeled per-rank work (they still show up in
// RunStats.Restarts for diagnostics).
// ctx is polled every 4096 selections; a cancelled walk returns early with
// ctx.Err() (the partial edge set in `set` is then discarded by the caller).
func walkEdges(ctx context.Context, verts []int32, neighbors func(int32) []int32, selections int,
	rng *rand.Rand, set graph.EdgeCollection) (ops, restarts int64, err error) {
	if len(verts) == 0 || selections <= 0 {
		return 0, 0, nil
	}
	cur := verts[rng.Intn(len(verts))]
	failures := 0
	for sel := 0; sel < selections; sel++ {
		if sel%4096 == 0 && ctx.Err() != nil {
			return ops, restarts, ctx.Err()
		}
		nb := neighbors(cur)
		if len(nb) == 0 {
			// Uniform restart; bail out if the whole view appears edgeless
			// (every restart in a row failed).
			restarts++
			failures++
			if failures > len(verts) {
				break
			}
			cur = verts[rng.Intn(len(verts))]
			sel-- // restart does not consume a selection
			continue
		}
		failures = 0
		ops++
		next := nb[rng.Intn(len(nb))]
		set.Add(cur, next)
		cur = next
	}
	return ops, restarts, nil
}

// randomWalkSequential is the sequential random-walk control filter: the
// traversal continues until the number of edge selections is half the total
// number of edges of the network.
func randomWalkSequential(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	verts := graph.NaturalOrder(g.N())
	set := graph.NewAccumulator(g.N(), g.M()/4)
	ops, restarts, err := walkEdges(ctx, verts, g.Neighbors, g.M()/2, rng, set)
	if err != nil {
		return nil, err
	}
	res := &Result{Algorithm: RandomWalkSeq, Edges: set}
	res.Stats.P = 1
	res.Stats.RankOps = []int64{ops}
	res.Stats.Restarts = restarts
	return res, nil
}

// randomWalkParallel partitions the network like the chordal samplers; each
// processor walks its internal edges until selections reach half its internal
// edge count, and every border edge is admitted by an unbiased coin flip.
// The coin flip is a deterministic hash of the edge and seed, so both sides
// of a border make the same decision without communicating (the paper's
// "binary random value"), keeping the filter perfectly scalable. The only
// communication is the final Gatherv of partial results to the merge rank.
func randomWalkParallel(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	pt := graph.BlockPartition(opts.Order, opts.P)
	p := pt.P()
	internal, border := pt.InternalEdgeCount(g)
	parts := make([]rankResult, p)
	cm := newComm(opts, p)
	defer cm.AbortOnCancel(ctx)()
	runErr := cm.Run(func(r comm.Rank) {
		rank := r.ID()
		rng := rand.New(rand.NewSource(opts.Seed + int64(rank)*7919))
		block := pt.Parts[rank]
		// Eligible neighbors: same-partition only.
		nb := func(v int32) []int32 {
			var out []int32
			for _, w := range g.Neighbors(v) {
				if pt.Part[w] == int32(rank) {
					out = append(out, w)
				}
			}
			return out
		}
		set := graph.NewAccumulator(g.N(), internal[rank]/4)
		ops, restarts, err := walkEdges(ctx, block, nb, internal[rank]/2, rng, set)
		if err != nil {
			r.Abort()
		}
		// Border edges incident on this partition: coin-flip admission.
		for bi, a := range block {
			if bi%4096 == 0 {
				abortIfCancelled(ctx, r)
			}
			for _, x := range g.Neighbors(a) {
				if pt.Part[x] != int32(rank) {
					ops++
					if edgeCoin(a, x, opts.Seed) {
						set.Add(a, x)
					}
				}
			}
		}
		r.Compute(ops)
		gatherParts(r, rankResult{edges: set, restarts: restarts}, parts)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return mergeRanks(RandomWalkPar, g.N(), parts, border, cm), nil
}

// edgeCoin is a deterministic fair coin on a normalized edge.
func edgeCoin(u, v int32, seed int64) bool {
	k := graph.SplitMix64(graph.EdgeKey(u, v) ^ uint64(seed)*0x9e3779b97f4a7c15)
	return k&1 == 1
}
