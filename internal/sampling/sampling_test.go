package sampling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parsample/internal/chordal"
	"parsample/internal/graph"
)

func mustRun(t *testing.T, alg Algorithm, g *graph.Graph, opts Options) *Result {
	t.Helper()
	res, err := Run(alg, g, opts)
	if err != nil {
		t.Fatalf("Run(%v): %v", alg, err)
	}
	return res
}

func TestRunRejectsBadOrder(t *testing.T) {
	g := graph.Path(4)
	if _, err := Run(ChordalSeq, g, Options{Order: []int32{0, 0, 1, 2}}); err == nil {
		t.Fatal("want error for invalid order")
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if _, err := Run(Algorithm(42), graph.Path(3), Options{}); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
	if Algorithm(42).String() == "" {
		t.Fatal("unknown algorithm should stringify")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for a, s := range map[Algorithm]string{
		ChordalSeq: "chordal-seq", ChordalComm: "chordal-comm",
		ChordalNoComm: "chordal-nocomm", RandomWalkSeq: "randomwalk-seq",
		RandomWalkPar: "randomwalk-par",
	} {
		if a.String() != s {
			t.Fatalf("%d: got %q want %q", int(a), a.String(), s)
		}
	}
}

func TestChordalSeqMatchesChordalPackage(t *testing.T) {
	g := graph.Gnm(120, 400, 3)
	ord := graph.Order(g, graph.HighDegree, 0)
	res := mustRun(t, ChordalSeq, g, Options{Order: ord})
	want := chordal.MaximalSubgraph(g, ord)
	if res.Edges.Len() != want.Edges.Len() {
		t.Fatalf("got %d edges, want %d", res.Edges.Len(), want.Edges.Len())
	}
	if !chordal.IsChordal(res.Graph(g.N())) {
		t.Fatal("sequential result not chordal")
	}
}

func TestNoCommSubsetOfOriginal(t *testing.T) {
	g := graph.Gnm(200, 700, 9)
	for _, p := range []int{1, 2, 4, 8} {
		res := mustRun(t, ChordalNoComm, g, Options{P: p})
		res.Edges.Graph(g.N()).ForEachEdge(func(u, v int32) {
			if !g.HasEdge(u, v) {
				t.Fatalf("P=%d: edge (%d,%d) not in original", p, u, v)
			}
		})
	}
}

func TestNoCommOneProcessorEqualsSequential(t *testing.T) {
	g := graph.Gnm(150, 500, 4)
	seqr := mustRun(t, ChordalSeq, g, Options{})
	par := mustRun(t, ChordalNoComm, g, Options{P: 1})
	if par.Edges.Len() != seqr.Edges.Len() {
		t.Fatalf("P=1 nocomm %d edges, sequential %d", par.Edges.Len(), seqr.Edges.Len())
	}
	seqr.Edges.ForEach(func(u, v int32) {
		if !par.Edges.Has(u, v) {
			t.Fatal("P=1 nocomm differs from sequential")
		}
	})
	if par.BorderEdges != 0 {
		t.Fatalf("P=1 should have 0 border edges, got %d", par.BorderEdges)
	}
}

func TestNoCommPartitionInteriorsChordal(t *testing.T) {
	// The subgraph restricted to any single partition must be chordal:
	// only border edges may create large cycles (quasi-chordal property).
	g := graph.Gnm(300, 900, 13)
	ord := graph.NaturalOrder(g.N())
	for _, p := range []int{2, 4, 8} {
		res := mustRun(t, ChordalNoComm, g, Options{Order: ord, P: p})
		sub := res.Graph(g.N())
		pt := graph.BlockPartition(ord, p)
		for r := 0; r < p; r++ {
			interior := sub.Subgraph(pt.Parts[r])
			if !chordal.IsChordal(interior) {
				t.Fatalf("P=%d rank %d: interior not chordal", p, r)
			}
		}
	}
}

func TestNoCommBorderTriangleRule(t *testing.T) {
	// Hand-built example mirroring Figure 1: two partitions; a border pair
	// is admitted only when the within-partition closing edge is chordal.
	//
	// Partition 0 = {0,1,2}, partition 1 = {3,4,5}.
	// Internal: (0,1),(1,2),(0,2) triangle in part 0; (3,4) in part 1.
	// Border: (0,3),(1,3) -> closing edge (0,1) is chordal => admitted.
	// Border: (2,4),(2,5) -> closing edge (4,5) absent => not admitted via 5;
	// but on part-1 side pair ((4,?),(5,?)) shares external 2, closing edge
	// (4,5) not present, so (2,5) admitted only if paired with an edge whose
	// closing edge exists.
	b := graph.NewBuilder(6)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {0, 3}, {1, 3}, {2, 4}, {2, 5}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	res := mustRun(t, ChordalNoComm, g, Options{P: 2})
	if !res.Edges.Has(0, 3) || !res.Edges.Has(1, 3) {
		t.Fatal("border pair with chordal closing edge should be admitted")
	}
	if res.Edges.Has(2, 5) {
		t.Fatal("border edge without a closing triangle was admitted")
	}
}

func TestCommMatchesSequentialAtP1(t *testing.T) {
	g := graph.Gnm(100, 300, 5)
	seqr := mustRun(t, ChordalSeq, g, Options{})
	com := mustRun(t, ChordalComm, g, Options{P: 1})
	if com.Edges.Len() != seqr.Edges.Len() {
		t.Fatalf("P=1 comm %d edges, sequential %d", com.Edges.Len(), seqr.Edges.Len())
	}
	if com.Stats.Messages != 0 {
		t.Fatalf("P=1 should send no messages, sent %d", com.Stats.Messages)
	}
}

func TestCommProducesMessagesAndChordalParts(t *testing.T) {
	g := graph.Gnm(200, 800, 6)
	res := mustRun(t, ChordalComm, g, Options{P: 4})
	if res.Stats.Messages == 0 {
		t.Fatal("expected messages with P=4")
	}
	if res.Stats.Bytes == 0 {
		t.Fatal("expected nonzero bytes")
	}
	// Result is a subgraph of the input.
	res.Graph(g.N()).ForEachEdge(func(u, v int32) {
		if !g.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) not in original", u, v)
		}
	})
}

func TestCommKeepsMoreOrEqualBorderStructure(t *testing.T) {
	// Both parallel chordal variants must retain all internal chordal edges;
	// they differ only in border admission. Sanity: each keeps at least the
	// union of per-partition chordal subgraphs.
	g := graph.Gnm(150, 600, 8)
	ord := graph.NaturalOrder(g.N())
	p := 4
	pt := graph.BlockPartition(ord, p)
	baseline := 0
	for r := 0; r < p; r++ {
		sub, _ := g.CompactSubgraph(pt.Parts[r])
		cr := chordal.MaximalSubgraph(sub, graph.NaturalOrder(sub.N()))
		baseline += cr.Edges.Len()
	}
	for _, alg := range []Algorithm{ChordalComm, ChordalNoComm} {
		res := mustRun(t, alg, g, Options{Order: ord, P: p})
		if res.Edges.Len() < baseline {
			t.Fatalf("%v: %d edges < internal baseline %d", alg, res.Edges.Len(), baseline)
		}
	}
}

func TestMoreProcessorsFewerEdges(t *testing.T) {
	// H0c: increasing the number of processors yields fewer retained edges
	// (more edges become border edges and face the stricter admission).
	g := graph.Gnm(400, 1600, 21)
	prev := -1
	for _, p := range []int{1, 8, 64} {
		res := mustRun(t, ChordalNoComm, g, Options{P: p})
		if prev >= 0 && res.Edges.Len() > prev+prev/10 {
			t.Fatalf("P=%d retained %d edges, noticeably more than %d at smaller P", p, res.Edges.Len(), prev)
		}
		prev = res.Edges.Len()
	}
}

func TestRandomWalkSelectsAboutHalf(t *testing.T) {
	g := graph.Gnm(300, 1200, 2)
	res := mustRun(t, RandomWalkSeq, g, Options{Seed: 1})
	if res.Edges.Len() == 0 {
		t.Fatal("random walk selected nothing")
	}
	// With E/2 selections and repeats, unique edges < E/2.
	if res.Edges.Len() > g.M()/2 {
		t.Fatalf("random walk kept %d > M/2 = %d", res.Edges.Len(), g.M()/2)
	}
	res.Edges.Graph(g.N()).ForEachEdge(func(u, v int32) {
		if !g.HasEdge(u, v) {
			t.Fatal("walk selected non-existent edge")
		}
	})
}

func TestRandomWalkDeterministicPerSeed(t *testing.T) {
	g := graph.Gnm(100, 400, 3)
	a := mustRun(t, RandomWalkSeq, g, Options{Seed: 7})
	b := mustRun(t, RandomWalkSeq, g, Options{Seed: 7})
	if a.Edges.Len() != b.Edges.Len() {
		t.Fatal("same seed, different result")
	}
	a.Edges.ForEach(func(u, v int32) {
		if !b.Edges.Has(u, v) {
			t.Fatal("same seed, different edges")
		}
	})
	c := mustRun(t, RandomWalkSeq, g, Options{Seed: 8})
	same := c.Edges.Len() == a.Edges.Len()
	if same {
		a.Edges.ForEach(func(u, v int32) {
			if !c.Edges.Has(u, v) {
				same = false
			}
		})
	}
	if same {
		t.Fatal("different seeds gave identical walks (suspicious)")
	}
}

func TestRandomWalkParallelNoMessages(t *testing.T) {
	g := graph.Gnm(300, 1000, 4)
	res := mustRun(t, RandomWalkPar, g, Options{P: 8, Seed: 5})
	if res.Stats.Messages != 0 {
		t.Fatal("parallel random walk must be communication free")
	}
	res.Edges.Graph(g.N()).ForEachEdge(func(u, v int32) {
		if !g.HasEdge(u, v) {
			t.Fatal("selected non-existent edge")
		}
	})
}

func TestRandomWalkParallelBorderCoinConsistent(t *testing.T) {
	// Border decisions are hash-based, so duplicates across ranks agree and
	// the merged set contains a border edge either once or never.
	g := graph.Gnm(200, 800, 11)
	ord := graph.NaturalOrder(g.N())
	res := mustRun(t, RandomWalkPar, g, Options{Order: ord, P: 4, Seed: 9})
	pt := graph.BlockPartition(ord, 4)
	admitted, rejected := 0, 0
	for _, e := range pt.BorderEdges(g) {
		if res.Edges.Has(e.U, e.V) {
			admitted++
		} else {
			rejected++
		}
	}
	if admitted == 0 || rejected == 0 {
		t.Fatalf("border coin flips degenerate: admitted=%d rejected=%d", admitted, rejected)
	}
}

func TestEdgeCoinFair(t *testing.T) {
	heads := 0
	n := 10000
	for i := 0; i < n; i++ {
		if edgeCoin(int32(i), int32(i+1), 42) {
			heads++
		}
	}
	if heads < n*4/10 || heads > n*6/10 {
		t.Fatalf("coin badly biased: %d/%d heads", heads, n)
	}
}

func TestDuplicateBorderEdgesCounted(t *testing.T) {
	// With multiple partitions, the same border edge can be admitted by both
	// sides in the no-comm variant; duplicates must be detected.
	g := graph.PlantedModules(300, 250, graph.ModuleSpec{
		Count: 6, MinSize: 8, MaxSize: 10, Density: 0.95, NoiseDeg: 1,
	}, 7).G
	res := mustRun(t, ChordalNoComm, g, Options{P: 6})
	if res.DuplicateBorderEdges < 0 {
		t.Fatal("negative duplicate count")
	}
	// Stats wired through.
	if res.Stats.P != 6 || len(res.Stats.RankOps) != 6 {
		t.Fatalf("stats P=%d ranks=%d", res.Stats.P, len(res.Stats.RankOps))
	}
	if res.Stats.MaxRankOps() <= 0 || res.Stats.TotalOps() < res.Stats.MaxRankOps() {
		t.Fatal("rank op accounting broken")
	}
}

// Property: the no-comm filter never loses internal chordal structure and is
// always a subgraph of the input, for arbitrary seeds and partition counts.
func TestNoCommQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		m := rng.Intn(3*n + 1)
		p := 1 + rng.Intn(6)
		g := graph.Gnm(n, m, seed)
		res, err := Run(ChordalNoComm, g, Options{P: p, Seed: seed})
		if err != nil {
			return false
		}
		ok := true
		res.Edges.Graph(n).ForEachEdge(func(u, v int32) {
			if !g.HasEdge(u, v) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the comm variant's accepted subgraph restricted to any single
// receiver partition plus its accepted border endpoints stays chordal.
func TestCommQuickChordalSubsets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		m := rng.Intn(3 * n)
		p := 2 + rng.Intn(3)
		g := graph.Gnm(n, m, seed)
		res, err := Run(ChordalComm, g, Options{P: p})
		if err != nil {
			return false
		}
		ok := true
		res.Edges.Graph(n).ForEachEdge(func(u, v int32) {
			if !g.HasEdge(u, v) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
