package sampling

import (
	"context"
	"sort"

	"parsample/internal/chordal"
	"parsample/internal/comm"
	"parsample/internal/graph"
)

// chordalSequential runs the Dearing–Shier–Warner filter on the whole graph.
// The DSW edge list is duplicate free by construction, so it is wrapped
// directly — no set is materialized.
func chordalSequential(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	cr, err := chordal.MaximalSubgraphContext(ctx, g, opts.Order)
	if err != nil {
		return nil, err
	}
	res := &Result{Algorithm: ChordalSeq, Edges: cr.Edges}
	res.Stats.P = 1
	res.Stats.RankOps = []int64{cr.Ops}
	return res, nil
}

// localChordal computes the maximal chordal subgraph of the edges fully
// inside one partition block, accumulating edges in global vertex ids into
// out. The block's position in the global processing order is preserved.
func localChordal(ctx context.Context, g *graph.Graph, block []int32, out graph.EdgeCollection) (int64, error) {
	sub, toGlobal := g.CompactSubgraph(block)
	// CompactSubgraph labels block[i] as local vertex i, so the local natural
	// order is exactly the block's slice of the global processing order.
	cr, err := chordal.MaximalSubgraphContext(ctx, sub, graph.NaturalOrder(sub.N()))
	if err != nil {
		return 0, err
	}
	for _, e := range cr.Edges {
		out.Add(toGlobal[e.U], toGlobal[e.V])
	}
	return cr.Ops, nil
}

// chordalNoComm is the paper's improved communication-free parallel chordal
// sampler. Step 1: partition; Step 2: per-partition maximal chordal subgraph
// over internal edges; Step 3: a pair of border edges (a,x),(b,x) incident on
// an external vertex x is admitted iff the local edge (a,b) is a chordal
// edge — the triangle rule. Both sides of a border may admit the same edge;
// duplicates are removed in the sequential merge. The sampling phase sends
// no point-to-point messages; partial results reach the merge through one
// Gatherv.
func chordalNoComm(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	pt := graph.BlockPartition(opts.Order, opts.P)
	p := pt.P()
	parts := make([]rankResult, p)
	cm := newComm(opts, p)
	defer cm.AbortOnCancel(ctx)()
	runErr := cm.Run(func(r comm.Rank) {
		rank := r.ID()
		block := pt.Parts[rank]
		local := graph.NewAccumulator(g.N(), 0)
		ops, err := localChordal(ctx, g, block, local)
		if err != nil {
			r.Abort()
		}
		// Group border edges by their external endpoint. External endpoints
		// are collected per rank into a flat list sorted by endpoint — the
		// grouping needs no hash map.
		var borders []graph.Edge // {external x, internal a}
		for bi, a := range block {
			if bi%4096 == 0 {
				abortIfCancelled(ctx, r)
			}
			for _, x := range g.Neighbors(a) {
				if pt.Part[x] != int32(rank) {
					borders = append(borders, graph.Edge{U: x, V: a})
					ops++
				}
			}
		}
		sortByExternal(borders)
		for lo, groups := 0, 0; lo < len(borders); groups++ {
			if groups%1024 == 0 {
				abortIfCancelled(ctx, r)
			}
			hi := lo + 1
			for hi < len(borders) && borders[hi].U == borders[lo].U {
				hi++
			}
			x := borders[lo].U
			as := borders[lo:hi]
			for i := 0; i < len(as); i++ {
				for j := i + 1; j < len(as); j++ {
					ops++
					// Triangle rule: the local closing edge must be chordal.
					if local.Has(as[i].V, as[j].V) {
						local.Add(as[i].V, x)
						local.Add(as[j].V, x)
					}
				}
			}
			lo = hi
		}
		r.Compute(ops)
		gatherParts(r, rankResult{edges: local}, parts)
	})
	_, border := pt.InternalEdgeCount(g)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return mergeRanks(ChordalNoComm, g.N(), parts, border, cm), nil
}

// sortByExternal sorts border records by their external endpoint (U), with
// the internal endpoint (V) as a tiebreak for determinism.
func sortByExternal(es []graph.Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
}

// borderMsg is the payload exchanged by chordalWithComm. An empty edge list
// is the end-of-stream sentinel.
type borderMsg struct{ edges []graph.Edge }

// msgChunk is the number of border edges carried per message; smaller chunks
// make the message count (and therefore the modeled overhead/latency cost)
// scale with the border size b, matching the paper's O(b²/d) communication
// analysis.
const msgChunk = 64

// chordalWithComm reproduces the earlier (HPCS/ICCS 2011) parallel chordal
// sampler: after the per-partition chordal step, for every pair of partitions
// sharing border edges the lower rank is the sender and the higher rank the
// receiver. The receiver accepts each incoming border edge iff its accepted
// subgraph (local chordal edges + previously accepted border edges) stays
// chordal — a per-candidate chordality test over the involved region, which
// is where the O(b²/d) cost and the poor small-graph scalability come from.
//
// Sends are nonblocking posts into the runtime's unbounded queues and the
// receive loop drains partners through AnyRecv in modeled-arrival order, so
// no border volume can deadlock the run (the earlier bounded-mailbox runtime
// wedged at P ≥ 3 once any partition pair carried more than ~4096 mutual
// border edges).
func chordalWithComm(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	pt := graph.BlockPartition(opts.Order, opts.P)
	p := pt.P()
	parts := make([]rankResult, p)
	cm := newComm(opts, p)
	defer cm.AbortOnCancel(ctx)()

	// Precompute, per ordered pair (sender < receiver), the mutual border
	// edges as seen from the sender side.
	pairEdges := make([][][]graph.Edge, p) // pairEdges[sender][receiver]
	for s := 0; s < p; s++ {
		pairEdges[s] = make([][]graph.Edge, p)
	}
	g.ForEachEdge(func(u, v int32) {
		pu, pv := pt.Part[u], pt.Part[v]
		if pu == pv {
			return
		}
		lo, hi := pu, pv
		if lo > hi {
			lo, hi = hi, lo
		}
		pairEdges[lo][hi] = append(pairEdges[lo][hi], graph.Edge{U: u, V: v})
	})

	runErr := cm.Run(func(r comm.Rank) {
		rank := r.ID()
		block := pt.Parts[rank]
		local := graph.NewAccumulator(g.N(), 0)
		ops, err := localChordal(ctx, g, block, local)
		if err != nil {
			r.Abort()
		}
		r.Compute(ops)

		// Send mutual border edges to every higher-ranked partner sharing a
		// border, chunked, with an end-of-stream sentinel. Sends never
		// block, so the whole exchange is posted before the receive loop.
		for recv := rank + 1; recv < p; recv++ {
			edges := pairEdges[rank][recv]
			if len(edges) == 0 {
				continue
			}
			for lo := 0; lo < len(edges); lo += msgChunk {
				hi := lo + msgChunk
				if hi > len(edges) {
					hi = len(edges)
				}
				chunk := edges[lo:hi]
				r.Send(recv, recv, borderMsg{edges: chunk}, 8*len(chunk))
			}
			r.Send(recv, recv, borderMsg{}, 0)
		}

		// Receive candidate border edges from every lower-ranked partner
		// sharing a border, in modeled-arrival order, and accept those that
		// keep the receiver's subgraph chordal. The test is incremental: an
		// external vertex u may connect to a set of local vertices only if
		// that set is a clique in the local chordal subgraph (attaching a
		// vertex whose neighborhood is a clique preserves chordality).
		// Scanning u's previously accepted neighbors for every candidate is
		// where the paper's O(b²/d) receiver cost comes from.
		// Accepted border edges are grouped by external vertex in a per-rank
		// slice table indexed lazily via a stamp array — no hash map.
		accepted := graph.NewAccumulator(g.N(), 0)
		acceptedNbrs := make([][]int32, 0, 16) // compact storage, see extSlot
		extSlot := make([]int32, g.N())        // external vertex -> slot+1 (0 = none)
		var sources []int
		for send := 0; send < rank; send++ {
			if len(pairEdges[send][rank]) > 0 {
				sources = append(sources, send)
			}
		}
		for len(sources) > 0 {
			abortIfCancelled(ctx, r)
			msg := r.AnyRecv(sources)
			bm := msg.Payload.(borderMsg)
			if len(bm.edges) == 0 {
				for i, s := range sources {
					if s == msg.From {
						sources = append(sources[:i], sources[i+1:]...)
						break
					}
				}
				continue
			}
			var ops int64
			for _, e := range bm.edges {
				ext, loc := e.U, e.V
				if pt.Part[ext] == int32(rank) {
					ext, loc = loc, ext
				}
				slot := extSlot[ext]
				var bu []int32
				if slot > 0 {
					bu = acceptedNbrs[slot-1]
				}
				ok := true
				for _, w := range bu {
					ops++
					if !local.Has(w, loc) {
						ok = false
						break
					}
				}
				// The receiver also verifies the candidate against its
				// local adjacency structure (re-examination of border
				// edges is the extra compute the paper attributes to
				// the communicating version — roughly 2× at P=2 on the
				// large network).
				ops += int64(g.Degree(loc)) + 1
				if ok {
					accepted.Add(ext, loc)
					if slot == 0 {
						acceptedNbrs = append(acceptedNbrs, nil)
						slot = int32(len(acceptedNbrs))
						extSlot[ext] = slot
					}
					acceptedNbrs[slot-1] = append(acceptedNbrs[slot-1], loc)
				}
			}
			// Charge the per-message candidate processing as it happens, so
			// the virtual clock interleaves compute with the waits.
			r.Compute(ops)
		}
		accepted.ForEach(local.Add)
		gatherParts(r, rankResult{edges: local}, parts)
	})

	_, border := pt.InternalEdgeCount(g)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	return mergeRanks(ChordalComm, g.N(), parts, border, cm), nil
}
