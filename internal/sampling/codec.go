package sampling

import (
	"encoding/binary"
	"fmt"
	"sort"

	"parsample/internal/comm"
	"parsample/internal/graph"
)

// Wire codecs for the sampler-private payload types. The simulated runtime
// passes these between ranks as in-memory values; the TCP transport
// serializes them through the comm payload registry. Registration happens
// at init time so a transport-backed run decodes exactly the concrete
// types the kernels type-assert on (borderMsg in chordalWithComm's receive
// loop, rankResult in gatherParts).
//
// Determinism: borderMsg edge order is semantic (the receiver's chordality
// tests and ops accounting depend on processing order), so the codec
// preserves slice order exactly. rankResult edges are a set; they are
// encoded in sorted (U,V) order so the wire bytes of a given partial
// result are reproducible run over run.

// Payload kinds owned by this package.
const (
	kindBorderMsg  = comm.KindUserBase + iota // chordalWithComm border chunk
	kindRankResult                            // gathered per-rank partial result
)

func init() {
	comm.RegisterCodec(comm.Codec{
		Kind:   kindBorderMsg,
		Match:  func(v any) bool { _, ok := v.(borderMsg); return ok },
		Encode: func(v any) []byte { return appendEdges(nil, v.(borderMsg).edges) },
		Decode: func(data []byte) (any, error) {
			edges, rest, err := readEdges(data)
			if err != nil || len(rest) != 0 {
				return nil, fmt.Errorf("sampling: borderMsg payload: %d trailing bytes, %w", len(rest), err)
			}
			return borderMsg{edges: edges}, nil
		},
	})
	comm.RegisterCodec(comm.Codec{
		Kind:  kindRankResult,
		Match: func(v any) bool { _, ok := v.(rankResult); return ok },
		Encode: func(v any) []byte {
			pr := v.(rankResult)
			edges := make([]graph.Edge, 0, pr.edges.Len())
			pr.edges.ForEach(func(u, v int32) {
				edges = append(edges, graph.Edge{U: u, V: v})
			})
			sort.Slice(edges, func(i, j int) bool {
				if edges[i].U != edges[j].U {
					return edges[i].U < edges[j].U
				}
				return edges[i].V < edges[j].V
			})
			buf := binary.LittleEndian.AppendUint64(nil, uint64(pr.restarts))
			return appendEdges(buf, edges)
		},
		Decode: func(data []byte) (any, error) {
			if len(data) < 8 {
				return nil, fmt.Errorf("sampling: rankResult payload is %d bytes", len(data))
			}
			restarts := int64(binary.LittleEndian.Uint64(data))
			edges, rest, err := readEdges(data[8:])
			if err != nil || len(rest) != 0 {
				return nil, fmt.Errorf("sampling: rankResult payload: %d trailing bytes, %w", len(rest), err)
			}
			return rankResult{edges: (*edgeListCollection)(&edges), restarts: restarts}, nil
		},
	})
}

// edgeListCollection adapts a flat edge list to graph.EdgeCollection so a
// decoded partial result can flow through mergeRanks unchanged (the merge
// only reads Len/ForEach; Add supports symmetry with the encoder side).
type edgeListCollection []graph.Edge

func (l *edgeListCollection) Add(u, v int32) {
	if u > v {
		u, v = v, u
	}
	*l = append(*l, graph.Edge{U: u, V: v})
}

func (l *edgeListCollection) Len() int { return len(*l) }

func (l *edgeListCollection) Has(u, v int32) bool {
	if u > v {
		u, v = v, u
	}
	for _, e := range *l {
		if e.U == u && e.V == v {
			return true
		}
	}
	return false
}

func (l *edgeListCollection) ForEach(f func(u, v int32)) {
	for _, e := range *l {
		f(e.U, e.V)
	}
}

func (l *edgeListCollection) Graph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, e := range *l {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// appendEdges serializes a [count][u,v]* edge vector onto buf.
func appendEdges(buf []byte, edges []graph.Edge) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(edges)))
	for _, e := range edges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.U))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.V))
	}
	return buf
}

// readEdges reverses appendEdges, returning the remaining bytes.
func readEdges(data []byte) (edges []graph.Edge, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("edge vector truncated (%d bytes)", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if len(data) < 8*n {
		return nil, nil, fmt.Errorf("edge vector truncated (%d of %d edges)", len(data)/8, n)
	}
	edges = make([]graph.Edge, n)
	for i := range edges {
		edges[i].U = int32(binary.LittleEndian.Uint32(data[8*i:]))
		edges[i].V = int32(binary.LittleEndian.Uint32(data[8*i+4:]))
	}
	return edges, data[8*n:], nil
}
