package sampling

import (
	"testing"
	"time"

	"parsample/internal/graph"
)

// completeMultipartite builds the complete k-partite graph with `size`
// vertices per part: every cross-part pair is an edge, no internal edges.
// Under the natural order BlockPartition makes each part one processor
// block, so every one of the k·(k-1)/2 partition pairs carries size² mutual
// border edges.
func completeMultipartite(k, size int) *graph.Graph {
	n := k * size
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if u/size != v/size {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

// Regression: the pre-PR-3 runtime used 64-deep bounded mailboxes and a
// receive loop that drained senders in strict rank order, while every rank
// posted all of its border chunks to all higher ranks before receiving
// anything. At P ≥ 3, once any partition pair carried more than
// 64 chunks × 64 edges = 4096 mutual border edges, the send chains filled
// each other's mailboxes and the run wedged (rank 0 blocked sending to 1,
// 1 to 2, 2 to 3, and 3 waiting on 0). This test reproduces exactly that
// shape — P=4, 4900 mutual border edges per partition pair — and must
// complete on the deadlock-free runtime; the watchdog turns a regression
// into a fast failure instead of a hung CI job.
func TestChordalCommDenseBordersNoDeadlock(t *testing.T) {
	g := completeMultipartite(4, 70) // 70² = 4900 > 4096 border edges per pair
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Run(ChordalComm, g, Options{P: 4})
		done <- outcome{res, err}
	}()
	select {
	case out := <-done:
		if out.err != nil {
			t.Fatal(out.err)
		}
		res := out.res
		if res.Edges.Len() == 0 {
			t.Fatal("empty result")
		}
		res.Edges.Graph(g.N()).ForEachEdge(func(u, v int32) {
			if !g.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) not in input", u, v)
			}
		})
		if res.Stats.Messages < 3*(4900/msgChunk) {
			t.Fatalf("expected a deep border exchange, got %d messages", res.Stats.Messages)
		}
	case <-time.After(90 * time.Second): // must beat the CI per-package -timeout 120s
		t.Fatal("chordalWithComm deadlocked on >4096 mutual border edges per partition pair")
	}
}
