package sampling

import (
	"testing"

	"parsample/internal/graph"
)

func TestForestFireSubsetAndSize(t *testing.T) {
	g := graph.Gnm(300, 1200, 9)
	res := mustRun(t, ForestFireSeq, g, Options{Seed: 3})
	if res.Edges.Len() == 0 {
		t.Fatal("forest fire selected nothing")
	}
	if res.Edges.Len() > g.M()/2 {
		t.Fatalf("selected %d > M/2 = %d", res.Edges.Len(), g.M()/2)
	}
	res.Edges.Graph(g.N()).ForEachEdge(func(u, v int32) {
		if !g.HasEdge(u, v) {
			t.Fatal("selected non-existent edge")
		}
	})
}

func TestForestFireDeterministicPerSeed(t *testing.T) {
	g := graph.Gnm(150, 500, 2)
	a := mustRun(t, ForestFireSeq, g, Options{Seed: 5})
	b := mustRun(t, ForestFireSeq, g, Options{Seed: 5})
	if a.Edges.Len() != b.Edges.Len() {
		t.Fatal("not deterministic")
	}
	a.Edges.ForEach(func(u, v int32) {
		if !b.Edges.Has(u, v) {
			t.Fatal("edge sets differ for same seed")
		}
	})
}

func TestForestFireEmptyAndEdgeless(t *testing.T) {
	res := mustRun(t, ForestFireSeq, graph.FromEdges(0, nil), Options{})
	if res.Edges.Len() != 0 {
		t.Fatal("empty graph should select nothing")
	}
	res = mustRun(t, ForestFireSeq, graph.FromEdges(10, nil), Options{})
	if res.Edges.Len() != 0 {
		t.Fatal("edgeless graph should select nothing")
	}
}

func TestForestFireParallelNoMessages(t *testing.T) {
	g := graph.Gnm(400, 1600, 4)
	res := mustRun(t, ForestFirePar, g, Options{P: 8, Seed: 7})
	if res.Stats.Messages != 0 {
		t.Fatal("forest fire must be communication free")
	}
	if res.Stats.P != 8 {
		t.Fatalf("P = %d", res.Stats.P)
	}
	res.Edges.Graph(g.N()).ForEachEdge(func(u, v int32) {
		if !g.HasEdge(u, v) {
			t.Fatal("selected non-existent edge")
		}
	})
}

func TestForestFireTerminatesOnDisconnected(t *testing.T) {
	// Many isolated vertices plus one component; must not spin forever.
	b := graph.NewBuilder(100)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	res := mustRun(t, ForestFireSeq, g, Options{Seed: 1})
	if res.Edges.Len() > g.M() {
		t.Fatal("overselected")
	}
}

func TestForestFireLikeRandomWalkKillsWeakClusters(t *testing.T) {
	// As an agnostic filter, forest fire (like the random walk) thins
	// planted weak modules; the chordal filter keeps far more module
	// structure on the same network.
	pr := graph.PlantedModules(800, 650, graph.ModuleSpec{
		Count: 10, MinSize: 6, MaxSize: 8, Density: 0.55, NoiseDeg: 0.4, Window: 3,
	}, 6)
	g := pr.G
	ff := mustRun(t, ForestFireSeq, g, Options{Seed: 2})
	ch := mustRun(t, ChordalSeq, g, Options{})
	ffKept, chKept, total := 0, 0, 0
	for _, mod := range pr.Modules {
		for i := 0; i < len(mod); i++ {
			for j := i + 1; j < len(mod); j++ {
				if !g.HasEdge(mod[i], mod[j]) {
					continue
				}
				total++
				if ff.Edges.Has(mod[i], mod[j]) {
					ffKept++
				}
				if ch.Edges.Has(mod[i], mod[j]) {
					chKept++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no module edges")
	}
	if chKept <= ffKept {
		t.Fatalf("chordal kept %d/%d module edges, forest fire %d/%d — adaptive filter should win",
			chKept, total, ffKept, total)
	}
}
