package sampling

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"parsample/internal/graph"
)

// edgeKeySet flattens an edge view into a set of normalized keys.
func edgeKeySet(v graph.EdgeView) map[uint64]bool {
	out := make(map[uint64]bool, v.Len())
	v.ForEach(func(u, w int32) { out[graph.EdgeKey(u, w)] = true })
	return out
}

func sameEdges(a, b graph.EdgeView) bool {
	if a.Len() != b.Len() {
		return false
	}
	bs := edgeKeySet(b)
	same := true
	a.ForEach(func(u, w int32) {
		if !bs[graph.EdgeKey(u, w)] {
			same = false
		}
	})
	return same
}

// The runtime contract: parallel runs are pure functions of
// (graph, order, P, seed, model). Scheduling must not leak into results —
// the merged edge set, the per-rank virtual clocks and the traffic counters
// are identical across repeated runs and across GOMAXPROCS settings.
// Delivery order is decided by modeled arrival time (AnyRecv), not by which
// goroutine the OS happened to run first.
func TestParallelSamplersDeterministic(t *testing.T) {
	g := graph.PlantedModules(600, 900, graph.ModuleSpec{
		Count: 12, MinSize: 10, MaxSize: 16, Density: 0.9, NoiseDeg: 2,
	}, 31).G
	algs := []Algorithm{ChordalComm, ChordalNoComm, RandomWalkPar, ForestFirePar}
	procs := []int{2, 3, 8}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, alg := range algs {
		for _, p := range procs {
			ref := mustRun(t, alg, g, Options{P: p, Seed: 17})
			for trial := 0; trial < 2; trial++ {
				for _, gmp := range []int{1, 2, prev} {
					runtime.GOMAXPROCS(gmp)
					got := mustRun(t, alg, g, Options{P: p, Seed: 17})
					if !sameEdges(ref.Edges, got.Edges) {
						t.Fatalf("%v P=%d GOMAXPROCS=%d trial %d: merged edge set differs (%d vs %d edges)",
							alg, p, gmp, trial, ref.Edges.Len(), got.Edges.Len())
					}
					for r := range ref.Stats.RankSeconds {
						if got.Stats.RankSeconds[r] != ref.Stats.RankSeconds[r] {
							t.Fatalf("%v P=%d GOMAXPROCS=%d: rank %d clock %v != %v",
								alg, p, gmp, r, got.Stats.RankSeconds[r], ref.Stats.RankSeconds[r])
						}
						if got.Stats.RankOps[r] != ref.Stats.RankOps[r] {
							t.Fatalf("%v P=%d GOMAXPROCS=%d: rank %d ops differ", alg, p, gmp, r)
						}
					}
					if got.Stats.Messages != ref.Stats.Messages || got.Stats.Bytes != ref.Stats.Bytes ||
						got.Stats.CollMessages != ref.Stats.CollMessages {
						t.Fatalf("%v P=%d GOMAXPROCS=%d: traffic counters differ", alg, p, gmp)
					}
					if got.DuplicateBorderEdges != ref.DuplicateBorderEdges {
						t.Fatalf("%v P=%d GOMAXPROCS=%d: duplicate count differs", alg, p, gmp)
					}
				}
			}
		}
	}
}

// Restart accounting: a partition whose block is an independent set (no
// internal edges ever eligible) must report restarts without charging them
// as compute ops.
func TestRandomWalkRestartsNotCharged(t *testing.T) {
	// Block 0 (vertices 0..19 under P=2) holds one internal triangle and 17
	// dead-end leaves whose only neighbors are hubs in block 1 — a walk
	// restarting from a leaf finds no same-partition neighbor and must
	// restart without being charged.
	n := 40
	b := graph.NewBuilder(n)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	for leaf := 3; leaf < n/2; leaf++ {
		b.AddEdge(int32(leaf), int32(n/2+leaf%4)) // hubs are 20..23
	}
	g := b.Build()
	res := mustRun(t, RandomWalkPar, g, Options{P: 2, Seed: 3})
	if res.Stats.Restarts == 0 {
		t.Fatal("expected restarts on the leaf-heavy partition")
	}
	// Rank 0's block has no internal edges: internal[0]/2 = 0 selections, so
	// its walk charges no ops beyond the border scan. The stronger global
	// property: total ops are bounded by successful selections plus border
	// scans, unaffected by restart count.
	maxPossible := int64(g.M()) /* border scans, both sides */ * 2
	for _, ops := range res.Stats.RankOps {
		if ops > maxPossible {
			t.Fatalf("rank ops %d exceed non-restart work bound %d", ops, maxPossible)
		}
	}
}

// Sequential walk on an edgeless pool: every step restarts, no ops charged.
func TestWalkEdgesEdgelessOnlyRestarts(t *testing.T) {
	g := graph.NewBuilder(10).Build() // no edges
	verts := graph.NaturalOrder(10)
	set := graph.NewAccumulator(10, 0)
	ops, restarts, err := walkEdges(context.Background(), verts, g.Neighbors, 5, rand.New(rand.NewSource(1)), set)
	if err != nil {
		t.Fatal(err)
	}
	if ops != 0 {
		t.Fatalf("charged %d ops with no selectable edges", ops)
	}
	if restarts == 0 {
		t.Fatal("expected restarts")
	}
	if set.Len() != 0 {
		t.Fatal("selected edges out of nothing")
	}
}
