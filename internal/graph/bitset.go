package graph

import "math/bits"

// Bitset is a fixed-capacity set of vertex ids backed by a flat []uint64
// word array. It is the membership structure behind the dense kernels: DSW
// candidate sets, MCODE complex membership, dense adjacency rows and the
// bitset-matrix edge accumulator. The zero value is an empty set of
// capacity 0; use NewBitset to size one for a vertex universe.
type Bitset []uint64

// NewBitset returns an empty bitset able to hold ids in [0, n).
func NewBitset(n int) Bitset { return make(Bitset, (n+63)>>6) }

// Set inserts i. i must be within the capacity the bitset was created with.
func (b Bitset) Set(i int32) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes i.
func (b Bitset) Clear(i int32) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether i is in the set.
func (b Bitset) Has(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits (popcount over all words).
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether the set is non-empty.
func (b Bitset) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset clears every bit, keeping the capacity.
func (b Bitset) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// SubsetOf reports whether b ⊆ o, i.e. b \ o is empty. The word loop exits
// at the first witness, so a failing test is usually cheaper than a full
// intersection. o must have at least as many words as b's set bits require;
// bitsets created for the same universe always satisfy this.
func (b Bitset) SubsetOf(o Bitset) bool {
	for i, w := range b {
		if w&^o[i] != 0 {
			return false
		}
	}
	return true
}

// AndCount returns |b ∩ o| by popcounting the word-wise AND without
// materializing the intersection. The shorter word array bounds the loop.
func (b Bitset) AndCount(o Bitset) int {
	if len(o) < len(b) {
		b, o = o, b
	}
	n := 0
	for i, w := range b {
		n += bits.OnesCount64(w & o[i])
	}
	return n
}

// Or inserts every member of o into b. o must not be longer than b.
func (b Bitset) Or(o Bitset) {
	for i, w := range o {
		b[i] |= w
	}
}

// ForEach calls fn for every member in ascending order.
func (b Bitset) ForEach(fn func(i int32)) {
	for wi, w := range b {
		base := int32(wi) << 6
		for w != 0 {
			fn(base + int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// AppendMembers appends the members of b to dst in ascending order and
// returns the extended slice (an allocation-free alternative to ForEach for
// collecting members).
func (b Bitset) AppendMembers(dst []int32) []int32 {
	for wi, w := range b {
		base := int32(wi) << 6
		for w != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}
