package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList exercises the edge-list parser with arbitrary input: it
// must never panic, and anything it accepts must round-trip through
// WriteEdgeList into an equivalent graph.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("# 4 2\n0 1\n2 3\n")
	f.Add("0 1\n1 2\n2 0\n")
	f.Add("")
	f.Add("# comment only\n")
	f.Add("5 5\n")
	f.Add("1 2 3 extra\n")
	f.Add("99999999999999999999 1\n")
	f.Add("-3 4\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(bytes.NewBufferString(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed graph: %v -> %v", g, g2)
		}
	})
}
