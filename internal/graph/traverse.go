package graph

// BFS visits all vertices reachable from src in breadth-first order and
// returns them in visit order.
func BFS(g *Graph, src int32) []int32 {
	visited := make([]bool, g.N())
	visited[src] = true
	queue := []int32{src}
	order := make([]int32, 0, g.N())
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.Neighbors(v) {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return order
}

// ConnectedComponents returns the vertex sets of the connected components of
// g, largest first.
func ConnectedComponents(g *Graph) [][]int32 {
	n := g.N()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int32
	queue := make([]int32, 0, 64)
	for s := int32(0); int(s) < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(len(comps))
		comp[s] = id
		queue = append(queue[:0], s)
		var members []int32
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			members = append(members, v)
			for _, w := range g.Neighbors(v) {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
		comps = append(comps, members)
	}
	// Largest first (stable for determinism).
	for i := 1; i < len(comps); i++ {
		for j := i; j > 0 && len(comps[j]) > len(comps[j-1]); j-- {
			comps[j], comps[j-1] = comps[j-1], comps[j]
		}
	}
	return comps
}

// IsConnected reports whether g is connected (the empty graph is connected).
func IsConnected(g *Graph) bool {
	if g.N() == 0 {
		return true
	}
	return len(BFS(g, 0)) == g.N()
}

// CountTriangles returns the number of triangles in g.
func CountTriangles(g *Graph) int {
	n := 0
	g.ForEachEdge(func(u, v int32) {
		// Intersect sorted neighbor lists, counting only w > v to count each
		// triangle once.
		a, b := g.Neighbors(u), g.Neighbors(v)
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				if a[i] > v {
					n++
				}
				i++
				j++
			}
		}
	})
	return n
}

// LongestInducedCycleUpperBound is a cheap structural diagnostic: it returns
// the length of some chordless cycle of length ≥ 4 if one is found by a
// bounded search, or 0 if none was found. It is used only in tests and
// reports; chordality decisions use the chordal package.
func HasChordlessCycleLen4(g *Graph) bool {
	// A chordless C4: u-v-w-x-u with u-w and v-x absent.
	for u := int32(0); int(u) < g.N(); u++ {
		nu := g.Neighbors(u)
		for i := 0; i < len(nu); i++ {
			v := nu[i]
			for j := i + 1; j < len(nu); j++ {
				x := nu[j]
				if g.HasEdge(v, x) {
					continue
				}
				// Find w adjacent to both v and x, not adjacent to u.
				for _, w := range g.Neighbors(v) {
					if w != u && g.HasEdge(w, x) && !g.HasEdge(w, u) {
						return true
					}
				}
			}
		}
	}
	return false
}

// Density returns 2m / (n(n-1)), the fraction of possible edges present.
func Density(g *Graph) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	return 2 * float64(g.M()) / (float64(n) * float64(n-1))
}
