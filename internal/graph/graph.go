// Package graph provides the undirected-graph substrate used by the
// parallel adaptive sampling algorithms: a compact adjacency representation,
// edge sets, vertex orderings, partitioning, generators and edge-list I/O.
//
// Vertices are dense int32 identifiers in [0, N). All graphs are simple
// (no self loops, no multi-edges) and undirected.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph with sorted adjacency lists.
// The zero value is an empty graph with no vertices.
type Graph struct {
	adj [][]int32
	m   int
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 { return g.adj[v] }

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v int32) bool {
	if u == v || int(u) >= len(g.adj) || int(v) >= len(g.adj) || u < 0 || v < 0 {
		return false
	}
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a, u, v = g.adj[v], v, u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// MaxDegree returns the largest vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	d := 0
	for _, a := range g.adj {
		if len(a) > d {
			d = len(a)
		}
	}
	return d
}

// Edge is an undirected edge normalized so that U < V.
type Edge struct{ U, V int32 }

// NormEdge returns the normalized form of the edge {u, v}.
func NormEdge(u, v int32) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{u, v}
}

// Edges returns all edges of g in sorted (U, V) order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				out = append(out, Edge{int32(u), v})
			}
		}
	}
	return out
}

// ForEachEdge calls fn once per undirected edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v int32)) {
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				fn(int32(u), v)
			}
		}
	}
}

// String returns a short diagnostic description of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// and self loops are discarded at Build time.
type Builder struct {
	n   int
	adj [][]int32
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, adj: make([][]int32, n)}
}

// AddEdge records the undirected edge {u, v}. Self loops are ignored.
// AddEdge panics if either endpoint is out of range.
func (b *Builder) AddEdge(u, v int32) {
	if int(u) >= b.n || int(v) >= b.n || u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
}

// Build finalizes the graph: adjacency lists are sorted and deduplicated.
// The builder must not be used after Build.
func (b *Builder) Build() *Graph {
	g := &Graph{adj: b.adj}
	m := 0
	for v := range g.adj {
		a := g.adj[v]
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		// Deduplicate in place.
		k := 0
		for i := 0; i < len(a); i++ {
			if k == 0 || a[i] != a[k-1] {
				a[k] = a[i]
				k++
			}
		}
		g.adj[v] = a[:k]
		m += k
	}
	g.m = m / 2
	b.adj = nil
	return g
}

// FromEdges builds a graph with n vertices from the given edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// Subgraph returns the subgraph induced by keep (original vertex ids are
// preserved; edges with an endpoint outside keep are dropped). keep must not
// contain duplicates.
func (g *Graph) Subgraph(keep []int32) *Graph {
	in := make([]bool, g.N())
	for _, v := range keep {
		in[v] = true
	}
	b := NewBuilder(g.N())
	for _, u := range keep {
		for _, v := range g.adj[u] {
			if u < v && in[v] {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// CompactSubgraph returns the subgraph induced by keep with vertices
// relabelled to 0..len(keep)-1 (in the order given), plus the local→global
// vertex map.
func (g *Graph) CompactSubgraph(keep []int32) (*Graph, []int32) {
	local := make(map[int32]int32, len(keep))
	for i, v := range keep {
		local[v] = int32(i)
	}
	b := NewBuilder(len(keep))
	for i, u := range keep {
		for _, v := range g.adj[u] {
			if lv, ok := local[v]; ok && u < v {
				b.AddEdge(int32(i), lv)
			}
		}
	}
	toGlobal := make([]int32, len(keep))
	copy(toGlobal, keep)
	return b.Build(), toGlobal
}
