// Package graph provides the undirected-graph substrate used by the
// parallel adaptive sampling algorithms: a compact CSR adjacency
// representation, edge sets, vertex orderings, partitioning, generators and
// edge-list I/O.
//
// Vertices are dense int32 identifiers in [0, N). All graphs are simple
// (no self loops, no multi-edges) and undirected.
package graph

import (
	"fmt"
	"slices"
	"sync"
)

// Graph is an immutable simple undirected graph in compressed sparse row
// (CSR) form: one flat neighbor arena `nbr` plus per-vertex offsets `off`,
// so the neighbors of v are nbr[off[v]:off[v+1]], sorted ascending. The flat
// layout keeps the hot kernels (DSW, MCODE, BFS) on sequential memory and
// lets block partitions hand each simulated rank a contiguous arena slice.
//
// The zero value is an empty graph with no vertices.
type Graph struct {
	off []int32 // len N+1; off[0] = 0
	nbr []int32 // len 2M; row v = nbr[off[v]:off[v+1]], sorted
	m   int

	// Optional dense adjacency rows (bitset matrix) for O(1) HasEdgeFast,
	// built on demand by EnsureDense for small vertex universes.
	denseOnce sync.Once
	dense     []Bitset
}

// N returns the number of vertices.
func (g *Graph) N() int {
	if g.off == nil {
		return 0
	}
	return len(g.off) - 1
}

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice
// aliases the graph's CSR arena and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 { return g.nbr[g.off[v]:g.off[v+1]] }

// CSR exposes the raw offsets and neighbor arena for kernels that iterate
// adjacency without per-vertex slice headers (centrality BFS, partitioned
// ranks). Both slices are shared with the graph and must not be modified.
func (g *Graph) CSR() (off, nbr []int32) { return g.off, g.nbr }

// HasEdge reports whether the undirected edge {u, v} exists. Both endpoints
// are validated (out-of-range or equal endpoints report false) before the
// degree swap, so the swap always runs on valid vertices; the lookup then
// scans the smaller of the two adjacency rows. Kernels that already
// guarantee valid endpoints should use HasEdgeFast.
func (g *Graph) HasEdge(u, v int32) bool {
	if u == v || u < 0 || v < 0 || int(u) >= g.N() || int(v) >= g.N() {
		return false
	}
	return g.HasEdgeFast(u, v)
}

// HasEdgeFast is HasEdge without endpoint validation.
//
// Contract: 0 ≤ u, v < N and u ≠ v; violating it may panic or return
// garbage. When dense adjacency rows are present (EnsureDense) the test is
// a single bit probe; otherwise the smaller adjacency row is searched, so
// the degree swap happens before any row access. EnsureDense must not be
// called concurrently with HasEdgeFast (build dense rows before fanning
// out).
func (g *Graph) HasEdgeFast(u, v int32) bool {
	if g.dense != nil {
		return g.dense[u].Has(v)
	}
	// Degree swap first: scan the smaller row.
	du, dv := g.off[u+1]-g.off[u], g.off[v+1]-g.off[v]
	if dv < du {
		u, v = v, u
		du = dv
	}
	a := g.nbr[g.off[u] : g.off[u]+du]
	if len(a) <= 8 {
		for _, w := range a {
			if w == v {
				return true
			}
			if w > v {
				return false
			}
		}
		return false
	}
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == v
}

// denseRowLimit caps the vertex count for dense adjacency rows and the
// other bitset-matrix structures; above it the worst-case n²/8-byte
// footprint stops paying for itself (at 16384 vertices a full matrix is
// 32 MiB).
const denseRowLimit = 1 << 14

// EnsureDense builds the dense bitset adjacency rows if the vertex universe
// is small enough (≤ denseRowLimit) and reports whether they are available.
// Safe to call multiple times; the build runs once. Call it before handing
// the graph to concurrent readers of HasEdgeFast/Row.
func (g *Graph) EnsureDense() bool {
	n := g.N()
	if n == 0 || n > denseRowLimit {
		return false
	}
	g.denseOnce.Do(func() {
		rows := make([]Bitset, n)
		words := (n + 63) >> 6
		arena := make([]uint64, n*words)
		for v := 0; v < n; v++ {
			rows[v] = Bitset(arena[v*words : (v+1)*words])
			for _, w := range g.Neighbors(int32(v)) {
				rows[v].Set(w)
			}
		}
		g.dense = rows
	})
	return true
}

// Row returns the dense adjacency bitset of v, or nil when dense rows have
// not been built (see EnsureDense). The row is shared and must not be
// modified.
func (g *Graph) Row(v int32) Bitset {
	if g.dense == nil {
		return nil
	}
	return g.dense[v]
}

// MaxDegree returns the largest vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	d := int32(0)
	for v := 0; v+1 < len(g.off); v++ {
		if deg := g.off[v+1] - g.off[v]; deg > d {
			d = deg
		}
	}
	return int(d)
}

// Edge is an undirected edge normalized so that U < V.
type Edge struct{ U, V int32 }

// NormEdge returns the normalized form of the edge {u, v}.
func NormEdge(u, v int32) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{u, v}
}

// Edges returns all edges of g in sorted (U, V) order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	g.ForEachEdge(func(u, v int32) { out = append(out, Edge{u, v}) })
	return out
}

// ForEachEdge calls fn once per undirected edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v int32)) {
	for u := 0; u+1 < len(g.off); u++ {
		for _, v := range g.nbr[g.off[u]:g.off[u+1]] {
			if int32(u) < v {
				fn(int32(u), v)
			}
		}
	}
}

// String returns a short diagnostic description of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}

// Builder accumulates edges and produces an immutable CSR Graph. Edges are
// staged in one flat append-only list; Build counting-sorts them into the
// CSR arena, then sorts and deduplicates each row exactly once. This is the
// single construction path for every graph in the library — generators,
// I/O, filters and subgraph extraction all funnel through it.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Self loops are ignored.
// Duplicates are tolerated and removed at Build time. AddEdge panics if
// either endpoint is out of range.
func (b *Builder) AddEdge(u, v int32) {
	if int(u) >= b.n || int(v) >= b.n || u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.edges = append(b.edges, Edge{u, v})
}

// AddEdges stages a batch of undirected edges in one call: capacity for the
// whole batch is reserved up front, so bulk producers (the expr correlation
// engine, generators) avoid repeated append growth. Semantics are exactly
// AddEdge's — self loops are skipped, duplicates are removed at Build time,
// and an out-of-range endpoint panics.
func (b *Builder) AddEdges(edges []Edge) {
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
}

// Grow reserves staging capacity for at least m additional edges.
func (b *Builder) Grow(m int) {
	b.edges = slices.Grow(b.edges, m)
}

// Build finalizes the CSR graph: a counting sort scatters both edge
// directions into the neighbor arena, then every row is sorted and
// deduplicated in place and the arena compacted. The builder must not be
// used after Build.
func (b *Builder) Build() *Graph {
	n := b.n
	g := &Graph{off: make([]int32, n+1)}
	if len(b.edges) == 0 {
		g.nbr = []int32{}
		b.edges = nil
		return g
	}
	// Pass 1: count both directions.
	counts := g.off[1:] // counts[v] accumulates deg(v) at off[v+1]
	for _, e := range b.edges {
		counts[e.U]++
		counts[e.V]++
	}
	// Prefix sums -> row offsets.
	for v := 1; v <= n; v++ {
		g.off[v] += g.off[v-1]
	}
	// Pass 2: scatter. cursor[v] tracks the next free slot of row v.
	nbr := make([]int32, g.off[n])
	cursor := make([]int32, n)
	copy(cursor, g.off[:n])
	for _, e := range b.edges {
		nbr[cursor[e.U]] = e.V
		cursor[e.U]++
		nbr[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	// Pass 3: sort + dedup each row, compacting the arena in place.
	w := int32(0)
	prevEnd := int32(0)
	for v := 0; v < n; v++ {
		row := nbr[prevEnd:g.off[v+1]]
		prevEnd = g.off[v+1]
		slices.Sort(row)
		for i, x := range row {
			if i == 0 || x != nbr[w-1] {
				nbr[w] = x
				w++
			}
		}
		g.off[v+1] = w
	}
	g.nbr = nbr[:w:w]
	g.m = int(w) / 2
	b.edges = nil
	return g
}

// FromEdges builds a graph with n vertices from the given edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// FromCSRArenas adopts pre-built CSR arenas as a graph without staging or
// sorting: off and nbr must be exactly the layout CSR() exposes (off[0] = 0,
// rows strictly ascending, both edge directions present). The slices are
// adopted, not copied — the caller must not modify them afterwards. This is
// the snapshot-decode path: a persisted graph's arenas are validated and
// aliased in place (possibly straight out of an mmap'd file) instead of
// paying a Builder pass.
//
// Validation is structural and O(n+m): offsets monotone and in range, every
// row strictly ascending with in-range, non-self endpoints, arena length
// even. It deliberately does not verify that the adjacency is symmetric —
// callers feed checksum-verified snapshots, so the check guards against
// codec bugs and truncation, not adversarial input.
func FromCSRArenas(off, nbr []int32) (*Graph, error) {
	if len(off) == 0 {
		if len(nbr) != 0 {
			return nil, fmt.Errorf("graph: CSR arenas with %d neighbors but no offsets", len(nbr))
		}
		return &Graph{}, nil
	}
	n := len(off) - 1
	if off[0] != 0 {
		return nil, fmt.Errorf("graph: CSR offsets start at %d, want 0", off[0])
	}
	if int(off[n]) != len(nbr) {
		return nil, fmt.Errorf("graph: CSR offsets end at %d but arena has %d entries", off[n], len(nbr))
	}
	if len(nbr)%2 != 0 {
		return nil, fmt.Errorf("graph: CSR arena length %d is odd (both edge directions must be present)", len(nbr))
	}
	for v := 0; v < n; v++ {
		if off[v+1] < off[v] {
			return nil, fmt.Errorf("graph: CSR offsets decrease at vertex %d", v)
		}
		row := nbr[off[v]:off[v+1]]
		prev := int32(-1)
		for _, w := range row {
			if w <= prev || int(w) >= n || w == int32(v) {
				return nil, fmt.Errorf("graph: CSR row %d is not a strictly ascending neighbor list", v)
			}
			prev = w
		}
	}
	return &Graph{off: off, nbr: nbr, m: len(nbr) / 2}, nil
}

// Subgraph returns the subgraph induced by keep (original vertex ids are
// preserved; edges with an endpoint outside keep are dropped). keep must not
// contain duplicates.
func (g *Graph) Subgraph(keep []int32) *Graph {
	in := NewBitset(g.N())
	for _, v := range keep {
		in.Set(v)
	}
	b := NewBuilder(g.N())
	for _, u := range keep {
		for _, v := range g.Neighbors(u) {
			if u < v && in.Has(v) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// CompactSubgraph returns the subgraph induced by keep with vertices
// relabelled to 0..len(keep)-1 (in the order given), plus the local→global
// vertex map. It allocates O(g.N()) scratch; callers extracting many small
// neighborhoods should reuse a Localizer instead.
func (g *Graph) CompactSubgraph(keep []int32) (*Graph, []int32) {
	return g.NewLocalizer().Compact(keep)
}

// Localizer relabels vertex subsets of one graph into compact local id
// spaces. It owns O(N) scratch that is reused across Compact calls, making
// per-vertex neighborhood extraction (the MCODE weight kernel) allocation-
// cheap. A Localizer is not safe for concurrent use; give each worker its
// own.
type Localizer struct {
	g     *Graph
	local []int32 // local id of v in the current Compact call
	stamp []int32 // generation tag guarding local[]
	cur   int32
}

// NewLocalizer returns a Localizer over g.
func (g *Graph) NewLocalizer() *Localizer {
	n := g.N()
	l := &Localizer{g: g, local: make([]int32, n), stamp: make([]int32, n)}
	for i := range l.stamp {
		l.stamp[i] = -1
	}
	return l
}

// Compact builds the induced subgraph of keep with vertices relabelled to
// 0..len(keep)-1 in the order given, plus the local→global map. keep must
// not contain duplicates.
func (l *Localizer) Compact(keep []int32) (*Graph, []int32) {
	l.cur++
	for i, v := range keep {
		l.local[v] = int32(i)
		l.stamp[v] = l.cur
	}
	b := NewBuilder(len(keep))
	for i, u := range keep {
		for _, v := range l.g.Neighbors(u) {
			if u < v && l.stamp[v] == l.cur {
				b.AddEdge(int32(i), l.local[v])
			}
		}
	}
	toGlobal := make([]int32, len(keep))
	copy(toGlobal, keep)
	return b.Build(), toGlobal
}
