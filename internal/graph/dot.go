package graph

import (
	"bufio"
	"fmt"
	"io"
)

// DOTOptions controls WriteDOT output.
type DOTOptions struct {
	// Name of the DOT graph (default "G").
	Name string
	// Highlight assigns vertices to highlight groups; vertices in group i
	// are rendered with the i-th fill color. Nil entries mean no highlight.
	Highlight [][]int32
	// IncludeIsolated renders degree-0 vertices too (off by default; sparse
	// correlation networks have many).
	IncludeIsolated bool
}

// dotPalette cycles for highlight groups.
var dotPalette = []string{
	"lightblue", "lightcoral", "palegreen", "gold", "plum",
	"lightsalmon", "aquamarine", "khaki",
}

// WriteDOT writes g in Graphviz DOT format, optionally highlighting vertex
// groups (e.g. clusters or planted modules) with fill colors.
func WriteDOT(w io.Writer, g *Graph, opts DOTOptions) error {
	bw := bufio.NewWriter(w)
	name := opts.Name
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(bw, "graph %q {\n  node [shape=circle fontsize=10];\n", name); err != nil {
		return err
	}
	for gi, group := range opts.Highlight {
		color := dotPalette[gi%len(dotPalette)]
		for _, v := range group {
			if _, err := fmt.Fprintf(bw, "  %d [style=filled fillcolor=%q];\n", v, color); err != nil {
				return err
			}
		}
	}
	if opts.IncludeIsolated {
		for v := 0; v < g.N(); v++ {
			if g.Degree(int32(v)) == 0 {
				if _, err := fmt.Fprintf(bw, "  %d;\n", v); err != nil {
					return err
				}
			}
		}
	}
	var werr error
	g.ForEachEdge(func(u, v int32) {
		if werr == nil {
			_, werr = fmt.Fprintf(bw, "  %d -- %d;\n", u, v)
		}
	})
	if werr != nil {
		return werr
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
