package graph

import (
	"testing"
	"testing/quick"
)

// ---------------------------------------------------------------- CSR core

func TestCSRLayout(t *testing.T) {
	g := Gnm(60, 140, 3)
	off, nbr := g.CSR()
	if len(off) != g.N()+1 || off[0] != 0 || int(off[g.N()]) != len(nbr) {
		t.Fatalf("offsets malformed: len=%d first=%d last=%d arena=%d",
			len(off), off[0], off[g.N()], len(nbr))
	}
	if len(nbr) != 2*g.M() {
		t.Fatalf("arena holds %d entries, want 2M=%d", len(nbr), 2*g.M())
	}
	for v := int32(0); int(v) < g.N(); v++ {
		row := nbr[off[v]:off[v+1]]
		if len(row) != g.Degree(v) {
			t.Fatalf("row %d length %d != degree %d", v, len(row), g.Degree(v))
		}
		for i := 1; i < len(row); i++ {
			if row[i-1] >= row[i] {
				t.Fatalf("row %d not strictly sorted: %v", v, row)
			}
		}
	}
}

func TestCSREmptyAndSingleVertex(t *testing.T) {
	for _, n := range []int{0, 1} {
		g := NewBuilder(n).Build()
		if g.N() != n || g.M() != 0 {
			t.Fatalf("n=%d: got n=%d m=%d", n, g.N(), g.M())
		}
		off, nbr := g.CSR()
		if len(off) != n+1 || len(nbr) != 0 {
			t.Fatalf("n=%d: off len %d, arena len %d", n, len(off), len(nbr))
		}
		if es := g.Edges(); len(es) != 0 {
			t.Fatalf("n=%d: unexpected edges %v", n, es)
		}
	}
	// Zero value behaves like the empty graph.
	var zero Graph
	if zero.N() != 0 || zero.M() != 0 {
		t.Fatal("zero-value graph not empty")
	}
}

func TestHasEdgeFastMatchesHasEdge(t *testing.T) {
	g := RMAT(8, 6, 0, 0, 0, 7)
	n := int32(g.N())
	for u := int32(0); u < n; u++ {
		for v := int32(0); v < n; v++ {
			if u == v {
				continue
			}
			if g.HasEdge(u, v) != g.HasEdgeFast(u, v) {
				t.Fatalf("HasEdge and HasEdgeFast disagree on (%d,%d)", u, v)
			}
		}
	}
	// And again with dense rows built.
	if !g.EnsureDense() {
		t.Fatal("EnsureDense refused a small graph")
	}
	for u := int32(0); u < n; u++ {
		for v := int32(0); v < n; v++ {
			if u != v && g.HasEdge(u, v) != g.HasEdgeFast(u, v) {
				t.Fatalf("dense HasEdgeFast disagrees on (%d,%d)", u, v)
			}
		}
	}
}

func TestEnsureDenseRows(t *testing.T) {
	g := Gnm(100, 250, 5)
	if g.Row(0) != nil {
		t.Fatal("dense rows present before EnsureDense")
	}
	if !g.EnsureDense() {
		t.Fatal("EnsureDense refused")
	}
	for v := int32(0); int(v) < g.N(); v++ {
		row := g.Row(v)
		if row.Count() != g.Degree(v) {
			t.Fatalf("row %d popcount %d != degree %d", v, row.Count(), g.Degree(v))
		}
		for _, w := range g.Neighbors(v) {
			if !row.Has(w) {
				t.Fatalf("row %d missing neighbor %d", v, w)
			}
		}
	}
}

func TestLocalizerReuse(t *testing.T) {
	g := Gnm(80, 200, 9)
	loc := g.NewLocalizer()
	for trial := 0; trial < 5; trial++ {
		keep := []int32{int32(trial), int32(trial + 10), int32(trial + 20), int32(trial + 30)}
		sub, toGlobal := loc.Compact(keep)
		want, wantMap := g.CompactSubgraph(keep)
		if sub.N() != want.N() || sub.M() != want.M() {
			t.Fatalf("trial %d: localizer n=%d m=%d, one-shot n=%d m=%d",
				trial, sub.N(), sub.M(), want.N(), want.M())
		}
		for i := range toGlobal {
			if toGlobal[i] != wantMap[i] {
				t.Fatalf("trial %d: toGlobal mismatch", trial)
			}
		}
	}
}

// --------------------------------------------- orderings on the CSR graph

// Every ordering must produce a permutation on CSR graphs across the edge
// cases: empty, single-vertex, disconnected, and generator graphs.
func TestOrderingsCSRRoundtrip(t *testing.T) {
	graphs := map[string]*Graph{
		"empty":        NewBuilder(0).Build(),
		"single":       NewBuilder(1).Build(),
		"isolated":     NewBuilder(5).Build(),
		"path":         Path(17),
		"disconnected": FromEdges(9, []Edge{{0, 1}, {1, 2}, {4, 5}}),
		"rmat":         RMAT(7, 4, 0, 0, 0, 3),
	}
	for name, g := range graphs {
		for _, o := range append(AllOrderings, RandomOrder) {
			ord := Order(g, o, 5)
			if !IsPermutation(ord, g.N()) {
				t.Fatalf("%s/%v: not a permutation of %d", name, o, g.N())
			}
			// InversePerm must invert it.
			pos := InversePerm(ord)
			for i, v := range ord {
				if pos[v] != int32(i) {
					t.Fatalf("%s/%v: InversePerm broken at %d", name, o, i)
				}
			}
		}
	}
}

// ------------------------------------------- partitions on the CSR graph

// BlockPartition must roundtrip: parts cover every vertex exactly once,
// Part[] agrees with Parts[], and internal+border edge counts add up to M —
// across empty, single-vertex and generator CSR graphs at several P.
func TestBlockPartitionCSRRoundtrip(t *testing.T) {
	graphs := map[string]*Graph{
		"empty":  NewBuilder(0).Build(),
		"single": NewBuilder(1).Build(),
		"rmat":   RMAT(7, 4, 0, 0, 0, 11),
		"gnm":    Gnm(50, 120, 13),
	}
	for name, g := range graphs {
		for _, p := range []int{1, 2, 3, 7, 64} {
			ord := Order(g, Natural, 0)
			pt := BlockPartition(ord, p)
			seen := make([]int, g.N())
			for pid, part := range pt.Parts {
				for _, v := range part {
					seen[v]++
					if pt.Part[v] != int32(pid) {
						t.Fatalf("%s P=%d: Part[%d]=%d but listed in part %d",
							name, p, v, pt.Part[v], pid)
					}
				}
			}
			for v, c := range seen {
				if c != 1 {
					t.Fatalf("%s P=%d: vertex %d covered %d times", name, p, v, c)
				}
			}
			internal, border := pt.InternalEdgeCount(g)
			sum := border
			for _, c := range internal {
				sum += c
			}
			if sum != g.M() {
				t.Fatalf("%s P=%d: internal+border=%d != M=%d", name, p, sum, g.M())
			}
			if len(pt.BorderEdges(g)) != border {
				t.Fatalf("%s P=%d: BorderEdges len disagrees with count", name, p)
			}
		}
	}
}

// Partition blocks must be contiguous slices of the processing order — the
// property the CSR arena relies on for rank-local iteration.
func TestBlockPartitionPreservesOrder(t *testing.T) {
	g := Gnm(40, 80, 1)
	ord := Order(g, HighDegree, 0)
	pt := BlockPartition(ord, 4)
	i := 0
	for _, part := range pt.Parts {
		for _, v := range part {
			if v != ord[i] {
				t.Fatalf("partition reordered: pos %d got %d want %d", i, v, ord[i])
			}
			i++
		}
	}
}

// ----------------------------------------------------------------- bitset

func TestBitsetOps(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int32{0, 63, 64, 127, 129} {
		b.Set(i)
	}
	if b.Count() != 5 || !b.Has(64) || b.Has(1) {
		t.Fatalf("count=%d", b.Count())
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 4 {
		t.Fatal("clear failed")
	}
	var got []int32
	b.ForEach(func(i int32) { got = append(got, i) })
	want := []int32{0, 63, 127, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach gave %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
	if members := b.AppendMembers(nil); len(members) != 4 || members[3] != 129 {
		t.Fatalf("AppendMembers gave %v", members)
	}
	if !b.Any() {
		t.Fatal("Any false on non-empty set")
	}
	b.Reset()
	if b.Any() || b.Count() != 0 {
		t.Fatal("Reset left bits")
	}
}

func TestBitsetSubsetAndCount(t *testing.T) {
	a := NewBitset(200)
	b := NewBitset(200)
	for i := int32(0); i < 200; i += 3 {
		a.Set(i)
		b.Set(i)
	}
	b.Set(100)
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊄ a expected")
	}
	if got := a.AndCount(b); got != a.Count() {
		t.Fatalf("AndCount=%d want %d", got, a.Count())
	}
	c := NewBitset(200)
	c.Or(a)
	if !a.SubsetOf(c) || !c.SubsetOf(a) {
		t.Fatal("Or did not copy membership")
	}
}

// --------------------------------------------------- dense edge accumulator

func TestDenseEdgeSetMatchesSparse(t *testing.T) {
	f := func(seed int64) bool {
		g := Gnm(40, 100, seed)
		dense := NewDenseEdgeSet(40)
		sparse := NewEdgeSet(0)
		g.ForEachEdge(func(u, v int32) {
			dense.Add(u, v)
			dense.Add(v, u) // duplicate in reverse: must be idempotent
			sparse.Add(u, v)
		})
		if dense.Len() != sparse.Len() {
			return false
		}
		ok := true
		dense.ForEach(func(u, v int32) {
			if u >= v || !sparse.Has(u, v) {
				ok = false
			}
		})
		dg, sg := dense.Graph(40), sparse.Graph(40)
		return ok && dg.M() == sg.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseEdgeSetSelfLoopIgnored(t *testing.T) {
	s := NewDenseEdgeSet(4)
	s.Add(2, 2)
	if s.Len() != 0 || s.Has(2, 2) {
		t.Fatal("self loop accepted")
	}
}

func TestNewAccumulatorSelection(t *testing.T) {
	if _, ok := NewAccumulator(100, 10).(*DenseEdgeSet); !ok {
		t.Fatal("small universe should select the dense accumulator")
	}
	if _, ok := NewAccumulator(denseRowLimit+1, 10).(EdgeSet); !ok {
		t.Fatal("large universe should select the sparse accumulator")
	}
	if _, ok := NewAccumulator(0, 10).(EdgeSet); !ok {
		t.Fatal("empty universe should select the sparse accumulator")
	}
}

func TestEdgeListView(t *testing.T) {
	l := EdgeList{{0, 3}, {1, 2}, {0, 1}}
	if l.Len() != 3 || !l.Has(3, 0) || l.Has(2, 3) {
		t.Fatal("EdgeList Has/Len broken")
	}
	g := l.Graph(4)
	if g.M() != 3 || !g.HasEdge(0, 3) {
		t.Fatal("EdgeList.Graph broken")
	}
	s := l.Sorted()
	if s[0] != (Edge{0, 1}) || s[2] != (Edge{1, 2}) {
		t.Fatalf("Sorted gave %v", s)
	}
}

// ------------------------------------------------------------------ RMAT

func TestRMATProperties(t *testing.T) {
	g := RMAT(9, 8, 0, 0, 0, 4)
	if g.N() != 512 {
		t.Fatalf("n=%d want 512", g.N())
	}
	if g.M() == 0 || g.M() > 8*512 {
		t.Fatalf("m=%d out of range", g.M())
	}
	// Deterministic per seed.
	h := RMAT(9, 8, 0, 0, 0, 4)
	if h.M() != g.M() {
		t.Fatal("RMAT not deterministic")
	}
	// Skewed quadrants produce hubs: max degree far above the mean.
	if g.MaxDegree() < 4*(2*g.M()/g.N()) {
		t.Fatalf("no hubs: max degree %d, mean %d", g.MaxDegree(), 2*g.M()/g.N())
	}
}
