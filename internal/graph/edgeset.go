package graph

import "sort"

// EdgeKey packs a normalized undirected edge into a comparable uint64.
func EdgeKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// KeyEdge unpacks an EdgeKey back into a normalized Edge.
func KeyEdge(k uint64) Edge {
	return Edge{int32(k >> 32), int32(k & 0xffffffff)}
}

// SplitMix64 applies the SplitMix64 finalizer, the standard 64-bit mix for
// deriving independent deterministic streams from seeds and keys (used by
// the border-edge coin and the facade's per-purpose seed split).
func SplitMix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// EdgeView is the read side of an edge container: the hash set (EdgeSet),
// the dense bitset matrix (DenseEdgeSet) and the flat list (EdgeList) all
// satisfy it. Filter results are exposed through this interface so a kernel
// that emits duplicate-free edges can return its flat list without ever
// materializing a set.
type EdgeView interface {
	// Has reports whether {u, v} is present.
	Has(u, v int32) bool
	// Len returns the number of edges.
	Len() int
	// ForEach calls fn once per edge with u < v, in unspecified order.
	ForEach(fn func(u, v int32))
	// Graph materializes the edges as a CSR graph over n vertices.
	Graph(n int) *Graph
}

// EdgeCollection is a mutable EdgeView — the accumulator interface shared
// by the sparse hash set (EdgeSet) and the dense bitset matrix
// (DenseEdgeSet). Per-rank partial results and merges are accumulated
// through it; NewAccumulator picks the representation.
type EdgeCollection interface {
	EdgeView
	// Add inserts the undirected edge {u, v}; self loops are ignored.
	Add(u, v int32)
}

// NewAccumulator returns an empty EdgeCollection for edges over n vertices,
// expecting roughly capHint edges. Below the dense threshold it returns a
// DenseEdgeSet — a bitset adjacency matrix with lazily allocated rows whose
// Add/Has are single bit operations — and an EdgeSet hash set otherwise.
// The dense variant pays off when n is small (row footprint n/8 bytes) or
// the expected density is high; the hash set stays O(edges) regardless of n.
func NewAccumulator(n, capHint int) EdgeCollection {
	if n > 0 && n <= denseRowLimit {
		return NewDenseEdgeSet(n)
	}
	return NewEdgeSet(capHint)
}

// EdgeSet is a sparse set of undirected edges backed by a hash map.
type EdgeSet map[uint64]struct{}

// NewEdgeSet returns an empty edge set with the given capacity hint.
func NewEdgeSet(capHint int) EdgeSet { return make(EdgeSet, capHint) }

// Add inserts the edge {u, v}. Self loops are ignored.
func (s EdgeSet) Add(u, v int32) {
	if u == v {
		return
	}
	s[EdgeKey(u, v)] = struct{}{}
}

// Has reports whether the edge {u, v} is in the set.
func (s EdgeSet) Has(u, v int32) bool {
	_, ok := s[EdgeKey(u, v)]
	return ok
}

// Len returns the number of edges in the set.
func (s EdgeSet) Len() int { return len(s) }

// ForEach calls fn once per edge with u < v, in unspecified order.
func (s EdgeSet) ForEach(fn func(u, v int32)) {
	for k := range s {
		e := KeyEdge(k)
		fn(e.U, e.V)
	}
}

// AddSet inserts every edge of t into s.
func (s EdgeSet) AddSet(t EdgeSet) {
	for k := range t {
		s[k] = struct{}{}
	}
}

// Edges returns the edges of the set sorted by (U, V). The deterministic
// order costs a sort but keeps every consumer of the set a pure function of
// its contents — returning map order here leaked iteration order to callers
// (caught by parsamplevet/maporder).
func (s EdgeSet) Edges() []Edge {
	out := make([]Edge, 0, len(s))
	for k := range s {
		out = append(out, KeyEdge(k))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Graph materializes the edge set as a Graph over n vertices.
func (s EdgeSet) Graph(n int) *Graph {
	b := NewBuilder(n)
	b.Grow(len(s))
	for k := range s {
		e := KeyEdge(k)
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// EdgeSetOf collects all edges of g into a set.
func EdgeSetOf(g *Graph) EdgeSet {
	s := NewEdgeSet(g.M())
	g.ForEachEdge(func(u, v int32) { s.Add(u, v) })
	return s
}

// IntersectionSize returns |s ∩ t|.
func (s EdgeSet) IntersectionSize(t EdgeSet) int {
	if len(t) < len(s) {
		s, t = t, s
	}
	n := 0
	for k := range s {
		if _, ok := t[k]; ok {
			n++
		}
	}
	return n
}

// DenseEdgeSet is the Dense(n) variant of EdgeSet: a symmetric bitset
// adjacency matrix over a fixed vertex universe. Rows are allocated lazily
// on first touch, so the footprint is proportional to the number of
// distinct endpoints rather than n² until the matrix actually fills. Add
// and Has are single bit operations, which is what makes it the right
// accumulator for the triangle-rule border test and the filter merge on
// small, dense universes.
type DenseEdgeSet struct {
	n    int
	m    int
	rows []Bitset
}

// NewDenseEdgeSet returns an empty dense edge set over n vertices.
// Endpoints passed to Add/Has must lie in [0, n).
func NewDenseEdgeSet(n int) *DenseEdgeSet {
	return &DenseEdgeSet{n: n, rows: make([]Bitset, n)}
}

func (s *DenseEdgeSet) row(v int32) Bitset {
	if s.rows[v] == nil {
		s.rows[v] = NewBitset(s.n)
	}
	return s.rows[v]
}

// Add inserts the edge {u, v}. Self loops are ignored. Panics if an
// endpoint is outside [0, n).
func (s *DenseEdgeSet) Add(u, v int32) {
	if u == v {
		return
	}
	ru := s.row(u)
	if ru.Has(v) {
		return
	}
	ru.Set(v)
	s.row(v).Set(u)
	s.m++
}

// Has reports whether the edge {u, v} is present.
func (s *DenseEdgeSet) Has(u, v int32) bool {
	r := s.rows[u]
	return r != nil && u != v && r.Has(v)
}

// Len returns the number of edges.
func (s *DenseEdgeSet) Len() int { return s.m }

// ForEach calls fn once per edge with u < v, in ascending (u, v) order.
func (s *DenseEdgeSet) ForEach(fn func(u, v int32)) {
	for u, r := range s.rows {
		if r == nil {
			continue
		}
		u32 := int32(u)
		r.ForEach(func(v int32) {
			if u32 < v {
				fn(u32, v)
			}
		})
	}
}

// Graph materializes the edges as a CSR graph over n vertices (n may exceed
// the accumulator's universe).
func (s *DenseEdgeSet) Graph(n int) *Graph {
	b := NewBuilder(n)
	b.Grow(s.m)
	s.ForEach(b.AddEdge)
	return b.Build()
}

// GraphEdges presents a materialized graph's edge set as an EdgeView:
// Has is the CSR edge probe, ForEach walks edges in sorted (u, v) order,
// and Graph returns the backing graph itself when the universe matches.
// Snapshot decoding uses it to rebuild a sampling result's edge view from
// the persisted subgraph without materializing a separate edge list.
type GraphEdges struct{ G *Graph }

// Has reports whether {u, v} is an edge of the backing graph.
func (ge GraphEdges) Has(u, v int32) bool { return ge.G.HasEdge(u, v) }

// Len returns the backing graph's edge count.
func (ge GraphEdges) Len() int { return ge.G.M() }

// ForEach calls fn once per edge with u < v, in sorted (u, v) order.
func (ge GraphEdges) ForEach(fn func(u, v int32)) { ge.G.ForEachEdge(fn) }

// Graph returns the backing graph when n matches its universe, and a
// rebuilt copy over n vertices otherwise.
func (ge GraphEdges) Graph(n int) *Graph {
	if n == ge.G.N() {
		return ge.G
	}
	return FromEdges(n, ge.G.Edges())
}

// EdgeList is an append-only list of normalized undirected edges — the
// natural output of kernels like DSW that emit every edge exactly once and
// therefore need no dedup set. It implements the read-only half of
// EdgeCollection cheaply; Has is a linear scan and is meant for tests and
// small lists only.
type EdgeList []Edge

// Len returns the number of edges.
func (l EdgeList) Len() int { return len(l) }

// Has reports whether {u, v} is in the list. O(len); not for hot paths.
func (l EdgeList) Has(u, v int32) bool {
	e := NormEdge(u, v)
	for _, x := range l {
		if x == e {
			return true
		}
	}
	return false
}

// ForEach calls fn once per edge with u < v, in list order.
func (l EdgeList) ForEach(fn func(u, v int32)) {
	for _, e := range l {
		fn(e.U, e.V)
	}
}

// Graph materializes the list as a CSR graph over n vertices.
func (l EdgeList) Graph(n int) *Graph { return FromEdges(n, l) }

// Sorted returns the list sorted by (U, V), for deterministic output.
func (l EdgeList) Sorted() EdgeList {
	out := make(EdgeList, len(l))
	copy(out, l)
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}
