package graph

// EdgeKey packs a normalized undirected edge into a comparable uint64.
func EdgeKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// KeyEdge unpacks an EdgeKey back into a normalized Edge.
func KeyEdge(k uint64) Edge {
	return Edge{int32(k >> 32), int32(k & 0xffffffff)}
}

// EdgeSet is a set of undirected edges.
type EdgeSet map[uint64]struct{}

// NewEdgeSet returns an empty edge set with the given capacity hint.
func NewEdgeSet(capHint int) EdgeSet { return make(EdgeSet, capHint) }

// Add inserts the edge {u, v}. Self loops are ignored.
func (s EdgeSet) Add(u, v int32) {
	if u == v {
		return
	}
	s[EdgeKey(u, v)] = struct{}{}
}

// Has reports whether the edge {u, v} is in the set.
func (s EdgeSet) Has(u, v int32) bool {
	_, ok := s[EdgeKey(u, v)]
	return ok
}

// Len returns the number of edges in the set.
func (s EdgeSet) Len() int { return len(s) }

// AddSet inserts every edge of t into s.
func (s EdgeSet) AddSet(t EdgeSet) {
	for k := range t {
		s[k] = struct{}{}
	}
}

// Edges returns the edges of the set in unspecified order.
func (s EdgeSet) Edges() []Edge {
	out := make([]Edge, 0, len(s))
	for k := range s {
		out = append(out, KeyEdge(k))
	}
	return out
}

// Graph materializes the edge set as a Graph over n vertices.
func (s EdgeSet) Graph(n int) *Graph {
	b := NewBuilder(n)
	for k := range s {
		e := KeyEdge(k)
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// EdgeSetOf collects all edges of g into a set.
func EdgeSetOf(g *Graph) EdgeSet {
	s := NewEdgeSet(g.M())
	g.ForEachEdge(func(u, v int32) { s.Add(u, v) })
	return s
}

// IntersectionSize returns |s ∩ t|.
func (s EdgeSet) IntersectionSize(t EdgeSet) int {
	if len(t) < len(s) {
		s, t = t, s
	}
	n := 0
	for k := range s {
		if _, ok := t[k]; ok {
			n++
		}
	}
	return n
}
