package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g as whitespace-separated "u v" pairs, one edge per
// line, preceded by a "# n m" header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var werr error
	g.ForEachEdge(func(u, v int32) {
		if werr == nil {
			_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Lines starting
// with '#' are treated as comments; the first comment may carry "# n m" and
// fixes the vertex count, otherwise n is 1 + the largest endpoint seen.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	n := -1
	var edges []Edge
	maxV := int32(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if n < 0 {
				f := strings.Fields(strings.TrimPrefix(line, "#"))
				if len(f) >= 1 {
					if v, err := strconv.Atoi(f[0]); err == nil {
						n = v
					}
				}
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("graph: line %d: want two fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(f[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, f[0], err)
		}
		v, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, f[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		e := NormEdge(int32(u), int32(v))
		edges = append(edges, e)
		if e.V > maxV {
			maxV = e.V
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = int(maxV) + 1
	}
	// Guard against hostile or corrupt headers before allocating adjacency.
	const maxVertices = 1 << 26
	if n > maxVertices {
		return nil, fmt.Errorf("graph: declared vertex count %d exceeds limit %d", n, maxVertices)
	}
	if int(maxV) >= n {
		return nil, fmt.Errorf("graph: vertex id %d out of declared range %d", maxV, n)
	}
	return FromEdges(n, edges), nil
}
