package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(1, 1) // self loop dropped
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(2, 3) {
		t.Fatal("missing expected edges")
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 1) {
		t.Fatal("unexpected edge present")
	}
}

func TestBuilderAddEdgesBulk(t *testing.T) {
	// Bulk staging must be indistinguishable from per-edge staging:
	// same dedup, same self-loop skipping, same CSR output.
	edges := []Edge{
		{0, 1}, {1, 0}, {0, 1}, // duplicates both ways
		{2, 3},
		{1, 1}, // self loop dropped
		{3, 4}, {2, 4},
	}
	bulk := NewBuilder(5)
	bulk.AddEdges(edges)
	gBulk := bulk.Build()

	single := NewBuilder(5)
	for _, e := range edges {
		single.AddEdge(e.U, e.V)
	}
	gSingle := single.Build()

	if gBulk.M() != gSingle.M() || gBulk.M() != 4 {
		t.Fatalf("bulk M = %d, single M = %d, want 4", gBulk.M(), gSingle.M())
	}
	for _, e := range gSingle.Edges() {
		if !gBulk.HasEdge(e.U, e.V) {
			t.Fatalf("bulk graph missing edge (%d,%d)", e.U, e.V)
		}
	}
	// Mixing AddEdge and AddEdges stages into the same list.
	mixed := NewBuilder(5)
	mixed.AddEdge(0, 1)
	mixed.AddEdges([]Edge{{2, 3}})
	if g := mixed.Build(); g.M() != 2 {
		t.Fatalf("mixed staging M = %d, want 2", g.M())
	}
	// Empty batch is a no-op.
	empty := NewBuilder(3)
	empty.AddEdges(nil)
	if g := empty.Build(); g.M() != 0 {
		t.Fatal("empty batch added edges")
	}
}

func TestBuilderAddEdgesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range endpoint in batch")
		}
	}()
	NewBuilder(2).AddEdges([]Edge{{0, 1}, {0, 2}})
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range endpoint")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 {
		t.Fatalf("empty graph: n=%d m=%d maxdeg=%d", g.N(), g.M(), g.MaxDegree())
	}
	if !IsConnected(g) {
		t.Fatal("empty graph should count as connected")
	}
}

func TestHasEdgeBoundary(t *testing.T) {
	g := Path(3)
	if g.HasEdge(-1, 0) || g.HasEdge(0, 5) || g.HasEdge(2, 2) {
		t.Fatal("HasEdge accepted invalid endpoints")
	}
}

func TestDegreesPath(t *testing.T) {
	g := Path(5)
	want := []int{1, 2, 2, 2, 1}
	for v, w := range want {
		if g.Degree(int32(v)) != w {
			t.Fatalf("deg(%d) = %d, want %d", v, g.Degree(int32(v)), w)
		}
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d, want 2", g.MaxDegree())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := Gnm(50, 120, 1)
	es := g.Edges()
	if len(es) != g.M() {
		t.Fatalf("Edges len = %d, want %d", len(es), g.M())
	}
	g2 := FromEdges(g.N(), es)
	if g2.M() != g.M() {
		t.Fatalf("round trip M = %d, want %d", g2.M(), g.M())
	}
	for _, e := range es {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("missing edge %v after round trip", e)
		}
	}
}

func TestForEachEdgeCountsOnce(t *testing.T) {
	g := Complete(6)
	n := 0
	g.ForEachEdge(func(u, v int32) {
		if u >= v {
			t.Fatalf("ForEachEdge gave u=%d >= v=%d", u, v)
		}
		n++
	})
	if n != 15 {
		t.Fatalf("visited %d edges, want 15", n)
	}
}

func TestSubgraph(t *testing.T) {
	g := Complete(5)
	sub := g.Subgraph([]int32{0, 1, 2})
	if sub.M() != 3 {
		t.Fatalf("induced K3 has %d edges, want 3", sub.M())
	}
	if sub.N() != 5 {
		t.Fatalf("Subgraph should keep the vertex universe, got n=%d", sub.N())
	}
	if sub.HasEdge(3, 4) {
		t.Fatal("edge outside keep set survived")
	}
}

func TestCompactSubgraph(t *testing.T) {
	g := Path(6)
	sub, toGlobal := g.CompactSubgraph([]int32{2, 3, 4})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("compact path: n=%d m=%d, want 3, 2", sub.N(), sub.M())
	}
	if toGlobal[0] != 2 || toGlobal[2] != 4 {
		t.Fatalf("toGlobal = %v", toGlobal)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatal("compact subgraph edges wrong")
	}
}

func TestEdgeKeyRoundTrip(t *testing.T) {
	f := func(u, v int32) bool {
		if u < 0 {
			u = -u
		}
		if v < 0 {
			v = -v
		}
		if u == v {
			return true
		}
		e := KeyEdge(EdgeKey(u, v))
		return e == NormEdge(u, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeSetOps(t *testing.T) {
	s := NewEdgeSet(4)
	s.Add(1, 2)
	s.Add(2, 1)
	s.Add(3, 3) // ignored
	if s.Len() != 1 || !s.Has(2, 1) {
		t.Fatalf("set = %v", s.Edges())
	}
	tset := NewEdgeSet(2)
	tset.Add(1, 2)
	tset.Add(5, 6)
	if got := s.IntersectionSize(tset); got != 1 {
		t.Fatalf("intersection = %d, want 1", got)
	}
	s.AddSet(tset)
	if s.Len() != 2 {
		t.Fatalf("after AddSet len = %d, want 2", s.Len())
	}
	g := s.Graph(7)
	if g.M() != 2 || !g.HasEdge(5, 6) {
		t.Fatal("EdgeSet.Graph mismatch")
	}
}

func TestEdgeSetOfInverse(t *testing.T) {
	g := Gnm(40, 80, 7)
	s := EdgeSetOf(g)
	if s.Len() != g.M() {
		t.Fatalf("EdgeSetOf len = %d, want %d", s.Len(), g.M())
	}
	g2 := s.Graph(g.N())
	if g2.M() != g.M() {
		t.Fatal("EdgeSet -> Graph lost edges")
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.Build()
	comps := ConnectedComponents(g)
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	if len(comps[0]) != 3 {
		t.Fatalf("largest component size = %d, want 3", len(comps[0]))
	}
	if IsConnected(g) {
		t.Fatal("disconnected graph reported connected")
	}
	if !IsConnected(Path(9)) {
		t.Fatal("path reported disconnected")
	}
}

func TestBFSOrder(t *testing.T) {
	g := Path(5)
	got := BFS(g, 2)
	if len(got) != 5 || got[0] != 2 {
		t.Fatalf("BFS from 2 = %v", got)
	}
}

func TestCountTriangles(t *testing.T) {
	if n := CountTriangles(Complete(4)); n != 4 {
		t.Fatalf("K4 triangles = %d, want 4", n)
	}
	if n := CountTriangles(Cycle(5)); n != 0 {
		t.Fatalf("C5 triangles = %d, want 0", n)
	}
	if n := CountTriangles(Complete(6)); n != 20 {
		t.Fatalf("K6 triangles = %d, want 20", n)
	}
}

func TestHasChordlessCycleLen4(t *testing.T) {
	if !HasChordlessCycleLen4(Cycle(4)) {
		t.Fatal("C4 should have a chordless 4-cycle")
	}
	if HasChordlessCycleLen4(Complete(5)) {
		t.Fatal("K5 has no chordless 4-cycle")
	}
	if !HasChordlessCycleLen4(Grid(3, 3)) {
		t.Fatal("grid should have a chordless 4-cycle")
	}
}

func TestDensity(t *testing.T) {
	if d := Density(Complete(5)); d != 1 {
		t.Fatalf("K5 density = %v, want 1", d)
	}
	if d := Density(NewBuilder(1).Build()); d != 0 {
		t.Fatalf("singleton density = %v, want 0", d)
	}
}

func TestGnmProperties(t *testing.T) {
	g := Gnm(100, 300, 42)
	if g.N() != 100 || g.M() != 300 {
		t.Fatalf("Gnm: n=%d m=%d", g.N(), g.M())
	}
	// Deterministic per seed.
	g2 := Gnm(100, 300, 42)
	if len(g.Edges()) != len(g2.Edges()) {
		t.Fatal("Gnm not deterministic")
	}
	for i, e := range g.Edges() {
		if g2.Edges()[i] != e {
			t.Fatal("Gnm not deterministic")
		}
	}
	// Requesting more edges than possible caps at the complete graph.
	gfull := Gnm(5, 100, 1)
	if gfull.M() != 10 {
		t.Fatalf("capped Gnm m=%d, want 10", gfull.M())
	}
}

func TestGenerators(t *testing.T) {
	if g := Cycle(6); g.M() != 6 || g.MaxDegree() != 2 {
		t.Fatal("cycle wrong")
	}
	if g := Grid(3, 4); g.N() != 12 || g.M() != 17 {
		t.Fatalf("grid m=%d", g.M())
	}
	pa := PreferentialAttachment(200, 2, 9)
	if pa.N() != 200 {
		t.Fatal("PA vertex count")
	}
	if !IsConnected(pa) {
		t.Fatal("PA graph should be connected")
	}
	if pa.MaxDegree() < 8 {
		t.Fatalf("PA should have hubs, max degree = %d", pa.MaxDegree())
	}
}

func TestPlantedModules(t *testing.T) {
	spec := ModuleSpec{Count: 5, MinSize: 8, MaxSize: 12, Density: 0.9, NoiseDeg: 1}
	pr := PlantedModules(500, 400, spec, 3)
	if len(pr.Modules) != 5 {
		t.Fatalf("planted %d modules, want 5", len(pr.Modules))
	}
	seen := map[int32]bool{}
	for _, mod := range pr.Modules {
		if len(mod) < 8 || len(mod) > 12 {
			t.Fatalf("module size %d out of range", len(mod))
		}
		for _, v := range mod {
			if seen[v] {
				t.Fatal("modules overlap")
			}
			seen[v] = true
		}
		// Modules should be dense.
		sub := pr.G.Subgraph(mod)
		d := 2 * float64(sub.M()) / (float64(len(mod)) * float64(len(mod)-1))
		if d < 0.7 {
			t.Fatalf("module density %.2f too low", d)
		}
	}
}

func TestOrderings(t *testing.T) {
	g := PreferentialAttachment(150, 2, 5)
	for _, o := range append(AllOrderings, RandomOrder) {
		ord := Order(g, o, 11)
		if !IsPermutation(ord, g.N()) {
			t.Fatalf("%v order is not a permutation", o)
		}
	}
	hd := Order(g, HighDegree, 0)
	for i := 1; i < len(hd); i++ {
		if g.Degree(hd[i-1]) < g.Degree(hd[i]) {
			t.Fatal("HighDegree order not descending")
		}
	}
	ld := Order(g, LowDegree, 0)
	for i := 1; i < len(ld); i++ {
		if g.Degree(ld[i-1]) > g.Degree(ld[i]) {
			t.Fatal("LowDegree order not ascending")
		}
	}
}

func TestOrderingStrings(t *testing.T) {
	want := map[Ordering]string{Natural: "NO", HighDegree: "HD", LowDegree: "LD", RCM: "RCM", RandomOrder: "RAND"}
	for o, s := range want {
		if o.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(o), o.String(), s)
		}
	}
	if Ordering(99).String() == "" {
		t.Fatal("unknown ordering should still stringify")
	}
}

// RCM on a path from one end should reduce to (reversed) BFS order, and
// bandwidth of a path under RCM must be 1.
func TestRCMBandwidthPath(t *testing.T) {
	g := Path(50)
	ord := ReverseCuthillMcKee(g)
	if !IsPermutation(ord, 50) {
		t.Fatal("RCM not a permutation")
	}
	pos := InversePerm(ord)
	band := 0
	g.ForEachEdge(func(u, v int32) {
		d := int(pos[u]) - int(pos[v])
		if d < 0 {
			d = -d
		}
		if d > band {
			band = d
		}
	})
	if band != 1 {
		t.Fatalf("RCM bandwidth of path = %d, want 1", band)
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	g := Gnm(200, 400, 17)
	bandOf := func(ord []int32) int {
		pos := InversePerm(ord)
		band := 0
		g.ForEachEdge(func(u, v int32) {
			d := int(pos[u]) - int(pos[v])
			if d < 0 {
				d = -d
			}
			if d > band {
				band = d
			}
		})
		return band
	}
	rcm := bandOf(ReverseCuthillMcKee(g))
	rnd := bandOf(Order(g, RandomOrder, 23))
	if rcm >= rnd {
		t.Fatalf("RCM bandwidth %d not better than random %d", rcm, rnd)
	}
}

func TestInversePerm(t *testing.T) {
	ord := []int32{2, 0, 1}
	pos := InversePerm(ord)
	for i, v := range ord {
		if pos[v] != int32(i) {
			t.Fatalf("pos[%d] = %d, want %d", v, pos[v], i)
		}
	}
}

func TestIsPermutation(t *testing.T) {
	if IsPermutation([]int32{0, 1, 1}, 3) {
		t.Fatal("duplicate accepted")
	}
	if IsPermutation([]int32{0, 1}, 3) {
		t.Fatal("short accepted")
	}
	if IsPermutation([]int32{0, 3, 1}, 3) {
		t.Fatal("out of range accepted")
	}
	if !IsPermutation([]int32{2, 0, 1}, 3) {
		t.Fatal("valid rejected")
	}
}

func TestBlockPartition(t *testing.T) {
	g := Path(10)
	ord := NaturalOrder(10)
	pt := BlockPartition(ord, 3)
	if pt.P() != 3 {
		t.Fatalf("P = %d", pt.P())
	}
	total := 0
	for _, part := range pt.Parts {
		total += len(part)
	}
	if total != 10 {
		t.Fatalf("partition covers %d vertices", total)
	}
	for p, part := range pt.Parts {
		for _, v := range part {
			if pt.Part[v] != int32(p) {
				t.Fatal("Part[] inconsistent with Parts[]")
			}
		}
	}
	// Path split into 3 contiguous blocks has exactly 2 border edges.
	if be := pt.BorderEdges(g); len(be) != 2 {
		t.Fatalf("border edges = %d, want 2", len(be))
	}
	internal, border := pt.InternalEdgeCount(g)
	if border != 2 {
		t.Fatalf("border count = %d", border)
	}
	sum := 0
	for _, c := range internal {
		sum += c
	}
	if sum+border != g.M() {
		t.Fatal("internal+border != M")
	}
}

func TestBlockPartitionEdgeCases(t *testing.T) {
	ord := NaturalOrder(4)
	if pt := BlockPartition(ord, 0); pt.P() != 1 {
		t.Fatal("P<1 should clamp to 1")
	}
	if pt := BlockPartition(ord, 9); pt.P() != 4 {
		t.Fatalf("P>n should clamp to n, got %d", BlockPartition(ord, 9).P())
	}
}

func TestEdgeListIO(t *testing.T) {
	g := Gnm(60, 150, 5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", g2.N(), g2.M(), g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{
		"1\n",
		"a b\n",
		"1 x\n",
		"-1 2\n",
		"# 2\n0 5\n",
	} {
		if _, err := ReadEdgeList(bytes.NewBufferString(bad)); err == nil {
			t.Fatalf("input %q: want error", bad)
		}
	}
	g, err := ReadEdgeList(bytes.NewBufferString("\n# comment\n0 1\n\n2 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("parsed n=%d m=%d", g.N(), g.M())
	}
}

// Property: a built graph never contains self loops or duplicate adjacency
// entries, for random edge multisets.
func TestBuildInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		count := 0
		for v := int32(0); int(v) < n; v++ {
			nb := g.Neighbors(v)
			for i, w := range nb {
				if w == v {
					return false
				}
				if i > 0 && nb[i-1] >= w {
					return false
				}
				count++
			}
		}
		return count == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDOT(t *testing.T) {
	g := Complete(4)
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, DOTOptions{
		Name:      "test",
		Highlight: [][]int32{{0, 1}, {2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`graph "test"`, "0 -- 1", "2 -- 3", "fillcolor"} {
		if !strings.Contains(s, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, s)
		}
	}
}

func TestWriteDOTIsolated(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, DOTOptions{IncludeIsolated: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "  2;") {
		t.Fatal("isolated vertex not rendered")
	}
	buf.Reset()
	if err := WriteDOT(&buf, g, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "  2;") {
		t.Fatal("isolated vertex rendered without IncludeIsolated")
	}
}

func TestGraphString(t *testing.T) {
	if s := Path(3).String(); s != "graph{n=3 m=2}" {
		t.Fatalf("String = %q", s)
	}
}

func TestEdgeSetEdges(t *testing.T) {
	s := NewEdgeSet(2)
	s.Add(3, 1)
	s.Add(0, 2)
	es := s.Edges()
	if len(es) != 2 {
		t.Fatalf("edges = %v", es)
	}
	for _, e := range es {
		if e.U >= e.V {
			t.Fatalf("edge not normalized: %v", e)
		}
	}
}

func TestWindowedModulesLocality(t *testing.T) {
	// With Window=2, module vertex ids must span at most 2×size.
	spec := ModuleSpec{Count: 8, MinSize: 6, MaxSize: 6, Density: 0.9, Window: 2}
	pr := PlantedModules(600, 300, spec, 13)
	if len(pr.Modules) == 0 {
		t.Fatal("no modules placed")
	}
	for _, mod := range pr.Modules {
		lo, hi := mod[0], mod[0]
		for _, v := range mod {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if int(hi-lo) >= 2*len(mod) {
			t.Fatalf("module spans [%d,%d], beyond window %d", lo, hi, 2*len(mod))
		}
	}
}

func TestWindowedModulesExhaustion(t *testing.T) {
	// Tiny universe: the generator must stop placing modules rather than
	// loop forever or overlap them.
	spec := ModuleSpec{Count: 50, MinSize: 4, MaxSize: 4, Density: 1, Window: 1}
	pr := PlantedModules(20, 0, spec, 7)
	if len(pr.Modules) > 5 {
		t.Fatalf("placed %d modules in a 20-vertex universe", len(pr.Modules))
	}
	seen := map[int32]bool{}
	for _, mod := range pr.Modules {
		for _, v := range mod {
			if seen[v] {
				t.Fatal("overlapping modules")
			}
			seen[v] = true
		}
	}
}

func TestNoiseClumpsAttach(t *testing.T) {
	with := PlantedModules(300, 100, ModuleSpec{
		Count: 3, MinSize: 6, MaxSize: 6, Density: 0.9, NoiseClumps: 2, Window: 2,
	}, 5)
	without := PlantedModules(300, 100, ModuleSpec{
		Count: 3, MinSize: 6, MaxSize: 6, Density: 0.9, Window: 2,
	}, 5)
	if with.G.M() <= without.G.M() {
		t.Fatalf("clumps added no edges: %d vs %d", with.G.M(), without.G.M())
	}
	// Clump triangles exist: count triangles not fully inside modules.
	inModule := map[int32]bool{}
	for _, mod := range with.Modules {
		for _, v := range mod {
			inModule[v] = true
		}
	}
	outsideTri := 0
	with.G.ForEachEdge(func(u, v int32) {
		if inModule[u] || inModule[v] {
			return
		}
		// Look for a common neighbor outside modules.
		for _, w := range with.G.Neighbors(u) {
			if w != v && !inModule[w] && with.G.HasEdge(w, v) {
				outsideTri++
				break
			}
		}
	})
	if outsideTri == 0 {
		t.Fatal("no noise-clump triangles found")
	}
}

func TestWriteEdgeListError(t *testing.T) {
	g := Gnm(30, 60, 1)
	if err := WriteEdgeList(failWriter{}, g); err == nil {
		t.Fatal("want error from failing writer")
	}
	if err := WriteDOT(failWriter{}, g, DOTOptions{}); err == nil {
		t.Fatal("want error from failing writer")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errWrite }

var errWrite = errors.New("synthetic write failure")
