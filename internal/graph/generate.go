package graph

import (
	"math/rand"
)

// Gnm returns a uniform random simple graph with n vertices and (up to) m
// edges, deterministic for a given seed.
func Gnm(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	seen := NewEdgeSet(m)
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	for seen.Len() < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v || seen.Has(u, v) {
			continue
		}
		seen.Add(u, v)
		b.AddEdge(u, v)
	}
	return b.Build()
}

// Path returns the path graph 0-1-...-n-1.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// Cycle returns the cycle graph C_n.
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph (useful as a highly non-chordal
// test case: every face is a chordless C4).
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// RMAT returns a recursive-matrix (R-MAT, Chakrabarti–Zhan–Faloutsos) graph
// over n = 2^scale vertices with (up to) edgeFactor·n distinct edges: each
// edge picks its endpoints by recursively descending into one of the four
// adjacency-matrix quadrants with probabilities (a, b, c, 1−a−b−c). Skewed
// quadrant weights produce the heavy-tailed degree distributions of real
// networks, which is what makes it the standard stress generator for the
// graph kernels. Passing a = b = c = 0 selects the Graph500 defaults
// (0.57, 0.19, 0.19). Self loops and duplicates are discarded, so the
// realized edge count can be slightly below the target; deterministic per
// seed.
func RMAT(scale uint, edgeFactor int, a, b, c float64, seed int64) *Graph {
	if a == 0 && b == 0 && c == 0 {
		a, b, c = 0.57, 0.19, 0.19
	}
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n)
	bld.Grow(m)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < int(scale); bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			bld.AddEdge(int32(u), int32(v))
		}
	}
	return bld.Build()
}

// PreferentialAttachment returns a Barabási–Albert style scale-free graph:
// each new vertex attaches k edges to existing vertices with probability
// proportional to degree.
func PreferentialAttachment(n, k int, seed int64) *Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	// Repeated-endpoint list for degree-proportional sampling.
	targets := make([]int32, 0, 2*n*k)
	seed0 := k + 1
	if seed0 > n {
		seed0 = n
	}
	for i := 0; i < seed0; i++ {
		for j := i + 1; j < seed0; j++ {
			b.AddEdge(int32(i), int32(j))
			targets = append(targets, int32(i), int32(j))
		}
	}
	// picked keeps the attachment targets in draw order: the order they are
	// appended to targets feeds every later rng.Intn index, so iterating the
	// dedup map here would make the generated graph depend on map iteration
	// order — same seed, different graph (caught by parsamplevet/maporder).
	picked := make([]int32, 0, k)
	for v := seed0; v < n; v++ {
		picked = picked[:0]
		chosen := make(map[int32]bool, k)
		for len(chosen) < k {
			var t int32
			if len(targets) == 0 {
				t = int32(rng.Intn(v))
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if t != int32(v) && !chosen[t] {
				chosen[t] = true
				picked = append(picked, t)
			}
		}
		for _, t := range picked {
			b.AddEdge(int32(v), t)
			targets = append(targets, int32(v), t)
		}
	}
	return b.Build()
}

// ModuleSpec describes planted near-clique modules for synthetic correlation
// networks: Count modules, each with a uniform size in [MinSize, MaxSize],
// whose internal edges appear with probability Density.
type ModuleSpec struct {
	Count    int
	MinSize  int
	MaxSize  int
	Density  float64 // internal edge probability, e.g. 0.85
	NoiseDeg float64 // expected noisy edges per module vertex to the outside
	// Window controls id-space locality: when ≥ 1, each module's vertices
	// are drawn from a random contiguous id window of Window×size vertices,
	// modelling the locality real correlation networks inherit from probe /
	// gene-family nomenclature ordering (duplicate probes and co-regulated
	// paralogs sit adjacently in the natural gene order). When 0, module
	// vertices are scattered uniformly.
	Window int
	// NoiseClumps is the expected number of noise clumps attached to each
	// module: a triangle of mutually "co-expressed" noise vertices, each
	// anchored to a distinct module vertex. Correlation noise is clumpy —
	// noisy genes correlate with each other — and such clumps are dense
	// enough for MCODE to absorb them into the module's cluster in the
	// unfiltered network, diluting its AEES. The anchor edges sit on
	// chordless cycles, so the chordal filter cuts them and the filtered
	// cluster sheds the clump (the mechanism behind the paper's Figure 9
	// case study).
	NoiseClumps float64
}

// PlantedResult is a synthetic network with ground-truth planted modules.
type PlantedResult struct {
	G       *Graph
	Modules [][]int32 // vertex sets of the planted modules
}

// PlantedModules builds a synthetic thresholded correlation network: sparse
// random background edges (coincidental correlations) plus embedded
// near-clique modules (real co-expression clusters) with NoiseDeg noisy
// attachment edges per module vertex.
//
// Modules are placed first and background edges are drawn among non-module
// vertices: at stringent correlation thresholds (the paper uses ρ ≥ 0.95),
// spurious correlations concentrate among weakly/noisily expressed
// background genes, while genes inside strong co-expression modules pick up
// spurious outside partners only rarely — which is what NoiseDeg models.
func PlantedModules(n, bgEdges int, spec ModuleSpec, seed int64) *PlantedResult {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	seen := NewEdgeSet(bgEdges)

	addRand := func(u, v int32) {
		if u != v && !seen.Has(u, v) {
			seen.Add(u, v)
			b.AddEdge(u, v)
		}
	}

	// Modules occupy disjoint vertex sets: scattered uniformly (Window == 0)
	// or drawn from random contiguous id windows (Window ≥ 1).
	perm := rng.Perm(n)
	next := 0
	used := make([]bool, n)
	modules := make([][]int32, 0, spec.Count)
	for mi := 0; mi < spec.Count; mi++ {
		size := spec.MinSize
		if spec.MaxSize > spec.MinSize {
			size += rng.Intn(spec.MaxSize - spec.MinSize + 1)
		}
		var mod []int32
		if spec.Window >= 1 {
			mod = windowedModule(rng, used, n, size, spec.Window*size)
			if mod == nil {
				break
			}
		} else {
			if next+size > n {
				break
			}
			mod = make([]int32, size)
			for i := 0; i < size; i++ {
				mod[i] = int32(perm[next])
				next++
			}
		}
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < spec.Density {
					addRand(mod[i], mod[j])
				}
			}
		}
		for _, v := range mod {
			used[v] = true
		}
		modules = append(modules, mod)
	}

	// Free (non-module) vertices host the background noise.
	free := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if !used[v] {
			free = append(free, int32(v))
		}
	}

	// Noisy attachments from module vertices to random background vertices.
	for _, mod := range modules {
		for _, v := range mod {
			k := 0
			for f := spec.NoiseDeg; f > 0; f -= 1 {
				if f >= 1 || rng.Float64() < f {
					k++
				}
			}
			for i := 0; i < k && len(free) > 0; i++ {
				addRand(v, free[rng.Intn(len(free))])
			}
		}
	}

	// Clumpy noise: triangles of mutually correlated noise vertices anchored
	// to the module (see ModuleSpec.NoiseClumps).
	for _, mod := range modules {
		k := 0
		for f := spec.NoiseClumps; f > 0; f -= 1 {
			if f >= 1 || rng.Float64() < f {
				k++
			}
		}
		for c := 0; c < k && len(free) >= 3 && len(mod) >= 2; c++ {
			x := free[rng.Intn(len(free))]
			y := free[rng.Intn(len(free))]
			z := free[rng.Intn(len(free))]
			if x == y || y == z || x == z {
				continue
			}
			addRand(x, y)
			addRand(y, z)
			addRand(x, z)
			// Two anchors into distinct module vertices.
			a := mod[rng.Intn(len(mod))]
			b := mod[rng.Intn(len(mod))]
			for tries := 0; b == a && tries < 8; tries++ {
				b = mod[rng.Intn(len(mod))]
			}
			addRand(x, a)
			if b != a {
				addRand(y, b)
			}
		}
	}

	// Background: sparse random edges among non-module vertices.
	target := seen.Len() + bgEdges
	for seen.Len() < target && len(free) >= 2 {
		addRand(free[rng.Intn(len(free))], free[rng.Intn(len(free))])
	}
	return &PlantedResult{G: b.Build(), Modules: modules}
}

// windowedModule samples `size` unused vertices from a random contiguous id
// window of the given width, retrying a bounded number of times. Returns nil
// when no window with enough free vertices is found.
func windowedModule(rng *rand.Rand, used []bool, n, size, width int) []int32 {
	if width > n {
		width = n
	}
	for attempt := 0; attempt < 50; attempt++ {
		start := 0
		if n > width {
			start = rng.Intn(n - width + 1)
		}
		var free []int32
		for v := start; v < start+width; v++ {
			if !used[v] {
				free = append(free, int32(v))
			}
		}
		if len(free) < size {
			continue
		}
		rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
		mod := make([]int32, size)
		copy(mod, free[:size])
		return mod
	}
	return nil
}
