package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Ordering names one of the vertex-processing orders studied in the paper
// (Section III.A, "Effect of Vertex Ordering").
type Ordering int

const (
	// Natural is the original order of the vertices (gene nomenclature order).
	Natural Ordering = iota
	// HighDegree processes vertices in descending order of degree.
	HighDegree
	// LowDegree processes vertices in ascending order of degree.
	LowDegree
	// RCM orders vertices by Reverse Cuthill-McKee to reduce adjacency
	// bandwidth, numbering closely connected vertices consecutively.
	RCM
	// RandomOrder is a seeded uniformly random permutation (used for
	// perturbation experiments beyond the paper's four orders).
	RandomOrder
)

// String returns the abbreviation used in the paper's figures.
func (o Ordering) String() string {
	switch o {
	case Natural:
		return "NO"
	case HighDegree:
		return "HD"
	case LowDegree:
		return "LD"
	case RCM:
		return "RCM"
	case RandomOrder:
		return "RAND"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// AllOrderings lists the four orderings evaluated in the paper.
var AllOrderings = []Ordering{Natural, HighDegree, LowDegree, RCM}

// Order returns the processing sequence for g under o: order[i] is the vertex
// processed i-th. seed is used only by RandomOrder.
func Order(g *Graph, o Ordering, seed int64) []int32 {
	n := g.N()
	switch o {
	case Natural:
		return NaturalOrder(n)
	case HighDegree:
		return DegreeOrder(g, false)
	case LowDegree:
		return DegreeOrder(g, true)
	case RCM:
		return ReverseCuthillMcKee(g)
	case RandomOrder:
		ord := NaturalOrder(n)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(n, func(i, j int) { ord[i], ord[j] = ord[j], ord[i] })
		return ord
	}
	panic(fmt.Sprintf("graph: unknown ordering %d", int(o)))
}

// NaturalOrder returns the identity order 0..n-1.
func NaturalOrder(n int) []int32 {
	ord := make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	return ord
}

// DegreeOrder returns vertices sorted by degree; ascending if asc, otherwise
// descending. Ties are broken by vertex id for determinism.
func DegreeOrder(g *Graph, asc bool) []int32 {
	ord := NaturalOrder(g.N())
	sort.SliceStable(ord, func(i, j int) bool {
		di, dj := g.Degree(ord[i]), g.Degree(ord[j])
		if di != dj {
			if asc {
				return di < dj
			}
			return di > dj
		}
		return ord[i] < ord[j]
	})
	return ord
}

// ReverseCuthillMcKee computes the RCM ordering: BFS from a low-degree
// peripheral vertex per component with neighbors visited in increasing degree
// order, then the whole sequence reversed.
func ReverseCuthillMcKee(g *Graph) []int32 {
	n := g.N()
	visited := make([]bool, n)
	order := make([]int32, 0, n)
	// Process start candidates in increasing degree so each component is
	// entered at (approximately) a peripheral, low-degree vertex.
	starts := DegreeOrder(g, true)
	queue := make([]int32, 0, n)
	scratch := make([]int32, 0, 64)
	for _, s := range starts {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			scratch = scratch[:0]
			for _, w := range g.Neighbors(v) {
				if !visited[w] {
					visited[w] = true
					scratch = append(scratch, w)
				}
			}
			sort.Slice(scratch, func(i, j int) bool {
				di, dj := g.Degree(scratch[i]), g.Degree(scratch[j])
				if di != dj {
					return di < dj
				}
				return scratch[i] < scratch[j]
			})
			queue = append(queue, scratch...)
		}
	}
	// Reverse.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// InversePerm returns pos such that pos[order[i]] = i.
func InversePerm(order []int32) []int32 {
	pos := make([]int32, len(order))
	for i, v := range order {
		pos[v] = int32(i)
	}
	return pos
}

// IsPermutation reports whether order is a permutation of 0..n-1.
func IsPermutation(order []int32, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || int(v) >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
