package graph

// Partition assigns each vertex to one of P parts. Part ids are dense in
// [0, P).
type Partition struct {
	Part  []int32   // Part[v] = part id of vertex v
	Parts [][]int32 // Parts[p] = vertices of part p, in processing order
}

// P returns the number of parts.
func (pt *Partition) P() int { return len(pt.Parts) }

// BlockPartition splits the processing order into P contiguous, nearly equal
// blocks, mirroring the paper's distribution of the (ordered) network across
// processors. P must be ≥ 1 and ≤ len(order) unless the order is empty.
func BlockPartition(order []int32, p int) *Partition {
	n := len(order)
	if p < 1 {
		p = 1
	}
	if p > n && n > 0 {
		p = n
	}
	pt := &Partition{
		Part:  make([]int32, n),
		Parts: make([][]int32, p),
	}
	for i := 0; i < p; i++ {
		lo, hi := i*n/p, (i+1)*n/p
		blk := make([]int32, hi-lo)
		copy(blk, order[lo:hi])
		pt.Parts[i] = blk
		for _, v := range blk {
			pt.Part[v] = int32(i)
		}
	}
	return pt
}

// BorderEdges returns the edges of g whose endpoints lie in different parts.
func (pt *Partition) BorderEdges(g *Graph) []Edge {
	var out []Edge
	g.ForEachEdge(func(u, v int32) {
		if pt.Part[u] != pt.Part[v] {
			out = append(out, Edge{u, v})
		}
	})
	return out
}

// InternalEdgeCount returns, per part, the number of edges fully inside the
// part, plus the total number of border edges.
func (pt *Partition) InternalEdgeCount(g *Graph) (internal []int, border int) {
	internal = make([]int, pt.P())
	g.ForEachEdge(func(u, v int32) {
		if pt.Part[u] == pt.Part[v] {
			internal[pt.Part[u]]++
		} else {
			border++
		}
	})
	return internal, border
}
