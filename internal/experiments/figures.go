package experiments

import (
	"context"
	"fmt"
	"sort"

	"parsample/internal/analysis"
	"parsample/internal/datasets"
	"parsample/internal/graph"
	"parsample/internal/mpisim"
	"parsample/internal/pipeline"
	"parsample/internal/sampling"
)

// ---------------------------------------------------------------- Figure 4

// Fig4Row is one cluster's AEES under one network variant (ORIG or one of
// the four chordal orderings), for the YNG and MID networks.
type Fig4Row struct {
	Network   string
	Variant   string // "ORIG", "HD", "LD", "NO", "RCM"
	ClusterID int
	Size      int
	AEES      float64
}

// Fig4 reproduces Figure 4: AEES for each cluster across the five variants
// of YNG and MID.
func Fig4(ctx context.Context) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, ds := range []*datasets.Dataset{datasets.YNG(), datasets.MID()} {
		in := input(ds)
		if err := eng.Warm(ctx, in, seqVariants()...); err != nil {
			return nil, err
		}
		orig, err := originalClusters(ctx, ds)
		if err != nil {
			return nil, err
		}
		for _, sc := range orig {
			rows = append(rows, Fig4Row{ds.Name, "ORIG", sc.Cluster.ID, len(sc.Cluster.Vertices), sc.Score.AEES})
		}
		for _, o := range graph.AllOrderings {
			scs, _, err := filteredClusters(ctx, ds, o, sampling.ChordalSeq, 1)
			if err != nil {
				return nil, err
			}
			for _, sc := range scs {
				rows = append(rows, Fig4Row{ds.Name, o.String(), sc.Cluster.ID, len(sc.Cluster.Vertices), sc.Score.AEES})
			}
		}
	}
	return rows, nil
}

// ------------------------------------------------------------- Figures 5-7

// OverlapPoint is one filtered cluster's overlap with its best-matching
// original cluster, plus its AEES — the unit plotted in Figures 5, 6 and 7.
type OverlapPoint struct {
	Network   string
	Ordering  string
	ClusterID int
	AEES      float64
	NodeOv    float64
	EdgeOv    float64
	New       bool // no overlapping original cluster ("found")
}

// overlapPoints computes the match table for one dataset across the four
// chordal orderings.
func overlapPoints(ctx context.Context, ds *datasets.Dataset) ([]OverlapPoint, error) {
	if err := eng.Warm(ctx, input(ds), seqVariants()...); err != nil {
		return nil, err
	}
	var pts []OverlapPoint
	for _, o := range graph.AllOrderings {
		filt, _, err := filteredClusters(ctx, ds, o, sampling.ChordalSeq, 1)
		if err != nil {
			return nil, err
		}
		ms, err := matches(ctx, ds, o, sampling.ChordalSeq, 1)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			pts = append(pts, OverlapPoint{
				Network:   ds.Name,
				Ordering:  o.String(),
				ClusterID: m.FilteredID,
				AEES:      filt[m.FilteredID].Score.AEES,
				NodeOv:    m.Overlap.NodeFrac,
				EdgeOv:    m.Overlap.EdgeFrac,
				New:       m.OriginalID < 0,
			})
		}
	}
	return pts, nil
}

// Fig5 reproduces Figure 5: node/edge overlap of filtered vs original
// clusters for the GSE5140 networks (UNT and CRE), with newly discovered
// clusters flagged.
func Fig5(ctx context.Context) ([]OverlapPoint, error) {
	var pts []OverlapPoint
	for _, ds := range []*datasets.Dataset{datasets.UNT(), datasets.CRE()} {
		p, err := overlapPoints(ctx, ds)
		if err != nil {
			return nil, err
		}
		pts = append(pts, p...)
	}
	return pts, nil
}

// Fig6 reproduces Figure 6 (node overlap vs AEES) over all four networks.
// Lost/found clusters are excluded, as in the paper.
func Fig6(ctx context.Context) ([]OverlapPoint, error) {
	var pts []OverlapPoint
	for _, ds := range datasets.All() {
		dsPts, err := overlapPoints(ctx, ds)
		if err != nil {
			return nil, err
		}
		for _, p := range dsPts {
			if !p.New {
				pts = append(pts, p)
			}
		}
	}
	return pts, nil
}

// Fig7 reproduces Figure 7 (edge overlap vs AEES); same points as Fig6,
// plotted on the edge-overlap axis.
func Fig7(ctx context.Context) ([]OverlapPoint, error) { return Fig6(ctx) }

// ---------------------------------------------------------------- Figure 8

// Fig8Row is the sensitivity/specificity of one overlap measure.
type Fig8Row struct {
	Kind        string // "node" or "edge"
	Counts      analysis.Counts
	Sensitivity float64
	Specificity float64
}

// Fig8 reproduces Figure 8: TP/FP/FN/TN quadrant counts over every filtered
// cluster (all networks × orderings) with the paper's thresholds, and the
// resulting sensitivity/specificity for node- and edge-overlap matching.
func Fig8(ctx context.Context) ([]Fig8Row, error) {
	var node, edge analysis.Counts
	for _, ds := range datasets.All() {
		if err := eng.Warm(ctx, input(ds), seqVariants()...); err != nil {
			return nil, err
		}
		for _, o := range graph.AllOrderings {
			filt, _, err := filteredClusters(ctx, ds, o, sampling.ChordalSeq, 1)
			if err != nil {
				return nil, err
			}
			ms, err := matches(ctx, ds, o, sampling.ChordalSeq, 1)
			if err != nil {
				return nil, err
			}
			n := analysis.QuadrantCounts(filt, ms, analysis.ByNode,
				analysis.DefaultAEESThreshold, analysis.DefaultOverlapThreshold)
			e := analysis.QuadrantCounts(filt, ms, analysis.ByEdge,
				analysis.DefaultAEESThreshold, analysis.DefaultOverlapThreshold)
			node.TP += n.TP
			node.FP += n.FP
			node.FN += n.FN
			node.TN += n.TN
			edge.TP += e.TP
			edge.FP += e.FP
			edge.FN += e.FN
			edge.TN += e.TN
		}
	}
	return []Fig8Row{
		{"node", node, node.Sensitivity(), node.Specificity()},
		{"edge", edge, edge.Sensitivity(), edge.Specificity()},
	}, nil
}

// ---------------------------------------------------------------- Figure 9

// Fig9Result is the filtering case study: the cluster whose AEES improves
// the most after chordal filtering (the paper's apoptosis cluster went from
// 2.33 in UNT to 4.17 in UNT-HD).
type Fig9Result struct {
	Network      string
	Ordering     string
	OriginalID   int
	FilteredID   int
	OriginalAEES float64
	FilteredAEES float64
	NodeOv       float64
	EdgeOv       float64
	DominantTerm int32
}

// Fig9 scans the UNT orderings for the cluster pair with the largest AEES
// improvement among overlapping pairs, mirroring the paper's case study.
func Fig9(ctx context.Context) (Fig9Result, error) {
	best := Fig9Result{}
	ds := datasets.UNT()
	if err := eng.Warm(ctx, input(ds), seqVariants()...); err != nil {
		return best, err
	}
	orig, err := originalClusters(ctx, ds)
	if err != nil {
		return best, err
	}
	found := false
	for _, o := range graph.AllOrderings {
		filt, _, err := filteredClusters(ctx, ds, o, sampling.ChordalSeq, 1)
		if err != nil {
			return best, err
		}
		ms, err := matches(ctx, ds, o, sampling.ChordalSeq, 1)
		if err != nil {
			return best, err
		}
		for _, m := range ms {
			if m.OriginalID < 0 || m.Overlap.NodeFrac < 0.25 {
				continue
			}
			gain := filt[m.FilteredID].Score.AEES - orig[m.OriginalID].Score.AEES
			if !found || gain > best.FilteredAEES-best.OriginalAEES {
				best = Fig9Result{
					Network:      ds.Name,
					Ordering:     o.String(),
					OriginalID:   m.OriginalID,
					FilteredID:   m.FilteredID,
					OriginalAEES: orig[m.OriginalID].Score.AEES,
					FilteredAEES: filt[m.FilteredID].Score.AEES,
					NodeOv:       m.Overlap.NodeFrac,
					EdgeOv:       m.Overlap.EdgeFrac,
					DominantTerm: filt[m.FilteredID].Score.DominantTerm,
				}
				found = true
			}
		}
	}
	if !found {
		return best, fmt.Errorf("experiments: no overlapping cluster pair found")
	}
	return best, nil
}

// --------------------------------------------------------------- Figure 10

// Fig10Row is one point of the scalability study.
type Fig10Row struct {
	Network        string
	Algorithm      string
	P              int
	ModeledSeconds float64
	MaxRankOps     int64
	Messages       int64
	Bytes          int64
	EdgesKept      int
}

// Fig10Processors is the processor sweep of the paper's Figure 10.
var Fig10Processors = []int{1, 2, 4, 8, 16, 32, 64}

// fig10Model is tuned so the regenerated curves sit at the paper's scale
// (seconds) and exhibit its shape; see DESIGN.md §2 and §4. The runs execute
// on the clocked runtime, so Time charges the critical path: the per-message
// overhead (charged at both ends) is what makes the border-exchange
// variant's receive loop dominate at high P.
var fig10Model = mpisim.CostModel{
	SecondsPerOp:    12e-6, // 2012-era per-edge-operation cost incl. constants
	LatencySeconds:  400e-6,
	OverheadSeconds: 3000e-6,
	SecondsPerByte:  2e-8,
	// The paper removes duplicate border edges "during analysis, which is
	// done sequentially" — outside the timed sampling phase — so the serial
	// merge contributes nothing to Figure 10's execution times.
	SerialSecPerOp: 0,
}

// Fig10CostModel exposes the cost model used for the scalability study.
func Fig10CostModel() mpisim.CostModel { return fig10Model }

// Fig10 reproduces the scalability figure on the paper's two representative
// networks (YNG small, CRE large) for the three parallel algorithms. The
// sweep runs on the raw samplers (each point needs its own cost-model
// telemetry, so there is nothing for the artifact store to share), but
// honors ctx like the engine-backed figures.
func Fig10(ctx context.Context) ([]Fig10Row, error) {
	var rows []Fig10Row
	algs := []sampling.Algorithm{sampling.ChordalComm, sampling.ChordalNoComm, sampling.RandomWalkPar}
	for _, ds := range []*datasets.Dataset{datasets.YNG(), datasets.CRE()} {
		ord := graph.Order(ds.G, graph.Natural, ds.Seed)
		for _, alg := range algs {
			for _, p := range Fig10Processors {
				res, err := sampling.RunContext(ctx, alg, ds.G, sampling.Options{Order: ord, P: p, Seed: ds.Seed, Model: &fig10Model})
				if err != nil {
					return nil, err
				}
				rows = append(rows, Fig10Row{
					Network:        ds.Name,
					Algorithm:      alg.String(),
					P:              p,
					ModeledSeconds: fig10Model.Time(&res.Stats),
					MaxRankOps:     res.Stats.MaxRankOps(),
					Messages:       res.Stats.Messages,
					Bytes:          res.Stats.Bytes,
					EdgesKept:      res.Edges.Len(),
				})
			}
		}
	}
	return rows, nil
}

// --------------------------------------------------------------- Figure 11

// Fig11OverlapRow compares clusters of the CRE natural-order filter at 1P
// and 64P against the original network's clusters.
type Fig11OverlapRow struct {
	P         int
	ClusterID int
	NodeOv    float64
	EdgeOv    float64
	AEES      float64
}

// Fig11TopRow lists clusters with AEES > 3.0 in ORIG / 1P / 64P.
type Fig11TopRow struct {
	Source    string // "ORIG", "1P", "64P"
	ClusterID int
	Size      int
	Edges     int
	AEES      float64 // "Average depth" in the paper's table
	MaxScore  int     // depth of the deepest term in the cluster
}

// Fig11 reproduces Figure 11: parallel quality of the CRE NO filter.
func Fig11(ctx context.Context) ([]Fig11OverlapRow, []Fig11TopRow, error) {
	ds := datasets.CRE()
	in := input(ds)
	warm := []pipeline.Variant{pipeline.Original}
	for _, p := range []int{1, 64} {
		warm = append(warm, pipeline.Variant{Ordering: graph.Natural, Algorithm: sampling.ChordalNoComm, P: p})
	}
	if err := eng.Warm(ctx, in, warm...); err != nil {
		return nil, nil, err
	}
	orig, err := originalClusters(ctx, ds)
	if err != nil {
		return nil, nil, err
	}

	var overlaps []Fig11OverlapRow
	var tops []Fig11TopRow
	for _, sc := range orig {
		if sc.Score.AEES > 3.0 {
			tops = append(tops, Fig11TopRow{
				Source: "ORIG", ClusterID: sc.Cluster.ID, Size: len(sc.Cluster.Vertices),
				Edges: sc.Cluster.Edges, AEES: sc.Score.AEES, MaxScore: sc.Score.MaxEdgeScore,
			})
		}
	}
	for _, p := range []int{1, 64} {
		filt, _, err := filteredClusters(ctx, ds, graph.Natural, sampling.ChordalNoComm, p)
		if err != nil {
			return nil, nil, err
		}
		ms, err := matches(ctx, ds, graph.Natural, sampling.ChordalNoComm, p)
		if err != nil {
			return nil, nil, err
		}
		for _, m := range ms {
			if m.OriginalID < 0 {
				continue
			}
			overlaps = append(overlaps, Fig11OverlapRow{
				P: p, ClusterID: m.FilteredID,
				NodeOv: m.Overlap.NodeFrac, EdgeOv: m.Overlap.EdgeFrac,
				AEES: filt[m.FilteredID].Score.AEES,
			})
		}
		src := fmt.Sprintf("%dP", p)
		for _, sc := range filt {
			if sc.Score.AEES > 3.0 {
				tops = append(tops, Fig11TopRow{
					Source: src, ClusterID: sc.Cluster.ID, Size: len(sc.Cluster.Vertices),
					Edges: sc.Cluster.Edges, AEES: sc.Score.AEES, MaxScore: sc.Score.MaxEdgeScore,
				})
			}
		}
	}
	sort.SliceStable(tops, func(i, j int) bool {
		if tops[i].Source != tops[j].Source {
			return tops[i].Source < tops[j].Source
		}
		return tops[i].AEES > tops[j].AEES
	})
	return overlaps, tops, nil
}

// ------------------------------------------------- Random-walk comparison

// RandomWalkRow reports the number of MCODE clusters in a random-walk
// filtered network (the paper: "random walk filtered networks find no
// clusters at all").
type RandomWalkRow struct {
	Network      string
	EdgesKept    int
	EdgesOrig    int
	ClusterCount int
}

// RandomWalkClusters runs the control filter over every network and counts
// resulting clusters.
func RandomWalkClusters(ctx context.Context) ([]RandomWalkRow, error) {
	var rows []RandomWalkRow
	for _, ds := range datasets.All() {
		filt, fg, err := filteredClusters(ctx, ds, graph.Natural, sampling.RandomWalkSeq, 1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RandomWalkRow{
			Network:      ds.Name,
			EdgesKept:    fg.M(),
			EdgesOrig:    ds.G.M(),
			ClusterCount: len(filt),
		})
	}
	return rows, nil
}
