package experiments

import (
	"context"

	"parsample/internal/centrality"
	"parsample/internal/datasets"
	"parsample/internal/graph"
	"parsample/internal/sampling"
)

// Extensions beyond the paper's figures: quantitative ablations of design
// choices DESIGN.md calls out.

// HubPreservationRow measures how well a filter preserves the network's most
// central vertices — the adaptive-sampling thesis applied to hub genes
// (Section II ties high-centrality nodes to gene essentiality).
type HubPreservationRow struct {
	Network     string
	Algorithm   string
	EdgesKept   int
	Top50Kept   float64 // |top50(orig) ∩ top50(filtered)| / 50, by degree
	DegreeRank  float64 // Spearman rank correlation of degree centralities
	ClosenessRk float64 // Spearman rank correlation of closeness centralities
}

// HubPreservation compares hub survival across filters on the YNG network.
func HubPreservation(ctx context.Context) ([]HubPreservationRow, error) {
	ds := datasets.YNG()
	origDeg := centrality.Degree(ds.G)
	origClo := centrality.Closeness(ds.G)
	ord := graph.Order(ds.G, graph.Natural, ds.Seed)
	var rows []HubPreservationRow
	for _, alg := range []sampling.Algorithm{
		sampling.ChordalSeq, sampling.ChordalNoComm, sampling.RandomWalkSeq, sampling.ForestFireSeq,
	} {
		res, err := sampling.RunContext(ctx, alg, ds.G, sampling.Options{Order: ord, P: 8, Seed: ds.Seed})
		if err != nil {
			return nil, err
		}
		fg := res.Graph(ds.G.N())
		fDeg := centrality.Degree(fg)
		fClo := centrality.Closeness(fg)
		rows = append(rows, HubPreservationRow{
			Network:     ds.Name,
			Algorithm:   alg.String(),
			EdgesKept:   fg.M(),
			Top50Kept:   centrality.TopKOverlap(origDeg, fDeg, 50),
			DegreeRank:  centrality.SpearmanRank(origDeg, fDeg),
			ClosenessRk: centrality.SpearmanRank(origClo, fClo),
		})
	}
	return rows, nil
}

// BorderRuleRow ablates the communication-free sampler's border admission:
// the paper's triangle rule vs the random coin flip the parallel random walk
// uses. Quality = fraction of planted module edges retained; cost = edges
// kept overall (noise burden).
type BorderRuleRow struct {
	Network         string
	Rule            string // "triangle" or "coin"
	P               int
	EdgesKept       int
	ModuleEdgesKept float64
}

// BorderRuleAblation runs the ablation on the CRE network across processor
// counts.
func BorderRuleAblation(ctx context.Context) ([]BorderRuleRow, error) {
	ds := datasets.CRE()
	ord := graph.Order(ds.G, graph.Natural, ds.Seed)
	moduleEdges := graph.NewEdgeSet(0)
	for _, mod := range ds.Modules {
		for i := 0; i < len(mod); i++ {
			for j := i + 1; j < len(mod); j++ {
				if ds.G.HasEdge(mod[i], mod[j]) {
					moduleEdges.Add(mod[i], mod[j])
				}
			}
		}
	}
	frac := func(set graph.EdgeView) float64 {
		if moduleEdges.Len() == 0 {
			return 0
		}
		kept := 0
		set.ForEach(func(u, v int32) {
			if moduleEdges.Has(u, v) {
				kept++
			}
		})
		return float64(kept) / float64(moduleEdges.Len())
	}
	var rows []BorderRuleRow
	for _, p := range []int{8, 64} {
		tri, err := sampling.RunContext(ctx, sampling.ChordalNoComm, ds.G, sampling.Options{Order: ord, P: p, Seed: ds.Seed})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BorderRuleRow{
			Network: ds.Name, Rule: "triangle", P: p,
			EdgesKept: tri.Edges.Len(), ModuleEdgesKept: frac(tri.Edges),
		})
		// Coin rule: per-partition chordal interior + hash-coin border
		// admission (the random walk's border policy grafted onto the
		// chordal interior); emulated by combining the nocomm interior with
		// coin-admitted border edges.
		coin, err := sampling.RunContext(ctx, sampling.RandomWalkPar, ds.G, sampling.Options{Order: ord, P: p, Seed: ds.Seed})
		if err != nil {
			return nil, err
		}
		pt := graph.BlockPartition(ord, p)
		merged := graph.NewAccumulator(ds.G.N(), tri.Edges.Len())
		// Interior chordal edges from the triangle-rule run...
		tri.Edges.ForEach(func(u, v int32) {
			if pt.Part[u] == pt.Part[v] {
				merged.Add(u, v)
			}
		})
		// ...plus coin-admitted border edges from the random-walk run.
		coin.Edges.ForEach(func(u, v int32) {
			if pt.Part[u] != pt.Part[v] {
				merged.Add(u, v)
			}
		})
		rows = append(rows, BorderRuleRow{
			Network: ds.Name, Rule: "coin", P: p,
			EdgesKept: merged.Len(), ModuleEdgesKept: frac(merged),
		})
	}
	return rows, nil
}
