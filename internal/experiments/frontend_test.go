package experiments

import (
	"context"
	"testing"
)

func TestCorrelationFrontEnd(t *testing.T) {
	rows, err := CorrelationFrontEnd(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (pearson, spearman)", len(rows))
	}
	byKind := map[string]CorrelationFrontEndRow{}
	for _, r := range rows {
		byKind[r.Kind] = r
		if r.Edges == 0 {
			t.Fatalf("%s network has no edges", r.Kind)
		}
		if r.Genes != 2048 || r.Samples != 64 {
			t.Fatalf("%s matrix shape %dx%d", r.Kind, r.Genes, r.Samples)
		}
	}
	// At noise 0.1 and 64 arrays, Pearson at the paper's thresholds should
	// recover nearly every planted module pair.
	if p := byKind["pearson"]; p.ModuleEdgeRecall < 0.85 {
		t.Fatalf("pearson module recall = %v", p.ModuleEdgeRecall)
	}
	// Spearman loses some power to rank discretization but must still see
	// the bulk of the modules.
	if s := byKind["spearman"]; s.ModuleEdgeRecall < 0.5 {
		t.Fatalf("spearman module recall = %v", s.ModuleEdgeRecall)
	}
}

func TestCorrelationCliff(t *testing.T) {
	pts, err := CorrelationCliff()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Edges > pts[i-1].Edges {
			t.Fatalf("edge count not monotone in threshold: %+v", pts)
		}
	}
	if pts[0].Edges == 0 {
		t.Fatal("loosest threshold kept no edges")
	}
}
