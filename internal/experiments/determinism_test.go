package experiments

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"parsample/internal/analysis"
	"parsample/internal/datasets"
	"parsample/internal/graph"
	"parsample/internal/sampling"
)

// directFig4 regenerates Figure 4 exactly the way the pre-engine drivers
// did: straight kernel composition (Filter + ScoredClusters), no cache.
func directFig4(t *testing.T) []Fig4Row {
	t.Helper()
	var rows []Fig4Row
	for _, ds := range []*datasets.Dataset{datasets.YNG(), datasets.MID()} {
		for _, sc := range ScoredClusters(ds, ds.G) {
			rows = append(rows, Fig4Row{ds.Name, "ORIG", sc.Cluster.ID, len(sc.Cluster.Vertices), sc.Score.AEES})
		}
		for _, o := range graph.AllOrderings {
			fn, err := Filter(ds, o, sampling.ChordalSeq, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, sc := range ScoredClusters(ds, fn.G) {
				rows = append(rows, Fig4Row{ds.Name, o.String(), sc.Cluster.ID, len(sc.Cluster.Vertices), sc.Score.AEES})
			}
		}
	}
	return rows
}

// The engine-backed Fig4 must be byte-identical to the direct kernel
// composition at fixed seeds — the memoizing store and the concurrent Warm
// fan-out change only when artifacts are computed, never what.
func TestFig4EngineMatchesDirectByteIdentical(t *testing.T) {
	engineRows, err := Fig4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	directRows := directFig4(t)
	if !reflect.DeepEqual(engineRows, directRows) {
		t.Fatalf("engine rows differ from direct rows (%d vs %d)", len(engineRows), len(directRows))
	}
	var engineBuf, directBuf bytes.Buffer
	WriteFig4(&engineBuf, engineRows)
	WriteFig4(&directBuf, directRows)
	if !bytes.Equal(engineBuf.Bytes(), directBuf.Bytes()) {
		t.Fatal("rendered figure tables are not byte-identical")
	}
}

// The engine's match tables agree with the direct MatchClusters composition
// (the artifact behind Figures 5-9 and the lost/found table).
func TestMatchesEngineMatchesDirect(t *testing.T) {
	ds := datasets.YNG()
	ctx := context.Background()
	for _, o := range graph.AllOrderings {
		ms, err := matches(ctx, ds, o, sampling.ChordalSeq, 1)
		if err != nil {
			t.Fatal(err)
		}
		fn, err := Filter(ds, o, sampling.ChordalSeq, 1)
		if err != nil {
			t.Fatal(err)
		}
		direct := analysis.MatchClusters(ds.G, ScoredClusters(ds, ds.G), fn.G, ScoredClusters(ds, fn.G))
		if !reflect.DeepEqual(ms, direct) {
			t.Fatalf("%s: engine match table differs from direct", o)
		}
	}
}

// A repeated figure run against the warm engine performs zero additional
// stage computes — the cache-regression guard for the figure suite.
func TestFigureRerunsHitWarmCache(t *testing.T) {
	ctx := context.Background()
	if _, err := Fig4(ctx); err != nil {
		t.Fatal(err)
	}
	misses := eng.Stats().Misses
	rows, err := Fig4(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	if after := eng.Stats().Misses; after != misses {
		t.Fatalf("warm Fig4 recomputed %d artifacts", after-misses)
	}
}
