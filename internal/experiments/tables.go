package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// WriteFig4 renders the Figure 4 AEES table.
func WriteFig4(w io.Writer, rows []Fig4Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "network\tvariant\tcluster\tsize\tAEES")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\tC%d\t%d\t%.2f\n", r.Network, r.Variant, r.ClusterID, r.Size, r.AEES)
	}
	tw.Flush()
}

// WriteOverlapPoints renders Figure 5/6/7 scatter data.
func WriteOverlapPoints(w io.Writer, rows []OverlapPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "network\tordering\tcluster\tAEES\tnode_ov\tedge_ov\tnew")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\tC%d\t%.2f\t%.2f\t%.2f\t%v\n",
			r.Network, r.Ordering, r.ClusterID, r.AEES, r.NodeOv, r.EdgeOv, r.New)
	}
	tw.Flush()
}

// WriteFig8 renders the sensitivity/specificity table.
func WriteFig8(w io.Writer, rows []Fig8Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "overlap\tTP\tFP\tFN\tTN\tsensitivity\tspecificity")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.1f%%\t%.1f%%\n",
			r.Kind, r.Counts.TP, r.Counts.FP, r.Counts.FN, r.Counts.TN,
			100*r.Sensitivity, 100*r.Specificity)
	}
	tw.Flush()
}

// WriteFig9 renders the case study.
func WriteFig9(w io.Writer, r Fig9Result) {
	fmt.Fprintf(w, "case study (%s %s): original cluster %d AEES %.2f -> filtered cluster %d AEES %.2f\n",
		r.Network, r.Ordering, r.OriginalID, r.OriginalAEES, r.FilteredID, r.FilteredAEES)
	fmt.Fprintf(w, "  node overlap %.1f%%, edge overlap %.1f%%, dominant GO term %d\n",
		100*r.NodeOv, 100*r.EdgeOv, r.DominantTerm)
	fmt.Fprintf(w, "  (paper: UNT cluster 18 AEES 2.33 -> UNT-HD cluster 10 AEES 4.17, 66.7%% node / 28%% edge overlap)\n")
}

// WriteFig10 renders the scalability series.
func WriteFig10(w io.Writer, rows []Fig10Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "network\talgorithm\tP\tmodeled_s\tmax_rank_ops\tmsgs\tbytes\tedges_kept")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.4f\t%d\t%d\t%d\t%d\n",
			r.Network, r.Algorithm, r.P, r.ModeledSeconds, r.MaxRankOps, r.Messages, r.Bytes, r.EdgesKept)
	}
	tw.Flush()
}

// WriteFigDist renders the measured-vs-modeled distributed study.
func WriteFigDist(w io.Writer, rows []DistRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tP\tmeasured_s\tmodeled_s\tmeasured_speedup\tmodeled_speedup\tefficiency\tmodel_err_pct\tmatch\tedges_kept")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.4f\t%.4f\t%.2f\t%.2f\t%.2f\t%+.1f\t%v\t%d\n",
			r.Algorithm, r.P, r.MeasuredSeconds, r.ModeledSeconds,
			r.MeasuredSpeedup, r.ModeledSpeedup, r.Efficiency, r.ModelErrorPct, r.Match, r.EdgesKept)
	}
	tw.Flush()
}

// WriteFig11 renders the parallel-quality comparison.
func WriteFig11(w io.Writer, overlaps []Fig11OverlapRow, tops []Fig11TopRow) {
	fmt.Fprintln(w, "-- cluster overlap with ORIG (CRE, natural order) --")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "P\tcluster\tnode_ov\tedge_ov\tAEES")
	for _, r := range overlaps {
		fmt.Fprintf(tw, "%d\tC%d\t%.2f\t%.2f\t%.2f\n", r.P, r.ClusterID, r.NodeOv, r.EdgeOv, r.AEES)
	}
	tw.Flush()
	fmt.Fprintln(w, "-- clusters with AEES > 3.0 --")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "source\tcluster\tsize\tedges\tavg_depth(AEES)\tmax_score")
	for _, r := range tops {
		fmt.Fprintf(tw, "%s\tC%d\t%d\t%d\t%.2f\t%d\n", r.Source, r.ClusterID, r.Size, r.Edges, r.AEES, r.MaxScore)
	}
	tw.Flush()
}

// WriteRandomWalk renders the control-filter cluster counts.
func WriteRandomWalk(w io.Writer, rows []RandomWalkRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "network\tedges_orig\tedges_kept\tclusters")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", r.Network, r.EdgesOrig, r.EdgesKept, r.ClusterCount)
	}
	tw.Flush()
}

// Header prints a section banner.
func Header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n%s\n", title, strings.Repeat("-", len(title)+6))
}
