package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"parsample/internal/analysis"
	"parsample/internal/cliques"
	"parsample/internal/datasets"
	"parsample/internal/graph"
	"parsample/internal/sampling"
)

// LostFoundRow reports, per network and ordering, the clusters that exist
// only in the original network (lost) and only in the filtered network
// (found) — Section IV.A's "Lost and Found clusters". Found clusters tend to
// be small, less dense subsystems hidden by noise; lost ones are sparse
// cycles that fall below the MCODE threshold when an edge or two is cut.
type LostFoundRow struct {
	Network   string
	Ordering  string
	Original  int // clusters in the original network
	Filtered  int // clusters in the filtered network
	Lost      int
	Found     int
	FoundHigh int // found clusters with AEES ≥ 3 (hidden biology revealed)
}

// LostFound computes the lost/found table over every network and ordering.
func LostFound(ctx context.Context) ([]LostFoundRow, error) {
	var rows []LostFoundRow
	for _, ds := range datasets.All() {
		if err := eng.Warm(ctx, input(ds), seqVariants()...); err != nil {
			return nil, err
		}
		orig, err := originalClusters(ctx, ds)
		if err != nil {
			return nil, err
		}
		for _, o := range graph.AllOrderings {
			filt, _, err := filteredClusters(ctx, ds, o, sampling.ChordalSeq, 1)
			if err != nil {
				return nil, err
			}
			ms, err := matches(ctx, ds, o, sampling.ChordalSeq, 1)
			if err != nil {
				return nil, err
			}
			lf := analysis.FindLostFound(len(orig), ms)
			foundHigh := 0
			for _, fi := range lf.Found {
				if filt[fi].Score.AEES >= analysis.DefaultAEESThreshold {
					foundHigh++
				}
			}
			rows = append(rows, LostFoundRow{
				Network:   ds.Name,
				Ordering:  o.String(),
				Original:  len(orig),
				Filtered:  len(filt),
				Lost:      len(lf.Lost),
				Found:     len(lf.Found),
				FoundHigh: foundHigh,
			})
		}
	}
	return rows, nil
}

// WriteLostFound renders the lost/found table.
func WriteLostFound(w io.Writer, rows []LostFoundRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "network\tordering\torig\tfiltered\tlost\tfound\tfound_AEES>=3")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
			r.Network, r.Ordering, r.Original, r.Filtered, r.Lost, r.Found, r.FoundHigh)
	}
	tw.Flush()
}

// CliqueRetentionRow quantifies hypothesis H0 directly: the fraction of the
// original network's maximal cliques (size ≥ 3) that survive each filter
// intact.
type CliqueRetentionRow struct {
	Network   string
	Algorithm string
	EdgesKept int
	Retention float64
}

// CliqueRetentionStudy compares clique survival under the chordal filter and
// the two agnostic controls on the YNG network.
func CliqueRetentionStudy(ctx context.Context) ([]CliqueRetentionRow, error) {
	ds := datasets.YNG()
	ord := graph.Order(ds.G, graph.Natural, ds.Seed)
	var rows []CliqueRetentionRow
	for _, alg := range []sampling.Algorithm{
		sampling.ChordalSeq, sampling.RandomWalkSeq, sampling.ForestFireSeq,
	} {
		res, err := sampling.RunContext(ctx, alg, ds.G, sampling.Options{Order: ord, Seed: ds.Seed})
		if err != nil {
			return nil, err
		}
		fg := res.Graph(ds.G.N())
		rows = append(rows, CliqueRetentionRow{
			Network:   ds.Name,
			Algorithm: alg.String(),
			EdgesKept: fg.M(),
			Retention: cliques.CliqueRetention(ds.G, fg, 3),
		})
	}
	return rows, nil
}
