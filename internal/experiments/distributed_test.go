package experiments

import (
	"context"
	"testing"

	"parsample/internal/graph"
	"parsample/internal/transport"
)

// TestFigDistLoopback drives the measured study end to end on a reduced
// workload: in-process workers, two algorithms' worth of rows checked for
// shape (the full four-algorithm sweep is cmd/benchreport's job). FigDist
// itself enforces the byte-identity acceptance criterion — reaching the
// rows at all means every distributed edge set matched the simulator's.
func TestFigDistLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a loopback cluster")
	}
	addrs, stop, err := StartLocalWorkers(3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	cl, err := transport.Dial("127.0.0.1:0", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	g := graph.RMAT(10, 8, 0, 0, 0, distGraphSeed)
	ps := []int{1, 2, 4}
	rows, model, err := FigDist(context.Background(), cl, g, ps)
	if err != nil {
		t.Fatal(err)
	}
	if model.SecondsPerOp <= 0 || model.OverheadSeconds <= 0 || model.SecondsPerByte <= 0 {
		t.Fatalf("uncalibrated model: %+v", model)
	}
	if want := len(DistAlgorithms) * len(ps); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if !r.Match {
			t.Fatalf("%s P=%d: Match=false row survived", r.Algorithm, r.P)
		}
		if r.MeasuredSeconds <= 0 || r.ModeledSeconds <= 0 {
			t.Fatalf("%s P=%d: non-positive seconds: %+v", r.Algorithm, r.P, r)
		}
		if r.P == ps[0] && (r.MeasuredSpeedup != 1 || r.ModeledSpeedup != 1 || r.ModelErrorPct != 0) {
			t.Fatalf("baseline row not normalized: %+v", r)
		}
		if r.EdgesKept <= 0 {
			t.Fatalf("%s P=%d: no edges kept", r.Algorithm, r.P)
		}
	}
}

// TestDistWorkloadIsStable pins the measured study's input: the workload
// is part of the benchmark's identity, so a silent change to the generator
// or its parameters should fail loudly here, not shift BENCH numbers.
func TestDistWorkloadIsStable(t *testing.T) {
	g := DistGraph()
	if g.N() != 16384 {
		t.Fatalf("dist workload has %d vertices, want 16384", g.N())
	}
	if g.M() != 114030 {
		t.Fatalf("dist workload has %d edges, want 114030", g.M())
	}
}
