package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"parsample/internal/datasets"
	"parsample/internal/graph"
	"parsample/internal/sampling"
)

func TestFilterPipeline(t *testing.T) {
	ds := datasets.YNG()
	fn, err := Filter(ds, graph.HighDegree, sampling.ChordalSeq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fn.G.M() >= ds.G.M() {
		t.Fatalf("filter did not remove edges: %d vs %d", fn.G.M(), ds.G.M())
	}
	if fn.G.M() == 0 {
		t.Fatal("filter removed everything")
	}
}

func TestFig4ShapesH0b(t *testing.T) {
	rows, err := Fig4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no Fig4 rows")
	}
	// Both networks, ORIG plus every ordering, must contribute clusters:
	// the paper's H0b — biologically relevant clusters are identified
	// consistently across orderings.
	seen := map[string]int{}
	for _, r := range rows {
		seen[r.Network+"/"+r.Variant]++
		if r.AEES < -20 || r.AEES > 20 {
			t.Fatalf("absurd AEES %v", r.AEES)
		}
	}
	for _, net := range []string{"YNG", "MID"} {
		for _, v := range []string{"ORIG", "NO", "HD", "LD", "RCM"} {
			if seen[net+"/"+v] < 2 {
				t.Fatalf("%s/%s: only %d clusters (H0b violated)", net, v, seen[net+"/"+v])
			}
		}
	}
	var buf bytes.Buffer
	WriteFig4(&buf, rows)
	if !strings.Contains(buf.String(), "AEES") {
		t.Fatal("table rendering broken")
	}
}

func TestFig5OverlapShapes(t *testing.T) {
	pts, err := Fig5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no Fig5 points")
	}
	nets := map[string]bool{}
	fullOverlap := 0
	newClusters := 0
	for _, p := range pts {
		nets[p.Network] = true
		if p.NodeOv < 0 || p.NodeOv > 1 || p.EdgeOv < 0 || p.EdgeOv > 1 {
			t.Fatalf("overlap out of range: %+v", p)
		}
		if p.NodeOv >= 0.999 {
			fullOverlap++
		}
		if p.New {
			newClusters++
		}
	}
	if !nets["UNT"] || !nets["CRE"] {
		t.Fatalf("networks covered: %v", nets)
	}
	// Paper: "we still found some filters to leave complete clusters
	// (100% edge and node overlap) from the original".
	if fullOverlap == 0 {
		t.Fatal("no fully retained clusters")
	}
	var buf bytes.Buffer
	WriteOverlapPoints(&buf, pts)
	if buf.Len() == 0 {
		t.Fatal("render empty")
	}
}

func TestFig6Fig7AllNetworksNoNew(t *testing.T) {
	pts, err := Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	nets := map[string]bool{}
	for _, p := range pts {
		if p.New {
			t.Fatal("Fig6 must exclude lost/found clusters")
		}
		nets[p.Network] = true
	}
	for _, n := range []string{"YNG", "MID", "UNT", "CRE"} {
		if !nets[n] {
			t.Fatalf("network %s missing from Fig6", n)
		}
	}
	pts7, err := Fig7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts7) != len(pts) {
		t.Fatal("Fig7 must be the same point set as Fig6")
	}
}

func TestFig8SensitivitySpecificity(t *testing.T) {
	rows, err := Fig8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Kind != "node" || rows[1].Kind != "edge" {
		t.Fatalf("rows = %+v", rows)
	}
	node, edge := rows[0], rows[1]
	total := node.Counts.TP + node.Counts.FP + node.Counts.FN + node.Counts.TN
	if total == 0 {
		t.Fatal("no classified clusters")
	}
	for _, r := range rows {
		if r.Sensitivity < 0 || r.Sensitivity > 1 || r.Specificity < 0 || r.Specificity > 1 {
			t.Fatalf("rates out of range: %+v", r)
		}
	}
	// Paper (Fig 8): node overlap gives high sensitivity / lower specificity;
	// edge overlap the opposite (edge overlap is depressed by edge removal,
	// so fewer matches clear the 50% bar).
	if node.Sensitivity < edge.Sensitivity {
		t.Fatalf("node sensitivity %.2f < edge sensitivity %.2f (paper shape violated)",
			node.Sensitivity, edge.Sensitivity)
	}
	if edge.Specificity < node.Specificity {
		t.Fatalf("edge specificity %.2f < node specificity %.2f (paper shape violated)",
			edge.Specificity, node.Specificity)
	}
	var buf bytes.Buffer
	WriteFig8(&buf, rows)
	if !strings.Contains(buf.String(), "sensitivity") {
		t.Fatal("render broken")
	}
}

func TestFig9CaseStudyImprovement(t *testing.T) {
	r, err := Fig9(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's case study: filtering improves the cluster's AEES
	// (2.33 -> 4.17). Our best-improved pair must improve.
	if r.FilteredAEES <= r.OriginalAEES {
		t.Fatalf("no AEES improvement: %.2f -> %.2f", r.OriginalAEES, r.FilteredAEES)
	}
	if r.NodeOv <= 0 {
		t.Fatal("case study pair must overlap")
	}
	var buf bytes.Buffer
	WriteFig9(&buf, r)
	if !strings.Contains(buf.String(), "case study") {
		t.Fatal("render broken")
	}
}

func TestFig10ScalabilityShape(t *testing.T) {
	rows, err := Fig10(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	get := func(net, alg string, p int) Fig10Row {
		for _, r := range rows {
			if r.Network == net && r.Algorithm == alg && r.P == p {
				return r
			}
		}
		t.Fatalf("missing row %s/%s/%d", net, alg, p)
		return Fig10Row{}
	}
	for _, net := range []string{"YNG", "CRE"} {
		for _, p := range Fig10Processors {
			comm := get(net, "chordal-comm", p)
			nocomm := get(net, "chordal-nocomm", p)
			rw := get(net, "randomwalk-par", p)
			// Random walk is the fastest filter (within accounting noise at
			// the high-P tail where both are sub-millisecond); chordal
			// without communication beats chordal with communication (P>1).
			if rw.ModeledSeconds > 1.3*nocomm.ModeledSeconds {
				t.Fatalf("%s P=%d: random walk (%.4f) slower than nocomm (%.4f)",
					net, p, rw.ModeledSeconds, nocomm.ModeledSeconds)
			}
			if p > 1 && rw.ModeledSeconds > comm.ModeledSeconds {
				t.Fatalf("%s P=%d: random walk (%.4f) slower than comm (%.4f)",
					net, p, rw.ModeledSeconds, comm.ModeledSeconds)
			}
			if p > 1 && nocomm.ModeledSeconds > comm.ModeledSeconds {
				t.Fatalf("%s P=%d: nocomm (%.4f) slower than comm (%.4f)",
					net, p, nocomm.ModeledSeconds, comm.ModeledSeconds)
			}
			// Communication-free variants must send zero messages.
			if nocomm.Messages != 0 || rw.Messages != 0 {
				t.Fatalf("%s P=%d: comm-free algorithms sent messages", net, p)
			}
			if p > 1 && comm.Messages == 0 {
				t.Fatalf("%s P=%d: comm variant sent no messages", net, p)
			}
		}
		// Comm-free chordal scales: 64P at least 5x faster than 1P.
		if get(net, "chordal-nocomm", 64).ModeledSeconds*5 > get(net, "chordal-nocomm", 1).ModeledSeconds {
			t.Fatalf("%s: nocomm does not scale", net)
		}
	}
	// The paper's headline: for the small network the comm version's curve
	// rises sharply at 32 processors.
	y32 := get("YNG", "chordal-comm", 32).ModeledSeconds
	y8 := get("YNG", "chordal-comm", 8).ModeledSeconds
	y64 := get("YNG", "chordal-comm", 64).ModeledSeconds
	if y32 <= y8 || y64 <= y32 {
		t.Fatalf("YNG comm curve does not rise sharply: P8=%.4f P32=%.4f P64=%.4f", y8, y32, y64)
	}
	// Large network: comm version costs roughly 2x the comm-free version at
	// small P (paper: "about two times as much in the case of two
	// processors").
	c2 := get("CRE", "chordal-comm", 2).ModeledSeconds
	n2 := get("CRE", "chordal-nocomm", 2).ModeledSeconds
	if c2 < 1.3*n2 || c2 > 5*n2 {
		t.Fatalf("CRE P=2: comm/nocomm ratio %.2f out of the paper's regime", c2/n2)
	}
	var buf bytes.Buffer
	WriteFig10(&buf, rows)
	if !strings.Contains(buf.String(), "modeled_s") {
		t.Fatal("render broken")
	}
}

func TestFig11ParallelQualityH0c(t *testing.T) {
	overlaps, tops, err := Fig11(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byP := map[int]int{}
	for _, r := range overlaps {
		byP[r.P]++
	}
	if byP[1] == 0 || byP[64] == 0 {
		t.Fatalf("overlap rows per P: %v", byP)
	}
	bySrc := map[string]int{}
	for _, r := range tops {
		bySrc[r.Source]++
		if r.AEES <= 3.0 {
			t.Fatalf("top table contains AEES ≤ 3: %+v", r)
		}
	}
	// H0c: the 64P filter still identifies high-AEES clusters, comparably
	// to 1P and the original.
	if bySrc["ORIG"] == 0 || bySrc["1P"] == 0 || bySrc["64P"] == 0 {
		t.Fatalf("top clusters per source: %v", bySrc)
	}
	if bySrc["64P"]*2 < bySrc["1P"] {
		t.Fatalf("64P found far fewer top clusters (%d) than 1P (%d)", bySrc["64P"], bySrc["1P"])
	}
	var buf bytes.Buffer
	WriteFig11(&buf, overlaps, tops)
	if !strings.Contains(buf.String(), "AEES > 3.0") {
		t.Fatal("render broken")
	}
}

func TestRandomWalkFindsAlmostNoClustersH0a(t *testing.T) {
	rows, err := RandomWalkClusters(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Paper: the random-walk filter finds no clusters at all. Synthetic
		// data leaves an occasional surviving K4 core; "essentially none"
		// is the reproduced shape (documented in EXPERIMENTS.md).
		if r.ClusterCount > 5 {
			t.Fatalf("%s: random walk found %d clusters", r.Network, r.ClusterCount)
		}
		if r.EdgesKept >= r.EdgesOrig/2 {
			t.Fatalf("%s: random walk kept %d of %d edges", r.Network, r.EdgesKept, r.EdgesOrig)
		}
	}
	// The chordal filter must find far more clusters than the control on
	// the same networks (H0a).
	for _, ds := range datasets.All() {
		chordalN, _, err := filteredClusters(context.Background(), ds, graph.Natural, sampling.ChordalSeq, 1)
		if err != nil {
			t.Fatal(err)
		}
		var rwN int
		for _, r := range rows {
			if r.Network == ds.Name {
				rwN = r.ClusterCount
			}
		}
		if len(chordalN) < 3*rwN || len(chordalN) < 3 {
			t.Fatalf("%s: chordal=%d vs random walk=%d clusters", ds.Name, len(chordalN), rwN)
		}
	}
	var buf bytes.Buffer
	WriteRandomWalk(&buf, rows)
	if !strings.Contains(buf.String(), "clusters") {
		t.Fatal("render broken")
	}
}

func TestHeaderRendering(t *testing.T) {
	var buf bytes.Buffer
	Header(&buf, "Fig X")
	if !strings.Contains(buf.String(), "== Fig X ==") {
		t.Fatal("header broken")
	}
}
