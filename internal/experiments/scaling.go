package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"

	"parsample/internal/datasets"
	"parsample/internal/graph"
	"parsample/internal/mpisim"
	"parsample/internal/sampling"
)

// The scalability study generalizes Figure 10 into a configurable sweep:
// P ∈ {1..64} × vertex orderings × parallel algorithms over the synthetic
// GSE networks plus Gnm and R-MAT stress inputs, reporting modeled cluster
// execution time, speedup and parallel efficiency from the clocked runtime.

// ScalingNetwork is one input of the scalability sweep.
type ScalingNetwork struct {
	Name string
	G    *graph.Graph
	Seed int64
}

// ScalingNetworks returns the default sweep inputs: the paper's small and
// large evaluation networks plus two structural stress generators — a
// uniform Gnm graph (no community structure, borders everywhere) and an
// R-MAT graph (heavy-tailed degrees, the standard parallel-graph stressor).
func ScalingNetworks() []ScalingNetwork {
	return []ScalingNetwork{
		{Name: "YNG", G: datasets.YNG().G, Seed: datasets.YNG().Seed},
		{Name: "CRE", G: datasets.CRE().G, Seed: datasets.CRE().Seed},
		{Name: "GNM", G: graph.Gnm(16384, 65536, 1101), Seed: 1101},
		{Name: "RMAT", G: graph.RMAT(14, 8, 0, 0, 0, 1102), Seed: 1102},
	}
}

// ScalingConfig parameterizes the sweep.
type ScalingConfig struct {
	Networks   []ScalingNetwork
	Orderings  []graph.Ordering
	Algorithms []sampling.Algorithm
	Processors []int // must start with the baseline processor count
	Model      mpisim.CostModel
}

// DefaultScalingConfig is the published study: the paper's processor sweep,
// the natural and high-degree orderings, and the three parallel samplers of
// Figure 10 plus the forest-fire extension, all under the Figure 10 cost
// model.
func DefaultScalingConfig() ScalingConfig {
	return ScalingConfig{
		Networks:  ScalingNetworks(),
		Orderings: []graph.Ordering{graph.Natural, graph.HighDegree},
		Algorithms: []sampling.Algorithm{
			sampling.ChordalComm, sampling.ChordalNoComm,
			sampling.RandomWalkPar, sampling.ForestFirePar,
		},
		Processors: Fig10Processors,
		Model:      fig10Model,
	}
}

// ScalingRow is one point of the sweep.
type ScalingRow struct {
	Network        string
	Ordering       string
	Algorithm      string
	P              int
	ModeledSeconds float64
	Speedup        float64 // time at the baseline P over time at this P
	Efficiency     float64 // speedup / (P / baseline P)
	Messages       int64   // point-to-point (sampling phase)
	CollMessages   int64   // collectives (result gather)
	EdgesKept      int
}

// Scaling runs the sweep. Rows come out grouped per (network, ordering,
// algorithm) series in the order of cfg.Processors; speedup and efficiency
// are relative to the series' first processor count.
func Scaling(ctx context.Context, cfg ScalingConfig) ([]ScalingRow, error) {
	if len(cfg.Processors) == 0 {
		return nil, fmt.Errorf("experiments: scaling sweep has no processor counts")
	}
	var rows []ScalingRow
	for _, net := range cfg.Networks {
		for _, o := range cfg.Orderings {
			ord := graph.Order(net.G, o, net.Seed)
			for _, alg := range cfg.Algorithms {
				base := 0.0
				for i, p := range cfg.Processors {
					res, err := sampling.RunContext(ctx, alg, net.G, sampling.Options{
						Order: ord, P: p, Seed: net.Seed, Model: &cfg.Model,
					})
					if err != nil {
						return nil, err
					}
					t := cfg.Model.Time(&res.Stats)
					if i == 0 {
						base = t
					}
					speedup := 0.0
					if t > 0 {
						speedup = base / t
					}
					eff := speedup * float64(cfg.Processors[0]) / float64(p)
					rows = append(rows, ScalingRow{
						Network:        net.Name,
						Ordering:       o.String(),
						Algorithm:      alg.String(),
						P:              p,
						ModeledSeconds: t,
						Speedup:        speedup,
						Efficiency:     eff,
						Messages:       res.Stats.Messages,
						CollMessages:   res.Stats.CollMessages,
						EdgesKept:      res.Edges.Len(),
					})
				}
			}
		}
	}
	return rows, nil
}

// WriteScaling renders the sweep as a point table followed by per-series
// speedup curves (one bar per processor count, log2-scaled so ideal scaling
// climbs one cell per doubling).
func WriteScaling(w io.Writer, rows []ScalingRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "network\tordering\talgorithm\tP\tmodeled_s\tspeedup\tefficiency\tmsgs\tcoll_msgs\tedges_kept")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.4f\t%.2f\t%.2f\t%d\t%d\t%d\n",
			r.Network, r.Ordering, r.Algorithm, r.P, r.ModeledSeconds,
			r.Speedup, r.Efficiency, r.Messages, r.CollMessages, r.EdgesKept)
	}
	tw.Flush()

	fmt.Fprintln(w, "\n-- speedup curves (column = processor count, height = log2 speedup) --")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, series := range groupSeries(rows) {
		var curve []string
		for _, r := range series {
			curve = append(curve, speedupBar(r.Speedup))
		}
		first := series[0]
		fmt.Fprintf(tw, "%s/%s\t%s\t%s\n",
			first.Network, first.Ordering, first.Algorithm, strings.Join(curve, " "))
	}
	tw.Flush()
	fmt.Fprintln(w, "(each ▏…█ column is one of the processor counts above, in sweep order;")
	fmt.Fprintln(w, " '.' marks a slowdown below the baseline)")
}

// groupSeries splits rows into consecutive (network, ordering, algorithm)
// series, preserving order.
func groupSeries(rows []ScalingRow) [][]ScalingRow {
	var out [][]ScalingRow
	for i := 0; i < len(rows); {
		j := i + 1
		for j < len(rows) && rows[j].Network == rows[i].Network &&
			rows[j].Ordering == rows[i].Ordering && rows[j].Algorithm == rows[i].Algorithm {
			j++
		}
		out = append(out, rows[i:j])
		i = j
	}
	return out
}

// speedupBar maps a speedup to a one-rune bar: '.' below 1×, then one
// eighth-block step per half-doubling, saturating at 16×.
func speedupBar(s float64) string {
	if s < 1 {
		return "."
	}
	blocks := []rune("▏▎▍▌▋▊▉█")
	idx := int(math.Log2(s) * 2)
	if idx >= len(blocks) {
		idx = len(blocks) - 1
	}
	return string(blocks[idx])
}
