package experiments

import (
	"context"
	"time"

	"parsample/internal/expr"
	"parsample/internal/graph"
)

// The correlation front end: where the paper's pipeline starts. These
// drivers exercise internal/expr's standardized-row engine the way the
// figures exercise the samplers — on a synthetic microarray with planted
// modules — reporting how faithfully each statistic recovers the planted
// co-expression structure and what the build costs on this machine.

// CorrelationFrontEndRow is one correlation-network build.
type CorrelationFrontEndRow struct {
	Kind             string // "pearson" or "spearman"
	Genes, Samples   int
	Edges            int
	Density          float64
	ModuleEdgeRecall float64 // fraction of planted within-module pairs kept
	BuildSeconds     float64 // wall time of BuildNetwork on this machine
}

// frontEndSpec is the synthetic microarray used by the front-end studies:
// the acceptance-benchmark shape (2048 genes × 64 arrays) with sixteen
// planted modules.
var frontEndSpec = expr.SyntheticSpec{
	Genes: 2048, Samples: 64, Modules: 16, ModuleSize: 12, Noise: 0.1, Seed: 1,
}

// CorrelationFrontEnd builds the correlation network with both statistics
// at the paper's thresholds and reports size, planted-module recall and
// wall-clock build time.
func CorrelationFrontEnd(ctx context.Context) ([]CorrelationFrontEndRow, error) {
	syn, err := expr.Synthesize(frontEndSpec)
	if err != nil {
		return nil, err
	}
	var rows []CorrelationFrontEndRow
	for _, kind := range []expr.CorrelationKind{expr.PearsonCorr, expr.SpearmanCorr} {
		opts := expr.DefaultNetworkOptions()
		opts.Kind = kind
		//parsamplevet:ignore nondeterm the wall-clock build time IS this figure's payload column; it is labeled as a measurement and never feeds a cached artifact or fingerprint
		start := time.Now()
		g, err := expr.BuildNetworkContext(ctx, syn.M, opts)
		if err != nil {
			return nil, err
		}
		//parsamplevet:ignore nondeterm elapsed is the figure's measured build-time column, not artifact data
		elapsed := time.Since(start).Seconds()
		kept, possible := 0, 0
		for _, mod := range syn.Modules {
			for i := 0; i < len(mod); i++ {
				for j := i + 1; j < len(mod); j++ {
					possible++
					if g.HasEdge(mod[i], mod[j]) {
						kept++
					}
				}
			}
		}
		recall := 0.0
		if possible > 0 {
			recall = float64(kept) / float64(possible)
		}
		rows = append(rows, CorrelationFrontEndRow{
			Kind:             kind.String(),
			Genes:            syn.M.Genes,
			Samples:          syn.M.Samples,
			Edges:            g.M(),
			Density:          graph.Density(g),
			ModuleEdgeRecall: recall,
			BuildSeconds:     elapsed,
		})
	}
	return rows, nil
}

// CorrelationCliff sweeps the |ρ| threshold over one all-pairs pass,
// reproducing the edge-count cliff that motivates the paper's 0.95 cut.
func CorrelationCliff() ([]expr.SweepPoint, error) {
	syn, err := expr.Synthesize(frontEndSpec)
	if err != nil {
		return nil, err
	}
	opts := expr.DefaultNetworkOptions()
	// From just above the p-value floor (p ≤ 0.0005 at 64 samples already
	// implies |ρ| ≳ 0.43) up past the paper's cut: the low end floods with
	// coincidental correlations, the high end erases module edges.
	thresholds := []float64{0.45, 0.60, 0.80, 0.90, 0.95, 0.99}
	return expr.ThresholdSweep(syn.M, thresholds, opts), nil
}
