package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestLostFoundTable(t *testing.T) {
	rows, err := LostFound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // 4 networks × 4 orderings
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	totalFound, totalFoundHigh := 0, 0
	for _, r := range rows {
		if r.Lost < 0 || r.Found < 0 || r.FoundHigh > r.Found {
			t.Fatalf("inconsistent row: %+v", r)
		}
		if r.Lost > r.Original {
			t.Fatalf("lost %d > original %d", r.Lost, r.Original)
		}
		totalFound += r.Found
		totalFoundHigh += r.FoundHigh
	}
	// The paper's found clusters exist and some carry real biology
	// (high AEES): hidden subsystems revealed by noise removal.
	if totalFound == 0 {
		t.Fatal("no found clusters anywhere")
	}
	if totalFoundHigh == 0 {
		t.Fatal("no biologically relevant found clusters")
	}
	var buf bytes.Buffer
	WriteLostFound(&buf, rows)
	if !strings.Contains(buf.String(), "found_AEES>=3") {
		t.Fatal("render broken")
	}
}

func TestCliqueRetentionStudyChordalWins(t *testing.T) {
	rows, err := CliqueRetentionStudy(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byAlg := map[string]float64{}
	for _, r := range rows {
		if r.Retention < 0 || r.Retention > 1 {
			t.Fatalf("retention out of range: %+v", r)
		}
		byAlg[r.Algorithm] = r.Retention
	}
	// H0: the chordal filter preserves most cliques; agnostic filters do
	// not. (Measured ≈ 0.56 for all cliques ≥ 3 — triangles that straddle
	// noise edges are sometimes cut — vs ≈ 0.1 for the controls.)
	if byAlg["chordal-seq"] < 0.4 {
		t.Fatalf("chordal clique retention %.2f < 0.4", byAlg["chordal-seq"])
	}
	if byAlg["chordal-seq"] <= byAlg["randomwalk-seq"] {
		t.Fatalf("chordal %.2f not above random walk %.2f",
			byAlg["chordal-seq"], byAlg["randomwalk-seq"])
	}
	if byAlg["chordal-seq"] <= byAlg["forestfire-seq"] {
		t.Fatalf("chordal %.2f not above forest fire %.2f",
			byAlg["chordal-seq"], byAlg["forestfire-seq"])
	}
}
