package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"parsample/internal/graph"
	"parsample/internal/sampling"
)

// smallScalingConfig keeps the sweep test-sized: one synthetic modular
// network, two orderings, the two chordal variants, a short processor list.
func smallScalingConfig() ScalingConfig {
	g := graph.PlantedModules(800, 1400, graph.ModuleSpec{
		Count: 16, MinSize: 8, MaxSize: 12, Density: 0.9, NoiseDeg: 1, Window: 3,
	}, 23).G
	return ScalingConfig{
		Networks:   []ScalingNetwork{{Name: "TST", G: g, Seed: 23}},
		Orderings:  []graph.Ordering{graph.Natural, graph.HighDegree},
		Algorithms: []sampling.Algorithm{sampling.ChordalComm, sampling.ChordalNoComm},
		Processors: []int{1, 2, 4, 8},
		Model:      fig10Model,
	}
}

func TestScalingSweep(t *testing.T) {
	cfg := smallScalingConfig()
	rows, err := Scaling(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(cfg.Networks) * len(cfg.Orderings) * len(cfg.Algorithms) * len(cfg.Processors)
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	get := func(ord, alg string, p int) ScalingRow {
		for _, r := range rows {
			if r.Ordering == ord && r.Algorithm == alg && r.P == p {
				return r
			}
		}
		t.Fatalf("missing row %s/%s P=%d", ord, alg, p)
		return ScalingRow{}
	}
	for _, ord := range []string{"NO", "HD"} {
		for _, p := range cfg.Processors {
			nc := get(ord, "chordal-nocomm", p)
			cm := get(ord, "chordal-comm", p)
			if p == 1 {
				if nc.Speedup != 1 || nc.Efficiency != 1 {
					t.Fatalf("%s P=1 baseline speedup %.2f eff %.2f", ord, nc.Speedup, nc.Efficiency)
				}
				continue
			}
			// The paper's Figure 10 claim, now from the clocked runtime: the
			// communication-free variant dominates the border-exchange one.
			if nc.ModeledSeconds >= cm.ModeledSeconds {
				t.Fatalf("%s P=%d: nocomm %.4fs not below comm %.4fs",
					ord, p, nc.ModeledSeconds, cm.ModeledSeconds)
			}
			if cm.Messages == 0 || nc.Messages != 0 {
				t.Fatalf("%s P=%d: p2p accounting wrong (comm %d, nocomm %d)",
					ord, p, cm.Messages, nc.Messages)
			}
			// Both variants gather partial results through the collective.
			if nc.CollMessages != int64(p-1) || cm.CollMessages != int64(p-1) {
				t.Fatalf("%s P=%d: gather accounting wrong (%d/%d)",
					ord, p, nc.CollMessages, cm.CollMessages)
			}
		}
		// Speedup is relative to the first processor count and grows for
		// the communication-free variant on a modular network.
		if s := get(ord, "chordal-nocomm", 8).Speedup; s <= 1.5 {
			t.Fatalf("%s: nocomm speedup at P=8 only %.2f", ord, s)
		}
	}
	// Determinism: the whole sweep reproduces bit-for-bit.
	again, err := Scaling(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Fatalf("row %d not reproducible: %+v vs %+v", i, rows[i], again[i])
		}
	}
}

func TestWriteScaling(t *testing.T) {
	rows, err := Scaling(context.Background(), smallScalingConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteScaling(&buf, rows)
	out := buf.String()
	for _, needle := range []string{"speedup", "efficiency", "speedup curves", "chordal-nocomm"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("render missing %q:\n%s", needle, out)
		}
	}
}

func TestSpeedupBar(t *testing.T) {
	if speedupBar(0.5) != "." {
		t.Fatal("sub-baseline should render as '.'")
	}
	if speedupBar(1) != "▏" || speedupBar(16) != "█" || speedupBar(1000) != "█" {
		t.Fatal("bar scale endpoints wrong")
	}
}
