package experiments

import (
	"context"
	"testing"
)

func TestHubPreservationChordalWins(t *testing.T) {
	rows, err := HubPreservation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byAlg := map[string]HubPreservationRow{}
	for _, r := range rows {
		byAlg[r.Algorithm] = r
		if r.Top50Kept < 0 || r.Top50Kept > 1 {
			t.Fatalf("top50 out of range: %+v", r)
		}
		if r.DegreeRank < -1 || r.DegreeRank > 1 {
			t.Fatalf("rank correlation out of range: %+v", r)
		}
	}
	ch := byAlg["chordal-seq"]
	rw := byAlg["randomwalk-seq"]
	// The adaptive filter must preserve hub identity better than the
	// agnostic control that keeps far fewer (and arbitrary) edges.
	if ch.Top50Kept <= rw.Top50Kept {
		t.Fatalf("chordal top-50 %.2f not above random walk %.2f", ch.Top50Kept, rw.Top50Kept)
	}
	if ch.DegreeRank <= rw.DegreeRank {
		t.Fatalf("chordal degree-rank %.2f not above random walk %.2f", ch.DegreeRank, rw.DegreeRank)
	}
}

func TestBorderRuleAblation(t *testing.T) {
	rows, err := BorderRuleAblation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(rule string, p int) BorderRuleRow {
		for _, r := range rows {
			if r.Rule == rule && r.P == p {
				return r
			}
		}
		t.Fatalf("missing %s/%d", rule, p)
		return BorderRuleRow{}
	}
	for _, p := range []int{8, 64} {
		tri := get("triangle", p)
		coin := get("coin", p)
		if tri.ModuleEdgesKept <= 0 {
			t.Fatalf("triangle rule kept no module edges at P=%d", p)
		}
		// The coin rule admits ~50% of ALL border edges — far more noise
		// for comparable module coverage. The triangle rule must be more
		// selective per retained module edge.
		triSelectivity := tri.ModuleEdgesKept / float64(max(tri.EdgesKept, 1))
		coinSelectivity := coin.ModuleEdgesKept / float64(max(coin.EdgesKept, 1))
		if triSelectivity <= coinSelectivity {
			t.Fatalf("P=%d: triangle rule selectivity %.2e not above coin %.2e",
				p, triSelectivity, coinSelectivity)
		}
	}
}
