package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"parsample/internal/graph"
	"parsample/internal/mpisim"
	"parsample/internal/sampling"
	"parsample/internal/transport"
)

// --------------------------------------------- Figure 10, measured edition
//
// Fig10 reports what the cost model *predicts* a cluster would do. FigDist
// closes the loop: it runs the same four parallel samplers for real —
// every rank its own process, talking TCP — and puts the measured
// wall-clock speedup next to the model's prediction, point by point. Two
// properties are validated at once: the distributed runtime computes the
// byte-identical edge set the simulator computes (determinism survives the
// network), and the analytic model's shape tracks a real, if loopback,
// deployment.

// DistRow is one measured point of the distributed validation study: one
// algorithm at one rank count, run both ways.
type DistRow struct {
	Algorithm       string
	P               int
	MeasuredSeconds float64 // fastest wall-clock of DistReps real runs
	ModeledSeconds  float64 // cost-model prediction on the simulator's run
	MeasuredSpeedup float64 // measured T(1) / T(P)
	ModeledSpeedup  float64 // modeled T(1) / T(P)
	Efficiency      float64 // measured speedup / P
	ModelErrorPct   float64 // signed percent error of modeled vs measured speedup
	Match           bool    // distributed edge set == simulated edge set
	EdgesKept       int
}

// DistProcessors is the rank sweep of the measured study: the loopback
// cluster caps out where one development machine still gives every rank a
// core of its own.
var DistProcessors = []int{1, 2, 4, 8}

// DistReps is how many times each distributed point runs; MeasuredSeconds
// is the fastest, which is the standard way to strip scheduler noise from
// a wall-clock measurement.
const DistReps = 3

// DistAlgorithms is the sampler set of the measured study: all four
// parallel kernels.
var DistAlgorithms = []sampling.Algorithm{
	sampling.ChordalComm,
	sampling.ChordalNoComm,
	sampling.RandomWalkPar,
	sampling.ForestFirePar,
}

// distScale/distEdgeFactor/distSeed pick the measured workload: an RMAT
// graph big enough that kernel work dominates the per-job setup (16384
// vertices, ~114k edges) yet small enough that the full sweep stays under
// a minute. RMAT rather than the ontology networks because its size is a
// free parameter and its skew stresses the border exchange.
const (
	distScale      = 14
	distEdgeFactor = 8
	distGraphSeed  = 1102
	distSeed       = 20120521
)

// DistGraph builds the measured study's input graph.
func DistGraph() *graph.Graph {
	return graph.RMAT(distScale, distEdgeFactor, 0, 0, 0, distGraphSeed)
}

// StartLocalWorkers boots n in-process transport workers on loopback and
// returns their addresses plus a stop function that drains them. It exists
// so the experiments CLI and benchreport can run the distributed study
// self-contained; real deployments point -workers at parsample-worker
// processes instead.
func StartLocalWorkers(n int) (addrs []string, stop func(), err error) {
	ctx, cancel := context.WithCancel(context.Background())
	workers := make([]*transport.Worker, 0, n)
	done := make(chan error, n)
	stop = func() {
		cancel()
		for _, w := range workers {
			w.Close()
		}
		for range workers {
			<-done
		}
	}
	for i := 0; i < n; i++ {
		w, err := transport.NewWorker("127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, fmt.Errorf("experiments: starting local worker %d: %w", i, err)
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
		go func() { done <- w.Serve(ctx) }()
	}
	return addrs, stop, nil
}

// CalibrateDistModel fits the cost model to the machine the measured
// study actually runs on. fig10Model carries 2012-era cluster constants
// (12µs per op, 3ms per message) — predictions made with it sit three
// orders of magnitude away from a modern loopback run, which would reduce
// the model-error column to noise. Calibration measures the two things the
// model parameterizes: compute speed (a timed one-rank run of the pure
// compute kernel, seconds divided by its op count) and the interconnect
// (a loopback ping-pong for per-message cost, a bulk stream for per-byte
// cost). The per-message cost is measured on a *pipelined* stream of
// small messages, not a ping-pong: the transport sends through unbounded
// nonblocking queues, so the cost a message actually adds to a run is its
// share of a saturated stream, not a synchronous round trip. On loopback
// both endpoints burn CPU on the same host, so half the per-message
// stream cost is charged as endpoint overhead (the model bills it at each
// end) and LatencySeconds stays zero — there is no wire.
func CalibrateDistModel(ctx context.Context, g *graph.Graph) (mpisim.CostModel, error) {
	var m mpisim.CostModel
	secs := 0.0
	var ops int64
	for rep := 0; rep < DistReps; rep++ {
		//parsamplevet:ignore nondeterm measured study: the wall clock is the measurand, not kernel state
		start := time.Now()
		res, err := sampling.RunContext(ctx, sampling.ChordalNoComm, g, sampling.Options{
			Order: graph.NaturalOrder(g.N()), P: 1, Seed: distSeed,
		})
		//parsamplevet:ignore nondeterm measured study: timing the calibration run is the point
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return m, fmt.Errorf("experiments: calibration run: %w", err)
		}
		if rep == 0 || elapsed < secs {
			secs, ops = elapsed, res.Stats.TotalOps()
		}
	}
	if ops == 0 {
		return m, fmt.Errorf("experiments: calibration run did no work")
	}
	m.SecondsPerOp = secs / float64(ops)
	msgCost, secPerByte, err := loopbackProbe()
	if err != nil {
		return m, err
	}
	m.OverheadSeconds = msgCost / 2
	m.SecondsPerByte = secPerByte
	return m, nil
}

// loopbackProbe measures the loopback interconnect: the per-message cost
// of a pipelined stream of small writes (sender and receiver combined —
// on loopback they share the host) and the per-byte cost of a bulk
// stream.
func loopbackProbe() (msgCost, secPerByte float64, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: loopback probe: %w", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		io.Copy(conn, conn) // echo until the dialer hangs up
		conn.Close()
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return 0, 0, fmt.Errorf("experiments: loopback probe: %w", err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}

	// Pipelined small messages: write each 64-byte message separately (one
	// syscall per message, like the transport's write loop on an uncoalesced
	// stream) while the echo flows back; read the full echo to close the
	// pipeline. elapsed covers msgs sends + msgs receives on this host.
	const msgs, msgSize = 4096, 64
	msg := make([]byte, msgSize)
	echoErr := make(chan error, 1)
	go func() {
		_, err := io.CopyN(io.Discard, conn, msgs*msgSize)
		echoErr <- err
	}()
	//parsamplevet:ignore nondeterm measured study: the wall clock is the measurand, not kernel state
	start := time.Now()
	for i := 0; i < msgs; i++ {
		if _, err := conn.Write(msg); err != nil {
			return 0, 0, err
		}
	}
	if err := <-echoErr; err != nil {
		return 0, 0, err
	}
	//parsamplevet:ignore nondeterm measured study: interconnect probe measures real time
	msgCost = time.Since(start).Seconds() / msgs

	const bulk = 4 << 20
	chunk := make([]byte, 64<<10)
	errc := make(chan error, 1)
	go func() {
		var sent int
		for sent < bulk {
			n, err := conn.Write(chunk)
			if err != nil {
				errc <- err
				return
			}
			sent += n
		}
		errc <- nil
	}()
	//parsamplevet:ignore nondeterm measured study: the wall clock is the measurand, not kernel state
	start = time.Now()
	if _, err := io.CopyN(io.Discard, conn, bulk); err != nil {
		return 0, 0, err
	}
	//parsamplevet:ignore nondeterm measured study: timing the calibration run is the point
	elapsed := time.Since(start).Seconds()
	if err := <-errc; err != nil {
		return 0, 0, err
	}
	secPerByte = elapsed / bulk
	return msgCost, secPerByte, nil
}

// FigDist runs the measured scalability study on cl: for every algorithm
// and rank count it runs the simulator (for the modeled prediction and the
// reference edge set) and the real cluster (for measured wall clock), and
// errors out if any distributed run's edge set differs from the
// simulator's — byte-identical results are an acceptance criterion, not a
// statistic. Both sides use the calibrated loopback cost model, which is
// returned alongside the rows so reports can record the constants the
// predictions were made with. The cluster must hold at least max(ps)-1
// workers.
func FigDist(ctx context.Context, cl *transport.Cluster, g *graph.Graph, ps []int) ([]DistRow, mpisim.CostModel, error) {
	order := graph.NaturalOrder(g.N())
	model, err := CalibrateDistModel(ctx, g)
	if err != nil {
		return nil, model, err
	}
	var rows []DistRow
	for _, alg := range DistAlgorithms {
		var baseMeasured, baseModeled float64
		for _, p := range ps {
			sim, err := sampling.RunContext(ctx, alg, g, sampling.Options{
				Order: order, P: p, Seed: distSeed, Model: &model,
			})
			if err != nil {
				return nil, model, fmt.Errorf("experiments: simulated %s P=%d: %w", alg, p, err)
			}
			want := sortedEdgeList(sim.Edges)

			measured := 0.0
			match := true
			for rep := 0; rep < DistReps; rep++ {
				dist, err := cl.Run(ctx, transport.Job{
					Alg: alg, Graph: g, Order: order, P: p, Seed: distSeed, Model: &model,
				})
				if err != nil {
					return nil, model, fmt.Errorf("experiments: distributed %s P=%d: %w", alg, p, err)
				}
				if !dist.Stats.Measured || dist.Stats.WallSeconds <= 0 {
					return nil, model, fmt.Errorf("experiments: distributed %s P=%d reported no measured wall clock", alg, p)
				}
				if rep == 0 || dist.Stats.WallSeconds < measured {
					measured = dist.Stats.WallSeconds
				}
				if !edgeListsEqual(want, sortedEdgeList(dist.Edges)) {
					match = false
				}
			}
			if !match {
				return nil, model, fmt.Errorf("experiments: %s P=%d: distributed edge set differs from simulated", alg, p)
			}

			modeled := model.Time(&sim.Stats)
			if p == ps[0] {
				baseMeasured, baseModeled = measured, modeled
			}
			row := DistRow{
				Algorithm:       alg.String(),
				P:               p,
				MeasuredSeconds: measured,
				ModeledSeconds:  modeled,
				MeasuredSpeedup: baseMeasured / measured,
				ModeledSpeedup:  baseModeled / modeled,
				Efficiency:      baseMeasured / measured / float64(p),
				Match:           match,
				EdgesKept:       sim.Edges.Len(),
			}
			if row.ModeledSpeedup != 0 {
				row.ModelErrorPct = 100 * (row.ModeledSpeedup - row.MeasuredSpeedup) / row.ModeledSpeedup
			}
			rows = append(rows, row)
		}
	}
	return rows, model, nil
}

// sortedEdgeList flattens an edge view into a canonically sorted list so
// two runs' results can be compared edge for edge.
func sortedEdgeList(v graph.EdgeView) []graph.Edge {
	edges := make([]graph.Edge, 0, v.Len())
	v.ForEach(func(u, w int32) {
		edges = append(edges, graph.NormEdge(u, w))
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return edges
}

func edgeListsEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
