// Package experiments contains one driver per table/figure of the paper's
// evaluation (Figures 4–11 plus the random-walk cluster count reported in
// the text). Each driver takes a context, returns typed rows plus an error,
// and runs on the shared pipeline engine (internal/pipeline): artifacts
// shared between figures — filtered networks, MCODE clusters, AEES scores,
// match tables — are computed once, concurrent figure drivers deduplicate
// through the engine's singleflight store, and a cancelled context aborts
// the drivers mid-kernel. The cmd/experiments binary and the
// repository-level benchmarks render the rows.
package experiments

import (
	"context"

	"parsample/internal/analysis"
	"parsample/internal/datasets"
	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/pipeline"
	"parsample/internal/sampling"
)

// eng is the engine shared by every figure driver. One store across figures
// is the point: Figures 4–9 and the lost/found table all read the same
// (dataset, ordering, chordal-seq, P=1) chains, so a full `-fig all` sweep
// computes each chain exactly once no matter how drivers interleave.
var eng = pipeline.New(pipeline.Config{})

// Engine exposes the shared pipeline engine (cache statistics, warm-up).
func Engine() *pipeline.Engine { return eng }

// input adapts a dataset for the engine.
func input(ds *datasets.Dataset) pipeline.Input { return pipeline.FromDataset(ds) }

// seqVariant is the sequential chordal filter under ordering o — the
// variant Figures 4–9 study.
func seqVariant(o graph.Ordering) pipeline.Variant {
	return pipeline.Variant{Ordering: o, Algorithm: sampling.ChordalSeq, P: 1}
}

// seqVariants lists the original network plus the sequential chordal filter
// under every paper ordering — the warm set of the ordering figures.
func seqVariants() []pipeline.Variant {
	vs := []pipeline.Variant{pipeline.Original}
	for _, o := range graph.AllOrderings {
		vs = append(vs, seqVariant(o))
	}
	return vs
}

// originalClusters returns the scored clusters of the unfiltered network.
func originalClusters(ctx context.Context, ds *datasets.Dataset) ([]analysis.ScoredCluster, error) {
	return eng.Scored(ctx, input(ds), pipeline.Original)
}

// filteredClusters returns the scored clusters of a filtered network along
// with the filtered graph.
func filteredClusters(ctx context.Context, ds *datasets.Dataset, o graph.Ordering, alg sampling.Algorithm, p int) ([]analysis.ScoredCluster, *graph.Graph, error) {
	in := input(ds)
	v := pipeline.Variant{Ordering: o, Algorithm: alg, P: p}
	sc, err := eng.Scored(ctx, in, v)
	if err != nil {
		return nil, nil, err
	}
	g, err := eng.Graph(ctx, in, v)
	if err != nil {
		return nil, nil, err
	}
	return sc, g, nil
}

// matches returns the variant's cluster match table against the original
// network's clusters.
func matches(ctx context.Context, ds *datasets.Dataset, o graph.Ordering, alg sampling.Algorithm, p int) ([]analysis.Match, error) {
	return eng.Matches(ctx, input(ds), pipeline.Variant{Ordering: o, Algorithm: alg, P: p})
}

// ------------------------------------------------------- direct (reference)

// FilteredNet is one filtered network plus the sampling telemetry.
type FilteredNet struct {
	Dataset  *datasets.Dataset
	Ordering graph.Ordering
	Result   *sampling.Result
	G        *graph.Graph
}

// Filter applies alg to the dataset's network under the given ordering and
// processor count — the direct, uncached kernel path. The figure drivers go
// through the engine instead; this entry point remains as the independent
// reference the engine-vs-direct determinism test compares against.
func Filter(ds *datasets.Dataset, o graph.Ordering, alg sampling.Algorithm, p int) (*FilteredNet, error) {
	ord := graph.Order(ds.G, o, ds.Seed)
	res, err := sampling.Run(alg, ds.G, sampling.Options{Order: ord, P: p, Seed: ds.Seed})
	if err != nil {
		return nil, err
	}
	return &FilteredNet{
		Dataset:  ds,
		Ordering: o,
		Result:   res,
		G:        res.Graph(ds.G.N()),
	}, nil
}

// ScoredClusters runs MCODE on g and scores every cluster against the
// dataset's ontology (direct path, see Filter).
func ScoredClusters(ds *datasets.Dataset, g *graph.Graph) []analysis.ScoredCluster {
	clusters := mcode.FindClusters(g, mcode.DefaultParams())
	return analysis.ScoreClusters(ds.DAG, ds.Ann, g, clusters)
}
