// Package experiments contains one driver per table/figure of the paper's
// evaluation (Figures 4–11 plus the random-walk cluster count reported in
// the text). Each driver returns typed rows; the cmd/experiments binary and
// the repository-level benchmarks render them.
package experiments

import (
	"fmt"
	"sync"

	"parsample/internal/analysis"
	"parsample/internal/datasets"
	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/sampling"
)

// FilteredNet is one filtered network plus the sampling telemetry.
type FilteredNet struct {
	Dataset  *datasets.Dataset
	Ordering graph.Ordering
	Result   *sampling.Result
	G        *graph.Graph
}

// Filter applies alg to the dataset's network under the given ordering and
// processor count.
func Filter(ds *datasets.Dataset, o graph.Ordering, alg sampling.Algorithm, p int) (*FilteredNet, error) {
	ord := graph.Order(ds.G, o, ds.Seed)
	res, err := sampling.Run(alg, ds.G, sampling.Options{Order: ord, P: p, Seed: ds.Seed})
	if err != nil {
		return nil, err
	}
	return &FilteredNet{
		Dataset:  ds,
		Ordering: o,
		Result:   res,
		G:        res.Graph(ds.G.N()),
	}, nil
}

// ScoredClusters runs MCODE on g and scores every cluster against the
// dataset's ontology.
func ScoredClusters(ds *datasets.Dataset, g *graph.Graph) []analysis.ScoredCluster {
	clusters := mcode.FindClusters(g, mcode.DefaultParams())
	return analysis.ScoreClusters(ds.DAG, ds.Ann, g, clusters)
}

// clusterCache memoizes (dataset, ordering, algorithm, P) cluster runs,
// since several figures share the same filtered networks.
var clusterCache sync.Map

type cacheKey struct {
	name string
	ord  graph.Ordering
	alg  sampling.Algorithm
	p    int
}

// originalClusters returns the scored clusters of the unfiltered network.
func originalClusters(ds *datasets.Dataset) []analysis.ScoredCluster {
	key := cacheKey{name: ds.Name, ord: -1, alg: -1, p: 0}
	if v, ok := clusterCache.Load(key); ok {
		return v.([]analysis.ScoredCluster)
	}
	sc := ScoredClusters(ds, ds.G)
	clusterCache.Store(key, sc)
	return sc
}

// filteredClusters returns the scored clusters of a filtered network,
// along with the filtered graph.
func filteredClusters(ds *datasets.Dataset, o graph.Ordering, alg sampling.Algorithm, p int) ([]analysis.ScoredCluster, *graph.Graph, error) {
	key := cacheKey{name: ds.Name, ord: o, alg: alg, p: p}
	type entry struct {
		sc []analysis.ScoredCluster
		g  *graph.Graph
	}
	if v, ok := clusterCache.Load(key); ok {
		e := v.(entry)
		return e.sc, e.g, nil
	}
	fn, err := Filter(ds, o, alg, p)
	if err != nil {
		return nil, nil, err
	}
	sc := ScoredClusters(ds, fn.G)
	clusterCache.Store(key, entry{sc: sc, g: fn.G})
	return sc, fn.G, nil
}

// mustFilteredClusters panics on error; all internal call sites pass
// validated arguments.
func mustFilteredClusters(ds *datasets.Dataset, o graph.Ordering, alg sampling.Algorithm, p int) ([]analysis.ScoredCluster, *graph.Graph) {
	sc, g, err := filteredClusters(ds, o, alg, p)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return sc, g
}
