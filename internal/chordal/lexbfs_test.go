package chordal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parsample/internal/graph"
)

func TestLexBFSOrderIsPermutation(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Gnm(70, 180, seed)
		if !graph.IsPermutation(LexBFSOrder(g), g.N()) {
			t.Fatalf("seed %d: LexBFS order not a permutation", seed)
		}
	}
	if len(LexBFSOrder(graph.FromEdges(0, nil))) != 0 {
		t.Fatal("empty graph should give empty order")
	}
}

func TestLexBFSHandlesDisconnected(t *testing.T) {
	b := graph.NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(3, 4)
	// 2, 5, 6, 7 isolated
	g := b.Build()
	if !graph.IsPermutation(LexBFSOrder(g), 8) {
		t.Fatal("disconnected LexBFS not a permutation")
	}
}

func TestIsChordalLexBFSBasics(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"path", graph.Path(10), true},
		{"triangle", graph.Cycle(3), true},
		{"C4", graph.Cycle(4), false},
		{"C7", graph.Cycle(7), false},
		{"K6", graph.Complete(6), true},
		{"grid", graph.Grid(3, 4), false},
	}
	for _, c := range cases {
		if got := IsChordalLexBFS(c.g); got != c.want {
			t.Errorf("IsChordalLexBFS(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// Property: LexBFS-based and MCS-based chordality tests always agree, on
// random graphs and on chordal subgraphs produced by the DSW filter.
func TestLexBFSAgreesWithMCSQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		g := graph.Gnm(n, rng.Intn(3*n+1), seed)
		if IsChordal(g) != IsChordalLexBFS(g) {
			return false
		}
		sub := MaximalSubgraph(g, graph.NaturalOrder(n)).Edges.Graph(n)
		return IsChordalLexBFS(sub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// On a chordal graph, the first visited vertex's perspective: LexBFS visits
// vertices so that the reverse is a PEO; verify explicitly on a known
// chordal graph (a tree plus triangles).
func TestLexBFSPEOOnChordal(t *testing.T) {
	b := graph.NewBuilder(7)
	edges := [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {3, 5}, {5, 6}}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	if !IsChordal(g) {
		t.Fatal("test graph should be chordal")
	}
	order := LexBFSOrder(g)
	if !IsPerfectEliminationOrdering(g, reversed(order)) {
		t.Fatal("reverse LexBFS order is not a PEO on a chordal graph")
	}
}

func BenchmarkLexBFS(b *testing.B) {
	g := graph.Gnm(5000, 15000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LexBFSOrder(g)
	}
}
