package chordal

import (
	"parsample/internal/graph"
)

// MCSOrder runs maximum cardinality search on g and returns the visit order.
// If g is chordal, the reverse of the visit order is a perfect elimination
// ordering.
func MCSOrder(g *graph.Graph) []int32 {
	n := g.N()
	weight := make([]int, n)
	visited := make([]bool, n)
	// Bucket queue over weights for O(n + m).
	buckets := make([][]int32, n+1)
	for v := int32(0); int(v) < n; v++ {
		buckets[0] = append(buckets[0], v)
	}
	maxW := 0
	order := make([]int32, 0, n)
	for len(order) < n {
		// Find the highest non-empty bucket at or below maxW.
		var v int32 = -1
		for maxW >= 0 {
			bk := buckets[maxW]
			for len(bk) > 0 {
				cand := bk[len(bk)-1]
				bk = bk[:len(bk)-1]
				if !visited[cand] && weight[cand] == maxW {
					v = cand
					break
				}
			}
			buckets[maxW] = bk
			if v >= 0 {
				break
			}
			maxW--
		}
		if v < 0 {
			break // should not happen
		}
		visited[v] = true
		order = append(order, v)
		for _, w := range g.Neighbors(v) {
			if !visited[w] {
				weight[w]++
				buckets[weight[w]] = append(buckets[weight[w]], w)
				if weight[w] > maxW {
					maxW = weight[w]
				}
			}
		}
	}
	return order
}

// IsChordal reports whether g is chordal, using MCS followed by the
// Tarjan–Yannakakis perfect elimination ordering check (overall O(n + m)).
func IsChordal(g *graph.Graph) bool {
	order := MCSOrder(g)
	return IsPerfectEliminationOrdering(g, reversed(order))
}

// IsPerfectEliminationOrdering reports whether elim is a perfect elimination
// ordering of g: for every vertex v, the neighbors of v that appear *later*
// in elim form a clique. Implemented with the standard parent-check in
// O(n + m): for each v with later-neighbors RN(v) and parent p(v) = the
// earliest member of RN(v), verify RN(v) \ {p(v)} ⊆ RN(p(v)).
func IsPerfectEliminationOrdering(g *graph.Graph, elim []int32) bool {
	n := g.N()
	if !graph.IsPermutation(elim, n) {
		return false
	}
	pos := graph.InversePerm(elim)
	// later[v] = neighbors of v that come after v in elim.
	later := make([][]int32, n)
	for v := int32(0); int(v) < n; v++ {
		for _, w := range g.Neighbors(v) {
			if pos[w] > pos[v] {
				later[v] = append(later[v], w)
			}
		}
	}
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	for idx := 0; idx < n; idx++ {
		v := elim[idx]
		rn := later[v]
		if len(rn) <= 1 {
			continue
		}
		// Parent = earliest later-neighbor.
		p := rn[0]
		for _, w := range rn[1:] {
			if pos[w] < pos[p] {
				p = w
			}
		}
		for _, w := range later[p] {
			mark[w] = int32(idx)
		}
		mark[p] = int32(idx) // p itself is trivially fine
		for _, w := range rn {
			if w != p && mark[w] != int32(idx) {
				return false
			}
		}
	}
	return true
}

// IsMaximalChordalSubgraph reports whether sub (a subgraph of g over the same
// vertex set) is chordal and maximal: adding any edge of g not in sub breaks
// chordality. Intended for tests on small graphs (it re-runs the chordality
// test once per excluded edge).
func IsMaximalChordalSubgraph(g, sub *graph.Graph) bool {
	if !IsChordal(sub) {
		return false
	}
	subSet := graph.EdgeSetOf(sub)
	maximal := true
	g.ForEachEdge(func(u, v int32) {
		if !maximal || subSet.Has(u, v) {
			return
		}
		trial := graph.NewEdgeSet(subSet.Len() + 1)
		trial.AddSet(subSet)
		trial.Add(u, v)
		if IsChordal(trial.Graph(g.N())) {
			maximal = false
		}
	})
	return maximal
}

func reversed(s []int32) []int32 {
	out := make([]int32, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}
