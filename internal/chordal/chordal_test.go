package chordal

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"parsample/internal/graph"
)

func natural(g *graph.Graph) []int32 { return graph.NaturalOrder(g.N()) }

func TestIsChordalBasics(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"empty", graph.FromEdges(0, nil), true},
		{"singleton", graph.FromEdges(1, nil), true},
		{"edge", graph.Path(2), true},
		{"path", graph.Path(10), true},
		{"triangle", graph.Cycle(3), true},
		{"C4", graph.Cycle(4), false},
		{"C5", graph.Cycle(5), false},
		{"C12", graph.Cycle(12), false},
		{"K5", graph.Complete(5), true},
		{"grid3x3", graph.Grid(3, 3), false},
	}
	for _, c := range cases {
		if got := IsChordal(c.g); got != c.want {
			t.Errorf("IsChordal(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestIsChordalC4PlusChord(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	b.AddEdge(0, 2) // chord
	if !IsChordal(b.Build()) {
		t.Fatal("C4 + chord must be chordal")
	}
}

func TestIsChordalDisconnected(t *testing.T) {
	// Triangle plus isolated vertices plus a path: chordal.
	b := graph.NewBuilder(9)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	if !IsChordal(b.Build()) {
		t.Fatal("disconnected chordal graph rejected")
	}
	// Triangle plus C4: not chordal.
	b = graph.NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 3)
	if IsChordal(b.Build()) {
		t.Fatal("graph containing C4 accepted")
	}
}

func TestMCSOrderIsPermutation(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Gnm(60, 140, seed)
		if !graph.IsPermutation(MCSOrder(g), g.N()) {
			t.Fatal("MCS order not a permutation")
		}
	}
}

func TestPEOCheck(t *testing.T) {
	// For a path 0-1-2-3, elimination order 0,1,2,3 is perfect.
	g := graph.Path(4)
	if !IsPerfectEliminationOrdering(g, []int32{0, 1, 2, 3}) {
		t.Fatal("path natural order should be a PEO")
	}
	// For C4, no order is perfect; spot check a couple.
	c4 := graph.Cycle(4)
	if IsPerfectEliminationOrdering(c4, []int32{0, 1, 2, 3}) {
		t.Fatal("C4 cannot have a PEO")
	}
	if IsPerfectEliminationOrdering(c4, []int32{2, 0, 1, 3}) {
		t.Fatal("C4 cannot have a PEO")
	}
	// Bad permutation rejected.
	if IsPerfectEliminationOrdering(g, []int32{0, 0, 1, 2}) {
		t.Fatal("invalid permutation accepted")
	}
}

func TestMaximalSubgraphOnChordalInput(t *testing.T) {
	// A chordal input must be returned whole.
	inputs := []*graph.Graph{
		graph.Path(20),
		graph.Complete(8),
		graph.Cycle(3),
	}
	for _, g := range inputs {
		res := MaximalSubgraph(g, natural(g))
		if res.Edges.Len() != g.M() {
			t.Fatalf("chordal input lost edges: got %d, want %d", res.Edges.Len(), g.M())
		}
	}
}

func TestMaximalSubgraphCycle(t *testing.T) {
	// MCS of C_n keeps exactly n-1 edges (spanning path; any chord is absent
	// in the original so the cycle must be cut once).
	for _, n := range []int{4, 5, 8, 13} {
		g := graph.Cycle(n)
		res := MaximalSubgraph(g, natural(g))
		if res.Edges.Len() != n-1 {
			t.Fatalf("C%d: chordal subgraph has %d edges, want %d", n, res.Edges.Len(), n-1)
		}
		if !IsChordal(res.Edges.Graph(n)) {
			t.Fatalf("C%d: result not chordal", n)
		}
	}
}

func TestMaximalSubgraphAlwaysChordal(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := graph.Gnm(80, 240, seed)
		res := MaximalSubgraph(g, natural(g))
		sub := res.Edges.Graph(g.N())
		if !IsChordal(sub) {
			t.Fatalf("seed %d: result not chordal", seed)
		}
		// Subgraph edges must all exist in g.
		sub.ForEachEdge(func(u, v int32) {
			if !g.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) not in original graph", u, v)
			}
		})
	}
}

func TestMaximalSubgraphIsMaximal(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Gnm(25, 70, seed)
		res := MaximalSubgraph(g, natural(g))
		sub := res.Edges.Graph(g.N())
		if !IsMaximalChordalSubgraph(g, sub) {
			t.Fatalf("seed %d: subgraph not maximal", seed)
		}
	}
}

func TestMaximalSubgraphVisitOrderPEO(t *testing.T) {
	g := graph.Gnm(60, 200, 3)
	res := MaximalSubgraph(g, natural(g))
	sub := res.Edges.Graph(g.N())
	// Reverse of visit order is a PEO of the subgraph.
	rev := make([]int32, len(res.VisitOrder))
	for i, v := range res.VisitOrder {
		rev[len(rev)-1-i] = v
	}
	if !IsPerfectEliminationOrdering(sub, rev) {
		t.Fatal("reverse visit order is not a PEO of the subgraph")
	}
}

func TestMaximalSubgraphOrderSensitivity(t *testing.T) {
	// Different orderings may give different subgraphs, but all chordal and
	// all with the same vertex set.
	g := graph.Gnm(100, 400, 11)
	sizes := map[string]int{}
	for _, o := range graph.AllOrderings {
		ord := graph.Order(g, o, 0)
		res := MaximalSubgraph(g, ord)
		if !IsChordal(res.Edges.Graph(g.N())) {
			t.Fatalf("%v: not chordal", o)
		}
		sizes[o.String()] = res.Edges.Len()
	}
	t.Logf("sizes by ordering: %v", sizes)
}

func TestMaximalSubgraphEmptyAndTiny(t *testing.T) {
	g := graph.FromEdges(0, nil)
	if res := MaximalSubgraph(g, nil); res.Edges.Len() != 0 {
		t.Fatal("empty graph should give empty subgraph")
	}
	g1 := graph.FromEdges(3, nil) // no edges
	res := MaximalSubgraph(g1, natural(g1))
	if res.Edges.Len() != 0 || len(res.VisitOrder) != 3 {
		t.Fatal("edgeless graph mishandled")
	}
}

func TestMaximalSubgraphPreservesCliques(t *testing.T) {
	// Plant a K6 inside a sparse noisy graph; the chordal filter must retain
	// every clique edge (a complete graph is chordal, and DSW grows cliques).
	pr := graph.PlantedModules(200, 150, graph.ModuleSpec{
		Count: 1, MinSize: 6, MaxSize: 6, Density: 1.0, NoiseDeg: 1,
	}, 5)
	g := pr.G
	mod := pr.Modules[0]
	res := MaximalSubgraph(g, natural(g))
	missing := 0
	for i := 0; i < len(mod); i++ {
		for j := i + 1; j < len(mod); j++ {
			if !res.Edges.Has(mod[i], mod[j]) {
				missing++
			}
		}
	}
	// The clique itself is chordal; DSW retains the bulk of it. Perfect
	// retention is not guaranteed once noise edges interleave, but losing
	// more than a third of the clique edges indicates a broken filter.
	if missing > len(mod)*(len(mod)-1)/2/3 {
		t.Fatalf("lost %d clique edges", missing)
	}
}

// Property-based: on arbitrary random graphs (varying density), the result is
// always a chordal subgraph of the input.
func TestMaximalSubgraphQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		m := rng.Intn(n * (n - 1) / 2)
		g := graph.Gnm(n, m, seed)
		ord := graph.Order(g, graph.RandomOrder, seed+1)
		res := MaximalSubgraph(g, ord)
		sub := res.Edges.Graph(n)
		if !IsChordal(sub) {
			return false
		}
		ok := true
		sub.ForEachEdge(func(u, v int32) {
			if !g.HasEdge(u, v) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property-based: maximality on small graphs under random orderings.
func TestMaximalityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		m := rng.Intn(n*(n-1)/2 + 1)
		g := graph.Gnm(n, m, seed)
		ord := graph.Order(g, graph.RandomOrder, seed+7)
		res := MaximalSubgraph(g, ord)
		return IsMaximalChordalSubgraph(g, res.Edges.Graph(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOpsCounterPositive(t *testing.T) {
	g := graph.Gnm(50, 150, 2)
	res := MaximalSubgraph(g, natural(g))
	if res.Ops <= 0 {
		t.Fatal("ops counter should be positive for non-trivial input")
	}
}

func BenchmarkMaximalSubgraphGnm(b *testing.B) {
	g := graph.Gnm(5000, 15000, 1)
	ord := natural(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximalSubgraph(g, ord)
	}
}

func BenchmarkIsChordal(b *testing.B) {
	g := MaximalSubgraph(graph.Gnm(5000, 15000, 1), graph.NaturalOrder(5000)).Edges.Graph(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !IsChordal(g) {
			b.Fatal("not chordal")
		}
	}
}

func TestFillInCountChordalZero(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(15), graph.Complete(7), graph.Cycle(3), graph.FromEdges(0, nil),
	} {
		if f := FillInCount(g); f != 0 {
			t.Fatalf("chordal graph fill-in = %d, want 0", f)
		}
	}
}

func TestFillInCountCycles(t *testing.T) {
	// C4 needs exactly 1 chord; longer cycles need more.
	if f := FillInCount(graph.Cycle(4)); f != 1 {
		t.Fatalf("C4 fill-in = %d, want 1", f)
	}
	if f := FillInCount(graph.Cycle(10)); f < 5 {
		t.Fatalf("C10 fill-in = %d, want >= 5 (n-3 chords + fill)", f)
	}
	// Fill-in grows with grid size (many chordless C4s).
	small := FillInCount(graph.Grid(3, 3))
	big := FillInCount(graph.Grid(5, 5))
	if small <= 0 || big <= small {
		t.Fatalf("grid fill-ins: 3x3=%d 5x5=%d", small, big)
	}
}

func TestFillInZeroIffChordalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(25)
		g := graph.Gnm(n, rng.Intn(3*n), seed)
		return (FillInCount(g) == 0) == IsChordal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The DSW filter output always has zero fill-in; a quasi-chordal parallel
// result has small fill-in relative to the original network.
func TestFillInOfFilterOutput(t *testing.T) {
	g := graph.Gnm(200, 700, 3)
	sub := MaximalSubgraph(g, graph.NaturalOrder(200)).Edges.Graph(200)
	if FillInCount(sub) != 0 {
		t.Fatal("sequential chordal output must have zero fill-in")
	}
	if FillInCount(g) == 0 {
		t.Fatal("dense random graph should not be chordal")
	}
}

// runPath forces one of the two DSW implementations, bypassing the
// dispatch in MaximalSubgraph.
func runPath(g *graph.Graph, order []int32, dense bool) *Result {
	n := g.N()
	res := &Result{VisitOrder: make([]int32, 0, n)}
	if n == 0 {
		return res
	}
	pos := graph.InversePerm(order)
	bsize := make([]int32, n)
	q := newVertexHeap(order, pos, bsize)
	if dense {
		maximalDense(context.Background(), g, q, bsize, res)
	} else {
		maximalSparse(context.Background(), g, q, bsize, res)
	}
	return res
}

// The bitset and mark-array paths must select exactly the same subgraph and
// visit order on every input — they implement one algorithm.
func TestDensePathMatchesSparsePath(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Complete(60),
		graph.Gnm(200, 12000, 3), // mean degree 120: dense-path territory
		graph.Gnm(300, 900, 7),
		graph.RMAT(8, 8, 0, 0, 0, 9),
		graph.Grid(8, 8),
	}
	for gi, g := range graphs {
		for _, o := range []graph.Ordering{graph.Natural, graph.HighDegree, graph.RCM} {
			ord := graph.Order(g, o, 1)
			d := runPath(g, ord, true)
			s := runPath(g, ord, false)
			if len(d.VisitOrder) != len(s.VisitOrder) {
				t.Fatalf("graph %d/%v: visit lengths differ", gi, o)
			}
			for i := range d.VisitOrder {
				if d.VisitOrder[i] != s.VisitOrder[i] {
					t.Fatalf("graph %d/%v: visit order diverges at %d", gi, o, i)
				}
			}
			if d.Edges.Len() != s.Edges.Len() {
				t.Fatalf("graph %d/%v: dense %d edges, sparse %d", gi, o, d.Edges.Len(), s.Edges.Len())
			}
			ss := s.Edges.Sorted()
			for i, e := range d.Edges.Sorted() {
				if ss[i] != e {
					t.Fatalf("graph %d/%v: edge sets differ", gi, o)
				}
			}
		}
	}
}

// Dense-path outputs must satisfy the same chordality + maximality
// invariants the sparse path is tested for.
func TestDensePathInvariants(t *testing.T) {
	g := graph.Gnm(120, 5000, 11) // mean degree 83 → forced via runPath
	res := runPath(g, natural(g), true)
	sub := res.Edges.Graph(g.N())
	if !IsChordal(sub) {
		t.Fatal("dense path produced a non-chordal subgraph")
	}
	if !IsMaximalChordalSubgraph(g, sub) {
		t.Fatal("dense path result not maximal")
	}
}
