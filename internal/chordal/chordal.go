// Package chordal implements maximal chordal subgraph extraction
// (Dearing, Shier & Warner, Discrete Applied Mathematics 1988) and
// chordality testing (maximum cardinality search + perfect elimination
// ordering verification). These are the combinatorial kernels behind the
// paper's adaptive sampling filter.
package chordal

import (
	"context"

	"parsample/internal/graph"
)

// Result is the output of a maximal chordal subgraph extraction.
type Result struct {
	// Edges of the chordal subgraph. DSW commits every edge exactly once
	// (v—w is emitted when v is visited with w ∈ B(v)), so the output is a
	// duplicate-free flat list — no hash set is materialized anywhere in
	// the extraction.
	Edges graph.EdgeList
	// VisitOrder is the order in which the algorithm committed vertices; its
	// reverse is a perfect elimination ordering of the subgraph.
	VisitOrder []int32
	// Ops counts elementary candidate-set operations performed; used by the
	// scalability cost model (internal/mpisim).
	Ops int64
}

// vertexHeap selects the next vertex to commit: largest candidate set
// first, ties broken by position in the requested processing order. It is
// an indexed binary heap — every vertex appears exactly once and a
// candidate-set grow is an increase-key sift-up — so there are no stale
// entries to skip and no interface boxing (container/heap would box every
// push, and a lazy heap pushes O(E) entries; this one holds at most n).
type vertexHeap struct {
	verts []int32 // heap array of vertex ids
	loc   []int32 // loc[v] = index of v in verts; -1 once popped
	size  []int32 // |B(v)|, shared with the kernel
	pos   []int32 // position of v in the processing order
}

// newVertexHeap builds the initial heap. All candidate sets are empty and
// order is sorted by pos, so the array is already heap-ordered.
func newVertexHeap(order, pos, size []int32) *vertexHeap {
	verts := make([]int32, len(order))
	copy(verts, order)
	loc := make([]int32, len(order))
	for i, v := range verts {
		loc[v] = int32(i)
	}
	return &vertexHeap{verts: verts, loc: loc, size: size, pos: pos}
}

func (h *vertexHeap) before(a, b int32) bool {
	if h.size[a] != h.size[b] {
		return h.size[a] > h.size[b]
	}
	return h.pos[a] < h.pos[b]
}

func (h *vertexHeap) empty() bool { return len(h.verts) == 0 }

// pop removes and returns the top-priority vertex.
func (h *vertexHeap) pop() int32 {
	top := h.verts[0]
	h.loc[top] = -1
	last := len(h.verts) - 1
	if last > 0 {
		v := h.verts[last]
		h.verts[0] = v
		h.loc[v] = 0
	}
	h.verts = h.verts[:last]
	// Sift down.
	n := len(h.verts)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.before(h.verts[l], h.verts[best]) {
			best = l
		}
		if r < n && h.before(h.verts[r], h.verts[best]) {
			best = r
		}
		if best == i {
			break
		}
		h.verts[i], h.verts[best] = h.verts[best], h.verts[i]
		h.loc[h.verts[i]] = int32(i)
		h.loc[h.verts[best]] = int32(best)
		i = best
	}
	return top
}

// grew restores the heap invariant after size[v] increased (sift-up).
func (h *vertexHeap) grew(v int32) {
	i := int(h.loc[v])
	for i > 0 {
		parent := (i - 1) / 2
		if !h.before(h.verts[i], h.verts[parent]) {
			break
		}
		h.verts[i], h.verts[parent] = h.verts[parent], h.verts[i]
		h.loc[h.verts[i]] = int32(i)
		h.loc[h.verts[parent]] = int32(parent)
		i = parent
	}
}

// denseBLimit bounds the vertex count for the bitset candidate-set path.
// Every non-isolated vertex eventually carries a candidate bitset of n/8
// bytes, so at 16384 vertices the worst case is 32 MiB; beyond that the
// mark-array path wins on memory and cache behavior.
const denseBLimit = 1 << 14

// denseBDegree is the mean-degree threshold for the bitset path. The
// word-parallel subset sweep costs n/64 words regardless of |B(x)|, while
// the mark-array probe costs |B(x)| ≤ deg(x); bitsets only pay off once
// candidate sets are large, i.e. on dense graphs. Correlation networks
// at the paper's thresholds sit far below this, so they take the
// mark-array path.
const denseBDegree = 96

// MaximalSubgraph extracts a maximal chordal subgraph of g using the
// Dearing–Shier–Warner traversal, O(E·d) for maximum degree d.
//
// Each unvisited vertex u carries a candidate set B(u): visited neighbors w
// such that adding all edges {u,w} keeps the subgraph chordal (B(u) induces a
// clique in the current subgraph). At every step the vertex with the largest
// candidate set is committed (ties broken by the supplied processing order),
// its candidate edges are added, and for every unvisited neighbor x of the
// committed vertex v, B(x) grows by v whenever B(x) ⊆ B(v) — which preserves
// the clique invariant since B(v) ∪ {v} is a clique.
//
// On vertex universes up to denseBLimit the candidate sets are Bitsets and
// the subset test is a word-parallel B(x) &^ B(v) == 0 sweep; larger graphs
// fall back to sorted member slices with a stamped mark array. Neither path
// touches a hash map.
//
// order must be a permutation of 0..g.N()-1; it supplies both the starting
// bias and tie-breaking, which is how the paper's Natural / HighDegree /
// LowDegree / RCM perturbations enter the algorithm.
func MaximalSubgraph(g *graph.Graph, order []int32) *Result {
	res, _ := MaximalSubgraphContext(context.Background(), g, order)
	return res
}

// cancelStride is how many vertex commits pass between context polls in the
// DSW loops. A commit processes one vertex's whole neighborhood, so 256
// commits bound the poll interval to a few hundred microseconds of work
// while keeping the check off the per-edge path.
const cancelStride = 256

// MaximalSubgraphContext is MaximalSubgraph with cooperative cancellation:
// the traversal polls ctx every cancelStride committed vertices and returns
// (nil, ctx.Err()) once it observes cancellation. A nil error means the
// extraction ran to completion.
func MaximalSubgraphContext(ctx context.Context, g *graph.Graph, order []int32) (*Result, error) {
	n := g.N()
	res := &Result{VisitOrder: make([]int32, 0, n)}
	if n == 0 {
		return res, nil
	}
	res.Edges = make(graph.EdgeList, 0, g.M()/2)
	pos := graph.InversePerm(order)
	bsize := make([]int32, n) // |B(v)|, shared with the heap
	q := newVertexHeap(order, pos, bsize)
	var err error
	if n <= denseBLimit && 2*g.M() >= n*denseBDegree {
		err = maximalDense(ctx, g, q, bsize, res)
	} else {
		err = maximalSparse(ctx, g, q, bsize, res)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// maximalDense runs the DSW loop with bitset candidate sets.
func maximalDense(ctx context.Context, g *graph.Graph, q *vertexHeap, bsize []int32, res *Result) error {
	n := g.N()
	visited := graph.NewBitset(n)
	b := make([]graph.Bitset, n) // candidate sets, allocated on first grow

	for step := 0; !q.empty(); step++ {
		if step%cancelStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		v := q.pop()
		visited.Set(v)
		res.VisitOrder = append(res.VisitOrder, v)

		bv := b[v]
		// Commit edges v—w for all w ∈ B(v).
		if bv != nil && bsize[v] > 0 {
			bv.ForEach(func(w int32) {
				res.Edges = append(res.Edges, graph.NormEdge(v, w))
			})
		}

		for _, x := range g.Neighbors(v) {
			if visited.Has(x) {
				continue
			}
			res.Ops++
			// B(x) ⊆ B(v)? Word-parallel subset sweep; the size guard
			// rejects most failures without touching words.
			if bsize[x] > bsize[v] {
				continue
			}
			res.Ops += int64(bsize[x])
			if bsize[x] > 0 && !b[x].SubsetOf(bv) {
				continue
			}
			if b[x] == nil {
				b[x] = graph.NewBitset(n)
			}
			b[x].Set(v)
			bsize[x]++
			q.grew(x)
		}
		b[v] = nil // release; v is committed
	}
	return nil
}

// maximalSparse runs the DSW loop with member slices and a stamped mark
// array — subset tests cost O(|B(x)|) probes, which beats the word sweep on
// sparse networks where candidate sets stay tiny. No hash maps anywhere.
func maximalSparse(ctx context.Context, g *graph.Graph, q *vertexHeap, bsize []int32, res *Result) error {
	n := g.N()
	visited := make([]bool, n)
	b := make([][]int32, n) // candidate sets
	// Timestamped membership marks for O(|B(u)|) subset tests.
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}

	stamp := int32(0)
	for !q.empty() {
		if stamp%cancelStride == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		v := q.pop()
		visited[v] = true
		res.VisitOrder = append(res.VisitOrder, v)

		// Commit edges v—w for all w ∈ B(v), marking B(v) for subset tests.
		for _, w := range b[v] {
			res.Edges = append(res.Edges, graph.NormEdge(v, w))
			mark[w] = stamp
		}
		bvLen := len(b[v])

		for _, x := range g.Neighbors(v) {
			if visited[x] {
				continue
			}
			// B(x) ⊆ B(v)?
			ok := len(b[x]) <= bvLen
			if ok {
				for _, w := range b[x] {
					res.Ops++
					if mark[w] != stamp {
						ok = false
						break
					}
				}
			}
			res.Ops++
			if ok {
				b[x] = append(b[x], v)
				bsize[x]++
				q.grew(x)
			}
		}
		stamp++
		b[v] = nil
	}
	return nil
}

// SubgraphGraph materializes the chordal subgraph over n vertices.
func (r *Result) SubgraphGraph(n int) *graph.Graph { return r.Edges.Graph(n) }
