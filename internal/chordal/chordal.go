// Package chordal implements maximal chordal subgraph extraction
// (Dearing, Shier & Warner, Discrete Applied Mathematics 1988) and
// chordality testing (maximum cardinality search + perfect elimination
// ordering verification). These are the combinatorial kernels behind the
// paper's adaptive sampling filter.
package chordal

import (
	"container/heap"

	"parsample/internal/graph"
)

// Result is the output of a maximal chordal subgraph extraction.
type Result struct {
	Edges graph.EdgeSet // edges of the chordal subgraph
	// VisitOrder is the order in which the algorithm committed vertices; its
	// reverse is a perfect elimination ordering of the subgraph.
	VisitOrder []int32
	// Ops counts elementary candidate-set operations performed; used by the
	// scalability cost model (internal/mpisim).
	Ops int64
}

// item is a heap entry for the next-vertex selection: largest candidate set
// first, ties broken by position in the requested processing order.
type item struct {
	v    int32
	size int32 // |B(v)| at push time (lazy; stale entries are skipped)
	pos  int32 // position of v in the processing order
}

type prioQueue []item

func (q prioQueue) Len() int { return len(q) }
func (q prioQueue) Less(i, j int) bool {
	if q[i].size != q[j].size {
		return q[i].size > q[j].size
	}
	return q[i].pos < q[j].pos
}
func (q prioQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *prioQueue) Push(x any)   { *q = append(*q, x.(item)) }
func (q *prioQueue) Pop() any     { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// MaximalSubgraph extracts a maximal chordal subgraph of g using the
// Dearing–Shier–Warner traversal, O(E·d) for maximum degree d.
//
// Each unvisited vertex u carries a candidate set B(u): visited neighbors w
// such that adding all edges {u,w} keeps the subgraph chordal (B(u) induces a
// clique in the current subgraph). At every step the vertex with the largest
// candidate set is committed (ties broken by the supplied processing order),
// its candidate edges are added, and for every unvisited neighbor x of the
// committed vertex v, B(x) grows by v whenever B(x) ⊆ B(v) — which preserves
// the clique invariant since B(v) ∪ {v} is a clique.
//
// order must be a permutation of 0..g.N()-1; it supplies both the starting
// bias and tie-breaking, which is how the paper's Natural / HighDegree /
// LowDegree / RCM perturbations enter the algorithm.
func MaximalSubgraph(g *graph.Graph, order []int32) *Result {
	n := g.N()
	res := &Result{
		Edges:      graph.NewEdgeSet(g.M()),
		VisitOrder: make([]int32, 0, n),
	}
	if n == 0 {
		return res
	}
	pos := graph.InversePerm(order)

	visited := make([]bool, n)
	b := make([][]int32, n) // candidate sets
	// Timestamped membership marks for O(|B(u)|) subset tests.
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}

	q := make(prioQueue, 0, n)
	for _, v := range order {
		q = append(q, item{v: v, size: 0, pos: pos[v]})
	}
	heap.Init(&q)

	stamp := int32(0)
	for q.Len() > 0 {
		it := heap.Pop(&q).(item)
		v := it.v
		if visited[v] || int32(len(b[v])) != it.size {
			continue // stale entry
		}
		visited[v] = true
		res.VisitOrder = append(res.VisitOrder, v)

		// Commit edges v—w for all w ∈ B(v).
		for _, w := range b[v] {
			res.Edges.Add(v, w)
		}

		// Mark B(v) for subset tests.
		for _, w := range b[v] {
			mark[w] = stamp
		}
		bvLen := len(b[v])

		for _, x := range g.Neighbors(v) {
			if visited[x] {
				continue
			}
			// B(x) ⊆ B(v)?
			ok := len(b[x]) <= bvLen
			if ok {
				for _, w := range b[x] {
					res.Ops++
					if mark[w] != stamp {
						ok = false
						break
					}
				}
			}
			res.Ops++
			if ok {
				b[x] = append(b[x], v)
				heap.Push(&q, item{v: x, size: int32(len(b[x])), pos: pos[x]})
			}
		}
		stamp++
		b[v] = nil
	}
	return res
}

// SubgraphGraph materializes the chordal subgraph over g.N() vertices.
func (r *Result) SubgraphGraph(n int) *graph.Graph { return r.Edges.Graph(n) }
