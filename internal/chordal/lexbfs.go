package chordal

import (
	"parsample/internal/graph"
)

// LexBFSOrder computes a lexicographic breadth-first search order of g
// (Rose, Tarjan & Lueker 1976) using the partition-refinement technique in
// O(n + m). Like MCS, the reverse of a LexBFS order is a perfect elimination
// ordering iff the graph is chordal; the two searches can produce different
// orders, which makes LexBFS a useful cross-check (and an ablation) for the
// chordality verifier.
func LexBFSOrder(g *graph.Graph) []int32 {
	n := g.N()
	order := make([]int32, 0, n)
	if n == 0 {
		return order
	}

	// Doubly linked list of cells (partition classes), each holding a
	// doubly linked list of vertices.
	type cell struct {
		prev, next int32 // cell links (-1 terminated)
		head       int32 // first vertex in cell (-1 if empty)
		mark       int32 // last refinement step that split this cell
		newCell    int32 // cell created from this one during current step
	}
	cells := make([]cell, 1, n+1)
	cells[0] = cell{prev: -1, next: -1, head: -1, mark: -1, newCell: -1}

	vNext := make([]int32, n)
	vPrev := make([]int32, n)
	vCell := make([]int32, n)
	visited := make([]bool, n)

	// All vertices start in cell 0, in id order.
	for v := n - 1; v >= 0; v-- {
		v32 := int32(v)
		vNext[v] = cells[0].head
		vPrev[v] = -1
		if cells[0].head >= 0 {
			vPrev[cells[0].head] = v32
		}
		cells[0].head = v32
		vCell[v] = 0
	}
	first := int32(0) // first cell in the list

	removeVertex := func(v int32) {
		c := vCell[v]
		if vPrev[v] >= 0 {
			vNext[vPrev[v]] = vNext[v]
		} else {
			cells[c].head = vNext[v]
		}
		if vNext[v] >= 0 {
			vPrev[vNext[v]] = vPrev[v]
		}
	}

	for step := int32(0); int(step) < n; step++ {
		// Pop the first vertex of the first non-empty cell.
		for first >= 0 && cells[first].head < 0 {
			first = cells[first].next
			if first >= 0 {
				cells[first].prev = -1
			}
		}
		if first < 0 {
			break
		}
		v := cells[first].head
		removeVertex(v)
		visited[v] = true
		order = append(order, v)

		// Refine: move each unvisited neighbor into a cell immediately
		// before its current cell (vertices with this neighbor sort ahead).
		for _, u := range g.Neighbors(v) {
			if visited[u] {
				continue
			}
			c := vCell[u]
			if cells[c].mark != step {
				// Create the split cell in front of c.
				nc := int32(len(cells))
				cells = append(cells, cell{
					prev: cells[c].prev, next: c, head: -1, mark: -1, newCell: -1,
				})
				if cells[c].prev >= 0 {
					cells[cells[c].prev].next = nc
				} else if first == c {
					first = nc
				}
				cells[c].prev = nc
				cells[c].mark = step
				cells[c].newCell = nc
			}
			nc := cells[c].newCell
			removeVertex(u)
			vNext[u] = cells[nc].head
			vPrev[u] = -1
			if cells[nc].head >= 0 {
				vPrev[cells[nc].head] = u
			}
			cells[nc].head = u
			vCell[u] = nc
		}
	}
	return order
}

// IsChordalLexBFS is an alternative chordality test using LexBFS instead of
// maximum cardinality search. It must always agree with IsChordal.
func IsChordalLexBFS(g *graph.Graph) bool {
	order := LexBFSOrder(g)
	if len(order) != g.N() {
		return false
	}
	return IsPerfectEliminationOrdering(g, reversed(order))
}
