package chordal

import (
	"parsample/internal/graph"
)

// FillInCount measures how far g is from chordal: the number of fill edges
// added when eliminating vertices in reverse maximum-cardinality-search
// order (the classic elimination-game bound). It is 0 if and only if g is
// chordal, and grows with the number and length of chordless cycles — the
// quantitative version of the paper's "quasi-chordal subgraphs have a few
// large cycles across the partitions".
//
// Note this is an upper bound relative to the MCS order, not the (NP-hard)
// minimum fill-in; as a comparative diagnostic between two samplers on the
// same graph it is what we need.
//
// The elimination game needs dynamic adjacency (fill edges accumulate). On
// vertex universes up to denseBLimit it is played on lazily allocated
// bitset rows, so the inner clique-completion loop is bit probes and sets;
// larger universes fall back to degree-sized hash rows, keeping memory
// O(M + fill) instead of O(n²/8).
func FillInCount(g *graph.Graph) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	order := MCSOrder(g)
	// Eliminate in reverse MCS order: process vertices by ascending pos in
	// the elimination ordering = reverse of MCS visit order.
	elim := reversed(order)
	if n <= denseBLimit {
		return fillInDense(g, elim)
	}
	return fillInSparse(g, elim)
}

// fillInDense plays the elimination game on lazily allocated bitset rows.
func fillInDense(g *graph.Graph, elim []int32) int {
	n := g.N()
	// Working adjacency rows; row v is materialized on first use.
	adj := make([]graph.Bitset, n)
	row := func(v int32) graph.Bitset {
		if adj[v] == nil {
			adj[v] = graph.NewBitset(n)
			for _, w := range g.Neighbors(v) {
				adj[v].Set(w)
			}
		}
		return adj[v]
	}
	eliminated := graph.NewBitset(n)
	fill := 0
	var nb []int32
	for _, v := range elim {
		// Higher (not yet eliminated) neighbors of v must form a clique;
		// count and add the missing edges.
		nb = nb[:0]
		row(v).ForEach(func(w int32) {
			if !eliminated.Has(w) {
				nb = append(nb, w)
			}
		})
		for i := 0; i < len(nb); i++ {
			ra := row(nb[i])
			for j := i + 1; j < len(nb); j++ {
				b := nb[j]
				if !ra.Has(b) {
					ra.Set(b)
					row(b).Set(nb[i])
					fill++
				}
			}
		}
		eliminated.Set(v)
	}
	return fill
}

// fillInSparse plays the elimination game on degree-sized hash rows — the
// large-universe fallback, O(M + fill) memory.
func fillInSparse(g *graph.Graph, elim []int32) int {
	n := g.N()
	adj := make([]map[int32]struct{}, n)
	row := func(v int32) map[int32]struct{} {
		if adj[v] == nil {
			adj[v] = make(map[int32]struct{}, g.Degree(v))
			for _, w := range g.Neighbors(v) {
				adj[v][w] = struct{}{}
			}
		}
		return adj[v]
	}
	eliminated := make([]bool, n)
	fill := 0
	var nb []int32
	for _, v := range elim {
		nb = nb[:0]
		for w := range row(v) {
			if !eliminated[w] {
				//parsamplevet:ignore maporder nb feeds only the pairwise fill count below, which is order-insensitive (every unordered pair is visited exactly once regardless of nb's order)
				nb = append(nb, w)
			}
		}
		for i := 0; i < len(nb); i++ {
			ra := row(nb[i])
			for j := i + 1; j < len(nb); j++ {
				b := nb[j]
				if _, ok := ra[b]; !ok {
					ra[b] = struct{}{}
					row(b)[nb[i]] = struct{}{}
					fill++
				}
			}
		}
		eliminated[v] = true
	}
	return fill
}
