package chordal

import (
	"parsample/internal/graph"
)

// FillInCount measures how far g is from chordal: the number of fill edges
// added when eliminating vertices in reverse maximum-cardinality-search
// order (the classic elimination-game bound). It is 0 if and only if g is
// chordal, and grows with the number and length of chordless cycles — the
// quantitative version of the paper's "quasi-chordal subgraphs have a few
// large cycles across the partitions".
//
// Note this is an upper bound relative to the MCS order, not the (NP-hard)
// minimum fill-in; as a comparative diagnostic between two samplers on the
// same graph it is what we need.
func FillInCount(g *graph.Graph) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	order := MCSOrder(g)
	pos := graph.InversePerm(order)
	// Eliminate in reverse MCS order: process vertices by ascending pos in
	// the elimination ordering = reverse of MCS visit order.
	elim := reversed(order)

	// Working adjacency as sets for dynamic fill edges.
	adj := make([]map[int32]struct{}, n)
	for v := int32(0); int(v) < n; v++ {
		adj[v] = make(map[int32]struct{}, g.Degree(v))
		for _, w := range g.Neighbors(v) {
			adj[v][w] = struct{}{}
		}
	}
	eliminated := make([]bool, n)
	_ = pos
	fill := 0
	for _, v := range elim {
		// Higher (not yet eliminated) neighbors of v must form a clique;
		// count and add the missing edges.
		var nb []int32
		for w := range adj[v] {
			if !eliminated[w] {
				nb = append(nb, w)
			}
		}
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				a, b := nb[i], nb[j]
				if _, ok := adj[a][b]; !ok {
					adj[a][b] = struct{}{}
					adj[b][a] = struct{}{}
					fill++
				}
			}
		}
		eliminated[v] = true
	}
	return fill
}
