package ontology

import (
	"bytes"
	"testing"
)

func TestDAGRoundTrip(t *testing.T) {
	d := Generate(GenerateSpec{Depth: 6, Branch: 3, Seed: 9})
	var buf bytes.Buffer
	if err := WriteDAG(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDAG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumTerms() != d.NumTerms() || d2.MaxDepth() != d.MaxDepth() {
		t.Fatalf("round trip: %d terms depth %d, want %d terms depth %d",
			d2.NumTerms(), d2.MaxDepth(), d.NumTerms(), d.MaxDepth())
	}
	for tid := 0; tid < d.NumTerms(); tid++ {
		if d2.Depth(TermID(tid)) != d.Depth(TermID(tid)) {
			t.Fatalf("depth mismatch at term %d", tid)
		}
		if len(d2.Parents(TermID(tid))) != len(d.Parents(TermID(tid))) {
			t.Fatalf("parent count mismatch at term %d", tid)
		}
	}
}

func TestReadDAGErrors(t *testing.T) {
	for _, bad := range []string{
		"id: 0\n",                     // id outside term
		"[Term]\nid: 1\n",             // first id must be 0
		"[Term]\nid: x\n",             // bad id
		"[Term]\nid: 0\nis_a: y\n",    // bad parent
		"is_a: 0\n",                   // is_a outside term
		"[Term]\nid: 0\nwhat: ever\n", // unknown line
		"[Term]\nid: 0\n\n[Term]\nid: 1\nis_a: 5\n", // forward parent
	} {
		if _, err := ReadDAG(bytes.NewBufferString(bad)); err == nil {
			t.Fatalf("input %q: want error", bad)
		}
	}
}

func TestReadDAGSkipsComments(t *testing.T) {
	src := "! a comment\n[Term]\nid: 0\n\n[Term]\nid: 1\nis_a: 0\n"
	d, err := ReadDAG(bytes.NewBufferString(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTerms() != 2 || d.Depth(1) != 1 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestAnnotationsRoundTrip(t *testing.T) {
	a := NewAnnotations(5)
	a.Annotate(0, 3)
	a.Annotate(0, 1)
	a.Annotate(4, 2)
	var buf bytes.Buffer
	if err := WriteAnnotations(&buf, a); err != nil {
		t.Fatal(err)
	}
	a2, err := ReadAnnotations(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a2.NumGenes() != 5 {
		t.Fatalf("genes = %d", a2.NumGenes())
	}
	if len(a2.Terms(0)) != 2 || len(a2.Terms(4)) != 1 || len(a2.Terms(2)) != 0 {
		t.Fatal("terms mismatch after round trip")
	}
}

func TestReadAnnotationsWithoutHeader(t *testing.T) {
	a, err := ReadAnnotations(bytes.NewBufferString("0\t5\n3\t7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumGenes() != 4 {
		t.Fatalf("inferred genes = %d, want 4", a.NumGenes())
	}
}

func TestReadAnnotationsErrors(t *testing.T) {
	for _, bad := range []string{
		"0\n",
		"x\t1\n",
		"0\ty\n",
		"-1\t2\n",
		"# genes: 2\n5\t1\n",
	} {
		if _, err := ReadAnnotations(bytes.NewBufferString(bad)); err == nil {
			t.Fatalf("input %q: want error", bad)
		}
	}
}
