// Package ontology provides the Gene Ontology substrate used for the paper's
// orthogonal validation: a GO-like levelled DAG of functional terms, gene
// annotations, the Deepest Common Parent (DCP) of two genes' terms, term
// breadth (shortest path between terms), the resulting per-edge enrichment
// score (DCP depth − term breadth, Dempsey et al. 2011), and the Average
// Edge Enrichment Score (AEES) of a cluster.
//
// A synthetic generator substitutes for the real GO biological-process tree:
// it preserves the two properties the scoring depends on — term depth
// increases specificity, and functionally related genes share deep terms
// while unrelated genes share only shallow ancestors (see DESIGN.md).
package ontology

import (
	"fmt"
	"math/rand"
	"sort"
)

// TermID identifies a term in the DAG. The root is always term 0.
type TermID = int32

// DAG is a rooted directed acyclic graph of terms. Edges point from child to
// parent(s); the root has no parents. Depth is the distance from the root
// along the (primary) parent chain.
type DAG struct {
	parents  [][]TermID
	children [][]TermID
	depth    []int32
}

// NumTerms returns the number of terms, including the root.
func (d *DAG) NumTerms() int { return len(d.parents) }

// Depth returns the depth of term t (root = 0).
func (d *DAG) Depth(t TermID) int { return int(d.depth[t]) }

// Parents returns the parent terms of t (empty for the root).
func (d *DAG) Parents(t TermID) []TermID { return d.parents[t] }

// Children returns the child terms of t.
func (d *DAG) Children(t TermID) []TermID { return d.children[t] }

// MaxDepth returns the depth of the deepest term.
func (d *DAG) MaxDepth() int {
	mx := int32(0)
	for _, v := range d.depth {
		if v > mx {
			mx = v
		}
	}
	return int(mx)
}

// NewDAG builds a DAG from parent lists. parents[0] must be empty (root).
// Every parent id must be smaller than its child id (topological numbering),
// which guarantees acyclicity.
func NewDAG(parents [][]TermID) (*DAG, error) {
	if len(parents) == 0 {
		return nil, fmt.Errorf("ontology: empty DAG")
	}
	if len(parents[0]) != 0 {
		return nil, fmt.Errorf("ontology: root must have no parents")
	}
	d := &DAG{
		parents:  parents,
		children: make([][]TermID, len(parents)),
		depth:    make([]int32, len(parents)),
	}
	for t := 1; t < len(parents); t++ {
		if len(parents[t]) == 0 {
			return nil, fmt.Errorf("ontology: term %d has no parents and is not the root", t)
		}
		minDepth := int32(-1)
		for _, p := range parents[t] {
			if int(p) >= t || p < 0 {
				return nil, fmt.Errorf("ontology: term %d has invalid parent %d (need parent < child)", t, p)
			}
			d.children[p] = append(d.children[p], TermID(t))
			if minDepth < 0 || d.depth[p]+1 < minDepth {
				minDepth = d.depth[p] + 1
			}
		}
		d.depth[t] = minDepth
	}
	return d, nil
}

// Ancestors returns the set of ancestors of t (including t itself).
func (d *DAG) Ancestors(t TermID) map[TermID]bool {
	out := map[TermID]bool{t: true}
	stack := []TermID{t}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range d.parents[v] {
			if !out[p] {
				out[p] = true
				stack = append(stack, p)
			}
		}
	}
	return out
}

// DeepestCommonParent returns the deepest term that is an ancestor of both
// t1 and t2 (possibly one of them), and its depth. The root is a common
// ancestor of everything, so a result always exists. Equal-depth candidates
// tie-break on the smallest term id — map iteration order must not leak
// into the result (the determinism contract: every pipeline artifact is a
// pure function of its inputs, and DominantTerm flows into Figure 9/11
// output).
func (d *DAG) DeepestCommonParent(t1, t2 TermID) (TermID, int) {
	a1 := d.Ancestors(t1)
	best := TermID(0)
	bestDepth := -1
	for a := range d.Ancestors(t2) {
		if !a1[a] {
			continue
		}
		depth := int(d.depth[a])
		if depth > bestDepth || (depth == bestDepth && a < best) {
			best, bestDepth = a, depth
		}
	}
	return best, bestDepth
}

// TermDistance returns the length of the shortest path between t1 and t2 in
// the DAG viewed as an undirected graph (the paper's "term breadth").
func (d *DAG) TermDistance(t1, t2 TermID) int {
	if t1 == t2 {
		return 0
	}
	dist := make(map[TermID]int, 64)
	dist[t1] = 0
	queue := []TermID{t1}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		next := dist[v] + 1
		for _, lists := range [2][]TermID{d.parents[v], d.children[v]} {
			for _, w := range lists {
				if _, ok := dist[w]; !ok {
					if w == t2 {
						return next
					}
					dist[w] = next
					queue = append(queue, w)
				}
			}
		}
	}
	return -1 // unreachable: DAG is rooted, so this cannot happen
}

// Annotations maps genes to their GO terms.
type Annotations struct {
	terms [][]TermID
}

// NewAnnotations creates an annotation table for n genes.
func NewAnnotations(n int) *Annotations {
	return &Annotations{terms: make([][]TermID, n)}
}

// Annotate adds term t to gene g (duplicates are ignored).
func (a *Annotations) Annotate(g int32, t TermID) {
	for _, x := range a.terms[g] {
		if x == t {
			return
		}
	}
	a.terms[g] = append(a.terms[g], t)
}

// Terms returns the terms of gene g.
func (a *Annotations) Terms(g int32) []TermID { return a.terms[g] }

// NumGenes returns the number of genes in the table.
func (a *Annotations) NumGenes() int { return len(a.terms) }

// EdgeScore computes the enrichment score of the edge (g1, g2): over all
// annotation term pairs, the maximum of DCP depth − term breadth. The edge's
// annotating term is the DCP achieving the maximum. Returns score 0 and the
// root term when either gene is unannotated.
func EdgeScore(d *DAG, a *Annotations, g1, g2 int32) (score int, dcp TermID) {
	t1s, t2s := a.Terms(g1), a.Terms(g2)
	if len(t1s) == 0 || len(t2s) == 0 {
		return 0, 0
	}
	best := -1 << 30
	bestTerm := TermID(0)
	for _, t1 := range t1s {
		for _, t2 := range t2s {
			cp, depth := d.DeepestCommonParent(t1, t2)
			s := depth - d.TermDistance(t1, t2)
			if s > best {
				best, bestTerm = s, cp
			}
		}
	}
	return best, bestTerm
}

// ClusterScore is the edge-enrichment summary of one cluster.
type ClusterScore struct {
	AEES          float64 // average edge enrichment score
	MaxEdgeScore  int     // deepest single edge score ("Max Score" in Fig 11)
	DominantTerm  TermID  // most frequent DCP among the cluster's edges
	DominantCount int     // how many edges share the dominant term
	Edges         int
}

// ScoreCluster annotates and scores every edge among the cluster's vertices
// (using the host graph for adjacency) and returns the cluster summary. The
// AEES of an edgeless cluster is 0.
func ScoreCluster(d *DAG, a *Annotations, hasEdge func(u, v int32) bool, vertices []int32) ClusterScore {
	var cs ClusterScore
	termCount := map[TermID]int{}
	sum := 0
	cs.MaxEdgeScore = -1 << 30
	for i := 0; i < len(vertices); i++ {
		for j := i + 1; j < len(vertices); j++ {
			u, v := vertices[i], vertices[j]
			if !hasEdge(u, v) {
				continue
			}
			s, dcp := EdgeScore(d, a, u, v)
			sum += s
			cs.Edges++
			termCount[dcp]++
			if s > cs.MaxEdgeScore {
				cs.MaxEdgeScore = s
			}
		}
	}
	if cs.Edges == 0 {
		cs.MaxEdgeScore = 0
		return cs
	}
	cs.AEES = float64(sum) / float64(cs.Edges)
	// Deterministic dominant-term selection: highest count, lowest id.
	type tc struct {
		t TermID
		c int
	}
	all := make([]tc, 0, len(termCount))
	for t, c := range termCount {
		all = append(all, tc{t, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].t < all[j].t
	})
	cs.DominantTerm = all[0].t
	cs.DominantCount = all[0].c
	return cs
}

// GenerateSpec configures the synthetic GO-like DAG.
type GenerateSpec struct {
	Depth        int     // number of levels below the root (default 10)
	Branch       int     // children per term at each level (default 3)
	CrossLinkPct float64 // fraction of terms given a second parent (default 0.1)
	Seed         int64
}

// Generate builds a synthetic levelled DAG. Level 0 is the root; each term
// at level l+1 has a primary parent at level l and, with probability
// CrossLinkPct, an extra parent at level ≤ l.
func Generate(spec GenerateSpec) *DAG {
	if spec.Depth <= 0 {
		spec.Depth = 10
	}
	if spec.Branch <= 0 {
		spec.Branch = 3
	}
	if spec.CrossLinkPct == 0 {
		spec.CrossLinkPct = 0.1
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	parents := [][]TermID{{}}
	levels := [][]TermID{{0}}
	// Cap per-level growth so deep DAGs stay small.
	const maxPerLevel = 256
	for l := 1; l <= spec.Depth; l++ {
		prev := levels[l-1]
		var cur []TermID
		want := len(prev) * spec.Branch
		if want > maxPerLevel {
			want = maxPerLevel
		}
		for i := 0; i < want; i++ {
			id := TermID(len(parents))
			p := prev[rng.Intn(len(prev))]
			ps := []TermID{p}
			if rng.Float64() < spec.CrossLinkPct {
				// Second parent from any earlier level.
				lv := rng.Intn(l)
				cand := levels[lv][rng.Intn(len(levels[lv]))]
				if cand != p {
					ps = append(ps, cand)
				}
			}
			sort.Slice(ps, func(a, b int) bool { return ps[a] < ps[b] })
			parents = append(parents, ps)
			cur = append(cur, id)
		}
		levels = append(levels, cur)
	}
	d, err := NewDAG(parents)
	if err != nil {
		panic("ontology: generator produced invalid DAG: " + err.Error())
	}
	return d
}

// LeafAtDepth returns some term at exactly the given depth (the first found),
// or the deepest term if none is that deep.
func (d *DAG) LeafAtDepth(depth int, rng *rand.Rand) TermID {
	var at []TermID
	for t := 0; t < d.NumTerms(); t++ {
		if int(d.depth[t]) == depth {
			at = append(at, TermID(t))
		}
	}
	if len(at) == 0 {
		best := TermID(0)
		for t := 0; t < d.NumTerms(); t++ {
			if d.depth[t] > d.depth[best] {
				best = TermID(t)
			}
		}
		return best
	}
	return at[rng.Intn(len(at))]
}

// AnnotateModules builds gene annotations where each planted module shares a
// deep "module term" (members get the term itself or one of its children),
// and every other gene receives 1–2 random shallow terms. This reproduces the
// property the paper's validation relies on: real co-expression clusters are
// enriched for deep common ancestry, noise clusters are not.
func AnnotateModules(d *DAG, numGenes int, modules [][]int32, moduleDepth int, seed int64) *Annotations {
	rng := rand.New(rand.NewSource(seed))
	a := NewAnnotations(numGenes)
	annotated := make([]bool, numGenes)
	for _, mod := range modules {
		mt := d.LeafAtDepth(moduleDepth, rng)
		kids := d.Children(mt)
		for _, g := range mod {
			// Module term or one of its children: DCP of any member pair is
			// at least mt (deep), breadth ≤ 2.
			t := mt
			if len(kids) > 0 && rng.Float64() < 0.5 {
				t = kids[rng.Intn(len(kids))]
			}
			a.Annotate(g, t)
			annotated[g] = true
		}
	}
	// Background genes: shallow random terms (depth ≤ 3).
	var shallow []TermID
	for t := 0; t < d.NumTerms(); t++ {
		if d.Depth(TermID(t)) <= 3 {
			shallow = append(shallow, TermID(t))
		}
	}
	for g := 0; g < numGenes; g++ {
		if annotated[g] {
			continue
		}
		k := 1 + rng.Intn(2)
		for i := 0; i < k; i++ {
			a.Annotate(int32(g), shallow[rng.Intn(len(shallow))])
		}
	}
	return a
}
