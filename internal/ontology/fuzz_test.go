package ontology

import (
	"bytes"
	"testing"
)

// FuzzReadDAG: the OBO-flavored parser must never panic, and any accepted
// DAG must round-trip through WriteDAG.
func FuzzReadDAG(f *testing.F) {
	f.Add("[Term]\nid: 0\n\n[Term]\nid: 1\nis_a: 0\n")
	f.Add("")
	f.Add("! comment\n[Term]\nid: 0\n")
	f.Add("[Term]\nid: 0\nis_a: 0\n")
	f.Add("[Term]\nid: 7\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadDAG(bytes.NewBufferString(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDAG(&buf, d); err != nil {
			t.Fatalf("write after read: %v", err)
		}
		d2, err := ReadDAG(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if d2.NumTerms() != d.NumTerms() {
			t.Fatal("round trip changed term count")
		}
	})
}

// FuzzReadAnnotations: same contract for the association-file parser.
func FuzzReadAnnotations(f *testing.F) {
	f.Add("# genes: 3\n0\t1\n2\t5\n")
	f.Add("0\t0\n")
	f.Add("")
	f.Add("#\n")
	f.Fuzz(func(t *testing.T, input string) {
		a, err := ReadAnnotations(bytes.NewBufferString(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteAnnotations(&buf, a); err != nil {
			t.Fatalf("write after read: %v", err)
		}
		if _, err := ReadAnnotations(&buf); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
	})
}
