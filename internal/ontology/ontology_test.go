package ontology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// chain builds a path DAG root->1->2->...->n-1.
func chain(n int) *DAG {
	parents := make([][]TermID, n)
	for i := 1; i < n; i++ {
		parents[i] = []TermID{TermID(i - 1)}
	}
	d, err := NewDAG(parents)
	if err != nil {
		panic(err)
	}
	return d
}

// smallTree:       0
//
//	   / \
//	  1   2
//	 / \   \
//	3   4   5
//	   /
//	  6
func smallTree(t *testing.T) *DAG {
	t.Helper()
	d, err := NewDAG([][]TermID{
		{}, {0}, {0}, {1}, {1}, {2}, {4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDAGValidation(t *testing.T) {
	if _, err := NewDAG(nil); err == nil {
		t.Fatal("empty DAG accepted")
	}
	if _, err := NewDAG([][]TermID{{1}}); err == nil {
		t.Fatal("root with parent accepted")
	}
	if _, err := NewDAG([][]TermID{{}, {}}); err == nil {
		t.Fatal("orphan non-root accepted")
	}
	if _, err := NewDAG([][]TermID{{}, {2}, {0}}); err == nil {
		t.Fatal("forward parent reference accepted")
	}
}

func TestDepths(t *testing.T) {
	d := smallTree(t)
	want := []int{0, 1, 1, 2, 2, 2, 3}
	for tid, w := range want {
		if d.Depth(TermID(tid)) != w {
			t.Fatalf("depth(%d) = %d, want %d", tid, d.Depth(TermID(tid)), w)
		}
	}
	if d.MaxDepth() != 3 {
		t.Fatalf("max depth = %d", d.MaxDepth())
	}
}

func TestMultiParentDepthIsMin(t *testing.T) {
	// Term 3 has parents at depth 0 and 1; depth = 1 (min+1).
	d, err := NewDAG([][]TermID{{}, {0}, {1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Depth(3) != 1 {
		t.Fatalf("multi-parent depth = %d, want 1", d.Depth(3))
	}
}

func TestAncestors(t *testing.T) {
	d := smallTree(t)
	anc := d.Ancestors(6)
	for _, want := range []TermID{6, 4, 1, 0} {
		if !anc[want] {
			t.Fatalf("ancestors(6) missing %d", want)
		}
	}
	if len(anc) != 4 {
		t.Fatalf("ancestors(6) = %v", anc)
	}
}

func TestDeepestCommonParent(t *testing.T) {
	d := smallTree(t)
	cases := []struct {
		t1, t2    TermID
		wantTerm  TermID
		wantDepth int
	}{
		{3, 4, 1, 1}, // siblings under 1
		{3, 6, 1, 1}, // 6 under 4 under 1
		{3, 5, 0, 0}, // different subtrees: root
		{4, 6, 4, 2}, // ancestor relationship: DCP is the ancestor
		{6, 6, 6, 3}, // same term
	}
	for _, c := range cases {
		got, depth := d.DeepestCommonParent(c.t1, c.t2)
		if got != c.wantTerm || depth != c.wantDepth {
			t.Fatalf("DCP(%d,%d) = (%d,%d), want (%d,%d)", c.t1, c.t2, got, depth, c.wantTerm, c.wantDepth)
		}
	}
}

func TestTermDistance(t *testing.T) {
	d := smallTree(t)
	cases := []struct {
		t1, t2 TermID
		want   int
	}{
		{6, 6, 0},
		{6, 4, 1},
		{3, 4, 2},
		{3, 5, 4}, // 3-1-0-2-5
		{6, 3, 3}, // 6-4-1-3
	}
	for _, c := range cases {
		if got := d.TermDistance(c.t1, c.t2); got != c.want {
			t.Fatalf("dist(%d,%d) = %d, want %d", c.t1, c.t2, got, c.want)
		}
	}
}

func TestAnnotations(t *testing.T) {
	a := NewAnnotations(3)
	a.Annotate(0, 5)
	a.Annotate(0, 5) // duplicate ignored
	a.Annotate(0, 7)
	if len(a.Terms(0)) != 2 {
		t.Fatalf("terms = %v", a.Terms(0))
	}
	if a.NumGenes() != 3 {
		t.Fatal("NumGenes wrong")
	}
	if len(a.Terms(1)) != 0 {
		t.Fatal("gene 1 should be unannotated")
	}
}

func TestEdgeScore(t *testing.T) {
	d := smallTree(t)
	a := NewAnnotations(4)
	a.Annotate(0, 3)
	a.Annotate(1, 4)
	a.Annotate(2, 5)
	// genes 0,1 share DCP 1 (depth 1), breadth dist(3,4)=2 → score -1.
	s, dcp := EdgeScore(d, a, 0, 1)
	if s != -1 || dcp != 1 {
		t.Fatalf("score = %d dcp = %d", s, dcp)
	}
	// genes 0,2: DCP root (0), dist(3,5)=4 → -4.
	if s, _ := EdgeScore(d, a, 0, 2); s != -4 {
		t.Fatalf("score = %d, want -4", s)
	}
	// Unannotated gene: score 0.
	if s, _ := EdgeScore(d, a, 0, 3); s != 0 {
		t.Fatalf("unannotated score = %d", s)
	}
}

func TestEdgeScoreSameDeepTerm(t *testing.T) {
	d := chain(8)
	a := NewAnnotations(2)
	a.Annotate(0, 7)
	a.Annotate(1, 7)
	// Identical deep terms: DCP depth 7, breadth 0 → +7.
	if s, dcp := EdgeScore(d, a, 0, 1); s != 7 || dcp != 7 {
		t.Fatalf("score = %d dcp = %d", s, dcp)
	}
}

func TestEdgeScorePicksBestPair(t *testing.T) {
	d := chain(6)
	a := NewAnnotations(2)
	a.Annotate(0, 1) // shallow
	a.Annotate(0, 5) // deep
	a.Annotate(1, 5)
	// Pair (5,5) scores 5; pair (1,5) scores 1-4=-3. Max wins.
	if s, _ := EdgeScore(d, a, 0, 1); s != 5 {
		t.Fatalf("score = %d, want 5", s)
	}
}

func TestScoreCluster(t *testing.T) {
	d := chain(6)
	a := NewAnnotations(3)
	for g := int32(0); g < 3; g++ {
		a.Annotate(g, 5)
	}
	full := func(u, v int32) bool { return true }
	cs := ScoreCluster(d, a, full, []int32{0, 1, 2})
	if cs.Edges != 3 {
		t.Fatalf("edges = %d", cs.Edges)
	}
	if cs.AEES != 5 {
		t.Fatalf("AEES = %v, want 5", cs.AEES)
	}
	if cs.DominantTerm != 5 || cs.DominantCount != 3 {
		t.Fatalf("dominant = %d ×%d", cs.DominantTerm, cs.DominantCount)
	}
	if cs.MaxEdgeScore != 5 {
		t.Fatalf("max = %d", cs.MaxEdgeScore)
	}
}

func TestScoreClusterNoEdges(t *testing.T) {
	d := chain(3)
	a := NewAnnotations(2)
	none := func(u, v int32) bool { return false }
	cs := ScoreCluster(d, a, none, []int32{0, 1})
	if cs.Edges != 0 || cs.AEES != 0 || cs.MaxEdgeScore != 0 {
		t.Fatalf("empty cluster score: %+v", cs)
	}
}

func TestGenerateShape(t *testing.T) {
	d := Generate(GenerateSpec{Depth: 8, Branch: 3, Seed: 1})
	if d.MaxDepth() != 8 {
		t.Fatalf("max depth = %d, want 8", d.MaxDepth())
	}
	if d.NumTerms() < 50 {
		t.Fatalf("only %d terms", d.NumTerms())
	}
	// All terms reachable from root (rooted DAG property): ancestors of any
	// term include the root.
	for tid := 0; tid < d.NumTerms(); tid++ {
		if !d.Ancestors(TermID(tid))[0] {
			t.Fatalf("term %d not rooted", tid)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenerateSpec{Depth: 6, Branch: 3, Seed: 42})
	b := Generate(GenerateSpec{Depth: 6, Branch: 3, Seed: 42})
	if a.NumTerms() != b.NumTerms() {
		t.Fatal("generator not deterministic")
	}
}

func TestLeafAtDepth(t *testing.T) {
	d := smallTree(t)
	rng := rand.New(rand.NewSource(1))
	if got := d.LeafAtDepth(2, rng); d.Depth(got) != 2 {
		t.Fatalf("LeafAtDepth(2) gave depth %d", d.Depth(got))
	}
	// Requesting deeper than max returns the deepest term.
	if got := d.LeafAtDepth(99, rng); d.Depth(got) != d.MaxDepth() {
		t.Fatal("deep request should fall back to deepest term")
	}
}

func TestAnnotateModulesSeparatesSignalFromNoise(t *testing.T) {
	d := Generate(GenerateSpec{Depth: 10, Branch: 3, Seed: 7})
	modules := [][]int32{{0, 1, 2, 3, 4}, {5, 6, 7, 8}}
	a := AnnotateModules(d, 50, modules, 8, 3)
	full := func(u, v int32) bool { return true }
	modScore := ScoreCluster(d, a, full, modules[0])
	bg := []int32{20, 21, 22, 23, 24}
	bgScore := ScoreCluster(d, a, full, bg)
	if modScore.AEES <= bgScore.AEES {
		t.Fatalf("module AEES %v not above background AEES %v", modScore.AEES, bgScore.AEES)
	}
	if modScore.AEES < 3 {
		t.Fatalf("module AEES %v too low (want ≥ 3, 'biologically relevant')", modScore.AEES)
	}
	if bgScore.AEES > 2 {
		t.Fatalf("background AEES %v too high", bgScore.AEES)
	}
}

// Property: the DCP is an ancestor of both terms with non-negative depth
// (the root is always a fallback), its depth equals the reported depth, and
// term distance is symmetric and bounded by the path through the DCP.
// (Note: in a multi-parent DAG with min-depth convention the DCP *can* be
// deeper than one of the terms, so that is deliberately not asserted.)
func TestDCPQuick(t *testing.T) {
	d := Generate(GenerateSpec{Depth: 7, Branch: 3, Seed: 11})
	n := int32(d.NumTerms())
	f := func(x, y uint16) bool {
		t1 := TermID(int32(x) % n)
		t2 := TermID(int32(y) % n)
		cp, depth := d.DeepestCommonParent(t1, t2)
		if depth < 0 || d.Depth(cp) != depth {
			return false
		}
		if !d.Ancestors(t1)[cp] || !d.Ancestors(t2)[cp] {
			return false
		}
		dist := d.TermDistance(t1, t2)
		if dist != d.TermDistance(t2, t1) {
			return false
		}
		// Shortest path is no longer than going through the DCP.
		viaDCP := d.TermDistance(t1, cp) + d.TermDistance(cp, t2)
		return dist <= viaDCP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
