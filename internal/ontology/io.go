package ontology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteDAG serializes the DAG in a minimal OBO-flavored flat format:
//
//	[Term]
//	id: 5
//	is_a: 1
//	is_a: 2
//
// Terms are written in id order; the root (id 0) carries no is_a lines.
func WriteDAG(w io.Writer, d *DAG) error {
	bw := bufio.NewWriter(w)
	for t := 0; t < d.NumTerms(); t++ {
		if _, err := fmt.Fprintf(bw, "[Term]\nid: %d\n", t); err != nil {
			return err
		}
		ps := append([]TermID(nil), d.Parents(TermID(t))...)
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		for _, p := range ps {
			if _, err := fmt.Fprintf(bw, "is_a: %d\n", p); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDAG parses the format written by WriteDAG. Term ids must be dense and
// in increasing order starting at 0.
func ReadDAG(r io.Reader) (*DAG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var parents [][]TermID
	cur := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "!"):
			continue
		case line == "[Term]":
			cur = -2 // term open, id pending
		case strings.HasPrefix(line, "id: "):
			if cur != -2 {
				return nil, fmt.Errorf("ontology: line %d: id outside [Term]", lineNo)
			}
			id, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				return nil, fmt.Errorf("ontology: line %d: bad id: %v", lineNo, err)
			}
			if id != len(parents) {
				return nil, fmt.Errorf("ontology: line %d: term id %d out of order (want %d)", lineNo, id, len(parents))
			}
			parents = append(parents, nil)
			cur = id
		case strings.HasPrefix(line, "is_a: "):
			if cur < 0 {
				return nil, fmt.Errorf("ontology: line %d: is_a outside a term", lineNo)
			}
			p, err := strconv.Atoi(strings.TrimPrefix(line, "is_a: "))
			if err != nil {
				return nil, fmt.Errorf("ontology: line %d: bad is_a: %v", lineNo, err)
			}
			parents[cur] = append(parents[cur], TermID(p))
		default:
			return nil, fmt.Errorf("ontology: line %d: unrecognized line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewDAG(parents)
}

// WriteAnnotations serializes annotations as "gene<TAB>term" pairs (a GAF-
// style two-column association file).
func WriteAnnotations(w io.Writer, a *Annotations) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# genes: %d\n", a.NumGenes()); err != nil {
		return err
	}
	for g := 0; g < a.NumGenes(); g++ {
		ts := append([]TermID(nil), a.Terms(int32(g))...)
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		for _, t := range ts {
			if _, err := fmt.Fprintf(bw, "%d\t%d\n", g, t); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadAnnotations parses the format written by WriteAnnotations. The
// "# genes: N" header fixes the table size; without it, N is one more than
// the largest gene id seen.
func ReadAnnotations(r io.Reader) (*Annotations, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	n := -1
	type pair struct {
		g int32
		t TermID
	}
	var pairs []pair
	maxG := int32(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if n < 0 {
				f := strings.Fields(line)
				if len(f) >= 3 && f[1] == "genes:" {
					if v, err := strconv.Atoi(f[2]); err == nil {
						n = v
					}
				}
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			return nil, fmt.Errorf("ontology: line %d: want 'gene term', got %q", lineNo, line)
		}
		g, err := strconv.ParseInt(f[0], 10, 32)
		if err != nil || g < 0 {
			return nil, fmt.Errorf("ontology: line %d: bad gene %q", lineNo, f[0])
		}
		t, err := strconv.ParseInt(f[1], 10, 32)
		if err != nil || t < 0 {
			return nil, fmt.Errorf("ontology: line %d: bad term %q", lineNo, f[1])
		}
		pairs = append(pairs, pair{int32(g), TermID(t)})
		if int32(g) > maxG {
			maxG = int32(g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = int(maxG) + 1
	}
	if int(maxG) >= n {
		return nil, fmt.Errorf("ontology: gene id %d out of declared range %d", maxG, n)
	}
	a := NewAnnotations(n)
	for _, p := range pairs {
		a.Annotate(p.g, p.t)
	}
	return a, nil
}
