package expr

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// diffMatrices builds the matrix zoo for the differential suites: a
// modular synthetic (near-threshold coefficients on both signs), a small
// dense-noise matrix (coefficients spread across [-1, 1], so loose
// thresholds land many pairs near the cut), and a matrix with planted
// degenerate rows (constant, i.e. zero variance).
func diffMatrices(t *testing.T) map[string]*Matrix {
	t.Helper()
	mats := make(map[string]*Matrix)

	syn, err := Synthesize(SyntheticSpec{Genes: 160, Samples: 24, Modules: 4, ModuleSize: 10, Noise: 0.3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	mats["modules"] = syn.M

	rng := rand.New(rand.NewSource(99))
	noisy := NewMatrix(90, 10)
	for g := 0; g < noisy.Genes; g++ {
		for s := 0; s < noisy.Samples; s++ {
			noisy.Set(g, s, rng.NormFloat64())
		}
	}
	mats["noise"] = noisy

	degen, err := Synthesize(SyntheticSpec{Genes: 80, Samples: 16, Modules: 2, ModuleSize: 8, Noise: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < degen.M.Samples; s++ {
		degen.M.Set(5, s, 4.0) // constant row
		degen.M.Set(41, s, 0)  // all-zero row
	}
	mats["degenerate"] = degen.M

	return mats
}

// diffOptions is the admission-rule zoo: the paper's tight cut, loose
// cuts that put many coefficients near the threshold, negative gating,
// and Spearman (rank ties from the degenerate rows included).
func diffOptions() map[string]NetworkOptions {
	return map[string]NetworkOptions{
		"paper":         {Kind: PearsonCorr, MinAbsR: 0.95, MaxP: 0.0005},
		"loose":         {Kind: PearsonCorr, MinAbsR: 0.3, MaxP: 0.2},
		"negative":      {Kind: PearsonCorr, MinAbsR: 0.5, MaxP: 0.1, Negative: true},
		"spearman":      {Kind: SpearmanCorr, MinAbsR: 0.6, MaxP: 0.05},
		"spearman-neg":  {Kind: SpearmanCorr, MinAbsR: 0.4, MaxP: 0.2, Negative: true},
		"p-only":        {Kind: PearsonCorr, MinAbsR: 0, MaxP: 0.001},
		"dense-allpass": {Kind: PearsonCorr, MinAbsR: 0, MaxP: 1},
	}
}

// TestFloat32EdgeSetsByteIdenticalToFloat64 is the float32 engine's
// contract: for every matrix, statistic, sign gate and threshold in the
// zoo, and on every available kernel ISA, the Float32 engine returns the
// exact []ScoredEdge of the Float64 engine — same pairs, same
// coefficients, bit for bit. The recheck band makes this hold by
// construction; this test is the empirical pin.
func TestFloat32EdgeSetsByteIdenticalToFloat64(t *testing.T) {
	mats := diffMatrices(t)
	withKernelISA(t, func(t *testing.T) {
		for mname, m := range mats {
			for oname, opts := range diffOptions() {
				opts.Workers = 3
				opts.Precision = Float64
				want := CorrelatedPairs(m, opts)
				opts.Precision = Float32
				got := CorrelatedPairs(m, opts)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s: float32 edge set diverges: %d edges vs %d", mname, oname, len(got), len(want))
				}
			}
		}
	})
}

// TestBatchSweepMatchesIndependentSweeps is the batched-sweep property
// test: one BatchCorrelatedPairsContext pass over k specs returns exactly
// what k independent CorrelatedPairs runs return, per spec, in both
// precisions and on every ISA.
func TestBatchSweepMatchesIndependentSweeps(t *testing.T) {
	mats := diffMatrices(t)
	specsOpts := []NetworkOptions{
		{Kind: PearsonCorr, MinAbsR: 0.95, MaxP: 0.0005},
		{Kind: PearsonCorr, MinAbsR: 0.8, MaxP: 0.01},
		{Kind: PearsonCorr, MinAbsR: 0.5, MaxP: 0.1, Negative: true},
		{Kind: PearsonCorr, MinAbsR: 0.3, MaxP: 0.5},
		{Kind: PearsonCorr, MinAbsR: 0, MaxP: 0.9}, // dense spec drags the whole batch onto the dense path
	}
	specs := make([]SweepSpec, len(specsOpts))
	for i, o := range specsOpts {
		specs[i] = o.SweepSpec()
	}
	withKernelISA(t, func(t *testing.T) {
		for _, prec := range []Precision{Float64, Float32} {
			for mname, m := range mats {
				base := NetworkOptions{Kind: PearsonCorr, Workers: 2, Precision: prec}
				outs, err := BatchCorrelatedPairsContext(context.Background(), m, base, specs)
				if err != nil {
					t.Fatal(err)
				}
				if len(outs) != len(specs) {
					t.Fatalf("%s/%s: got %d outputs for %d specs", mname, prec, len(outs), len(specs))
				}
				for i, o := range specsOpts {
					o.Workers = 2
					o.Precision = prec
					want := CorrelatedPairs(m, o)
					if !reflect.DeepEqual(outs[i], want) {
						t.Errorf("%s/%s spec %d: batched sweep diverges from independent sweep (%d vs %d edges)",
							mname, prec, i, len(outs[i]), len(want))
					}
				}
			}
		}
	})
}

// TestBatchBuildNetworksMatchesBuildNetwork pins the graph-level form the
// pipeline coalescer consumes.
func TestBatchBuildNetworksMatchesBuildNetwork(t *testing.T) {
	syn, err := Synthesize(SyntheticSpec{Genes: 200, Samples: 20, Modules: 3, ModuleSize: 12, Noise: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	specsOpts := []NetworkOptions{
		{Kind: SpearmanCorr, MinAbsR: 0.9, MaxP: 0.001},
		{Kind: SpearmanCorr, MinAbsR: 0.7, MaxP: 0.05, Negative: true},
	}
	specs := []SweepSpec{specsOpts[0].SweepSpec(), specsOpts[1].SweepSpec()}
	base := NetworkOptions{Kind: SpearmanCorr, Precision: Float32}
	gs, err := BatchBuildNetworksContext(context.Background(), syn.M, base, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range specsOpts {
		o.Precision = Float64
		want := BuildNetwork(syn.M, o)
		if !reflect.DeepEqual(gs[i], want) {
			t.Errorf("spec %d: batched network differs from BuildNetwork (%d vs %d edges)", i, gs[i].M(), want.M())
		}
	}
}

// TestBatchSweepCancellation: a cancelled batch returns ctx.Err() and no
// partial results.
func TestBatchSweepCancellation(t *testing.T) {
	syn, err := Synthesize(SyntheticSpec{Genes: 400, Samples: 32, Modules: 2, ModuleSize: 20, Noise: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs, err := BatchCorrelatedPairsContext(ctx, syn.M, NetworkOptions{}, []SweepSpec{{MinAbsR: 0.5, MaxP: 1}})
	if err == nil || outs != nil {
		t.Fatalf("cancelled batch: outs=%v err=%v, want nil + error", outs, err)
	}
}

// TestCorrelatedPairsFloat32Deterministic mirrors the engine's Workers
// determinism pin for the float32 path.
func TestCorrelatedPairsFloat32Deterministic(t *testing.T) {
	syn, err := Synthesize(SyntheticSpec{Genes: 300, Samples: 18, Modules: 3, ModuleSize: 15, Noise: 0.3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var ref []ScoredEdge
	for i, workers := range []int{1, 2, 3, 7} {
		opts := NetworkOptions{MinAbsR: 0.4, MaxP: 0.3, Workers: workers, Precision: Float32, Negative: true}
		got := CorrelatedPairs(syn.M, opts)
		if i == 0 {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: edge set differs from workers=1", workers)
		}
	}
	if len(ref) == 0 {
		t.Fatal("determinism test admitted no edges; thresholds too tight to be meaningful")
	}
}

// TestPrecisionString covers the names used in api wiring and BENCH json.
func TestPrecisionString(t *testing.T) {
	for _, tc := range []struct {
		p    Precision
		want string
	}{{Float64, "float64"}, {Float32, "float32"}} {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("Precision(%d).String() = %q, want %q", tc.p, got, tc.want)
		}
	}
	if got := fmt.Sprint(Float32); got != "float32" {
		t.Errorf("fmt.Sprint(Float32) = %q", got)
	}
}
