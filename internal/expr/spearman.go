package expr

import (
	"math"
	"sort"
)

// Spearman returns the Spearman rank correlation coefficient of x and y —
// the Pearson correlation of their (average-tied) ranks. Rank correlation is
// the standard robust alternative for microarray data with outliers or
// non-linear monotone relationships. Returns 0 on length mismatch, fewer
// than two samples, or zero rank variance.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	return Pearson(rankVector(x), rankVector(y))
}

// rankVector assigns 1-based average ranks with tie handling.
func rankVector(x []float64) []float64 {
	out := make([]float64, len(x))
	var rk ranker
	rk.rankInto(out, x)
	return out
}

// ranker computes average-tied ranks into caller-provided storage, reusing
// its index scratch across calls so per-row rank transforms (the Spearman
// standardization pass) stay allocation-cheap. Not safe for concurrent use.
type ranker struct {
	idx []int
}

// rankInto writes the 1-based average-tied ranks of x into dst, which must
// not alias x (tie groups are detected by re-reading x while dst is being
// written). len(dst) must equal len(x).
func (rk *ranker) rankInto(dst []float64, x []float64) {
	n := len(x)
	if cap(rk.idx) < n {
		rk.idx = make([]int, n)
	}
	idx := rk.idx[:n]
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			dst[idx[k]] = avg
		}
		i = j + 1
	}
}

// CorrelationKind selects the correlation statistic for network building.
type CorrelationKind int

const (
	// PearsonCorr uses Pearson's product-moment correlation (the paper's
	// choice).
	PearsonCorr CorrelationKind = iota
	// SpearmanCorr uses Spearman rank correlation.
	SpearmanCorr
)

// String names the correlation statistic.
func (k CorrelationKind) String() string {
	if k == SpearmanCorr {
		return "spearman"
	}
	return "pearson"
}

// Correlate computes the selected correlation of two expression profiles.
func Correlate(kind CorrelationKind, x, y []float64) float64 {
	if kind == SpearmanCorr {
		return Spearman(x, y)
	}
	return Pearson(x, y)
}

// FisherZ returns the Fisher z-transform of a correlation coefficient,
// atanh(r), useful for comparing or averaging correlations. Returns ±Inf at
// r = ±1.
func FisherZ(r float64) float64 { return math.Atanh(r) }

// FisherZInv inverts FisherZ.
func FisherZInv(z float64) float64 { return math.Tanh(z) }
