//go:build !amd64

package expr

// Non-amd64 builds always use the portable block kernels; the stubs below
// exist only to satisfy the dispatch sites and are unreachable while
// useAVXKernels is false.

var useAVXKernels = false

func x86HasAVX2FMA() bool { return false }

func dot4F64AVX(a, b0, b1, b2, b3 *float64, n int, out *[4]float64) {
	panic("expr: dot4F64AVX unavailable on this architecture")
}

func dot4F32AVX(a, b0, b1, b2, b3 *float32, n int, out *[4]float32) {
	panic("expr: dot4F32AVX unavailable on this architecture")
}
