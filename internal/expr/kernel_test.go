package expr

import (
	"math"
	"math/rand"
	"testing"
)

// withKernelISA runs f once per available block-kernel implementation
// (generic always; AVX2+FMA when this machine has it), restoring the
// detected default afterwards. Differential coverage of both paths is what
// lets CI on any machine vouch for the other.
func withKernelISA(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	saved := useAVXKernels
	defer func() { useAVXKernels = saved }()
	useAVXKernels = false
	t.Run("generic", f)
	if saved {
		useAVXKernels = true
		t.Run("avx2-fma", f)
	}
}

// randRows builds one probe row and four partner rows of width n, with a
// float32 shadow of each.
func randRows(rng *rand.Rand, n int) (a []float64, b [4][]float64, a32 []float32, b32 [4][]float32) {
	a = make([]float64, n)
	a32 = make([]float32, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		a32[i] = float32(a[i])
	}
	for k := range b {
		b[k] = make([]float64, n)
		b32[k] = make([]float32, n)
		for i := range b[k] {
			b[k][i] = rng.NormFloat64()
			b32[k][i] = float32(b[k][i])
		}
	}
	return
}

// TestBlockDotMatchesCanonical pins both block kernels to the canonical
// scalar dot across row widths covering every unroll boundary and tail
// length, on every available ISA. The float64 tolerance is the engine's
// own recheck band — the bound the sweep's correctness rests on.
func TestBlockDotMatchesCanonical(t *testing.T) {
	withKernelISA(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for n := 0; n <= 131; n++ {
			a, b, a32, b32 := randRows(rng, n)
			var o64 [4]float64
			blockDot4F64(a, b[0], b[1], b[2], b[3], &o64)
			var o32 [4]float32
			blockDot4F32(a32, b32[0], b32[1], b32[2], b32[3], &o32)
			for k := 0; k < 4; k++ {
				want := dot(a, b[k])
				if d := math.Abs(o64[k] - want); d > recheckBand64(n) {
					t.Fatalf("n=%d k=%d: float64 block dot off by %g (band %g)", n, k, d, recheckBand64(n))
				}
				// Raw rows are not unit-norm, so scale the float32 band by
				// the row magnitudes it would be normalized by.
				scale := math.Sqrt(dot(a, a) * dot(b[k], b[k]))
				if scale < 1 {
					scale = 1
				}
				if d := math.Abs(float64(o32[k]) - want); d > recheckBand32(n)*scale {
					t.Fatalf("n=%d k=%d: float32 block dot off by %g (band %g)", n, k, d, recheckBand32(n)*scale)
				}
			}
		}
	})
}

// TestRecheckBandSoundOnStandardizedRows checks the band inequality the
// engine actually relies on: for standardized (unit-norm) rows, the block
// coefficient is within the precision's recheck band of the canonical one.
func TestRecheckBandSoundOnStandardizedRows(t *testing.T) {
	withKernelISA(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		for _, samples := range []int{3, 17, 64, 100, 333, 2048} {
			m := NewMatrix(5, samples)
			for g := 0; g < 5; g++ {
				base := rng.NormFloat64()
				for s := 0; s < samples; s++ {
					// Correlated rows so coefficients are spread over [-1, 1].
					m.Set(g, s, base*math.Sin(float64(s))+0.5*rng.NormFloat64())
				}
			}
			z, err := standardizedRows(t.Context(), m, PearsonCorr)
			if err != nil {
				t.Fatal(err)
			}
			z32 := make([]float32, len(z))
			for i, v := range z {
				z32[i] = float32(v)
			}
			row := func(g int) []float64 { return z[g*samples : (g+1)*samples] }
			row32 := func(g int) []float32 { return z32[g*samples : (g+1)*samples] }
			var o64 [4]float64
			blockDot4F64(row(0), row(1), row(2), row(3), row(4), &o64)
			var o32 [4]float32
			blockDot4F32(row32(0), row32(1), row32(2), row32(3), row32(4), &o32)
			for k := 0; k < 4; k++ {
				want := dot(row(0), row(k+1))
				if d := math.Abs(o64[k] - want); d > recheckBand64(samples) {
					t.Errorf("samples=%d: float64 band violated: %g > %g", samples, d, recheckBand64(samples))
				}
				if d := math.Abs(float64(o32[k]) - want); d > recheckBand32(samples) {
					t.Errorf("samples=%d: float32 band violated: %g > %g", samples, d, recheckBand32(samples))
				}
			}
		}
	})
}

func TestKernelISANames(t *testing.T) {
	saved := useAVXKernels
	defer func() { useAVXKernels = saved }()
	useAVXKernels = false
	if got := KernelISA(); got != "generic" {
		t.Fatalf("KernelISA() = %q, want generic", got)
	}
	useAVXKernels = true
	if got := KernelISA(); got != "avx2-fma" {
		t.Fatalf("KernelISA() = %q, want avx2-fma", got)
	}
}
