package expr

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpearmanMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125} // nonlinear but monotone
	if r := Spearman(x, y); math.Abs(r-1) > 1e-12 {
		t.Fatalf("monotone spearman = %v, want 1", r)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if r := Spearman(x, rev); math.Abs(r+1) > 1e-12 {
		t.Fatalf("reversed spearman = %v, want -1", r)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if Spearman([]float64{1}, []float64{2}) != 0 {
		t.Fatal("single sample must give 0")
	}
	if Spearman([]float64{1, 2}, []float64{1}) != 0 {
		t.Fatal("length mismatch must give 0")
	}
	if Spearman([]float64{3, 3, 3}, []float64{1, 2, 3}) != 0 {
		t.Fatal("constant vector must give 0")
	}
}

func TestSpearmanRobustToOutliers(t *testing.T) {
	// Pearson collapses under an extreme outlier; Spearman does not.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{1.1, 2.2, 2.9, 4.1, 5.2, 5.9, 7.1, 1e6}
	p := Pearson(x, y)
	s := Spearman(x, y)
	if s < 0.9 {
		t.Fatalf("spearman = %v, want near 1 under outlier", s)
	}
	if p > s {
		t.Fatalf("pearson %v should be depressed below spearman %v by the outlier", p, s)
	}
}

func TestSpearmanBoundedQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r := Spearman(x, y)
		return r >= -1-1e-9 && r <= 1+1e-9 && math.Abs(Spearman(y, x)-r) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRankVectorTies(t *testing.T) {
	got := rankVector([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

func TestCorrelateDispatch(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 4, 9, 16}
	if Correlate(SpearmanCorr, x, y) != Spearman(x, y) {
		t.Fatal("spearman dispatch wrong")
	}
	if Correlate(PearsonCorr, x, y) != Pearson(x, y) {
		t.Fatal("pearson dispatch wrong")
	}
	if PearsonCorr.String() != "pearson" || SpearmanCorr.String() != "spearman" {
		t.Fatal("kind strings wrong")
	}
}

func TestFisherZRoundTrip(t *testing.T) {
	for _, r := range []float64{-0.9, -0.5, 0, 0.3, 0.95} {
		if math.Abs(FisherZInv(FisherZ(r))-r) > 1e-12 {
			t.Fatalf("fisher round trip failed at %v", r)
		}
	}
	if !math.IsInf(FisherZ(1), 1) {
		t.Fatal("FisherZ(1) should be +Inf")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	res, err := Synthesize(SyntheticSpec{Genes: 20, Samples: 6, Modules: 2, ModuleSize: 4, Noise: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res.M); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Genes != res.M.Genes || m2.Samples != res.M.Samples {
		t.Fatalf("round trip shape: %dx%d", m2.Genes, m2.Samples)
	}
	for g := 0; g < m2.Genes; g++ {
		for s := 0; s < m2.Samples; s++ {
			if m2.At(g, s) != res.M.At(g, s) {
				t.Fatalf("value mismatch at %d,%d", g, s)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"gene,s0\n",
		"gene\n1\n",
		"gene,s0\n0,notanumber\n",
		"gene,s0,s1\n0,1\n",
	} {
		if _, err := ReadCSV(bytes.NewBufferString(bad)); err == nil {
			t.Fatalf("input %q: want error", bad)
		}
	}
}

func TestThresholdSweepMonotone(t *testing.T) {
	res, err := Synthesize(SyntheticSpec{
		Genes: 200, Samples: 30, Modules: 3, ModuleSize: 8, Noise: 0.15, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	thresholds := []float64{0.80, 0.90, 0.95, 0.99}
	sweepOpts := DefaultNetworkOptions()
	sweepOpts.Workers = 4
	pts := ThresholdSweep(res.M, thresholds, sweepOpts)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Edge count decreases monotonically with the threshold.
	for i := 1; i < len(pts); i++ {
		if pts[i].Edges > pts[i-1].Edges {
			t.Fatalf("edge count not monotone: %+v", pts)
		}
	}
	// The 0.95 network matches a direct BuildNetwork at 0.95.
	direct := BuildNetwork(res.M, NetworkOptions{MinAbsR: 0.95, MaxP: 0.0005})
	if pts[2].Edges != direct.M() {
		t.Fatalf("sweep at 0.95 has %d edges, direct build %d", pts[2].Edges, direct.M())
	}
	if pts[0].Edges == 0 {
		t.Fatal("0.80 threshold should keep module edges")
	}
}

func TestThresholdSweepEmpty(t *testing.T) {
	if pts := ThresholdSweep(NewMatrix(5, 5), nil, NetworkOptions{MaxP: 0.05, Workers: 1}); pts != nil {
		t.Fatal("empty thresholds should give nil")
	}
}
