// Package expr implements the microarray side of the paper's pipeline:
// expression matrices, all-pairs Pearson or Spearman correlation with
// Student-t p-values, thresholding, and correlation-network construction.
// Network building runs on a standardized-row engine (engine.go): rows are
// z-scored once so each pair costs one dot product, the p-value cut is
// inverted into a critical |r| ahead of the sweep, and cache-blocked row
// tiles are dispatched to workers from an atomic counter. Synthetic
// expression data with planted co-expressed modules substitutes for the
// GEO datasets (GSE5078, GSE5140); see DESIGN.md §1 (engine: §3).
package expr

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"parsample/internal/graph"
)

// Matrix is a genes × samples expression matrix.
type Matrix struct {
	Genes   int
	Samples int
	data    []float64 // row-major: gene g sample s at g*Samples+s
}

// NewMatrix allocates a zero matrix.
func NewMatrix(genes, samples int) *Matrix {
	return &Matrix{Genes: genes, Samples: samples, data: make([]float64, genes*samples)}
}

// At returns the expression of gene g in sample s.
func (m *Matrix) At(g, s int) float64 { return m.data[g*m.Samples+s] }

// Set assigns the expression of gene g in sample s.
func (m *Matrix) Set(g, s int, v float64) { m.data[g*m.Samples+s] = v }

// Row returns the expression profile of gene g (shared storage).
func (m *Matrix) Row(g int) []float64 { return m.data[g*m.Samples : (g+1)*m.Samples] }

// Pearson returns the Pearson correlation coefficient of x and y.
// It returns 0 when either vector has zero variance.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// PValue returns the two-sided p-value for observing |r| under the null
// hypothesis of zero correlation with n samples, via the exact Student-t
// transform t = r·√((n−2)/(1−r²)) and the regularized incomplete beta
// function.
func PValue(r float64, n int) float64 {
	if n <= 2 {
		return 1
	}
	r2 := r * r
	if r2 >= 1 {
		return 0
	}
	df := float64(n - 2)
	t2 := r2 * df / (1 - r2)
	// Two-sided p = I_{df/(df+t²)}(df/2, 1/2).
	return regIncBeta(df/2, 0.5, df/(df+t2))
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func betacf(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 3e-14
	const fpmin = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Precision selects the arithmetic width of the all-pairs sweep arena.
//
// Float32 halves the standardized-row arena and doubles the elements per
// SIMD lane, but the edge set it produces is byte-identical to Float64's:
// block correlations are only a banded prefilter, and any pair whose
// low-precision coefficient lands within the engine's recheck band of an
// admission threshold is re-decided by the canonical float64 dot kernel
// (see kernel.go and DESIGN.md §7). Precision is therefore a pure
// speed/memory knob, never an accuracy knob.
type Precision uint8

const (
	// Float64 standardizes rows into a float64 arena (the default).
	Float64 Precision = iota
	// Float32 standardizes rows into a float32 arena with float64
	// accumulation and a float64 recheck band near each threshold.
	Float32
)

// String names the precision ("float64", "float32").
func (p Precision) String() string {
	if p == Float32 {
		return "float32"
	}
	return "float64"
}

// NetworkOptions controls correlation-network construction.
//
// Threshold semantics: a NEGATIVE MinAbsR or MaxP selects the paper's
// default (0.95 and 0.0005 respectively); zero and positive values are
// honored literally, so MinAbsR = 0 (no correlation floor) and MaxP = 0
// (admit only |r| = 1, whose p-value is exactly zero) are both
// requestable. The zero value NetworkOptions{} therefore asks for the
// most permissive correlation floor combined with the most stringent
// p-value cut; callers wanting the paper's thresholds should start from
// DefaultNetworkOptions().
type NetworkOptions struct {
	Kind      CorrelationKind // correlation statistic (default PearsonCorr)
	MinAbsR   float64         // minimum |correlation|; negative → 0.95
	MaxP      float64         // maximum p-value; negative → 0.0005
	Workers   int             // parallel workers; ≤ 0 → GOMAXPROCS
	Negative  bool            // if true, strong negative correlations also make edges
	Precision Precision       // sweep arena width; results are identical either way
}

// DefaultNetworkOptions returns the paper's configuration: Pearson
// correlation, 0.95 ≤ |ρ| ≤ 1.00, p ≤ 0.0005, all cores.
func DefaultNetworkOptions() NetworkOptions {
	return NetworkOptions{Kind: PearsonCorr, MinAbsR: 0.95, MaxP: 0.0005}
}

// withDefaults resolves the negative-means-default sentinels.
func (o NetworkOptions) withDefaults() NetworkOptions {
	if o.MinAbsR < 0 {
		o.MinAbsR = 0.95
	}
	if o.MaxP < 0 {
		o.MaxP = 0.0005
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// BuildNetwork computes all-pairs correlations of the expression matrix and
// returns the thresholded correlation network. The work runs on the
// standardized-row engine (see engine.go): rows are z-scored once, each
// pair costs one dot product, the p-value threshold is inverted into a
// critical |r| ahead of the sweep, and cache-blocked row tiles are
// dispatched to workers from an atomic counter. The admission rule is the
// per-pair test (Correlate then PValue against the thresholds) exactly;
// only the floating-point evaluation order of each coefficient differs, so
// admission can deviate solely for a pair whose correlation sits within an
// ulp of the threshold. The result does not depend on Workers.
func BuildNetwork(m *Matrix, opts NetworkOptions) *graph.Graph {
	g, _ := BuildNetworkContext(context.Background(), m, opts)
	return g
}

// BuildNetworkContext is BuildNetwork with cooperative cancellation: the
// engine's standardization and tile sweep poll ctx (see engine.go) and the
// build returns (nil, ctx.Err()) promptly once cancellation is observed.
// The edge set of a completed build is identical to BuildNetwork's.
func BuildNetworkContext(ctx context.Context, m *Matrix, opts NetworkOptions) (*graph.Graph, error) {
	scored, err := scoredPairsContext(ctx, m, opts)
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(m.Genes)
	b.AddEdges(toEdges(scored))
	return b.Build(), nil
}

// SyntheticSpec describes a synthetic microarray experiment with planted
// co-expressed modules: module genes follow a shared latent profile with
// small independent noise; background genes are independent.
type SyntheticSpec struct {
	Genes      int
	Samples    int
	Modules    int
	ModuleSize int
	Noise      float64 // within-module noise std-dev (latent signal has σ=1)
	Seed       int64
}

// SyntheticResult carries the generated matrix and the ground truth.
type SyntheticResult struct {
	M       *Matrix
	Modules [][]int32 // gene ids per planted module
}

// Synthesize generates the synthetic expression matrix.
func Synthesize(spec SyntheticSpec) (*SyntheticResult, error) {
	if spec.Genes <= 0 || spec.Samples <= 2 {
		return nil, fmt.Errorf("expr: need genes > 0 and samples > 2, got %d, %d", spec.Genes, spec.Samples)
	}
	if spec.Modules*spec.ModuleSize > spec.Genes {
		return nil, fmt.Errorf("expr: %d modules of %d genes exceed %d genes",
			spec.Modules, spec.ModuleSize, spec.Genes)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	m := NewMatrix(spec.Genes, spec.Samples)
	res := &SyntheticResult{M: m}
	// Background: independent N(0,1).
	for g := 0; g < spec.Genes; g++ {
		for s := 0; s < spec.Samples; s++ {
			m.Set(g, s, rng.NormFloat64())
		}
	}
	// Planted modules on a random gene subset.
	perm := rng.Perm(spec.Genes)
	next := 0
	for mi := 0; mi < spec.Modules; mi++ {
		latent := make([]float64, spec.Samples)
		for s := range latent {
			latent[s] = rng.NormFloat64()
		}
		mod := make([]int32, spec.ModuleSize)
		for i := 0; i < spec.ModuleSize; i++ {
			gid := perm[next]
			next++
			mod[i] = int32(gid)
			for s := 0; s < spec.Samples; s++ {
				m.Set(gid, s, latent[s]+spec.Noise*rng.NormFloat64())
			}
		}
		res.Modules = append(res.Modules, mod)
	}
	return res, nil
}
