//go:build amd64

package expr

// useAVXKernels gates the assembly block kernels on runtime CPU support:
// AVX2 and FMA instruction sets plus OS-enabled YMM state (OSXSAVE/XCR0).
// It is a variable, not a constant, so tests can force the generic path
// and differential-test the two implementations against each other.
var useAVXKernels = x86HasAVX2FMA()

// x86HasAVX2FMA reports CPU+OS support for the AVX2/FMA kernels
// (kernel_amd64.s): CPUID leaf 1 ECX bits FMA|OSXSAVE|AVX, XCR0 bits
// SSE|AVX, and CPUID leaf 7 EBX bit AVX2.
func x86HasAVX2FMA() bool

// dot4F64AVX computes four float64 dot products of the n-element row at a
// against the rows at b0..b3 using AVX2+FMA (8 lanes per partner per
// iteration), reducing to scalars before the (deterministic) scalar tail.
//
//go:noescape
func dot4F64AVX(a, b0, b1, b2, b3 *float64, n int, out *[4]float64)

// dot4F32AVX is the float32-arena variant (16 lanes per partner per
// iteration, float32 accumulation).
//
//go:noescape
func dot4F32AVX(a, b0, b1, b2, b3 *float32, n int, out *[4]float32)
