package expr

import "sync"

// Arena pooling. Every sweep standardizes rows into a flat genes×samples
// arena, and the service layer rebuilds networks over the same dataset
// shapes constantly (same matrix, different thresholds), so arenas are
// recycled through per-shape sync.Pools instead of make per call.
//
// Lifetime rules (DESIGN.md §7):
//   - An arena is owned by exactly one sweep from arenaFor to release.
//     release only runs after the sweep has joined all its workers (the
//     engine joins even on cancellation), so a pooled arena is never
//     aliased by a live goroutine.
//   - Pools are keyed by (genes, samples, precision), so a recycled arena
//     never needs re-sizing and a Float32 build always finds both the
//     float32 rows and the float64 shadow it rechecks against.
//   - sync.Pool's GC integration bounds the idle footprint: arenas for
//     shapes that stop arriving are collected with the next GC cycle.

type arenaKey struct {
	genes, samples int
	prec           Precision
}

// buildArena is one sweep's row storage. z64 always holds the canonical
// float64 standardized rows (the admission oracle); z32 is allocated only
// for Float32 arenas and holds the same rows rounded to float32.
type buildArena struct {
	pool *sync.Pool
	z64  []float64
	z32  []float32
}

var arenaPools struct {
	sync.Mutex
	m map[arenaKey]*sync.Pool
}

// arenaFor checks an arena of the given shape out of its pool, allocating
// one if the pool is empty. The contents are stale garbage; the caller
// overwrites every element during standardization.
func arenaFor(genes, samples int, prec Precision) *buildArena {
	key := arenaKey{genes: genes, samples: samples, prec: prec}
	arenaPools.Lock()
	p := arenaPools.m[key]
	if p == nil {
		if arenaPools.m == nil {
			arenaPools.m = make(map[arenaKey]*sync.Pool)
		}
		p = &sync.Pool{New: func() any {
			a := &buildArena{z64: make([]float64, genes*samples)}
			if prec == Float32 {
				a.z32 = make([]float32, genes*samples)
			}
			return a
		}}
		arenaPools.m[key] = p
	}
	arenaPools.Unlock()
	a := p.Get().(*buildArena)
	a.pool = p
	return a
}

// release returns the arena to its pool. The caller must not retain any
// reference into z64/z32 past this call.
func (a *buildArena) release() {
	p := a.pool
	a.pool = nil
	p.Put(a)
}
