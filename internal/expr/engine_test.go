package expr

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parsample/internal/graph"
)

// referenceNetwork is the pre-engine BuildNetwork path, kept verbatim as the
// differential oracle: per-pair two-pass correlation, |r| floor, then the
// exact Student-t p-value for every surviving pair.
func referenceNetwork(m *Matrix, opts NetworkOptions) map[graph.Edge]bool {
	opts = opts.withDefaults()
	edges := make(map[graph.Edge]bool)
	for g1 := 0; g1 < m.Genes; g1++ {
		for g2 := g1 + 1; g2 < m.Genes; g2++ {
			r := Correlate(opts.Kind, m.Row(g1), m.Row(g2))
			if !opts.Negative && r < 0 {
				continue
			}
			if math.Abs(r) < opts.MinAbsR {
				continue
			}
			if PValue(r, m.Samples) > opts.MaxP {
				continue
			}
			edges[graph.Edge{U: int32(g1), V: int32(g2)}] = true
		}
	}
	return edges
}

func randomMatrix(genes, samples int, modules int, seed int64) *Matrix {
	res, err := Synthesize(SyntheticSpec{
		Genes: genes, Samples: samples, Modules: modules,
		ModuleSize: 6, Noise: 0.4, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return res.M
}

// TestBuildNetworkMatchesReference pins the engine to the per-pair oracle:
// identical edge sets on randomized matrices, for both statistics, across
// loose and stringent thresholds, with and without negative edges.
func TestBuildNetworkMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		opts NetworkOptions
	}{
		{"pearson/defaults", DefaultNetworkOptions()},
		{"pearson/loose", NetworkOptions{MinAbsR: 0.35, MaxP: 0.05}},
		{"pearson/negative", NetworkOptions{MinAbsR: 0.30, MaxP: 0.10, Negative: true}},
		{"pearson/p-only", NetworkOptions{MinAbsR: 0, MaxP: 0.001}},
		{"spearman/defaults", NetworkOptions{Kind: SpearmanCorr, MinAbsR: 0.95, MaxP: 0.0005}},
		{"spearman/loose", NetworkOptions{Kind: SpearmanCorr, MinAbsR: 0.40, MaxP: 0.05}},
		{"spearman/negative", NetworkOptions{Kind: SpearmanCorr, MinAbsR: 0.30, MaxP: 0.10, Negative: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				m := randomMatrix(120, 12, 4, seed)
				want := referenceNetwork(m, tc.opts)
				g := BuildNetwork(m, tc.opts)
				if g.M() != len(want) {
					t.Fatalf("seed %d: engine %d edges, reference %d", seed, g.M(), len(want))
				}
				g.ForEachEdge(func(u, v int32) {
					if !want[graph.Edge{U: u, V: v}] {
						t.Fatalf("seed %d: engine admitted (%d,%d), reference did not", seed, u, v)
					}
				})
			}
		})
	}
}

// TestCorrelatedPairsDeterministic verifies the result is byte-identical
// across worker counts and sorted by (U, V) — dynamic tile scheduling must
// not leak into the output.
func TestCorrelatedPairsDeterministic(t *testing.T) {
	m := randomMatrix(150, 15, 5, 42)
	opts := NetworkOptions{MinAbsR: 0.4, MaxP: 0.1}
	opts.Workers = 1
	base := CorrelatedPairs(m, opts)
	if len(base) == 0 {
		t.Fatal("no pairs retained; thresholds too tight for the test to bite")
	}
	for i := 1; i < len(base); i++ {
		a, b := base[i-1], base[i]
		if a.U > b.U || (a.U == b.U && a.V >= b.V) {
			t.Fatalf("output not sorted at %d: %+v then %+v", i, a, b)
		}
	}
	for _, w := range []int{2, 3, 7} {
		opts.Workers = w
		got := CorrelatedPairs(m, opts)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d pairs vs %d", w, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: pair %d = %+v, want %+v", w, i, got[i], base[i])
			}
		}
	}
}

// TestCorrelatedPairsScores checks the retained coefficients against the
// direct per-pair computation.
func TestCorrelatedPairsScores(t *testing.T) {
	m := randomMatrix(80, 20, 3, 7)
	for _, kind := range []CorrelationKind{PearsonCorr, SpearmanCorr} {
		scored := CorrelatedPairs(m, NetworkOptions{Kind: kind, MinAbsR: 0.3, MaxP: 0.2})
		if len(scored) == 0 {
			t.Fatalf("%v: no pairs retained", kind)
		}
		for _, se := range scored {
			want := Correlate(kind, m.Row(int(se.U)), m.Row(int(se.V)))
			if math.Abs(se.R-want) > 1e-10 {
				t.Fatalf("%v: pair (%d,%d) r = %v, direct %v", kind, se.U, se.V, se.R, want)
			}
		}
	}
}

// TestCriticalRInvertsP is the threshold-inversion property test: for
// random (maxP, n), |r| ≥ criticalR(maxP, n) must agree exactly with
// PValue(r, n) ≤ maxP — the engine's fast admission test is the old
// per-pair check.
func TestCriticalRInvertsP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(200)
		maxP := math.Pow(10, -6*rng.Float64()) // (1e-6, 1]
		rc := criticalR(maxP, n)
		// The boundary itself must be admissible, its predecessor must not.
		if PValue(rc, n) > maxP {
			return false
		}
		if rc > 0 && PValue(math.Nextafter(rc, 0), n) <= maxP {
			return false
		}
		// Random r: fast test == per-pair test.
		for i := 0; i < 50; i++ {
			r := rng.Float64()
			if (r >= rc) != (PValue(r, n) <= maxP) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalRDegenerate(t *testing.T) {
	// n ≤ 2: p is always 1.
	if rc := criticalR(0.5, 2); rc <= 1 {
		t.Fatalf("criticalR(0.5, 2) = %v, want unattainable", rc)
	}
	if rc := criticalR(1, 2); rc != 0 {
		t.Fatalf("criticalR(1, 2) = %v, want 0", rc)
	}
	// maxP = 0 admits only |r| = 1 (p exactly 0).
	rc := criticalR(0, 30)
	if PValue(rc, 30) > 0 {
		t.Fatalf("criticalR(0, 30) = %v has p > 0", rc)
	}
	if math.Nextafter(rc, 0) > 0 && PValue(math.Nextafter(rc, 0), 30) <= 0 {
		t.Fatal("criticalR(0, 30) is not the boundary")
	}
	// maxP ≥ 1 admits everything.
	if rc := criticalR(1, 30); rc != 0 {
		t.Fatalf("criticalR(1, 30) = %v, want 0", rc)
	}
}

// TestNetworkOptionsSentinels pins the threshold semantics: negative means
// default, zero is honored literally.
func TestNetworkOptionsSentinels(t *testing.T) {
	o := NetworkOptions{MinAbsR: -1, MaxP: -1}.withDefaults()
	if o.MinAbsR != 0.95 || o.MaxP != 0.0005 {
		t.Fatalf("negative sentinels resolved to %v/%v", o.MinAbsR, o.MaxP)
	}
	o = NetworkOptions{MinAbsR: 0.5, MaxP: 0.01}.withDefaults()
	if o.MinAbsR != 0.5 || o.MaxP != 0.01 {
		t.Fatal("explicit thresholds must pass through")
	}
	d := DefaultNetworkOptions()
	if d.MinAbsR != 0.95 || d.MaxP != 0.0005 || d.Kind != PearsonCorr {
		t.Fatalf("DefaultNetworkOptions = %+v", d)
	}

	// MinAbsR = 0 is now requestable: admission is by p-value alone.
	m := randomMatrix(40, 10, 2, 9)
	loose := BuildNetwork(m, NetworkOptions{MinAbsR: 0, MaxP: 0.05})
	floored := BuildNetwork(m, NetworkOptions{MinAbsR: 0.99, MaxP: 0.05})
	if loose.M() <= floored.M() {
		t.Fatalf("p-only network (%d edges) should exceed |r| ≥ 0.99 network (%d)", loose.M(), floored.M())
	}

	// MaxP = 0 is now requestable: only perfectly correlated pairs survive.
	dup := NewMatrix(3, 8)
	for s := 0; s < 8; s++ {
		dup.Set(0, s, float64(s))
		dup.Set(1, s, 2*float64(s)+1) // exactly correlated with gene 0
		dup.Set(2, s, math.Sin(float64(s)))
	}
	exact := BuildNetwork(dup, NetworkOptions{MinAbsR: 0, MaxP: 0})
	if !exact.HasEdge(0, 1) {
		t.Fatal("perfect correlation must survive MaxP = 0")
	}
	if exact.HasEdge(0, 2) || exact.HasEdge(1, 2) {
		t.Fatal("imperfect correlation must not survive MaxP = 0")
	}
}

func TestStandardizedRowsProperties(t *testing.T) {
	m := randomMatrix(50, 17, 2, 3)
	// Plant a zero-variance row (an exactly representable constant, so the
	// computed mean is exact and the deviations are exactly zero).
	for s := 0; s < m.Samples; s++ {
		m.Set(10, s, 4.0)
	}
	for _, kind := range []CorrelationKind{PearsonCorr, SpearmanCorr} {
		z, _ := standardizedRows(context.Background(), m, kind)
		for g := 0; g < m.Genes; g++ {
			row := z[g*m.Samples : (g+1)*m.Samples]
			var sum, ss float64
			for _, v := range row {
				sum += v
				ss += v * v
			}
			if g == 10 {
				if ss != 0 {
					t.Fatalf("%v: zero-variance row standardized to norm %v", kind, ss)
				}
				continue
			}
			if math.Abs(sum) > 1e-9 || math.Abs(ss-1) > 1e-9 {
				t.Fatalf("%v: row %d mean %v norm² %v", kind, g, sum, ss)
			}
		}
		// Self-dot of a standardized row is the correlation of a gene with
		// itself: 1.
		row := z[m.Samples : 2*m.Samples]
		if r := dot(row, row); math.Abs(r-1) > 1e-12 {
			t.Fatalf("%v: self correlation = %v", kind, r)
		}
	}
}

// TestBuildNetworkDegenerateShapes guards the tileRows guard: matrices
// with zero samples or zero genes must build an empty network, not panic.
func TestBuildNetworkDegenerateShapes(t *testing.T) {
	if g := BuildNetwork(NewMatrix(10, 0), DefaultNetworkOptions()); g.N() != 10 || g.M() != 0 {
		t.Fatalf("zero-sample network: n=%d m=%d", g.N(), g.M())
	}
	if g := BuildNetwork(NewMatrix(0, 5), DefaultNetworkOptions()); g.N() != 0 || g.M() != 0 {
		t.Fatalf("zero-gene network: n=%d m=%d", g.N(), g.M())
	}
	if pairs := CorrelatedPairs(NewMatrix(3, 0), NetworkOptions{}); len(pairs) != 0 {
		t.Fatalf("zero-sample pairs = %d", len(pairs))
	}
}

func TestDecodeTilePair(t *testing.T) {
	for _, tiles := range []int{1, 2, 3, 7, 32, 100} {
		k := int64(0)
		for i := 0; i < tiles; i++ {
			for j := i; j < tiles; j++ {
				gi, gj := decodeTilePair(k, tiles)
				if gi != i || gj != j {
					t.Fatalf("tiles=%d k=%d: got (%d,%d), want (%d,%d)", tiles, k, gi, gj, i, j)
				}
				k++
			}
		}
	}
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 7, 8, 9, 16, 31, 64, 100} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		var want float64
		for i := range a {
			want += a[i] * b[i]
		}
		if got := dot(a, b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("n=%d: dot = %v, naive = %v", n, got, want)
		}
	}
}

// TestThresholdSweepNegativeThreshold guards the sentinel clamp: a
// negative threshold in the sweep list must not be misread as the
// use-the-default MinAbsR sentinel (which would silently shrink the
// superset pass to |r| ≥ 0.95).
func TestThresholdSweepNegativeThreshold(t *testing.T) {
	m := randomMatrix(60, 15, 2, 6)
	pts := ThresholdSweep(m, []float64{-0.1, 0.5}, NetworkOptions{MaxP: 0.1})
	direct := BuildNetwork(m, NetworkOptions{MinAbsR: 0.5, MaxP: 0.1})
	if pts[1].Edges != direct.M() {
		t.Fatalf("sweep at 0.5 has %d edges, direct build %d", pts[1].Edges, direct.M())
	}
	if pts[0].Edges < pts[1].Edges {
		t.Fatalf("negative threshold bucket smaller than 0.5 bucket: %+v", pts)
	}
}

// TestThresholdSweepSpearman exercises the sweep on the rank statistic,
// which shares the engine pass.
func TestThresholdSweepSpearman(t *testing.T) {
	res, err := Synthesize(SyntheticSpec{
		Genes: 150, Samples: 25, Modules: 3, ModuleSize: 8, Noise: 0.15, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := NetworkOptions{Kind: SpearmanCorr, MaxP: 0.0005}
	pts := ThresholdSweep(res.M, []float64{0.7, 0.85, 0.95}, opts)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Edges > pts[i-1].Edges {
			t.Fatalf("edge count not monotone: %+v", pts)
		}
	}
	opts.MinAbsR = 0.95
	direct := BuildNetwork(res.M, opts)
	if pts[2].Edges != direct.M() {
		t.Fatalf("sweep at 0.95 has %d edges, direct build %d", pts[2].Edges, direct.M())
	}
}
