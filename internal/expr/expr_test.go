package expr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	x := []float64{3, 3, 3}
	y := []float64{1, 2, 3}
	if r := Pearson(x, y); r != 0 {
		t.Fatalf("constant vector: r = %v, want 0", r)
	}
	if r := Pearson(nil, nil); r != 0 {
		t.Fatalf("empty: r = %v", r)
	}
	if r := Pearson(x, []float64{1, 2}); r != 0 {
		t.Fatalf("length mismatch: r = %v", r)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 2, 3, 4, 6}
	r := Pearson(x, y)
	// Computed by hand: cov=9.0/..; verify against direct formula.
	if r < 0.97 || r > 0.99 {
		t.Fatalf("r = %v, want ≈ 0.98", r)
	}
}

func TestPearsonSymmetricAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r1, r2 := Pearson(x, y), Pearson(y, x)
		if math.Abs(r1-r2) > 1e-12 {
			return false
		}
		return r1 >= -1-1e-12 && r1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonInvariantToAffineTransform(t *testing.T) {
	x := []float64{0.3, 1.7, -2.2, 0.9, 3.1, -0.4}
	y := []float64{1.1, 0.2, 0.5, -1.3, 2.2, 0.8}
	r := Pearson(x, y)
	scaled := make([]float64, len(x))
	for i, v := range x {
		scaled[i] = 3*v + 7
	}
	if math.Abs(Pearson(scaled, y)-r) > 1e-12 {
		t.Fatal("Pearson not invariant to positive affine transform")
	}
}

func TestPValueBehaviour(t *testing.T) {
	// Stronger correlation => smaller p.
	p1 := PValue(0.5, 20)
	p2 := PValue(0.9, 20)
	if p2 >= p1 {
		t.Fatalf("p(0.9)=%g should be < p(0.5)=%g", p2, p1)
	}
	// More samples => smaller p at fixed r.
	p3 := PValue(0.5, 100)
	if p3 >= p1 {
		t.Fatalf("p(n=100)=%g should be < p(n=20)=%g", p3, p1)
	}
	// Perfect correlation.
	if p := PValue(1, 10); p != 0 {
		t.Fatalf("p(r=1) = %g, want 0", p)
	}
	// Degenerate sample size.
	if p := PValue(0.9, 2); p != 1 {
		t.Fatalf("p(n=2) = %g, want 1", p)
	}
	// r=0: p should be 1 (or extremely close).
	if p := PValue(0, 30); p < 0.99 {
		t.Fatalf("p(r=0) = %g, want ~1", p)
	}
}

func TestPValueAgainstKnownQuantiles(t *testing.T) {
	// For df=10 (n=12), t=2.228 is the two-sided 5% critical value.
	// r = t/sqrt(df + t²).
	tcrit := 2.228
	df := 10.0
	r := tcrit / math.Sqrt(df+tcrit*tcrit)
	p := PValue(r, 12)
	if math.Abs(p-0.05) > 0.002 {
		t.Fatalf("p = %g, want ≈ 0.05", p)
	}
	// df=30 (n=32), t=2.750 is the two-sided 1% critical value.
	tcrit, df = 2.750, 30
	r = tcrit / math.Sqrt(df+tcrit*tcrit)
	p = PValue(r, 32)
	if math.Abs(p-0.01) > 0.001 {
		t.Fatalf("p = %g, want ≈ 0.01", p)
	}
}

// TestPValueGoldenStudentT pins PValue against published two-sided
// Student-t critical values: for each (t*, df, α) row of the standard
// table, the correlation r = t*/√(df + t*²) observed with n = df + 2
// samples must have a p-value of exactly α (to the table's precision).
func TestPValueGoldenStudentT(t *testing.T) {
	cases := []struct {
		tcrit float64
		df    int
		alpha float64
	}{
		{12.706205, 1, 0.05},
		{63.656741, 1, 0.01},
		{4.302653, 2, 0.05},
		{2.570582, 5, 0.05},
		{4.032143, 5, 0.01},
		{1.812461, 10, 0.10},
		{2.228139, 10, 0.05},
		{3.169273, 10, 0.01},
		{2.085963, 20, 0.05},
		{2.845340, 20, 0.01},
		{2.042272, 30, 0.05},
		{1.983972, 100, 0.05},
	}
	for _, c := range cases {
		df := float64(c.df)
		r := c.tcrit / math.Sqrt(df+c.tcrit*c.tcrit)
		p := PValue(r, c.df+2)
		if math.Abs(p-c.alpha) > 2e-4 {
			t.Errorf("df=%d t=%v: p = %.6f, want %.4f", c.df, c.tcrit, p, c.alpha)
		}
	}
}

// TestRegIncBetaGolden checks the continued-fraction evaluation against
// closed forms: I_x(a,1) = x^a, I_x(1,b) = 1−(1−x)^b, the arcsine law for
// a = b = ½, polynomial forms for small integer parameters, and the
// binomial-tail identity I_x(a,b) = P(Bin(a+b−1, x) ≥ a).
func TestRegIncBetaGolden(t *testing.T) {
	cases := []struct {
		a, b, x, want float64
	}{
		{3, 1, 0.6, 0.216},        // x^a
		{1, 4, 0.3, 0.7599},       // 1-(1-x)^b
		{0.5, 0.5, 0.5, 0.5},      // arcsine law, symmetric point
		{0.5, 0.5, 0.25, 1.0 / 3}, // (2/π)·asin(√¼)
		{2, 2, 0.3, 0.216},        // 3x²-2x³
		{3, 3, 0.5, 0.5},          // symmetry
		{2, 3, 0.4, 0.5248},       // P(Bin(4, 0.4) ≥ 2)
	}
	for _, c := range cases {
		if got := regIncBeta(c.a, c.b, c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("I_%v(%v,%v) = %.12f, want %.12f", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if v := regIncBeta(2, 3, 0); v != 0 {
		t.Fatalf("I_0 = %v", v)
	}
	if v := regIncBeta(2, 3, 1); v != 1 {
		t.Fatalf("I_1 = %v", v)
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if v := regIncBeta(1, 1, x); math.Abs(v-x) > 1e-10 {
			t.Fatalf("I_%v(1,1) = %v", x, v)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.2, 0.4, 0.7} {
		lhs := regIncBeta(2.5, 4, x)
		rhs := 1 - regIncBeta(4, 2.5, 1-x)
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Fatalf("symmetry broken at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(1, 2, 5.5)
	if m.At(1, 2) != 5.5 {
		t.Fatal("Set/At mismatch")
	}
	row := m.Row(1)
	if len(row) != 4 || row[2] != 5.5 {
		t.Fatal("Row mismatch")
	}
}

func TestSynthesizeValidation(t *testing.T) {
	if _, err := Synthesize(SyntheticSpec{Genes: 0, Samples: 10}); err == nil {
		t.Fatal("want error for 0 genes")
	}
	if _, err := Synthesize(SyntheticSpec{Genes: 10, Samples: 2}); err == nil {
		t.Fatal("want error for 2 samples")
	}
	if _, err := Synthesize(SyntheticSpec{Genes: 10, Samples: 10, Modules: 3, ModuleSize: 5}); err == nil {
		t.Fatal("want error for oversubscribed modules")
	}
}

func TestSynthesizeModulesCorrelate(t *testing.T) {
	res, err := Synthesize(SyntheticSpec{
		Genes: 200, Samples: 30, Modules: 3, ModuleSize: 10, Noise: 0.1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Modules) != 3 {
		t.Fatalf("modules = %d", len(res.Modules))
	}
	// Within-module pairs highly correlated.
	mod := res.Modules[0]
	r := Pearson(res.M.Row(int(mod[0])), res.M.Row(int(mod[1])))
	if r < 0.9 {
		t.Fatalf("within-module r = %v, want > 0.9", r)
	}
	// Across modules: low correlation (latents independent).
	r2 := Pearson(res.M.Row(int(res.Modules[0][0])), res.M.Row(int(res.Modules[1][0])))
	if math.Abs(r2) > 0.8 {
		t.Fatalf("cross-module r = %v, suspiciously high", r2)
	}
}

func TestBuildNetworkRecoversModules(t *testing.T) {
	res, err := Synthesize(SyntheticSpec{
		Genes: 300, Samples: 40, Modules: 4, ModuleSize: 8, Noise: 0.05, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := BuildNetwork(res.M, DefaultNetworkOptions())
	if g.N() != 300 {
		t.Fatalf("network n = %d", g.N())
	}
	// Each planted module should be near-fully connected at ρ ≥ 0.95.
	for _, mod := range res.Modules {
		present, possible := 0, 0
		for i := 0; i < len(mod); i++ {
			for j := i + 1; j < len(mod); j++ {
				possible++
				if g.HasEdge(mod[i], mod[j]) {
					present++
				}
			}
		}
		if float64(present) < 0.8*float64(possible) {
			t.Fatalf("module retained %d/%d edges", present, possible)
		}
	}
	// Background should be sparse: far fewer edges than the module cliques'
	// total plus a small false-positive allowance.
	moduleEdges := 4 * 8 * 7 / 2
	if g.M() > moduleEdges*2 {
		t.Fatalf("network too dense: %d edges for %d module edges", g.M(), moduleEdges)
	}
}

func TestBuildNetworkWorkerCountIrrelevant(t *testing.T) {
	res, _ := Synthesize(SyntheticSpec{
		Genes: 120, Samples: 25, Modules: 2, ModuleSize: 6, Noise: 0.1, Seed: 3,
	})
	opts := DefaultNetworkOptions()
	opts.Workers = 1
	g1 := BuildNetwork(res.M, opts)
	opts.Workers = 8
	g8 := BuildNetwork(res.M, opts)
	if g1.M() != g8.M() {
		t.Fatalf("worker count changed result: %d vs %d edges", g1.M(), g8.M())
	}
	for _, e := range g1.Edges() {
		if !g8.HasEdge(e.U, e.V) {
			t.Fatal("edge sets differ between worker counts")
		}
	}
}

func TestBuildNetworkNegativeOption(t *testing.T) {
	// Construct two perfectly anti-correlated genes.
	m := NewMatrix(2, 10)
	for s := 0; s < 10; s++ {
		m.Set(0, s, float64(s))
		m.Set(1, s, -float64(s))
	}
	gPos := BuildNetwork(m, DefaultNetworkOptions())
	if gPos.HasEdge(0, 1) {
		t.Fatal("negative correlation admitted without Negative option")
	}
	negOpts := DefaultNetworkOptions()
	negOpts.Negative = true
	gNeg := BuildNetwork(m, negOpts)
	if !gNeg.HasEdge(0, 1) {
		t.Fatal("negative correlation not admitted with Negative option")
	}
}

func BenchmarkBuildNetwork(b *testing.B) {
	res, _ := Synthesize(SyntheticSpec{
		Genes: 500, Samples: 30, Modules: 5, ModuleSize: 10, Noise: 0.1, Seed: 1,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildNetwork(res.M, DefaultNetworkOptions())
	}
}
