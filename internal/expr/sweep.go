package expr

import (
	"parsample/internal/graph"
)

// SweepPoint is one row of a correlation-threshold sweep.
type SweepPoint struct {
	MinAbsR   float64
	Edges     int
	Density   float64
	MaxDegree int
}

// ThresholdSweep builds the correlation network at each |ρ| threshold and
// reports its size. The paper thresholds at 0.95; the sweep shows the
// edge-count cliff that motivates the choice (too low floods the network
// with coincidental correlations, too high erases modules).
//
// All-pairs correlations are computed once and re-thresholded, so the sweep
// costs one BuildNetwork-equivalent pass plus cheap filtering.
func ThresholdSweep(m *Matrix, thresholds []float64, maxP float64, workers int) []SweepPoint {
	if len(thresholds) == 0 {
		return nil
	}
	// Lowest threshold first: compute the superset network once.
	minThresh := thresholds[0]
	for _, t := range thresholds {
		if t < minThresh {
			minThresh = t
		}
	}
	base := BuildNetwork(m, NetworkOptions{MinAbsR: minThresh, MaxP: maxP, Workers: workers})
	// Re-score the surviving edges once.
	type scoredEdge struct {
		e graph.Edge
		r float64
	}
	edges := make([]scoredEdge, 0, base.M())
	base.ForEachEdge(func(u, v int32) {
		edges = append(edges, scoredEdge{
			e: graph.Edge{U: u, V: v},
			r: Pearson(m.Row(int(u)), m.Row(int(v))),
		})
	})
	out := make([]SweepPoint, 0, len(thresholds))
	for _, t := range thresholds {
		b := graph.NewBuilder(m.Genes)
		for _, se := range edges {
			if se.r >= t {
				b.AddEdge(se.e.U, se.e.V)
			}
		}
		g := b.Build()
		out = append(out, SweepPoint{
			MinAbsR:   t,
			Edges:     g.M(),
			Density:   graph.Density(g),
			MaxDegree: g.MaxDegree(),
		})
	}
	return out
}
