package expr

import (
	"math"

	"parsample/internal/graph"
)

// SweepPoint is one row of a correlation-threshold sweep.
type SweepPoint struct {
	MinAbsR   float64
	Edges     int
	Density   float64
	MaxDegree int
}

// ThresholdSweep builds the correlation network at each |ρ| threshold and
// reports its size. The paper thresholds at 0.95; the sweep shows the
// edge-count cliff that motivates the choice (too low floods the network
// with coincidental correlations, too high erases modules).
//
// opts selects the correlation statistic, p-value cut, worker count and
// sign handling; its MinAbsR is ignored (the sweep's own thresholds
// replace it). All pair correlations are computed once by the standardized
// engine at the loosest threshold and every sweep point buckets the
// retained coefficients — no correlation is ever recomputed per point.
func ThresholdSweep(m *Matrix, thresholds []float64, opts NetworkOptions) []SweepPoint {
	if len(thresholds) == 0 {
		return nil
	}
	// Loosest threshold first: compute the superset edge set once. The
	// floor is clamped to 0 — a negative |ρ| floor admits the same pairs
	// as 0, and a negative MinAbsR would be misread by scoredPairs as the
	// use-the-default sentinel, silently shrinking the superset.
	opts.MinAbsR = thresholds[0]
	for _, t := range thresholds {
		if t < opts.MinAbsR {
			opts.MinAbsR = t
		}
	}
	if opts.MinAbsR < 0 {
		opts.MinAbsR = 0
	}
	scored := scoredPairs(m, opts) // bucketed into Builders; no need for sorted output
	out := make([]SweepPoint, 0, len(thresholds))
	for _, t := range thresholds {
		b := graph.NewBuilder(m.Genes)
		for _, se := range scored {
			r := se.R
			if opts.Negative {
				r = math.Abs(r)
			}
			if r >= t {
				b.AddEdge(se.U, se.V)
			}
		}
		g := b.Build()
		out = append(out, SweepPoint{
			MinAbsR:   t,
			Edges:     g.M(),
			Density:   graph.Density(g),
			MaxDegree: g.MaxDegree(),
		})
	}
	return out
}
