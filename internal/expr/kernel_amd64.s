//go:build amd64

#include "textflag.h"

// func x86HasAVX2FMA() bool
//
// Feature probe for the block kernels: CPUID.1:ECX must report
// FMA (bit 12), OSXSAVE (bit 27) and AVX (bit 28); XGETBV(0) must show the
// OS saving both SSE and AVX state (XCR0 bits 1 and 2); CPUID.7.0:EBX must
// report AVX2 (bit 5).
TEXT ·x86HasAVX2FMA(SB), NOSPLIT, $0-1
	MOVB $0, ret+0(FP)

	// Max basic CPUID leaf must reach 7.
	XORL AX, AX
	CPUID
	CMPL AX, $7
	JL   done

	// Leaf 1: FMA | OSXSAVE | AVX.
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<12 | 1<<27 | 1<<28), R8
	CMPL R8, $(1<<12 | 1<<27 | 1<<28)
	JNE  done

	// XCR0: OS saves SSE (bit 1) and AVX (bit 2) state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  done

	// Leaf 7, subleaf 0: AVX2.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   done

	MOVB $1, ret+0(FP)

done:
	RET

// func dot4F64AVX(a, b0, b1, b2, b3 *float64, n int, out *[4]float64)
//
// Four simultaneous float64 dot products: row a against rows b0..b3.
// The main loop consumes 8 elements per partner per iteration through two
// YMM loads of a and eight FMAs with memory operands, keeping eight
// independent accumulator vectors (two per partner) so the FMA latency
// chain never stalls. The vector accumulators are reduced to scalars
// BEFORE the tail loop — scalar VEX ops zero the upper YMM lanes, so the
// tail must not touch live vector state — and the tail accumulates
// sequentially, making the summation order a fixed function of n alone.
TEXT ·dot4F64AVX(SB), NOSPLIT, $0-56
	MOVQ a+0(FP), SI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ n+40(FP), CX
	MOVQ out+48(FP), DI

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

loop8:
	CMPQ CX, $8
	JL   reduce
	VMOVUPD (SI), Y8
	VMOVUPD 32(SI), Y9
	VFMADD231PD (R8), Y8, Y0
	VFMADD231PD 32(R8), Y9, Y1
	VFMADD231PD (R9), Y8, Y2
	VFMADD231PD 32(R9), Y9, Y3
	VFMADD231PD (R10), Y8, Y4
	VFMADD231PD 32(R10), Y9, Y5
	VFMADD231PD (R11), Y8, Y6
	VFMADD231PD 32(R11), Y9, Y7
	ADDQ $64, SI
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	SUBQ $8, CX
	JMP  loop8

reduce:
	// Fold accumulator pairs, then horizontally sum each YMM to lane 0.
	VADDPD Y1, Y0, Y0
	VADDPD Y3, Y2, Y2
	VADDPD Y5, Y4, Y4
	VADDPD Y7, Y6, Y6
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VEXTRACTF128 $1, Y2, X3
	VADDPD X3, X2, X2
	VHADDPD X2, X2, X2
	VEXTRACTF128 $1, Y4, X5
	VADDPD X5, X4, X4
	VHADDPD X4, X4, X4
	VEXTRACTF128 $1, Y6, X7
	VADDPD X7, X6, X6
	VHADDPD X6, X6, X6

tail:
	TESTQ CX, CX
	JZ    store

scalar64:
	VMOVSD (SI), X8
	VFMADD231SD (R8), X8, X0
	VFMADD231SD (R9), X8, X2
	VFMADD231SD (R10), X8, X4
	VFMADD231SD (R11), X8, X6
	ADDQ $8, SI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	DECQ CX
	JNZ  scalar64

store:
	VMOVSD X0, (DI)
	VMOVSD X2, 8(DI)
	VMOVSD X4, 16(DI)
	VMOVSD X6, 24(DI)
	VZEROUPPER
	RET

// func dot4F32AVX(a, b0, b1, b2, b3 *float32, n int, out *[4]float32)
//
// float32 variant of dot4F64AVX: 16 elements per partner per iteration,
// float32 lane accumulation (the engine widens and bands the result; see
// recheckBand32). Same reduce-before-tail discipline.
TEXT ·dot4F32AVX(SB), NOSPLIT, $0-56
	MOVQ a+0(FP), SI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ n+40(FP), CX
	MOVQ out+48(FP), DI

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

loop16:
	CMPQ CX, $16
	JL   reduce32
	VMOVUPS (SI), Y8
	VMOVUPS 32(SI), Y9
	VFMADD231PS (R8), Y8, Y0
	VFMADD231PS 32(R8), Y9, Y1
	VFMADD231PS (R9), Y8, Y2
	VFMADD231PS 32(R9), Y9, Y3
	VFMADD231PS (R10), Y8, Y4
	VFMADD231PS 32(R10), Y9, Y5
	VFMADD231PS (R11), Y8, Y6
	VFMADD231PS 32(R11), Y9, Y7
	ADDQ $64, SI
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	SUBQ $16, CX
	JMP  loop16

reduce32:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y5, Y4, Y4
	VADDPS Y7, Y6, Y6
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VEXTRACTF128 $1, Y2, X3
	VADDPS X3, X2, X2
	VHADDPS X2, X2, X2
	VHADDPS X2, X2, X2
	VEXTRACTF128 $1, Y4, X5
	VADDPS X5, X4, X4
	VHADDPS X4, X4, X4
	VHADDPS X4, X4, X4
	VEXTRACTF128 $1, Y6, X7
	VADDPS X7, X6, X6
	VHADDPS X6, X6, X6
	VHADDPS X6, X6, X6

tail32:
	TESTQ CX, CX
	JZ    store32

scalar32:
	VMOVSS (SI), X8
	VFMADD231SS (R8), X8, X0
	VFMADD231SS (R9), X8, X2
	VFMADD231SS (R10), X8, X4
	VFMADD231SS (R11), X8, X6
	ADDQ $4, SI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JNZ  scalar32

store32:
	VMOVSS X0, (DI)
	VMOVSS X2, 4(DI)
	VMOVSS X4, 8(DI)
	VMOVSS X6, 12(DI)
	VZEROUPPER
	RET
