package expr

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"parsample/internal/graph"
)

// This file is the all-pairs correlation engine behind BuildNetwork and
// ThresholdSweep. Three transformations take the per-pair cost from
// "two-pass Pearson plus an incomplete-beta p-value" down to one unrolled
// dot product:
//
//  1. Standardization. Every gene row is shifted to zero mean and scaled to
//     unit L2 norm once, into a flat row-major arena. The Pearson
//     correlation of any two genes is then exactly the dot product of their
//     standardized rows; Spearman is the same dot product after replacing
//     each row by its average-tied ranks before standardizing.
//  2. Threshold inversion. PValue(r, n) is monotone non-increasing in |r|,
//     so the per-build pair test "p ≤ MaxP" is equivalent to "|r| ≥ r*"
//     where r* is the smallest |r| whose p-value clears MaxP. r* is found
//     once by bisection to adjacent float64s (criticalR); the continued
//     fraction betacf never runs inside the pair loop.
//  3. Tiling. The triangular pair sweep is blocked into square row tiles
//     sized so two tiles of standardized rows sit in L1/L2. Workers claim
//     tile pairs from an atomic counter, so load balancing is dynamic (the
//     triangle makes static striding uneven) and each claimed tile's rows
//     stay hot across its inner loop.
//
// The engine applies the naive per-pair admission rule exactly (see
// TestBuildNetworkMatchesReference); only the arithmetic order inside one
// correlation differs, at ulp scale, so the edge set can deviate solely
// for a pair whose coefficient lands within an ulp of the threshold.

// ScoredEdge is a retained gene pair with its correlation coefficient.
type ScoredEdge struct {
	U, V int32 // gene ids, U < V
	R    float64
}

// CorrelatedPairs computes the selected correlation for every gene pair and
// returns the pairs passing the option thresholds, sorted by (U, V) with
// U < V. The result is deterministic and independent of Workers. This is
// the primitive under BuildNetwork; callers that need the coefficients
// (threshold sweeps, edge weighting) use it directly instead of re-running
// per-pair correlations.
func CorrelatedPairs(m *Matrix, opts NetworkOptions) []ScoredEdge {
	out := scoredPairs(m, opts)
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// scoredPairs is CorrelatedPairs without the (U, V) sort — the engine sweep
// itself, for callers that canonicalize anyway (BuildNetwork's Builder
// counting-sorts, ThresholdSweep buckets into Builders).
func scoredPairs(m *Matrix, opts NetworkOptions) []ScoredEdge {
	out, _ := scoredPairsContext(context.Background(), m, opts)
	return out
}

// scoredPairsContext is the cancellable engine sweep: workers poll ctx at
// every tile-pair claim (a claim is ~ms of dot products, so cancellation
// lands promptly) and the row standardization polls between rows. On
// cancellation the partial result is discarded and ctx.Err() returned.
func scoredPairsContext(ctx context.Context, m *Matrix, opts NetworkOptions) ([]ScoredEdge, error) {
	opts = opts.withDefaults()
	thresh := opts.MinAbsR
	if rc := criticalR(opts.MaxP, m.Samples); rc > thresh {
		thresh = rc
	}
	z, err := standardizedRows(ctx, m, opts.Kind)
	if err != nil {
		return nil, err
	}
	e := &engine{
		genes:    m.Genes,
		samples:  m.Samples,
		z:        z,
		tile:     tileRows(m.Samples),
		thresh:   thresh,
		negative: opts.Negative,
	}
	return e.sweep(ctx, opts.Workers)
}

// engine is one all-pairs sweep over a standardized row arena.
type engine struct {
	genes, samples int
	z              []float64 // genes×samples, zero-mean unit-norm rows
	tile           int       // rows per tile
	thresh         float64   // admission: |r| ≥ thresh (sign-gated by negative)
	negative       bool
}

// standardizedRows builds the flat arena of standardized expression rows:
// row g occupies z[g*samples:(g+1)*samples], has zero mean and unit L2
// norm, so dot(row u, row v) is the Pearson correlation of genes u and v.
// For SpearmanCorr each row is first replaced by its average-tied ranks.
// Zero-variance rows become all-zero and therefore correlate to 0 with
// everything, matching Pearson's and Spearman's degenerate-input behavior.
// ctx is polled every 1024 rows.
func standardizedRows(ctx context.Context, m *Matrix, kind CorrelationKind) ([]float64, error) {
	s := m.Samples
	z := make([]float64, m.Genes*s)
	var rk ranker
	for g := 0; g < m.Genes; g++ {
		if g%1024 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		src := m.Row(g)
		dst := z[g*s : (g+1)*s]
		if kind == SpearmanCorr {
			rk.rankInto(dst, src)
			src = dst
		}
		var sum float64
		for _, v := range src {
			sum += v
		}
		mean := sum / float64(s)
		var ss float64
		for i, v := range src {
			d := v - mean
			dst[i] = d
			ss += d * d
		}
		if ss == 0 {
			for i := range dst {
				dst[i] = 0
			}
			continue
		}
		inv := 1 / math.Sqrt(ss)
		for i := range dst {
			dst[i] *= inv
		}
	}
	return z, nil
}

// tileRows picks the tile height so that one tile of standardized rows is
// about 32 KiB — two tiles (the working set of a tile-pair block) then fit
// comfortably in L1d+L2 and every row loaded for a block is reused against
// the whole opposing tile.
func tileRows(samples int) int {
	if samples <= 0 {
		// Degenerate zero-width rows (every correlation is 0, matching the
		// per-pair functions); any tile height works.
		return 256
	}
	const tileBytes = 32 << 10
	t := tileBytes / (samples * 8)
	if t < 8 {
		t = 8
	}
	if t > 256 {
		t = 256
	}
	return t
}

// sweep runs the blocked triangular pair sweep with the given worker count
// and returns the retained edges in unspecified order. Workers poll ctx at
// every tile-pair claim; a cancelled sweep joins its workers and returns
// ctx.Err().
func (e *engine) sweep(ctx context.Context, workers int) ([]ScoredEdge, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tiles := (e.genes + e.tile - 1) / e.tile
	totalPairs := int64(tiles) * int64(tiles+1) / 2
	if totalPairs == 0 {
		return nil, ctx.Err()
	}
	if int64(workers) > totalPairs {
		workers = int(totalPairs)
	}
	results := make([][]ScoredEdge, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []ScoredEdge
			for ctx.Err() == nil {
				k := next.Add(1) - 1
				if k >= totalPairs {
					break
				}
				ti, tj := decodeTilePair(k, tiles)
				local = e.sweepBlock(ti, tj, local)
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := 0
	for _, r := range results {
		total += len(r)
	}
	out := make([]ScoredEdge, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

// decodeTilePair maps a linear index k in [0, T(T+1)/2) to the k-th tile
// pair (i, j), i ≤ j, enumerated row-major over the upper triangle:
// (0,0)..(0,T-1), (1,1)..(1,T-1), ... The closed form inverts the prefix
// count c(i) = i·T − i(i−1)/2; the correction loop absorbs float rounding.
func decodeTilePair(k int64, tiles int) (int, int) {
	tf := float64(tiles)
	i := int((2*tf + 1 - math.Sqrt((2*tf+1)*(2*tf+1)-8*float64(k))) / 2)
	if i < 0 {
		i = 0
	}
	rowStart := func(i int) int64 { return int64(i)*int64(tiles) - int64(i)*int64(i-1)/2 }
	for i > 0 && rowStart(i) > k {
		i--
	}
	for i+1 < tiles && rowStart(i+1) <= k {
		i++
	}
	j := i + int(k-rowStart(i))
	return i, j
}

// sweepBlock computes all pairs between tile ti and tile tj (the triangle
// above the diagonal when ti == tj) and appends the admitted edges.
func (e *engine) sweepBlock(ti, tj int, out []ScoredEdge) []ScoredEdge {
	s := e.samples
	lo1, hi1 := e.tileSpan(ti)
	lo2, hi2 := e.tileSpan(tj)
	for g1 := lo1; g1 < hi1; g1++ {
		a := e.z[g1*s : g1*s+s]
		start := lo2
		if ti == tj {
			start = g1 + 1
		}
		for g2 := start; g2 < hi2; g2++ {
			r := dot(a, e.z[g2*s:g2*s+s])
			if r < 0 {
				if !e.negative || -r < e.thresh {
					continue
				}
			} else if r < e.thresh {
				continue
			}
			out = append(out, ScoredEdge{U: int32(g1), V: int32(g2), R: r})
		}
	}
	return out
}

func (e *engine) tileSpan(t int) (lo, hi int) {
	lo = t * e.tile
	hi = lo + e.tile
	if hi > e.genes {
		hi = e.genes
	}
	return lo, hi
}

// dot is the hot kernel: the inner product of two standardized rows, i.e.
// their correlation coefficient. Eight accumulators hide the FP add
// latency; the slice re-slice lets the compiler elide bounds checks.
func dot(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i <= len(a)-8; i += 8 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
		s4 += a[i+4] * b[i+4]
		s5 += a[i+5] * b[i+5]
		s6 += a[i+6] * b[i+6]
		s7 += a[i+7] * b[i+7]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// criticalR inverts the p-value threshold once per build: it returns the
// smallest float64 r in [0, 1] with PValue(r, n) ≤ maxP, so the per-pair
// significance test reduces to |r| ≥ criticalR in the pair loop. PValue is
// monotone non-increasing in |r|, so bisection to adjacent floats finds the
// exact admission boundary; betacf never runs per pair.
//
// Degenerate cases follow PValue: for n ≤ 2 every pair has p = 1, so the
// result is 0 when maxP ≥ 1 (everything is admissible) and the unattainable
// sentinel 2 otherwise (nothing is). maxP ≤ 0 admits only |r| = 1, whose
// p-value is exactly 0.
func criticalR(maxP float64, n int) float64 {
	if n <= 2 {
		if maxP >= 1 {
			return 0
		}
		return 2
	}
	if PValue(0, n) <= maxP {
		return 0
	}
	if PValue(1, n) > maxP {
		return 2
	}
	lo, hi := 0.0, 1.0 // invariant: PValue(lo) > maxP ≥ PValue(hi)
	for {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			return hi
		}
		if PValue(mid, n) <= maxP {
			hi = mid
		} else {
			lo = mid
		}
	}
}

// toEdges strips the correlation coefficients for bulk staging into a
// graph.Builder.
func toEdges(scored []ScoredEdge) []graph.Edge {
	edges := make([]graph.Edge, len(scored))
	for i, se := range scored {
		edges[i] = graph.Edge{U: se.U, V: se.V}
	}
	return edges
}
