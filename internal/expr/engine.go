package expr

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"parsample/internal/faultinject"
	"parsample/internal/graph"
)

// This file is the all-pairs correlation engine behind BuildNetwork,
// ThresholdSweep and the batched multi-spec sweeps (batch.go). Four
// transformations take the per-pair cost from "two-pass Pearson plus an
// incomplete-beta p-value" down to a fraction of a SIMD dot product:
//
//  1. Standardization. Every gene row is shifted to zero mean and scaled to
//     unit L2 norm once, into a pooled flat row-major arena (arena.go). The
//     Pearson correlation of any two genes is then exactly the dot product
//     of their standardized rows; Spearman is the same dot product after
//     replacing each row by its average-tied ranks before standardizing.
//  2. Threshold inversion. PValue(r, n) is monotone non-increasing in |r|,
//     so the per-build pair test "p ≤ MaxP" is equivalent to "|r| ≥ r*"
//     where r* is the smallest |r| whose p-value clears MaxP. r* is found
//     once by bisection to adjacent float64s (criticalR); the continued
//     fraction betacf never runs inside the pair loop.
//  3. Tiling. The triangular pair sweep is blocked into square row tiles
//     sized so two tiles of standardized rows sit in L1/L2. Workers claim
//     tile pairs from an atomic counter, so load balancing is dynamic (the
//     triangle makes static striding uneven) and each claimed tile's rows
//     stay hot across its inner loop.
//  4. Register blocking with banded candidate filtering. Inside a tile
//     pair, one row is correlated against four partner rows per inner loop
//     (kernel.go: AVX2+FMA when the CPU has it, a portable 1×4 kernel
//     otherwise), and the block result is used only to REJECT pairs that
//     sit below every admission threshold minus a sound error band. The
//     rare survivors — plus ragged block tails — are decided by the
//     canonical scalar dot over the float64 arena, so the admitted edge
//     set and every reported coefficient are bit-identical whatever the
//     kernel ISA or arena precision (Float32 halves bandwidth and doubles
//     lanes, then rechecks through the same canonical kernel).
//
// The engine applies the naive per-pair admission rule exactly (see
// TestBuildNetworkMatchesReference); only the arithmetic order inside one
// canonical correlation differs, at ulp scale, so the edge set can deviate
// solely for a pair whose coefficient lands within an ulp of the threshold.

// ScoredEdge is a retained gene pair with its correlation coefficient.
type ScoredEdge struct {
	U, V int32 // gene ids, U < V
	R    float64
}

// CorrelatedPairs computes the selected correlation for every gene pair and
// returns the pairs passing the option thresholds, sorted by (U, V) with
// U < V. The result is deterministic and independent of Workers. This is
// the primitive under BuildNetwork; callers that need the coefficients
// (threshold sweeps, edge weighting) use it directly instead of re-running
// per-pair correlations.
func CorrelatedPairs(m *Matrix, opts NetworkOptions) []ScoredEdge {
	out := scoredPairs(m, opts)
	sortEdges(out)
	return out
}

// sortEdges orders edges by (U, V), the canonical output order.
func sortEdges(out []ScoredEdge) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
}

// scoredPairs is CorrelatedPairs without the (U, V) sort — the engine sweep
// itself, for callers that canonicalize anyway (BuildNetwork's Builder
// counting-sorts, ThresholdSweep buckets into Builders).
func scoredPairs(m *Matrix, opts NetworkOptions) []ScoredEdge {
	out, _ := scoredPairsContext(context.Background(), m, opts)
	return out
}

// scoredPairsContext is the cancellable engine sweep for a single
// admission rule: the one-spec case of the batched sweep.
func scoredPairsContext(ctx context.Context, m *Matrix, opts NetworkOptions) ([]ScoredEdge, error) {
	outs, err := batchScoredContext(ctx, m, opts, []SweepSpec{opts.SweepSpec()})
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// batchScoredContext runs ONE standardize+sweep pass over m evaluating
// every admission spec, returning unsorted admitted pairs per spec. base
// supplies statistic, precision and workers; workers poll ctx at every
// tile-pair claim (a claim is ~ms of dot products, so cancellation lands
// promptly) and row standardization polls between rows. On cancellation
// the partial result is discarded and ctx.Err() returned.
func batchScoredContext(ctx context.Context, m *Matrix, base NetworkOptions, specs []SweepSpec) ([][]ScoredEdge, error) {
	base = base.withDefaults()
	if len(specs) == 0 {
		return nil, nil
	}
	ar := arenaFor(m.Genes, m.Samples, base.Precision)
	defer ar.release()
	if err := standardizeInto(ctx, ar.z64, m, base.Kind); err != nil {
		return nil, err
	}
	if base.Precision == Float32 {
		// Chunked conversion with a poll every 256 rows: on the 32k-gene cap
		// this loop touches 2²⁵ floats, long enough that a cancelled run
		// must not have to sit through it (same cadence standardizeInto
		// uses).
		chunk := 256 * m.Samples
		if chunk <= 0 {
			chunk = len(ar.z64)
		}
		for off := 0; off < len(ar.z64); off += chunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			end := off + chunk
			if end > len(ar.z64) {
				end = len(ar.z64)
			}
			for i := off; i < end; i++ {
				ar.z32[i] = float32(ar.z64[i])
			}
		}
	}
	e := &engine{
		genes:   m.Genes,
		samples: m.Samples,
		z64:     ar.z64,
		z32:     ar.z32,
		prec:    base.Precision,
		tile:    tileRows(m.Samples, base.Precision),
		specs:   resolveSpecs(specs, m.Samples),
	}
	e.setCandidateBounds()
	return e.sweep(ctx, base.Workers)
}

// engine is one all-pairs sweep over a standardized row arena.
type engine struct {
	genes, samples int
	z64            []float64 // genes×samples, zero-mean unit-norm rows (admission oracle)
	z32            []float32 // same rows in float32 (Float32 precision only)
	prec           Precision
	tile           int // rows per tile
	specs          []resolvedSpec
	posCand        float64 // block r ≥ posCand makes a pair a candidate
	negCand        float64 // block r ≤ -negCand does too (+Inf: no negative spec)
	dense          bool    // a threshold sits inside its band: skip the prefilter
}

// resolvedSpec is one admission rule with its p-value cut folded into the
// threshold: admit when |r| ≥ thresh, negative r only when negative.
type resolvedSpec struct {
	thresh   float64
	negative bool
}

// resolveSpecs folds each spec's p-value ceiling into a critical |r| so
// the pair loop is pure comparisons.
func resolveSpecs(specs []SweepSpec, samples int) []resolvedSpec {
	rs := make([]resolvedSpec, len(specs))
	for i, sp := range specs {
		th := sp.MinAbsR
		if th < 0 {
			th = 0
		}
		if rc := criticalR(sp.MaxP, samples); rc > th {
			th = rc
		}
		rs[i] = resolvedSpec{thresh: th, negative: sp.Negative}
	}
	return rs
}

// setCandidateBounds derives the block-kernel prefilter bounds: the lowest
// admission threshold over all specs (positive side) and over the
// negative-gated specs (negative side), each widened by the precision's
// recheck band so no admissible pair can be filtered out. When a widened
// bound reaches zero the prefilter admits (almost) everything and would
// only double the work, so the sweep falls back to the dense canonical
// path — exactly the pre-blocking engine.
func (e *engine) setCandidateBounds() {
	band := recheckBand64(e.samples)
	if e.prec == Float32 {
		band = recheckBand32(e.samples)
	}
	pos, neg := math.Inf(1), math.Inf(1)
	for _, sp := range e.specs {
		if sp.thresh < pos {
			pos = sp.thresh
		}
		if sp.negative && sp.thresh < neg {
			neg = sp.thresh
		}
	}
	e.posCand = pos - band
	e.negCand = neg - band
	e.dense = e.posCand <= 0 || e.negCand <= 0
}

// standardizeInto builds the flat arena of standardized expression rows:
// row g occupies z[g*samples:(g+1)*samples], has zero mean and unit L2
// norm, so dot(row u, row v) is the Pearson correlation of genes u and v.
// For SpearmanCorr each row is first replaced by its average-tied ranks.
// Zero-variance rows become all-zero and therefore correlate to 0 with
// everything, matching Pearson's and Spearman's degenerate-input behavior.
// ctx is polled roughly every 256Ki written elements, so the interval
// tracks row cost instead of row count.
func standardizeInto(ctx context.Context, z []float64, m *Matrix, kind CorrelationKind) error {
	s := m.Samples
	pollEvery := 1 + (1<<18)/(s+1)
	var rk ranker
	for g := 0; g < m.Genes; g++ {
		if g%pollEvery == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		src := m.Row(g)
		dst := z[g*s : (g+1)*s]
		if kind == SpearmanCorr {
			rk.rankInto(dst, src)
			src = dst
		}
		var sum float64
		for _, v := range src {
			sum += v
		}
		mean := sum / float64(s)
		var ss float64
		for i, v := range src {
			d := v - mean
			dst[i] = d
			ss += d * d
		}
		if ss == 0 {
			// ss is a sum of squares, so ss == 0 forces every deviation
			// written above to be exactly v - v = +0.0: the row is already
			// all-zero and needs no second pass.
			continue
		}
		inv := 1 / math.Sqrt(ss)
		for i := range dst {
			dst[i] *= inv
		}
	}
	return nil
}

// standardizedRows is standardizeInto over a freshly allocated arena, for
// tests and one-shot callers; the engine itself pools arenas (arena.go).
func standardizedRows(ctx context.Context, m *Matrix, kind CorrelationKind) ([]float64, error) {
	z := make([]float64, m.Genes*m.Samples)
	if err := standardizeInto(ctx, z, m, kind); err != nil {
		return nil, err
	}
	return z, nil
}

// tileRows picks the tile height so that one tile of standardized rows is
// about 32 KiB — two tiles (the working set of a tile-pair block) then fit
// comfortably in L1d+L2 and every row loaded for a block is reused against
// the whole opposing tile. Float32 arenas take tiles twice as tall for the
// same byte budget; the height is kept a multiple of the block width so
// only the final ragged tile pays scalar-tail pairs.
func tileRows(samples int, prec Precision) int {
	if samples <= 0 {
		// Degenerate zero-width rows (every correlation is 0, matching the
		// per-pair functions); any tile height works.
		return 256
	}
	elem := 8
	if prec == Float32 {
		elem = 4
	}
	const tileBytes = 32 << 10
	t := tileBytes / (samples * elem)
	t &^= blockRows - 1
	if t < 8 {
		t = 8
	}
	if t > 256 {
		t = 256
	}
	return t
}

// sweep runs the blocked triangular pair sweep with the given worker count
// and returns the retained edges per spec in unspecified order. Workers
// poll ctx at every tile-pair claim; a cancelled sweep joins its workers
// and returns ctx.Err().
func (e *engine) sweep(ctx context.Context, workers int) ([][]ScoredEdge, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nspec := len(e.specs)
	tiles := (e.genes + e.tile - 1) / e.tile
	totalPairs := int64(tiles) * int64(tiles+1) / 2
	if totalPairs == 0 {
		return make([][]ScoredEdge, nspec), ctx.Err()
	}
	if int64(workers) > totalPairs {
		workers = int(totalPairs)
	}
	cols := make([]*collector, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	var errOnce sync.Once
	var werr error
	fail := func(err error) { errOnce.Do(func() { werr = err }) }
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Panic containment: a worker panic (a kernel bug, or an armed
			// expr.sweep.tile panic failpoint) becomes the sweep's error
			// instead of killing the process — these goroutines are not
			// under any net/http recover, so an uncontained panic here
			// would take a shared daemon down.
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("expr: sweep worker panicked: %v", r))
				}
			}()
			c := newCollector(e)
			cols[w] = c
			for ctx.Err() == nil {
				k := next.Add(1) - 1
				if k >= totalPairs {
					break
				}
				// Failpoint: every tile claim (delay mode models slow
				// hardware under load tests; error mode aborts the sweep).
				if err := faultinject.Eval("expr.sweep.tile"); err != nil {
					fail(err)
					break
				}
				ti, tj := decodeTilePair(k, tiles)
				e.sweepBlock(ti, tj, c)
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if werr != nil {
		return nil, werr
	}
	outs := make([][]ScoredEdge, nspec)
	for si := range outs {
		total := 0
		for _, c := range cols {
			total += len(c.out[si])
		}
		merged := make([]ScoredEdge, 0, total)
		for _, c := range cols {
			merged = append(merged, c.out[si]...)
		}
		outs[si] = merged
	}
	return outs, nil
}

// decodeTilePair maps a linear index k in [0, T(T+1)/2) to the k-th tile
// pair (i, j), i ≤ j, enumerated row-major over the upper triangle:
// (0,0)..(0,T-1), (1,1)..(1,T-1), ... The closed form inverts the prefix
// count c(i) = i·T − i(i−1)/2; the correction loop absorbs float rounding.
func decodeTilePair(k int64, tiles int) (int, int) {
	tf := float64(tiles)
	i := int((2*tf + 1 - math.Sqrt((2*tf+1)*(2*tf+1)-8*float64(k))) / 2)
	if i < 0 {
		i = 0
	}
	rowStart := func(i int) int64 { return int64(i)*int64(tiles) - int64(i)*int64(i-1)/2 }
	for i > 0 && rowStart(i) > k {
		i--
	}
	for i+1 < tiles && rowStart(i+1) <= k {
		i++
	}
	j := i + int(k-rowStart(i))
	return i, j
}

// collector accumulates one worker's admitted edges per spec. Each output
// slice is grown ahead of a tile pair using the admit rate observed over
// the tiles already swept, so dense tiles stop re-growing the slice
// append by append.
type collector struct {
	e      *engine
	out    [][]ScoredEdge
	pairs  int64   // pairs examined so far
	admits []int64 // admissions so far, per spec
}

func newCollector(e *engine) *collector {
	return &collector{
		e:      e,
		out:    make([][]ScoredEdge, len(e.specs)),
		admits: make([]int64, len(e.specs)),
	}
}

// beginBlock reserves capacity for a tile pair of the given pair count
// from the running admit rate (with 25% headroom). The first tile has no
// rate yet and grows organically.
func (c *collector) beginBlock(pairs int64) {
	if c.pairs == 0 {
		return
	}
	for si := range c.out {
		if est := int(float64(c.admits[si]) / float64(c.pairs) * float64(pairs)); est > 0 {
			c.out[si] = slices.Grow(c.out[si], est+est/4+1)
		}
	}
}

// admit decides pair (g1, g2) with the canonical float64 dot kernel —
// whatever block kernel nominated it — and appends it to every spec it
// clears. This single admission point is what keeps edge sets and
// coefficients bit-identical across precisions and ISAs.
func (c *collector) admit(g1, g2 int) {
	e := c.e
	s := e.samples
	r := dot(e.z64[g1*s:g1*s+s], e.z64[g2*s:g2*s+s])
	for si := range e.specs {
		sp := &e.specs[si]
		if r < 0 {
			if !sp.negative || -r < sp.thresh {
				continue
			}
		} else if r < sp.thresh {
			continue
		}
		c.out[si] = append(c.out[si], ScoredEdge{U: int32(g1), V: int32(g2), R: r})
		c.admits[si]++
	}
}

// sweepBlock computes all pairs between tile ti and tile tj (the triangle
// above the diagonal when ti == tj), dispatching to the precision's block
// kernel or the dense canonical path.
func (e *engine) sweepBlock(ti, tj int, c *collector) {
	lo1, hi1 := e.tileSpan(ti)
	lo2, hi2 := e.tileSpan(tj)
	var pairs int64
	if ti == tj {
		n := int64(hi1 - lo1)
		pairs = n * (n - 1) / 2
	} else {
		pairs = int64(hi1-lo1) * int64(hi2-lo2)
	}
	c.beginBlock(pairs)
	switch {
	case e.dense:
		e.sweepBlockDense(lo1, hi1, lo2, hi2, ti == tj, c)
	case e.prec == Float32:
		e.sweepBlockF32(lo1, hi1, lo2, hi2, ti == tj, c)
	default:
		e.sweepBlockF64(lo1, hi1, lo2, hi2, ti == tj, c)
	}
	c.pairs += pairs
}

// sweepBlockF64 is the float64 register-blocked tile sweep: one row
// against four partners per kernel call, banded candidates re-decided by
// the canonical dot, ragged tails (fewer than four partners left, only at
// tile edges and along the diagonal) decided canonically outright.
func (e *engine) sweepBlockF64(lo1, hi1, lo2, hi2 int, diag bool, c *collector) {
	s := e.samples
	var r4 [4]float64
	for g1 := lo1; g1 < hi1; g1++ {
		a := e.z64[g1*s : g1*s+s]
		start := lo2
		if diag {
			start = g1 + 1
		}
		g2 := start
		for ; g2+blockRows <= hi2; g2 += blockRows {
			o := g2 * s
			blockDot4F64(a, e.z64[o:o+s], e.z64[o+s:o+2*s], e.z64[o+2*s:o+3*s], e.z64[o+3*s:o+4*s], &r4)
			for k := 0; k < blockRows; k++ {
				if r := r4[k]; r >= e.posCand || -r >= e.negCand {
					c.admit(g1, g2+k)
				}
			}
		}
		for ; g2 < hi2; g2++ {
			c.admit(g1, g2)
		}
	}
}

// sweepBlockF32 is sweepBlockF64 over the float32 arena: same shape,
// twice the lanes, block results widened to float64 against the (wider,
// recheckBand32) candidate bounds. Admission still reads the float64 rows.
func (e *engine) sweepBlockF32(lo1, hi1, lo2, hi2 int, diag bool, c *collector) {
	s := e.samples
	var r4 [4]float32
	for g1 := lo1; g1 < hi1; g1++ {
		a := e.z32[g1*s : g1*s+s]
		start := lo2
		if diag {
			start = g1 + 1
		}
		g2 := start
		for ; g2+blockRows <= hi2; g2 += blockRows {
			o := g2 * s
			blockDot4F32(a, e.z32[o:o+s], e.z32[o+s:o+2*s], e.z32[o+2*s:o+3*s], e.z32[o+3*s:o+4*s], &r4)
			for k := 0; k < blockRows; k++ {
				if r := float64(r4[k]); r >= e.posCand || -r >= e.negCand {
					c.admit(g1, g2+k)
				}
			}
		}
		for ; g2 < hi2; g2++ {
			c.admit(g1, g2)
		}
	}
}

// sweepBlockDense is the pre-blocking engine: canonical dot for every
// pair. Used when some admission threshold is within its recheck band of
// zero, where the prefilter would nominate (nearly) every pair and the
// block kernels would only add work.
func (e *engine) sweepBlockDense(lo1, hi1, lo2, hi2 int, diag bool, c *collector) {
	for g1 := lo1; g1 < hi1; g1++ {
		start := lo2
		if diag {
			start = g1 + 1
		}
		for g2 := start; g2 < hi2; g2++ {
			c.admit(g1, g2)
		}
	}
}

func (e *engine) tileSpan(t int) (lo, hi int) {
	lo = t * e.tile
	hi = lo + e.tile
	if hi > e.genes {
		hi = e.genes
	}
	return lo, hi
}

// dot is the canonical kernel: the inner product of two standardized
// float64 rows, i.e. their correlation coefficient. It alone decides
// admission and supplies reported coefficients; the block kernels
// (kernel.go) are only banded prefilters in front of it. Eight
// accumulators hide the FP add latency; the slice re-slice lets the
// compiler elide bounds checks.
func dot(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i <= len(a)-8; i += 8 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
		s4 += a[i+4] * b[i+4]
		s5 += a[i+5] * b[i+5]
		s6 += a[i+6] * b[i+6]
		s7 += a[i+7] * b[i+7]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
}

// criticalR inverts the p-value threshold once per build: it returns the
// smallest float64 r in [0, 1] with PValue(r, n) ≤ maxP, so the per-pair
// significance test reduces to |r| ≥ criticalR in the pair loop. PValue is
// monotone non-increasing in |r|, so bisection to adjacent floats finds the
// exact admission boundary; betacf never runs per pair.
//
// Degenerate cases follow PValue: for n ≤ 2 every pair has p = 1, so the
// result is 0 when maxP ≥ 1 (everything is admissible) and the unattainable
// sentinel 2 otherwise (nothing is). maxP ≤ 0 admits only |r| = 1, whose
// p-value is exactly 0.
func criticalR(maxP float64, n int) float64 {
	if n <= 2 {
		if maxP >= 1 {
			return 0
		}
		return 2
	}
	if PValue(0, n) <= maxP {
		return 0
	}
	if PValue(1, n) > maxP {
		return 2
	}
	lo, hi := 0.0, 1.0 // invariant: PValue(lo) > maxP ≥ PValue(hi)
	for {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			return hi
		}
		if PValue(mid, n) <= maxP {
			hi = mid
		} else {
			lo = mid
		}
	}
}

// toEdges strips the correlation coefficients for bulk staging into a
// graph.Builder.
func toEdges(scored []ScoredEdge) []graph.Edge {
	edges := make([]graph.Edge, len(scored))
	for i, se := range scored {
		edges[i] = graph.Edge{U: se.U, V: se.V}
	}
	return edges
}
