package expr

import (
	"context"

	"parsample/internal/graph"
)

// Batched sweeps: one standardize+tile pass over a matrix evaluating many
// admission rules at once. The marginal cost of an extra rule is one
// threshold comparison per candidate pair — the O(genes²·samples) kernel
// work is shared — so k concurrent requests that differ only in their
// filter parameters cost barely more than one (the <1.3× criterion in
// bench_test.go). internal/pipeline's sweep coalescer rides this to merge
// concurrent requests over the same dataset into a single kernel
// invocation; ThresholdSweep's bucket-after-one-loose-sweep remains the
// better shape when every threshold shares one sign gate and p-cut.

// SweepSpec is one admission rule of a batched sweep. Unlike
// NetworkOptions, fields are literal: no negative-means-default sentinels
// (a negative MinAbsR is clamped to 0).
type SweepSpec struct {
	MinAbsR  float64 // minimum |correlation|
	MaxP     float64 // maximum p-value
	Negative bool    // admit strong negative correlations too
}

// SweepSpec extracts o's admission rule with its default sentinels
// resolved, for batching alongside other rules that share o's statistic
// and precision.
func (o NetworkOptions) SweepSpec() SweepSpec {
	o = o.withDefaults()
	return SweepSpec{MinAbsR: o.MinAbsR, MaxP: o.MaxP, Negative: o.Negative}
}

// BatchCorrelatedPairsContext evaluates every spec in one sweep and
// returns result[i] = the pairs admitted by specs[i], each sorted by
// (U, V) exactly as CorrelatedPairs would return it. base supplies the
// statistic, precision and worker count; its own threshold fields are
// ignored in favor of the specs.
func BatchCorrelatedPairsContext(ctx context.Context, m *Matrix, base NetworkOptions, specs []SweepSpec) ([][]ScoredEdge, error) {
	outs, err := batchScoredContext(ctx, m, base, specs)
	if err != nil {
		return nil, err
	}
	for _, out := range outs {
		// Per-spec poll: sorting k admitted-pair lists can dwarf the sweep
		// for loose thresholds, so cancellation must land between specs too.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sortEdges(out)
	}
	return outs, nil
}

// BatchBuildNetworksContext is the graph-producing form of
// BatchCorrelatedPairsContext: one sweep, one thresholded correlation
// network per spec, each identical to the BuildNetworkContext result for
// the corresponding options. This is the kernel under the pipeline's
// cross-request sweep coalescer.
func BatchBuildNetworksContext(ctx context.Context, m *Matrix, base NetworkOptions, specs []SweepSpec) ([]*graph.Graph, error) {
	outs, err := batchScoredContext(ctx, m, base, specs)
	if err != nil {
		return nil, err
	}
	gs := make([]*graph.Graph, len(outs))
	for i, scored := range outs {
		// Per-spec poll: CSR construction is O(edges) per spec and runs
		// after the sweep's own polling has ended.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b := graph.NewBuilder(m.Genes)
		b.AddEdges(toEdges(scored))
		gs[i] = b.Build()
	}
	return gs, nil
}
