package expr

import (
	"context"
	"errors"
	"strings"
	"testing"

	"parsample/internal/faultinject"
)

// faultMatrix synthesizes a matrix large enough to span several sweep
// tiles, so the tile-claim failpoint is actually reached.
func faultMatrix(t *testing.T) *Matrix {
	t.Helper()
	syn, err := Synthesize(SyntheticSpec{Genes: 192, Samples: 16, Modules: 3, ModuleSize: 10, Noise: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return syn.M
}

// TestSweepTileFailpointError: an armed expr.sweep.tile error site aborts
// the sweep with the injected error; disarmed, the same build succeeds.
// faultinject state is process-global — no t.Parallel here.
func TestSweepTileFailpointError(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	m := faultMatrix(t)
	opts := NetworkOptions{MinAbsR: 0.5, MaxP: 0.05}

	faultinject.Enable("expr.sweep.tile", faultinject.Spec{Mode: faultinject.ModeError, Count: 1})
	if _, err := BuildNetworkContext(context.Background(), m, opts); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}

	// Count exhausted: the sweep runs clean.
	g, err := BuildNetworkContext(context.Background(), m, opts)
	if err != nil {
		t.Fatalf("rebuild after exhausted failpoint: %v", err)
	}
	if want := BuildNetwork(m, opts); g.M() != want.M() {
		t.Fatalf("rebuilt network has %d edges, want %d", g.M(), want.M())
	}
}

// TestSweepWorkerPanicContained: a panic at a tile claim must become the
// sweep's error — worker goroutines run under no net/http recover, so an
// escaped panic here would kill a shared daemon.
func TestSweepWorkerPanicContained(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	m := faultMatrix(t)
	faultinject.Enable("expr.sweep.tile", faultinject.Spec{Mode: faultinject.ModePanic, Count: 1})
	_, err := BuildNetworkContext(context.Background(), m, NetworkOptions{MinAbsR: 0.5, MaxP: 0.05})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want a contained panic error", err)
	}
}
