package expr

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the matrix as CSV: a header row "gene,s0,s1,...", then one
// row per gene with the gene id in the first column. This is the layout of a
// typical GEO series matrix export after probe collapsing.
func WriteCSV(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	header := make([]string, m.Samples+1)
	header[0] = "gene"
	for s := 0; s < m.Samples; s++ {
		header[s+1] = fmt.Sprintf("s%d", s)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, m.Samples+1)
	for g := 0; g < m.Genes; g++ {
		row[0] = strconv.Itoa(g)
		for s := 0; s < m.Samples; s++ {
			row[s+1] = strconv.FormatFloat(m.At(g, s), 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses the format written by WriteCSV. The first row must be a
// header; every subsequent row is one gene. Gene order follows row order
// (the first column is informational only).
func ReadCSV(r io.Reader) (*Matrix, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("expr: csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("expr: csv needs a header plus at least one gene row")
	}
	samples := len(records[0]) - 1
	if samples < 1 {
		return nil, fmt.Errorf("expr: csv header has no sample columns")
	}
	genes := len(records) - 1
	m := NewMatrix(genes, samples)
	for gi, rec := range records[1:] {
		if len(rec) != samples+1 {
			return nil, fmt.Errorf("expr: csv row %d has %d fields, want %d", gi+2, len(rec), samples+1)
		}
		for s := 0; s < samples; s++ {
			v, err := strconv.ParseFloat(rec[s+1], 64)
			if err != nil {
				return nil, fmt.Errorf("expr: csv row %d col %d: %w", gi+2, s+2, err)
			}
			m.Set(gi, s, v)
		}
	}
	return m, nil
}
