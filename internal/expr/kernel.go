package expr

// Register-blocked micro-kernels for the all-pairs sweep.
//
// The engine's inner loop computes correlations of one standardized row a
// against a block of four partner rows b0..b3 at once, so every element of
// a loaded from memory is reused across four multiply-accumulates. On
// amd64 with AVX2+FMA (detected at runtime, kernel_amd64.s) the block
// kernel retires 8 float64 or 16 float32 MACs per row per cycle-pair; the
// portable fallback below keeps the same 1×4 shape with two accumulators
// per partner so the add-latency chains stay short.
//
// Block kernels are PREFILTERS, never deciders. Whatever ISA or precision
// produced a block coefficient, a pair is admitted or rejected only by the
// canonical scalar dot (engine.go) over the float64 arena, and only pairs
// whose block coefficient clears an admission threshold minus a sound
// recheck band reach it. That architecture is what makes the edge set
// byte-identical across Float64/Float32 and across machines with and
// without AVX2 — the bands below bound the block-vs-canonical error, so
// no admissible pair can be filtered out and no filtered pair can be
// admissible. See DESIGN.md §7 for the bound derivations.

// blockRows is the partner-block width of the micro-kernel.
const blockRows = 4

// blockDot4F64 computes out[k] = Σ_i a[i]·bk[i] for the four partner rows.
// All five rows must have identical length.
func blockDot4F64(a, b0, b1, b2, b3 []float64, out *[4]float64) {
	if useAVXKernels && len(a) > 0 {
		dot4F64AVX(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], len(a), out)
		return
	}
	blockDot4F64Generic(a, b0, b1, b2, b3, out)
}

// blockDot4F32 is the float32-arena block kernel. Accumulation is float32
// in-register on the portable path and float32 lanes on the AVX path; the
// engine widens the result to float64 before comparing against banded
// thresholds, and recheckBand32 absorbs the accumulated rounding.
func blockDot4F32(a, b0, b1, b2, b3 []float32, out *[4]float32) {
	if useAVXKernels && len(a) > 0 {
		dot4F32AVX(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], len(a), out)
		return
	}
	blockDot4F32Generic(a, b0, b1, b2, b3, out)
}

// blockDot4F64Generic is the portable 1×4 kernel: two interleaved
// accumulators per partner row hide FP add latency; the re-slices let the
// compiler elide bounds checks in the unrolled body.
func blockDot4F64Generic(a, b0, b1, b2, b3 []float64, out *[4]float64) {
	n := len(a)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	var s00, s01, s10, s11, s20, s21, s30, s31 float64
	i := 0
	for ; i+2 <= n; i += 2 {
		x0, x1 := a[i], a[i+1]
		s00 += x0 * b0[i]
		s01 += x1 * b0[i+1]
		s10 += x0 * b1[i]
		s11 += x1 * b1[i+1]
		s20 += x0 * b2[i]
		s21 += x1 * b2[i+1]
		s30 += x0 * b3[i]
		s31 += x1 * b3[i+1]
	}
	if i < n {
		x := a[i]
		s00 += x * b0[i]
		s10 += x * b1[i]
		s20 += x * b2[i]
		s30 += x * b3[i]
	}
	out[0] = s00 + s01
	out[1] = s10 + s11
	out[2] = s20 + s21
	out[3] = s30 + s31
}

// blockDot4F32Generic mirrors blockDot4F64Generic on a float32 arena.
func blockDot4F32Generic(a, b0, b1, b2, b3 []float32, out *[4]float32) {
	n := len(a)
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	var s00, s01, s10, s11, s20, s21, s30, s31 float32
	i := 0
	for ; i+2 <= n; i += 2 {
		x0, x1 := a[i], a[i+1]
		s00 += x0 * b0[i]
		s01 += x1 * b0[i+1]
		s10 += x0 * b1[i]
		s11 += x1 * b1[i+1]
		s20 += x0 * b2[i]
		s21 += x1 * b2[i+1]
		s30 += x0 * b3[i]
		s31 += x1 * b3[i+1]
	}
	if i < n {
		x := a[i]
		s00 += x * b0[i]
		s10 += x * b1[i]
		s20 += x * b2[i]
		s30 += x * b3[i]
	}
	out[0] = s00 + s01
	out[1] = s10 + s11
	out[2] = s20 + s21
	out[3] = s30 + s31
}

const (
	ulp32 = 1.0 / (1 << 24) // float32 unit roundoff 2⁻²⁴
	ulp64 = 1.0 / (1 << 52) // float64 unit roundoff 2⁻⁵²
)

// recheckBand64 bounds |block r − canonical r| for the float64 kernels.
// Both are exact reorderings of the same n-term float64 sum of products of
// unit-norm rows, so the classic summation bound |err| ≤ n·u·Σ|aᵢbᵢ| ≤
// n·u (Cauchy-Schwarz) applies to each, doubled for the difference and
// padded with an absolute floor so a zero-sample band is still sound.
func recheckBand64(samples int) float64 {
	return 1e-12 + float64(samples)*8*ulp64
}

// recheckBand32 bounds |float32-block r − canonical float64 r|: a
// conversion term (each z32 element is within u32/2 of its z64 source, and
// the rows are unit-norm, so the exact product sum moves by ≤ n·u32/2 in
// the worst case but the norm renormalizes most of it away — we keep the
// conservative n/2 factor) plus a float32 accumulation term covered by the
// fixed 64·u32 pad for the sample widths the engine caps at (synthesis
// caps samples at 2048; the two-accumulator and 8-lane orders keep the
// effective chain length ≤ n/8 ≪ n/2 + 64 there). At n = 2048 the band is
// ≈ 6.6e-5 — ~8× the worst observed deviation in the differential tests,
// and still ~4 orders of magnitude below the paper's admission thresholds.
func recheckBand32(samples int) float64 {
	return ulp32 * (float64(samples)/2 + 64)
}

// KernelISA names the active block-kernel implementation, for /statsz,
// benchmarks, and BENCH_*.json provenance.
func KernelISA() string {
	if useAVXKernels {
		return "avx2-fma"
	}
	return "generic"
}
