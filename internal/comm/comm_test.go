package comm

import (
	"math"
	"testing"
)

func TestPayloadBuiltinsRoundTrip(t *testing.T) {
	cases := []any{nil, 3.25, int64(-7), 42, "hello", []byte{1, 2, 3}}
	for _, v := range cases {
		kind, data, err := EncodePayload(v)
		if err != nil {
			t.Fatalf("encode %T: %v", v, err)
		}
		got, err := DecodePayload(kind, data)
		if err != nil {
			t.Fatalf("decode %T: %v", v, err)
		}
		switch want := v.(type) {
		case []byte:
			g := got.([]byte)
			if string(g) != string(want) {
				t.Fatalf("bytes round trip: got %v want %v", g, want)
			}
		default:
			if got != v {
				t.Fatalf("round trip %T: got %v want %v", v, got, v)
			}
		}
	}
}

type testPayload struct{ A, B int32 }

func TestRegisteredCodecRoundTrip(t *testing.T) {
	RegisterCodec(Codec{
		Kind:  KindUserBase + 50,
		Match: func(v any) bool { _, ok := v.(testPayload); return ok },
		Encode: func(v any) []byte {
			p := v.(testPayload)
			return []byte{byte(p.A), byte(p.B)}
		},
		Decode: func(data []byte) (any, error) {
			return testPayload{A: int32(data[0]), B: int32(data[1])}, nil
		},
	})
	kind, data, err := EncodePayload(testPayload{A: 5, B: 9})
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindUserBase+50 {
		t.Fatalf("kind %d", kind)
	}
	got, err := DecodePayload(kind, data)
	if err != nil {
		t.Fatal(err)
	}
	if got.(testPayload) != (testPayload{A: 5, B: 9}) {
		t.Fatalf("round trip: %v", got)
	}
}

func TestEncodePayloadUnknownType(t *testing.T) {
	if _, _, err := EncodePayload(struct{ X chan int }{}); err == nil {
		t.Fatal("want error for unregistered payload type")
	}
	if _, err := DecodePayload(60_000, nil); err == nil {
		t.Fatal("want error for unknown payload kind")
	}
}

func TestRegisterCodecPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		f()
	}
	ok := Codec{
		Kind:   KindUserBase + 51,
		Match:  func(any) bool { return false },
		Encode: func(any) []byte { return nil },
		Decode: func([]byte) (any, error) { return nil, nil },
	}
	mustPanic("reserved kind", func() {
		c := ok
		c.Kind = 3
		RegisterCodec(c)
	})
	mustPanic("nil hooks", func() {
		c := ok
		c.Match = nil
		RegisterCodec(c)
	})
	RegisterCodec(ok)
	mustPanic("duplicate kind", func() { RegisterCodec(ok) })
}

func TestHops(t *testing.T) {
	for _, tc := range []struct {
		p    int
		want float64
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}} {
		if got := Hops(tc.p); got != tc.want {
			t.Fatalf("Hops(%d) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestSendRecvAdvance(t *testing.T) {
	m := DefaultCostModel()
	clock, arrive := m.SendAdvance(1.0, 1000)
	if want := 1.0 + m.OverheadSeconds; clock != want {
		t.Fatalf("send clock %v, want %v", clock, want)
	}
	if want := clock + m.LatencySeconds + 1000*m.SecondsPerByte; arrive != want {
		t.Fatalf("arrive %v, want %v", arrive, want)
	}
	// A receiver behind the arrival jumps to it; one already past it only
	// pays the overhead.
	if got := m.RecvAdvance(0, arrive); got != arrive+m.OverheadSeconds {
		t.Fatalf("behind recv %v", got)
	}
	if got := m.RecvAdvance(arrive+1, arrive); got != arrive+1+m.OverheadSeconds {
		t.Fatalf("ahead recv %v", got)
	}
}

func TestGathervAdvance(t *testing.T) {
	m := DefaultCostModel()
	clocks := []float64{5, 1, 2, 3}
	sizes := []int{0, 100, 200, 300}

	got, msgs, bytes := m.GathervAdvance(4, 1, 0, clocks[1], clocks, sizes)
	if want := clocks[1] + m.OverheadSeconds; got != want || msgs != 0 || bytes != 0 {
		t.Fatalf("non-root: %v %d %d", got, msgs, bytes)
	}

	got, msgs, bytes = m.GathervAdvance(4, 0, 0, clocks[0], clocks, sizes)
	latest := 5.0 // root's own clock dominates the contributors here
	want := latest + Hops(4)*m.LatencySeconds + 2*m.OverheadSeconds + 600*m.SecondsPerByte
	if math.Abs(got-want) > 1e-15 || msgs != 3 || bytes != 600 {
		t.Fatalf("root: %v (want %v) %d %d", got, want, msgs, bytes)
	}

	if got, msgs, _ := m.GathervAdvance(1, 0, 0, 7, clocks[:1], sizes[:1]); got != 7 || msgs != 0 {
		t.Fatalf("p=1: %v %d", got, msgs)
	}
}

func TestReduce(t *testing.T) {
	vals := []float64{3, -1, 7, 2}
	if got := Reduce(ReduceSum, vals); got != 11 {
		t.Fatalf("sum %v", got)
	}
	if got := Reduce(ReduceMax, vals); got != 7 {
		t.Fatalf("max %v", got)
	}
	if got := Reduce(ReduceMin, vals); got != -1 {
		t.Fatalf("min %v", got)
	}
}

func TestRunStatsWallFields(t *testing.T) {
	s := RunStats{
		RankSeconds:     []float64{1, 3, 2},
		RankWallSeconds: []float64{0.5, 0.25, 0.75},
		SerialOps:       100,
	}
	if got := s.CriticalPath(); got != 3 {
		t.Fatalf("critical path %v", got)
	}
	if got := s.MaxRankWall(); got != 0.75 {
		t.Fatalf("max rank wall %v", got)
	}
	m := DefaultCostModel()
	if got, want := m.Time(&s), 3+100*m.SerialSecPerOp; got != want {
		t.Fatalf("time %v want %v", got, want)
	}
}
