package comm

import (
	"fmt"
	"math/bits"
)

// CostModel translates simulated work and communication into modeled
// cluster execution time (seconds). The constants default to values
// typical of the 2012-era commodity clusters the paper used (Firefly: AMD
// dual/quad-core nodes, gigabit-class interconnect). The model follows
// LogP: per-message CPU overhead at each end (OverheadSeconds), wire
// latency (LatencySeconds), inverse bandwidth (SecondsPerByte), plus a
// per-operation compute cost (SecondsPerOp).
//
// The *Advance methods are the single source of the clock arithmetic: both
// the simulated runtime (internal/mpisim) and the TCP runtime
// (internal/transport) advance their virtual clocks through them, so the
// two backends cannot drift — identical inputs give bit-identical clocks,
// which is what makes the modeled-arrival AnyRecv rule deliver in the same
// order on both.
type CostModel struct {
	SecondsPerOp    float64 // per elementary graph operation
	LatencySeconds  float64 // wire latency per point-to-point message
	OverheadSeconds float64 // per-message CPU overhead at sender and receiver
	SecondsPerByte  float64 // inverse bandwidth
	SerialSecPerOp  float64 // per op of unavoidable serial work (merge/dedup)
}

// DefaultCostModel mirrors a ~100 Mops/s per-core graph workload with
// ~50 µs MPI latency, ~10 µs per-message overhead and ~100 MB/s effective
// bandwidth.
func DefaultCostModel() CostModel {
	return CostModel{
		SecondsPerOp:    1e-8,
		LatencySeconds:  50e-6,
		OverheadSeconds: 10e-6,
		SecondsPerByte:  1e-8,
		SerialSecPerOp:  1e-8,
	}
}

// Hops is the depth of a binomial tree over p ranks: ceil(log2 p).
func Hops(p int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(bits.Len(uint(p - 1)))
}

// SendAdvance charges one outgoing message: the sender's clock pays the
// per-message overhead and the message is stamped with its modeled arrival
// (send time + latency + bytes/bandwidth).
func (m CostModel) SendAdvance(clock float64, size int) (newClock, arrive float64) {
	newClock = clock + m.OverheadSeconds
	return newClock, newClock + m.LatencySeconds + float64(size)*m.SecondsPerByte
}

// RecvAdvance advances a receiver's clock to the message's arrival time
// (if it was not already past it) plus the per-message overhead.
func (m CostModel) RecvAdvance(clock, arrive float64) float64 {
	if arrive > clock {
		clock = arrive
	}
	return clock + m.OverheadSeconds
}

// BarrierAdvance advances one rank's clock across a barrier: every clock
// moves to the latest arrival plus a dissemination round of log2(P)
// latencies.
func (m CostModel) BarrierAdvance(p int, clock float64, clocks []float64) float64 {
	t := MaxClock(clocks) + Hops(p)*m.LatencySeconds
	if t > clock {
		clock = t
	}
	return clock
}

// BcastAdvance advances one rank's clock across a broadcast of size bytes
// from root (whose deposit clock is rootClock) and returns the collective
// message/byte charge this rank books. Modeled as a pipelined binomial
// tree: non-root ranks advance to root's send time plus log2(P) hops of
// latency and transfer plus the two endpoint overheads; root pays its send
// overhead and books the traffic.
func (m CostModel) BcastAdvance(p, id, root int, clock, rootClock float64, size int) (newClock float64, collMsgs, collBytes int64) {
	if p <= 1 {
		return clock, 0, 0
	}
	if id == root {
		return clock + m.OverheadSeconds, int64(p - 1), int64((p - 1) * size)
	}
	t := rootClock + Hops(p)*(m.LatencySeconds+float64(size)*m.SecondsPerByte) + 2*m.OverheadSeconds
	if t > clock {
		clock = t
	}
	return clock, 0, 0
}

// GathervAdvance advances one rank's clock across a variable-size gather
// to root (clocks/sizes are the per-rank deposit vectors) and returns the
// collective traffic charge this rank books. Modeled as a pipelined
// binomial gather tree: root advances to the latest contributor plus
// log2(P) latency hops and the serialized transfer of all non-root bytes;
// contributors just pay their send overhead.
func (m CostModel) GathervAdvance(p, id, root int, clock float64, clocks []float64, sizes []int) (newClock float64, collMsgs, collBytes int64) {
	if p == 1 {
		return clock, 0, 0
	}
	if id != root {
		return clock + m.OverheadSeconds, 0, 0
	}
	latest, total := clock, 0
	for i := 0; i < p; i++ {
		if i == root {
			continue
		}
		total += sizes[i]
		if t := clocks[i] + m.OverheadSeconds; t > latest {
			latest = t
		}
	}
	t := latest + Hops(p)*m.LatencySeconds + 2*m.OverheadSeconds + float64(total)*m.SecondsPerByte
	if t > clock {
		clock = t
	}
	return clock, int64(p - 1), int64(total)
}

// AllreduceAdvance advances one rank's clock across an 8-byte allreduce
// (clocks is the per-rank deposit vector) and returns the collective
// traffic charge this rank books (rank 0 books the butterfly's modeled
// traffic once). Modeled as a butterfly: log2(P) rounds of latency, two
// overheads and one word.
func (m CostModel) AllreduceAdvance(p, id int, clock float64, clocks []float64) (newClock float64, collMsgs, collBytes int64) {
	t := MaxClock(clocks) + Hops(p)*(m.LatencySeconds+2*m.OverheadSeconds+8*m.SecondsPerByte)
	if t > clock {
		clock = t
	}
	if id == 0 && p > 1 {
		return clock, int64(2 * (p - 1)), int64(16 * (p - 1))
	}
	return clock, 0, 0
}

// Reduce folds vals in index (rank) order with op, so the result is
// bitwise identical on every rank regardless of scheduling.
func Reduce(op ReduceOp, vals []float64) float64 {
	out := vals[0]
	for _, x := range vals[1:] {
		switch op {
		case ReduceSum:
			out += x
		case ReduceMax:
			if x > out {
				out = x
			}
		case ReduceMin:
			if x < out {
				out = x
			}
		default:
			panic(fmt.Sprintf("comm: unknown reduce op %d", int(op)))
		}
	}
	return out
}

// MaxClock returns the latest clock in the vector (0 for an empty one).
func MaxClock(xs []float64) float64 {
	mx := 0.0
	for _, x := range xs {
		if x > mx {
			mx = x
		}
	}
	return mx
}

// RunStats captures everything the model needs from one parallel run,
// plus — for runs executed on a real transport — the measured wall clocks
// that sit next to the modeled seconds so measured-vs-modeled comparisons
// read one struct, not two code paths.
type RunStats struct {
	P            int
	RankOps      []int64   // per-rank elementary operations (compute)
	RankSeconds  []float64 // per-rank virtual clocks at run end (critical path)
	Messages     int64     // point-to-point messages
	Bytes        int64     // point-to-point payload bytes
	CollMessages int64     // modeled messages moved by collectives
	CollBytes    int64     // modeled payload bytes moved by collectives
	SerialOps    int64     // post-processing done on one processor (dedup, merge)
	Restarts     int64     // random-walk restarts (tracked, not charged as compute)

	// RankWallSeconds is the measured wall-clock seconds each rank spent
	// inside Run — telemetry, not content identity: the snapshot codec and
	// the determinism contract deliberately exclude it.
	RankWallSeconds []float64
	// WallSeconds is the end-to-end measured wall clock of the run as seen
	// by the rank that filled the stats.
	WallSeconds float64
	// Measured is true when the run executed on a real transport (wall
	// fields are a measurement, not scheduler noise from a simulation).
	Measured bool
}

// MaxRankOps returns the bottleneck rank's operation count.
func (s *RunStats) MaxRankOps() int64 {
	var mx int64
	for _, v := range s.RankOps {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// TotalOps returns the sum of per-rank operations.
func (s *RunStats) TotalOps() int64 {
	var t int64
	for _, v := range s.RankOps {
		t += v
	}
	return t
}

// CriticalPath returns the latest per-rank virtual clock, or 0 when the run
// carried no clocks (sequential algorithms, legacy stats).
func (s *RunStats) CriticalPath() float64 {
	return MaxClock(s.RankSeconds)
}

// MaxRankWall returns the latest measured per-rank wall clock, or 0 when
// the run carried no wall measurements.
func (s *RunStats) MaxRankWall() float64 {
	return MaxClock(s.RankWallSeconds)
}

// Time returns the modeled execution time in seconds. Runs executed on the
// clocked runtime (RankSeconds present) are charged their critical path —
// the latest rank's virtual clock, which already interleaves compute with
// the communication it actually waited on — plus the serial tail. Legacy
// stats without clocks fall back to the flat approximation
// bottleneck compute + total latency + total transfer + serial tail.
func (m CostModel) Time(s *RunStats) float64 {
	if len(s.RankSeconds) > 0 {
		return s.CriticalPath() + float64(s.SerialOps)*m.SerialSecPerOp
	}
	return float64(s.MaxRankOps())*m.SecondsPerOp +
		float64(s.Messages)*m.LatencySeconds +
		float64(s.Bytes)*m.SecondsPerByte +
		float64(s.SerialOps)*m.SerialSecPerOp
}
