// Package comm defines the rank-side communication surface the parallel
// samplers run against: a Comm of P ranks, each driven through a Rank
// handle offering nonblocking point-to-point sends, deterministic receives
// (AnyRecv delivers by modeled arrival stamp, sender rank breaking ties),
// the four collectives the kernels use (Barrier, Bcast, Gatherv,
// Allreduce), abort propagation, and byte/message accounting.
//
// Two implementations exist: internal/mpisim simulates all P ranks as
// goroutines in one process under virtual clocks (the Figure-10 model),
// and internal/transport runs each rank as a real process connected over
// TCP. Both advance the same virtual clocks through the shared CostModel
// helpers in this package and apply the same AnyRecv delivery rule, so a
// sampler executed on either backend produces byte-identical edge sets,
// identical per-rank clocks, and identical traffic counters — the
// determinism contract the differential tests in internal/transport pin.
package comm

import "context"

// Message is a tagged payload between ranks.
type Message struct {
	From    int
	Tag     int
	Payload any
	Bytes   int     // accounted payload size
	Arrive  float64 // modeled arrival time at the receiver (seconds)
}

// ReduceOp selects the Allreduce combiner.
type ReduceOp int

const (
	// ReduceSum adds contributions.
	ReduceSum ReduceOp = iota
	// ReduceMax keeps the maximum contribution.
	ReduceMax
	// ReduceMin keeps the minimum contribution.
	ReduceMin
)

// AbortSignal is the sentinel a rank goroutine unwinds with when its run is
// aborted. Comm implementations panic with it from blocking primitives
// (and from Rank.Abort) and recover it — and only it — inside Comm.Run.
type AbortSignal struct{}

// Rank is one processor's handle inside Comm.Run. All methods must be
// called only from the goroutine the handle was passed to (SPMD
// discipline: the same kernel closure runs on every rank).
type Rank interface {
	// ID returns this rank's index in [0, P).
	ID() int
	// P returns the communicator size.
	P() int
	// Ops returns the operations charged so far via Compute.
	Ops() int64
	// Clock returns the rank's virtual time in modeled seconds.
	Clock() float64
	// Compute charges n elementary operations of local work, advancing the
	// virtual clock by n·SecondsPerOp.
	Compute(n int64)

	// Send posts a message to rank `to`. It never blocks (per-pair queues
	// are unbounded), so no send/receive ordering can deadlock a run. The
	// sender's clock pays the per-message overhead; the message is stamped
	// with its modeled arrival time (send time + latency + bytes/bandwidth).
	Send(to, tag int, payload any, size int)
	// Recv blocks until a message from rank `from` is pending and returns
	// the oldest one, advancing the receiver's clock to the message's
	// arrival (if not already past it) plus the per-message overhead.
	Recv(from int) Message
	// AnyRecv receives from any of the given sources: it returns the
	// pending message with the smallest modeled arrival time (sender rank
	// breaks ties). To keep delivery deterministic it waits until every
	// listed source has at least one pending message — only then is the
	// earliest virtual arrival decidable. Callers drop a source from the
	// set once its end-of-stream message arrives.
	AnyRecv(sources []int) Message
	// Sendrecv posts the send (never blocking) and then receives from
	// `from` — the classic deadlock-safe exchange primitive.
	Sendrecv(to, tag int, payload any, size int, from int) Message

	// Barrier blocks until all P ranks have called it.
	Barrier()
	// Bcast broadcasts root's payload to every rank (each caller passes
	// its own payload; only root's is delivered) and returns it.
	Bcast(root int, payload any, size int) any
	// Gatherv gathers every rank's (variable-size) payload to root. At
	// root the returned slice holds rank i's payload at index i; every
	// other rank gets nil.
	Gatherv(root int, payload any, size int) []any
	// Allreduce combines every rank's contribution with op and returns the
	// result on all ranks (folded in rank order, so bitwise identical
	// everywhere).
	Allreduce(v float64, op ReduceOp) float64

	// Abort unwinds the calling rank goroutine with AbortSignal; Comm.Run
	// recovers it. Rank compute loops call this when they observe a
	// cancelled context.
	Abort()
}

// Comm is a communicator over P ranks. A simulated communicator hosts all
// P ranks in-process; a transport communicator hosts exactly one local
// rank and reaches the rest over the wire — either way Run drives every
// locally-hosted rank and returns once they have finished or unwound.
type Comm interface {
	// P returns the number of ranks.
	P() int
	// Run executes fn on every locally-hosted rank and waits for
	// completion. An aborted run still returns once every local rank has
	// finished or unwound; the error reports transport or abort causes
	// (simulated runs return nil and leave cancellation to the caller's
	// context check).
	Run(fn func(r Rank)) error
	// Abort marks the run as aborted and wakes every local rank blocked in
	// a receive or collective. Safe to call from any goroutine, repeatedly.
	Abort()
	// Aborted reports whether Abort has been called.
	Aborted() bool
	// AbortOnCancel aborts the communicator when ctx is cancelled. The
	// returned stop function releases the watcher; call it (typically via
	// defer) after Run returns.
	AbortOnCancel(ctx context.Context) (stop func())

	// Messages returns the total point-to-point messages sent (local ranks).
	Messages() int64
	// Bytes returns the total point-to-point payload bytes sent.
	Bytes() int64
	// CollMessages returns the modeled message count of the collectives.
	CollMessages() int64
	// CollBytes returns the modeled payload bytes moved by the collectives.
	CollBytes() int64
	// FillStats copies the run's accounting into s: per-rank operation
	// counts, virtual clocks and wall clocks, point-to-point traffic, and
	// collective traffic. Complete only on a simulated communicator or on
	// the distributed rank that gathers remote stats (rank 0).
	FillStats(s *RunStats)
}
