package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// Payload codec registry. The simulated runtime passes payloads between
// ranks as in-memory values, but the TCP transport has to serialize them.
// Rather than teach the transport about sampler-private message types (an
// import cycle: sampling depends on comm), packages that send custom
// payloads register a Codec for each type at init time; the transport
// encodes through EncodePayload and decodes through DecodePayload, so a
// payload round-trips the wire as exactly the concrete type the receiving
// kernel type-asserts on.
//
// Kinds below KindUserBase identify the built-in payloads every kernel
// uses (nil markers, float64 reductions, plain byte strings); user kinds
// start at KindUserBase and panic on collision at registration, so a kind
// clash is a startup failure, not silent wire corruption.

// KindUserBase is the first payload kind available to RegisterCodec
// callers; smaller kinds are reserved for built-ins.
const KindUserBase = 64

// Built-in payload kinds.
const (
	kindNil uint16 = iota
	kindFloat64
	kindInt64
	kindInt
	kindString
	kindBytes
)

// Codec (de)serializes one concrete payload type for the wire.
type Codec struct {
	// Kind tags the encoding on the wire; must be >= KindUserBase and
	// unique across the process.
	Kind uint16
	// Match reports whether v is this codec's concrete type.
	Match func(v any) bool
	// Encode serializes v (Match(v) is true).
	Encode func(v any) []byte
	// Decode reverses Encode; it must return the same concrete type the
	// sender passed, since kernels type-assert on received payloads.
	Decode func(data []byte) (any, error)
}

var (
	codecMu     sync.RWMutex
	codecByKind = map[uint16]Codec{}
	codecList   []Codec
)

// RegisterCodec installs a payload codec, typically from an init function
// of the package that owns the payload type. It panics on a reserved or
// duplicate kind — codec registration is process wiring, not runtime input.
func RegisterCodec(c Codec) {
	if c.Kind < KindUserBase {
		panic(fmt.Sprintf("comm: codec kind %d is reserved (user kinds start at %d)", c.Kind, KindUserBase))
	}
	if c.Match == nil || c.Encode == nil || c.Decode == nil {
		panic("comm: codec with nil hooks")
	}
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecByKind[c.Kind]; dup {
		panic(fmt.Sprintf("comm: duplicate codec kind %d", c.Kind))
	}
	codecByKind[c.Kind] = c
	codecList = append(codecList, c)
}

// EncodePayload serializes a payload for the wire, returning its kind tag
// and encoded bytes. Built-in scalar types need no registration; anything
// else must have a registered codec.
func EncodePayload(v any) (kind uint16, data []byte, err error) {
	switch x := v.(type) {
	case nil:
		return kindNil, nil, nil
	case float64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		return kindFloat64, b[:], nil
	case int64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(x))
		return kindInt64, b[:], nil
	case int:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(int64(x)))
		return kindInt, b[:], nil
	case string:
		return kindString, []byte(x), nil
	case []byte:
		return kindBytes, x, nil
	}
	codecMu.RLock()
	defer codecMu.RUnlock()
	for _, c := range codecList {
		if c.Match(v) {
			return c.Kind, c.Encode(v), nil
		}
	}
	return 0, nil, fmt.Errorf("comm: no payload codec for %T", v)
}

// DecodePayload reverses EncodePayload.
func DecodePayload(kind uint16, data []byte) (any, error) {
	switch kind {
	case kindNil:
		return nil, nil
	case kindFloat64:
		if len(data) != 8 {
			return nil, fmt.Errorf("comm: float64 payload is %d bytes", len(data))
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(data)), nil
	case kindInt64:
		if len(data) != 8 {
			return nil, fmt.Errorf("comm: int64 payload is %d bytes", len(data))
		}
		return int64(binary.LittleEndian.Uint64(data)), nil
	case kindInt:
		if len(data) != 8 {
			return nil, fmt.Errorf("comm: int payload is %d bytes", len(data))
		}
		return int(int64(binary.LittleEndian.Uint64(data))), nil
	case kindString:
		return string(data), nil
	case kindBytes:
		return data, nil
	}
	codecMu.RLock()
	c, ok := codecByKind[kind]
	codecMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("comm: unknown payload kind %d", kind)
	}
	return c.Decode(data)
}
