package pipeline

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"parsample/internal/diskstore"
	"parsample/internal/faultinject"
)

// Source reports how a Store.Do call obtained its artifact.
type Source int

const (
	// Computed: this call ran the compute function (cache miss).
	Computed Source = iota
	// Hit: the artifact was resident in the store.
	Hit
	// Shared: another in-flight computation of the same key was joined.
	Shared
	// Disk: the artifact was loaded and integrity-verified from the
	// persistent disk tier instead of recomputed.
	Disk
)

// String returns the lowercase name used in traces and stats.
func (s Source) String() string {
	switch s {
	case Computed:
		return "computed"
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	case Disk:
		return "disk"
	}
	return "unknown"
}

// StoreStats is a snapshot of the store's counters. The JSON names are the
// wire form served by /statsz.
type StoreStats struct {
	// Hits counts requests served from a resident entry.
	Hits int64 `json:"hits"`
	// Misses counts requests that ran the compute function — a kernel
	// actually executed. A disk-tier load is not a miss.
	Misses int64 `json:"misses"`
	// Shared counts requests that joined another caller's in-flight
	// computation instead of computing a second time.
	Shared int64 `json:"shared"`
	// Evictions counts entries dropped by the LRU byte budget.
	Evictions int64 `json:"evictions"`
	// Oversized counts artifacts larger than the whole byte budget: served
	// (and spilled to the disk tier) but never retained in memory.
	Oversized int64 `json:"oversized"`
	// Entries is the current resident entry count.
	Entries int `json:"entries"`
	// BytesUsed is the current resident byte estimate.
	BytesUsed int64 `json:"bytes_used"`
	// BytesBudget is the configured byte budget.
	BytesBudget int64 `json:"bytes_budget"`
	// Inflight is the number of computations currently running.
	Inflight int `json:"inflight"`
	// SweepBatches counts correlation-sweep kernel invocations through the
	// engine's batcher; SweepRequests counts the network builds those
	// invocations served. Requests/Batches > 1 means cross-request
	// coalescing is paying off. Populated by Engine.Stats, not the Store.
	SweepBatches  int64 `json:"sweep_batches"`
	SweepRequests int64 `json:"sweep_requests"`
	// DiskHits counts artifacts loaded and integrity-verified from the
	// disk tier; DiskMisses counts disk probes that found no usable
	// snapshot (absent, truncated, corrupt or version-skewed — all
	// ordinary misses). Zero when no disk tier is configured.
	DiskHits   int64 `json:"disk_hits"`
	DiskMisses int64 `json:"disk_misses"`
	// WriteBehindPending is the current depth of the disk tier's
	// write-behind queue; WriteBehindErrors counts failed or shed
	// write-behind snapshots (a full queue sheds rather than blocking the
	// serving path).
	WriteBehindPending int   `json:"write_behind_pending"`
	WriteBehindErrors  int64 `json:"write_behind_errors"`
	// DiskWrites counts snapshots published to the cache directory;
	// DiskPrunes counts blobs deleted by the byte-budget pruner;
	// DiskIntegrityDrops counts corrupt blobs deleted after a failed load.
	DiskWrites         int64 `json:"disk_writes"`
	DiskPrunes         int64 `json:"disk_prunes"`
	DiskIntegrityDrops int64 `json:"disk_integrity_drops"`
	// DiskBytesUsed/DiskBytesBudget mirror the cache directory usage and
	// its pruning budget.
	DiskBytesUsed   int64 `json:"disk_bytes_used"`
	DiskBytesBudget int64 `json:"disk_bytes_budget"`
}

// Store is the keyed artifact store behind the Engine: a memoization map
// with singleflight deduplication (concurrent requests for one key compute
// once), LRU eviction under a byte budget, hit/miss/inflight counters, and
// an optional persistent second tier (AttachDisk). Lookup order is
// memory → disk → compute: a disk load is checksum-verified and promoted
// into the memory LRU; a computed artifact is written behind to disk.
//
// Failure discipline: only successful computations are inserted. A compute
// that returns an error — in particular a context cancellation — leaves no
// entry behind (no "poisoned" artifacts), and waiters that joined a
// cancelled computation retry with their own context instead of inheriting
// the owner's cancellation. The disk tier inherits the discipline: a blob
// that fails its checksum or decode is deleted and recomputed, never
// served.
type Store struct {
	mu        sync.Mutex
	maxBytes  int64
	used      int64
	entries   map[Key]*list.Element
	lru       *list.List // front = most recently used *entry
	inflight  map[Key]*flight
	hits      int64
	misses    int64
	shared    int64
	evictions int64
	oversized int64

	disk       *diskstore.Store // nil: memory-only
	diskHits   atomic.Int64
	diskMisses atomic.Int64
}

type entry struct {
	key   Key
	val   any
	bytes int64
	// persisted flips true once a snapshot of this artifact is published on
	// disk; eviction re-enqueues a write only while it is false. Written by
	// the write-behind goroutine, read under the store mutex — hence
	// atomic.
	persisted *atomic.Bool
}

type flight struct {
	done chan struct{} // closed once val/err are set
	val  any
	err  error
}

// NewStore creates a store evicting least-recently-used artifacts once the
// resident estimate exceeds maxBytes (≤ 0 selects DefaultStoreBytes).
func NewStore(maxBytes int64) *Store {
	if maxBytes <= 0 {
		maxBytes = DefaultStoreBytes
	}
	return &Store{
		maxBytes: maxBytes,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
		inflight: make(map[Key]*flight),
	}
}

// AttachDisk wires a persistent tier beneath the memory LRU. Call before
// serving (not concurrency-safe with Do).
func (s *Store) AttachDisk(d *diskstore.Store) { s.disk = d }

// Close flushes and stops the disk tier's write-behind goroutine, if any.
func (s *Store) Close() {
	if s.disk != nil {
		s.disk.Close()
	}
}

// DefaultStoreBytes is the artifact budget used when a configuration leaves
// it unset: enough for every artifact of the paper's four-network evaluation
// with room to spare, small enough to bound a long-running server.
const DefaultStoreBytes int64 = 256 << 20

// Stats returns a snapshot of the counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	st := StoreStats{
		Hits:        s.hits,
		Misses:      s.misses,
		Shared:      s.shared,
		Evictions:   s.evictions,
		Oversized:   s.oversized,
		Entries:     s.lru.Len(),
		BytesUsed:   s.used,
		BytesBudget: s.maxBytes,
		Inflight:    len(s.inflight),
	}
	s.mu.Unlock()
	st.DiskHits = s.diskHits.Load()
	st.DiskMisses = s.diskMisses.Load()
	if s.disk != nil {
		ds := s.disk.Stats()
		st.WriteBehindPending = ds.Pending
		st.WriteBehindErrors = ds.WriteErrors + ds.Dropped
		st.DiskWrites = ds.Writes
		st.DiskPrunes = ds.Prunes
		st.DiskIntegrityDrops = ds.IntegrityDrops
		st.DiskBytesUsed = ds.BytesUsed
		st.DiskBytesBudget = ds.MaxBytes
	}
	return st
}

// Do returns the artifact for key, computing it at most once across
// concurrent callers. compute returns the value plus its resident byte
// estimate; it runs without store locks held. The returned Source reports
// whether this call hit the memory tier, loaded from the disk tier, joined
// an in-flight computation, or computed.
func (s *Store) Do(ctx context.Context, key Key, compute func(context.Context) (any, int64, error)) (any, Source, error) {
	// Failpoint: every store request (DESIGN.md §8 failpoint catalog).
	if err := faultinject.Eval("pipeline.store.get"); err != nil {
		return nil, Computed, err
	}
	for {
		s.mu.Lock()
		if el, ok := s.entries[key]; ok {
			s.lru.MoveToFront(el)
			s.hits++
			v := el.Value.(*entry).val
			s.mu.Unlock()
			return v, Hit, nil
		}
		if f, ok := s.inflight[key]; ok {
			s.shared++
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, Shared, ctx.Err()
			}
			if f.err == nil {
				return f.val, Shared, nil
			}
			// The owner failed. Its cancellation is not ours: if this
			// caller's context is still live, loop and recompute; any other
			// error is the artifact's own and is shared with every waiter.
			if !errors.Is(f.err, context.Canceled) && !errors.Is(f.err, context.DeadlineExceeded) {
				return nil, Shared, f.err
			}
			if err := ctx.Err(); err != nil {
				return nil, Shared, err
			}
			continue
		}
		// This call owns the flight. The flight is registered before the
		// disk probe, so concurrent callers join a disk load exactly like a
		// compute instead of hammering the file in parallel.
		f := &flight{done: make(chan struct{})}
		s.inflight[key] = f
		s.mu.Unlock()

		src := Disk
		val, bytes, loaded := s.diskLoad(key)
		var err error
		if !loaded {
			src = Computed
			s.mu.Lock()
			s.misses++
			s.mu.Unlock()
			val, bytes, err = runCompute(ctx, compute)
			if err == nil {
				// Failpoint: a put that fails after a successful compute. The
				// failure discipline holds — nothing is inserted, every waiter
				// of this flight receives the error, and the next attempt
				// recomputes from scratch.
				if ferr := faultinject.Eval("pipeline.store.put"); ferr != nil {
					val, err = nil, ferr
				}
			}
		}
		f.val, f.err = val, err
		s.mu.Lock()
		delete(s.inflight, key)
		if err == nil {
			s.insert(key, val, bytes, src == Disk)
		}
		s.mu.Unlock()
		close(f.done)
		if err != nil {
			return nil, src, err
		}
		return val, src, nil
	}
}

// diskLoad probes the persistent tier: read (or mmap) the blob, verify its
// checksum, decode. Every failure mode — no disk tier, absent blob,
// truncation, corruption, version skew — returns nil, and a corrupt blob is
// deleted so the whole fleet sees an ordinary miss where a poisoned entry
// sat.
func (s *Store) diskLoad(key Key) (any, int64, bool) {
	if s.disk == nil {
		return nil, 0, false
	}
	name := diskName(key)
	data, ok := s.disk.Get(name)
	if !ok {
		s.diskMisses.Add(1)
		return nil, 0, false
	}
	val, bytes, err := decodeArtifact(key, data)
	if err != nil {
		s.disk.Drop(name)
		s.diskMisses.Add(1)
		return nil, 0, false
	}
	s.diskHits.Add(1)
	return val, bytes, true
}

// runCompute invokes compute with panic containment: a panicking kernel is
// converted into an error instead of killing the process, so one poisoned
// request cannot take a shared daemon down. The store's failure discipline
// then applies as for any compute error — nothing is inserted, waiters get
// the error, the next attempt recomputes.
func runCompute(ctx context.Context, compute func(context.Context) (any, int64, error)) (val any, bytes int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := make([]byte, 4<<10)
			stack = stack[:runtime.Stack(stack, false)]
			val, bytes, err = nil, 0, fmt.Errorf("pipeline: artifact compute panicked: %v\n%s", r, stack)
		}
	}()
	return compute(ctx)
}

// insert adds a resident entry, schedules write-behind for unpersisted
// artifacts, and evicts from the LRU tail until the byte estimate fits the
// budget. The just-inserted entry is never evicted.
//
// Oversized policy: an artifact whose estimate exceeds the WHOLE budget is
// served to its caller but never retained — holding it would evict the
// entire working set for one request. It still spills to the disk tier, so
// a repeat costs a disk read rather than a recompute. Caller holds mu.
func (s *Store) insert(key Key, val any, bytes int64, persisted bool) {
	if bytes < 0 {
		bytes = 0
	}
	if bytes > s.maxBytes {
		s.oversized++
		if el, ok := s.entries[key]; ok {
			// A resident (smaller) value being replaced by an oversized one:
			// drop it rather than keep serving the stale entry.
			e := el.Value.(*entry)
			s.lru.Remove(el)
			delete(s.entries, e.key)
			s.used -= e.bytes
		}
		if !persisted {
			s.enqueueWrite(key, val, nil)
		}
		return
	}
	var pflag *atomic.Bool
	if el, ok := s.entries[key]; ok {
		// Possible when a key was evicted and recomputed by two waiters of a
		// cancelled owner; keep the newer value.
		e := el.Value.(*entry)
		s.used += bytes - e.bytes
		e.val, e.bytes = val, bytes
		s.lru.MoveToFront(el)
		pflag = e.persisted
	} else {
		pflag = &atomic.Bool{}
		s.entries[key] = s.lru.PushFront(&entry{key: key, val: val, bytes: bytes, persisted: pflag})
		s.used += bytes
	}
	if persisted {
		pflag.Store(true)
	} else if !pflag.Load() {
		s.enqueueWrite(key, val, pflag)
	}
	for s.used > s.maxBytes && s.lru.Len() > 1 {
		el := s.lru.Back()
		e := el.Value.(*entry)
		s.lru.Remove(el)
		delete(s.entries, e.key)
		s.used -= e.bytes
		s.evictions++
		if !e.persisted.Load() {
			// Write-behind on evict: last chance to persist an artifact whose
			// insert-time write was shed (full queue). The write is
			// idempotent — content-addressed name, identical bytes — so a
			// rare duplicate with a still-pending insert-time write is
			// harmless.
			s.enqueueWrite(e.key, e.val, e.persisted)
		}
	}
}

// enqueueWrite hands an artifact to the disk tier's bounded write-behind
// queue (never blocking; a full queue sheds the write). Encoding happens on
// the writer goroutine. Safe to call with mu held: PutAsync only takes the
// disk store's own mutex and a non-blocking channel send.
func (s *Store) enqueueWrite(key Key, val any, pflag *atomic.Bool) {
	if s.disk == nil {
		return
	}
	s.disk.PutAsync(diskName(key),
		func() ([]byte, error) { return encodeArtifact(key, val) },
		func(err error) {
			if err == nil && pflag != nil {
				pflag.Store(true)
			}
		})
}

// Len returns the resident entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Contains reports whether key is resident in memory (without touching LRU
// order).
func (s *Store) Contains(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// ContainsOnDisk reports whether key has a published snapshot in the disk
// tier (a stat, not a read: no access-stamp bump, no integrity check).
func (s *Store) ContainsOnDisk(key Key) bool {
	return s.disk != nil && s.disk.Contains(diskName(key))
}
