package pipeline

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"parsample/internal/faultinject"
)

// Source reports how a Store.Do call obtained its artifact.
type Source int

const (
	// Computed: this call ran the compute function (cache miss).
	Computed Source = iota
	// Hit: the artifact was resident in the store.
	Hit
	// Shared: another in-flight computation of the same key was joined.
	Shared
)

// String returns the lowercase name used in traces and stats.
func (s Source) String() string {
	switch s {
	case Computed:
		return "computed"
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	}
	return "unknown"
}

// StoreStats is a snapshot of the store's counters.
type StoreStats struct {
	// Hits counts requests served from a resident entry.
	Hits int64
	// Misses counts requests that ran the compute function.
	Misses int64
	// Shared counts requests that joined another caller's in-flight
	// computation instead of computing a second time.
	Shared int64
	// Evictions counts entries dropped by the LRU byte budget.
	Evictions int64
	// Entries is the current resident entry count.
	Entries int
	// BytesUsed is the current resident byte estimate.
	BytesUsed int64
	// BytesBudget is the configured byte budget.
	BytesBudget int64
	// Inflight is the number of computations currently running.
	Inflight int
	// SweepBatches counts correlation-sweep kernel invocations through the
	// engine's batcher; SweepRequests counts the network builds those
	// invocations served. Requests/Batches > 1 means cross-request
	// coalescing is paying off. Populated by Engine.Stats, not the Store.
	SweepBatches  int64
	SweepRequests int64
}

// Store is the keyed artifact store behind the Engine: a memoization map
// with singleflight deduplication (concurrent requests for one key compute
// once), LRU eviction under a byte budget, and hit/miss/inflight counters.
//
// Failure discipline: only successful computations are inserted. A compute
// that returns an error — in particular a context cancellation — leaves no
// entry behind (no "poisoned" artifacts), and waiters that joined a
// cancelled computation retry with their own context instead of inheriting
// the owner's cancellation.
type Store struct {
	mu        sync.Mutex
	maxBytes  int64
	used      int64
	entries   map[Key]*list.Element
	lru       *list.List // front = most recently used *entry
	inflight  map[Key]*flight
	hits      int64
	misses    int64
	shared    int64
	evictions int64
}

type entry struct {
	key   Key
	val   any
	bytes int64
}

type flight struct {
	done chan struct{} // closed once val/err are set
	val  any
	err  error
}

// NewStore creates a store evicting least-recently-used artifacts once the
// resident estimate exceeds maxBytes (≤ 0 selects DefaultStoreBytes).
func NewStore(maxBytes int64) *Store {
	if maxBytes <= 0 {
		maxBytes = DefaultStoreBytes
	}
	return &Store{
		maxBytes: maxBytes,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
		inflight: make(map[Key]*flight),
	}
}

// DefaultStoreBytes is the artifact budget used when a configuration leaves
// it unset: enough for every artifact of the paper's four-network evaluation
// with room to spare, small enough to bound a long-running server.
const DefaultStoreBytes int64 = 256 << 20

// Stats returns a snapshot of the counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Hits:        s.hits,
		Misses:      s.misses,
		Shared:      s.shared,
		Evictions:   s.evictions,
		Entries:     s.lru.Len(),
		BytesUsed:   s.used,
		BytesBudget: s.maxBytes,
		Inflight:    len(s.inflight),
	}
}

// Do returns the artifact for key, computing it at most once across
// concurrent callers. compute returns the value plus its resident byte
// estimate; it runs without store locks held. The returned Source reports
// whether this call hit the cache, joined an in-flight computation, or
// computed.
func (s *Store) Do(ctx context.Context, key Key, compute func(context.Context) (any, int64, error)) (any, Source, error) {
	// Failpoint: every store request (DESIGN.md §8 failpoint catalog).
	if err := faultinject.Eval("pipeline.store.get"); err != nil {
		return nil, Computed, err
	}
	for {
		s.mu.Lock()
		if el, ok := s.entries[key]; ok {
			s.lru.MoveToFront(el)
			s.hits++
			v := el.Value.(*entry).val
			s.mu.Unlock()
			return v, Hit, nil
		}
		if f, ok := s.inflight[key]; ok {
			s.shared++
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, Shared, ctx.Err()
			}
			if f.err == nil {
				return f.val, Shared, nil
			}
			// The owner failed. Its cancellation is not ours: if this
			// caller's context is still live, loop and recompute; any other
			// error is the artifact's own and is shared with every waiter.
			if !errors.Is(f.err, context.Canceled) && !errors.Is(f.err, context.DeadlineExceeded) {
				return nil, Shared, f.err
			}
			if err := ctx.Err(); err != nil {
				return nil, Shared, err
			}
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[key] = f
		s.misses++
		s.mu.Unlock()

		val, bytes, err := runCompute(ctx, compute)
		if err == nil {
			// Failpoint: a put that fails after a successful compute. The
			// failure discipline holds — nothing is inserted, every waiter
			// of this flight receives the error, and the next attempt
			// recomputes from scratch.
			if ferr := faultinject.Eval("pipeline.store.put"); ferr != nil {
				val, err = nil, ferr
			}
		}
		f.val, f.err = val, err
		s.mu.Lock()
		delete(s.inflight, key)
		if err == nil {
			s.insert(key, val, bytes)
		}
		s.mu.Unlock()
		close(f.done)
		if err != nil {
			return nil, Computed, err
		}
		return val, Computed, nil
	}
}

// runCompute invokes compute with panic containment: a panicking kernel is
// converted into an error instead of killing the process, so one poisoned
// request cannot take a shared daemon down. The store's failure discipline
// then applies as for any compute error — nothing is inserted, waiters get
// the error, the next attempt recomputes.
func runCompute(ctx context.Context, compute func(context.Context) (any, int64, error)) (val any, bytes int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := make([]byte, 4<<10)
			stack = stack[:runtime.Stack(stack, false)]
			val, bytes, err = nil, 0, fmt.Errorf("pipeline: artifact compute panicked: %v\n%s", r, stack)
		}
	}()
	return compute(ctx)
}

// insert adds a resident entry and evicts from the LRU tail until the byte
// estimate fits the budget. The just-inserted entry is never evicted, so an
// artifact larger than the whole budget is still served (and evicted by the
// next insert). Caller holds mu.
func (s *Store) insert(key Key, val any, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	if el, ok := s.entries[key]; ok {
		// Possible when a key was evicted and recomputed by two waiters of a
		// cancelled owner; keep the newer value.
		e := el.Value.(*entry)
		s.used += bytes - e.bytes
		e.val, e.bytes = val, bytes
		s.lru.MoveToFront(el)
	} else {
		s.entries[key] = s.lru.PushFront(&entry{key: key, val: val, bytes: bytes})
		s.used += bytes
	}
	for s.used > s.maxBytes && s.lru.Len() > 1 {
		el := s.lru.Back()
		e := el.Value.(*entry)
		s.lru.Remove(el)
		delete(s.entries, e.key)
		s.used -= e.bytes
		s.evictions++
	}
}

// Len returns the resident entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Contains reports whether key is resident (without touching LRU order).
func (s *Store) Contains(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}
