// Package pipeline is the typed stage-graph engine behind the paper's
// end-to-end pipeline:
//
//	expression matrix ─BuildNetwork→ correlation network ─Order→ vertex order
//	  ─Filter→ sampled network ─Cluster→ MCODE complexes ─Score→ AEES
//	  ─Match→ original-vs-filtered match table
//
// Each stage declares its inputs and a deterministic cache key (a pure
// function of the input name, the stage parameters and the seeds — see
// Key), and the Engine executes requested artifacts on top of a keyed
// artifact store with singleflight deduplication, LRU byte-budget eviction
// and hit/miss counters (Store). Stage kernels run under a bounded
// concurrency budget and take a context.Context end-to-end, so a request
// can be cancelled mid-kernel without poisoning the store or leaking
// goroutines. The figure drivers in internal/experiments, the public
// parsample.Pipeline facade and the `parsample pipeline` subcommand all run
// on this engine.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"parsample/internal/analysis"
	"parsample/internal/datasets"
	"parsample/internal/diskstore"
	"parsample/internal/expr"
	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/ontology"
	"parsample/internal/sampling"
)

// Stage identifies one node of the stage graph.
type Stage uint8

const (
	// StageNetwork builds (or adopts) the input network.
	StageNetwork Stage = iota
	// StageOrder computes a vertex processing order over the network.
	StageOrder
	// StageFilter applies a sampling filter under an order.
	StageFilter
	// StageCluster runs MCODE on a network variant.
	StageCluster
	// StageScore scores a variant's clusters against the ontology.
	StageScore
	// StageMatch matches a filtered variant's scored clusters against the
	// original network's.
	StageMatch
)

// String returns the stage name used in traces.
func (s Stage) String() string {
	switch s {
	case StageNetwork:
		return "network"
	case StageOrder:
		return "order"
	case StageFilter:
		return "filter"
	case StageCluster:
		return "cluster"
	case StageScore:
		return "score"
	case StageMatch:
		return "match"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// Variant selects which network variant of an input an artifact describes:
// the unfiltered original, or the output of one sampling filter under one
// ordering and processor count.
type Variant struct {
	Ordering  graph.Ordering
	Algorithm sampling.Algorithm
	P         int
}

// Original is the unfiltered input network.
var Original = Variant{Ordering: -1, Algorithm: -1, P: 0}

// IsOriginal reports whether v denotes the unfiltered network.
func (v Variant) IsOriginal() bool { return v == Original }

// String returns "orig", the bare ordering name (order-stage variants have
// no algorithm), or "ordering/algorithm/P".
func (v Variant) String() string {
	if v.IsOriginal() {
		return "orig"
	}
	if v.Algorithm < 0 {
		return v.Ordering.String()
	}
	return fmt.Sprintf("%s/%s/P%d", v.Ordering, v.Algorithm, v.P)
}

// Key is the deterministic identity of one artifact. It is a pure function
// of the input (by name), the stage, the variant and the stage parameters —
// per the determinism contract every kernel honors (a run is a pure
// function of its inputs and seed, independent of GOMAXPROCS), equal keys
// denote byte-identical artifacts. The caller's side of the contract is
// that Input.Name uniquely identifies the input data (see Input.Name).
type Key struct {
	// Input is the input's Name.
	Input string
	// Stage is the stage-graph node.
	Stage Stage
	// Variant is the network variant the artifact belongs to. Network-stage
	// artifacts always use Original.
	Variant Variant
	// OrderSeed and FilterSeed are the seeds of the ordering shuffle and the
	// randomized samplers.
	OrderSeed, FilterSeed int64
	// Net is the normalized network construction config (Workers and
	// Precision zeroed: results are worker- and precision-independent —
	// the float32 engine rechecks admissions in float64, so both arena
	// widths produce byte-identical artifacts under one key).
	Net expr.NetworkOptions
	// MCODE is the normalized clustering config.
	MCODE mcode.Params
}

// Input is one dataset the engine can serve artifacts for.
type Input struct {
	// Name must uniquely identify the input data (and is the cache-key
	// namespace): two Inputs with equal names, seeds and options are assumed
	// to carry the same Graph/Matrix/DAG/Ann. The four evaluation datasets
	// use their paper names; file-driven callers use the file path.
	Name string
	// G is the network. When nil, Matrix must be set and the network stage
	// builds the correlation network from it.
	G *graph.Graph
	// Matrix is the genes × samples expression matrix (used when G is nil).
	Matrix *expr.Matrix
	// Net configures correlation-network construction from Matrix.
	Net expr.NetworkOptions
	// DAG and Ann are the ontology side; required by Score and Match.
	DAG *ontology.DAG
	Ann *ontology.Annotations
	// MCODE configures clustering. The zero value selects the paper's
	// defaults (mcode.DefaultParams).
	MCODE mcode.Params
	// OrderSeed seeds the ordering shuffle; FilterSeed the randomized
	// samplers. The figure drivers use the dataset seed for both (the
	// historical driver behavior); parsample.Pipeline derives decorrelated
	// streams per its documented contract.
	OrderSeed, FilterSeed int64
}

// FromDataset adapts one of the paper's evaluation datasets, using the
// dataset seed for both seed streams — exactly what the pre-engine figure
// drivers did, so engine-produced figures are byte-identical to theirs.
func FromDataset(ds *datasets.Dataset) Input {
	return Input{
		Name:       ds.Name,
		G:          ds.G,
		DAG:        ds.DAG,
		Ann:        ds.Ann,
		OrderSeed:  ds.Seed,
		FilterSeed: ds.Seed,
	}
}

// key builds the artifact key for one stage of this input.
func (in Input) key(s Stage, v Variant) Key {
	net := in.Net
	net.Workers = 0
	net.Precision = 0
	m := in.MCODE
	if m == (mcode.Params{}) {
		m = mcode.DefaultParams()
	}
	return Key{
		Input:      in.Name,
		Stage:      s,
		Variant:    v,
		OrderSeed:  in.OrderSeed,
		FilterSeed: in.FilterSeed,
		Net:        net,
		MCODE:      m,
	}
}

// mcodeParams resolves the input's clustering config.
func (in Input) mcodeParams() mcode.Params {
	if in.MCODE == (mcode.Params{}) {
		return mcode.DefaultParams()
	}
	return in.MCODE
}

// Filtered is the Filter stage's artifact: the sampling result plus the
// materialized subgraph.
type Filtered struct {
	Result *sampling.Result
	Graph  *graph.Graph
}

// Config parameterizes an Engine.
type Config struct {
	// MaxBytes is the artifact store budget (≤ 0 → DefaultStoreBytes).
	MaxBytes int64
	// Workers bounds concurrently running stage kernels across all requests
	// (≤ 0 → GOMAXPROCS). Dependency resolution never holds a worker slot,
	// so nested stages cannot deadlock the budget.
	Workers int
	// BatchWindow holds a matrix-backed network build open for this long so
	// concurrent builds over the same input that differ only in admission
	// parameters coalesce into one batched sweep (see sweepBatcher). Zero
	// disables coalescing; results are identical either way, the window
	// only trades a little first-build latency for shared kernel work.
	BatchWindow time.Duration
	// CacheDir, when set, enables the persistent artifact tier: computed
	// artifacts are written behind to content-addressed snapshot blobs
	// under this directory, and store misses probe it before computing
	// (memory → disk → compute). The directory may be shared by any number
	// of replicas — publication is atomic-rename, so concurrent writers
	// are safe (DESIGN.md §10). Empty disables the tier.
	CacheDir string
	// DiskBytes is the cache directory's pruning budget (≤ 0 → 1 GiB).
	// Only meaningful with CacheDir.
	DiskBytes int64
}

// Engine executes stage-graph requests over a shared artifact store.
// All methods are safe for concurrent use.
type Engine struct {
	store  *Store
	sem    chan struct{}
	sweeps *sweepBatcher
}

// New creates an engine. A Config.CacheDir that cannot be created or
// scanned panics — callers that want an error instead (the daemon's flag
// path) validate the directory first or use NewWithDisk.
func New(cfg Config) *Engine {
	e, err := NewWithDisk(cfg)
	if err != nil {
		panic(fmt.Sprintf("pipeline: cache dir %q: %v", cfg.CacheDir, err))
	}
	return e
}

// NewWithDisk is New with the persistent tier's only failure mode — an
// unusable cache directory — surfaced as an error.
func NewWithDisk(cfg Config) (*Engine, error) {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		store:  NewStore(cfg.MaxBytes),
		sem:    make(chan struct{}, w),
		sweeps: newSweepBatcher(cfg.BatchWindow),
	}
	if cfg.CacheDir != "" {
		d, err := diskstore.Open(diskstore.Config{Dir: cfg.CacheDir, MaxBytes: cfg.DiskBytes})
		if err != nil {
			return nil, err
		}
		e.store.AttachDisk(d)
	}
	return e, nil
}

// Close flushes the persistent tier's pending write-behind snapshots and
// stops its goroutine (a no-op without CacheDir). Call it on daemon
// shutdown so artifacts computed just before a restart are warm after it.
func (e *Engine) Close() {
	e.store.Close()
}

// Stats returns the artifact store counters plus the sweep batcher's.
func (e *Engine) Stats() StoreStats {
	st := e.store.Stats()
	st.SweepBatches = e.sweeps.batches.Load()
	st.SweepRequests = e.sweeps.requests.Load()
	return st
}

// BatchWindow returns the current sweep-coalescing window.
func (e *Engine) BatchWindow() time.Duration { return e.sweeps.Window() }

// SetBatchWindow atomically adjusts the sweep-coalescing window at
// runtime. The serving tier widens it under sustained load (wider window →
// more concurrent sweeps share one kernel pass) and restores it when
// pressure drops; results are identical at any width.
func (e *Engine) SetBatchWindow(d time.Duration) { e.sweeps.SetWindow(d) }

// NetworkResident reports whether the input's network-stage artifact would
// be served without computing: adopted input graphs always are, and
// matrix-backed networks are when resident in the store or published in
// the persistent tier (a disk load is a read, not a sweep — warm-restart
// requests admit at warm cost). This is the admission layer's cold/warm
// probe — a resident network makes a request cheap regardless of its
// declared dimensions — and deliberately does not touch LRU order or the
// disk access stamps.
func (e *Engine) NetworkResident(in Input) bool {
	if in.G != nil {
		return true
	}
	key := in.key(StageNetwork, Original)
	return e.store.Contains(key) || e.store.ContainsOnDisk(key)
}

// slot acquires a bounded-concurrency worker slot, or fails once ctx is
// cancelled. Stage computes hold a slot only around their own kernel, never
// while resolving dependencies.
func (e *Engine) slot(ctx context.Context) (release func(), err error) {
	select {
	case e.sem <- struct{}{}:
		return func() { <-e.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// get is the typed request path: singleflight + cache via the store, with
// per-request tracing.
func get[T any](ctx context.Context, e *Engine, key Key, compute func(context.Context) (T, int64, error)) (T, error) {
	//parsamplevet:ignore nondeterm stage timings feed only the per-request trace (observability); cached artifacts and fingerprints never see them
	start := time.Now()
	v, src, err := e.store.Do(ctx, key, func(ctx context.Context) (any, int64, error) {
		return compute(ctx)
	})
	//parsamplevet:ignore nondeterm trace-only duration, see above
	traceRecord(ctx, key, src, time.Since(start), err)
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// Network returns the input's network: Input.G when set, otherwise the
// correlation network built from Input.Matrix under Input.Net.
func (e *Engine) Network(ctx context.Context, in Input) (*graph.Graph, error) {
	if in.G != nil {
		// Adopted input network: nothing to compute or cache, but traced
		// consumers still see one entry per pipeline stage.
		traceRecord(ctx, in.key(StageNetwork, Original), Hit, 0, nil)
		return in.G, nil
	}
	if in.Matrix == nil {
		return nil, fmt.Errorf("pipeline: input %q has neither a network nor a matrix", in.Name)
	}
	return get(ctx, e, in.key(StageNetwork, Original), func(ctx context.Context) (*graph.Graph, int64, error) {
		// The batcher takes its own worker slot around the kernel (and
		// coalesces concurrent same-matrix builds when a window is set);
		// identical keys never reach it — the store's singleflight merged
		// them already.
		g, err := e.sweeps.build(ctx, e, in)
		if err != nil {
			return nil, 0, err
		}
		return g, graphBytes(g), nil
	})
}

// Order returns the vertex processing order of the input's network under o.
func (e *Engine) Order(ctx context.Context, in Input, o graph.Ordering) ([]int32, error) {
	v := Variant{Ordering: o, Algorithm: -1, P: 0}
	return get(ctx, e, in.key(StageOrder, v), func(ctx context.Context) ([]int32, int64, error) {
		g, err := e.Network(ctx, in)
		if err != nil {
			return nil, 0, err
		}
		release, err := e.slot(ctx)
		if err != nil {
			return nil, 0, err
		}
		defer release()
		ord := graph.Order(g, o, in.OrderSeed)
		return ord, int64(4 * len(ord)), nil
	})
}

// Filtered returns the sampled network of a non-original variant.
func (e *Engine) Filtered(ctx context.Context, in Input, v Variant) (*Filtered, error) {
	if v.IsOriginal() {
		return nil, fmt.Errorf("pipeline: Filtered of the original network (input %q)", in.Name)
	}
	return get(ctx, e, in.key(StageFilter, v), func(ctx context.Context) (*Filtered, int64, error) {
		g, err := e.Network(ctx, in)
		if err != nil {
			return nil, 0, err
		}
		ord, err := e.Order(ctx, in, v.Ordering)
		if err != nil {
			return nil, 0, err
		}
		release, err := e.slot(ctx)
		if err != nil {
			return nil, 0, err
		}
		defer release()
		res, err := sampling.RunContext(ctx, v.Algorithm, g, sampling.Options{
			Order: ord,
			P:     v.P,
			Seed:  in.FilterSeed,
		})
		if err != nil {
			return nil, 0, err
		}
		fg := res.Graph(g.N())
		f := &Filtered{Result: res, Graph: fg}
		return f, graphBytes(fg) + int64(16*res.Edges.Len()), nil
	})
}

// Graph returns the variant's network: the input network for Original, the
// filtered subgraph otherwise.
func (e *Engine) Graph(ctx context.Context, in Input, v Variant) (*graph.Graph, error) {
	if v.IsOriginal() {
		return e.Network(ctx, in)
	}
	f, err := e.Filtered(ctx, in, v)
	if err != nil {
		return nil, err
	}
	return f.Graph, nil
}

// Clusters returns the MCODE complexes of the variant's network.
func (e *Engine) Clusters(ctx context.Context, in Input, v Variant) ([]mcode.Cluster, error) {
	return get(ctx, e, in.key(StageCluster, v), func(ctx context.Context) ([]mcode.Cluster, int64, error) {
		g, err := e.Graph(ctx, in, v)
		if err != nil {
			return nil, 0, err
		}
		release, err := e.slot(ctx)
		if err != nil {
			return nil, 0, err
		}
		defer release()
		cs, err := mcode.FindClustersContext(ctx, g, in.mcodeParams())
		if err != nil {
			return nil, 0, err
		}
		return cs, clustersBytes(cs), nil
	})
}

// Scored returns the variant's clusters scored against the input ontology.
func (e *Engine) Scored(ctx context.Context, in Input, v Variant) ([]analysis.ScoredCluster, error) {
	if in.DAG == nil || in.Ann == nil {
		return nil, fmt.Errorf("pipeline: input %q has no ontology to score against", in.Name)
	}
	return get(ctx, e, in.key(StageScore, v), func(ctx context.Context) ([]analysis.ScoredCluster, int64, error) {
		cs, err := e.Clusters(ctx, in, v)
		if err != nil {
			return nil, 0, err
		}
		g, err := e.Graph(ctx, in, v)
		if err != nil {
			return nil, 0, err
		}
		release, err := e.slot(ctx)
		if err != nil {
			return nil, 0, err
		}
		defer release()
		sc, err := analysis.ScoreClustersContext(ctx, in.DAG, in.Ann, g, cs)
		if err != nil {
			return nil, 0, err
		}
		return sc, clustersBytes(cs) + int64(64*len(sc)), nil
	})
}

// Matches returns the match table of a filtered variant's scored clusters
// against the original network's (analysis.MatchClusters).
func (e *Engine) Matches(ctx context.Context, in Input, v Variant) ([]analysis.Match, error) {
	if v.IsOriginal() {
		return nil, fmt.Errorf("pipeline: Matches of the original against itself (input %q)", in.Name)
	}
	return get(ctx, e, in.key(StageMatch, v), func(ctx context.Context) ([]analysis.Match, int64, error) {
		orig, err := e.Scored(ctx, in, Original)
		if err != nil {
			return nil, 0, err
		}
		filt, err := e.Scored(ctx, in, v)
		if err != nil {
			return nil, 0, err
		}
		gOrig, err := e.Network(ctx, in)
		if err != nil {
			return nil, 0, err
		}
		gFilt, err := e.Graph(ctx, in, v)
		if err != nil {
			return nil, 0, err
		}
		release, err := e.slot(ctx)
		if err != nil {
			return nil, 0, err
		}
		defer release()
		ms, err := analysis.MatchClustersContext(ctx, gOrig, orig, gFilt, filt)
		if err != nil {
			return nil, 0, err
		}
		return ms, int64(48 * len(ms)), nil
	})
}

// Warm computes the Scored artifact of every listed variant concurrently
// (bounded by the engine's worker budget) and returns the first error.
// Figure drivers call it before their read loops so independent
// filter→cluster→score chains overlap across variants; subsequent reads are
// cache hits.
func (e *Engine) Warm(ctx context.Context, in Input, vs ...Variant) error {
	if len(vs) == 0 {
		return nil
	}
	errs := make([]error, len(vs))
	var wg sync.WaitGroup
	for i, v := range vs {
		wg.Add(1)
		go func(i int, v Variant) {
			defer wg.Done()
			_, errs[i] = e.Scored(ctx, in, v)
		}(i, v)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ------------------------------------------------------------ byte estimates

// graphBytes estimates a CSR graph's resident size: offsets plus both
// directions of the neighbor arena, plus dense adjacency rows on universes
// small enough that the kernels build them (mcode.FindClusters calls
// EnsureDense below 2^14 vertices).
func graphBytes(g *graph.Graph) int64 {
	n, m := int64(g.N()), int64(g.M())
	b := 4*(n+1) + 8*m
	if g.N() <= 1<<14 {
		b += n * n / 8
	}
	return b
}

// clustersBytes estimates a cluster list's resident size.
func clustersBytes(cs []mcode.Cluster) int64 {
	b := int64(64 * len(cs))
	for i := range cs {
		b += int64(4 * len(cs[i].Vertices))
	}
	return b
}
