package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parsample/internal/expr"
	"parsample/internal/faultinject"
	"parsample/internal/graph"
)

// sweepBatcher coalesces concurrent network-stage sweeps over the same
// dataset into one batched kernel invocation (expr.BatchBuildNetworks).
//
// The store's singleflight already merges requests with IDENTICAL network
// keys; what it cannot merge is N concurrent requests over one matrix
// that differ only in their admission parameters (thresholds, p-cut, sign
// gate) — each has a distinct artifact key, so each would pay its own full
// O(genes²·samples) sweep. The batcher closes that gap: the first such
// request becomes the batch leader, holds the batch open for one batch
// window so concurrent arrivals with the same (input, statistic,
// precision) can register their specs, then runs ONE multi-spec sweep and
// hands each waiter its own graph. The marginal cost per extra spec is a
// threshold comparison per candidate pair (<1.3× a single sweep for
// k = 4; bench_test.go), so the window trades ~milliseconds of added
// latency for an ~k× reduction in kernel work under concurrent load.
//
// Protocol invariants:
//   - Only the leader acquires an engine worker slot, and only around the
//     kernel — a follower waiting on a batch holds nothing, so a
//     Workers=1 engine cannot deadlock against its own batch.
//   - The batch is keyed by (Input.Name, statistic, precision): Name
//     uniquely identifies the data (the Input contract), and mixed
//     statistics or arena widths cannot share a sweep.
//   - A cancelled leader delivers a retriable error; followers whose own
//     context is still live re-enter and a new leader forms (the same
//     semantics Store.Do gives waiters of a cancelled owner).
//   - A leader that fails or panics before delivery still answers every
//     waiter (panics are contained into errors), so no follower is ever
//     stranded on its channel.
//
// The window is atomically adjustable at runtime: the serving tier widens
// it under sustained load (graceful degradation — more coalescing, less
// kernel work) and restores it when pressure drops.
type sweepBatcher struct {
	window   atomic.Int64 // nanoseconds; ≤ 0 disables coalescing
	mu       sync.Mutex
	pending  map[sweepKey]*sweepBatch
	batches  atomic.Int64 // kernel invocations through the batcher
	requests atomic.Int64 // network builds served by those invocations
}

// sweepKey scopes a batch to sweeps that can share one kernel pass.
type sweepKey struct {
	name string
	kind expr.CorrelationKind
	prec expr.Precision
}

// sweepBatch is one open batch: the specs registered so far and their
// result channels.
type sweepBatch struct {
	waiters []sweepWaiter
}

type sweepWaiter struct {
	spec expr.SweepSpec
	ch   chan sweepResult // buffered(1): delivery never blocks on a gone waiter
}

type sweepResult struct {
	g   *graph.Graph
	err error
}

func newSweepBatcher(window time.Duration) *sweepBatcher {
	b := &sweepBatcher{pending: make(map[sweepKey]*sweepBatch)}
	b.window.Store(int64(window))
	return b
}

// Window returns the current batch window (≤ 0: coalescing disabled).
func (b *sweepBatcher) Window() time.Duration { return time.Duration(b.window.Load()) }

// SetWindow atomically replaces the batch window. In-flight batches keep
// the window they opened with; the next build observes the new value.
func (b *sweepBatcher) SetWindow(d time.Duration) { b.window.Store(int64(d)) }

// build produces the correlation network of in.Matrix under in.Net,
// batching with concurrent builds over the same key when a batch window is
// configured.
func (b *sweepBatcher) build(ctx context.Context, e *Engine, in Input) (*graph.Graph, error) {
	if b.Window() <= 0 {
		// Batching disabled: the pre-batcher path, still counted so
		// /statsz reports kernel invocations uniformly.
		release, err := e.slot(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		b.batches.Add(1)
		b.requests.Add(1)
		return expr.BuildNetworkContext(ctx, in.Matrix, in.Net)
	}
	key := sweepKey{name: in.Name, kind: in.Net.Kind, prec: in.Net.Precision}
	for {
		ch := make(chan sweepResult, 1)
		w := sweepWaiter{spec: in.Net.SweepSpec(), ch: ch}
		b.mu.Lock()
		batch := b.pending[key]
		lead := batch == nil
		if lead {
			batch = &sweepBatch{}
			b.pending[key] = batch
		}
		batch.waiters = append(batch.waiters, w)
		b.mu.Unlock()

		if lead {
			b.lead(ctx, e, in, key, batch)
		}
		select {
		case res := <-ch:
			if res.err == nil {
				return res.g, nil
			}
			// Leader cancellation is not ours (mirrors Store.Do): retry
			// with our own context if it is still live.
			if !errors.Is(res.err, context.Canceled) && !errors.Is(res.err, context.DeadlineExceeded) {
				return nil, res.err
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		case <-ctx.Done():
			// The buffered channel absorbs the eventual delivery; nothing
			// leaks.
			return nil, ctx.Err()
		}
	}
}

// lead runs the leader's side: hold the batch open for the window, close
// it, run one multi-spec sweep under a worker slot, and deliver every
// waiter its graph. The leader is itself a registered waiter; its result
// arrives on its own channel like everyone else's.
func (b *sweepBatcher) lead(ctx context.Context, e *Engine, in Input, key sweepKey, batch *sweepBatch) {
	timer := time.NewTimer(b.Window())
	select {
	case <-timer.C:
	case <-ctx.Done():
		timer.Stop()
	}

	b.mu.Lock()
	delete(b.pending, key) // later arrivals form a fresh batch
	waiters := batch.waiters
	b.mu.Unlock()

	gs, err := b.leadRun(ctx, e, in, waiters)
	for i, w := range waiters {
		if err != nil {
			w.ch <- sweepResult{err: err}
		} else {
			w.ch <- sweepResult{g: gs[i]}
		}
	}
}

// leadRun is the leader's kernel invocation with its failure surface
// pinned down: the handoff failpoint fires here, and a panicking kernel is
// contained into an error so the delivery loop above always runs — a
// leader failure must never strand followers on their channels.
func (b *sweepBatcher) leadRun(ctx context.Context, e *Engine, in Input, waiters []sweepWaiter) (gs []*graph.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			gs, err = nil, fmt.Errorf("pipeline: batched sweep panicked: %v", r)
		}
	}()
	// Failpoint: leader handoff (under the recover, so a panic-mode arming
	// is contained too). Injecting context.Canceled here exercises the
	// follower-retry path (a new leader forms); any other error is
	// delivered to every waiter as the batch's failure.
	if ferr := faultinject.Eval("pipeline.batcher.lead"); ferr != nil {
		return nil, ferr
	}
	return b.run(ctx, e, in, waiters)
}

// run executes the batched kernel for the closed batch, deduplicating
// identical specs, and returns one graph per waiter.
func (b *sweepBatcher) run(ctx context.Context, e *Engine, in Input, waiters []sweepWaiter) ([]*graph.Graph, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	specs := make([]expr.SweepSpec, 0, len(waiters))
	idx := make([]int, len(waiters)) // waiter -> spec
	for i, w := range waiters {
		at := -1
		for j, sp := range specs {
			if sp == w.spec {
				at = j
				break
			}
		}
		if at < 0 {
			at = len(specs)
			specs = append(specs, w.spec)
		}
		idx[i] = at
	}

	release, err := e.slot(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	b.batches.Add(1)
	b.requests.Add(int64(len(waiters)))
	built, err := expr.BatchBuildNetworksContext(ctx, in.Matrix, in.Net, specs)
	if err != nil {
		return nil, err
	}
	gs := make([]*graph.Graph, len(waiters))
	for i := range waiters {
		gs[i] = built[idx[i]]
	}
	return gs, nil
}
