package pipeline

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"parsample/internal/analysis"
	"parsample/internal/datasets"
	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/sampling"
)

// testDataset synthesizes a small evaluation dataset (planted modules +
// ontology) shared across the engine tests.
var testDataset = func() func() *datasets.Dataset {
	var once sync.Once
	var ds *datasets.Dataset
	return func() *datasets.Dataset {
		once.Do(func() {
			ds = datasets.Build(datasets.Spec{
				Name: "TST", Vertices: 800, Edges: 1500,
				Modules: 10, MinSize: 6, MaxSize: 8, Density: 0.6, NoiseDeg: 0.5,
				NoiseClumps: 0.5, ModuleDepth: 5, Window: 3, Seed: 77,
			})
		})
		return ds
	}
}()

var testVariant = Variant{Ordering: graph.HighDegree, Algorithm: sampling.ChordalSeq, P: 1}

// The engine's stage chain must agree with the direct kernel composition —
// same order, same filter, same clusters, same scores.
func TestEngineMatchesDirectKernels(t *testing.T) {
	ds := testDataset()
	e := New(Config{})
	ctx := context.Background()
	in := FromDataset(ds)

	sc, err := e.Scored(ctx, in, testVariant)
	if err != nil {
		t.Fatal(err)
	}
	fg, err := e.Graph(ctx, in, testVariant)
	if err != nil {
		t.Fatal(err)
	}

	// Direct path, replicating the pre-engine drivers.
	ord := graph.Order(ds.G, graph.HighDegree, ds.Seed)
	res, err := sampling.Run(sampling.ChordalSeq, ds.G, sampling.Options{Order: ord, P: 1, Seed: ds.Seed})
	if err != nil {
		t.Fatal(err)
	}
	directG := res.Graph(ds.G.N())
	directSC := analysis.ScoreClusters(ds.DAG, ds.Ann, directG, mcode.FindClusters(directG, mcode.DefaultParams()))

	if fg.M() != directG.M() || fg.N() != directG.N() {
		t.Fatalf("filtered graph differs: engine %d/%d, direct %d/%d", fg.N(), fg.M(), directG.N(), directG.M())
	}
	if !reflect.DeepEqual(sc, directSC) {
		t.Fatalf("scored clusters differ: engine %d, direct %d", len(sc), len(directSC))
	}

	ms, err := e.Matches(ctx, in, testVariant)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := e.Scored(ctx, in, Original)
	if err != nil {
		t.Fatal(err)
	}
	directMS := analysis.MatchClusters(ds.G, orig, directG, directSC)
	if !reflect.DeepEqual(ms, directMS) {
		t.Fatalf("match tables differ")
	}
}

// Engine-level singleflight: 16 goroutines requesting one Scored artifact
// run each stage of its chain exactly once (order, filter, cluster, score —
// the input carries its network, so there is no network compute).
func TestEngineSingleflightAcrossStages(t *testing.T) {
	ds := testDataset()
	e := New(Config{})
	in := FromDataset(ds)
	var wg sync.WaitGroup
	results := make([][]analysis.ScoredCluster, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc, err := e.Scored(context.Background(), in, testVariant)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = sc
		}(i)
	}
	wg.Wait()
	st := e.Stats()
	if st.Misses != 4 {
		t.Fatalf("stage computes = %d, want 4 (order, filter, cluster, score); stats %+v", st.Misses, st)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("goroutine %d saw a different artifact", i)
		}
	}
}

// A warm engine serves repeated requests without recomputing anything.
func TestEngineWarmCacheNoRecompute(t *testing.T) {
	ds := testDataset()
	e := New(Config{})
	ctx := context.Background()
	in := FromDataset(ds)
	if err := e.Warm(ctx, in, Original, testVariant); err != nil {
		t.Fatal(err)
	}
	misses := e.Stats().Misses
	for i := 0; i < 3; i++ {
		if _, err := e.Scored(ctx, in, testVariant); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Scored(ctx, in, Original); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Matches(ctx, in, testVariant); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	// Matches was not warmed, so exactly one extra compute is allowed.
	if st.Misses > misses+1 {
		t.Fatalf("warm engine recomputed: %d misses before, %d after", misses, st.Misses)
	}
	if st.Hits == 0 {
		t.Fatal("no cache hits recorded")
	}
}

// Keys are pure functions of the input parameters: same inputs same key,
// any parameter change a different key, and Workers never fragments the
// cache.
func TestKeyDiscipline(t *testing.T) {
	ds := testDataset()
	in := FromDataset(ds)
	k1 := in.key(StageScore, testVariant)
	k2 := in.key(StageScore, testVariant)
	if k1 != k2 {
		t.Fatal("identical inputs produced different keys")
	}
	in2 := in
	in2.OrderSeed++
	if in2.key(StageScore, testVariant) == k1 {
		t.Fatal("seed change did not change the key")
	}
	in3 := in
	in3.Net.Workers = 7 // worker count must not affect artifact identity
	if in3.key(StageScore, testVariant) != k1 {
		t.Fatal("worker count fragmented the cache key")
	}
	in4 := in
	in4.MCODE = mcode.DefaultParams() // explicit defaults == zero value
	if in4.key(StageScore, testVariant) != k1 {
		t.Fatal("explicit default MCODE params fragmented the cache key")
	}
	v2 := testVariant
	v2.P = 2
	if in.key(StageScore, v2) == k1 {
		t.Fatal("variant change did not change the key")
	}
}

// Trace records every request of a traced context with its source.
func TestTrace(t *testing.T) {
	ds := testDataset()
	e := New(Config{})
	in := FromDataset(ds)
	ctx, tr := WithTrace(context.Background())
	if _, err := e.Scored(ctx, in, testVariant); err != nil {
		t.Fatal(err)
	}
	entries := tr.Entries()
	computed := map[Stage]bool{}
	for _, en := range entries {
		if en.Source == Computed {
			computed[en.Key.Stage] = true
		}
	}
	for _, st := range []Stage{StageOrder, StageFilter, StageCluster, StageScore} {
		if !computed[st] {
			t.Fatalf("stage %v not traced as computed; entries: %v", st, entries)
		}
	}
	// A second run through a fresh trace is all hits.
	ctx2, tr2 := WithTrace(context.Background())
	if _, err := e.Scored(ctx2, in, testVariant); err != nil {
		t.Fatal(err)
	}
	for _, en := range tr2.Entries() {
		if en.Source != Hit {
			t.Fatalf("warm request traced as %v", en.Source)
		}
	}
}
