package pipeline

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMain asserts the package leaks no goroutines: cancelled engine
// requests must unwind every kernel worker and mpisim rank they started.
func TestMain(m *testing.M) {
	base := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > base {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			fmt.Fprintf(os.Stderr, "pipeline: %d goroutines leaked (baseline %d):\n%s\n", n-base, base, buf)
			code = 1
		}
	}
	os.Exit(code)
}

func testKey(i int) Key {
	return Key{Input: fmt.Sprintf("k%d", i), Stage: StageCluster, Variant: Original}
}

// TestStoreSingleflight is the clusterCache check-then-act regression test:
// 16 goroutines hammer one key concurrently and exactly one compute runs
// (the seed's sync.Map cache computed once per goroutine that missed). Run
// under -race in CI.
func TestStoreSingleflight(t *testing.T) {
	s := NewStore(1 << 20)
	var computes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([]any, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, _, err := s.Do(context.Background(), testKey(0), func(context.Context) (any, int64, error) {
				computes.Add(1)
				time.Sleep(20 * time.Millisecond) // hold the flight open so everyone piles on
				return "artifact", 8, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want exactly 1", n)
	}
	for i, v := range results {
		if v != "artifact" {
			t.Fatalf("goroutine %d got %v", i, v)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Shared+st.Hits != 15 {
		t.Fatalf("stats = %+v, want 1 miss and 15 shared/hits", st)
	}
}

// The LRU byte budget evicts the least recently used entry, never the one
// just inserted, and counts evictions.
func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(100)
	add := func(i int) {
		if _, _, err := s.Do(context.Background(), testKey(i), func(context.Context) (any, int64, error) {
			return i, 40, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	add(0)
	add(1)
	// Touch key 0 so key 1 becomes the LRU victim.
	mustNotCompute := func(context.Context) (any, int64, error) {
		return nil, 0, errors.New("unexpected compute")
	}
	if _, src, err := s.Do(context.Background(), testKey(0), mustNotCompute); src != Hit || err != nil {
		t.Fatalf("key 0 not resident: src=%v err=%v", src, err)
	}
	add(2) // 120 bytes > 100: evicts key 1
	if !s.Contains(testKey(0)) || s.Contains(testKey(1)) || !s.Contains(testKey(2)) {
		t.Fatalf("eviction picked the wrong victim: have0=%v have1=%v have2=%v",
			s.Contains(testKey(0)), s.Contains(testKey(1)), s.Contains(testKey(2)))
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.BytesUsed != 80 {
		t.Fatalf("bytes used = %d, want 80", st.BytesUsed)
	}
}

// Oversized policy: an artifact larger than the whole byte budget is served
// to its caller but never retained — holding it would evict the entire
// working set for one request — and the resident set is untouched.
func TestStoreOversizedServedNotRetained(t *testing.T) {
	s := NewStore(100)
	add := func(i int, bytes int64) (any, Source) {
		v, src, err := s.Do(context.Background(), testKey(i), func(context.Context) (any, int64, error) {
			return i, bytes, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, src
	}
	add(0, 40)
	add(1, 40)
	v, src := add(3, 500) // oversized: > the whole 100-byte budget
	if v != 3 || src != Computed {
		t.Fatalf("oversized artifact not served: v=%v src=%v", v, src)
	}
	if s.Contains(testKey(3)) {
		t.Fatal("oversized artifact was retained")
	}
	if !s.Contains(testKey(0)) || !s.Contains(testKey(1)) {
		t.Fatal("oversized artifact evicted the resident working set")
	}
	st := s.Stats()
	if st.Oversized != 1 {
		t.Fatalf("oversized = %d, want 1", st.Oversized)
	}
	if st.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", st.Evictions)
	}
	// A resident key replaced by an oversized value (possible when two
	// waiters of a cancelled owner recompute) drops the stale resident
	// entry rather than serving it forever.
	s.mu.Lock()
	s.insert(testKey(0), 0, 500, false)
	s.mu.Unlock()
	if s.Contains(testKey(0)) {
		t.Fatal("stale resident entry kept after oversized replacement")
	}
}

// A failed compute leaves no entry behind, and the next request recomputes.
func TestStoreErrorNotCached(t *testing.T) {
	s := NewStore(1 << 20)
	boom := errors.New("boom")
	var calls int
	compute := func(context.Context) (any, int64, error) {
		calls++
		if calls == 1 {
			return nil, 0, boom
		}
		return "ok", 2, nil
	}
	if _, _, err := s.Do(context.Background(), testKey(0), compute); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if s.Contains(testKey(0)) {
		t.Fatal("failed compute was cached")
	}
	v, src, err := s.Do(context.Background(), testKey(0), compute)
	if err != nil || v != "ok" || src != Computed {
		t.Fatalf("recompute = (%v, %v, %v)", v, src, err)
	}
}

// A waiter that joined a computation whose owner was cancelled retries with
// its own (live) context instead of inheriting the owner's cancellation.
func TestStoreWaiterSurvivesOwnerCancellation(t *testing.T) {
	s := NewStore(1 << 20)
	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerStarted := make(chan struct{})
	var computes atomic.Int64

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, err := s.Do(ownerCtx, testKey(0), func(ctx context.Context) (any, int64, error) {
			computes.Add(1)
			close(ownerStarted)
			<-ctx.Done() // simulate a kernel observing cancellation
			return nil, 0, ctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("owner err = %v", err)
		}
	}()
	waiterResult := make(chan error, 1)
	go func() {
		defer wg.Done()
		<-ownerStarted
		v, _, err := s.Do(context.Background(), testKey(0), func(ctx context.Context) (any, int64, error) {
			computes.Add(1)
			return "recovered", 4, nil
		})
		if err == nil && v != "recovered" {
			err = fmt.Errorf("v = %v", v)
		}
		waiterResult <- err
	}()

	// Give the waiter a moment to join the owner's flight, then cancel.
	time.Sleep(30 * time.Millisecond)
	cancelOwner()
	wg.Wait()
	if err := <-waiterResult; err != nil {
		t.Fatalf("waiter failed: %v", err)
	}
	if n := computes.Load(); n != 2 {
		t.Fatalf("computes = %d, want 2 (owner cancelled + waiter retried)", n)
	}
	if !s.Contains(testKey(0)) {
		t.Fatal("waiter's successful recompute not cached")
	}
}
