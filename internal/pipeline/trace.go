package pipeline

import (
	"context"
	"sync"
	"time"
)

// TraceEntry records one stage request observed by a traced context: which
// artifact, whether it was computed / served resident / joined in-flight,
// and how long the request took (for hits, effectively zero).
type TraceEntry struct {
	Key      Key
	Source   Source
	Duration time.Duration
	Err      error
}

// Trace collects the stage requests of one pipeline run. Safe for
// concurrent use (stages fan out across goroutines).
type Trace struct {
	mu      sync.Mutex
	entries []TraceEntry
}

// Entries returns a snapshot of the recorded entries in request-completion
// order.
func (t *Trace) Entries() []TraceEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEntry(nil), t.entries...)
}

type traceCtxKey struct{}

type observerCtxKey struct{}

// WithTrace returns a context whose engine requests record into the
// returned Trace — the per-request observability hook behind the facade's
// stage timings and the CLI's timing table.
func WithTrace(ctx context.Context) (context.Context, *Trace) {
	t := &Trace{}
	return context.WithValue(ctx, traceCtxKey{}, t), t
}

// WithObserver returns a context whose engine requests additionally invoke
// fn as each stage request completes — the live-progress hook behind the
// daemon's SSE event stream and cache-provenance header. fn runs on the
// requesting goroutine with no engine locks held; it composes with
// WithTrace (both fire) and must be cheap and non-blocking.
func WithObserver(ctx context.Context, fn func(TraceEntry)) context.Context {
	return context.WithValue(ctx, observerCtxKey{}, fn)
}

// traceRecord appends an entry when ctx carries a Trace, and invokes the
// observer when ctx carries one.
func traceRecord(ctx context.Context, key Key, src Source, d time.Duration, err error) {
	e := TraceEntry{Key: key, Source: src, Duration: d, Err: err}
	if t, _ := ctx.Value(traceCtxKey{}).(*Trace); t != nil {
		t.mu.Lock()
		t.entries = append(t.entries, e)
		t.mu.Unlock()
	}
	if fn, _ := ctx.Value(observerCtxKey{}).(func(TraceEntry)); fn != nil {
		fn(e)
	}
}
