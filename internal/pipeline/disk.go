package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"parsample/internal/analysis"
	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/sampling"
	"parsample/internal/snapshot"
)

// diskNameVersion tags the key-hash domain. Bumping it (or
// snapshot.FormatVersion, which is folded in below) cheaply invalidates
// every existing cache directory: old blobs simply stop being addressed and
// age out under the byte budget.
const diskNameVersion = 1

// diskName maps an artifact key to its content-addressed blob name: the
// hex SHA-256 of a canonical binary encoding of every Key field. Equal keys
// denote byte-identical artifacts (the determinism contract on Key), so
// equal names across processes and replicas address interchangeable blobs —
// provided the caller honored Input.Name's contract of uniquely identifying
// the input data. Every api.Request path does by construction: Input.Name
// is the request's content fingerprint (api.Request.Fingerprint), and
// RunPipeline prefixes caller names with a data fingerprint.
func diskName(key Key) string {
	h := sha256.New()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wi := func(v int64) { w(uint64(v)) }
	wf := func(v float64) { w(math.Float64bits(v)) }
	wb := func(v bool) {
		if v {
			w(1)
		} else {
			w(0)
		}
	}
	w(diskNameVersion)
	w(snapshot.FormatVersion)
	w(uint64(len(key.Input)))
	h.Write([]byte(key.Input))
	wi(int64(key.Stage))
	wi(int64(key.Variant.Ordering))
	wi(int64(key.Variant.Algorithm))
	wi(int64(key.Variant.P))
	wi(key.OrderSeed)
	wi(key.FilterSeed)
	wi(int64(key.Net.Kind))
	wf(key.Net.MinAbsR)
	wf(key.Net.MaxP)
	wi(int64(key.Net.Workers)) // zeroed in keys; hashed for completeness
	wb(key.Net.Negative)
	wi(int64(key.Net.Precision)) // zeroed in keys; hashed for completeness
	wf(key.MCODE.VertexWeightPercentage)
	wb(key.MCODE.Haircut)
	wf(key.MCODE.MinScore)
	wi(int64(key.MCODE.MinSize))
	wb(key.MCODE.Fluff)
	wf(key.MCODE.FluffDensityThreshold)
	return hex.EncodeToString(h.Sum(nil))
}

// encodeArtifact serializes a stage artifact into its snapshot blob. It
// runs on the disk tier's write-behind goroutine, off the serving path.
func encodeArtifact(key Key, val any) ([]byte, error) {
	switch key.Stage {
	case StageNetwork:
		g, ok := val.(*graph.Graph)
		if !ok {
			return nil, fmt.Errorf("pipeline: network artifact is %T", val)
		}
		return snapshot.EncodeGraph(g), nil
	case StageOrder:
		ord, ok := val.([]int32)
		if !ok {
			return nil, fmt.Errorf("pipeline: order artifact is %T", val)
		}
		return snapshot.EncodeOrder(ord), nil
	case StageFilter:
		f, ok := val.(*Filtered)
		if !ok || f.Result == nil || f.Graph == nil {
			return nil, fmt.Errorf("pipeline: filter artifact is %T", val)
		}
		return snapshot.EncodeFiltered(snapshot.FilteredParts{
			Algorithm:            int(f.Result.Algorithm),
			BorderEdges:          f.Result.BorderEdges,
			DuplicateBorderEdges: f.Result.DuplicateBorderEdges,
			Stats:                f.Result.Stats,
			Graph:                f.Graph,
		}), nil
	case StageCluster:
		cs, ok := val.([]mcode.Cluster)
		if !ok {
			return nil, fmt.Errorf("pipeline: cluster artifact is %T", val)
		}
		return snapshot.EncodeClusters(cs), nil
	case StageScore:
		sc, ok := val.([]analysis.ScoredCluster)
		if !ok {
			return nil, fmt.Errorf("pipeline: score artifact is %T", val)
		}
		return snapshot.EncodeScored(sc), nil
	case StageMatch:
		ms, ok := val.([]analysis.Match)
		if !ok {
			return nil, fmt.Errorf("pipeline: match artifact is %T", val)
		}
		return snapshot.EncodeMatches(ms), nil
	}
	return nil, fmt.Errorf("pipeline: no snapshot codec for stage %v", key.Stage)
}

// decodeArtifact reconstructs a stage artifact from its snapshot blob,
// returning the value plus its resident byte estimate (the same estimators
// the compute path uses, so LRU accounting is identical either way). Any
// decode failure — truncation, corruption, version skew, type mismatch — is
// an error the caller turns into an ordinary miss.
func decodeArtifact(key Key, data []byte) (any, int64, error) {
	switch key.Stage {
	case StageNetwork:
		g, err := snapshot.DecodeGraph(data)
		if err != nil {
			return nil, 0, err
		}
		return g, graphBytes(g), nil
	case StageOrder:
		ord, err := snapshot.DecodeOrder(data)
		if err != nil {
			return nil, 0, err
		}
		return ord, int64(4 * len(ord)), nil
	case StageFilter:
		p, err := snapshot.DecodeFiltered(data)
		if err != nil {
			return nil, 0, err
		}
		res := &sampling.Result{
			Algorithm:            sampling.Algorithm(p.Algorithm),
			Edges:                graph.GraphEdges{G: p.Graph},
			Stats:                p.Stats,
			DuplicateBorderEdges: p.DuplicateBorderEdges,
			BorderEdges:          p.BorderEdges,
		}
		f := &Filtered{Result: res, Graph: p.Graph}
		return f, graphBytes(p.Graph) + int64(16*res.Edges.Len()), nil
	case StageCluster:
		cs, err := snapshot.DecodeClusters(data)
		if err != nil {
			return nil, 0, err
		}
		return cs, clustersBytes(cs), nil
	case StageScore:
		sc, err := snapshot.DecodeScored(data)
		if err != nil {
			return nil, 0, err
		}
		return sc, scoredBytes(sc), nil
	case StageMatch:
		ms, err := snapshot.DecodeMatches(data)
		if err != nil {
			return nil, 0, err
		}
		return ms, int64(48 * len(ms)), nil
	}
	return nil, 0, fmt.Errorf("pipeline: no snapshot codec for stage %v", key.Stage)
}

// scoredBytes mirrors the compute path's Score-stage estimate
// (clustersBytes over the underlying clusters plus the score summaries).
func scoredBytes(sc []analysis.ScoredCluster) int64 {
	b := int64(64*len(sc)) + int64(64*len(sc))
	for i := range sc {
		b += int64(4 * len(sc[i].Cluster.Vertices))
	}
	return b
}
