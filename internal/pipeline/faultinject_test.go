package pipeline

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"parsample/internal/expr"
	"parsample/internal/faultinject"
	"parsample/internal/graph"
)

// The failpoint tests exercise DESIGN.md §8's failure discipline on the
// two sites whose failures are hardest to reach organically: a store put
// that fails after a successful compute, and a batch leader that dies
// mid-handoff. Goroutine hygiene is enforced package-wide by TestMain
// (store_test.go): a strand leaked by any of these paths fails the run.
// faultinject state is process-global, so none of these tests may use
// t.Parallel.

// TestStorePutFailpoint: a put failure after a successful compute must
// reach the owner AND every waiter of that flight, leave nothing resident
// (no poisoned artifact), and the next request must recompute from
// scratch and cache normally.
func TestStorePutFailpoint(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := NewStore(0)
	key := Key{Input: "fi-put", Stage: StageNetwork}

	computes := 0
	release := make(chan struct{})
	started := make(chan struct{})
	blocking := func(ctx context.Context) (any, int64, error) {
		computes++
		close(started)
		<-release
		return "artifact", 8, nil
	}
	poison := func(ctx context.Context) (any, int64, error) {
		t.Error("waiter's compute ran despite an in-flight owner")
		return nil, 0, nil
	}

	faultinject.Enable("pipeline.store.put", faultinject.Spec{Mode: faultinject.ModeError, Count: 1})

	const waiters = 4
	errs := make([]error, waiters)
	srcs := make([]Source, waiters)
	var wg sync.WaitGroup
	ownerErr := make(chan error, 1)
	go func() {
		_, _, err := s.Do(context.Background(), key, blocking)
		ownerErr <- err
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, srcs[i], errs[i] = s.Do(context.Background(), key, poison)
		}(i)
	}
	// Wait until every waiter has joined the owner's flight, then let the
	// compute finish (and the put failpoint fire).
	for deadline := time.Now().Add(5 * time.Second); ; {
		if s.Stats().Shared >= waiters {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiters never joined the in-flight computation")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if err := <-ownerErr; !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("owner error = %v, want ErrInjected", err)
	}
	for i := 0; i < waiters; i++ {
		if !errors.Is(errs[i], faultinject.ErrInjected) {
			t.Errorf("waiter %d error = %v, want ErrInjected (a put failure is the artifact's own error, shared with every waiter)", i, errs[i])
		}
		if srcs[i] != Shared {
			t.Errorf("waiter %d source = %v, want Shared", i, srcs[i])
		}
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("store holds %d entries after a failed put, want 0 (nothing may be inserted)", n)
	}

	// The failpoint's Count is exhausted: the next request recomputes and
	// caches normally — the key is not poisoned.
	val, src, err := s.Do(context.Background(), key, func(ctx context.Context) (any, int64, error) {
		computes++
		return "artifact", 8, nil
	})
	if err != nil || val != "artifact" || src != Computed {
		t.Fatalf("recompute after failed put = (%v, %v, %v), want (artifact, Computed, nil)", val, src, err)
	}
	if computes != 2 {
		t.Fatalf("compute ran %d times, want 2 (once per attempt, never for waiters)", computes)
	}
	if _, src, _ := s.Do(context.Background(), key, poison); src != Hit {
		t.Fatalf("third request source = %v, want Hit", src)
	}
}

// TestStoreGetFailpoint: an armed get site fails the request before any
// compute or store mutation.
func TestStoreGetFailpoint(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s := NewStore(0)
	key := Key{Input: "fi-get", Stage: StageNetwork}
	faultinject.Enable("pipeline.store.get", faultinject.Spec{Mode: faultinject.ModeError, Count: 1})
	_, _, err := s.Do(context.Background(), key, func(ctx context.Context) (any, int64, error) {
		t.Error("compute ran despite an armed get failpoint")
		return nil, 0, nil
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("store holds %d entries, want 0", n)
	}
	if _, src, err := s.Do(context.Background(), key, func(ctx context.Context) (any, int64, error) {
		return 1, 1, nil
	}); err != nil || src != Computed {
		t.Fatalf("request after exhausted failpoint = (%v, %v), want (Computed, nil)", src, err)
	}
}

// TestStoreComputePanicContained: a panicking compute becomes an error for
// the owner (and by the put-failure discipline, leaves the store clean);
// the daemon-level invariant is that no artifact kernel panic can escape
// Store.Do.
func TestStoreComputePanicContained(t *testing.T) {
	s := NewStore(0)
	key := Key{Input: "fi-panic", Stage: StageCluster}
	_, _, err := s.Do(context.Background(), key, func(ctx context.Context) (any, int64, error) {
		panic("kernel bug")
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "kernel bug") {
		t.Fatalf("err = %v, want a contained panic error", err)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("store holds %d entries after a panicked compute, want 0", n)
	}
	if _, src, err := s.Do(context.Background(), key, func(ctx context.Context) (any, int64, error) {
		return "ok", 2, nil
	}); err != nil || src != Computed {
		t.Fatalf("recompute after panic = (%v, %v), want (Computed, nil)", src, err)
	}
}

// TestBatcherLeaderFailpointFollowersRetry is the "batcher leader failure
// mid-sweep" drill: the first batch leader dies at the handoff failpoint
// with context.Canceled — the one error class followers treat as
// not-their-own — so every waiter whose context is live must retry, a new
// leader must form, and every request must still receive exactly the
// network a direct build produces. Afterward the store must hold the real
// artifacts (unpoisoned) and serve repeats as hits.
func TestBatcherLeaderFailpointFollowersRetry(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	m := batcherMatrix(t)
	e := New(Config{Workers: 1, BatchWindow: 200 * time.Millisecond})
	optsFor := func(i int) expr.NetworkOptions {
		return expr.NetworkOptions{MinAbsR: 0.4 + 0.1*float64(i), MaxP: 0.05}
	}
	faultinject.Enable("pipeline.batcher.lead",
		faultinject.Spec{Mode: faultinject.ModeError, Err: context.Canceled, Count: 1})

	const n = 3
	got := make([]*graph.Graph, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = e.Network(context.Background(), batcherInput(m, optsFor(i)))
		}(i)
	}
	wg.Wait()

	if fired := faultinject.Fired("pipeline.batcher.lead"); fired != 1 {
		t.Fatalf("leader failpoint fired %d times, want 1", fired)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d failed after leader death: %v (followers must retry and re-lead)", i, errs[i])
		}
		want := expr.BuildNetwork(m, optsFor(i))
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("request %d: retried network differs from direct build (%d vs %d edges)", i, got[i].M(), want.M())
		}
	}
	// Unpoisoned store: every repeat is a warm hit, no recompute.
	before := e.Stats()
	for i := 0; i < n; i++ {
		if _, err := e.Network(context.Background(), batcherInput(m, optsFor(i))); err != nil {
			t.Fatalf("warm repeat %d: %v", i, err)
		}
	}
	after := e.Stats()
	if after.Hits != before.Hits+n {
		t.Errorf("warm repeats produced %d hits, want %d", after.Hits-before.Hits, n)
	}
	if after.Misses != before.Misses {
		t.Errorf("warm repeats recomputed (%d new misses): store was poisoned", after.Misses-before.Misses)
	}
}

// TestBatcherLeaderNonRetriableErrorPropagates: any injected error other
// than the two cancellation sentinels is the batch's own failure and must
// reach every waiter verbatim — no retry loop, no hang.
func TestBatcherLeaderNonRetriableErrorPropagates(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	m := batcherMatrix(t)
	e := New(Config{Workers: 1, BatchWindow: 100 * time.Millisecond})
	faultinject.Enable("pipeline.batcher.lead", faultinject.Spec{Mode: faultinject.ModeError, Count: 1})

	_, err := e.Network(context.Background(), batcherInput(m, expr.NetworkOptions{MinAbsR: 0.5, MaxP: 0.05}))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// The failure was not cached; the next build recomputes cleanly.
	g, err := e.Network(context.Background(), batcherInput(m, expr.NetworkOptions{MinAbsR: 0.5, MaxP: 0.05}))
	if err != nil {
		t.Fatalf("rebuild after injected leader error: %v", err)
	}
	if want := expr.BuildNetwork(m, expr.NetworkOptions{MinAbsR: 0.5, MaxP: 0.05}); !reflect.DeepEqual(g, want) {
		t.Error("rebuilt network differs from direct build")
	}
}

// TestBatcherLeaderPanicContained: a leader panic mid-kernel must be
// contained into an error and delivered to every waiter — a leader death
// may never strand a follower on its channel (that would be both a hang
// and a goroutine leak; TestMain enforces the latter).
func TestBatcherLeaderPanicContained(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	m := batcherMatrix(t)
	e := New(Config{Workers: 1, BatchWindow: 100 * time.Millisecond})
	faultinject.Enable("pipeline.batcher.lead", faultinject.Spec{Mode: faultinject.ModePanic, Count: 1})

	_, err := e.Network(context.Background(), batcherInput(m, expr.NetworkOptions{MinAbsR: 0.6, MaxP: 0.05}))
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want a contained panic error", err)
	}
	if _, err := e.Network(context.Background(), batcherInput(m, expr.NetworkOptions{MinAbsR: 0.6, MaxP: 0.05})); err != nil {
		t.Fatalf("rebuild after contained panic: %v", err)
	}
}
