package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"parsample/internal/expr"
	"parsample/internal/graph"
	"parsample/internal/sampling"
)

// watchdog runs fn and fails the test if it does not return within limit —
// the "returns promptly" bound of the cancellation contract.
func watchdog(t *testing.T, limit time.Duration, fn func()) time.Duration {
	t.Helper()
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
		return time.Since(start)
	case <-time.After(limit):
		t.Fatalf("cancelled request did not return within %v", limit)
		return 0
	}
}

// cancelMidKernel lands a cancellation mid-kernel without hardcoding a
// delay (a fixed sleep races the kernel on fast many-core machines): each
// attempt uses a fresh engine (so a completed attempt's cached artifact
// cannot mask later ones) and a delay scaled down from the measured
// uncancelled duration, shrinking until the attempt observes
// context.Canceled. Returns the engine of the cancelled attempt.
func cancelMidKernel(t *testing.T, cold time.Duration, attempt func(e *Engine, ctx context.Context) error) *Engine {
	t.Helper()
	if cold < time.Millisecond {
		cold = time.Millisecond
	}
	for div := time.Duration(4); div <= 256; div *= 2 {
		e := New(Config{})
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(cold/div, cancel)
		var err error
		watchdog(t, 4*cold+5*time.Second, func() { err = attempt(e, ctx) })
		timer.Stop()
		cancel()
		if errors.Is(err, context.Canceled) {
			return e
		}
		if err != nil {
			t.Fatalf("attempt failed with %v, want nil or context.Canceled", err)
		}
		// The kernel outran this delay; retry with a shorter one.
	}
	t.Fatal("could not land a cancellation mid-kernel")
	return nil
}

// bigMatrix is large enough that a full correlation build takes well over
// the cancellation delay on any machine (4096 genes ≈ 8.4M pair dots).
func bigMatrix(t *testing.T) *expr.Matrix {
	t.Helper()
	syn, err := expr.Synthesize(expr.SyntheticSpec{
		Genes: 4096, Samples: 100, Modules: 16, ModuleSize: 12, Noise: 0.1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return syn.M
}

// Cancelling mid-BuildNetwork returns promptly with ctx.Err(), leaves the
// store without a poisoned entry, and a later request with a live context
// computes the artifact from scratch.
func TestCancelMidBuildNetwork(t *testing.T) {
	in := Input{Name: "big", Matrix: bigMatrix(t), Net: expr.DefaultNetworkOptions()}

	start := time.Now()
	if _, err := New(Config{}).Network(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)

	e := cancelMidKernel(t, cold, func(e *Engine, ctx context.Context) error {
		_, err := e.Network(ctx, in)
		return err
	})
	if st := e.Stats(); st.Entries != 0 {
		t.Fatalf("cancelled build left %d entries in the store", st.Entries)
	}

	g, err := e.Network(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() == 0 {
		t.Fatal("recomputed network is empty")
	}
	if st := e.Stats(); st.Entries != 1 || st.Misses != 2 {
		t.Fatalf("stats after recovery = %+v, want 1 entry / 2 misses", st)
	}
}

// Cancelling mid-FindClusters (the MCODE vertex-weight pass on a dense
// generator graph) returns promptly with ctx.Err() and does not poison the
// store.
func TestCancelMidFindClusters(t *testing.T) {
	in := Input{Name: "er", G: graph.Gnm(8192, 131072, 4)}

	start := time.Now()
	if _, err := New(Config{}).Clusters(context.Background(), in, Original); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)

	e := cancelMidKernel(t, cold, func(e *Engine, ctx context.Context) error {
		_, err := e.Clusters(ctx, in, Original)
		return err
	})
	if st := e.Stats(); st.Entries != 0 {
		t.Fatalf("cancelled clustering left %d entries in the store", st.Entries)
	}

	cs, err := e.Clusters(context.Background(), in, Original)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) == 0 {
		t.Fatal("recomputed clustering found nothing on a dense ER graph")
	}
}

// Cancelling a parallel sampling run aborts every simulated rank — compute
// loops, receives and collectives — without goroutine leaks (checked by
// TestMain) and without caching a partial result.
func TestCancelMidParallelFilter(t *testing.T) {
	in := Input{Name: "gnm", G: graph.Gnm(16384, 262144, 5), OrderSeed: 5, FilterSeed: 5}
	v := Variant{Ordering: graph.Natural, Algorithm: sampling.ChordalComm, P: 8}

	start := time.Now()
	if _, err := New(Config{}).Filtered(context.Background(), in, v); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)

	e := cancelMidKernel(t, cold, func(e *Engine, ctx context.Context) error {
		_, err := e.Filtered(ctx, in, v)
		return err
	})
	// The order dependency may have finished before the cancellation landed;
	// the filter artifact itself must not be resident.
	if e.store.Contains(in.key(StageFilter, v)) {
		t.Fatal("cancelled filter left its artifact in the store")
	}
}

// An already-cancelled context fails fast at the slot gate without running
// any kernel.
func TestCancelledBeforeStart(t *testing.T) {
	e := New(Config{})
	in := Input{Name: "big2", Matrix: bigMatrix(t), Net: expr.DefaultNetworkOptions()}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	elapsed := watchdog(t, time.Second, func() {
		if _, err := e.Network(ctx, in); !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	})
	if elapsed > 500*time.Millisecond {
		t.Fatalf("pre-cancelled request took %v", elapsed)
	}
}
