package pipeline

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"parsample/internal/expr"
	"parsample/internal/graph"
)

// batcherMatrix synthesizes the shared expression matrix for the batcher
// tests: modular, so loose thresholds admit real edge sets.
func batcherMatrix(t *testing.T) *expr.Matrix {
	t.Helper()
	syn, err := expr.Synthesize(expr.SyntheticSpec{
		Genes: 256, Samples: 20, Modules: 4, ModuleSize: 12, Noise: 0.3, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return syn.M
}

func batcherInput(m *expr.Matrix, opts expr.NetworkOptions) Input {
	return Input{Name: "batch-test", Matrix: m, Net: opts}
}

// TestSweepBatcherCoalescesConcurrentSweeps: N concurrent network builds
// over one matrix with different admission parameters must ride ONE
// batched kernel invocation — on a Workers=1 engine, which also proves a
// follower never holds the only worker slot while waiting on its leader —
// and each must receive exactly the network an unbatched build produces.
func TestSweepBatcherCoalescesConcurrentSweeps(t *testing.T) {
	m := batcherMatrix(t)
	e := New(Config{Workers: 1, BatchWindow: 300 * time.Millisecond})
	optsFor := func(i int) expr.NetworkOptions {
		return expr.NetworkOptions{
			MinAbsR:  0.3 + 0.1*float64(i),
			MaxP:     0.05,
			Negative: i%2 == 1,
		}
	}
	const n = 4
	got := make([]*graph.Graph, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = e.Network(context.Background(), batcherInput(m, optsFor(i)))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		want := expr.BuildNetwork(m, optsFor(i))
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("request %d: batched network differs from direct build (%d vs %d edges)", i, got[i].M(), want.M())
		}
	}
	st := e.Stats()
	if st.SweepBatches != 1 {
		t.Errorf("SweepBatches = %d, want 1 (all requests coalesced)", st.SweepBatches)
	}
	if st.SweepRequests != n {
		t.Errorf("SweepRequests = %d, want %d", st.SweepRequests, n)
	}
}

// TestSweepBatcherDisabledCountsDirectBuilds: with no window every build
// is its own kernel invocation, and results are unchanged.
func TestSweepBatcherDisabledCountsDirectBuilds(t *testing.T) {
	m := batcherMatrix(t)
	e := New(Config{})
	ctx := context.Background()
	for _, minR := range []float64{0.5, 0.7} {
		in := batcherInput(m, expr.NetworkOptions{MinAbsR: minR, MaxP: 0.05})
		g, err := e.Network(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		want := expr.BuildNetwork(m, in.Net)
		if !reflect.DeepEqual(g, want) {
			t.Errorf("minAbsR=%v: engine network differs from direct build", minR)
		}
	}
	st := e.Stats()
	if st.SweepBatches != 2 || st.SweepRequests != 2 {
		t.Errorf("stats = %d batches / %d requests, want 2/2", st.SweepBatches, st.SweepRequests)
	}
}

// TestSweepBatcherFollowerSurvivesLeaderCancel: a follower whose leader is
// cancelled mid-window retries under its own context and still gets its
// network — the Store.Do waiter semantics, carried over to batches.
func TestSweepBatcherFollowerSurvivesLeaderCancel(t *testing.T) {
	m := batcherMatrix(t)
	e := New(Config{Workers: 1, BatchWindow: 2 * time.Second})
	leadCtx, cancelLead := context.WithCancel(context.Background())

	leadOpts := expr.NetworkOptions{MinAbsR: 0.5, MaxP: 0.05}
	leadErr := make(chan error, 1)
	go func() {
		_, err := e.Network(leadCtx, batcherInput(m, leadOpts))
		leadErr <- err
	}()
	time.Sleep(100 * time.Millisecond) // leader is now holding its batch open

	followOpts := expr.NetworkOptions{MinAbsR: 0.7, MaxP: 0.05}
	followG := make(chan *graph.Graph, 1)
	followErrCh := make(chan error, 1)
	go func() {
		g, err := e.Network(context.Background(), batcherInput(m, followOpts))
		followG <- g
		followErrCh <- err
	}()
	time.Sleep(100 * time.Millisecond) // follower has joined the batch
	cancelLead()

	if err := <-leadErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader returned %v, want context.Canceled", err)
	}
	// The follower's retry forms a new batch with its own 2s window; give
	// it room.
	select {
	case g := <-followG:
		if err := <-followErrCh; err != nil {
			t.Fatalf("follower failed after leader cancel: %v", err)
		}
		want := expr.BuildNetwork(m, followOpts)
		if !reflect.DeepEqual(g, want) {
			t.Error("follower's retried network differs from direct build")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("follower deadlocked after leader cancellation")
	}
}

// TestSweepBatcherKeySeparation: same data name but different statistic or
// precision must not share a batch (they cannot share a kernel pass), yet
// must still produce correct graphs.
func TestSweepBatcherKeySeparation(t *testing.T) {
	m := batcherMatrix(t)
	e := New(Config{Workers: 2, BatchWindow: 200 * time.Millisecond})
	opts := []expr.NetworkOptions{
		{Kind: expr.PearsonCorr, MinAbsR: 0.5, MaxP: 0.05},
		{Kind: expr.SpearmanCorr, MinAbsR: 0.5, MaxP: 0.05},
		{Kind: expr.PearsonCorr, MinAbsR: 0.6, MaxP: 0.05, Precision: expr.Float32},
	}
	got := make([]*graph.Graph, len(opts))
	errs := make([]error, len(opts))
	var wg sync.WaitGroup
	for i, o := range opts {
		wg.Add(1)
		go func(i int, o expr.NetworkOptions) {
			defer wg.Done()
			got[i], errs[i] = e.Network(context.Background(), batcherInput(m, o))
		}(i, o)
	}
	wg.Wait()
	for i, o := range opts {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		o.Precision = expr.Float64 // direct build in float64: must match bit-for-bit
		want := expr.BuildNetwork(m, o)
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("request %d: network differs from direct build", i)
		}
	}
	if st := e.Stats(); st.SweepBatches != 3 {
		t.Errorf("SweepBatches = %d, want 3 (kind/precision cannot share a batch)", st.SweepBatches)
	}
}
