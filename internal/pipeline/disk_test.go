package pipeline

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"parsample/internal/diskstore"
	"parsample/internal/faultinject"
)

func newDiskEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	e, err := NewWithDisk(Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// snapPath locates the published snapshot blob for a key inside dir,
// mirroring the diskstore sharding layout.
func snapPath(dir string, key Key) string {
	name := diskName(key)
	return filepath.Join(dir, name[:2], name+".snap")
}

// The warm-restart contract: everything engine A computes is served by a
// fresh engine B sharing its cache directory from disk snapshots alone —
// zero kernel executions — and the artifacts compare deep-equal, so the
// serialized API responses built from them are byte-identical.
func TestEngineWarmRestartFromDisk(t *testing.T) {
	ds := testDataset()
	dir := t.TempDir()
	ctx := context.Background()
	in := FromDataset(ds)

	a := newDiskEngine(t, dir)
	wantSC, err := a.Scored(ctx, in, testVariant)
	if err != nil {
		t.Fatal(err)
	}
	wantMS, err := a.Matches(ctx, in, testVariant)
	if err != nil {
		t.Fatal(err)
	}
	wantG, err := a.Graph(ctx, in, testVariant)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantSC) == 0 || len(wantMS) == 0 {
		t.Fatalf("test dataset produced trivial artifacts (%d scored, %d matches)", len(wantSC), len(wantMS))
	}
	a.Close() // drain write-behind: the "process exit" of replica A

	b := newDiskEngine(t, dir)
	gotMS, err := b.Matches(ctx, in, testVariant)
	if err != nil {
		t.Fatal(err)
	}
	gotSC, err := b.Scored(ctx, in, testVariant)
	if err != nil {
		t.Fatal(err)
	}
	gotG, err := b.Graph(ctx, in, testVariant)
	if err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Misses != 0 {
		t.Fatalf("warm restart ran %d kernels, want 0; stats %+v", st.Misses, st)
	}
	if st.DiskHits == 0 {
		t.Fatalf("warm restart loaded nothing from disk; stats %+v", st)
	}
	if !reflect.DeepEqual(wantMS, gotMS) {
		t.Fatal("match table differs across restart")
	}
	if !reflect.DeepEqual(wantSC, gotSC) {
		t.Fatal("scored clusters differ across restart")
	}
	wo, wn := wantG.CSR()
	go_, gn := gotG.CSR()
	if !reflect.DeepEqual(wo, go_) || !reflect.DeepEqual(wn, gn) {
		t.Fatal("filtered graph CSR differs across restart")
	}
	if !b.NetworkResident(in) && !b.store.ContainsOnDisk(in.key(StageFilter, testVariant)) {
		t.Fatal("disk-warm artifacts not visible to residency checks")
	}
}

// A corrupted snapshot is an ordinary miss: the engine recomputes, deletes
// the poisoned blob, republishes a good one, and the store is left clean —
// a third engine warm-loads the replacement.
func TestEngineCorruptSnapshotRecomputesUnpoisoned(t *testing.T) {
	ds := testDataset()
	dir := t.TempDir()
	ctx := context.Background()
	in := FromDataset(ds)
	key := in.key(StageCluster, testVariant)

	a := newDiskEngine(t, dir)
	want, err := a.Clusters(ctx, in, testVariant)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()

	// Flip one byte in the published cluster snapshot.
	p := snapPath(dir, key)
	blob, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("cluster snapshot not published: %v", err)
	}
	blob[len(blob)/2] ^= 0x01
	if err := os.WriteFile(p, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	b := newDiskEngine(t, dir)
	got, err := b.Clusters(ctx, in, testVariant)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("recompute after corruption produced a different artifact")
	}
	st := b.Stats()
	if st.DiskIntegrityDrops != 1 {
		t.Fatalf("integrity drops = %d, want 1; stats %+v", st.DiskIntegrityDrops, st)
	}
	if st.Misses == 0 {
		t.Fatal("corrupt snapshot served without a recompute")
	}
	b.Close() // flush the republished snapshot

	c := newDiskEngine(t, dir)
	got2, err := c.Clusters(ctx, in, testVariant)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got2) {
		t.Fatal("republished snapshot decodes to a different artifact")
	}
	if st := c.Stats(); st.Misses != 0 || st.DiskHits == 0 {
		t.Fatalf("store poisoned: third engine ran %d kernels (disk hits %d)", st.Misses, st.DiskHits)
	}
}

// An injected mid-snapshot write failure never reaches the serving path:
// requests succeed, the failure is counted, nothing torn is published, and a
// later engine simply recomputes (cold, but correct).
func TestEngineWriteFailpointDegradesToCold(t *testing.T) {
	faultinject.Enable("diskstore.write", faultinject.Spec{Mode: faultinject.ModeError})
	defer faultinject.Disable("diskstore.write")

	ds := testDataset()
	dir := t.TempDir()
	ctx := context.Background()
	in := FromDataset(ds)

	a := newDiskEngine(t, dir)
	want, err := a.Clusters(ctx, in, testVariant)
	if err != nil {
		t.Fatal(err) // snapshot failures must not surface to callers
	}
	a.Close()
	if st := a.Stats(); st.WriteBehindErrors == 0 {
		t.Fatalf("injected write failures not counted; stats %+v", st)
	}
	if _, err := os.Stat(snapPath(dir, in.key(StageCluster, testVariant))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("a blob was published despite every write failing: %v", err)
	}

	faultinject.Disable("diskstore.write")
	b := newDiskEngine(t, dir)
	got, err := b.Clusters(ctx, in, testVariant)
	if err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Misses == 0 {
		t.Fatal("nothing was published, so the second engine must recompute")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("cold recompute differs")
	}
}

// Oversized artifacts spill to the disk tier even though memory never
// retains them: the repeat request costs a verified disk read, not a kernel.
func TestStoreOversizedSpillsToDisk(t *testing.T) {
	dir := t.TempDir()
	d, err := diskstore.Open(diskstore.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(100) // tiny budget: the artifact below is oversized
	s.AttachDisk(d)
	defer s.Close()

	key := Key{Input: "oversize", Stage: StageOrder, Variant: testVariant}
	ord := make([]int32, 64)
	for i := range ord {
		ord[i] = int32(i * 3)
	}
	var computes int
	compute := func(context.Context) (any, int64, error) {
		computes++
		return ord, int64(4 * len(ord)), nil // 256 bytes > the 100-byte budget
	}
	if _, src, err := s.Do(context.Background(), key, compute); err != nil || src != Computed {
		t.Fatalf("first Do = (%v, %v)", src, err)
	}
	if s.Contains(key) {
		t.Fatal("oversized artifact retained in memory")
	}
	// Wait for the write-behind spill to publish.
	deadline := time.Now().Add(5 * time.Second)
	for !s.ContainsOnDisk(key) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !s.ContainsOnDisk(key) {
		t.Fatal("oversized artifact never spilled to disk")
	}
	v, src, err := s.Do(context.Background(), key, compute)
	if err != nil || src != Disk {
		t.Fatalf("second Do = (%v, %v), want a disk load", src, err)
	}
	if got := v.([]int32); !reflect.DeepEqual(got, ord) {
		t.Fatal("disk-loaded oversized artifact differs")
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1 (repeat served from disk)", computes)
	}
	if st := s.Stats(); st.Oversized != 2 || st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 2 oversized (both Dos) and 1 disk hit", st)
	}
}

// Singleflight covers the disk tier: concurrent callers of one key while a
// disk load is in flight join it (Shared), they do not each open the file.
func TestStoreDiskLoadSingleflight(t *testing.T) {
	dir := t.TempDir()
	d, err := diskstore.Open(diskstore.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(1 << 20)
	s.AttachDisk(d)
	defer s.Close()

	key := Key{Input: "sf", Stage: StageOrder, Variant: testVariant}
	mustNotCompute := func(context.Context) (any, int64, error) {
		return nil, 0, errors.New("unexpected compute")
	}
	// Publish a snapshot, then drop the resident copy by replacing the store.
	if _, _, err := s.Do(context.Background(), key, func(context.Context) (any, int64, error) {
		return []int32{1, 2, 3}, 12, nil
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !s.ContainsOnDisk(key) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s2 := NewStore(1 << 20)
	s2.AttachDisk(d)
	// s2 shares d with s; only close the disk tier once.
	v, src, err := s2.Do(context.Background(), key, mustNotCompute)
	if err != nil || src != Disk {
		t.Fatalf("Do = (%v, %v, %v), want a disk load", v, src, err)
	}
	if _, src, err := s2.Do(context.Background(), key, mustNotCompute); err != nil || src != Hit {
		t.Fatalf("promoted artifact not resident: (%v, %v)", src, err)
	}
}
