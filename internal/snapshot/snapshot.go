// Package snapshot is the versioned binary codec for persisted pipeline
// artifacts: CSR graphs, vertex orders, cluster sets, scored clusters,
// match tables and filtered sampling results (DESIGN.md §10).
//
// Every snapshot is one self-validating byte blob:
//
//	offset 0   magic "PSNP"
//	       4   u16 format version (FormatVersion)
//	       6   u16 artifact type id
//	       8   u64 payload length
//	      16   u64 reserved (0)
//	      24   payload (every field 8-byte aligned)
//	 24+len    u64 CRC64-ECMA over bytes [0, 24+len)
//
// The payload is a flat little-endian layout mirroring the in-memory
// arenas: scalars are 8-byte words (integers sign-extended, floats as IEEE
// bits, so round-trips are exact), and arrays are a u64 count followed by
// raw elements padded to the next 8-byte boundary. Because every section
// starts 8-aligned, int32/int64/float64 arenas in a decoded snapshot can
// alias the encoded buffer directly on little-endian machines — the
// mmap'd zero-copy load path — with an element-wise copy as the portable
// fallback.
//
// Decoding is defensive end to end: the checksum is verified before any
// parsing, every read is bounds-checked, and a malformed blob yields an
// error wrapping ErrCorrupt — never a panic, never a partially valid
// artifact. The disk tier treats any decode error as an ordinary cache
// miss and recomputes.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
	"unsafe"
)

// FormatVersion is the on-disk format revision. Any incompatible layout
// change must bump it; decoders reject other versions (the caller then
// recomputes and overwrites, which is how the cache migrates itself).
const FormatVersion = 1

// Artifact type ids carried in the header. Values are part of the on-disk
// format: never renumber, only append.
const (
	// TypeGraph is a CSR correlation network (internal/graph.Graph).
	TypeGraph uint16 = 1
	// TypeOrder is a vertex processing order ([]int32).
	TypeOrder uint16 = 2
	// TypeClusters is an MCODE cluster set ([]mcode.Cluster).
	TypeClusters uint16 = 3
	// TypeScored is an ontology-scored cluster set ([]analysis.ScoredCluster).
	TypeScored uint16 = 4
	// TypeMatches is an original-vs-filtered match table ([]analysis.Match).
	TypeMatches uint16 = 5
	// TypeFiltered is a sampling result plus its materialized subgraph.
	TypeFiltered uint16 = 6
)

// ErrCorrupt is wrapped by every decode failure: bad magic, version or type
// mismatch, checksum failure, truncation, or structurally invalid contents.
var ErrCorrupt = errors.New("snapshot: corrupt or incompatible snapshot")

const (
	headerLen  = 24
	trailerLen = 8
	magic      = "PSNP"
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// hostLittleEndian reports whether int32/float64 arenas may alias encoded
// bytes directly (the format is little-endian on disk).
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ----------------------------------------------------------------- encoder

// enc builds a snapshot payload. All put methods keep the write cursor
// 8-byte aligned.
type enc struct {
	buf []byte
}

func (e *enc) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

func (e *enc) i64(v int64) { e.u64(uint64(v)) }

func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *enc) pad8() {
	for len(e.buf)%8 != 0 {
		e.buf = append(e.buf, 0)
	}
}

func (e *enc) i32s(v []int32) {
	e.u64(uint64(len(v)))
	if hostLittleEndian && len(v) > 0 {
		e.buf = append(e.buf, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))...)
	} else {
		for _, x := range v {
			e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(x))
		}
	}
	e.pad8()
}

func (e *enc) i64s(v []int64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u64(uint64(x))
	}
}

func (e *enc) f64s(v []float64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

// finish wraps the payload in header and checksum trailer.
func finish(typeID uint16, payload []byte) []byte {
	out := make([]byte, 0, headerLen+len(payload)+trailerLen)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, FormatVersion)
	out = binary.LittleEndian.AppendUint16(out, typeID)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint64(out, 0) // reserved
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint64(out, crc64.Checksum(out, crcTable))
	return out
}

// ----------------------------------------------------------------- decoder

// dec is a bounds-checked payload reader with a sticky error: after the
// first short or invalid read every subsequent getter returns zero values,
// and the caller checks dec.err once per structural unit.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, msg)
	}
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated payload")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads an array length and verifies the declared elements fit the
// remaining payload, so a corrupt length can never drive a huge allocation.
func (d *dec) count(elemSize int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.buf)-d.off)/uint64(elemSize) {
		d.fail("array length exceeds payload")
		return 0
	}
	return int(n)
}

func (d *dec) pad8() {
	for d.err == nil && d.off%8 != 0 {
		if d.off >= len(d.buf) {
			d.fail("truncated padding")
			return
		}
		d.off++
	}
}

// i32s reads an int32 array. On little-endian hosts the returned slice
// aliases the decode buffer (zero copy out of an mmap'd snapshot); callers
// adopt it as immutable, exactly like a CSR arena.
func (d *dec) i32s() []int32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		d.pad8()
		return nil
	}
	raw := d.buf[d.off : d.off+4*n]
	d.off += 4 * n
	d.pad8()
	if hostLittleEndian {
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

func (d *dec) i64s() []int64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.i64()
	}
	return out
}

func (d *dec) f64s() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

// TypeOf returns the artifact type id of an encoded snapshot without
// verifying the checksum (a routing peek; full validation happens on
// decode).
func TypeOf(data []byte) (uint16, error) {
	if len(data) < headerLen || string(data[:4]) != magic {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	return binary.LittleEndian.Uint16(data[6:]), nil
}

// open validates the envelope — magic, version, type, length, checksum —
// and returns a payload decoder. Checksum first: parsing only ever sees
// bytes that hashed clean end to end.
func open(data []byte, wantType uint16) (*dec, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorrupt, len(data))
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	sum := binary.LittleEndian.Uint64(data[len(data)-trailerLen:])
	if crc64.Checksum(data[:len(data)-trailerLen], crcTable) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrCorrupt, v, FormatVersion)
	}
	if t := binary.LittleEndian.Uint16(data[6:]); t != wantType {
		return nil, fmt.Errorf("%w: artifact type %d, want %d", ErrCorrupt, t, wantType)
	}
	plen := binary.LittleEndian.Uint64(data[8:])
	if plen != uint64(len(data)-headerLen-trailerLen) {
		return nil, fmt.Errorf("%w: payload length %d in a %d-byte snapshot", ErrCorrupt, plen, len(data))
	}
	return &dec{buf: data[headerLen : headerLen+int(plen)]}, nil
}

// done verifies the payload was consumed exactly and returns the decode
// error, if any.
func (d *dec) done() error {
	if d.err == nil && d.off != len(d.buf) {
		d.fail("trailing bytes after payload")
	}
	return d.err
}
