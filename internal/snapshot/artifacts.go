package snapshot

import (
	"fmt"

	"parsample/internal/analysis"
	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/mpisim"
)

// ------------------------------------------------------------------ graphs

// EncodeGraph snapshots a CSR graph as its raw arenas — the decoded form
// adopts them without a Builder pass (graph.FromCSRArenas).
func EncodeGraph(g *graph.Graph) []byte {
	var e enc
	putGraph(&e, g)
	return finish(TypeGraph, e.buf)
}

// DecodeGraph reconstructs a snapshotted graph. On little-endian hosts the
// arenas alias data — keep the buffer (or mapping) alive for the graph's
// lifetime and never modify it.
func DecodeGraph(data []byte) (*graph.Graph, error) {
	d, err := open(data, TypeGraph)
	if err != nil {
		return nil, err
	}
	g := getGraph(d)
	if err := d.done(); err != nil {
		return nil, err
	}
	return g, nil
}

func putGraph(e *enc, g *graph.Graph) {
	off, nbr := g.CSR()
	e.u64(uint64(g.N()))
	e.u64(uint64(g.M()))
	e.i32s(off)
	e.i32s(nbr)
}

func getGraph(d *dec) *graph.Graph {
	n := d.u64()
	m := d.u64()
	off := d.i32s()
	nbr := d.i32s()
	if d.err != nil {
		return nil
	}
	if n > 0 && uint64(len(off)) != n+1 {
		d.fail("offset arena does not match vertex count")
		return nil
	}
	g, err := graph.FromCSRArenas(off, nbr)
	if err != nil {
		d.fail(err.Error())
		return nil
	}
	if uint64(g.N()) != n || uint64(g.M()) != m {
		d.fail("graph dimensions do not match header")
		return nil
	}
	return g
}

// ------------------------------------------------------------------ orders

// EncodeOrder snapshots a vertex processing order.
func EncodeOrder(ord []int32) []byte {
	var e enc
	e.i32s(ord)
	return finish(TypeOrder, e.buf)
}

// DecodeOrder reconstructs a snapshotted vertex order (aliasing data on
// little-endian hosts, like DecodeGraph).
func DecodeOrder(data []byte) ([]int32, error) {
	d, err := open(data, TypeOrder)
	if err != nil {
		return nil, err
	}
	ord := d.i32s()
	if err := d.done(); err != nil {
		return nil, err
	}
	return ord, nil
}

// ---------------------------------------------------------------- clusters

// EncodeClusters snapshots an MCODE cluster set.
func EncodeClusters(cs []mcode.Cluster) []byte {
	var e enc
	putClusters(&e, cs)
	return finish(TypeClusters, e.buf)
}

// DecodeClusters reconstructs a snapshotted cluster set.
func DecodeClusters(data []byte) ([]mcode.Cluster, error) {
	d, err := open(data, TypeClusters)
	if err != nil {
		return nil, err
	}
	cs := getClusters(d)
	if err := d.done(); err != nil {
		return nil, err
	}
	return cs, nil
}

// clusterMinLen is the encoded floor of one cluster (five scalar words plus
// an empty vertex array), used to bound count allocations.
const clusterMinLen = 6 * 8

func putClusters(e *enc, cs []mcode.Cluster) {
	e.u64(uint64(len(cs)))
	for i := range cs {
		c := &cs[i]
		e.i64(int64(c.ID))
		e.i64(int64(c.Seed))
		e.i64(int64(c.Edges))
		e.f64(c.Density)
		e.f64(c.Score)
		e.i32s(c.Vertices)
	}
}

func getClusters(d *dec) []mcode.Cluster {
	n := d.count(clusterMinLen)
	if d.err != nil || n == 0 {
		return nil
	}
	cs := make([]mcode.Cluster, n)
	for i := range cs {
		cs[i].ID = int(d.i64())
		cs[i].Seed = int32(d.i64())
		cs[i].Edges = int(d.i64())
		cs[i].Density = d.f64()
		cs[i].Score = d.f64()
		cs[i].Vertices = d.i32s()
		if d.err != nil {
			return nil
		}
	}
	return cs
}

// ------------------------------------------------------------------ scores

// EncodeScored snapshots an ontology-scored cluster set.
func EncodeScored(sc []analysis.ScoredCluster) []byte {
	var e enc
	e.u64(uint64(len(sc)))
	for i := range sc {
		s := &sc[i]
		e.i64(int64(s.Cluster.ID))
		e.i64(int64(s.Cluster.Seed))
		e.i64(int64(s.Cluster.Edges))
		e.f64(s.Cluster.Density)
		e.f64(s.Cluster.Score)
		e.i32s(s.Cluster.Vertices)
		e.f64(s.Score.AEES)
		e.i64(int64(s.Score.MaxEdgeScore))
		e.i64(int64(s.Score.DominantTerm))
		e.i64(int64(s.Score.DominantCount))
		e.i64(int64(s.Score.Edges))
	}
	return finish(TypeScored, e.buf)
}

// DecodeScored reconstructs a snapshotted scored-cluster set.
func DecodeScored(data []byte) ([]analysis.ScoredCluster, error) {
	d, err := open(data, TypeScored)
	if err != nil {
		return nil, err
	}
	n := d.count(clusterMinLen + 5*8)
	sc := make([]analysis.ScoredCluster, n)
	for i := range sc {
		s := &sc[i]
		s.Cluster.ID = int(d.i64())
		s.Cluster.Seed = int32(d.i64())
		s.Cluster.Edges = int(d.i64())
		s.Cluster.Density = d.f64()
		s.Cluster.Score = d.f64()
		s.Cluster.Vertices = d.i32s()
		s.Score.AEES = d.f64()
		s.Score.MaxEdgeScore = int(d.i64())
		s.Score.DominantTerm = int32(d.i64())
		s.Score.DominantCount = int(d.i64())
		s.Score.Edges = int(d.i64())
		if d.err != nil {
			break
		}
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	return sc, nil
}

// ----------------------------------------------------------------- matches

// EncodeMatches snapshots an original-vs-filtered match table.
func EncodeMatches(ms []analysis.Match) []byte {
	var e enc
	e.u64(uint64(len(ms)))
	for i := range ms {
		e.i64(int64(ms[i].FilteredID))
		e.i64(int64(ms[i].OriginalID))
		e.f64(ms[i].Overlap.NodeFrac)
		e.f64(ms[i].Overlap.EdgeFrac)
	}
	return finish(TypeMatches, e.buf)
}

// DecodeMatches reconstructs a snapshotted match table.
func DecodeMatches(data []byte) ([]analysis.Match, error) {
	d, err := open(data, TypeMatches)
	if err != nil {
		return nil, err
	}
	n := d.count(4 * 8)
	ms := make([]analysis.Match, n)
	for i := range ms {
		ms[i].FilteredID = int(d.i64())
		ms[i].OriginalID = int(d.i64())
		ms[i].Overlap.NodeFrac = d.f64()
		ms[i].Overlap.EdgeFrac = d.f64()
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	return ms, nil
}

// ---------------------------------------------------------------- filtered

// FilteredParts is the persistable form of a Filter-stage artifact: the
// sampling telemetry plus the materialized subgraph. The in-memory
// sampling.Result's EdgeView is not persisted — it is reconstructed from
// the subgraph on decode (graph.GraphEdges), which is equivalent under the
// determinism contract because the subgraph is exactly the admitted edge
// set.
type FilteredParts struct {
	Algorithm            int
	BorderEdges          int
	DuplicateBorderEdges int
	Stats                mpisim.RunStats
	Graph                *graph.Graph
}

// EncodeFiltered snapshots a Filter-stage artifact.
func EncodeFiltered(p FilteredParts) []byte {
	var e enc
	e.i64(int64(p.Algorithm))
	e.i64(int64(p.BorderEdges))
	e.i64(int64(p.DuplicateBorderEdges))
	e.i64(int64(p.Stats.P))
	e.i64(p.Stats.Messages)
	e.i64(p.Stats.Bytes)
	e.i64(p.Stats.CollMessages)
	e.i64(p.Stats.CollBytes)
	e.i64(p.Stats.SerialOps)
	e.i64(p.Stats.Restarts)
	e.i64s(p.Stats.RankOps)
	e.f64s(p.Stats.RankSeconds)
	putGraph(&e, p.Graph)
	return finish(TypeFiltered, e.buf)
}

// DecodeFiltered reconstructs a snapshotted Filter-stage artifact.
func DecodeFiltered(data []byte) (FilteredParts, error) {
	d, err := open(data, TypeFiltered)
	if err != nil {
		return FilteredParts{}, err
	}
	var p FilteredParts
	p.Algorithm = int(d.i64())
	p.BorderEdges = int(d.i64())
	p.DuplicateBorderEdges = int(d.i64())
	p.Stats.P = int(d.i64())
	p.Stats.Messages = d.i64()
	p.Stats.Bytes = d.i64()
	p.Stats.CollMessages = d.i64()
	p.Stats.CollBytes = d.i64()
	p.Stats.SerialOps = d.i64()
	p.Stats.Restarts = d.i64()
	p.Stats.RankOps = d.i64s()
	p.Stats.RankSeconds = d.f64s()
	p.Graph = getGraph(d)
	if err := d.done(); err != nil {
		return FilteredParts{}, err
	}
	if p.Graph == nil {
		return FilteredParts{}, fmt.Errorf("%w: filtered snapshot without a subgraph", ErrCorrupt)
	}
	return p, nil
}
