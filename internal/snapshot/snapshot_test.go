package snapshot

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"parsample/internal/analysis"
	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/mpisim"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6)
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {2, 5}} {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func graphsEqual(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	ao, an := a.CSR()
	bo, bn := b.CSR()
	if len(ao) != len(bo) || len(an) != len(bn) {
		return false
	}
	for i := range ao {
		if ao[i] != bo[i] {
			return false
		}
	}
	for i := range an {
		if an[i] != bn[i] {
			return false
		}
	}
	return true
}

func TestGraphRoundTrip(t *testing.T) {
	for _, g := range []*graph.Graph{testGraph(t), graph.NewBuilder(4).Build(), &graph.Graph{}} {
		data := EncodeGraph(g)
		got, err := DecodeGraph(data)
		if err != nil {
			t.Fatalf("decode %v: %v", g, err)
		}
		if !graphsEqual(g, got) {
			t.Fatalf("round trip mismatch: %v -> %v", g, got)
		}
	}
}

func TestOrderRoundTrip(t *testing.T) {
	for _, ord := range [][]int32{nil, {}, {3, 1, 4, 1, 5, 9, 2, 6}} {
		data := EncodeOrder(ord)
		got, err := DecodeOrder(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ord) {
			t.Fatalf("len = %d, want %d", len(got), len(ord))
		}
		for i := range ord {
			if got[i] != ord[i] {
				t.Fatalf("ord[%d] = %d, want %d", i, got[i], ord[i])
			}
		}
	}
}

func TestClustersRoundTrip(t *testing.T) {
	cs := []mcode.Cluster{
		{ID: 1, Vertices: []int32{0, 1, 2}, Edges: 3, Density: 1, Score: 3, Seed: 2},
		{ID: 2, Vertices: []int32{3, 4, 5, 6}, Edges: 5, Density: 5.0 / 6, Score: 10.0 / 3, Seed: 5},
		{ID: 3, Vertices: nil, Edges: 0, Density: math.Pi, Score: -0.0, Seed: -1},
	}
	got, err := DecodeClusters(EncodeClusters(cs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cs) {
		t.Fatalf("len = %d, want %d", len(got), len(cs))
	}
	for i := range cs {
		a, b := cs[i], got[i]
		if a.ID != b.ID || a.Edges != b.Edges || a.Seed != b.Seed ||
			math.Float64bits(a.Density) != math.Float64bits(b.Density) ||
			math.Float64bits(a.Score) != math.Float64bits(b.Score) ||
			len(a.Vertices) != len(b.Vertices) {
			t.Fatalf("cluster %d mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.Vertices {
			if a.Vertices[j] != b.Vertices[j] {
				t.Fatalf("cluster %d vertex %d mismatch", i, j)
			}
		}
	}
	if got, err := DecodeClusters(EncodeClusters(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty round trip = (%v, %v)", got, err)
	}
}

func TestScoredAndMatchesRoundTrip(t *testing.T) {
	sc := []analysis.ScoredCluster{{
		Cluster: mcode.Cluster{ID: 7, Vertices: []int32{1, 2, 9}, Edges: 3, Density: 1, Score: 3, Seed: 9},
	}}
	sc[0].Score.AEES = 2.5
	sc[0].Score.MaxEdgeScore = 6
	sc[0].Score.DominantTerm = 42
	sc[0].Score.DominantCount = 3
	sc[0].Score.Edges = 3
	gotSc, err := DecodeScored(EncodeScored(sc))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSc) != 1 || gotSc[0].Score != sc[0].Score || gotSc[0].Cluster.ID != 7 {
		t.Fatalf("scored round trip mismatch: %+v", gotSc)
	}

	ms := []analysis.Match{
		{FilteredID: 1, OriginalID: 2, Overlap: analysis.Overlap{NodeFrac: 0.75, EdgeFrac: 0.5}},
		{FilteredID: 2, OriginalID: -1},
	}
	gotMs, err := DecodeMatches(EncodeMatches(ms))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMs) != 2 || gotMs[0] != ms[0] || gotMs[1] != ms[1] {
		t.Fatalf("matches round trip mismatch: %+v", gotMs)
	}
}

func TestFilteredRoundTrip(t *testing.T) {
	p := FilteredParts{
		Algorithm:            2,
		BorderEdges:          5,
		DuplicateBorderEdges: 1,
		Stats: mpisim.RunStats{
			P:           4,
			RankOps:     []int64{10, 20, 30, 40},
			RankSeconds: []float64{0.1, 0.2, 0.3, 0.4},
			Messages:    7, Bytes: 512, CollMessages: 3, CollBytes: 64,
			SerialOps: 11, Restarts: 2,
		},
		Graph: testGraph(t),
	}
	got, err := DecodeFiltered(EncodeFiltered(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != p.Algorithm || got.BorderEdges != p.BorderEdges ||
		got.DuplicateBorderEdges != p.DuplicateBorderEdges ||
		got.Stats.P != p.Stats.P || got.Stats.Messages != p.Stats.Messages ||
		got.Stats.SerialOps != p.Stats.SerialOps || got.Stats.Restarts != p.Stats.Restarts {
		t.Fatalf("filtered round trip mismatch: %+v vs %+v", got, p)
	}
	for i := range p.Stats.RankOps {
		if got.Stats.RankOps[i] != p.Stats.RankOps[i] ||
			got.Stats.RankSeconds[i] != p.Stats.RankSeconds[i] {
			t.Fatalf("rank telemetry mismatch at %d", i)
		}
	}
	if !graphsEqual(p.Graph, got.Graph) {
		t.Fatal("subgraph mismatch")
	}
}

// Corruption discipline: every single-byte flip and every truncation of a
// valid snapshot must yield an error wrapping ErrCorrupt — never a panic,
// never a silently wrong artifact.
func TestDecodeRejectsCorruption(t *testing.T) {
	data := EncodeGraph(testGraph(t))
	if _, err := DecodeGraph(data); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		bad := bytes.Clone(data)
		bad[i] ^= 0x40
		if _, err := DecodeGraph(bad); err == nil {
			t.Fatalf("byte flip at %d decoded successfully", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("byte flip at %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	for n := 0; n < len(data); n++ {
		if _, err := DecodeGraph(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

// Type confusion across artifact kinds is rejected by the header.
func TestDecodeRejectsWrongType(t *testing.T) {
	data := EncodeOrder([]int32{1, 2, 3})
	if _, err := DecodeGraph(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("order snapshot decoded as graph: %v", err)
	}
	id, err := TypeOf(data)
	if err != nil || id != TypeOrder {
		t.Fatalf("TypeOf = (%d, %v), want (%d, nil)", id, err, TypeOrder)
	}
}

// A version-skewed snapshot (older or newer format) is an ordinary miss.
func TestDecodeRejectsVersionSkew(t *testing.T) {
	data := bytes.Clone(EncodeOrder([]int32{1}))
	data[4]++ // bump the format version field
	if _, err := DecodeOrder(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("version skew: err = %v, want ErrCorrupt", err)
	}
}

// Structurally invalid payloads behind a valid checksum (a codec bug, not
// bit rot) are still rejected: FromCSRArenas validates the arenas.
func TestDecodeRejectsInvalidStructure(t *testing.T) {
	// A "graph" whose neighbor arena claims an out-of-range vertex.
	var e enc
	e.u64(2)                 // n
	e.u64(1)                 // m
	e.i32s([]int32{0, 1, 2}) // off
	e.i32s([]int32{9, 0})    // nbr: vertex 9 out of range
	data := finish(TypeGraph, e.buf)
	if _, err := DecodeGraph(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("invalid structure: err = %v, want ErrCorrupt", err)
	}
}
