package mpisim

import (
	"sync/atomic"
	"testing"
)

func TestSendRecv(t *testing.T) {
	c := NewComm(2)
	c.Run(func(rank int) {
		if rank == 0 {
			c.Send(0, 1, 7, "hello", 5)
		} else {
			m := c.Recv(1, 0)
			if m.From != 0 || m.Tag != 7 || m.Payload.(string) != "hello" || m.Bytes != 5 {
				t.Errorf("bad message: %+v", m)
			}
		}
	})
	if c.Messages() != 1 || c.Bytes() != 5 {
		t.Fatalf("counters: msgs=%d bytes=%d", c.Messages(), c.Bytes())
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const p = 8
	c := NewComm(p)
	var before, after atomic.Int32
	c.Run(func(rank int) {
		before.Add(1)
		c.Barrier()
		if got := before.Load(); got != p {
			t.Errorf("rank %d passed barrier with only %d arrivals", rank, got)
		}
		after.Add(1)
	})
	if after.Load() != p {
		t.Fatal("not all ranks finished")
	}
}

func TestBarrierReusable(t *testing.T) {
	const p = 4
	c := NewComm(p)
	var phase atomic.Int32
	c.Run(func(rank int) {
		for i := 0; i < 10; i++ {
			c.Barrier()
			// Every rank must observe the same phase count parity between
			// barriers; we only check it does not deadlock or panic.
			phase.Add(1)
			c.Barrier()
		}
	})
	if phase.Load() != 10*p {
		t.Fatalf("phase = %d, want %d", phase.Load(), 10*p)
	}
}

func TestManyToOne(t *testing.T) {
	const p = 6
	c := NewComm(p)
	var sum atomic.Int64
	c.Run(func(rank int) {
		if rank == 0 {
			for from := 1; from < p; from++ {
				m := c.Recv(0, from)
				sum.Add(int64(m.Payload.(int)))
			}
		} else {
			c.Send(rank, 0, 0, rank*10, 8)
		}
	})
	if sum.Load() != 10+20+30+40+50 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if c.Messages() != p-1 {
		t.Fatalf("messages = %d, want %d", c.Messages(), p-1)
	}
}

func TestNewCommPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewComm(0)
}

func TestCostModelMonotonic(t *testing.T) {
	m := DefaultCostModel()
	base := RunStats{P: 4, RankOps: []int64{100, 200, 150, 120}, Messages: 10, Bytes: 1000, SerialOps: 50}
	t0 := m.Time(&base)
	if t0 <= 0 {
		t.Fatal("time must be positive")
	}
	moreMsgs := base
	moreMsgs.Messages = 100
	if m.Time(&moreMsgs) <= t0 {
		t.Fatal("more messages must cost more")
	}
	moreWork := base
	moreWork.RankOps = []int64{100, 500, 150, 120}
	if m.Time(&moreWork) <= t0 {
		t.Fatal("bigger bottleneck rank must cost more")
	}
}

func TestRunStatsAggregates(t *testing.T) {
	s := RunStats{RankOps: []int64{3, 9, 1}}
	if s.MaxRankOps() != 9 {
		t.Fatalf("max = %d", s.MaxRankOps())
	}
	if s.TotalOps() != 13 {
		t.Fatalf("total = %d", s.TotalOps())
	}
	empty := RunStats{}
	if empty.MaxRankOps() != 0 || empty.TotalOps() != 0 {
		t.Fatal("empty stats should be zero")
	}
}
