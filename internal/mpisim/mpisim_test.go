package mpisim

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"parsample/internal/comm"
)

// TestMain asserts that the package leaks no goroutines: a future runtime
// bug that leaves a rank blocked (the shape a deadlock takes under the old
// bounded-mailbox design) fails the suite fast instead of hanging CI.
func TestMain(m *testing.M) {
	base := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > base {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			fmt.Fprintf(os.Stderr, "mpisim: %d goroutines leaked (baseline %d):\n%s\n", n-base, base, buf)
			code = 1
		}
	}
	os.Exit(code)
}

func TestSendRecv(t *testing.T) {
	c := NewComm(2)
	c.Run(func(r comm.Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, "hello", 5)
		} else {
			m := r.Recv(0)
			if m.From != 0 || m.Tag != 7 || m.Payload.(string) != "hello" || m.Bytes != 5 {
				t.Errorf("bad message: %+v", m)
			}
		}
	})
	if c.Messages() != 1 || c.Bytes() != 5 {
		t.Fatalf("counters: msgs=%d bytes=%d", c.Messages(), c.Bytes())
	}
}

// TestUnboundedQueues: the old runtime's 64-deep mailboxes made this
// pattern deadlock — a rank posting thousands of messages before its
// partner receives anything. Sends must never block.
func TestUnboundedQueues(t *testing.T) {
	const n = 10000
	c := NewComm(2)
	received := 0
	c.Run(func(r comm.Rank) {
		if r.ID() == 0 {
			for i := 0; i < n; i++ {
				r.Send(1, 0, i, 4)
			}
		} else {
			for i := 0; i < n; i++ {
				m := r.Recv(0)
				if m.Payload.(int) != i {
					t.Errorf("out of order: got %d want %d", m.Payload.(int), i)
					return
				}
				received++
			}
		}
	})
	if received != n {
		t.Fatalf("received %d of %d", received, n)
	}
}

func TestSendrecvFullExchange(t *testing.T) {
	// Every rank exchanges with every other simultaneously — deadlock-prone
	// under blocking sends, safe under Sendrecv.
	const p = 8
	c := NewComm(p)
	var sum atomic.Int64
	c.Run(func(r comm.Rank) {
		for d := 1; d < p; d++ {
			to := (r.ID() + d) % p
			from := (r.ID() - d + p) % p
			m := r.Sendrecv(to, 0, r.ID(), 8, from)
			sum.Add(int64(m.Payload.(int)))
		}
	})
	want := int64((p - 1) * p * (p - 1) / 2) // each rank id counted p-1 times
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestAnyRecvVirtualArrivalOrder(t *testing.T) {
	// Rank 0 computes a long time before sending; rank 1 sends immediately.
	// AnyRecv at rank 2 must deliver in modeled-arrival order (1 before 0)
	// regardless of real scheduling.
	c := NewComm(3)
	var order []int
	c.Run(func(r comm.Rank) {
		switch r.ID() {
		case 0:
			r.Compute(1_000_000)
			r.Send(2, 0, "slow", 4)
		case 1:
			r.Send(2, 0, "fast", 4)
		case 2:
			sources := []int{0, 1}
			for i := 0; i < 2; i++ {
				m := r.AnyRecv(sources)
				order = append(order, m.From)
				for j, s := range sources {
					if s == m.From {
						sources = append(sources[:j], sources[j+1:]...)
						break
					}
				}
			}
		}
	})
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("delivery order %v, want [1 0]", order)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const p = 8
	c := NewComm(p)
	var before, after atomic.Int32
	c.Run(func(r comm.Rank) {
		before.Add(1)
		r.Barrier()
		if got := before.Load(); got != p {
			t.Errorf("rank %d passed barrier with only %d arrivals", r.ID(), got)
		}
		after.Add(1)
	})
	if after.Load() != p {
		t.Fatal("not all ranks finished")
	}
}

func TestBarrierReusable(t *testing.T) {
	const p = 4
	c := NewComm(p)
	var phase atomic.Int32
	c.Run(func(r comm.Rank) {
		for i := 0; i < 10; i++ {
			r.Barrier()
			phase.Add(1)
			r.Barrier()
		}
	})
	if phase.Load() != 10*p {
		t.Fatalf("phase = %d, want %d", phase.Load(), 10*p)
	}
}

func TestManyToOneAnyRecv(t *testing.T) {
	const p = 6
	c := NewComm(p)
	var sum atomic.Int64
	c.Run(func(r comm.Rank) {
		if r.ID() == 0 {
			sources := []int{1, 2, 3, 4, 5}
			for len(sources) > 0 {
				m := r.AnyRecv(sources)
				sum.Add(int64(m.Payload.(int)))
				for j, s := range sources {
					if s == m.From {
						sources = append(sources[:j], sources[j+1:]...)
						break
					}
				}
			}
		} else {
			r.Send(0, 0, r.ID()*10, 8)
		}
	})
	if sum.Load() != 10+20+30+40+50 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if c.Messages() != p-1 {
		t.Fatalf("messages = %d, want %d", c.Messages(), p-1)
	}
}

func TestGathervReassembly(t *testing.T) {
	const p = 7
	c := NewComm(p)
	var rootGot [][]int
	c.Run(func(r comm.Rank) {
		// Variable-size payload: rank i contributes i+1 ints.
		mine := make([]int, r.ID()+1)
		for j := range mine {
			mine[j] = r.ID()*100 + j
		}
		all := r.Gatherv(3, mine, 8*len(mine))
		if r.ID() != 3 {
			if all != nil {
				t.Errorf("rank %d: non-root got a gather result", r.ID())
			}
			return
		}
		rootGot = make([][]int, p)
		for i, v := range all {
			rootGot[i] = v.([]int)
		}
	})
	if len(rootGot) != p {
		t.Fatalf("root gathered %d slots", len(rootGot))
	}
	for i, s := range rootGot {
		if len(s) != i+1 {
			t.Fatalf("rank %d slot has %d elements, want %d", i, len(s), i+1)
		}
		for j, v := range s {
			if v != i*100+j {
				t.Fatalf("slot %d[%d] = %d", i, j, v)
			}
		}
	}
	if c.CollMessages() != p-1 {
		t.Fatalf("collective messages = %d, want %d", c.CollMessages(), p-1)
	}
}

func TestBcast(t *testing.T) {
	const p = 5
	c := NewComm(p)
	var got [p]string
	c.Run(func(r comm.Rank) {
		payload := fmt.Sprintf("from-%d", r.ID())
		got[r.ID()] = r.Bcast(2, payload, len(payload)).(string)
	})
	for i, s := range got {
		if s != "from-2" {
			t.Fatalf("rank %d got %q", i, s)
		}
	}
	if c.CollMessages() != p-1 {
		t.Fatalf("collective messages = %d", c.CollMessages())
	}
}

func TestAllreduce(t *testing.T) {
	const p = 9
	c := NewComm(p)
	var sums, maxs, mins [p]float64
	c.Run(func(r comm.Rank) {
		v := float64(r.ID() + 1)
		sums[r.ID()] = r.Allreduce(v, ReduceSum)
		maxs[r.ID()] = r.Allreduce(v, ReduceMax)
		mins[r.ID()] = r.Allreduce(v, ReduceMin)
	})
	for i := 0; i < p; i++ {
		if sums[i] != 45 {
			t.Fatalf("rank %d sum = %v", i, sums[i])
		}
		if maxs[i] != 9 || mins[i] != 1 {
			t.Fatalf("rank %d max/min = %v/%v", i, maxs[i], mins[i])
		}
	}
}

func TestAllreduceDeterministicFold(t *testing.T) {
	// The fold runs in rank order on every rank, so floating-point sums are
	// bitwise identical across ranks and across repeated runs — the
	// "associativity" contract callers rely on.
	const p = 8
	vals := []float64{1e16, 1, -1e16, 3.5, 0.25, 1e-8, 7, -2}
	var ref [p]float64
	for trial := 0; trial < 3; trial++ {
		c := NewComm(p)
		var got [p]float64
		c.Run(func(r comm.Rank) {
			got[r.ID()] = r.Allreduce(vals[r.ID()], ReduceSum)
		})
		for i := 1; i < p; i++ {
			if got[i] != got[0] {
				t.Fatalf("trial %d: rank %d disagrees: %v vs %v", trial, i, got[i], got[0])
			}
		}
		if trial == 0 {
			ref = got
		} else if got != ref {
			t.Fatalf("trial %d: result changed across runs: %v vs %v", trial, got, ref)
		}
	}
}

func TestVirtualClockPointToPoint(t *testing.T) {
	m := CostModel{SecondsPerOp: 1e-6, LatencySeconds: 1e-3, OverheadSeconds: 1e-4, SecondsPerByte: 1e-7}
	c := NewCommModel(2, m)
	var stats RunStats
	c.Run(func(r comm.Rank) {
		if r.ID() == 0 {
			r.Compute(1000) // 1 ms
			r.Send(1, 0, "x", 100)
		} else {
			r.Recv(0)
		}
	})
	c.FillStats(&stats)
	// Sender: 1000 ops + send overhead.
	want0 := 1000*1e-6 + 1e-4
	// Receiver: idle until arrival (send clock + latency + 100 B transfer),
	// then receive overhead.
	want1 := want0 + 1e-3 + 100*1e-7 + 1e-4
	if math.Abs(stats.RankSeconds[0]-want0) > 1e-12 {
		t.Fatalf("rank 0 clock %v, want %v", stats.RankSeconds[0], want0)
	}
	if math.Abs(stats.RankSeconds[1]-want1) > 1e-12 {
		t.Fatalf("rank 1 clock %v, want %v", stats.RankSeconds[1], want1)
	}
	if m.Time(&stats) != stats.CriticalPath() {
		t.Fatalf("Time should charge the critical path")
	}
}

func TestVirtualClockOverlap(t *testing.T) {
	// A receiver that is already past a message's arrival time pays only the
	// receive overhead — waited-on communication, not all communication,
	// lands on the critical path.
	m := CostModel{SecondsPerOp: 1e-6, LatencySeconds: 1e-3, OverheadSeconds: 0}
	c := NewCommModel(2, m)
	var stats RunStats
	c.Run(func(r comm.Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, "early", 0)
		} else {
			r.Compute(10_000) // 10 ms >> 1 ms arrival
			r.Recv(0)
		}
	})
	c.FillStats(&stats)
	if got, want := stats.RankSeconds[1], 10_000*1e-6; got != want {
		t.Fatalf("receiver clock %v, want %v (no extra wait)", got, want)
	}
}

func TestRunClockDeterminism(t *testing.T) {
	run := func() []float64 {
		c := NewComm(4)
		c.Run(func(r comm.Rank) {
			r.Compute(int64(100 * (r.ID() + 1)))
			if r.ID() > 0 {
				r.Send(0, 0, r.ID(), 8)
			} else {
				sources := []int{1, 2, 3}
				for len(sources) > 0 {
					m := r.AnyRecv(sources)
					r.Compute(50)
					for j, s := range sources {
						if s == m.From {
							sources = append(sources[:j], sources[j+1:]...)
							break
						}
					}
				}
			}
			r.Barrier()
		})
		var s RunStats
		c.FillStats(&s)
		return s.RankSeconds
	}
	ref := run()
	for i := 0; i < 10; i++ {
		got := run()
		for r := range ref {
			if got[r] != ref[r] {
				t.Fatalf("run %d rank %d clock %v != %v", i, r, got[r], ref[r])
			}
		}
	}
}

func TestNewCommPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewComm(0)
}

func TestSendToSelfPanics(t *testing.T) {
	c := NewComm(2)
	c.Run(func(r comm.Rank) {
		if r.ID() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("want panic on self-send")
			}
		}()
		r.Send(0, 0, nil, 0)
	})
}

func TestCostModelMonotonic(t *testing.T) {
	m := DefaultCostModel()
	base := RunStats{P: 4, RankOps: []int64{100, 200, 150, 120}, Messages: 10, Bytes: 1000, SerialOps: 50}
	t0 := m.Time(&base)
	if t0 <= 0 {
		t.Fatal("time must be positive")
	}
	moreMsgs := base
	moreMsgs.Messages = 100
	if m.Time(&moreMsgs) <= t0 {
		t.Fatal("more messages must cost more")
	}
	moreWork := base
	moreWork.RankOps = []int64{100, 500, 150, 120}
	if m.Time(&moreWork) <= t0 {
		t.Fatal("bigger bottleneck rank must cost more")
	}
	// Clocked stats switch Time to the critical path.
	clocked := base
	clocked.RankSeconds = []float64{0.5, 2.0, 1.0, 0.25}
	want := 2.0 + float64(clocked.SerialOps)*m.SerialSecPerOp
	if got := m.Time(&clocked); got != want {
		t.Fatalf("clocked time %v, want %v", got, want)
	}
}

func TestRunStatsAggregates(t *testing.T) {
	s := RunStats{RankOps: []int64{3, 9, 1}}
	if s.MaxRankOps() != 9 {
		t.Fatalf("max = %d", s.MaxRankOps())
	}
	if s.TotalOps() != 13 {
		t.Fatalf("total = %d", s.TotalOps())
	}
	empty := RunStats{}
	if empty.MaxRankOps() != 0 || empty.TotalOps() != 0 || empty.CriticalPath() != 0 {
		t.Fatal("empty stats should be zero")
	}
}
