package mpisim

// CostModel translates measured per-rank operation counts and communication
// volume into modeled cluster execution time (seconds). The constants default
// to values typical of the 2012-era commodity clusters the paper used
// (Firefly: AMD dual/quad-core nodes, gigabit-class interconnect) so the
// regenerated Figure 10 has the paper's shape: compute shrinks ~1/P while the
// latency term grows with border traffic.
type CostModel struct {
	SecondsPerOp   float64 // per elementary graph operation
	LatencySeconds float64 // per point-to-point message
	SecondsPerByte float64 // inverse bandwidth
	SerialSecPerOp float64 // per op of unavoidable serial work (merge/dedup)
}

// DefaultCostModel mirrors a ~100 Mops/s per-core graph workload with ~50 µs
// MPI latency and ~100 MB/s effective bandwidth.
func DefaultCostModel() CostModel {
	return CostModel{
		SecondsPerOp:   1e-8,
		LatencySeconds: 50e-6,
		SecondsPerByte: 1e-8,
		SerialSecPerOp: 1e-8,
	}
}

// RunStats captures everything the model needs from one parallel run.
type RunStats struct {
	P         int
	RankOps   []int64 // per-rank elementary operations (compute)
	Messages  int64
	Bytes     int64
	SerialOps int64 // post-processing done on one processor (dedup, merge)
}

// MaxRankOps returns the bottleneck rank's operation count.
func (s *RunStats) MaxRankOps() int64 {
	var mx int64
	for _, v := range s.RankOps {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// TotalOps returns the sum of per-rank operations.
func (s *RunStats) TotalOps() int64 {
	var t int64
	for _, v := range s.RankOps {
		t += v
	}
	return t
}

// Time returns the modeled execution time in seconds:
// bottleneck compute + message latency + transfer time + serial tail.
func (m CostModel) Time(s *RunStats) float64 {
	return float64(s.MaxRankOps())*m.SecondsPerOp +
		float64(s.Messages)*m.LatencySeconds +
		float64(s.Bytes)*m.SecondsPerByte +
		float64(s.SerialOps)*m.SerialSecPerOp
}
