package mpisim

import "parsample/internal/comm"

// CostModel is the LogP-style cost model shared with the TCP runtime; it
// lives in internal/comm so both backends advance clocks through the same
// arithmetic (see comm.CostModel's *Advance helpers).
type CostModel = comm.CostModel

// RunStats captures everything the model needs from one parallel run; the
// shared definition lives in internal/comm.
type RunStats = comm.RunStats

// DefaultCostModel mirrors a ~100 Mops/s per-core graph workload with
// ~50 µs MPI latency, ~10 µs per-message overhead and ~100 MB/s effective
// bandwidth.
func DefaultCostModel() CostModel { return comm.DefaultCostModel() }
