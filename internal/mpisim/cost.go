package mpisim

// CostModel translates simulated work and communication into modeled
// cluster execution time (seconds). The constants default to values
// typical of the 2012-era commodity clusters the paper used (Firefly: AMD
// dual/quad-core nodes, gigabit-class interconnect). The model follows
// LogP: per-message CPU overhead at each end (OverheadSeconds), wire
// latency (LatencySeconds), inverse bandwidth (SecondsPerByte), plus a
// per-operation compute cost (SecondsPerOp).
type CostModel struct {
	SecondsPerOp    float64 // per elementary graph operation
	LatencySeconds  float64 // wire latency per point-to-point message
	OverheadSeconds float64 // per-message CPU overhead at sender and receiver
	SecondsPerByte  float64 // inverse bandwidth
	SerialSecPerOp  float64 // per op of unavoidable serial work (merge/dedup)
}

// DefaultCostModel mirrors a ~100 Mops/s per-core graph workload with
// ~50 µs MPI latency, ~10 µs per-message overhead and ~100 MB/s effective
// bandwidth.
func DefaultCostModel() CostModel {
	return CostModel{
		SecondsPerOp:    1e-8,
		LatencySeconds:  50e-6,
		OverheadSeconds: 10e-6,
		SecondsPerByte:  1e-8,
		SerialSecPerOp:  1e-8,
	}
}

// RunStats captures everything the model needs from one parallel run.
type RunStats struct {
	P            int
	RankOps      []int64   // per-rank elementary operations (compute)
	RankSeconds  []float64 // per-rank virtual clocks at run end (critical path)
	Messages     int64     // point-to-point messages
	Bytes        int64     // point-to-point payload bytes
	CollMessages int64     // modeled messages moved by collectives
	CollBytes    int64     // modeled payload bytes moved by collectives
	SerialOps    int64     // post-processing done on one processor (dedup, merge)
	Restarts     int64     // random-walk restarts (tracked, not charged as compute)
}

// MaxRankOps returns the bottleneck rank's operation count.
func (s *RunStats) MaxRankOps() int64 {
	var mx int64
	for _, v := range s.RankOps {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// TotalOps returns the sum of per-rank operations.
func (s *RunStats) TotalOps() int64 {
	var t int64
	for _, v := range s.RankOps {
		t += v
	}
	return t
}

// CriticalPath returns the latest per-rank virtual clock, or 0 when the run
// carried no clocks (sequential algorithms, legacy stats).
func (s *RunStats) CriticalPath() float64 {
	var mx float64
	for _, t := range s.RankSeconds {
		if t > mx {
			mx = t
		}
	}
	return mx
}

// Time returns the modeled execution time in seconds. Runs executed on the
// clocked runtime (RankSeconds present) are charged their critical path —
// the latest rank's virtual clock, which already interleaves compute with
// the communication it actually waited on — plus the serial tail. Legacy
// stats without clocks fall back to the flat approximation
// bottleneck compute + total latency + total transfer + serial tail.
func (m CostModel) Time(s *RunStats) float64 {
	if len(s.RankSeconds) > 0 {
		return s.CriticalPath() + float64(s.SerialOps)*m.SerialSecPerOp
	}
	return float64(s.MaxRankOps())*m.SecondsPerOp +
		float64(s.Messages)*m.LatencySeconds +
		float64(s.Bytes)*m.SecondsPerByte +
		float64(s.SerialOps)*m.SerialSecPerOp
}
