// Package mpisim is a small simulated distributed-memory runtime. The paper
// ran on the Firefly MPI cluster with 1–64 processors; here each rank is a
// goroutine with point-to-point mailboxes, and all traffic is counted so a
// latency/bandwidth cost model can translate measured per-rank work into
// modeled cluster execution time (used to regenerate Figure 10's shape).
package mpisim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Message is a tagged payload between ranks.
type Message struct {
	From    int
	Tag     int
	Payload any
	Bytes   int // accounted payload size
}

// Comm is a communicator over P simulated ranks.
type Comm struct {
	p     int
	boxes [][]chan Message // boxes[to][from]
	bar   *barrier

	msgs  atomic.Int64
	bytes atomic.Int64
}

// NewComm creates a communicator for p ranks with buffered mailboxes.
func NewComm(p int) *Comm {
	if p < 1 {
		panic(fmt.Sprintf("mpisim: p = %d", p))
	}
	c := &Comm{p: p, bar: newBarrier(p)}
	c.boxes = make([][]chan Message, p)
	for to := 0; to < p; to++ {
		c.boxes[to] = make([]chan Message, p)
		for from := 0; from < p; from++ {
			c.boxes[to][from] = make(chan Message, 64)
		}
	}
	return c
}

// P returns the number of ranks.
func (c *Comm) P() int { return c.p }

// Send delivers a message from rank `from` to rank `to`. Blocking only when
// the (buffered) mailbox is full.
func (c *Comm) Send(from, to, tag int, payload any, size int) {
	c.msgs.Add(1)
	c.bytes.Add(int64(size))
	c.boxes[to][from] <- Message{From: from, Tag: tag, Payload: payload, Bytes: size}
}

// Recv blocks until a message from rank `from` arrives at rank `to`.
func (c *Comm) Recv(to, from int) Message {
	return <-c.boxes[to][from]
}

// Barrier blocks until all p ranks have called it.
func (c *Comm) Barrier() { c.bar.wait() }

// Messages returns the total number of point-to-point messages sent.
func (c *Comm) Messages() int64 { return c.msgs.Load() }

// Bytes returns the total payload bytes sent.
func (c *Comm) Bytes() int64 { return c.bytes.Load() }

// Run launches fn on every rank concurrently and waits for completion.
func (c *Comm) Run(fn func(rank int)) {
	var wg sync.WaitGroup
	wg.Add(c.p)
	for r := 0; r < c.p; r++ {
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(r)
	}
	wg.Wait()
}

// barrier is a reusable P-party barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	p     int
	count int
	phase int
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.p {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
