// Package mpisim is a deadlock-free simulated distributed-memory runtime —
// the in-process implementation of the comm.Comm/comm.Rank surface. The
// paper ran on the Firefly MPI cluster with 1–64 processors; here each
// rank is a goroutine driven through a *Rank handle, point-to-point sends
// are nonblocking posts into unbounded per-pair queues, and collectives
// (Bcast, Gatherv, Allreduce, Barrier) rendezvous through a generation-
// counted exchange area. Every rank carries a virtual clock in modeled
// seconds: compute is charged explicitly (Rank.Compute), sends stamp each
// message with its modeled arrival time, and receives advance the clock to
// that arrival — so after a run the per-rank clocks give the critical path
// (max over ranks of compute plus waited-on communication) that
// CostModel.Time reports for the Figure 10 scalability study. The clock
// arithmetic itself lives in comm.CostModel's *Advance helpers, shared
// with the TCP runtime (internal/transport) so the two backends cannot
// drift.
//
// Deadlock freedom: a send can never block (queues are unbounded), so any
// run in which every receive is eventually matched by a send terminates.
// The earlier runtime used 64-deep bounded mailboxes, which wedged the
// border-exchange chordal sampler at P ≥ 3 once a partition pair carried
// more than ~4096 mutual border edges (sender chains filled each other's
// mailboxes before anyone reached its receive loop).
//
// Determinism: virtual time, not wall time, decides delivery order.
// AnyRecv waits until every candidate source has a pending message and
// then delivers the one with the smallest modeled arrival stamp (sender
// rank breaks ties), so results and modeled clocks are identical across
// runs and GOMAXPROCS settings.
package mpisim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parsample/internal/comm"
)

// Message is a tagged payload between ranks.
type Message = comm.Message

// Comm is a communicator over P simulated ranks.
type Comm struct {
	p     int
	model CostModel
	ranks []*Rank
	boxes []*inbox // boxes[to]
	coll  *collective

	msgs  atomic.Int64
	bytes atomic.Int64

	collMsgs  atomic.Int64
	collBytes atomic.Int64

	aborted atomic.Bool
	wall    float64 // measured wall seconds of the last Run
}

var _ comm.Comm = (*Comm)(nil)

// NewComm creates a communicator for p ranks using DefaultCostModel for the
// virtual clocks.
func NewComm(p int) *Comm { return NewCommModel(p, DefaultCostModel()) }

// NewCommModel creates a communicator for p ranks whose virtual clocks
// advance under the given cost model.
func NewCommModel(p int, m CostModel) *Comm {
	if p < 1 {
		panic(fmt.Sprintf("mpisim: p = %d", p))
	}
	c := &Comm{p: p, model: m}
	c.ranks = make([]*Rank, p)
	c.boxes = make([]*inbox, p)
	for r := 0; r < p; r++ {
		c.ranks[r] = &Rank{c: c, id: r}
		c.boxes[r] = newInbox(p)
	}
	c.coll = newCollective(p)
	return c
}

// P returns the number of ranks.
func (c *Comm) P() int { return c.p }

// Messages returns the total number of point-to-point messages sent.
func (c *Comm) Messages() int64 { return c.msgs.Load() }

// Bytes returns the total point-to-point payload bytes sent.
func (c *Comm) Bytes() int64 { return c.bytes.Load() }

// CollMessages returns the modeled message count of the collectives.
func (c *Comm) CollMessages() int64 { return c.collMsgs.Load() }

// CollBytes returns the modeled payload bytes moved by the collectives.
func (c *Comm) CollBytes() int64 { return c.collBytes.Load() }

// Run launches fn on every rank concurrently and waits for completion.
// It always returns nil: simulated runs have no transport failures, and
// cancellation is reported by the caller's own context check.
//
// A rank may abort mid-run (Rank.Abort, or any blocking primitive after
// Comm.Abort): its goroutine unwinds via the comm.AbortSignal sentinel
// that Run recovers, so an aborted run still returns once every rank has
// either finished or unwound — no goroutine outlives Run.
func (c *Comm) Run(fn func(r comm.Rank)) error {
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(c.p)
	for r := 0; r < c.p; r++ {
		go func(rk *Rank) {
			defer wg.Done()
			rankStart := time.Now()
			defer func() {
				rk.wall = time.Since(rankStart).Seconds()
				if e := recover(); e != nil {
					if _, ok := e.(comm.AbortSignal); !ok {
						panic(e)
					}
				}
			}()
			fn(rk)
		}(c.ranks[r])
	}
	wg.Wait()
	c.wall = time.Since(start).Seconds()
	return nil
}

// Aborted reports whether Abort has been called on the communicator.
func (c *Comm) Aborted() bool { return c.aborted.Load() }

// Abort marks the run as aborted and wakes every rank blocked in a receive
// or collective; woken ranks unwind out of Comm.Run. Compute loops that
// poll a context must abort themselves via Rank.Abort. Safe to call from
// any goroutine, more than once.
func (c *Comm) Abort() {
	c.aborted.Store(true)
	for _, bx := range c.boxes {
		bx.mu.Lock()
		bx.cond.Broadcast()
		bx.mu.Unlock()
	}
	c.coll.mu.Lock()
	c.coll.cond.Broadcast()
	c.coll.mu.Unlock()
}

// AbortOnCancel aborts the communicator when ctx is cancelled. The returned
// stop function releases the watcher goroutine; call it (typically via
// defer) after Run returns. A context that can never be cancelled installs
// no watcher.
func (c *Comm) AbortOnCancel(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	stopped := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.Abort()
		case <-stopped:
		}
	}()
	return func() { close(stopped) }
}

// Abort unwinds the calling rank goroutine with the abort sentinel; Comm.Run
// recovers it. Rank compute loops call this when they observe a cancelled
// context, so a cancelled run terminates promptly even between blocking
// primitives. Must not be called while holding runtime locks (blocking
// primitives handle their own abort checks, releasing locks first).
func (r *Rank) Abort() { panic(comm.AbortSignal{}) }

// FillStats copies the run's accounting into s: per-rank operation counts,
// virtual clocks and measured wall clocks, point-to-point traffic, and
// collective traffic. The wall fields of a simulated run are goroutine
// scheduling time, not a measurement, so Measured stays false.
func (c *Comm) FillStats(s *RunStats) {
	s.P = c.p
	s.RankOps = make([]int64, c.p)
	s.RankSeconds = make([]float64, c.p)
	s.RankWallSeconds = make([]float64, c.p)
	for i, r := range c.ranks {
		s.RankOps[i] = r.ops
		s.RankSeconds[i] = r.clock
		s.RankWallSeconds[i] = r.wall
	}
	s.Messages = c.msgs.Load()
	s.Bytes = c.bytes.Load()
	s.CollMessages = c.collMsgs.Load()
	s.CollBytes = c.collBytes.Load()
	s.WallSeconds = c.wall
	s.Measured = false
}

// Rank is one simulated processor's handle inside Comm.Run. All methods
// must be called only from the goroutine the handle was passed to.
type Rank struct {
	c     *Comm
	id    int
	ops   int64
	clock float64
	wall  float64 // measured wall seconds the rank goroutine spent in Run
}

var _ comm.Rank = (*Rank)(nil)

// ID returns this rank's index in [0, P).
func (r *Rank) ID() int { return r.id }

// P returns the communicator size.
func (r *Rank) P() int { return r.c.p }

// Ops returns the operations charged so far via Compute.
func (r *Rank) Ops() int64 { return r.ops }

// Clock returns the rank's virtual time in modeled seconds.
func (r *Rank) Clock() float64 { return r.clock }

// Compute charges n elementary operations of local work, advancing the
// virtual clock by n·SecondsPerOp.
func (r *Rank) Compute(n int64) {
	r.ops += n
	r.clock += float64(n) * r.c.model.SecondsPerOp
}

// Send posts a message to rank `to`. It never blocks: the per-pair queue is
// unbounded, so no send/receive ordering can deadlock the run. The sender's
// clock pays the per-message overhead; the message is stamped with its
// modeled arrival time (send time + latency + bytes/bandwidth).
func (r *Rank) Send(to, tag int, payload any, size int) {
	if to == r.id || to < 0 || to >= r.c.p {
		panic(fmt.Sprintf("mpisim: rank %d sending to %d", r.id, to))
	}
	var arrive float64
	r.clock, arrive = r.c.model.SendAdvance(r.clock, size)
	r.c.msgs.Add(1)
	r.c.bytes.Add(int64(size))
	bx := r.c.boxes[to]
	bx.mu.Lock()
	bx.q[r.id] = append(bx.q[r.id], Message{From: r.id, Tag: tag, Payload: payload, Bytes: size, Arrive: arrive})
	bx.cond.Broadcast()
	bx.mu.Unlock()
}

// Recv blocks until a message from rank `from` is pending and returns the
// oldest one. The receiver's clock advances to the message's arrival time
// (if it was not already past it) plus the per-message overhead.
func (r *Rank) Recv(from int) Message {
	bx := r.c.boxes[r.id]
	bx.mu.Lock()
	for len(bx.q[from]) == 0 {
		if r.c.aborted.Load() {
			bx.mu.Unlock()
			panic(comm.AbortSignal{})
		}
		bx.cond.Wait()
	}
	msg := bx.pop(from)
	bx.mu.Unlock()
	r.clock = r.c.model.RecvAdvance(r.clock, msg.Arrive)
	return msg
}

// AnyRecv receives from any of the given sources: it returns the pending
// message with the smallest modeled arrival time (sender rank breaks
// ties). To keep delivery deterministic it waits until every listed source
// has at least one pending message — only then is the earliest virtual
// arrival decidable. Callers drop a source from the set once its
// end-of-stream message arrives.
func (r *Rank) AnyRecv(sources []int) Message {
	if len(sources) == 0 {
		panic("mpisim: AnyRecv with no sources")
	}
	bx := r.c.boxes[r.id]
	bx.mu.Lock()
	for {
		ready := true
		for _, s := range sources {
			if len(bx.q[s]) == 0 {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		if r.c.aborted.Load() {
			bx.mu.Unlock()
			panic(comm.AbortSignal{})
		}
		bx.cond.Wait()
	}
	best := sources[0]
	for _, s := range sources[1:] {
		h, b := bx.q[s][0], bx.q[best][0]
		if h.Arrive < b.Arrive || (h.Arrive == b.Arrive && s < best) {
			best = s
		}
	}
	msg := bx.pop(best)
	bx.mu.Unlock()
	r.clock = r.c.model.RecvAdvance(r.clock, msg.Arrive)
	return msg
}

// Sendrecv posts the send (never blocking) and then receives from `from` —
// the classic exchange primitive that is deadlock-safe even when every rank
// calls it simultaneously toward every other.
func (r *Rank) Sendrecv(to, tag int, payload any, size int, from int) Message {
	r.Send(to, tag, payload, size)
	return r.Recv(from)
}

// ------------------------------------------------------------- collectives

// Barrier blocks until all P ranks have called it; every clock advances to
// the latest arrival plus a dissemination round of log2(P) latencies.
func (r *Rank) Barrier() {
	res := r.c.coll.exchange(r, nil, 0)
	r.clock = r.c.model.BarrierAdvance(r.c.p, r.clock, res.clocks)
}

// Bcast broadcasts root's payload to every rank (each caller passes its own
// payload; only root's is delivered) and returns it. Modeled as a binomial
// tree: non-root ranks advance to root's send time plus log2(P) hops of
// latency, overhead and transfer.
func (r *Rank) Bcast(root int, payload any, size int) any {
	c := r.c
	res := c.coll.exchange(r, payload, size)
	val, sz := res.vals[root], res.sizes[root]
	var msgs, bytes int64
	r.clock, msgs, bytes = c.model.BcastAdvance(c.p, r.id, root, r.clock, res.clocks[root], sz)
	c.collMsgs.Add(msgs)
	c.collBytes.Add(bytes)
	return val
}

// Gatherv gathers every rank's (variable-size) payload to root. At root the
// returned slice holds rank i's payload at index i; every other rank gets
// nil. Modeled as a binomial gather tree: root's clock advances to the
// latest contributor plus log2(P) latency hops and the serialized transfer
// of all non-root bytes; contributors just pay their send overhead.
func (r *Rank) Gatherv(root int, payload any, size int) []any {
	c := r.c
	res := c.coll.exchange(r, payload, size)
	if c.p == 1 {
		return []any{res.vals[0]}
	}
	var msgs, bytes int64
	r.clock, msgs, bytes = c.model.GathervAdvance(c.p, r.id, root, r.clock, res.clocks, res.sizes)
	c.collMsgs.Add(msgs)
	c.collBytes.Add(bytes)
	if r.id != root {
		return nil
	}
	out := make([]any, c.p)
	copy(out, res.vals)
	return out
}

// ReduceOp selects the Allreduce combiner.
type ReduceOp = comm.ReduceOp

const (
	// ReduceSum adds contributions.
	ReduceSum = comm.ReduceSum
	// ReduceMax keeps the maximum contribution.
	ReduceMax = comm.ReduceMax
	// ReduceMin keeps the minimum contribution.
	ReduceMin = comm.ReduceMin
)

// Allreduce combines every rank's contribution with op and returns the
// result on all ranks. The fold runs in rank order on each rank, so the
// result is bitwise identical everywhere regardless of scheduling. Modeled
// as a butterfly: log2(P) rounds of latency, two overheads and one word.
func (r *Rank) Allreduce(v float64, op ReduceOp) float64 {
	c := r.c
	res := c.coll.exchange(r, v, 8)
	vals := make([]float64, c.p)
	for i, x := range res.vals {
		vals[i] = x.(float64)
	}
	out := comm.Reduce(op, vals)
	var msgs, bytes int64
	r.clock, msgs, bytes = c.model.AllreduceAdvance(c.p, r.id, r.clock, res.clocks)
	c.collMsgs.Add(msgs)
	c.collBytes.Add(bytes)
	return out
}

// ---------------------------------------------------------------- plumbing

// inbox is one receiver's set of unbounded per-source FIFO queues. The
// single condition variable is the runtime's progress engine: senders post
// and broadcast; receivers sleep until the queues they care about can
// satisfy their (deterministic) delivery rule.
type inbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    [][]Message // q[from]
}

func newInbox(p int) *inbox {
	bx := &inbox{q: make([][]Message, p)}
	bx.cond = sync.NewCond(&bx.mu)
	return bx
}

// pop removes and returns the head of q[from]; caller holds mu.
func (bx *inbox) pop(from int) Message {
	msg := bx.q[from][0]
	bx.q[from][0] = Message{} // release the payload
	bx.q[from] = bx.q[from][1:]
	if len(bx.q[from]) == 0 {
		bx.q[from] = nil // let the grown backing array go
	}
	return msg
}

// collective is the generation-counted rendezvous area behind the
// collectives: every rank deposits (value, size, clock); the last arriver
// snapshots the generation's vectors, resets the area and wakes the rest.
type collective struct {
	mu     sync.Mutex
	cond   *sync.Cond
	gen    uint64
	count  int
	vals   []any
	sizes  []int
	clocks []float64
	result *collResult
}

type collResult struct {
	vals   []any
	sizes  []int
	clocks []float64
}

func newCollective(p int) *collective {
	cl := &collective{
		vals:   make([]any, p),
		sizes:  make([]int, p),
		clocks: make([]float64, p),
	}
	cl.cond = sync.NewCond(&cl.mu)
	return cl
}

// exchange performs an all-gather of (val, size, clock) with barrier
// semantics and returns the completed generation's snapshot.
func (cl *collective) exchange(r *Rank, val any, size int) *collResult {
	cl.mu.Lock()
	cl.vals[r.id] = val
	cl.sizes[r.id] = size
	cl.clocks[r.id] = r.clock
	cl.count++
	gen := cl.gen
	if cl.count == len(cl.vals) {
		res := &collResult{
			vals:   append([]any(nil), cl.vals...),
			sizes:  append([]int(nil), cl.sizes...),
			clocks: append([]float64(nil), cl.clocks...),
		}
		cl.result = res
		cl.count = 0
		cl.gen++
		for i := range cl.vals {
			cl.vals[i] = nil
		}
		cl.cond.Broadcast()
		cl.mu.Unlock()
		return res
	}
	for gen == cl.gen {
		if r.c.aborted.Load() {
			cl.mu.Unlock()
			panic(comm.AbortSignal{})
		}
		cl.cond.Wait()
	}
	res := cl.result
	cl.mu.Unlock()
	return res
}
