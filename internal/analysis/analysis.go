// Package analysis implements the paper's cluster comparison methodology
// (Section IV.A): node/edge overlap between original-network clusters and
// filtered-network clusters, the AEES × overlap quadrant classification into
// TP/FP/FN/TN, per-filter sensitivity and specificity, and lost/found
// cluster detection.
package analysis

import (
	"context"
	"sort"

	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/ontology"
)

// ScoredCluster couples an MCODE cluster with its edge-enrichment summary.
type ScoredCluster struct {
	Cluster mcode.Cluster
	Score   ontology.ClusterScore
}

// ScoreClusters annotates every cluster against the ontology using the host
// graph g for cluster-internal adjacency.
func ScoreClusters(d *ontology.DAG, a *ontology.Annotations, g *graph.Graph, clusters []mcode.Cluster) []ScoredCluster {
	out, _ := ScoreClustersContext(context.Background(), d, a, g, clusters)
	return out
}

// ScoreClustersContext is ScoreClusters with cooperative cancellation,
// polling ctx between clusters (one cluster score walks every internal edge
// pair's annotation sets — the unit of work worth bounding).
func ScoreClustersContext(ctx context.Context, d *ontology.DAG, a *ontology.Annotations, g *graph.Graph, clusters []mcode.Cluster) ([]ScoredCluster, error) {
	out := make([]ScoredCluster, len(clusters))
	for i, c := range clusters {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		out[i] = ScoredCluster{
			Cluster: c,
			Score:   ontology.ScoreCluster(d, a, g.HasEdge, c.Vertices),
		}
	}
	return out, nil
}

// Overlap quantifies how much of cluster b is shared with cluster a.
type Overlap struct {
	NodeFrac float64 // |nodes(a) ∩ nodes(b)| / |nodes(b)|
	EdgeFrac float64 // |edges(a) ∩ edges(b)| / |edges(b)|
}

// NodeOverlap returns |a ∩ b| / |b| over vertex sets (0 when b is empty).
func NodeOverlap(a, b []int32) float64 {
	if len(b) == 0 {
		return 0
	}
	set := make(map[int32]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	n := 0
	for _, v := range b {
		if set[v] {
			n++
		}
	}
	return float64(n) / float64(len(b))
}

// EdgeOverlap returns |E(a) ∩ E(b)| / |E(b)| where E(x) are the
// cluster-internal edges of x in its host graph (0 when b has no edges).
func EdgeOverlap(ga *graph.Graph, a []int32, gb *graph.Graph, b []int32) float64 {
	ea := clusterEdges(ga, a)
	eb := clusterEdges(gb, b)
	if eb.Len() == 0 {
		return 0
	}
	return float64(ea.IntersectionSize(eb)) / float64(eb.Len())
}

func clusterEdges(g *graph.Graph, vs []int32) graph.EdgeSet {
	in := make(map[int32]bool, len(vs))
	for _, v := range vs {
		in[v] = true
	}
	s := graph.NewEdgeSet(len(vs))
	for _, u := range vs {
		for _, v := range g.Neighbors(u) {
			if u < v && in[v] {
				s.Add(u, v)
			}
		}
	}
	return s
}

// Match pairs a filtered cluster with its best-overlapping original cluster.
type Match struct {
	FilteredID int
	OriginalID int // -1 if the filtered cluster overlaps nothing (found)
	Overlap    Overlap
}

// MatchClusters computes, for every filtered cluster, the original cluster
// with the highest node overlap (ties broken by edge overlap). gOrig and
// gFilt are the host graphs used for edge overlap.
func MatchClusters(gOrig *graph.Graph, orig []ScoredCluster, gFilt *graph.Graph, filt []ScoredCluster) []Match {
	out, _ := MatchClustersContext(context.Background(), gOrig, orig, gFilt, filt)
	return out
}

// MatchClustersContext is MatchClusters with cooperative cancellation,
// polling ctx per filtered cluster (each one is compared against every
// original cluster — the quadratic unit of the match table).
func MatchClustersContext(ctx context.Context, gOrig *graph.Graph, orig []ScoredCluster, gFilt *graph.Graph, filt []ScoredCluster) ([]Match, error) {
	out := make([]Match, len(filt))
	for fi, fc := range filt {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		best := Match{FilteredID: fi, OriginalID: -1}
		for oi, oc := range orig {
			ov := Overlap{
				NodeFrac: NodeOverlap(oc.Cluster.Vertices, fc.Cluster.Vertices),
				EdgeFrac: EdgeOverlap(gOrig, oc.Cluster.Vertices, gFilt, fc.Cluster.Vertices),
			}
			if ov.NodeFrac > best.Overlap.NodeFrac ||
				(ov.NodeFrac == best.Overlap.NodeFrac && ov.EdgeFrac > best.Overlap.EdgeFrac) {
				if ov.NodeFrac > 0 || ov.EdgeFrac > 0 {
					best.OriginalID = oi
					best.Overlap = ov
				}
			}
		}
		out[fi] = best
	}
	return out, nil
}

// Quadrant is the paper's TP/FP/FN/TN classification of a filtered cluster
// by AEES (biological meaning) × overlap (rediscovery).
type Quadrant int

const (
	// TruePositive: high AEES, high overlap — meaningful and rediscovered.
	TruePositive Quadrant = iota
	// FalsePositive: low AEES, high overlap — rediscovered but meaningless
	// (dense/large but no shared function).
	FalsePositive
	// FalseNegative: high AEES, low overlap — meaningful but hidden in the
	// original (uncovered only after noise removal).
	FalseNegative
	// TrueNegative: low AEES, low overlap.
	TrueNegative
)

// String returns the conventional abbreviation.
func (q Quadrant) String() string {
	switch q {
	case TruePositive:
		return "TP"
	case FalsePositive:
		return "FP"
	case FalseNegative:
		return "FN"
	case TrueNegative:
		return "TN"
	}
	return "?"
}

// Thresholds used by the paper: overlap > 50%, AEES ≥ 3.0.
const (
	DefaultOverlapThreshold = 0.5
	DefaultAEESThreshold    = 3.0
)

// Classify assigns the quadrant given a cluster's AEES and its overlap value
// (node or edge fraction).
func Classify(aees, overlap, aeesThresh, overlapThresh float64) Quadrant {
	high := overlap > overlapThresh
	meaningful := aees >= aeesThresh
	switch {
	case meaningful && high:
		return TruePositive
	case !meaningful && high:
		return FalsePositive
	case meaningful && !high:
		return FalseNegative
	default:
		return TrueNegative
	}
}

// Counts accumulates quadrant tallies.
type Counts struct{ TP, FP, FN, TN int }

// Add increments the tally for q.
func (c *Counts) Add(q Quadrant) {
	switch q {
	case TruePositive:
		c.TP++
	case FalsePositive:
		c.FP++
	case FalseNegative:
		c.FN++
	case TrueNegative:
		c.TN++
	}
}

// Sensitivity returns TP / (TP + FN), or 0 when undefined.
func (c Counts) Sensitivity() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Specificity returns TN / (TN + FP), or 0 when undefined.
func (c Counts) Specificity() float64 {
	if c.TN+c.FP == 0 {
		return 0
	}
	return float64(c.TN) / float64(c.TN+c.FP)
}

// OverlapKind selects which overlap measure drives the quadrant assignment.
type OverlapKind int

const (
	// ByNode classifies on node overlap.
	ByNode OverlapKind = iota
	// ByEdge classifies on edge overlap.
	ByEdge
)

func (k OverlapKind) String() string {
	if k == ByNode {
		return "node"
	}
	return "edge"
}

// QuadrantCounts classifies every matched filtered cluster and returns the
// tallies (unmatched clusters count with overlap 0).
func QuadrantCounts(filt []ScoredCluster, matches []Match, kind OverlapKind, aeesThresh, overlapThresh float64) Counts {
	var c Counts
	for _, m := range matches {
		ov := m.Overlap.NodeFrac
		if kind == ByEdge {
			ov = m.Overlap.EdgeFrac
		}
		c.Add(Classify(filt[m.FilteredID].Score.AEES, ov, aeesThresh, overlapThresh))
	}
	return c
}

// LostFound separates clusters into lost (original clusters no filtered
// cluster overlaps) and found (filtered clusters overlapping no original).
type LostFound struct {
	Lost  []int // original cluster ids
	Found []int // filtered cluster ids
}

// FindLostFound computes the lost/found sets from the match table.
func FindLostFound(numOrig int, matches []Match) LostFound {
	coveredOrig := make(map[int]bool, numOrig)
	var lf LostFound
	for _, m := range matches {
		if m.OriginalID < 0 {
			lf.Found = append(lf.Found, m.FilteredID)
		} else if m.Overlap.NodeFrac > 0 {
			coveredOrig[m.OriginalID] = true
		}
	}
	for oi := 0; oi < numOrig; oi++ {
		if !coveredOrig[oi] {
			lf.Lost = append(lf.Lost, oi)
		}
	}
	sort.Ints(lf.Lost)
	sort.Ints(lf.Found)
	return lf
}

// ModuleRecovery reports how well a cluster set covers the planted ground
// truth: the fraction of modules for which some cluster has node overlap
// ≥ thresh (overlap measured against the module).
func ModuleRecovery(modules [][]int32, clusters []mcode.Cluster, thresh float64) float64 {
	if len(modules) == 0 {
		return 0
	}
	hit := 0
	for _, mod := range modules {
		for _, c := range clusters {
			if NodeOverlap(c.Vertices, mod) >= thresh {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(modules))
}
