package analysis

import (
	"math"
	"testing"

	"parsample/internal/graph"
	"parsample/internal/mcode"
	"parsample/internal/ontology"
)

func TestNodeOverlap(t *testing.T) {
	a := []int32{1, 2, 3, 4}
	b := []int32{3, 4, 5, 6}
	if got := NodeOverlap(a, b); got != 0.5 {
		t.Fatalf("overlap = %v, want 0.5", got)
	}
	if got := NodeOverlap(a, nil); got != 0 {
		t.Fatalf("empty b = %v", got)
	}
	if got := NodeOverlap(nil, b); got != 0 {
		t.Fatalf("empty a = %v", got)
	}
	if got := NodeOverlap(a, a); got != 1 {
		t.Fatalf("self overlap = %v", got)
	}
}

func TestEdgeOverlap(t *testing.T) {
	// Original: K4 on 0..3. Filtered graph: same K4 minus edge (0,1).
	go4 := graph.Complete(4)
	b := graph.NewBuilder(4)
	go4.ForEachEdge(func(u, v int32) {
		if !(u == 0 && v == 1) {
			b.AddEdge(u, v)
		}
	})
	gf := b.Build()
	vs := []int32{0, 1, 2, 3}
	// Filtered cluster has 5 edges, all present in original: 5/5 = 1.
	if got := EdgeOverlap(go4, vs, gf, vs); got != 1 {
		t.Fatalf("edge overlap = %v, want 1", got)
	}
	// Reversed direction: original cluster has 6 edges, 5 shared: 5/6.
	if got := EdgeOverlap(gf, vs, go4, vs); math.Abs(got-5.0/6) > 1e-12 {
		t.Fatalf("edge overlap = %v, want 5/6", got)
	}
	// Edgeless denominator.
	if got := EdgeOverlap(go4, vs, gf, []int32{0}); got != 0 {
		t.Fatalf("edgeless = %v", got)
	}
}

func TestClassifyQuadrants(t *testing.T) {
	cases := []struct {
		aees, ov float64
		want     Quadrant
	}{
		{5, 0.9, TruePositive},
		{1, 0.9, FalsePositive},
		{5, 0.1, FalseNegative},
		{1, 0.1, TrueNegative},
		{3, 0.51, TruePositive}, // AEES exactly at threshold counts as high
		{2.99, 0.51, FalsePositive},
		{3, 0.5, FalseNegative}, // overlap must exceed threshold
	}
	for _, c := range cases {
		got := Classify(c.aees, c.ov, DefaultAEESThreshold, DefaultOverlapThreshold)
		if got != c.want {
			t.Fatalf("Classify(%v,%v) = %v, want %v", c.aees, c.ov, got, c.want)
		}
	}
}

func TestQuadrantStrings(t *testing.T) {
	if TruePositive.String() != "TP" || FalsePositive.String() != "FP" ||
		FalseNegative.String() != "FN" || TrueNegative.String() != "TN" {
		t.Fatal("quadrant strings wrong")
	}
	if Quadrant(9).String() != "?" {
		t.Fatal("unknown quadrant")
	}
	if ByNode.String() != "node" || ByEdge.String() != "edge" {
		t.Fatal("overlap kind strings wrong")
	}
}

func TestCountsSensitivitySpecificity(t *testing.T) {
	c := Counts{TP: 8, FN: 2, TN: 6, FP: 4}
	if s := c.Sensitivity(); math.Abs(s-0.8) > 1e-12 {
		t.Fatalf("sensitivity = %v", s)
	}
	if s := c.Specificity(); math.Abs(s-0.6) > 1e-12 {
		t.Fatalf("specificity = %v", s)
	}
	var zero Counts
	if zero.Sensitivity() != 0 || zero.Specificity() != 0 {
		t.Fatal("zero counts should give 0")
	}
}

func TestCountsAdd(t *testing.T) {
	var c Counts
	for _, q := range []Quadrant{TruePositive, TruePositive, FalsePositive, FalseNegative, TrueNegative} {
		c.Add(q)
	}
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

// buildScored makes a ScoredCluster from raw vertices with a fixed AEES.
func buildScored(vs []int32, aees float64) ScoredCluster {
	return ScoredCluster{
		Cluster: mcode.Cluster{Vertices: vs},
		Score:   ontology.ClusterScore{AEES: aees},
	}
}

func TestMatchClustersBestOverlap(t *testing.T) {
	g := graph.Complete(10)
	orig := []ScoredCluster{
		buildScored([]int32{0, 1, 2, 3}, 4),
		buildScored([]int32{6, 7, 8}, 2),
	}
	filt := []ScoredCluster{
		buildScored([]int32{0, 1, 2}, 4), // matches orig 0 fully
		buildScored([]int32{6, 9}, 1),    // partial match with orig 1
		buildScored([]int32{4, 5}, 0),    // matches nothing
	}
	matches := MatchClusters(g, orig, g, filt)
	if matches[0].OriginalID != 0 || matches[0].Overlap.NodeFrac != 1 {
		t.Fatalf("match[0] = %+v", matches[0])
	}
	if matches[1].OriginalID != 1 || matches[1].Overlap.NodeFrac != 0.5 {
		t.Fatalf("match[1] = %+v", matches[1])
	}
	if matches[2].OriginalID != -1 {
		t.Fatalf("match[2] = %+v, want unmatched", matches[2])
	}
}

func TestQuadrantCountsAndLostFound(t *testing.T) {
	g := graph.Complete(12)
	orig := []ScoredCluster{
		buildScored([]int32{0, 1, 2, 3}, 5),
		buildScored([]int32{8, 9, 10, 11}, 1), // will be lost
	}
	filt := []ScoredCluster{
		buildScored([]int32{0, 1, 2, 3}, 5), // TP (full overlap, high AEES)
		buildScored([]int32{4, 5, 6}, 4),    // found, FN (no overlap, high AEES)
	}
	matches := MatchClusters(g, orig, g, filt)
	counts := QuadrantCounts(filt, matches, ByNode, DefaultAEESThreshold, DefaultOverlapThreshold)
	if counts.TP != 1 || counts.FN != 1 || counts.FP != 0 || counts.TN != 0 {
		t.Fatalf("counts = %+v", counts)
	}
	lf := FindLostFound(len(orig), matches)
	if len(lf.Lost) != 1 || lf.Lost[0] != 1 {
		t.Fatalf("lost = %v", lf.Lost)
	}
	if len(lf.Found) != 1 || lf.Found[0] != 1 {
		t.Fatalf("found = %v", lf.Found)
	}
}

func TestQuadrantCountsByEdge(t *testing.T) {
	g := graph.Complete(6)
	orig := []ScoredCluster{buildScored([]int32{0, 1, 2, 3}, 5)}
	filt := []ScoredCluster{buildScored([]int32{0, 1, 2, 3}, 5)}
	matches := MatchClusters(g, orig, g, filt)
	counts := QuadrantCounts(filt, matches, ByEdge, 3, 0.5)
	if counts.TP != 1 {
		t.Fatalf("edge-based counts = %+v", counts)
	}
}

func TestScoreClusters(t *testing.T) {
	d := ontology.Generate(ontology.GenerateSpec{Depth: 8, Branch: 3, Seed: 1})
	modules := [][]int32{{0, 1, 2, 3}}
	a := ontology.AnnotateModules(d, 10, modules, 6, 2)
	g := graph.Complete(10)
	clusters := []mcode.Cluster{{Vertices: []int32{0, 1, 2, 3}}, {Vertices: []int32{5, 6, 7}}}
	scored := ScoreClusters(d, a, g, clusters)
	if len(scored) != 2 {
		t.Fatal("wrong count")
	}
	if scored[0].Score.AEES <= scored[1].Score.AEES {
		t.Fatalf("module cluster AEES %v should beat background %v",
			scored[0].Score.AEES, scored[1].Score.AEES)
	}
}

func TestModuleRecovery(t *testing.T) {
	modules := [][]int32{{0, 1, 2, 3}, {4, 5, 6, 7}}
	clusters := []mcode.Cluster{{Vertices: []int32{0, 1, 2, 3}}}
	if r := ModuleRecovery(modules, clusters, 0.75); r != 0.5 {
		t.Fatalf("recovery = %v, want 0.5", r)
	}
	if r := ModuleRecovery(nil, clusters, 0.75); r != 0 {
		t.Fatal("no modules should give 0")
	}
}
