package transport

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"parsample/internal/comm"
	"parsample/internal/graph"
)

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bodies := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 1<<16)}
	for i, body := range bodies {
		if err := writeFrame(bw, byte(i+1), body); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, body := range bodies {
		typ, got, err := readFrame(br)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, body) {
			t.Fatalf("frame %d: type %d, %d bytes", i, typ, len(got))
		}
	}
	if _, _, err := readFrame(br); err != io.EOF {
		t.Fatalf("expected EOF at stream end, got %v", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrame(bw, fData, []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one payload byte: the CRC trailer must catch it.
	flipped := append([]byte(nil), raw...)
	flipped[7] ^= 0x40
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(flipped))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: want ErrCorrupt, got %v", err)
	}

	// Oversized length prefix: rejected before allocation.
	big := append([]byte(nil), raw...)
	big[0], big[1], big[2], big[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(big))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: want ErrCorrupt, got %v", err)
	}

	// Truncated stream: a clean error, not a hang or panic.
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(raw[:len(raw)-3]))); err == nil {
		t.Fatal("truncated frame: want error")
	}
}

func TestBodyCodecRoundtrip(t *testing.T) {
	var e wenc
	e.u8(7)
	e.u16(1000)
	e.u32(1 << 20)
	e.u64(1 << 40)
	e.i64(-12345)
	e.f64(3.25)
	e.bytes([]byte("abc"))
	e.str("hello")
	e.f64s([]float64{1.5, -2.5})
	e.ints([]int{3, -4})
	e.i32s([]int32{5, -6})
	e.strs([]string{"x", "yz"})

	d := wdec{buf: e.buf}
	if d.u8() != 7 || d.u16() != 1000 || d.u32() != 1<<20 || d.u64() != 1<<40 ||
		d.i64() != -12345 || d.f64() != 3.25 ||
		string(d.bytes()) != "abc" || d.str() != "hello" {
		t.Fatal("scalar roundtrip mismatch")
	}
	if f := d.f64s(); len(f) != 2 || f[0] != 1.5 || f[1] != -2.5 {
		t.Fatalf("f64s: %v", f)
	}
	if v := d.ints(); len(v) != 2 || v[0] != 3 || v[1] != -4 {
		t.Fatalf("ints: %v", v)
	}
	if v := d.i32s(); len(v) != 2 || v[0] != 5 || v[1] != -6 {
		t.Fatalf("i32s: %v", v)
	}
	if v := d.strs(); len(v) != 2 || v[0] != "x" || v[1] != "yz" {
		t.Fatalf("strs: %v", v)
	}
	if err := d.finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}

	// Trailing garbage is corruption, not silence.
	d2 := wdec{buf: append(append([]byte(nil), e.buf...), 0xFF)}
	d2.off = len(e.buf)
	if err := d2.finish(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: want ErrCorrupt, got %v", err)
	}

	// A truncated body turns every subsequent read into the sticky error.
	d3 := wdec{buf: []byte{1, 2}}
	d3.u32()
	if err := d3.finish(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short body: want ErrCorrupt, got %v", err)
	}
}

func TestJobSpecRoundtrip(t *testing.T) {
	g := graph.RMAT(6, 4, 0, 0, 0, 7)
	order := graph.NaturalOrder(g.N())
	pt := graph.BlockPartition(order, 3)
	js := &jobSpec{
		jobID: 42,
		rank:  2,
		p:     3,
		model: comm.DefaultCostModel(),
		alg:   3,
		seed:  -99,
		order: order,
		addrs: []string{"a:1", "b:2", "c:3"},
		shard: encodeShard(g, pt, 2),
	}
	got, err := decodeJobSpec(encodeJobSpec(js))
	if err != nil {
		t.Fatal(err)
	}
	if got.jobID != js.jobID || got.rank != js.rank || got.p != js.p ||
		got.model != js.model || got.alg != js.alg || got.seed != js.seed ||
		len(got.order) != len(js.order) || len(got.addrs) != 3 {
		t.Fatalf("spec mismatch: %+v", got)
	}
	shard, err := got.decodeShard()
	if err != nil {
		t.Fatal(err)
	}
	if shard.N() != g.N() {
		t.Fatalf("shard universe %d, want %d", shard.N(), g.N())
	}

	// Invalid seats are rejected at decode time.
	js.rank = 0
	if _, err := decodeJobSpec(encodeJobSpec(js)); err == nil {
		t.Fatal("rank 0 job spec should be rejected")
	}
}

func TestShardGraph(t *testing.T) {
	g := graph.RMAT(8, 8, 0, 0, 0, 11)
	order := graph.NaturalOrder(g.N())
	pt := graph.BlockPartition(order, 4)
	for rank := 0; rank < pt.P(); rank++ {
		shard := shardGraph(g, pt, rank)
		if shard.N() != g.N() {
			t.Fatalf("rank %d: shard universe %d, want %d", rank, shard.N(), g.N())
		}
		want := 0
		g.ForEachEdge(func(u, v int32) {
			if pt.Part[u] == int32(rank) || pt.Part[v] == int32(rank) {
				want++
				if !shard.HasEdge(u, v) {
					t.Fatalf("rank %d: shard missing block-incident edge (%d,%d)", rank, u, v)
				}
			}
		})
		if shard.M() != want {
			t.Fatalf("rank %d: shard has %d edges, want %d", rank, shard.M(), want)
		}
		// Block vertices see their full adjacency on the shard.
		for _, v := range pt.Parts[rank] {
			if shard.Degree(v) != g.Degree(v) {
				t.Fatalf("rank %d: vertex %d degree %d on shard, %d on full graph",
					rank, v, shard.Degree(v), g.Degree(v))
			}
		}
	}
}
