package transport

import (
	"fmt"

	"parsample/internal/comm"
	"parsample/internal/graph"
	"parsample/internal/sampling"
	"parsample/internal/snapshot"
)

// shardGraph extracts the rank's shard of g under partition pt: a same-N
// CSR holding every edge with at least one endpoint in the rank's block.
// Keeping the vertex universe intact means the shard answers exactly the
// queries a rank makes of the full graph — Degree/Neighbors of block
// vertices are complete (all their edges are incident to the block), the
// block's induced subgraph is intact, and ForEachEdge restricted to
// block-incident edges enumerates them in the same lexicographic order —
// so a kernel running on the shard computes bit-identically to the same
// rank running on the full graph.
func shardGraph(g *graph.Graph, pt *graph.Partition, rank int) *graph.Graph {
	b := graph.NewBuilder(g.N())
	rk := int32(rank)
	g.ForEachEdge(func(u, v int32) {
		if pt.Part[u] == rk || pt.Part[v] == rk {
			b.AddEdge(u, v)
		}
	})
	return b.Build()
}

// encodeShard snapshots the rank's shard for the setup frame.
func encodeShard(g *graph.Graph, pt *graph.Partition, rank int) []byte {
	return snapshot.EncodeGraph(shardGraph(g, pt, rank))
}

// jobSpec is the payload of an fSetup frame: everything one worker needs
// to run its rank of a sampling job — seat in the mesh, cost model, the
// kernel's parameters, and the rank's shard of the input graph.
type jobSpec struct {
	jobID uint64
	rank  int
	p     int
	model comm.CostModel
	alg   sampling.Algorithm
	seed  int64
	order []int32
	addrs []string // addrs[r] = listen address of rank r's process
	shard []byte   // snapshot.EncodeGraph of the rank's shard
}

func encodeJobSpec(js *jobSpec) []byte {
	var e wenc
	e.u64(js.jobID)
	e.u32(uint32(js.rank))
	e.u32(uint32(js.p))
	e.f64(js.model.SecondsPerOp)
	e.f64(js.model.LatencySeconds)
	e.f64(js.model.OverheadSeconds)
	e.f64(js.model.SecondsPerByte)
	e.f64(js.model.SerialSecPerOp)
	e.u32(uint32(js.alg))
	e.i64(js.seed)
	e.i32s(js.order)
	e.strs(js.addrs)
	e.bytes(js.shard)
	return e.buf
}

func decodeJobSpec(body []byte) (*jobSpec, error) {
	d := wdec{buf: body}
	js := &jobSpec{}
	js.jobID = d.u64()
	js.rank = int(d.u32())
	js.p = int(d.u32())
	js.model.SecondsPerOp = d.f64()
	js.model.LatencySeconds = d.f64()
	js.model.OverheadSeconds = d.f64()
	js.model.SecondsPerByte = d.f64()
	js.model.SerialSecPerOp = d.f64()
	js.alg = sampling.Algorithm(d.u32())
	js.seed = d.i64()
	js.order = d.i32s()
	js.addrs = d.strs()
	js.shard = d.bytes()
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("transport: bad job spec: %w", err)
	}
	if js.rank < 1 || js.rank >= js.p || js.p < 2 || len(js.addrs) != js.p {
		return nil, fmt.Errorf("transport: job spec rank %d of %d with %d addresses", js.rank, js.p, len(js.addrs))
	}
	return js, nil
}

// decodeShard reconstructs the shard graph from its snapshot bytes.
func (js *jobSpec) decodeShard() (*graph.Graph, error) {
	return snapshot.DecodeGraph(js.shard)
}
