package transport

import (
	"context"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"parsample/internal/comm"
	"parsample/internal/faultinject"
	"parsample/internal/graph"
	"parsample/internal/mpisim"
	"parsample/internal/sampling"
)

// TestMain asserts that the package leaks no goroutines: a transport bug
// that leaves a reader, writer, or rank blocked after a run fails the
// suite fast instead of hanging CI.
func TestMain(m *testing.M) {
	base := runtime.NumGoroutine()
	code := m.Run()
	faultinject.Reset()
	if code == 0 {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > base {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			fmt.Fprintf(os.Stderr, "transport: %d goroutines leaked (baseline %d):\n%s\n", n-base, base, buf)
			code = 1
		}
	}
	os.Exit(code)
}

// makeMesh forms a P-rank loopback mesh entirely in-process: one
// listener, registry and Comm per rank, exactly the topology real worker
// processes form — only the process boundary is missing.
func makeMesh(t *testing.T, p int, model comm.CostModel) []*Comm {
	t.Helper()
	const jobID = 1
	lns := make([]net.Listener, p)
	regs := make([]*meshRegistry, p)
	intakes := make([]*meshIntake, p)
	addrs := make([]string, p)
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		regs[i] = newMeshRegistry()
		intakes[i] = regs[i].register(jobID)
		addrs[i] = ln.Addr().String()
	}
	var acceptWG sync.WaitGroup
	for i := 0; i < p; i++ {
		acceptWG.Add(1)
		go func(i int) {
			defer acceptWG.Done()
			for {
				conn, err := lns[i].Accept()
				if err != nil {
					return
				}
				go func() {
					kind, jid, from, br, err := acceptHello(conn)
					if err != nil || kind != helloData {
						conn.Close()
						return
					}
					in := regs[i].lookup(jid)
					if in == nil || !in.deposit(from, conn, br) {
						conn.Close()
					}
				}()
			}
		}(i)
	}
	comms := make([]*Comm, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			comms[i], errs[i] = newComm(meshConfig{jobID: jobID, self: i, p: p, model: model, addrs: addrs}, intakes[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d mesh formation: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, c := range comms {
			c.markDone()
			c.Close()
		}
		for i, ln := range lns {
			ln.Close()
			regs[i].unregister(jobID)
		}
		acceptWG.Wait()
	})
	return comms
}

// runMesh drives fn on every rank of the mesh concurrently (each Comm
// hosts one rank) and returns the per-rank Run errors.
func runMesh(comms []*Comm, fn func(r comm.Rank)) []error {
	errs := make([]error, len(comms))
	var wg sync.WaitGroup
	for i, c := range comms {
		wg.Add(1)
		go func(i int, c *Comm) {
			defer wg.Done()
			errs[i] = c.Run(fn)
		}(i, c)
	}
	wg.Wait()
	return errs
}

// primitiveKernel exercises every Rank primitive and returns a trace of
// payloads, clocks and op counts — any divergence between the simulated
// and TCP backends shows up as a trace diff.
func primitiveKernel(r comm.Rank) []string {
	var tr []string
	id, p := r.ID(), r.P()
	rec := func(ev string, args ...any) {
		tr = append(tr, fmt.Sprintf("%s %v clock=%.17g ops=%d", ev, args, r.Clock(), r.Ops()))
	}
	r.Compute(int64(100 * (id + 1)))

	// Deadlock-safe ring exchange.
	next, prev := (id+1)%p, (id+p-1)%p
	m := r.Sendrecv(next, 10+id, float64(id)+0.5, 8+id, prev)
	rec("sendrecv", m.From, m.Tag, m.Payload, m.Bytes, m.Arrive)

	// Fan-in to rank 0 drained by AnyRecv's deterministic delivery rule.
	if id == 0 {
		remaining := make(map[int]int, p-1)
		var sources []int
		for s := 1; s < p; s++ {
			remaining[s] = 2
			sources = append(sources, s)
		}
		for len(sources) > 0 {
			msg := r.AnyRecv(sources)
			rec("anyrecv", msg.From, msg.Tag, msg.Payload, msg.Bytes, msg.Arrive)
			remaining[msg.From]--
			if remaining[msg.From] == 0 {
				for i, s := range sources {
					if s == msg.From {
						sources = append(sources[:i], sources[i+1:]...)
						break
					}
				}
			}
		}
	} else {
		r.Send(0, id, int64(id*7), id*16)
		r.Send(0, id, fmt.Sprintf("s%d", id), 3)
	}

	v := r.Allreduce(float64(id+1), comm.ReduceSum)
	rec("allreduce", v)
	b := r.Bcast(1%p, "root-says-hi", 12)
	rec("bcast", b)
	r.Barrier()
	rec("barrier")
	g := r.Gatherv(0, int64(id*id), 8)
	rec("gatherv", g)
	return tr
}

func TestPrimitivesMatchSimulator(t *testing.T) {
	const p = 4
	model := comm.DefaultCostModel()

	simTraces := make([][]string, p)
	sim := mpisim.NewCommModel(p, model)
	var mu sync.Mutex
	if err := sim.Run(func(r comm.Rank) {
		tr := primitiveKernel(r)
		mu.Lock()
		simTraces[r.ID()] = tr
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	comms := makeMesh(t, p, model)
	tcpTraces := make([][]string, p)
	for i, err := range runMesh(comms, func(r comm.Rank) {
		tr := primitiveKernel(r)
		mu.Lock()
		tcpTraces[r.ID()] = tr
		mu.Unlock()
	}) {
		if err != nil {
			t.Fatalf("rank %d run: %v", i, err)
		}
	}

	for id := 0; id < p; id++ {
		if len(simTraces[id]) != len(tcpTraces[id]) {
			t.Fatalf("rank %d: %d simulated events, %d transported", id, len(simTraces[id]), len(tcpTraces[id]))
		}
		for i := range simTraces[id] {
			if simTraces[id][i] != tcpTraces[id][i] {
				t.Errorf("rank %d event %d:\n  sim: %s\n  tcp: %s", id, i, simTraces[id][i], tcpTraces[id][i])
			}
		}
	}

	// The local traffic counters, summed over the distributed ranks, must
	// equal the simulator's global counters, and rank 0's gathered stats
	// must reproduce the simulator's per-rank vectors exactly.
	var msgs, bytes, collMsgs, collBytes int64
	for _, c := range comms {
		msgs += c.Messages()
		bytes += c.Bytes()
		collMsgs += c.CollMessages()
		collBytes += c.CollBytes()
	}
	if msgs != sim.Messages() || bytes != sim.Bytes() || collMsgs != sim.CollMessages() || collBytes != sim.CollBytes() {
		t.Fatalf("counters: tcp %d/%d/%d/%d, sim %d/%d/%d/%d",
			msgs, bytes, collMsgs, collBytes,
			sim.Messages(), sim.Bytes(), sim.CollMessages(), sim.CollBytes())
	}
	var simStats, tcpStats comm.RunStats
	sim.FillStats(&simStats)
	comms[0].FillStats(&tcpStats)
	if !tcpStats.Measured || simStats.Measured {
		t.Fatal("Measured flag: transport stats must be measured, simulated must not")
	}
	for i := 0; i < p; i++ {
		if simStats.RankOps[i] != tcpStats.RankOps[i] || simStats.RankSeconds[i] != tcpStats.RankSeconds[i] {
			t.Fatalf("rank %d stats: sim ops=%d clock=%g, tcp ops=%d clock=%g",
				i, simStats.RankOps[i], simStats.RankSeconds[i], tcpStats.RankOps[i], tcpStats.RankSeconds[i])
		}
	}
	if tcpStats.Messages != simStats.Messages || tcpStats.Bytes != simStats.Bytes ||
		tcpStats.CollMessages != simStats.CollMessages || tcpStats.CollBytes != simStats.CollBytes {
		t.Fatalf("gathered stats diverge: %+v vs %+v", tcpStats, simStats)
	}
}

// startCluster boots n in-process workers plus a coordinator connected to
// all of them, with cleanup joining every Serve loop (the leak check in
// TestMain sees any straggler).
func startCluster(t *testing.T, n int) (*Cluster, []*Worker) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{}, n)
	addrs := make([]string, 0, n)
	workers := make([]*Worker, 0, n)
	for i := 0; i < n; i++ {
		w, err := NewWorker("127.0.0.1:0")
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
		go func(w *Worker) {
			w.Serve(ctx)
			done <- struct{}{}
		}(w)
	}
	cl, err := Dial("127.0.0.1:0", addrs)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		cancel()
		for range workers {
			<-done
		}
	})
	return cl, workers
}

// sortedEdges canonicalizes an edge view for comparison.
func sortedEdges(v graph.EdgeView) []graph.Edge {
	out := make([]graph.Edge, 0, v.Len())
	v.ForEach(func(u, w int32) {
		out = append(out, graph.NormEdge(u, w))
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// assertResultsIdentical pins the full determinism contract between a
// simulated and a distributed run: byte-identical edge sets and identical
// modeled accounting (ops, clocks, traffic, restarts, duplicates).
func assertResultsIdentical(t *testing.T, label string, sim, dist *sampling.Result) {
	t.Helper()
	se, de := sortedEdges(sim.Edges), sortedEdges(dist.Edges)
	if len(se) != len(de) {
		t.Fatalf("%s: edge count %d simulated, %d distributed", label, len(se), len(de))
	}
	for i := range se {
		if se[i] != de[i] {
			t.Fatalf("%s: edge %d is (%d,%d) simulated, (%d,%d) distributed",
				label, i, se[i].U, se[i].V, de[i].U, de[i].V)
		}
	}
	ss, ds := &sim.Stats, &dist.Stats
	if ss.P != ds.P {
		t.Fatalf("%s: P %d vs %d", label, ss.P, ds.P)
	}
	for i := 0; i < ss.P; i++ {
		if ss.RankOps[i] != ds.RankOps[i] {
			t.Errorf("%s: rank %d ops %d vs %d", label, i, ss.RankOps[i], ds.RankOps[i])
		}
		if ss.RankSeconds[i] != ds.RankSeconds[i] {
			t.Errorf("%s: rank %d clock %.17g vs %.17g", label, i, ss.RankSeconds[i], ds.RankSeconds[i])
		}
	}
	if ss.Messages != ds.Messages || ss.Bytes != ds.Bytes {
		t.Errorf("%s: point-to-point traffic %d/%d vs %d/%d", label, ss.Messages, ss.Bytes, ds.Messages, ds.Bytes)
	}
	if ss.CollMessages != ds.CollMessages || ss.CollBytes != ds.CollBytes {
		t.Errorf("%s: collective traffic %d/%d vs %d/%d", label, ss.CollMessages, ss.CollBytes, ds.CollMessages, ds.CollBytes)
	}
	if ss.SerialOps != ds.SerialOps || ss.Restarts != ds.Restarts {
		t.Errorf("%s: serial/restarts %d/%d vs %d/%d", label, ss.SerialOps, ss.Restarts, ds.SerialOps, ds.Restarts)
	}
	if sim.DuplicateBorderEdges != dist.DuplicateBorderEdges || sim.BorderEdges != dist.BorderEdges {
		t.Errorf("%s: borders %d/%d vs %d/%d", label,
			sim.DuplicateBorderEdges, sim.BorderEdges, dist.DuplicateBorderEdges, dist.BorderEdges)
	}
	if ds.Measured != true || ds.WallSeconds <= 0 {
		t.Errorf("%s: distributed stats not measured (measured=%v wall=%g)", label, ds.Measured, ds.WallSeconds)
	}
	if ss.Measured {
		t.Errorf("%s: simulated stats claim to be measured", label)
	}
}

// TestDistributedMatchesSimulated is the differential test at the heart
// of the tier: all four parallel samplers, at P ∈ {2, 4, 8}, executed
// once on the simulator and once across real worker processes over
// loopback TCP, must produce byte-identical edge sets and identical
// modeled accounting.
func TestDistributedMatchesSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed differential matrix is not a -short test")
	}
	g := graph.RMAT(10, 8, 0, 0, 0, 1102)
	cl, _ := startCluster(t, 7)
	ctx := context.Background()
	algs := []sampling.Algorithm{
		sampling.ChordalComm, sampling.ChordalNoComm,
		sampling.RandomWalkPar, sampling.ForestFirePar,
	}
	for _, alg := range algs {
		for _, p := range []int{2, 4, 8} {
			label := fmt.Sprintf("%s/P=%d", alg, p)
			sim, err := sampling.Run(alg, g, sampling.Options{P: p, Seed: 20120521})
			if err != nil {
				t.Fatalf("%s simulated: %v", label, err)
			}
			dist, err := cl.Run(ctx, Job{Alg: alg, Graph: g, P: p, Seed: 20120521})
			if err != nil {
				t.Fatalf("%s distributed: %v", label, err)
			}
			assertResultsIdentical(t, label, sim, dist)
		}
	}
}

// TestWorkerFailureMidGatherv is the fault drill: the transport.send
// failpoint kills rank 2's Gatherv deposit (chordal-nocomm's only send),
// the coordinator must return a structured error well within the drain
// deadline, and the surviving workers must be reusable for a clean,
// still-deterministic follow-up job.
func TestWorkerFailureMidGatherv(t *testing.T) {
	g := graph.RMAT(9, 8, 0, 0, 0, 7)
	cl, workers := startCluster(t, 3)
	ctx := context.Background()
	job := Job{Alg: sampling.ChordalNoComm, Graph: g, P: 4, Seed: 99}

	faultinject.Enable("transport.send.rank2", faultinject.Spec{Mode: faultinject.ModeError})
	defer faultinject.Disable("transport.send.rank2")
	start := time.Now()
	_, err := cl.Run(ctx, job)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("killed worker: want an error")
	}
	if elapsed > drainTimeout {
		t.Fatalf("failure took %v, want well under the %v drain deadline", elapsed, drainTimeout)
	}
	if !strings.Contains(err.Error(), "rank 2") && !strings.Contains(err.Error(), "injected") {
		t.Fatalf("error does not identify the failure: %v", err)
	}
	if faultinject.Fired("transport.send.rank2") == 0 {
		t.Fatal("failpoint never fired")
	}

	// The workers survive the drill: the same job runs clean afterwards
	// and still matches the simulator.
	faultinject.Disable("transport.send.rank2")
	sim, err := sampling.Run(job.Alg, g, sampling.Options{P: job.P, Seed: job.Seed})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := cl.Run(ctx, job)
	if err != nil {
		t.Fatalf("post-drill job: %v", err)
	}
	assertResultsIdentical(t, "post-drill", sim, dist)

	stats := workers[1].Stats() // rank 2's host worker saw one failed and one clean job
	if stats.JobsFailed < 1 || stats.JobsCompleted < 1 || stats.ActiveJobs != 0 {
		t.Fatalf("worker counters after drill: %+v", stats)
	}
}

// TestAbortOnCancel pins the ctx-driven abort path: ranks blocked in a
// receive unwind with a structured cancellation error instead of wedging.
func TestAbortOnCancel(t *testing.T) {
	comms := makeMesh(t, 2, comm.DefaultCostModel())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, c := range comms {
		wg.Add(1)
		go func(i int, c *Comm) {
			defer wg.Done()
			defer c.AbortOnCancel(ctx)()
			errs[i] = c.Run(func(r comm.Rank) {
				r.Recv(1 - r.ID()) // nobody ever sends: only the abort can free this
			})
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "cancel") {
			t.Fatalf("rank %d: want a cancellation error, got %v", i, err)
		}
	}
}

// TestP1RunsLocally: a single-rank job never touches the network.
func TestP1RunsLocally(t *testing.T) {
	g := graph.RMAT(8, 8, 0, 0, 0, 3)
	cl, _ := startCluster(t, 1)
	res, err := cl.Run(context.Background(), Job{Alg: sampling.ChordalNoComm, Graph: g, P: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := sampling.Run(sampling.ChordalNoComm, g, sampling.Options{P: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	se, de := sortedEdges(sim.Edges), sortedEdges(res.Edges)
	if len(se) != len(de) {
		t.Fatalf("edge count %d vs %d", len(se), len(de))
	}
}
