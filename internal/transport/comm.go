package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"parsample/internal/comm"
	"parsample/internal/faultinject"
)

// errAborted is the structured error a run returns when it was unwound by
// a local abort (cancelled context, Rank.Abort) rather than a transport
// failure.
var errAborted = errors.New("transport: run aborted")

// Default timeouts. Handshakes and teardown waits are bounded so a dead
// peer fails the run instead of wedging it; in-run receives are unbounded
// like mpisim's (cancellation arrives via ctx-driven abort or a peer
// failure, either of which wakes every blocked primitive).
const (
	dialTimeout  = 10 * time.Second
	helloTimeout = 10 * time.Second
	writeTimeout = 30 * time.Second
	drainTimeout = 30 * time.Second
)

// collective op codes carried in fColl frames; a mismatch between the
// ranks of one generation is a protocol error, not a hang.
const (
	opBarrier byte = iota
	opBcast
	opGatherv
	opAllreduce
)

// meshConfig describes one rank's seat in a job's mesh.
type meshConfig struct {
	jobID uint64
	self  int
	p     int
	model comm.CostModel
	addrs []string // addrs[r] = listen address of rank r's process
}

// Comm is the TCP communicator for one job: it hosts exactly one local
// rank (self) and reaches the other P-1 over per-peer connections. It
// implements comm.Comm; sampling kernels run on it unchanged.
type Comm struct {
	cfg  meshConfig
	rank *Rank

	peers []*peer // peers[r], nil at self
	wg    sync.WaitGroup

	mu   sync.Mutex
	cond *sync.Cond
	// Receive-side state, all guarded by mu.
	q           [][]comm.Message // pending point-to-point messages, by source
	seqIn       []int64          // next expected fData sequence, by source
	collDeposit []*collDeposit   // rank 0: one pending deposit slot per source
	collResp    *collSnapshot    // non-zero ranks: rank 0's snapshot for the open generation
	collRespGen uint64
	statsIn     []*remoteStats // rank 0: end-of-run accounting per source
	statsAcked  bool           // non-zero ranks: rank 0 confirmed our stats
	statsSent   bool           // non-zero ranks: our kernel is done and the counters shipped
	aborted     bool
	done        bool  // run complete; subsequent teardown EOFs are benign
	failErr     error // first transport failure or abort cause

	msgs, bytes, collMsgs, collBytes atomic.Int64
	wall                             float64
}

var _ comm.Comm = (*Comm)(nil)

// collDeposit is one rank's contribution to the collective generation
// rank 0 is assembling.
type collDeposit struct {
	gen   uint64
	op    byte
	root  int
	clock float64
	size  int
	val   any
}

// collSnapshot is the assembled generation every rank advances its clock
// from: the deposit clock and size vectors, plus the payload values the
// receiving rank needs for its op (root's value for Bcast, all values for
// Gatherv-at-root and Allreduce).
type collSnapshot struct {
	clocks []float64
	sizes  []int
	vals   []any
}

// remoteStats is one remote rank's end-of-run accounting.
type remoteStats struct {
	ops                              int64
	clock, wall                      float64
	msgs, bytes, collMsgs, collBytes int64
}

// newComm forms the mesh for one rank: it dials every lower rank and
// waits for every higher rank to dial in through the intake the acceptor
// routes data connections to. On any failure the partially-formed mesh is
// torn down and an error returned.
func newComm(cfg meshConfig, intake *meshIntake) (*Comm, error) {
	c := &Comm{
		cfg:   cfg,
		peers: make([]*peer, cfg.p),
		q:     make([][]comm.Message, cfg.p),
		seqIn: make([]int64, cfg.p),
	}
	c.cond = sync.NewCond(&c.mu)
	c.rank = &Rank{c: c, id: cfg.self, seqOut: make([]int64, cfg.p)}
	if cfg.self == 0 {
		c.collDeposit = make([]*collDeposit, cfg.p)
		c.statsIn = make([]*remoteStats, cfg.p)
	}

	fail := func(err error) (*Comm, error) {
		c.markDone()
		c.Close()
		return nil, err
	}
	for r := 0; r < cfg.self; r++ {
		conn, br, err := dialPeer(cfg.addrs[r], cfg.jobID, cfg.self)
		if err != nil {
			return fail(fmt.Errorf("transport: rank %d dialing rank %d: %w", cfg.self, r, err))
		}
		c.peers[r] = newPeer(r, conn, br)
	}
	for r := cfg.self + 1; r < cfg.p; r++ {
		conn, br, err := intake.take(r, time.Now().Add(dialTimeout))
		if err != nil {
			return fail(fmt.Errorf("transport: rank %d waiting for rank %d to connect: %w", cfg.self, r, err))
		}
		c.peers[r] = newPeer(r, conn, br)
	}
	for _, p := range c.peers {
		if p == nil {
			continue
		}
		c.wg.Add(2)
		go func(p *peer) { defer c.wg.Done(); p.writeLoop() }(p)
		go func(p *peer) { defer c.wg.Done(); c.readLoop(p) }(p)
	}
	return c, nil
}

// dialPeer opens a data connection to a lower rank's listener and runs
// the hello/ack version negotiation.
func dialPeer(addr string, jobID uint64, fromRank int) (net.Conn, *bufio.Reader, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
		tc.SetKeepAlive(true)
	}
	conn.SetDeadline(time.Now().Add(helloTimeout))
	bw := bufio.NewWriter(conn)
	var e wenc
	e.u16(protoVersion)
	e.u8(helloData)
	e.u64(jobID)
	e.u32(uint32(fromRank))
	if err := writeFrame(bw, fHello, e.buf); err != nil {
		conn.Close()
		return nil, nil, err
	}
	br := bufio.NewReader(conn)
	typ, body, err := readFrame(br)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	if typ != fHelloAck {
		conn.Close()
		return nil, nil, fmt.Errorf("transport: expected hello ack, got frame type %d", typ)
	}
	d := wdec{buf: body}
	ver := d.u16()
	if err := d.finish(); err != nil {
		conn.Close()
		return nil, nil, err
	}
	if ver != protoVersion {
		conn.Close()
		return nil, nil, fmt.Errorf("transport: peer speaks protocol %d, want %d", ver, protoVersion)
	}
	conn.SetDeadline(time.Time{})
	return conn, br, nil
}

// P returns the number of ranks in the job.
func (c *Comm) P() int { return c.cfg.p }

// Messages returns the point-to-point messages sent by the local rank.
func (c *Comm) Messages() int64 { return c.msgs.Load() }

// Bytes returns the point-to-point payload bytes sent by the local rank.
func (c *Comm) Bytes() int64 { return c.bytes.Load() }

// CollMessages returns the modeled collective messages booked locally.
func (c *Comm) CollMessages() int64 { return c.collMsgs.Load() }

// CollBytes returns the modeled collective bytes booked locally.
func (c *Comm) CollBytes() int64 { return c.collBytes.Load() }

// Run executes fn on the local rank. It returns once fn has finished or
// unwound and — on a clean run — the end-of-run stats exchange completed,
// so rank 0's FillStats sees every remote rank's accounting. The error is
// the first transport failure or abort cause; a clean run returns nil.
func (c *Comm) Run(fn func(r comm.Rank)) error {
	start := time.Now()
	func() {
		defer func() {
			if e := recover(); e != nil {
				if _, ok := e.(comm.AbortSignal); ok {
					c.fail(errAborted)
					return
				}
				panic(e)
			}
		}()
		fn(c.rank)
	}()
	c.rank.wall = time.Since(start).Seconds()
	if c.runErr() == nil {
		if err := c.statsPhase(); err != nil {
			c.fail(err)
		}
	}
	c.mu.Lock()
	c.wall = time.Since(start).Seconds()
	err := c.failErr
	if err == nil {
		c.done = true // teardown EOFs from here on are benign
	}
	c.mu.Unlock()
	return err
}

// statsPhase runs the end-of-run accounting exchange: every non-zero rank
// ships its counters to rank 0 and waits for the ack; rank 0 waits for
// all counters and acks each sender. The ack doubles as the teardown
// barrier — once it is through, both ends know no more frames are coming.
func (c *Comm) statsPhase() error {
	if c.cfg.p == 1 {
		return nil
	}
	deadline := time.Now().Add(drainTimeout)
	if c.cfg.self != 0 {
		var e wenc
		e.u32(uint32(c.cfg.self))
		e.i64(c.rank.ops)
		e.f64(c.rank.clock)
		e.f64(c.rank.wall)
		e.i64(c.msgs.Load())
		e.i64(c.bytes.Load())
		e.i64(c.collMsgs.Load())
		e.i64(c.collBytes.Load())
		// Flag the teardown before the stats frame can reach rank 0: once
		// it does, any peer may receive its ack and hang up, and that EOF
		// must already read as benign here.
		c.mu.Lock()
		c.statsSent = true
		c.mu.Unlock()
		if err := c.post(0, fStats, e.buf); err != nil {
			return err
		}
		return c.wait(func() bool { return c.statsAcked }, deadline, "stats ack from rank 0")
	}
	err := c.wait(func() bool {
		for r := 1; r < c.cfg.p; r++ {
			if c.statsIn[r] == nil {
				return false
			}
		}
		return true
	}, deadline, "end-of-run stats from all ranks")
	if err != nil {
		return err
	}
	// The run is complete from this rank's point of view: mark done BEFORE
	// posting the acks, so a peer that receives its ack and closes cannot
	// race an EOF into the reader and retroactively fail a clean run.
	c.markDone()
	for r := 1; r < c.cfg.p; r++ {
		if err := c.post(r, fStatsAck, nil); err != nil {
			return err
		}
	}
	return nil
}

// wait blocks under mu until pred holds, the run aborts, or the deadline
// passes.
func (c *Comm) wait(pred func() bool, deadline time.Time, what string) error {
	timer := time.AfterFunc(time.Until(deadline), func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for !pred() {
		if c.aborted {
			err := c.failErr
			if err == nil {
				err = errAborted
			}
			return err
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("transport: rank %d timed out waiting for %s", c.cfg.self, what)
		}
		c.cond.Wait()
	}
	return nil
}

// Aborted reports whether the run has been aborted.
func (c *Comm) Aborted() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aborted
}

// Abort marks the run as aborted and wakes the local rank out of any
// blocking primitive; the abort fans out to peers as best-effort fAbort
// frames. Safe to call from any goroutine, more than once.
func (c *Comm) Abort() { c.fail(errAborted) }

// AbortOnCancel aborts the communicator when ctx is cancelled; the
// returned stop function releases the watcher.
func (c *Comm) AbortOnCancel(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	stopped := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.fail(fmt.Errorf("transport: run cancelled: %w", context.Cause(ctx)))
		case <-stopped:
		}
	}()
	return func() { close(stopped) }
}

// fail records the first failure, aborts the run, fans the abort out to
// peers, and unblocks everything. After a completed run it is a no-op, so
// teardown connection EOFs cannot retroactively fail a clean result.
func (c *Comm) fail(err error) {
	c.mu.Lock()
	if c.done || c.aborted {
		c.mu.Unlock()
		return
	}
	c.aborted = true
	c.failErr = err
	c.cond.Broadcast()
	c.mu.Unlock()
	var e wenc
	e.str(err.Error())
	for _, p := range c.peers {
		if p != nil {
			p.enqueue(fAbort, e.buf) // best effort; the writer drains then closes
		}
	}
	for _, p := range c.peers {
		if p != nil {
			p.close()
		}
	}
}

// runErr returns the recorded failure, if any.
func (c *Comm) runErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failErr
}

// markDone suppresses failure recording (used by teardown paths that close
// connections on purpose).
func (c *Comm) markDone() {
	c.mu.Lock()
	c.done = true
	c.mu.Unlock()
}

// Close tears the mesh down and joins the per-peer goroutines. It must be
// called after Run (the Cluster and Worker job paths defer it); calling it
// without markDone/Run aborts an in-flight run first.
func (c *Comm) Close() {
	for _, p := range c.peers {
		if p != nil {
			p.close()
		}
	}
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
}

// FillStats copies the run's accounting into s. On rank 0 after a clean
// Run the per-rank vectors and counter totals cover the whole job (the
// stats exchange gathered every remote rank's accounting); on other ranks
// only the local rank's column is meaningful.
func (c *Comm) FillStats(s *comm.RunStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.cfg.p
	s.P = p
	s.RankOps = make([]int64, p)
	s.RankSeconds = make([]float64, p)
	s.RankWallSeconds = make([]float64, p)
	s.RankOps[c.cfg.self] = c.rank.ops
	s.RankSeconds[c.cfg.self] = c.rank.clock
	s.RankWallSeconds[c.cfg.self] = c.rank.wall
	s.Messages = c.msgs.Load()
	s.Bytes = c.bytes.Load()
	s.CollMessages = c.collMsgs.Load()
	s.CollBytes = c.collBytes.Load()
	if c.cfg.self == 0 {
		for r := 1; r < p; r++ {
			st := c.statsIn[r]
			if st == nil {
				continue
			}
			s.RankOps[r] = st.ops
			s.RankSeconds[r] = st.clock
			s.RankWallSeconds[r] = st.wall
			s.Messages += st.msgs
			s.Bytes += st.bytes
			s.CollMessages += st.collMsgs
			s.CollBytes += st.collBytes
		}
	}
	s.WallSeconds = c.wall
	s.Measured = true
}

// post encodes and enqueues one frame to rank `to`, evaluating the
// transport.send failpoints on the way (the fault drill's "kill a worker
// mid-send" hook covers every data-bearing frame: point-to-point,
// collective, and stats).
func (c *Comm) post(to int, typ byte, body []byte) error {
	if err := faultinject.Eval("transport.send"); err != nil {
		return fmt.Errorf("transport: rank %d send to %d: %w", c.cfg.self, to, err)
	}
	if err := faultinject.Eval(fmt.Sprintf("transport.send.rank%d", c.cfg.self)); err != nil {
		return fmt.Errorf("transport: rank %d send to %d: %w", c.cfg.self, to, err)
	}
	p := c.peers[to]
	if p == nil {
		return fmt.Errorf("transport: rank %d has no connection to rank %d", c.cfg.self, to)
	}
	if !p.enqueue(typ, body) {
		return fmt.Errorf("transport: rank %d connection to rank %d is closed", c.cfg.self, to)
	}
	return nil
}

// readLoop drains one peer connection, dispatching frames into the
// receive-side state. Any read or protocol error fails the run; after a
// completed run (done set) the teardown EOF is benign, as is a non-zero
// peer hanging up once this rank has shipped its stats — that peer got
// its ack and closed first, and only rank 0's channel still matters while
// we wait for ours.
func (c *Comm) readLoop(p *peer) {
	for {
		typ, body, err := readFrame(p.br)
		if err != nil {
			if p.rank != 0 && c.inTeardown() {
				return
			}
			c.fail(fmt.Errorf("transport: rank %d lost rank %d: %w", c.cfg.self, p.rank, err))
			return
		}
		if err := c.dispatch(p, typ, body); err != nil {
			c.fail(err)
			return
		}
	}
}

// inTeardown reports whether this rank has finished its kernel and is only
// waiting on rank 0's stats ack (or is fully done) — the window in which a
// faster peer's hangup is expected, not a failure.
func (c *Comm) inTeardown() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statsSent || c.done
}

func (c *Comm) dispatch(p *peer, typ byte, body []byte) error {
	d := wdec{buf: body}
	switch typ {
	case fData:
		from := int(d.u32())
		seq := d.i64()
		tag := int(d.u32())
		arrive := d.f64()
		size := int(d.u32())
		kind := d.u16()
		payload := d.bytes()
		if err := d.finish(); err != nil {
			return fmt.Errorf("transport: bad data frame from rank %d: %w", p.rank, err)
		}
		if from != p.rank {
			return fmt.Errorf("transport: rank %d sent a data frame claiming rank %d", p.rank, from)
		}
		val, err := comm.DecodePayload(kind, payload)
		if err != nil {
			return fmt.Errorf("transport: payload from rank %d: %w", from, err)
		}
		c.mu.Lock()
		if want := c.seqIn[from]; seq != want {
			c.mu.Unlock()
			return fmt.Errorf("transport: rank %d message sequence %d, want %d", from, seq, want)
		}
		c.seqIn[from]++
		c.q[from] = append(c.q[from], comm.Message{From: from, Tag: tag, Payload: val, Bytes: size, Arrive: arrive})
		c.cond.Broadcast()
		c.mu.Unlock()
		return nil

	case fColl:
		gen := d.u64()
		op := d.u8()
		root := int(d.u32())
		from := int(d.u32())
		clock := d.f64()
		size := int(d.u32())
		kind := d.u16()
		payload := d.bytes()
		if err := d.finish(); err != nil {
			return fmt.Errorf("transport: bad collective frame from rank %d: %w", p.rank, err)
		}
		if c.cfg.self != 0 || from != p.rank {
			return fmt.Errorf("transport: unexpected collective deposit from rank %d at rank %d", from, c.cfg.self)
		}
		val, err := comm.DecodePayload(kind, payload)
		if err != nil {
			return fmt.Errorf("transport: collective payload from rank %d: %w", from, err)
		}
		c.mu.Lock()
		if c.collDeposit[from] != nil {
			c.mu.Unlock()
			return fmt.Errorf("transport: rank %d deposited generation %d before %d was consumed", from, gen, c.collDeposit[from].gen)
		}
		c.collDeposit[from] = &collDeposit{gen: gen, op: op, root: root, clock: clock, size: size, val: val}
		c.cond.Broadcast()
		c.mu.Unlock()
		return nil

	case fCollResp:
		gen := d.u64()
		clocks := d.f64s()
		sizes := d.ints()
		nv := int(d.u32())
		vals := make([]any, c.cfg.p)
		for i := 0; i < nv; i++ {
			rk := int(d.u32())
			kind := d.u16()
			payload := d.bytes()
			if d.err != nil || rk < 0 || rk >= c.cfg.p {
				return fmt.Errorf("transport: bad collective response from rank 0: %w", ErrCorrupt)
			}
			val, err := comm.DecodePayload(kind, payload)
			if err != nil {
				return fmt.Errorf("transport: collective response payload: %w", err)
			}
			vals[rk] = val
		}
		if err := d.finish(); err != nil {
			return fmt.Errorf("transport: bad collective response: %w", err)
		}
		if p.rank != 0 || c.cfg.self == 0 {
			return fmt.Errorf("transport: unexpected collective response from rank %d", p.rank)
		}
		c.mu.Lock()
		c.collResp = &collSnapshot{clocks: clocks, sizes: sizes, vals: vals}
		c.collRespGen = gen
		c.cond.Broadcast()
		c.mu.Unlock()
		return nil

	case fStats:
		from := int(d.u32())
		st := &remoteStats{
			ops:   d.i64(),
			clock: d.f64(),
			wall:  d.f64(),
		}
		st.msgs = d.i64()
		st.bytes = d.i64()
		st.collMsgs = d.i64()
		st.collBytes = d.i64()
		if err := d.finish(); err != nil {
			return fmt.Errorf("transport: bad stats frame from rank %d: %w", p.rank, err)
		}
		if c.cfg.self != 0 || from != p.rank {
			return fmt.Errorf("transport: unexpected stats from rank %d at rank %d", from, c.cfg.self)
		}
		c.mu.Lock()
		c.statsIn[from] = st
		c.cond.Broadcast()
		c.mu.Unlock()
		return nil

	case fStatsAck:
		if err := d.finish(); err != nil || p.rank != 0 {
			return fmt.Errorf("transport: unexpected stats ack from rank %d", p.rank)
		}
		c.mu.Lock()
		c.statsAcked = true
		// The ack is the last frame of the run; setting done here — in the
		// reader, before the next readFrame — means the teardown EOF that
		// follows on this stream can never race in as a failure.
		c.done = true
		c.cond.Broadcast()
		c.mu.Unlock()
		return nil

	case fAbort:
		reason := d.str()
		return fmt.Errorf("transport: rank %d aborted the run: %s", p.rank, reason)

	default:
		return fmt.Errorf("transport: unexpected frame type %d from rank %d", typ, p.rank)
	}
}

// ----------------------------------------------------------------- peers

// peer is one rank-to-rank connection: an unbounded outbound frame queue
// drained by a writer goroutine (mirroring mpisim's nonblocking sends)
// plus the buffered reader its readLoop consumes.
type peer struct {
	rank int
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []outFrame
	closed bool
}

type outFrame struct {
	typ  byte
	body []byte
}

func newPeer(rank int, conn net.Conn, br *bufio.Reader) *peer {
	p := &peer{rank: rank, conn: conn, br: br, bw: bufio.NewWriter(conn)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// enqueue posts a frame for the writer goroutine; it never blocks.
// Returns false when the connection is already closed.
func (p *peer) enqueue(typ byte, body []byte) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.queue = append(p.queue, outFrame{typ: typ, body: body})
	p.cond.Signal()
	return true
}

// writeLoop drains the queue. Each frame write carries a deadline, so a
// stalled peer cannot wedge the writer forever; write failures are left
// for the read side to surface (the reader sees the broken connection).
func (p *peer) writeLoop() {
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			p.conn.Close()
			return
		}
		f := p.queue[0]
		p.queue[0] = outFrame{}
		p.queue = p.queue[1:]
		if len(p.queue) == 0 {
			p.queue = nil
		}
		closed := p.closed
		p.mu.Unlock()
		p.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		if err := writeFrame(p.bw, f.typ, f.body); err != nil {
			p.conn.Close() // the reader will observe and report the failure
			p.drain()
			return
		}
		if closed && p.queueEmpty() {
			p.conn.Close()
			return
		}
	}
}

func (p *peer) queueEmpty() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue) == 0
}

// drain discards the remaining queue and marks the peer closed.
func (p *peer) drain() {
	p.mu.Lock()
	p.closed = true
	p.queue = nil
	p.cond.Broadcast()
	p.mu.Unlock()
}

// close marks the peer closed; the writer flushes what is queued, then
// closes the connection (unblocking the reader).
func (p *peer) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	empty := len(p.queue) == 0
	p.mu.Unlock()
	if empty {
		p.conn.Close() // writer may be mid-wait; closing here unblocks the reader immediately
	}
}
