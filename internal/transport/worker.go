package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"parsample/internal/sampling"
)

// Worker hosts the non-zero ranks of distributed sampling jobs: one
// Worker process is one seat in the cluster. It listens on a single TCP
// address for both control connections (a coordinator shipping job
// setups) and data connections (peer ranks forming a job's mesh), runs
// each job's rank through the same sampling kernels the simulator drives,
// and reports the outcome back over the control connection.
type Worker struct {
	ln       net.Listener
	registry *meshRegistry

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	stats workerCounters
}

// workerCounters are the /statsz-style counters a worker exports.
type workerCounters struct {
	jobsStarted   atomic.Int64
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	activeJobs    atomic.Int64
	messages      atomic.Int64
	bytes         atomic.Int64
	collMessages  atomic.Int64
	collBytes     atomic.Int64
}

// WorkerStats is a point-in-time snapshot of a worker's counters,
// JSON-shaped for a /statsz endpoint.
type WorkerStats struct {
	JobsStarted   int64 `json:"jobs_started"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	ActiveJobs    int64 `json:"active_jobs"`
	Messages      int64 `json:"messages"`
	Bytes         int64 `json:"bytes"`
	CollMessages  int64 `json:"coll_messages"`
	CollBytes     int64 `json:"coll_bytes"`
}

// NewWorker starts listening on addr (e.g. "127.0.0.1:0"); Serve must be
// called to accept work.
func NewWorker(addr string) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: worker listen: %w", err)
	}
	return &Worker{
		ln:       ln,
		registry: newMeshRegistry(),
		conns:    make(map[net.Conn]struct{}),
	}, nil
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Stats returns a snapshot of the worker's counters.
func (w *Worker) Stats() WorkerStats {
	return WorkerStats{
		JobsStarted:   w.stats.jobsStarted.Load(),
		JobsCompleted: w.stats.jobsCompleted.Load(),
		JobsFailed:    w.stats.jobsFailed.Load(),
		ActiveJobs:    w.stats.activeJobs.Load(),
		Messages:      w.stats.messages.Load(),
		Bytes:         w.stats.bytes.Load(),
		CollMessages:  w.stats.collMessages.Load(),
		CollBytes:     w.stats.collBytes.Load(),
	}
}

// Serve accepts connections until ctx is cancelled or Close is called,
// then drains: in-flight jobs are aborted through ctx (their coordinators
// get a structured failure, not a hang), every tracked connection is
// closed, and all handler goroutines are joined before Serve returns.
func (w *Worker) Serve(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() { w.ln.Close() })
	defer stop()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			w.drain()
			if ctx.Err() != nil || w.isClosed() {
				return nil // clean shutdown
			}
			return fmt.Errorf("transport: worker accept: %w", err)
		}
		if !w.track(conn) {
			conn.Close()
			continue
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.handleConn(ctx, conn)
		}()
	}
}

// Close stops the worker: the listener closes, Serve drains and returns.
func (w *Worker) Close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.ln.Close()
}

func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

func (w *Worker) track(conn net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.conns[conn] = struct{}{}
	return true
}

// forget removes a connection from the tracked set without closing it —
// used when ownership moves to a job's mesh (whose comm closes it, with
// shutdown reaching it through ctx-driven abort instead of drain).
func (w *Worker) forget(conn net.Conn) {
	w.mu.Lock()
	delete(w.conns, conn)
	w.mu.Unlock()
}

// untrack removes and closes a connection.
func (w *Worker) untrack(conn net.Conn) {
	w.forget(conn)
	conn.Close()
}

// drain closes every tracked connection (waking blocked handlers) and
// joins the handler goroutines.
func (w *Worker) drain() {
	w.mu.Lock()
	w.closed = true
	for conn := range w.conns {
		conn.Close()
	}
	w.mu.Unlock()
	w.wg.Wait()
}

// handleConn dispatches one accepted connection by its hello kind: data
// connections are deposited into the owning job's mesh intake (the job's
// comm takes over the connection), control connections enter the
// setup/run/done loop.
func (w *Worker) handleConn(ctx context.Context, conn net.Conn) {
	kind, jobID, fromRank, br, err := acceptHello(conn)
	if err != nil {
		w.untrack(conn)
		return
	}
	switch kind {
	case helloData:
		in := w.registry.lookup(jobID)
		w.forget(conn) // ownership moves to the intake / the job's comm
		if in == nil || !in.deposit(fromRank, conn, br) {
			conn.Close() // unknown or finished job
		}
	case helloControl:
		defer w.untrack(conn)
		w.controlLoop(ctx, conn, br)
	default:
		w.untrack(conn)
	}
}

// controlLoop serves one coordinator: each fSetup runs one job rank to
// completion (jobs on one control connection are sequential, matching
// the coordinator's synchronous Run calls) and answers with fDone.
func (w *Worker) controlLoop(ctx context.Context, conn net.Conn, br *bufio.Reader) {
	bw := bufio.NewWriter(conn)
	writeControl := func(typ byte, body []byte) error {
		conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		defer conn.SetWriteDeadline(time.Time{})
		return writeFrame(bw, typ, body)
	}
	for {
		typ, body, err := readFrame(br)
		if err != nil {
			return // coordinator went away (or shutdown closed the conn)
		}
		if typ != fSetup {
			return
		}
		js, err := decodeJobSpec(body)
		if err != nil {
			return
		}
		in := w.registry.register(js.jobID)
		if err := writeControl(fSetupAck, nil); err != nil {
			w.registry.unregister(js.jobID)
			return
		}
		runErr := w.runJob(ctx, js, in)
		w.registry.unregister(js.jobID)
		var e wenc
		e.u64(js.jobID)
		if runErr != nil {
			e.u8(0)
			e.str(runErr.Error())
		} else {
			e.u8(1)
			e.str("")
		}
		if err := writeControl(fDone, e.buf); err != nil {
			return
		}
	}
}

// runJob executes one rank of one sampling job: decode the shard, form
// the mesh, run the kernel on the local rank (the gathered result lands
// on rank 0 — the coordinator — so the worker's own Result is discarded),
// and fold the communicator's traffic into the worker counters.
func (w *Worker) runJob(ctx context.Context, js *jobSpec, in *meshIntake) (err error) {
	w.stats.jobsStarted.Add(1)
	w.stats.activeJobs.Add(1)
	defer func() {
		w.stats.activeJobs.Add(-1)
		if err != nil {
			w.stats.jobsFailed.Add(1)
		} else {
			w.stats.jobsCompleted.Add(1)
		}
	}()
	defer func() {
		if e := recover(); e != nil {
			err = fmt.Errorf("transport: job %d rank %d panicked: %v", js.jobID, js.rank, e)
		}
	}()
	shard, err := js.decodeShard()
	if err != nil {
		return err
	}
	c, err := newComm(meshConfig{
		jobID: js.jobID,
		self:  js.rank,
		p:     js.p,
		model: js.model,
		addrs: js.addrs,
	}, in)
	if err != nil {
		return err
	}
	defer func() {
		w.stats.messages.Add(c.Messages())
		w.stats.bytes.Add(c.Bytes())
		w.stats.collMessages.Add(c.CollMessages())
		w.stats.collBytes.Add(c.CollBytes())
		c.Close()
	}()
	model := js.model
	_, err = sampling.RunContext(ctx, js.alg, shard, sampling.Options{
		Order: js.order,
		P:     js.p,
		Seed:  js.seed,
		Model: &model,
		Comm:  c,
	})
	if err != nil && errors.Is(err, errAborted) && ctx.Err() != nil {
		err = fmt.Errorf("transport: worker shutting down: %w", ctx.Err())
	}
	return err
}
