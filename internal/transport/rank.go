package transport

import (
	"fmt"

	"parsample/internal/comm"
)

// Rank is the local processor's handle inside Comm.Run. All methods must
// be called from the goroutine Run passed the handle to (SPMD
// discipline); the remote P-1 ranks live in other processes.
//
// The virtual clock advances through the same comm.CostModel helpers the
// simulator uses — wall time influences nothing but the measured wall
// fields in RunStats.
type Rank struct {
	c      *Comm
	id     int
	ops    int64
	clock  float64
	wall   float64
	seqOut []int64 // next fData sequence number, by destination
	gen    uint64  // collective generation counter (lockstep across ranks)
}

var _ comm.Rank = (*Rank)(nil)

// ID returns this rank's index in [0, P).
func (r *Rank) ID() int { return r.id }

// P returns the communicator size.
func (r *Rank) P() int { return r.c.cfg.p }

// Ops returns the operations charged so far via Compute.
func (r *Rank) Ops() int64 { return r.ops }

// Clock returns the rank's virtual time in modeled seconds.
func (r *Rank) Clock() float64 { return r.clock }

// Compute charges n elementary operations of local work, advancing the
// virtual clock by n·SecondsPerOp.
func (r *Rank) Compute(n int64) {
	r.ops += n
	r.clock += float64(n) * r.c.cfg.model.SecondsPerOp
}

// Abort unwinds the calling rank goroutine with the abort sentinel;
// Comm.Run recovers it and returns a structured error.
func (r *Rank) Abort() { panic(comm.AbortSignal{}) }

// abortIfDead unwinds the rank when the run has been aborted (by a peer
// failure, a cancelled context, or a local send error).
func (r *Rank) abortIfDead() {
	r.c.mu.Lock()
	dead := r.c.aborted
	r.c.mu.Unlock()
	if dead {
		panic(comm.AbortSignal{})
	}
}

// send posts one frame, converting a transport failure into an abort of
// the local run (so kernels never see a half-sent state).
func (r *Rank) send(to int, typ byte, body []byte) {
	if err := r.c.post(to, typ, body); err != nil {
		r.c.fail(err)
		panic(comm.AbortSignal{})
	}
}

// encode serializes a payload through the comm codec registry; an
// unregistered payload type is a programming error and fails the run.
func (r *Rank) encode(payload any) (kind uint16, data []byte) {
	kind, data, err := comm.EncodePayload(payload)
	if err != nil {
		r.c.fail(fmt.Errorf("transport: rank %d: %w", r.id, err))
		panic(comm.AbortSignal{})
	}
	return kind, data
}

// Send posts a message to rank `to`. It never blocks — the frame lands in
// the peer's unbounded send queue and a writer goroutine drains it — so
// no send/receive ordering can deadlock a run. The sender's clock pays
// the per-message overhead; the frame carries the modeled arrival stamp
// the receiver's delivery rule orders by.
func (r *Rank) Send(to, tag int, payload any, size int) {
	if to == r.id || to < 0 || to >= r.c.cfg.p {
		panic(fmt.Sprintf("transport: rank %d sending to %d", r.id, to))
	}
	r.abortIfDead()
	kind, data := r.encode(payload)
	var arrive float64
	r.clock, arrive = r.c.cfg.model.SendAdvance(r.clock, size)
	r.c.msgs.Add(1)
	r.c.bytes.Add(int64(size))
	var e wenc
	e.u32(uint32(r.id))
	e.i64(r.seqOut[to])
	r.seqOut[to]++
	e.u32(uint32(tag))
	e.f64(arrive)
	e.u32(uint32(size))
	e.u16(kind)
	e.bytes(data)
	r.send(to, fData, e.buf)
}

// Recv blocks until a message from rank `from` is pending and returns the
// oldest one, advancing the clock to the message's modeled arrival (if
// not already past it) plus the per-message overhead.
func (r *Rank) Recv(from int) comm.Message {
	c := r.c
	c.mu.Lock()
	for len(c.q[from]) == 0 {
		if c.aborted {
			c.mu.Unlock()
			panic(comm.AbortSignal{})
		}
		c.cond.Wait()
	}
	msg := c.popLocked(from)
	c.mu.Unlock()
	r.clock = c.cfg.model.RecvAdvance(r.clock, msg.Arrive)
	return msg
}

// AnyRecv receives from any of the given sources under mpisim's exact
// delivery rule: wait until every listed source has a pending message,
// then deliver the one with the smallest modeled arrival stamp (sender
// rank breaks ties). TCP arrival order plays no part, so the delivery
// sequence — and everything downstream of it — matches the simulator.
func (r *Rank) AnyRecv(sources []int) comm.Message {
	if len(sources) == 0 {
		panic("transport: AnyRecv with no sources")
	}
	c := r.c
	c.mu.Lock()
	for {
		ready := true
		for _, s := range sources {
			if len(c.q[s]) == 0 {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		if c.aborted {
			c.mu.Unlock()
			panic(comm.AbortSignal{})
		}
		c.cond.Wait()
	}
	best := sources[0]
	for _, s := range sources[1:] {
		h, b := c.q[s][0], c.q[best][0]
		if h.Arrive < b.Arrive || (h.Arrive == b.Arrive && s < best) {
			best = s
		}
	}
	msg := c.popLocked(best)
	c.mu.Unlock()
	r.clock = c.cfg.model.RecvAdvance(r.clock, msg.Arrive)
	return msg
}

// popLocked removes and returns the head of q[from]; caller holds mu.
func (c *Comm) popLocked(from int) comm.Message {
	msg := c.q[from][0]
	c.q[from][0] = comm.Message{}
	c.q[from] = c.q[from][1:]
	if len(c.q[from]) == 0 {
		c.q[from] = nil
	}
	return msg
}

// Sendrecv posts the send (never blocking) and then receives from `from` —
// the classic deadlock-safe exchange primitive.
func (r *Rank) Sendrecv(to, tag int, payload any, size int, from int) comm.Message {
	r.Send(to, tag, payload, size)
	return r.Recv(from)
}

// ------------------------------------------------------------- collectives

// collective runs one generation of the star protocol and returns the
// assembled snapshot: every rank's entry clock and size, plus the payload
// values this rank's op needs. Ranks call collectives in lockstep (SPMD),
// so the generation counter alone identifies the exchange; rank 0 is the
// hub — it collects the P-1 deposits, assembles the snapshot, and replies
// to each peer with exactly the values that peer's op delivers there.
func (r *Rank) collective(op byte, root int, payload any, size int) *collSnapshot {
	c := r.c
	gen := r.gen
	r.gen++
	if c.cfg.p == 1 {
		return &collSnapshot{clocks: []float64{r.clock}, sizes: []int{size}, vals: []any{payload}}
	}
	r.abortIfDead()
	if r.id != 0 {
		kind, data := r.encode(payload)
		var e wenc
		e.u64(gen)
		e.u8(op)
		e.u32(uint32(root))
		e.u32(uint32(r.id))
		e.f64(r.clock)
		e.u32(uint32(size))
		e.u16(kind)
		e.bytes(data)
		r.send(0, fColl, e.buf)
		c.mu.Lock()
		for c.collResp == nil || c.collRespGen != gen {
			if c.aborted {
				c.mu.Unlock()
				panic(comm.AbortSignal{})
			}
			c.cond.Wait()
		}
		snap := c.collResp
		c.collResp = nil
		c.mu.Unlock()
		// The hub's response carries the full clock/size vectors but only
		// the payload values this rank's op needs; splice the local value
		// in so snap.vals[self] is always populated.
		if snap.vals[r.id] == nil {
			snap.vals[r.id] = payload
		}
		return snap
	}

	// Rank 0: wait for every peer's deposit of this generation.
	c.mu.Lock()
	for {
		ready := true
		for peer := 1; peer < c.cfg.p; peer++ {
			if c.collDeposit[peer] == nil {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		if c.aborted {
			c.mu.Unlock()
			panic(comm.AbortSignal{})
		}
		c.cond.Wait()
	}
	snap := &collSnapshot{
		clocks: make([]float64, c.cfg.p),
		sizes:  make([]int, c.cfg.p),
		vals:   make([]any, c.cfg.p),
	}
	snap.clocks[0] = r.clock
	snap.sizes[0] = size
	snap.vals[0] = payload
	var mismatch error
	for peer := 1; peer < c.cfg.p; peer++ {
		dep := c.collDeposit[peer]
		c.collDeposit[peer] = nil
		if dep.gen != gen || dep.op != op || dep.root != root {
			mismatch = fmt.Errorf("transport: collective mismatch: rank %d deposited gen %d op %d root %d, rank 0 is at gen %d op %d root %d",
				peer, dep.gen, dep.op, dep.root, gen, op, root)
			continue
		}
		snap.clocks[peer] = dep.clock
		snap.sizes[peer] = dep.size
		snap.vals[peer] = dep.val
	}
	c.mu.Unlock()
	if mismatch != nil {
		c.fail(mismatch)
		panic(comm.AbortSignal{})
	}
	for peer := 1; peer < c.cfg.p; peer++ {
		r.send(peer, fCollResp, r.encodeCollResp(gen, op, root, peer, snap))
	}
	return snap
}

// encodeCollResp builds the fCollResp body for one peer: the full clock
// and size vectors plus only the payload values the peer's op delivers
// there — nothing for Barrier, root's value for Bcast, every value for
// Allreduce and for the Gatherv root.
func (r *Rank) encodeCollResp(gen uint64, op byte, root, peer int, snap *collSnapshot) []byte {
	var need []int
	switch op {
	case opBcast:
		need = []int{root}
	case opGatherv:
		if peer == root {
			need = make([]int, len(snap.vals))
			for i := range need {
				need[i] = i
			}
		}
	case opAllreduce:
		need = make([]int, len(snap.vals))
		for i := range need {
			need[i] = i
		}
	}
	var e wenc
	e.u64(gen)
	e.f64s(snap.clocks)
	e.ints(snap.sizes)
	e.u32(uint32(len(need)))
	for _, rk := range need {
		kind, data := r.encode(snap.vals[rk])
		e.u32(uint32(rk))
		e.u16(kind)
		e.bytes(data)
	}
	return e.buf
}

// Barrier blocks until all P ranks have called it; every clock advances
// to the latest arrival plus a dissemination round of log2(P) latencies.
func (r *Rank) Barrier() {
	snap := r.collective(opBarrier, 0, nil, 0)
	r.clock = r.c.cfg.model.BarrierAdvance(r.c.cfg.p, r.clock, snap.clocks)
}

// Bcast broadcasts root's payload to every rank (each caller passes its
// own payload; only root's is delivered) and returns it.
func (r *Rank) Bcast(root int, payload any, size int) any {
	c := r.c
	snap := r.collective(opBcast, root, payload, size)
	val, sz := snap.vals[root], snap.sizes[root]
	var msgs, bytes int64
	r.clock, msgs, bytes = c.cfg.model.BcastAdvance(c.cfg.p, r.id, root, r.clock, snap.clocks[root], sz)
	c.collMsgs.Add(msgs)
	c.collBytes.Add(bytes)
	return val
}

// Gatherv gathers every rank's (variable-size) payload to root. At root
// the returned slice holds rank i's payload at index i; every other rank
// gets nil.
func (r *Rank) Gatherv(root int, payload any, size int) []any {
	c := r.c
	snap := r.collective(opGatherv, root, payload, size)
	if c.cfg.p == 1 {
		return []any{snap.vals[0]}
	}
	var msgs, bytes int64
	r.clock, msgs, bytes = c.cfg.model.GathervAdvance(c.cfg.p, r.id, root, r.clock, snap.clocks, snap.sizes)
	c.collMsgs.Add(msgs)
	c.collBytes.Add(bytes)
	if r.id != root {
		return nil
	}
	out := make([]any, c.cfg.p)
	copy(out, snap.vals)
	return out
}

// Allreduce combines every rank's contribution with op and returns the
// result on all ranks (folded in rank order, so bitwise identical
// everywhere).
func (r *Rank) Allreduce(v float64, op comm.ReduceOp) float64 {
	c := r.c
	snap := r.collective(opAllreduce, 0, v, 8)
	vals := make([]float64, c.cfg.p)
	for i, x := range snap.vals {
		f, ok := x.(float64)
		if !ok {
			c.fail(fmt.Errorf("transport: rank %d Allreduce contribution is %T, want float64", i, x))
			panic(comm.AbortSignal{})
		}
		vals[i] = f
	}
	out := comm.Reduce(op, vals)
	var msgs, bytes int64
	r.clock, msgs, bytes = c.cfg.model.AllreduceAdvance(c.cfg.p, r.id, r.clock, snap.clocks)
	c.collMsgs.Add(msgs)
	c.collBytes.Add(bytes)
	return out
}
