package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// meshIntake collects the inbound data connections of one job: the
// listener's accept path deposits each dialing rank's connection here,
// and the job's newComm takes them as it forms its mesh. Registered in a
// meshRegistry before any peer can possibly dial (the coordinator
// registers before shipping setups; a worker registers before acking its
// setup), so a data hello never races its job.
type meshIntake struct {
	mu     sync.Mutex
	cond   *sync.Cond
	conns  map[int]intakeConn // by dialing rank
	closed bool
}

type intakeConn struct {
	conn net.Conn
	br   *bufio.Reader
}

func newMeshIntake() *meshIntake {
	in := &meshIntake{conns: make(map[int]intakeConn)}
	in.cond = sync.NewCond(&in.mu)
	return in
}

// deposit hands an accepted data connection to the waiting job. Returns
// false when the intake is already closed (late dial after teardown).
func (in *meshIntake) deposit(rank int, conn net.Conn, br *bufio.Reader) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return false
	}
	if _, dup := in.conns[rank]; dup {
		return false
	}
	in.conns[rank] = intakeConn{conn: conn, br: br}
	in.cond.Broadcast()
	return true
}

// take waits until rank's connection has been deposited or the deadline
// passes.
func (in *meshIntake) take(rank int, deadline time.Time) (net.Conn, *bufio.Reader, error) {
	timer := time.AfterFunc(time.Until(deadline), func() {
		in.mu.Lock()
		in.cond.Broadcast()
		in.mu.Unlock()
	})
	defer timer.Stop()
	in.mu.Lock()
	defer in.mu.Unlock()
	for {
		if ic, ok := in.conns[rank]; ok {
			delete(in.conns, rank)
			return ic.conn, ic.br, nil
		}
		if in.closed {
			return nil, nil, fmt.Errorf("transport: mesh intake closed")
		}
		if !time.Now().Before(deadline) {
			return nil, nil, fmt.Errorf("transport: timed out")
		}
		in.cond.Wait()
	}
}

// close refuses further deposits and drops any unclaimed connections.
func (in *meshIntake) close() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.closed = true
	for r, ic := range in.conns {
		ic.conn.Close()
		delete(in.conns, r)
	}
	in.cond.Broadcast()
}

// meshRegistry routes inbound data hellos to the job they belong to.
type meshRegistry struct {
	mu      sync.Mutex
	intakes map[uint64]*meshIntake // by job id
}

func newMeshRegistry() *meshRegistry {
	return &meshRegistry{intakes: make(map[uint64]*meshIntake)}
}

func (mr *meshRegistry) register(jobID uint64) *meshIntake {
	in := newMeshIntake()
	mr.mu.Lock()
	mr.intakes[jobID] = in
	mr.mu.Unlock()
	return in
}

func (mr *meshRegistry) unregister(jobID uint64) {
	mr.mu.Lock()
	in := mr.intakes[jobID]
	delete(mr.intakes, jobID)
	mr.mu.Unlock()
	if in != nil {
		in.close()
	}
}

func (mr *meshRegistry) lookup(jobID uint64) *meshIntake {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	return mr.intakes[jobID]
}

// acceptHello performs the server side of the hello exchange on a fresh
// connection: it validates the protocol version, acks, and returns the
// kind, job id and dialing rank. The caller owns the connection.
func acceptHello(conn net.Conn) (kind byte, jobID uint64, fromRank int, br *bufio.Reader, err error) {
	conn.SetDeadline(time.Now().Add(helloTimeout))
	br = bufio.NewReader(conn)
	typ, body, err := readFrame(br)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if typ != fHello {
		return 0, 0, 0, nil, fmt.Errorf("transport: expected hello, got frame type %d", typ)
	}
	d := wdec{buf: body}
	ver := d.u16()
	kind = d.u8()
	jobID = d.u64()
	fromRank = int(d.u32())
	if err := d.finish(); err != nil {
		return 0, 0, 0, nil, err
	}
	if ver != protoVersion {
		return 0, 0, 0, nil, fmt.Errorf("transport: peer speaks protocol %d, want %d", ver, protoVersion)
	}
	bw := bufio.NewWriter(conn)
	var e wenc
	e.u16(protoVersion)
	if err := writeFrame(bw, fHelloAck, e.buf); err != nil {
		return 0, 0, 0, nil, err
	}
	conn.SetDeadline(time.Time{})
	return kind, jobID, fromRank, br, nil
}
