// Package transport is the TCP implementation of the comm.Comm/comm.Rank
// surface: each rank is a real process, point-to-point messages and
// collective deposits travel as length-prefixed binary frames with CRC64
// trailers (the internal/snapshot codec discipline), and per-peer
// connections carry unbounded nonblocking send queues that mirror
// mpisim's progress-driven semantics — a send enqueues and returns, a
// dedicated writer goroutine drains, so no send/receive ordering can
// deadlock a run.
//
// Determinism: every data frame is stamped by the sender with the modeled
// arrival time its virtual clock computed through the shared
// comm.CostModel helpers — the same arithmetic mpisim runs. AnyRecv then
// applies mpisim's exact delivery rule (wait until every candidate source
// has a pending message; deliver the smallest stamp, sender rank breaking
// ties), so a sampler run over real TCP produces byte-identical edge
// sets, per-rank clocks, and traffic counters to the simulated run on the
// same seed and partition. Wall time influences nothing but the measured
// RunStats wall fields.
//
// Failure model: a dead peer surfaces as a connection error in that
// peer's reader; the first failure aborts the local run (waking every
// blocked primitive), best-effort fAbort frames fan the abort out to the
// rest of the mesh, and Comm.Run returns a structured error instead of
// wedging. The `transport.send` / `transport.send.rank<i>` failpoints
// inject exactly that failure for fault drills.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
)

// protoVersion is negotiated in the hello exchange; a mismatch refuses the
// connection instead of corrupting a run.
const protoVersion = 1

// maxFrame bounds a single frame (1 GiB): large enough for any shard or
// gathered partial result the samplers produce, small enough to reject a
// corrupt length prefix before allocating.
const maxFrame = 1 << 30

// Frame types. Every frame is [u32 length][u8 type][body][u64 CRC64-ECMA
// over type+body]; the CRC is verified before the body is parsed, so a
// torn or corrupted stream surfaces as ErrCorrupt, never a panic.
const (
	fHello    byte = 1  // conn opener: proto version + kind + job + rank
	fHelloAck byte = 2  // acceptor's version echo
	fSetup    byte = 3  // control: job spec + shard (coordinator → worker)
	fSetupAck byte = 4  // worker registered the job's mesh intake
	fDone     byte = 5  // control: job finished on the worker (ok or error)
	fData     byte = 6  // point-to-point message
	fColl     byte = 7  // collective deposit (rank → rank 0)
	fCollResp byte = 8  // collective snapshot (rank 0 → rank)
	fStats    byte = 9  // end-of-run rank accounting (rank → rank 0)
	fStatsAck byte = 10 // rank 0 collected all stats; teardown may begin
	fAbort    byte = 11 // best-effort abort fan-out with a reason
)

// Hello connection kinds.
const (
	helloControl byte = 0 // coordinator-to-worker job channel
	helloData    byte = 1 // rank-to-rank mesh channel for one job
)

// ErrCorrupt reports a frame that failed structural or checksum
// validation.
var ErrCorrupt = errors.New("transport: corrupt frame")

var crcTable = crc64.MakeTable(crc64.ECMA)

// writeFrame appends one framed message to w and flushes it.
func writeFrame(w *bufio.Writer, typ byte, body []byte) error {
	if len(body) > maxFrame-9 {
		return fmt.Errorf("transport: frame body %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(1+len(body)+8))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := w.WriteByte(typ); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	crc := crc64.Update(crc64.Update(0, crcTable, []byte{typ}), crcTable, body)
	var tr [8]byte
	binary.LittleEndian.PutUint64(tr[:], crc)
	if _, err := w.Write(tr[:]); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one framed message, verifying the length bound and the
// CRC trailer before returning the body.
func readFrame(r *bufio.Reader) (typ byte, body []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 9 || n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("transport: truncated frame: %w", err)
	}
	typ, body = buf[0], buf[1:n-8]
	want := binary.LittleEndian.Uint64(buf[n-8:])
	if got := crc64.Update(0, crcTable, buf[:n-8]); got != want {
		return 0, nil, fmt.Errorf("%w: checksum mismatch on frame type %d", ErrCorrupt, typ)
	}
	return typ, body, nil
}

// ---------------------------------------------------------- body builders

// wenc builds a frame body.
type wenc struct{ buf []byte }

func (e *wenc) u8(v byte)     { e.buf = append(e.buf, v) }
func (e *wenc) u16(v uint16)  { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *wenc) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *wenc) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *wenc) i64(v int64)   { e.u64(uint64(v)) }
func (e *wenc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *wenc) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *wenc) str(s string) { e.bytes([]byte(s)) }

func (e *wenc) f64s(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

func (e *wenc) ints(v []int) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.i64(int64(x))
	}
}

func (e *wenc) i32s(v []int32) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u32(uint32(x))
	}
}

func (e *wenc) strs(v []string) {
	e.u32(uint32(len(v)))
	for _, s := range v {
		e.str(s)
	}
}

// wdec parses a frame body with a sticky error; finish() reports any
// decode failure or trailing garbage as ErrCorrupt.
type wdec struct {
	buf []byte
	off int
	err error
}

func (d *wdec) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func (d *wdec) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.buf) || n < 0 {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *wdec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *wdec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *wdec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *wdec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *wdec) i64() int64   { return int64(d.u64()) }
func (d *wdec) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a u32 length prefix bounded by the remaining body, so a
// corrupt count cannot drive an over-allocation.
func (d *wdec) count(elemSize int) int {
	n := int(d.u32())
	if d.err == nil && (n < 0 || n*elemSize > len(d.buf)-d.off) {
		d.fail()
		return 0
	}
	return n
}

func (d *wdec) bytes() []byte { return d.take(d.count(1)) }
func (d *wdec) str() string   { return string(d.bytes()) }

func (d *wdec) f64s() []float64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *wdec) ints() []int {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.i64())
	}
	return out
}

func (d *wdec) i32s() []int32 {
	n := d.count(4)
	if d.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.u32())
	}
	return out
}

func (d *wdec) strs() []string {
	n := d.count(4)
	if d.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

func (d *wdec) finish() error {
	if d.err == nil && d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return d.err
}
