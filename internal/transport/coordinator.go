package transport

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"parsample/internal/comm"
	"parsample/internal/graph"
	"parsample/internal/sampling"
)

// Cluster is the coordinator's handle on a set of worker processes: it
// holds one control connection per worker plus a data listener on which
// workers dial in as mesh peers (the coordinator itself is rank 0 of
// every job). Jobs run sequentially through Run; the Cluster is not safe
// for concurrent Run calls.
type Cluster struct {
	ln       net.Listener
	registry *meshRegistry
	workers  []*workerConn
	nextJob  uint64
	wg       sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// workerConn is one worker's control channel.
type workerConn struct {
	addr string
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	dead error // first control-channel failure; the seat is unusable after
}

// Dial connects to the given workers (their Worker listen addresses) and
// starts the coordinator's data listener on listenAddr (e.g.
// "127.0.0.1:0"). The returned Cluster supports jobs with P up to
// len(workerAddrs)+1.
func Dial(listenAddr string, workerAddrs []string) (*Cluster, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: coordinator listen: %w", err)
	}
	cl := &Cluster{ln: ln, registry: newMeshRegistry()}
	cl.wg.Add(1)
	go cl.acceptLoop()
	for i, addr := range workerAddrs {
		wc, err := dialControl(addr)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("transport: dialing worker %d at %s: %w", i, addr, err)
		}
		cl.workers = append(cl.workers, wc)
	}
	return cl, nil
}

// dialControl opens the control connection to one worker.
func dialControl(addr string) (*workerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
		tc.SetKeepAlive(true)
	}
	conn.SetDeadline(time.Now().Add(helloTimeout))
	bw := bufio.NewWriter(conn)
	var e wenc
	e.u16(protoVersion)
	e.u8(helloControl)
	e.u64(0)
	e.u32(0)
	if err := writeFrame(bw, fHello, e.buf); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	typ, body, err := readFrame(br)
	if err != nil {
		conn.Close()
		return nil, err
	}
	d := wdec{buf: body}
	ver := d.u16()
	if typ != fHelloAck || d.finish() != nil || ver != protoVersion {
		conn.Close()
		return nil, fmt.Errorf("transport: bad control handshake (frame %d, protocol %d)", typ, ver)
	}
	conn.SetDeadline(time.Time{})
	return &workerConn{addr: addr, conn: conn, br: br, bw: bw}, nil
}

// acceptLoop takes the workers' inbound mesh connections and routes them
// to the owning job's intake.
func (cl *Cluster) acceptLoop() {
	defer cl.wg.Done()
	for {
		conn, err := cl.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			kind, jobID, fromRank, br, err := acceptHello(conn)
			if err != nil || kind != helloData {
				conn.Close()
				return
			}
			in := cl.registry.lookup(jobID)
			if in == nil || !in.deposit(fromRank, conn, br) {
				conn.Close()
			}
		}()
	}
}

// Workers returns the number of connected workers.
func (cl *Cluster) Workers() int { return len(cl.workers) }

// Addr returns the coordinator's data listen address (rank 0's seat).
func (cl *Cluster) Addr() string { return cl.ln.Addr().String() }

// Close tears the cluster down: control connections and the data listener
// close; workers stay alive (they only lose this coordinator).
func (cl *Cluster) Close() {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return
	}
	cl.closed = true
	cl.mu.Unlock()
	for _, wc := range cl.workers {
		wc.conn.Close()
	}
	cl.ln.Close()
	cl.wg.Wait()
}

// Job describes one distributed sampling run.
type Job struct {
	Alg   sampling.Algorithm
	Graph *graph.Graph
	Order []int32 // nil = natural order
	P     int     // ranks; P-1 workers are enlisted (P=1 runs locally)
	Seed  int64
	Model *comm.CostModel // nil = comm.DefaultCostModel
}

// Run executes one distributed sampling job: it partitions the graph,
// ships each enlisted worker its rank's shard, forms the P-rank TCP mesh
// with itself as rank 0, and runs the same sampling kernel every rank
// runs — the Gatherv root and the sequential merge land here, so the
// returned Result (byte-identical to the simulator's on the same seed
// and order) carries the full per-rank accounting plus measured wall
// clocks. A failed or cancelled run returns a structured error once the
// participating workers have reported back (or their deadline passed);
// surviving workers remain usable for the next job.
func (cl *Cluster) Run(ctx context.Context, job Job) (*sampling.Result, error) {
	model := comm.DefaultCostModel()
	if job.Model != nil {
		model = *job.Model
	}
	order := job.Order
	if order == nil {
		order = graph.NaturalOrder(job.Graph.N())
	}
	if job.P < 1 {
		job.P = 1
	}
	opts := sampling.Options{Order: order, P: job.P, Seed: job.Seed, Model: &model}
	if job.P == 1 {
		// A one-rank job has no mesh: it runs right here, but it runs for
		// real, so stamp the measured wall clock the same way a TCP run
		// would — Run's contract is that its Stats are measurements.
		start := time.Now()
		res, err := sampling.RunContext(ctx, job.Alg, job.Graph, opts)
		if res != nil {
			res.Stats.WallSeconds = time.Since(start).Seconds()
			res.Stats.Measured = true
		}
		return res, err
	}
	if job.P-1 > len(cl.workers) {
		return nil, fmt.Errorf("transport: job wants %d ranks but the cluster has %d workers", job.P, len(cl.workers))
	}
	pt := graph.BlockPartition(order, job.P)
	if pt.P() != job.P {
		return nil, fmt.Errorf("transport: graph with %d vertices cannot host %d ranks", job.Graph.N(), job.P)
	}

	cl.nextJob++
	jobID := cl.nextJob
	addrs := make([]string, job.P)
	addrs[0] = cl.Addr()
	for r := 1; r < job.P; r++ {
		addrs[r] = cl.workers[r-1].addr
	}

	// Register the mesh intake before any worker can dial, then ship the
	// setups sequentially, each acknowledged before the next goes out —
	// the ack means worker r has registered its own intake, so a
	// higher-ranked worker that dials it cannot race the job.
	in := cl.registry.register(jobID)
	defer cl.registry.unregister(jobID)
	enlisted := make([]*workerConn, 0, job.P-1)
	for r := 1; r < job.P; r++ {
		wc := cl.workers[r-1]
		if wc.dead != nil {
			return nil, fmt.Errorf("transport: worker %d (%s) is unusable: %w", r-1, wc.addr, wc.dead)
		}
		spec := &jobSpec{
			jobID: jobID,
			rank:  r,
			p:     job.P,
			model: model,
			alg:   job.Alg,
			seed:  job.Seed,
			order: order,
			addrs: addrs,
			shard: encodeShard(job.Graph, pt, r),
		}
		if err := wc.roundTrip(fSetup, encodeJobSpec(spec), fSetupAck); err != nil {
			wc.dead = err
			cl.drainDone(enlisted) // earlier workers already hold the job; let them fail it out
			return nil, fmt.Errorf("transport: setting up rank %d on worker %s: %w", r, wc.addr, err)
		}
		enlisted = append(enlisted, wc)
	}

	c, err := newComm(meshConfig{jobID: jobID, self: 0, p: job.P, model: model, addrs: addrs}, in)
	if err != nil {
		cl.drainDone(enlisted)
		return nil, err
	}
	opts.Comm = c
	res, runErr := sampling.RunContext(ctx, job.Alg, job.Graph, opts)
	c.Close()

	// Collect every enlisted worker's fDone so the control channels are in
	// sync for the next job; a worker-reported failure on a run the
	// coordinator thought clean is still a failure.
	doneErr := cl.drainDone(enlisted)
	if runErr != nil {
		return nil, runErr
	}
	if doneErr != nil {
		return nil, doneErr
	}
	return res, nil
}

// drainDone reads the end-of-job report from each enlisted worker,
// returning the first failure (a worker-reported job error or a dead
// control channel).
func (cl *Cluster) drainDone(enlisted []*workerConn) error {
	var firstErr error
	for _, wc := range enlisted {
		ok, msg, err := wc.readDone()
		if err != nil {
			wc.dead = err
			if firstErr == nil {
				firstErr = fmt.Errorf("transport: worker %s control channel: %w", wc.addr, err)
			}
			continue
		}
		if !ok && firstErr == nil {
			firstErr = fmt.Errorf("transport: worker %s: %s", wc.addr, msg)
		}
	}
	return firstErr
}

// roundTrip writes one control frame and waits for the expected reply
// type, both under deadlines.
func (wc *workerConn) roundTrip(reqType byte, body []byte, wantType byte) error {
	wc.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	err := writeFrame(wc.bw, reqType, body)
	wc.conn.SetWriteDeadline(time.Time{})
	if err != nil {
		return err
	}
	wc.conn.SetReadDeadline(time.Now().Add(dialTimeout))
	typ, resp, err := readFrame(wc.br)
	wc.conn.SetReadDeadline(time.Time{})
	if err != nil {
		return err
	}
	if typ != wantType {
		return fmt.Errorf("transport: expected frame type %d, got %d", wantType, typ)
	}
	d := wdec{buf: resp}
	return d.finish()
}

// readDone reads one fDone report under a deadline.
func (wc *workerConn) readDone() (ok bool, msg string, err error) {
	wc.conn.SetReadDeadline(time.Now().Add(drainTimeout))
	typ, body, err := readFrame(wc.br)
	wc.conn.SetReadDeadline(time.Time{})
	if err != nil {
		return false, "", err
	}
	if typ != fDone {
		return false, "", fmt.Errorf("transport: expected done frame, got type %d", typ)
	}
	d := wdec{buf: body}
	d.u64() // job id
	okb := d.u8()
	msg = d.str()
	if err := d.finish(); err != nil {
		return false, "", err
	}
	return okb == 1, msg, nil
}
