package mcode

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parsample/internal/graph"
)

func TestCoreNumbersBasics(t *testing.T) {
	// K5: all vertices have core 4.
	for _, c := range CoreNumbers(graph.Complete(5)) {
		if c != 4 {
			t.Fatalf("K5 core = %d, want 4", c)
		}
	}
	// Path: interior 1-core... actually all vertices of a path are core 1.
	for _, c := range CoreNumbers(graph.Path(6)) {
		if c != 1 {
			t.Fatalf("path core = %d, want 1", c)
		}
	}
	// Cycle: all core 2.
	for _, c := range CoreNumbers(graph.Cycle(7)) {
		if c != 2 {
			t.Fatalf("cycle core = %d, want 2", c)
		}
	}
	// Isolated vertices are core 0.
	g := graph.FromEdges(3, nil)
	for _, c := range CoreNumbers(g) {
		if c != 0 {
			t.Fatalf("isolated core = %d", c)
		}
	}
}

func TestCoreNumbersKiteGraph(t *testing.T) {
	// K4 with a pendant path: K4 vertices core 3, path vertices core 1.
	b := graph.NewBuilder(6)
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(i, j)
		}
	}
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	core := CoreNumbers(b.Build())
	want := []int{3, 3, 3, 3, 1, 1}
	for v, w := range want {
		if core[v] != w {
			t.Fatalf("core[%d] = %d, want %d (all %v)", v, core[v], w, core)
		}
	}
}

// Property: core numbers never exceed degree and are monotone under the
// defining property (each vertex has ≥ core(v) neighbors with core ≥ core(v)).
func TestCoreNumbersQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g := graph.Gnm(n, rng.Intn(3*n), seed)
		core := CoreNumbers(g)
		for v := int32(0); int(v) < n; v++ {
			if core[v] > g.Degree(v) {
				return false
			}
			cnt := 0
			for _, u := range g.Neighbors(v) {
				if core[u] >= core[v] {
					cnt++
				}
			}
			if cnt < core[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexWeightsClique(t *testing.T) {
	// In K5, each vertex's neighborhood (plus itself) is K5: core 4,
	// density 1 => weight 4.
	w := VertexWeights(graph.Complete(5))
	for _, v := range w {
		if math.Abs(v-4) > 1e-12 {
			t.Fatalf("K5 weight = %v, want 4", v)
		}
	}
	// Isolated vertex weight 0.
	w0 := VertexWeights(graph.FromEdges(2, nil))
	if w0[0] != 0 || w0[1] != 0 {
		t.Fatal("isolated weight must be 0")
	}
}

func TestVertexWeightsDenseBeatsSparse(t *testing.T) {
	// A clique member must outweigh a path interior vertex.
	b := graph.NewBuilder(10)
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
		}
	}
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	b.AddEdge(7, 8)
	g := b.Build()
	w := VertexWeights(g)
	if w[0] <= w[6] {
		t.Fatalf("clique weight %v not above path weight %v", w[0], w[6])
	}
}

func TestFindClustersPlantedClique(t *testing.T) {
	// A K6 planted in sparse noise must be found as one cluster.
	pr := graph.PlantedModules(150, 80, graph.ModuleSpec{
		Count: 1, MinSize: 6, MaxSize: 6, Density: 1, NoiseDeg: 0.5,
	}, 4)
	clusters := FindClusters(pr.G, DefaultParams())
	if len(clusters) == 0 {
		t.Fatal("no clusters found")
	}
	found := clusters[0].NodeSet()
	hit := 0
	for _, v := range pr.Modules[0] {
		if found[v] {
			hit++
		}
	}
	if hit < 5 {
		t.Fatalf("top cluster hit only %d/6 planted vertices", hit)
	}
	if clusters[0].Score < 3 {
		t.Fatalf("clique cluster score %v < 3", clusters[0].Score)
	}
}

func TestFindClustersMultipleModules(t *testing.T) {
	pr := graph.PlantedModules(400, 200, graph.ModuleSpec{
		Count: 5, MinSize: 7, MaxSize: 9, Density: 0.95, NoiseDeg: 0.5,
	}, 9)
	clusters := FindClusters(pr.G, DefaultParams())
	if len(clusters) < 4 {
		t.Fatalf("found %d clusters, want ≥ 4 of 5 planted", len(clusters))
	}
	// Clusters must be disjoint (MCODE marks used vertices).
	seen := map[int32]bool{}
	for _, c := range clusters {
		for _, v := range c.Vertices {
			if seen[v] {
				t.Fatal("clusters overlap")
			}
			seen[v] = true
		}
	}
	// Sorted by score.
	for i := 1; i < len(clusters); i++ {
		if clusters[i].Score > clusters[i-1].Score {
			t.Fatal("clusters not sorted by score")
		}
	}
}

func TestFindClustersSparseGraphNone(t *testing.T) {
	// A tree has no dense region: no clusters at default thresholds.
	if cs := FindClusters(graph.Path(50), DefaultParams()); len(cs) != 0 {
		t.Fatalf("path produced %d clusters", len(cs))
	}
}

func TestFindClustersScoreFilter(t *testing.T) {
	// A K4 alone: score = 4·1 = 4 ≥ 3 => kept; with MinScore 5 it is dropped.
	g := graph.Complete(4)
	if cs := FindClusters(g, Params{MinScore: 3, MinSize: 4}); len(cs) != 1 {
		t.Fatalf("K4 clusters = %d, want 1", len(cs))
	}
	if cs := FindClusters(g, Params{MinScore: 5, MinSize: 4}); len(cs) != 0 {
		t.Fatalf("K4 with MinScore 5 gave %d clusters", len(cs))
	}
}

func TestHaircutRemovesPendants(t *testing.T) {
	// Triangle with a pendant vertex: haircut strips the pendant.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	members := haircut(g, []int32{0, 1, 2, 3}, graph.NewBitset(g.N()))
	if len(members) != 3 {
		t.Fatalf("haircut left %d vertices, want 3", len(members))
	}
	for _, v := range members {
		if v == 3 {
			t.Fatal("pendant vertex survived haircut")
		}
	}
}

func TestClusterEdgeSetAndScore(t *testing.T) {
	g := graph.Complete(5)
	cs := FindClusters(g, DefaultParams())
	if len(cs) != 1 {
		t.Fatalf("K5 clusters = %d", len(cs))
	}
	c := cs[0]
	if c.Edges != 10 || math.Abs(c.Density-1) > 1e-12 || math.Abs(c.Score-5) > 1e-12 {
		t.Fatalf("K5 cluster: edges=%d density=%v score=%v", c.Edges, c.Density, c.Score)
	}
	es := c.EdgeSet(g)
	if es.Len() != 10 {
		t.Fatalf("edge set len = %d", es.Len())
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.VertexWeightPercentage != 0.2 || !p.Haircut || p.MinScore != 3.0 || p.MinSize != 4 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
}

func BenchmarkFindClusters(b *testing.B) {
	pr := graph.PlantedModules(2000, 1500, graph.ModuleSpec{
		Count: 20, MinSize: 8, MaxSize: 14, Density: 0.9, NoiseDeg: 1,
	}, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindClusters(pr.G, DefaultParams())
	}
}

func TestFluffExpandsComplex(t *testing.T) {
	// K5 core with a moderately connected satellite: the satellite has two
	// edges into the clique (dense closed neighborhood), so fluff adds it
	// while the default run does not.
	b := graph.NewBuilder(6)
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
		}
	}
	b.AddEdge(5, 0)
	b.AddEdge(5, 1)
	g := b.Build()

	plain := FindClusters(g, DefaultParams())
	if len(plain) != 1 {
		t.Fatalf("plain clusters = %d", len(plain))
	}
	fluffed := FindClusters(g, Params{Fluff: true})
	if len(fluffed) != 1 {
		t.Fatalf("fluffed clusters = %d", len(fluffed))
	}
	if len(fluffed[0].Vertices) <= len(plain[0].Vertices) {
		t.Fatalf("fluff did not expand: %d vs %d vertices",
			len(fluffed[0].Vertices), len(plain[0].Vertices))
	}
	has5 := false
	for _, v := range fluffed[0].Vertices {
		if v == 5 {
			has5 = true
		}
	}
	if !has5 {
		t.Fatal("satellite vertex not fluffed in")
	}
}

func TestFluffThresholdDefault(t *testing.T) {
	p := Params{Fluff: true}.withDefaults()
	if p.FluffDensityThreshold != 0.1 {
		t.Fatalf("default fluff threshold = %v", p.FluffDensityThreshold)
	}
	// Explicit threshold survives.
	p = Params{Fluff: true, FluffDensityThreshold: 0.9}.withDefaults()
	if p.FluffDensityThreshold != 0.9 {
		t.Fatal("explicit threshold overridden")
	}
}

func TestFluffVerySTrictThresholdNoChange(t *testing.T) {
	g := graph.Complete(5)
	plain := FindClusters(g, DefaultParams())
	strict := FindClusters(g, Params{Fluff: true, FluffDensityThreshold: 1.1})
	if len(plain) != len(strict) || len(plain[0].Vertices) != len(strict[0].Vertices) {
		t.Fatal("impossible threshold changed the result")
	}
}
