// Package mcode implements the MCODE clustering algorithm (Bader & Hogue,
// BMC Bioinformatics 2003), the algorithm behind AllegroMCODE which the
// paper uses to identify gene clusters: vertices are weighted by the density
// of the highest k-core of their neighborhood, complexes grow from seed
// vertices by a weight-percentage rule, and clusters are scored by
// density × size. The paper keeps clusters with score ≥ 3.0.
package mcode

import (
	"runtime"
	"sort"
	"sync"

	"parsample/internal/graph"
)

// Params configures MCODE. Zero values select the defaults the paper used
// (AllegroMCODE 1.0 default parameters).
type Params struct {
	// VertexWeightPercentage (node score cutoff): a neighbor u joins a
	// complex seeded at s when weight(u) > weight(s)·(1−VWP). Default 0.2.
	VertexWeightPercentage float64
	// Haircut removes vertices with fewer than 2 connections inside the
	// complex. Default true (matches MCODE defaults).
	Haircut bool
	// MinScore filters reported clusters; the paper analyzed clusters with
	// score ≥ 3.0 (lower scores "tend to indicate small cliques, or K3").
	MinScore float64
	// MinSize filters clusters smaller than this many vertices. Default 4
	// (a K3 scores exactly 3.0; the paper excludes plain triangles).
	MinSize int
	// Fluff optionally expands each complex after the haircut: a neighbor
	// u of the complex is added when the density of u's closed neighborhood
	// exceeds FluffDensityThreshold. Fluffed vertices may appear in several
	// complexes (MCODE's fluff semantics). Off by default, as in the paper.
	Fluff bool
	// FluffDensityThreshold defaults to 0.1 when Fluff is set.
	FluffDensityThreshold float64
}

func (p Params) withDefaults() Params {
	if p.VertexWeightPercentage == 0 {
		p.VertexWeightPercentage = 0.2
	}
	if p.MinScore == 0 {
		p.MinScore = 3.0
	}
	if p.MinSize == 0 {
		p.MinSize = 4
	}
	if p.Fluff && p.FluffDensityThreshold == 0 {
		p.FluffDensityThreshold = 0.1
	}
	return p
}

// DefaultParams returns the paper's MCODE configuration.
func DefaultParams() Params {
	return Params{VertexWeightPercentage: 0.2, Haircut: true, MinScore: 3.0, MinSize: 4}
}

// Cluster is one predicted complex.
type Cluster struct {
	ID       int
	Vertices []int32 // sorted
	Edges    int
	Density  float64 // 2E / (V(V-1))
	Score    float64 // Density × V
	Seed     int32   // seed vertex the complex grew from
}

// NodeSet returns the cluster's vertices as a set.
func (c *Cluster) NodeSet() map[int32]bool {
	s := make(map[int32]bool, len(c.Vertices))
	for _, v := range c.Vertices {
		s[v] = true
	}
	return s
}

// EdgeSet returns the cluster's internal edges as an edge set over g.
func (c *Cluster) EdgeSet(g *graph.Graph) graph.EdgeSet {
	in := c.NodeSet()
	s := graph.NewEdgeSet(c.Edges)
	for _, u := range c.Vertices {
		for _, v := range g.Neighbors(u) {
			if u < v && in[v] {
				s.Add(u, v)
			}
		}
	}
	return s
}

// CoreNumbers returns the k-core number of every vertex (standard peeling
// in O(n + m)).
func CoreNumbers(g *graph.Graph) []int {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	pos := make([]int, n)
	vert := make([]int32, n)
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = int32(v)
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0
	core := make([]int, n)
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		for _, u := range g.Neighbors(v) {
			if deg[u] > deg[v] {
				du, pu := deg[u], pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bin[du]++
				deg[u]--
			}
		}
	}
	return core
}

// VertexWeights computes the MCODE weight of every vertex: the core number k
// of the highest k-core of the vertex's (closed) neighborhood, multiplied by
// the density of that k-core subgraph. Vertices are independent, so the
// computation is parallelized over GOMAXPROCS workers (deterministic: each
// weight depends only on the input graph).
func VertexWeights(g *graph.Graph) []float64 {
	n := g.N()
	w := make([]float64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for v := int32(k); int(v) < n; v += int32(workers) {
				w[v] = vertexWeight(g, v)
			}
		}(k)
	}
	wg.Wait()
	return w
}

// vertexWeight computes the MCODE weight of one vertex.
func vertexWeight(g *graph.Graph, v int32) float64 {
	nb := g.Neighbors(v)
	if len(nb) == 0 {
		return 0
	}
	region := make([]int32, 0, len(nb)+1)
	region = append(region, v)
	region = append(region, nb...)
	sub, _ := g.CompactSubgraph(region)
	cores := CoreNumbers(sub)
	k := 0
	for _, c := range cores {
		if c > k {
			k = c
		}
	}
	if k == 0 {
		return 0
	}
	// Highest k-core subgraph.
	var keep []int32
	for lv, c := range cores {
		if c == k {
			keep = append(keep, int32(lv))
		}
	}
	coreSub := sub.Subgraph(keep)
	nn := len(keep)
	if nn < 2 {
		return 0
	}
	density := 2 * float64(coreSub.M()) / (float64(nn) * float64(nn-1))
	return float64(k) * density
}

// FindClusters runs MCODE complex prediction on g and returns clusters
// passing the score/size filters, highest score first.
func FindClusters(g *graph.Graph, p Params) []Cluster {
	p = p.withDefaults()
	n := g.N()
	weights := VertexWeights(g)

	// Seeds in decreasing weight order.
	seeds := make([]int32, n)
	for i := range seeds {
		seeds[i] = int32(i)
	}
	sort.SliceStable(seeds, func(i, j int) bool {
		if weights[seeds[i]] != weights[seeds[j]] {
			return weights[seeds[i]] > weights[seeds[j]]
		}
		return seeds[i] < seeds[j]
	})

	used := make([]bool, n)
	var clusters []Cluster
	for _, seed := range seeds {
		if used[seed] || weights[seed] == 0 {
			continue
		}
		threshold := weights[seed] * (1 - p.VertexWeightPercentage)
		members := growComplex(g, seed, threshold, weights, used)
		if p.Haircut {
			members = haircut(g, members)
		}
		if len(members) == 0 {
			continue
		}
		for _, v := range members {
			used[v] = true
		}
		if p.Fluff {
			// Fluffed vertices are not marked used: they may join several
			// complexes, as in MCODE.
			members = fluff(g, members, p.FluffDensityThreshold)
		}
		c := scoreCluster(g, members)
		if len(c.Vertices) >= p.MinSize && c.Score >= p.MinScore {
			c.Seed = seed
			c.ID = len(clusters)
			clusters = append(clusters, c)
		}
	}
	sort.SliceStable(clusters, func(i, j int) bool { return clusters[i].Score > clusters[j].Score })
	for i := range clusters {
		clusters[i].ID = i
	}
	return clusters
}

// growComplex BFS-expands from seed, admitting unused vertices whose weight
// exceeds the threshold.
func growComplex(g *graph.Graph, seed int32, threshold float64, weights []float64, used []bool) []int32 {
	inComplex := map[int32]bool{seed: true}
	queue := []int32{seed}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if used[u] || inComplex[u] {
				continue
			}
			if weights[u] > threshold {
				inComplex[u] = true
				queue = append(queue, u)
			}
		}
	}
	members := make([]int32, 0, len(inComplex))
	for v := range inComplex {
		members = append(members, v)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

// haircut iteratively removes vertices with fewer than 2 connections inside
// the complex.
func haircut(g *graph.Graph, members []int32) []int32 {
	in := make(map[int32]bool, len(members))
	for _, v := range members {
		in[v] = true
	}
	for {
		removed := false
		for _, v := range members {
			if !in[v] {
				continue
			}
			deg := 0
			for _, u := range g.Neighbors(v) {
				if in[u] {
					deg++
				}
			}
			if deg < 2 {
				in[v] = false
				removed = true
			}
		}
		if !removed {
			break
		}
	}
	out := members[:0]
	for _, v := range members {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}

// fluff adds complex neighbors whose closed-neighborhood density exceeds the
// threshold. Returns a sorted, deduplicated member list.
func fluff(g *graph.Graph, members []int32, threshold float64) []int32 {
	in := make(map[int32]bool, len(members))
	for _, v := range members {
		in[v] = true
	}
	out := append([]int32(nil), members...)
	for _, v := range members {
		for _, u := range g.Neighbors(v) {
			if in[u] {
				continue
			}
			region := make([]int32, 0, g.Degree(u)+1)
			region = append(region, u)
			region = append(region, g.Neighbors(u)...)
			sub, _ := g.CompactSubgraph(region)
			nn := sub.N()
			if nn < 2 {
				continue
			}
			density := 2 * float64(sub.M()) / (float64(nn) * float64(nn-1))
			if density > threshold {
				in[u] = true
				out = append(out, u)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func scoreCluster(g *graph.Graph, members []int32) Cluster {
	in := make(map[int32]bool, len(members))
	for _, v := range members {
		in[v] = true
	}
	edges := 0
	for _, v := range members {
		for _, u := range g.Neighbors(v) {
			if v < u && in[u] {
				edges++
			}
		}
	}
	c := Cluster{Vertices: members, Edges: edges}
	nn := len(members)
	if nn >= 2 {
		c.Density = 2 * float64(edges) / (float64(nn) * float64(nn-1))
		c.Score = c.Density * float64(nn)
	}
	return c
}
