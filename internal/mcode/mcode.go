// Package mcode implements the MCODE clustering algorithm (Bader & Hogue,
// BMC Bioinformatics 2003), the algorithm behind AllegroMCODE which the
// paper uses to identify gene clusters: vertices are weighted by the density
// of the highest k-core of their neighborhood, complexes grow from seed
// vertices by a weight-percentage rule, and clusters are scored by
// density × size. The paper keeps clusters with score ≥ 3.0.
package mcode

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"parsample/internal/graph"
)

// Params configures MCODE. Zero values select the defaults the paper used
// (AllegroMCODE 1.0 default parameters).
type Params struct {
	// VertexWeightPercentage (node score cutoff): a neighbor u joins a
	// complex seeded at s when weight(u) > weight(s)·(1−VWP). Default 0.2.
	VertexWeightPercentage float64
	// Haircut removes vertices with fewer than 2 connections inside the
	// complex. Default true (matches MCODE defaults).
	Haircut bool
	// MinScore filters reported clusters; the paper analyzed clusters with
	// score ≥ 3.0 (lower scores "tend to indicate small cliques, or K3").
	MinScore float64
	// MinSize filters clusters smaller than this many vertices. Default 4
	// (a K3 scores exactly 3.0; the paper excludes plain triangles).
	MinSize int
	// Fluff optionally expands each complex after the haircut: a neighbor
	// u of the complex is added when the density of u's closed neighborhood
	// exceeds FluffDensityThreshold. Fluffed vertices may appear in several
	// complexes (MCODE's fluff semantics). Off by default, as in the paper.
	Fluff bool
	// FluffDensityThreshold defaults to 0.1 when Fluff is set.
	FluffDensityThreshold float64
}

func (p Params) withDefaults() Params {
	if p.VertexWeightPercentage == 0 {
		p.VertexWeightPercentage = 0.2
	}
	if p.MinScore == 0 {
		p.MinScore = 3.0
	}
	if p.MinSize == 0 {
		p.MinSize = 4
	}
	if p.Fluff && p.FluffDensityThreshold == 0 {
		p.FluffDensityThreshold = 0.1
	}
	return p
}

// DefaultParams returns the paper's MCODE configuration.
func DefaultParams() Params {
	return Params{VertexWeightPercentage: 0.2, Haircut: true, MinScore: 3.0, MinSize: 4}
}

// Cluster is one predicted complex.
type Cluster struct {
	ID       int
	Vertices []int32 // sorted
	Edges    int
	Density  float64 // 2E / (V(V-1))
	Score    float64 // Density × V
	Seed     int32   // seed vertex the complex grew from
}

// NodeSet returns the cluster's vertices as a set.
func (c *Cluster) NodeSet() map[int32]bool {
	s := make(map[int32]bool, len(c.Vertices))
	for _, v := range c.Vertices {
		s[v] = true
	}
	return s
}

// EdgeSet returns the cluster's internal edges as an edge set over g.
func (c *Cluster) EdgeSet(g *graph.Graph) graph.EdgeSet {
	in := c.NodeSet()
	s := graph.NewEdgeSet(c.Edges)
	for _, u := range c.Vertices {
		for _, v := range g.Neighbors(u) {
			if u < v && in[v] {
				s.Add(u, v)
			}
		}
	}
	return s
}

// CoreNumbers returns the k-core number of every vertex (standard peeling
// in O(n + m)).
func CoreNumbers(g *graph.Graph) []int {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	pos := make([]int, n)
	vert := make([]int32, n)
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = int32(v)
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0
	core := make([]int, n)
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		for _, u := range g.Neighbors(v) {
			if deg[u] > deg[v] {
				du, pu := deg[u], pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bin[du]++
				deg[u]--
			}
		}
	}
	return core
}

// VertexWeights computes the MCODE weight of every vertex: the core number k
// of the highest k-core of the vertex's (closed) neighborhood, multiplied by
// the density of that k-core subgraph. Vertices are independent, so the
// computation is parallelized over GOMAXPROCS workers (deterministic: each
// weight depends only on the input graph). Each worker owns one
// graph.Localizer, so neighborhood extraction reuses O(N) scratch instead of
// allocating it per vertex.
func VertexWeights(g *graph.Graph) []float64 {
	w, _ := vertexWeightsContext(context.Background(), g)
	return w
}

// vertexWeightsContext is the cancellable weight pass: each worker polls ctx
// every 64 vertices (one vertex weight is a neighborhood k-core extraction,
// so the poll interval stays well under a millisecond of work) and bails
// once cancellation is observed.
func vertexWeightsContext(ctx context.Context, g *graph.Graph) ([]float64, error) {
	n := g.N()
	w := make([]float64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			loc := g.NewLocalizer()
			region := make([]int32, 0, g.MaxDegree()+1)
			done := 0
			for v := int32(k); int(v) < n; v += int32(workers) {
				if done%64 == 0 && ctx.Err() != nil {
					return
				}
				done++
				w[v] = vertexWeight(g, loc, region, v)
			}
		}(k)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return w, nil
}

// vertexWeight computes the MCODE weight of one vertex using the worker's
// localizer and region scratch.
func vertexWeight(g *graph.Graph, loc *graph.Localizer, region []int32, v int32) float64 {
	nb := g.Neighbors(v)
	if len(nb) == 0 {
		return 0
	}
	region = append(region[:0], v)
	region = append(region, nb...)
	sub, _ := loc.Compact(region)
	cores := CoreNumbers(sub)
	k := 0
	for _, c := range cores {
		if c > k {
			k = c
		}
	}
	if k == 0 {
		return 0
	}
	// Highest k-core subgraph.
	var keep []int32
	for lv, c := range cores {
		if c == k {
			keep = append(keep, int32(lv))
		}
	}
	coreSub := sub.Subgraph(keep)
	nn := len(keep)
	if nn < 2 {
		return 0
	}
	density := 2 * float64(coreSub.M()) / (float64(nn) * float64(nn-1))
	return float64(k) * density
}

// FindClusters runs MCODE complex prediction on g and returns clusters
// passing the score/size filters, highest score first.
//
// On small vertex universes FindClusters builds g's dense adjacency rows
// (graph.EnsureDense), a one-time mutation of the shared graph; callers
// running concurrent HasEdge/HasEdgeFast readers on the same graph should
// call g.EnsureDense() themselves before fanning out.
func FindClusters(g *graph.Graph, p Params) []Cluster {
	clusters, _ := FindClustersContext(context.Background(), g, p)
	return clusters
}

// FindClustersContext is FindClusters with cooperative cancellation: the
// dominant vertex-weight pass polls ctx in every worker and the seed-growth
// loop polls between seeds, so cancellation returns promptly with ctx.Err()
// and no partial cluster list. A completed run is identical to
// FindClusters.
func FindClustersContext(ctx context.Context, g *graph.Graph, p Params) ([]Cluster, error) {
	p = p.withDefaults()
	n := g.N()
	// Dense adjacency rows (when the universe is small enough) turn the
	// cluster-scoring edge counts into AND-popcounts over bitset rows.
	g.EnsureDense()
	weights, err := vertexWeightsContext(ctx, g)
	if err != nil {
		return nil, err
	}

	// Seeds in decreasing weight order.
	seeds := make([]int32, n)
	for i := range seeds {
		seeds[i] = int32(i)
	}
	sort.SliceStable(seeds, func(i, j int) bool {
		if weights[seeds[i]] != weights[seeds[j]] {
			return weights[seeds[i]] > weights[seeds[j]]
		}
		return seeds[i] < seeds[j]
	})

	used := make([]bool, n)
	var fluffLoc *graph.Localizer
	if p.Fluff {
		fluffLoc = g.NewLocalizer()
	}
	// One membership bitset shared by the grow/haircut/fluff/score stages of
	// every seed; each stage leaves it clean (clearing by member list), so
	// the per-seed cost stays O(|complex|), not O(n/8).
	scratch := graph.NewBitset(n)
	var clusters []Cluster
	for si, seed := range seeds {
		if si%256 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if used[seed] || weights[seed] == 0 {
			continue
		}
		threshold := weights[seed] * (1 - p.VertexWeightPercentage)
		members := growComplex(g, seed, threshold, weights, used, scratch)
		if p.Haircut {
			members = haircut(g, members, scratch)
		}
		if len(members) == 0 {
			continue
		}
		for _, v := range members {
			used[v] = true
		}
		if p.Fluff {
			// Fluffed vertices are not marked used: they may join several
			// complexes, as in MCODE.
			members = fluff(g, fluffLoc, members, p.FluffDensityThreshold, scratch)
		}
		c := scoreCluster(g, members, scratch)
		if len(c.Vertices) >= p.MinSize && c.Score >= p.MinScore {
			c.Seed = seed
			c.ID = len(clusters)
			clusters = append(clusters, c)
		}
	}
	sort.SliceStable(clusters, func(i, j int) bool { return clusters[i].Score > clusters[j].Score })
	for i := range clusters {
		clusters[i].ID = i
	}
	return clusters, nil
}

// growComplex BFS-expands from seed, admitting unused vertices whose weight
// exceeds the threshold. Membership tracking uses the shared scratch bitset
// (received clean, returned clean); admitted members are collected on the
// fly, so no map or second pass is needed.
func growComplex(g *graph.Graph, seed int32, threshold float64, weights []float64, used []bool, in graph.Bitset) []int32 {
	in.Set(seed)
	members := []int32{seed}
	queue := []int32{seed}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if used[u] || in.Has(u) {
				continue
			}
			if weights[u] > threshold {
				in.Set(u)
				members = append(members, u)
				queue = append(queue, u)
			}
		}
	}
	for _, v := range members {
		in.Clear(v)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

// haircut iteratively removes vertices with fewer than 2 connections inside
// the complex. in is the shared scratch bitset (received clean, returned
// clean).
func haircut(g *graph.Graph, members []int32, in graph.Bitset) []int32 {
	for _, v := range members {
		in.Set(v)
	}
	for {
		removed := false
		for _, v := range members {
			if !in.Has(v) {
				continue
			}
			deg := 0
			for _, u := range g.Neighbors(v) {
				if in.Has(u) {
					deg++
				}
			}
			if deg < 2 {
				in.Clear(v)
				removed = true
			}
		}
		if !removed {
			break
		}
	}
	out := members[:0]
	for _, v := range members {
		if in.Has(v) {
			out = append(out, v)
		}
		in.Clear(v)
	}
	return out
}

// fluff adds complex neighbors whose closed-neighborhood density exceeds the
// threshold. Returns a sorted, deduplicated member list. in is the shared
// scratch bitset (received clean, returned clean).
func fluff(g *graph.Graph, loc *graph.Localizer, members []int32, threshold float64, in graph.Bitset) []int32 {
	for _, v := range members {
		in.Set(v)
	}
	out := append([]int32(nil), members...)
	region := make([]int32, 0, g.MaxDegree()+1)
	for _, v := range members {
		for _, u := range g.Neighbors(v) {
			if in.Has(u) {
				continue
			}
			region = append(region[:0], u)
			region = append(region, g.Neighbors(u)...)
			sub, _ := loc.Compact(region)
			nn := sub.N()
			if nn < 2 {
				continue
			}
			density := 2 * float64(sub.M()) / (float64(nn) * float64(nn-1))
			if density > threshold {
				in.Set(u)
				out = append(out, u)
			}
		}
	}
	for _, v := range out {
		in.Clear(v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// scoreCluster counts internal edges via bitset membership — a dense-row
// AND-popcount when the graph carries dense adjacency rows, a bit probe per
// neighbor otherwise. in is the shared scratch bitset (received clean,
// returned clean).
func scoreCluster(g *graph.Graph, members []int32, in graph.Bitset) Cluster {
	for _, v := range members {
		in.Set(v)
	}
	edges := 0
	if g.Row(0) != nil && len(members) > 0 {
		// Σ_v |N(v) ∩ members| counts each internal edge twice.
		total := 0
		for _, v := range members {
			total += g.Row(v).AndCount(in)
		}
		edges = total / 2
	} else {
		for _, v := range members {
			for _, u := range g.Neighbors(v) {
				if v < u && in.Has(u) {
					edges++
				}
			}
		}
	}
	for _, v := range members {
		in.Clear(v)
	}
	c := Cluster{Vertices: members, Edges: edges}
	nn := len(members)
	if nn >= 2 {
		c.Density = 2 * float64(edges) / (float64(nn) * float64(nn-1))
		c.Score = c.Density * float64(nn)
	}
	return c
}
