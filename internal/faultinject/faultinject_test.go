package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsClean(t *testing.T) {
	Reset()
	if err := Eval("nope"); err != nil {
		t.Fatalf("disarmed site returned %v", err)
	}
	if Hits("nope") != 0 {
		t.Fatal("disarmed site counted hits")
	}
}

func TestErrorMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("a", Spec{Mode: ModeError})
	if err := Eval("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	custom := errors.New("boom")
	Enable("a", Spec{Mode: ModeError, Err: custom})
	if err := Eval("a"); !errors.Is(err, custom) {
		t.Fatalf("err = %v, want custom sentinel", err)
	}
	Disable("a")
	if err := Eval("a"); err != nil {
		t.Fatalf("disabled site returned %v", err)
	}
}

func TestCountAndAfter(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	// Fire exactly twice, skipping the first hit.
	Enable("b", Spec{Mode: ModeError, Count: 2, After: 1})
	var failures int
	for i := 0; i < 10; i++ {
		if Eval("b") != nil {
			failures++
		}
	}
	if failures != 2 {
		t.Fatalf("fired %d times, want 2", failures)
	}
	if Hits("b") != 10 {
		t.Fatalf("hits = %d, want 10", Hits("b"))
	}
	if Fired("b") != 2 {
		t.Fatalf("fired counter = %d, want 2", Fired("b"))
	}
}

func TestDelayMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("c", Spec{Mode: ModeDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Eval("c"); err != nil {
		t.Fatalf("delay mode returned %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay mode slept only %v", d)
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("d", Spec{Mode: ModePanic})
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Site != "d" {
			t.Fatalf("recovered %v, want PanicValue{d}", r)
		}
	}()
	Eval("d")
	t.Fatal("panic mode did not panic")
}

// Probability draws come from a deterministic per-site stream: the same
// arming fires on the same hits every run.
func TestProbDeterministic(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	run := func() []bool {
		Enable("e", Spec{Mode: ModeError, Prob: 0.3})
		out := make([]bool, 50)
		for i := range out {
			out[i] = Eval("e") != nil
		}
		Disable("e")
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across reruns", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.3 fired %d/%d times", fired, len(a))
	}
}

func TestConfigure(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	err := Configure("x=error, y=delay:5ms;prob=0.5;count=3, z=panic;after=2")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"x", "y", "z"} {
		mu.RLock()
		_, ok := sites[name]
		mu.RUnlock()
		if !ok {
			t.Fatalf("site %q not armed", name)
		}
	}
	if err := Eval("x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("configured error site returned %v", err)
	}
	for _, bad := range []string{"noequals", "s=wat", "s=delay:xyz", "s=error;prob=2", "s=error;bogus=1"} {
		if err := Configure(bad); err == nil {
			t.Fatalf("Configure(%q) accepted", bad)
		}
	}
	if err := Configure(""); err != nil {
		t.Fatalf("empty config: %v", err)
	}
}
