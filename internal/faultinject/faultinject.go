// Package faultinject is a build-tag-free failpoint registry: named sites
// in the serving and engine code call Eval, and a test (or an operator, via
// the PARSAMPLE_FAILPOINTS environment variable or the daemon's -failpoints
// flag) arms a site with an error, a delay, or a panic. The point is to make
// the failure paths of the resilience layer — store put failures, batcher
// leader handoff, kernel tile claims, SSE writes — exercisable on a stock
// binary, under -race, with no rebuild.
//
// Cost discipline: when nothing is armed, Eval is one atomic load and a
// branch, so production hot paths (tile claims run millions of times per
// sweep) pay effectively nothing for carrying their sites.
//
// Site catalog (DESIGN.md §8):
//
//	pipeline.store.get     every artifact-store request (before lookup)
//	pipeline.store.put     after a successful compute, before insertion
//	pipeline.batcher.lead  the sweep-batch leader, before running the kernel
//	diskstore.write        mid-snapshot, after half the blob is on disk
//	expr.sweep.tile        every correlation-sweep tile claim
//	server.sse.write       every SSE frame write
//	transport.send         every outbound transport frame (data, collective,
//	                       stats), on every rank — kills the whole mesh
//	transport.send.rank<r> same, but only frames sent by rank r: the
//	                       kill-one-worker-mid-Gatherv drill
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error delivered by error-mode sites armed without an
// explicit error (the env/flag syntax always uses it).
var ErrInjected = errors.New("faultinject: injected failure")

// PanicValue is the value panic-mode sites panic with; recovery layers can
// detect injected panics by type-asserting against it.
type PanicValue struct{ Site string }

func (p PanicValue) String() string { return "faultinject: injected panic at " + p.Site }

// Mode selects what an armed site does.
type Mode int

const (
	// ModeError returns Spec.Err (or ErrInjected).
	ModeError Mode = iota
	// ModeDelay sleeps Spec.Delay, then returns nil.
	ModeDelay
	// ModePanic panics with PanicValue{Site}.
	ModePanic
)

// Spec arms one site.
type Spec struct {
	Mode Mode
	// Err is the error returned by ModeError sites; nil selects ErrInjected.
	// Tests use this to inject specific sentinels (e.g. context.Canceled to
	// exercise the batcher's leader-cancelled retry path).
	Err error
	// Delay is the ModeDelay sleep.
	Delay time.Duration
	// Prob fires the fault on each hit with this probability; 0 means
	// always. Draws come from a deterministic per-site SplitMix64 stream, so
	// a seeded run is reproducible.
	Prob float64
	// Count caps how many times the fault fires; 0 means unlimited. Hits
	// beyond the cap pass through clean (the site stays armed for Hits
	// accounting).
	Count int64
	// After suppresses the fault for the first After hits (fire on hit
	// After+1 onward) — "fail the third put" is After: 2.
	After int64
}

// site is one armed failpoint.
type site struct {
	spec  Spec
	hits  atomic.Int64 // evaluations since arming
	fired atomic.Int64 // faults actually delivered
	rng   atomic.Uint64
}

var (
	mu    sync.RWMutex
	sites map[string]*site
	armed atomic.Int32 // number of armed sites; 0 short-circuits Eval
)

// Enable arms name with spec (replacing any previous arming).
func Enable(name string, spec Spec) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*site)
	}
	if _, ok := sites[name]; !ok {
		armed.Add(1)
	}
	s := &site{spec: spec}
	s.rng.Store(splitmix64Seed(name))
	sites[name] = s
}

// Disable disarms name (a no-op when it was not armed).
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[name]; ok {
		delete(sites, name)
		armed.Add(-1)
	}
}

// Reset disarms every site.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(sites)))
	sites = nil
}

// Hits reports how many times name was evaluated since arming (0 when not
// armed).
func Hits(name string) int64 {
	mu.RLock()
	defer mu.RUnlock()
	if s, ok := sites[name]; ok {
		return s.hits.Load()
	}
	return 0
}

// Fired reports how many faults name actually delivered since arming.
func Fired(name string) int64 {
	mu.RLock()
	defer mu.RUnlock()
	if s, ok := sites[name]; ok {
		return s.fired.Load()
	}
	return 0
}

// Eval is the hook compiled into each site: it returns nil instantly when
// the site is not armed, and otherwise delivers the armed fault (error
// return, sleep, or panic) subject to Prob/Count/After.
func Eval(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.RLock()
	s := sites[name]
	mu.RUnlock()
	if s == nil {
		return nil
	}
	hit := s.hits.Add(1)
	if s.spec.After > 0 && hit <= s.spec.After {
		return nil
	}
	if s.spec.Prob > 0 && s.spec.Prob < 1 && s.draw() >= s.spec.Prob {
		return nil
	}
	if s.spec.Count > 0 && s.fired.Add(1) > s.spec.Count {
		s.fired.Add(-1)
		return nil
	} else if s.spec.Count == 0 {
		s.fired.Add(1)
	}
	switch s.spec.Mode {
	case ModeDelay:
		time.Sleep(s.spec.Delay)
		return nil
	case ModePanic:
		panic(PanicValue{Site: name})
	default:
		if s.spec.Err != nil {
			return s.spec.Err
		}
		return ErrInjected
	}
}

// draw advances the site's deterministic RNG and returns a uniform [0, 1).
func (s *site) draw() float64 {
	for {
		old := s.rng.Load()
		next := splitmix64(old)
		if s.rng.CompareAndSwap(old, next) {
			return float64(next>>11) / (1 << 53)
		}
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func splitmix64Seed(name string) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < len(name); i++ {
		h = splitmix64(h + uint64(name[i]))
	}
	return h
}

// Configure arms sites from a spec string — the grammar of the
// PARSAMPLE_FAILPOINTS environment variable and the daemon's -failpoints
// flag. Comma-separated entries of the form
//
//	site=mode[:arg][;prob=P][;count=N][;after=N]
//
// where mode is error, delay (arg: a time.Duration, e.g. delay:50ms) or
// panic. Examples:
//
//	pipeline.store.put=error
//	expr.sweep.tile=delay:2ms;prob=0.01
//	server.sse.write=error;count=3;after=10
//
// An empty string arms nothing. Returns an error on malformed specs (sites
// armed by earlier entries stay armed).
func Configure(cfg string) error {
	cfg = strings.TrimSpace(cfg)
	if cfg == "" {
		return nil
	}
	for _, ent := range strings.Split(cfg, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, rest, ok := strings.Cut(ent, "=")
		if !ok || name == "" {
			return fmt.Errorf("faultinject: %q is not site=mode[...]", ent)
		}
		var spec Spec
		parts := strings.Split(rest, ";")
		mode, arg, _ := strings.Cut(parts[0], ":")
		switch mode {
		case "error":
			spec.Mode = ModeError
		case "panic":
			spec.Mode = ModePanic
		case "delay":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return fmt.Errorf("faultinject: %s: bad delay %q: %v", name, arg, err)
			}
			spec.Mode = ModeDelay
			spec.Delay = d
		default:
			return fmt.Errorf("faultinject: %s: unknown mode %q (want error, delay, panic)", name, mode)
		}
		for _, kv := range parts[1:] {
			k, v, _ := strings.Cut(kv, "=")
			switch k {
			case "prob":
				p, err := strconv.ParseFloat(v, 64)
				if err != nil || p < 0 || p > 1 {
					return fmt.Errorf("faultinject: %s: bad prob %q", name, v)
				}
				spec.Prob = p
			case "count":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					return fmt.Errorf("faultinject: %s: bad count %q", name, v)
				}
				spec.Count = n
			case "after":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 0 {
					return fmt.Errorf("faultinject: %s: bad after %q", name, v)
				}
				spec.After = n
			default:
				return fmt.Errorf("faultinject: %s: unknown option %q", name, k)
			}
		}
		Enable(name, spec)
	}
	return nil
}
