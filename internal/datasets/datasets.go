// Package datasets provides the four evaluation networks used throughout the
// paper's empirical section, synthesized to match the published statistics:
//
//	YNG — GSE5078 young mice:        5,348 vertices /  7,277 edges
//	MID — GSE5078 middle-aged mice:  ~5,500 vertices / ~7,500 edges
//	UNT — GSE5140 untreated mice:    ~27,000 vertices / ~29,500 edges
//	CRE — GSE5140 creatine mice:     27,896 vertices / 30,296 edges
//
// (The paper reports exact sizes only for YNG and CRE; MID and UNT use the
// same dataset families, so they are synthesized at sibling sizes.)
//
// Each dataset embeds planted co-expression modules (the ground-truth
// "biological subsystems"), a synthetic GO DAG, and gene annotations in
// which module genes share deep terms. YNG/MID mimic the paper's observation
// that the preprocessed GSE5078 networks yield few biologically relevant
// clusters: their modules are sparser and annotated at shallower depth,
// so fewer clusters clear the AEES ≥ 3 bar.
package datasets

import (
	"sync"

	"parsample/internal/graph"
	"parsample/internal/ontology"
)

// Dataset is one evaluation network plus its ground truth and ontology.
type Dataset struct {
	Name    string
	G       *graph.Graph
	Modules [][]int32
	DAG     *ontology.DAG
	Ann     *ontology.Annotations
	Seed    int64
}

// Spec parameterizes dataset synthesis.
type Spec struct {
	Name        string
	Vertices    int
	Edges       int // total target edge count (background absorbs the slack)
	Modules     int
	MinSize     int
	MaxSize     int
	Density     float64 // within-module edge probability
	NoiseDeg    float64 // noisy edges per module vertex
	NoiseClumps float64 // clumpy noise attachments per module (see graph.ModuleSpec)
	ModuleDepth int     // GO depth of module terms (higher ⇒ higher AEES)
	Window      int     // id-space locality factor (see graph.ModuleSpec)
	Seed        int64
}

// Build synthesizes the dataset for a spec.
func Build(spec Spec) *Dataset {
	// Expected module edges, to keep the total near spec.Edges.
	avgSize := float64(spec.MinSize+spec.MaxSize) / 2
	moduleEdges := int(float64(spec.Modules) * spec.Density * avgSize * (avgSize - 1) / 2)
	noiseEdges := int(float64(spec.Modules) * avgSize * spec.NoiseDeg)
	bg := spec.Edges - moduleEdges - noiseEdges
	if bg < 0 {
		bg = 0
	}
	pr := graph.PlantedModules(spec.Vertices, bg, graph.ModuleSpec{
		Count:       spec.Modules,
		MinSize:     spec.MinSize,
		MaxSize:     spec.MaxSize,
		Density:     spec.Density,
		NoiseDeg:    spec.NoiseDeg,
		Window:      spec.Window,
		NoiseClumps: spec.NoiseClumps,
	}, spec.Seed)
	dag := ontology.Generate(ontology.GenerateSpec{Depth: 10, Branch: 3, Seed: spec.Seed + 1})
	ann := ontology.AnnotateModules(dag, spec.Vertices, pr.Modules, spec.ModuleDepth, spec.Seed+2)
	return &Dataset{
		Name:    spec.Name,
		G:       pr.G,
		Modules: pr.Modules,
		DAG:     dag,
		Ann:     ann,
		Seed:    spec.Seed,
	}
}

// Specs for the four networks. YNG/MID: smaller, modules annotated at
// moderate depth (the paper found few relevant clusters there). UNT/CRE:
// full-transcriptome sized with deeper module annotations.
var (
	yngSpec = Spec{
		Name: "YNG", Vertices: 5348, Edges: 7277,
		Modules: 12, MinSize: 6, MaxSize: 8, Density: 0.55, NoiseDeg: 0.4,
		NoiseClumps: 0.6, ModuleDepth: 4, Window: 3, Seed: 1001,
	}
	midSpec = Spec{
		Name: "MID", Vertices: 5520, Edges: 7490,
		Modules: 12, MinSize: 6, MaxSize: 8, Density: 0.55, NoiseDeg: 0.4,
		NoiseClumps: 0.6, ModuleDepth: 4, Window: 3, Seed: 1002,
	}
	untSpec = Spec{
		Name: "UNT", Vertices: 27030, Edges: 29480,
		Modules: 30, MinSize: 6, MaxSize: 9, Density: 0.55, NoiseDeg: 0.4,
		NoiseClumps: 0.8, ModuleDepth: 6, Window: 3, Seed: 1003,
	}
	creSpec = Spec{
		Name: "CRE", Vertices: 27896, Edges: 30296,
		Modules: 32, MinSize: 6, MaxSize: 9, Density: 0.55, NoiseDeg: 0.4,
		NoiseClumps: 0.8, ModuleDepth: 6, Window: 3, Seed: 1004,
	}
)

var cache sync.Map // name -> *Dataset

func cached(spec Spec) *Dataset {
	if v, ok := cache.Load(spec.Name); ok {
		return v.(*Dataset)
	}
	ds := Build(spec)
	actual, _ := cache.LoadOrStore(spec.Name, ds)
	return actual.(*Dataset)
}

// YNG returns the young-mice network (GSE5078 analogue). Cached.
func YNG() *Dataset { return cached(yngSpec) }

// MID returns the middle-aged-mice network (GSE5078 analogue). Cached.
func MID() *Dataset { return cached(midSpec) }

// UNT returns the untreated-mice network (GSE5140 analogue). Cached.
func UNT() *Dataset { return cached(untSpec) }

// CRE returns the creatine-supplemented-mice network (GSE5140 analogue).
// Cached.
func CRE() *Dataset { return cached(creSpec) }

// All returns the four datasets in the paper's order.
func All() []*Dataset { return []*Dataset{YNG(), MID(), UNT(), CRE()} }

// SpecFor returns the generation spec of a named dataset (for documentation
// and the datagen tool). The second result is false for unknown names.
func SpecFor(name string) (Spec, bool) {
	switch name {
	case "YNG":
		return yngSpec, true
	case "MID":
		return midSpec, true
	case "UNT":
		return untSpec, true
	case "CRE":
		return creSpec, true
	}
	return Spec{}, false
}
