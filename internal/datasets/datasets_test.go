package datasets

import (
	"math"
	"testing"

	"parsample/internal/mcode"
)

func TestSizesMatchPaper(t *testing.T) {
	yng := YNG()
	if yng.G.N() != 5348 {
		t.Fatalf("YNG n = %d, want 5348", yng.G.N())
	}
	if d := math.Abs(float64(yng.G.M()-7277)) / 7277; d > 0.05 {
		t.Fatalf("YNG m = %d, want ≈ 7277", yng.G.M())
	}
	cre := CRE()
	if cre.G.N() != 27896 {
		t.Fatalf("CRE n = %d, want 27896", cre.G.N())
	}
	if d := math.Abs(float64(cre.G.M()-30296)) / 30296; d > 0.05 {
		t.Fatalf("CRE m = %d, want ≈ 30296", cre.G.M())
	}
}

func TestAllDatasetsWellFormed(t *testing.T) {
	for _, ds := range All() {
		if ds.Name == "" || ds.G == nil || ds.DAG == nil || ds.Ann == nil {
			t.Fatalf("%s: incomplete dataset", ds.Name)
		}
		if len(ds.Modules) == 0 {
			t.Fatalf("%s: no planted modules", ds.Name)
		}
		if ds.Ann.NumGenes() != ds.G.N() {
			t.Fatalf("%s: annotations cover %d genes, graph has %d",
				ds.Name, ds.Ann.NumGenes(), ds.G.N())
		}
		// Sparse like the paper's networks: average degree between 2 and 4.
		avg := 2 * float64(ds.G.M()) / float64(ds.G.N())
		if avg < 1.5 || avg > 4.5 {
			t.Fatalf("%s: average degree %.2f out of the paper's regime", ds.Name, avg)
		}
	}
}

func TestDatasetsCached(t *testing.T) {
	if YNG() != YNG() {
		t.Fatal("YNG not cached")
	}
	if CRE() != CRE() {
		t.Fatal("CRE not cached")
	}
}

func TestModulesAreClusterable(t *testing.T) {
	// The original UNT/CRE networks must yield MCODE clusters (the paper
	// finds clusters in all original networks).
	for _, ds := range []*Dataset{UNT(), CRE()} {
		clusters := mcode.FindClusters(ds.G, mcode.DefaultParams())
		if len(clusters) < 5 {
			t.Fatalf("%s: only %d clusters found in original network", ds.Name, len(clusters))
		}
	}
}

func TestSpecFor(t *testing.T) {
	for _, name := range []string{"YNG", "MID", "UNT", "CRE"} {
		spec, ok := SpecFor(name)
		if !ok || spec.Name != name {
			t.Fatalf("SpecFor(%s) missing", name)
		}
	}
	if _, ok := SpecFor("NOPE"); ok {
		t.Fatal("unknown name accepted")
	}
}

func TestDeterministicBuild(t *testing.T) {
	spec, _ := SpecFor("YNG")
	a := Build(spec)
	b := Build(spec)
	if a.G.M() != b.G.M() || a.G.N() != b.G.N() {
		t.Fatal("dataset synthesis not deterministic")
	}
	for i, e := range a.G.Edges() {
		if b.G.Edges()[i] != e {
			t.Fatal("edge lists differ across builds")
		}
	}
}
