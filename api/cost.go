package api

// Cost estimation: a pure function from a request's declared dimensions to
// its predicted compute cost, in cost units. One unit ≈ one millisecond of
// single-threaded kernel time on the BENCH_6.json reference machine — the
// admission gate's currency (DESIGN.md §8). Estimates are admission
// weights, not SLOs: what matters is that a 4096×100 cold sweep weighs
// ~three orders of magnitude more than a warm dataset request, so a burst
// of the former cannot starve the latter.
//
// Calibration (BENCH_6.json, ns/op → ns per pair·sample):
//
//	build_network/pearson/float64/2048x64   16.58 ms / 2048·2047/2·64  ≈ 0.124 ns
//	build_network/pearson/float64/4096x100  110.3 ms / 4096·4095/2·100 ≈ 0.132 ns
//	build_network/pearson/float32/4096x100  68.8 ms  /   same          ≈ 0.082 ns
//
// so the sweep coefficients below are 1.3e-7 units (float64) and 0.85e-7
// units (float32) per pair·sample. The downstream chain (order → filter →
// cluster → score) on thresholded correlation networks is a small multiple
// of the vertex count; edge-list sources are dominated by parse plus
// per-edge kernel work.

// Sweep cost coefficients, units per correlated pair·sample.
const (
	costSweepF64 = 1.3e-7
	costSweepF32 = 0.85e-7
	// costSynthCell: synthesizing one matrix cell (units per cell).
	costSynthCell = 1e-6
	// costDownstreamVertex: order+filter+cluster+score per vertex of a
	// thresholded correlation network (units per gene).
	costDownstreamVertex = 2e-3
	// costEdgeListByte: parsing an inline edge list (≈50 MB/s).
	costEdgeListByte = 2e-5
	// costEdgeListEdge: per-edge kernel work (chordal filter dominates).
	costEdgeListEdge = 1.5e-3
	// edgeListBytesPerEdge approximates "u v\n" line width for edge-count
	// estimation from body size.
	edgeListBytesPerEdge = 12
	// costDataset: one built-in evaluation dataset end to end, cold (they
	// are paper-sized and nearly constant; the engine's cold YNG chain
	// measures ~60 ms).
	costDataset = 50
	// costBase: fixed per-request overhead (resolution, HTTP, marshalling).
	costBase = 1
)

// CostEstimate is a request's predicted compute cost.
type CostEstimate struct {
	// Units is the total, in cost units (≈ milliseconds of single-threaded
	// kernel time on the reference machine).
	Units float64 `json:"units"`
	// Source is the share spent materializing the input (synthesis or
	// parsing); Network the correlation sweep; Downstream the
	// order/filter/cluster/score chain.
	Source     float64 `json:"source"`
	Network    float64 `json:"network"`
	Downstream float64 `json:"downstream"`
}

// EstimateCost predicts the compute cost of one cold end-to-end run of r
// from its declared dimensions. It is a pure function of the normalized
// request (r is normalized internally when possible; an unnormalizable
// request estimates from the raw fields). Cache residency is deliberately
// outside the model — the serving layer discounts warm requests itself,
// because residency is server state, not request content.
func EstimateCost(r *Request) CostEstimate {
	if n, err := r.Normalized(); err == nil {
		r = n
	}
	var c CostEstimate
	switch {
	case r.Network.Synthesis != nil:
		s := r.Network.Synthesis
		pairs := float64(s.Genes) * float64(s.Genes-1) / 2
		samples := float64(s.Samples)
		coef := costSweepF64
		if cr := r.Network.Correlation; cr != nil && cr.Precision == "float32" {
			coef = costSweepF32
		}
		c.Source = float64(s.Genes) * samples * costSynthCell
		c.Network = pairs * samples * coef
		c.Downstream = float64(s.Genes) * costDownstreamVertex
	case r.Network.EdgeList != "":
		bytes := float64(len(r.Network.EdgeList))
		edges := bytes / edgeListBytesPerEdge
		c.Source = bytes * costEdgeListByte
		c.Downstream = edges * costEdgeListEdge
	case r.Network.Dataset != "":
		c.Downstream = costDataset
	}
	if r.Filter.Algorithm == AlgorithmNone {
		// No sampling stage; clustering the unfiltered network still runs,
		// so keep half the downstream weight.
		c.Downstream /= 2
	}
	c.Units = costBase + c.Source + c.Network + c.Downstream
	return c
}
