package api

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func synthReq() *Request {
	return &Request{Network: NetworkSource{Synthesis: &SynthesisSpec{Genes: 256, Samples: 32, Seed: 7}}}
}

func TestNormalizedFillsExplicitDefaults(t *testing.T) {
	n, err := synthReq().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Version != Version {
		t.Fatalf("version = %d, want %d", n.Version, Version)
	}
	s := n.Network.Synthesis
	if *s.Modules != 16 || *s.ModuleSize != 12 || *s.Noise != 0.1 || !*s.Ontology {
		t.Fatalf("synthesis defaults not filled: %+v", s)
	}
	c := n.Network.Correlation
	if c == nil || c.Statistic != "pearson" || *c.MinAbsR != 0.95 || *c.MaxP != 0.0005 || c.Precision != "float64" {
		t.Fatalf("correlation defaults not filled: %+v", c)
	}
	if n.Filter.Algorithm != "chordal-nocomm" || n.Filter.Ordering != "NO" || n.Filter.P != 1 {
		t.Fatalf("filter defaults not filled: %+v", n.Filter)
	}
	if *n.Cluster.MinScore != 3.0 || *n.Cluster.MinSize != 4 || *n.Cluster.VertexWeightPct != 0.2 ||
		!*n.Cluster.Haircut || *n.Cluster.FluffDensityThreshold != 0.1 {
		t.Fatalf("cluster defaults not filled: %+v", n.Cluster)
	}
	if !*n.Score.Enabled {
		t.Fatal("ontology-bearing synthesis should default scoring on")
	}
}

func TestNormalizedDoesNotMutateReceiver(t *testing.T) {
	r := synthReq()
	if _, err := r.Normalized(); err != nil {
		t.Fatal(err)
	}
	if r.Network.Synthesis.Modules != nil || r.Network.Correlation != nil || r.Filter.Algorithm != "" {
		t.Fatalf("Normalized mutated its receiver: %+v", r)
	}
}

func TestNormalizedAlgorithmNoneClearsIgnoredFields(t *testing.T) {
	r := &Request{
		Network: NetworkSource{EdgeList: "0 1\n1 2\n"},
		Filter:  FilterSpec{Algorithm: AlgorithmNone, Ordering: "HD", P: 8},
	}
	n, err := r.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Filter.Ordering != "" || n.Filter.P != 0 {
		t.Fatalf("none should clear ordering/p: %+v", n.Filter)
	}
	if *n.Score.Enabled {
		t.Fatal("edge list without ontology should default scoring off")
	}
	// Ignored knobs must not change the normalized bytes.
	r2 := &Request{
		Network: NetworkSource{EdgeList: "0 1\n1 2\n"},
		Filter:  FilterSpec{Algorithm: AlgorithmNone, Ordering: "RCM", P: 2},
	}
	n2, err := r2.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(n)
	b2, _ := json.Marshal(n2)
	if string(b1) != string(b2) {
		t.Fatalf("normalized forms differ:\n%s\n%s", b1, b2)
	}
}

func TestNormalizedPinsFluffThresholdWithoutFluff(t *testing.T) {
	th := 0.7
	r := synthReq()
	r.Cluster.FluffDensityThreshold = &th
	n, err := r.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if *n.Cluster.FluffDensityThreshold != 0.1 {
		t.Fatalf("threshold without fluff should normalize to the default, got %v", *n.Cluster.FluffDensityThreshold)
	}
	r.Cluster.Fluff = true
	n, err = r.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if *n.Cluster.FluffDensityThreshold != 0.7 {
		t.Fatalf("threshold with fluff should be honored, got %v", *n.Cluster.FluffDensityThreshold)
	}
}

func TestValidateRejections(t *testing.T) {
	zero := 0.0
	en := true
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"no source", Request{}, "exactly one"},
		{"two sources", Request{Network: NetworkSource{EdgeList: "0 1", Dataset: "YNG"}}, "exactly one"},
		{"bad dataset", Request{Network: NetworkSource{Dataset: "NOPE"}}, "unknown dataset"},
		{"bad version", Request{Version: 9, Network: NetworkSource{Dataset: "YNG"}}, "unsupported version"},
		{"bad algorithm", Request{Network: NetworkSource{Dataset: "YNG"}, Filter: FilterSpec{Algorithm: "quantum"}}, "unknown algorithm"},
		{"bad ordering", Request{Network: NetworkSource{Dataset: "YNG"}, Filter: FilterSpec{Ordering: "XX"}}, "unknown ordering"},
		{"negative p", Request{Network: NetworkSource{Dataset: "YNG"}, Filter: FilterSpec{P: -1}}, "non-negative"},
		{"zero minScore", Request{Network: NetworkSource{Dataset: "YNG"}, Cluster: ClusterSpec{MinScore: &zero}}, "minScore"},
		{"correlation on dataset", Request{Network: NetworkSource{Dataset: "YNG", Correlation: &CorrelationSpec{}}}, "matrix sources"},
		{"dag without ann", Request{Network: NetworkSource{EdgeList: "0 1"}, Score: ScoreSpec{DAG: "x"}}, "together"},
		{"dag on dataset", Request{Network: NetworkSource{Dataset: "YNG"}, Score: ScoreSpec{DAG: "x", Annotations: "y"}}, "edge-list source"},
		{"scoring without ontology", Request{Network: NetworkSource{EdgeList: "0 1"}, Score: ScoreSpec{Enabled: &en}}, "no ontology"},
		{"tiny synthesis", Request{Network: NetworkSource{Synthesis: &SynthesisSpec{Genes: 10, Samples: 2}}}, "samples > 2"},
		{"bad precision", Request{Network: NetworkSource{
			Synthesis:   &SynthesisSpec{Genes: 256, Samples: 32},
			Correlation: &CorrelationSpec{Precision: "float16"},
		}}, "precision"},
	}
	for _, tc := range cases {
		_, err := tc.req.Normalized()
		var ae *Error
		if !errors.As(err, &ae) || ae.Code != CodeBadRequest {
			t.Fatalf("%s: err = %v, want bad_request", tc.name, err)
		}
		if !strings.Contains(ae.Message, tc.want) {
			t.Fatalf("%s: message %q does not mention %q", tc.name, ae.Message, tc.want)
		}
	}
}

// The fingerprint identifies the input data, not the run parameters: filter
// and cluster knobs must not change it (they live in the engine's artifact
// keys), while any change to the source or inline ontology must.
func TestFingerprintCoversDataNotParameters(t *testing.T) {
	base, err := synthReq().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	fp := base.Fingerprint()
	if !strings.HasPrefix(fp, "v1:") {
		t.Fatalf("fingerprint %q lacks version prefix", fp)
	}

	r := synthReq()
	r.Filter = FilterSpec{Algorithm: "randomwalk-par", Ordering: "RAND", P: 16, Seed: 99}
	ms := 1.5
	r.Cluster.MinScore = &ms
	n, err := r.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Fingerprint() != fp {
		t.Fatal("run parameters changed the data fingerprint")
	}

	// Correlation parameters are run parameters too (they live in the
	// network-stage artifact key): requests differing only in thresholds,
	// sign gate or precision share one fingerprint — which is what lets
	// the engine share a resolved matrix and coalesce their sweeps.
	r = synthReq()
	minR, maxP := 0.5, 0.01
	r.Network.Correlation = &CorrelationSpec{Statistic: "spearman", MinAbsR: &minR, MaxP: &maxP, Negative: true, Precision: "float32"}
	n, err = r.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Fingerprint() != fp {
		t.Fatal("correlation parameters changed the data fingerprint")
	}

	r = synthReq()
	r.Network.Synthesis.Seed = 8
	n, err = r.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.Fingerprint() == fp {
		t.Fatal("different synthesis seed kept the fingerprint")
	}

	e1, _ := (&Request{Network: NetworkSource{EdgeList: "0 1\n"}}).Normalized()
	e2, _ := (&Request{Network: NetworkSource{EdgeList: "0 1\n"}, Score: ScoreSpec{DAG: "[Term]\nid: 0\n", Annotations: "0\t0\n"}}).Normalized()
	if e1.Fingerprint() == e2.Fingerprint() {
		t.Fatal("inline ontology did not change the fingerprint")
	}
}

func TestReadRequestStrictness(t *testing.T) {
	if _, err := UnmarshalRequest([]byte(`{"network":{"dataset":"YNG"},"filterr":{}}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := UnmarshalRequest([]byte(`{"network":{"dataset":"YNG"}} trailing`)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	req, err := UnmarshalRequest([]byte(`{"network":{"dataset":"YNG"},"filter":{"algorithm":"chordal-seq","seed":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Network.Dataset != "YNG" || req.Filter.Seed != 3 {
		t.Fatalf("decoded request: %+v", req)
	}
}

// A normalized request survives a JSON round trip byte-identically — the
// property that makes the normalized form a stable wire identity.
func TestNormalizedRoundTripStable(t *testing.T) {
	n, err := synthReq().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(n)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRequest(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("round trip changed bytes:\n%s\n%s", b1, b2)
	}
}

func TestNameListsCoverKernels(t *testing.T) {
	algs := Algorithms()
	if len(algs) != 8 || algs[len(algs)-1] != AlgorithmNone {
		t.Fatalf("algorithms = %v", algs)
	}
	ords := Orderings()
	if len(ords) != 5 {
		t.Fatalf("orderings = %v", ords)
	}
	for _, s := range append(algs[:len(algs)-1], ords...) {
		if strings.Contains(s, "(") {
			t.Fatalf("unnamed enum leaked into wire names: %q", s)
		}
	}
}
