package api

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// Synthesis dimension caps (see validate): bound the memory and compute a
// single request can demand from a shared daemon.
const (
	// MaxSynthesisGenes caps the gene dimension (and hence the O(genes²)
	// correlation sweep).
	MaxSynthesisGenes = 32768
	// MaxSynthesisSamples caps the sample dimension.
	MaxSynthesisSamples = 2048
	// MaxSynthesisCells caps genes×samples (the matrix is 8 bytes per
	// cell: 2²⁵ cells = 256 MiB).
	MaxSynthesisCells = 1 << 25
)

// Normalized validates r and returns a deep copy with every default
// resolved into an explicit value: pointers are filled, names are spelled
// out, and fields that the selected algorithm ignores are cleared. Two
// requests that normalize to the same bytes denote the same computation.
// The receiver is not modified. Validation failures return a *Error with
// code bad_request.
func (r *Request) Normalized() (*Request, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	n := r.clone()
	n.Version = Version

	// Network source defaults.
	if n.Network.Synthesis != nil {
		s := n.Network.Synthesis
		s.Modules = fillInt(s.Modules, 16)
		s.ModuleSize = fillInt(s.ModuleSize, 12)
		s.Noise = fillFloat(s.Noise, 0.1)
		s.Ontology = fillBool(s.Ontology, true)
		if n.Network.Correlation == nil {
			n.Network.Correlation = &CorrelationSpec{}
		}
		c := n.Network.Correlation
		if c.Statistic == "" {
			c.Statistic = "pearson"
		}
		c.MinAbsR = fillFloat(c.MinAbsR, 0.95)
		c.MaxP = fillFloat(c.MaxP, 0.0005)
		if c.Precision == "" {
			c.Precision = "float64"
		}
	}

	// Filter defaults. "none" ignores ordering and P entirely, so they are
	// cleared rather than defaulted — requests differing only in ignored
	// fields normalize to the same bytes.
	if n.Filter.Algorithm == "" {
		n.Filter.Algorithm = "chordal-nocomm"
	}
	if n.Filter.Algorithm == AlgorithmNone {
		n.Filter.Ordering = ""
		n.Filter.P = 0
	} else {
		if n.Filter.Ordering == "" {
			n.Filter.Ordering = "NO"
		}
		if n.Filter.P < 1 {
			n.Filter.P = 1
		}
	}

	// Cluster defaults (the paper's MCODE configuration).
	n.Cluster.MinScore = fillFloat(n.Cluster.MinScore, 3.0)
	n.Cluster.MinSize = fillInt(n.Cluster.MinSize, 4)
	n.Cluster.VertexWeightPct = fillFloat(n.Cluster.VertexWeightPct, 0.2)
	n.Cluster.Haircut = fillBool(n.Cluster.Haircut, true)
	if !n.Cluster.Fluff {
		// The threshold is meaningless without fluff; pinning it to the
		// default keeps requests that differ only in an ignored knob on one
		// normalized form (and one cache key).
		n.Cluster.FluffDensityThreshold = nil
	}
	n.Cluster.FluffDensityThreshold = fillFloat(n.Cluster.FluffDensityThreshold, 0.1)

	// Scoring defaults to on exactly when the source carries an ontology.
	n.Score.Enabled = fillBool(n.Score.Enabled, n.hasOntology())
	return n, nil
}

// hasOntology reports whether the request's source provides an ontology to
// score against.
func (r *Request) hasOntology() bool {
	switch {
	case r.Score.DAG != "":
		return true
	case r.Network.Dataset != "":
		return true
	case r.Network.Synthesis != nil:
		return r.Network.Synthesis.Ontology == nil || *r.Network.Synthesis.Ontology
	}
	return false
}

// validate checks structure and ranges on the raw (pre-normalization)
// request.
func (r *Request) validate() error {
	if r.Version != 0 && r.Version != Version {
		return Errorf(CodeBadRequest, "unsupported version %d (this server speaks v%d)", r.Version, Version)
	}
	src := 0
	for _, set := range []bool{r.Network.EdgeList != "", r.Network.Dataset != "", r.Network.Synthesis != nil} {
		if set {
			src++
		}
	}
	if src != 1 {
		return Errorf(CodeBadRequest, "network needs exactly one of edgeList, dataset, synthesis (got %d)", src)
	}
	if r.Network.Dataset != "" && !contains(datasetNames, r.Network.Dataset) {
		return Errorf(CodeBadRequest, "unknown dataset %q (have %s)", r.Network.Dataset, strings.Join(datasetNames, ", "))
	}
	if r.Network.Correlation != nil {
		if r.Network.Synthesis == nil {
			return Errorf(CodeBadRequest, "correlation options apply only to matrix sources (synthesis)")
		}
		c := r.Network.Correlation
		if c.Statistic != "" && c.Statistic != "pearson" && c.Statistic != "spearman" {
			return Errorf(CodeBadRequest, "unknown correlation statistic %q (want pearson or spearman)", c.Statistic)
		}
		if c.MinAbsR != nil && (*c.MinAbsR < 0 || *c.MinAbsR > 1) {
			return Errorf(CodeBadRequest, "minAbsR %v out of range [0, 1]", *c.MinAbsR)
		}
		if c.MaxP != nil && (*c.MaxP < 0 || *c.MaxP > 1) {
			return Errorf(CodeBadRequest, "maxP %v out of range [0, 1]", *c.MaxP)
		}
		if c.Precision != "" && c.Precision != "float64" && c.Precision != "float32" {
			return Errorf(CodeBadRequest, "unknown correlation precision %q (want float64 or float32)", c.Precision)
		}
	}
	if s := r.Network.Synthesis; s != nil {
		if s.Genes <= 0 || s.Samples <= 2 {
			return Errorf(CodeBadRequest, "synthesis needs genes > 0 and samples > 2 (got %d×%d)", s.Genes, s.Samples)
		}
		// Dimension caps: the spec amplifies into a genes×samples float64
		// matrix and an O(genes²) correlation sweep, so an unbounded request
		// is a remote OOM/CPU attack on the daemon. The caps comfortably
		// cover the paper's largest evaluation shapes (27,896 vertices;
		// 2048×64 benchmark matrices).
		if s.Genes > MaxSynthesisGenes || s.Samples > MaxSynthesisSamples {
			return Errorf(CodeBadRequest, "synthesis shape %d×%d exceeds the %d×%d cap", s.Genes, s.Samples, MaxSynthesisGenes, MaxSynthesisSamples)
		}
		if s.Genes*s.Samples > MaxSynthesisCells {
			return Errorf(CodeBadRequest, "synthesis matrix of %d cells exceeds the %d-cell cap", s.Genes*s.Samples, MaxSynthesisCells)
		}
		if (s.Modules != nil && *s.Modules < 0) || (s.ModuleSize != nil && *s.ModuleSize < 0) {
			return Errorf(CodeBadRequest, "synthesis modules and moduleSize must be non-negative")
		}
		if s.Noise != nil && *s.Noise < 0 {
			return Errorf(CodeBadRequest, "synthesis noise must be non-negative")
		}
	}
	if a := r.Filter.Algorithm; a != "" && a != AlgorithmNone && !contains(Algorithms(), a) {
		return Errorf(CodeBadRequest, "unknown algorithm %q (have %s)", a, strings.Join(Algorithms(), ", "))
	}
	if o := r.Filter.Ordering; o != "" && !contains(Orderings(), o) {
		return Errorf(CodeBadRequest, "unknown ordering %q (have %s)", o, strings.Join(Orderings(), ", "))
	}
	if r.Filter.P < 0 {
		return Errorf(CodeBadRequest, "filter p must be non-negative (got %d)", r.Filter.P)
	}
	// The MCODE kernel treats zero as "use the default", so an explicit
	// non-positive knob is rejected instead of silently remapped.
	if v := r.Cluster.MinScore; v != nil && *v <= 0 {
		return Errorf(CodeBadRequest, "cluster minScore must be positive (got %v); omit it for the default 3.0", *v)
	}
	if v := r.Cluster.MinSize; v != nil && *v < 1 {
		return Errorf(CodeBadRequest, "cluster minSize must be at least 1 (got %d); omit it for the default 4", *v)
	}
	if v := r.Cluster.VertexWeightPct; v != nil && (*v <= 0 || *v >= 1) {
		return Errorf(CodeBadRequest, "cluster vertexWeightPct must be in (0, 1) (got %v)", *v)
	}
	if v := r.Cluster.FluffDensityThreshold; v != nil && *v <= 0 {
		return Errorf(CodeBadRequest, "cluster fluffDensityThreshold must be positive (got %v)", *v)
	}
	if r.DeadlineMillis < 0 {
		return Errorf(CodeBadRequest, "deadline_ms must be non-negative (got %d); omit it for no deadline", r.DeadlineMillis)
	}
	if (r.Score.DAG == "") != (r.Score.Annotations == "") {
		return Errorf(CodeBadRequest, "score dag and annotations must be provided together")
	}
	if r.Score.DAG != "" && r.Network.EdgeList == "" {
		return Errorf(CodeBadRequest, "an inline ontology is only valid with an edge-list source (dataset and synthesis sources carry their own)")
	}
	if r.Score.Enabled != nil && *r.Score.Enabled && !r.hasOntology() {
		return Errorf(CodeBadRequest, "score.enabled is true but the request has no ontology (use a dataset, a synthesis with ontology, or inline dag+annotations)")
	}
	return nil
}

// Fingerprint is the content identity of the request's input data: a hash
// of the normalized network source and the inline ontology (the per-run
// parameters — correlation thresholds, filter variant, cluster knobs,
// seeds — are carried in the engine's artifact keys instead). The pipeline
// uses it as the cache namespace, so two requests with equal fingerprints
// share network, order, filter, cluster and score artifacts; in particular
// requests that differ only in correlation parameters share one resolved
// matrix, which is what lets the engine coalesce their sweeps into a
// single kernel pass. The identity is the source text: two edge lists that
// parse to the same graph but differ in whitespace fingerprint differently
// (and merely compute twice — never incorrectly). Call on a normalized
// request; normalization-irrelevant spellings of the same source would
// otherwise fingerprint apart.
func (r *Request) Fingerprint() string {
	net := r.Network
	net.Correlation = nil // a run parameter, not data identity
	id := struct {
		Network NetworkSource `json:"network"`
		DAG     string        `json:"dag,omitempty"`
		Ann     string        `json:"ann,omitempty"`
	}{net, r.Score.DAG, r.Score.Annotations}
	b, err := json.Marshal(id)
	if err != nil {
		// Marshalling a struct of strings, ints and floats cannot fail.
		panic(fmt.Sprintf("api: fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return "v1:" + hex.EncodeToString(sum[:16])
}

// clone returns a deep copy of r (all pointer fields re-allocated).
func (r *Request) clone() *Request {
	n := *r
	if r.Network.Synthesis != nil {
		s := *r.Network.Synthesis
		s.Modules = copyInt(s.Modules)
		s.ModuleSize = copyInt(s.ModuleSize)
		s.Noise = copyFloat(s.Noise)
		s.Ontology = copyBool(s.Ontology)
		n.Network.Synthesis = &s
	}
	if r.Network.Correlation != nil {
		c := *r.Network.Correlation
		c.MinAbsR = copyFloat(c.MinAbsR)
		c.MaxP = copyFloat(c.MaxP)
		n.Network.Correlation = &c
	}
	n.Cluster.MinScore = copyFloat(r.Cluster.MinScore)
	n.Cluster.MinSize = copyInt(r.Cluster.MinSize)
	n.Cluster.VertexWeightPct = copyFloat(r.Cluster.VertexWeightPct)
	n.Cluster.Haircut = copyBool(r.Cluster.Haircut)
	n.Cluster.FluffDensityThreshold = copyFloat(r.Cluster.FluffDensityThreshold)
	n.Score.Enabled = copyBool(r.Score.Enabled)
	return &n
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func fillInt(p *int, def int) *int {
	if p == nil {
		return &def
	}
	return p
}

func fillFloat(p *float64, def float64) *float64 {
	if p == nil {
		return &def
	}
	return p
}

func fillBool(p *bool, def bool) *bool {
	if p == nil {
		return &def
	}
	return p
}

func copyInt(p *int) *int {
	if p == nil {
		return nil
	}
	v := *p
	return &v
}

func copyFloat(p *float64) *float64 {
	if p == nil {
		return nil
	}
	v := *p
	return &v
}

func copyBool(p *bool) *bool {
	if p == nil {
		return nil
	}
	v := *p
	return &v
}
