package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ReadRequest decodes a Request from JSON, rejecting unknown fields (a typo
// in an optional knob should fail loudly, not silently select a default)
// and trailing garbage.
func ReadRequest(r io.Reader) (*Request, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	req := &Request{}
	if err := dec.Decode(req); err != nil {
		// The cause is preserved: transport layers classify wrapped reader
		// failures (e.g. http.MaxBytesError → a structured 413) with
		// errors.As through the returned *Error.
		return nil, WrapError(CodeBadRequest, err, "decode request: %v", err)
	}
	if dec.More() {
		return nil, Errorf(CodeBadRequest, "trailing data after request body")
	}
	return req, nil
}

// UnmarshalRequest is ReadRequest over a byte slice.
func UnmarshalRequest(b []byte) (*Request, error) {
	return ReadRequest(bytes.NewReader(b))
}

// EdgeListSource slurps an edge list into an inline network source. The
// text is carried verbatim: it is both the parse input and the content
// identity (Fingerprint).
func EdgeListSource(r io.Reader) (NetworkSource, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return NetworkSource{}, fmt.Errorf("read edge list: %w", err)
	}
	return NetworkSource{EdgeList: string(b)}, nil
}

// EdgeListFile slurps an edge-list file into an inline network source; an
// empty path reads stdin. This is the shared front end of the file-driven
// CLIs (clusters, netstat, parsample request).
func EdgeListFile(path string) (NetworkSource, error) {
	if path == "" {
		return EdgeListSource(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return NetworkSource{}, err
	}
	defer f.Close()
	src, err := EdgeListSource(f)
	if err != nil {
		return NetworkSource{}, fmt.Errorf("%s: %w", path, err)
	}
	return src, nil
}

// InlineOntologyFiles slurps a DAG file (internal/ontology.WriteDAG format)
// and an annotations file ("gene<TAB>term" lines) into an inline ScoreSpec.
func InlineOntologyFiles(dagPath, annPath string) (ScoreSpec, error) {
	dag, err := os.ReadFile(dagPath)
	if err != nil {
		return ScoreSpec{}, err
	}
	ann, err := os.ReadFile(annPath)
	if err != nil {
		return ScoreSpec{}, err
	}
	return ScoreSpec{DAG: string(dag), Annotations: string(ann)}, nil
}
