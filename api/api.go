// Package api defines the versioned, JSON-serializable request/response
// schema of the parsample service: the wire form of one end-to-end pipeline
// run (network source → sampling filter → MCODE clusters → AEES scores).
//
// A Request names its network source (an inline edge list, one of the
// paper's evaluation datasets, or a synthesized expression matrix), the
// filter variant (algorithm × ordering × P × seed), and the clustering /
// scoring options. Optional knobs whose zero value would be ambiguous are
// pointers: nil selects the documented default, a set pointer is honored
// literally. Normalize resolves every default into an explicit value, so a
// normalized Request is self-describing — two requests that normalize to
// the same bytes denote the same computation, which is exactly the identity
// the pipeline engine's artifact store caches under (see Fingerprint).
//
// A Response is a pure function of its normalized Request: it carries no
// timestamps, durations, or cache provenance, so repeated runs of one
// request marshal to byte-identical JSON (the property the determinism
// tests assert and the HTTP daemon's caching relies on). Progress and
// cache provenance travel out of band: the daemon reports per-stage events
// over SSE and a cache header (see internal/server).
//
// Compatibility policy: Version is 1. Within v1, fields are only added
// (never renamed, removed, or repurposed), added fields default to the
// pre-addition behavior when absent, and unknown fields are rejected by the
// daemon so typos fail loudly instead of silently selecting defaults. A
// breaking change bumps Version and the /v1/ URL prefix.
package api

import (
	"fmt"

	"parsample/internal/graph"
	"parsample/internal/sampling"
)

// Version is the schema version this package implements.
const Version = 1

// Request is one end-to-end pipeline run in wire form.
type Request struct {
	// Version is the schema version; 0 normalizes to the current Version.
	Version int `json:"version"`
	// Network selects the input network.
	Network NetworkSource `json:"network"`
	// Filter selects the sampling variant.
	Filter FilterSpec `json:"filter"`
	// Cluster configures MCODE.
	Cluster ClusterSpec `json:"cluster"`
	// Score configures AEES scoring against an ontology.
	Score ScoreSpec `json:"score"`
	// Output selects optional response payloads.
	Output OutputSpec `json:"output"`
	// DeadlineMillis bounds the run's wall time in milliseconds, measured
	// from when the server starts executing (queue time under admission
	// control does not count — a queued request whose deadline expires is
	// rejected instead). 0 means no deadline. A run that exceeds its
	// deadline is cancelled mid-kernel and answered with a structured
	// deadline_exceeded error. Deadlines are run parameters: they take no
	// part in cache identity, so requests differing only in deadline share
	// every cached artifact.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// NetworkSource selects the input network. Exactly one of EdgeList,
// Dataset, or Synthesis must be set.
type NetworkSource struct {
	// EdgeList is an inline whitespace edge list (one "u v" pair per line,
	// '#' comments, optional "# n m" header) — the format of
	// parsample.ReadNetwork.
	EdgeList string `json:"edgeList,omitempty"`
	// Dataset names one of the paper's evaluation networks (YNG, MID, UNT,
	// CRE). Dataset sources carry their own ontology, so scoring is
	// available without an inline one.
	Dataset string `json:"dataset,omitempty"`
	// Synthesis builds a correlation network from a synthesized expression
	// matrix with planted co-expression modules.
	Synthesis *SynthesisSpec `json:"synthesis,omitempty"`
	// Correlation configures correlation-network construction for matrix
	// sources (Synthesis). Must be unset for edge-list and dataset sources.
	Correlation *CorrelationSpec `json:"correlation,omitempty"`
}

// SynthesisSpec parameterizes the synthetic expression matrix (the stand-in
// for the paper's GSE5078/GSE5140 microarrays, DESIGN.md §1).
type SynthesisSpec struct {
	// Genes × Samples is the matrix shape. Both required.
	Genes   int `json:"genes"`
	Samples int `json:"samples"`
	// Modules is the number of planted co-expression modules (default 16).
	Modules *int `json:"modules,omitempty"`
	// ModuleSize is the genes per module (default 12).
	ModuleSize *int `json:"moduleSize,omitempty"`
	// Noise is the within-module noise std-dev (default 0.1).
	Noise *float64 `json:"noise,omitempty"`
	// Seed drives the synthesis (and the generated ontology). The seed is
	// used literally; there is no sentinel value.
	Seed int64 `json:"seed"`
	// Ontology controls whether a matching GO-like DAG and annotations are
	// generated over the planted modules, enabling the scoring stage
	// (default true).
	Ontology *bool `json:"ontology,omitempty"`
}

// CorrelationSpec configures correlation-network construction.
type CorrelationSpec struct {
	// Statistic is "pearson" (default) or "spearman".
	Statistic string `json:"statistic,omitempty"`
	// MinAbsR is the minimum |correlation| (default 0.95; an explicit 0
	// disables the floor).
	MinAbsR *float64 `json:"minAbsR,omitempty"`
	// MaxP is the maximum p-value (default 0.0005; an explicit 0 keeps only
	// perfect correlations).
	MaxP *float64 `json:"maxP,omitempty"`
	// Negative admits strong negative correlations as edges (default false).
	Negative bool `json:"negative"`
	// Precision is the sweep arithmetic: "float64" (default) or "float32".
	// The float32 engine is faster and lighter but returns the exact same
	// network — near-threshold pairs are re-decided in float64 — so this
	// is a performance knob, never a results knob.
	Precision string `json:"precision,omitempty"`
}

// AlgorithmNone is the filter algorithm that skips sampling entirely: the
// pipeline clusters (and scores) the unfiltered input network.
const AlgorithmNone = "none"

// FilterSpec selects the sampling variant.
type FilterSpec struct {
	// Algorithm is one of Algorithms() — chordal-seq, chordal-comm,
	// chordal-nocomm, randomwalk-seq, randomwalk-par, forestfire-seq,
	// forestfire-par — or "none" to skip filtering (default
	// chordal-nocomm).
	Algorithm string `json:"algorithm,omitempty"`
	// Ordering is the vertex processing order, one of Orderings(): NO, HD,
	// LD, RCM, RAND (default NO). Ignored (and normalized away) when
	// Algorithm is "none".
	Ordering string `json:"ordering,omitempty"`
	// P is the number of simulated processors (default 1).
	P int `json:"p,omitempty"`
	// Seed drives randomized filters and the RAND ordering, used literally
	// (the ordering shuffle and the samplers draw from decorrelated streams
	// derived from it — see parsample.FilterOptions.Seed).
	Seed int64 `json:"seed"`
}

// ClusterSpec configures MCODE. All knobs must be positive when set; the
// underlying kernel treats zero as "default", so an explicit zero is
// rejected rather than silently remapped.
type ClusterSpec struct {
	// MinScore filters reported clusters (default 3.0, the paper's bar).
	MinScore *float64 `json:"minScore,omitempty"`
	// MinSize filters clusters smaller than this many vertices (default 4).
	MinSize *int `json:"minSize,omitempty"`
	// VertexWeightPct is the MCODE node-score cutoff (default 0.2).
	VertexWeightPct *float64 `json:"vertexWeightPct,omitempty"`
	// Haircut removes vertices with fewer than 2 in-complex connections
	// (default true).
	Haircut *bool `json:"haircut,omitempty"`
	// Fluff enables MCODE fluff post-processing (default false).
	Fluff bool `json:"fluff"`
	// FluffDensityThreshold is the fluff density bar (default 0.1; only
	// meaningful with Fluff).
	FluffDensityThreshold *float64 `json:"fluffDensityThreshold,omitempty"`
}

// ScoreSpec configures AEES scoring. Dataset and ontology-bearing synthesis
// sources carry their own ontology; edge-list sources may supply one inline.
type ScoreSpec struct {
	// Enabled turns the scoring stage on or off. Default: true when the
	// network source has an ontology (dataset, synthesis with Ontology, or
	// inline DAG+Annotations), false otherwise. Enabling it without an
	// ontology is a validation error.
	Enabled *bool `json:"enabled,omitempty"`
	// DAG is an inline ontology in the format of internal/ontology.WriteDAG
	// ([Term]/id:/is_a: stanzas). Requires Annotations; only valid with
	// edge-list sources.
	DAG string `json:"dag,omitempty"`
	// Annotations is an inline gene→term table ("gene<TAB>term" lines).
	Annotations string `json:"annotations,omitempty"`
}

// OutputSpec selects optional response payloads.
type OutputSpec struct {
	// Edges includes the filtered network's edge list in the response
	// (default false: counts only — the list can be large).
	Edges bool `json:"edges"`
}

// Response is the result of one pipeline run. It is a pure function of the
// normalized request: repeated runs marshal to byte-identical JSON.
type Response struct {
	// Version echoes the schema version.
	Version int `json:"version"`
	// Request is the normalized request this response answers.
	Request *Request `json:"request"`
	// Network describes the input (or built correlation) network.
	Network NetworkInfo `json:"network"`
	// Filtered describes the sampled subgraph; nil when the filter
	// algorithm was "none".
	Filtered *FilteredInfo `json:"filtered,omitempty"`
	// Clusters are the MCODE complexes of the (filtered) network.
	Clusters []Cluster `json:"clusters"`
	// Scores are the clusters' AEES summaries, parallel to Clusters; absent
	// when scoring was disabled.
	Scores []ClusterScore `json:"scores,omitempty"`
}

// NetworkInfo summarizes a network.
type NetworkInfo struct {
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
}

// FilteredInfo summarizes the sampling stage.
type FilteredInfo struct {
	// Edges is the sampled subgraph's edge count.
	Edges int `json:"edges"`
	// BorderEdges counts cross-partition edges in the input; Duplicates
	// counts border edges independently admitted by more than one
	// processor.
	BorderEdges int `json:"borderEdges"`
	Duplicates  int `json:"duplicates"`
	// EdgeList is the sampled edge list (u < v, sorted), present only when
	// Output.Edges was requested.
	EdgeList [][2]int32 `json:"edgeList,omitempty"`
}

// Cluster is one MCODE complex.
type Cluster struct {
	ID       int     `json:"id"`
	Vertices []int32 `json:"vertices"`
	Edges    int     `json:"edges"`
	Density  float64 `json:"density"`
	Score    float64 `json:"score"`
}

// ClusterScore is one cluster's AEES summary.
type ClusterScore struct {
	ClusterID     int     `json:"clusterId"`
	AEES          float64 `json:"aees"`
	MaxEdgeScore  int     `json:"maxEdgeScore"`
	DominantTerm  int     `json:"dominantTerm"`
	DominantCount int     `json:"dominantCount"`
	Edges         int     `json:"edges"`
}

// Error is the structured error body every non-2xx daemon response carries.
type Error struct {
	// Code is a stable machine-readable class: bad_request, not_found,
	// cancelled, internal, payload_too_large, overloaded, over_capacity,
	// degraded, deadline_exceeded.
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
	// RetryAfterSec is the server's suggested retry delay for load-shedding
	// rejections (overloaded, over_capacity, degraded); it mirrors the HTTP
	// Retry-After header so non-HTTP consumers see the same hint. 0 on
	// errors retrying won't fix.
	RetryAfterSec int `json:"retryAfterSec,omitempty"`

	// cause preserves the underlying error (errors.Is/As through Unwrap) so
	// transport layers can classify wrapped failures — e.g. the body-limit
	// path detecting http.MaxBytesError behind a decode error.
	cause error
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Code + ": " + e.Message }

// Unwrap exposes the underlying cause to errors.Is and errors.As.
func (e *Error) Unwrap() error { return e.cause }

// Errorf builds an *Error with a formatted message.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// WrapError builds an *Error whose cause is preserved for errors.Is/As.
func WrapError(code string, cause error, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...), cause: cause}
}

// Error codes.
const (
	CodeBadRequest = "bad_request"
	CodeNotFound   = "not_found"
	CodeCancelled  = "cancelled"
	CodeInternal   = "internal"
	// CodePayloadTooLarge: the request body exceeded the daemon's body
	// limit (HTTP 413).
	CodePayloadTooLarge = "payload_too_large"
	// CodeOverloaded: transient load shedding — the admission queue or the
	// client's fair-share budget is full; retry after RetryAfterSec
	// (HTTP 429).
	CodeOverloaded = "overloaded"
	// CodeOverCapacity: the request can never be admitted as posed — its
	// estimated cost exceeds the daemon's whole admission budget, or its
	// deadline is shorter than its estimated compute time (HTTP 503).
	CodeOverCapacity = "over_capacity"
	// CodeDegraded: the daemon is under sustained pressure and is shedding
	// expensive cold work to keep answering cheap requests; retry after
	// RetryAfterSec (HTTP 503).
	CodeDegraded = "degraded"
	// CodeDeadlineExceeded: the run was cancelled because its deadline_ms
	// expired mid-flight (HTTP 504).
	CodeDeadlineExceeded = "deadline_exceeded"
)

// Datasets lists the named evaluation networks a request may reference.
var datasetNames = []string{"YNG", "MID", "UNT", "CRE"}

// Datasets returns the wire names of the built-in evaluation datasets.
func Datasets() []string { return append([]string(nil), datasetNames...) }

// Algorithms returns the wire names of the sampling filters, plus
// AlgorithmNone. The names are derived from the kernel enum so they cannot
// drift from the implementation.
func Algorithms() []string {
	out := make([]string, 0, len(sampling.All)+1)
	for _, a := range sampling.All {
		out = append(out, a.String())
	}
	return append(out, AlgorithmNone)
}

// Orderings returns the wire names of the vertex orderings.
func Orderings() []string {
	all := append(append([]graph.Ordering(nil), graph.AllOrderings...), graph.RandomOrder)
	out := make([]string, len(all))
	for i, o := range all {
		out[i] = o.String()
	}
	return out
}
