package api

import (
	"errors"
	"strings"
	"testing"
)

func costSynthReq(genes, samples int, precision string) *Request {
	r := &Request{Network: NetworkSource{Synthesis: &SynthesisSpec{Genes: genes, Samples: samples, Seed: 1}}}
	if precision != "" {
		r.Network.Correlation = &CorrelationSpec{Precision: precision}
	}
	return r
}

// The cost model's load-bearing property is ordering: bigger sweeps must
// weigh more, float32 less than float64, and a cold 4096×100 sweep must
// outweigh a cold dataset request. (Warm-request discounting is server
// state, applied at the admission layer, not here.)
func TestEstimateCostOrdering(t *testing.T) {
	small := EstimateCost(costSynthReq(192, 24, ""))
	mid := EstimateCost(costSynthReq(2048, 64, ""))
	big := EstimateCost(costSynthReq(4096, 100, ""))
	if !(small.Units < mid.Units && mid.Units < big.Units) {
		t.Fatalf("cost not monotone in matrix shape: %v %v %v", small.Units, mid.Units, big.Units)
	}
	f32 := EstimateCost(costSynthReq(4096, 100, "float32"))
	if f32.Units >= big.Units {
		t.Fatalf("float32 sweep (%v) not cheaper than float64 (%v)", f32.Units, big.Units)
	}
	ds := EstimateCost(&Request{Network: NetworkSource{Dataset: "YNG"}})
	if big.Units < 2*ds.Units {
		t.Fatalf("4096×100 cold sweep (%v units) should outweigh a cold dataset request (%v units)", big.Units, ds.Units)
	}
}

// Calibration anchor: the BENCH_6 2048×64 float64 kernel runs in ~17 ms,
// so its estimate must land within the same order of magnitude (one unit ≈
// one reference millisecond).
func TestEstimateCostCalibration(t *testing.T) {
	c := EstimateCost(costSynthReq(2048, 64, ""))
	if c.Network < 5 || c.Network > 60 {
		t.Fatalf("2048×64 sweep estimate = %v units, want ≈17 (same order)", c.Network)
	}
	if c.Units < c.Network {
		t.Fatalf("total %v < network share %v", c.Units, c.Network)
	}
}

func TestEstimateCostEdgeList(t *testing.T) {
	small := EstimateCost(&Request{Network: NetworkSource{EdgeList: "0 1\n1 2\n"}})
	big := EstimateCost(&Request{Network: NetworkSource{EdgeList: strings.Repeat("0 1\n", 100000)}})
	if small.Units >= big.Units {
		t.Fatalf("edge-list cost not monotone in size: %v vs %v", small.Units, big.Units)
	}
}

func TestDeadlineValidation(t *testing.T) {
	r := costSynthReq(64, 8, "")
	r.DeadlineMillis = -1
	if _, err := r.Normalized(); err == nil {
		t.Fatal("negative deadline_ms accepted")
	}
	r.DeadlineMillis = 250
	n, err := r.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if n.DeadlineMillis != 250 {
		t.Fatalf("deadline_ms = %d after normalization", n.DeadlineMillis)
	}
	// Deadlines are run parameters, not data identity.
	r2 := costSynthReq(64, 8, "")
	n2, _ := r2.Normalized()
	if n.Fingerprint() != n2.Fingerprint() {
		t.Fatal("deadline_ms changed the content fingerprint")
	}
}

func TestWrapErrorPreservesCause(t *testing.T) {
	cause := errors.New("root")
	e := WrapError(CodeBadRequest, cause, "outer: %v", cause)
	if !errors.Is(e, cause) {
		t.Fatal("errors.Is does not reach the cause")
	}
	var ae *Error
	if !errors.As(error(e), &ae) || ae.Code != CodeBadRequest {
		t.Fatal("errors.As lost the *Error")
	}
}
