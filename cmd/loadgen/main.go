// Command loadgen drives a running parsampled daemon through the traffic
// shapes the admission gate is built for and reports what came back:
// latency quantiles (p50/p95/p99), cache-hit rate, and the structured
// rejection breakdown by api.Error code.
//
// Phases (select with -phases, default all):
//
//	baseline   sequential warm repeats on an idle daemon — the reference
//	           latency the burst phase compares against
//	cold       -concurrency workers submitting distinct cold synthesis
//	           requests for -duration
//	warm       the same workers hammering one resident request
//	burst      a cold-heavy wave sized at -burst-factor × the daemon's
//	           admission budget (read from /statsz), fired at once, with
//	           warm interactive probes interleaved to measure latency
//	           under load; /statsz is polled for peak queue depth
//	slowloris  SSE consumers that connect to a job's event stream and
//	           read nothing, exercising the per-write-deadline shedding
//
// Exit status is non-zero when an assertion flag is violated:
//
//	-require-429     the burst phase must observe ≥ 1 structured 429
//	                 carrying Retry-After (the gate is actually gating)
//	-max-500 N       at most N HTTP 500s across the run (a 500 means an
//	                 internal error or an escaped panic; shedding uses
//	                 413/429/503/504, never 500)
//	-max-warm-slowdown R   burst-phase warm p99 ≤ R × baseline warm p99
//	-require-disk-hit      at least one 200 must be served from the
//	                 persistent disk tier (X-Parsample-Cache: disk) — the
//	                 warm-restart smoke assertion
//
// Every 200 is attributed to its cache source from the X-Parsample-Cache
// header — memory (hit), disk, or computed (miss) — and each phase reports
// the breakdown.
//
// Quick start (two terminals):
//
//	parsampled -addr :8080 -capacity-units 200
//	loadgen -addr http://localhost:8080 -duration 5s -require-429 -max-500 0
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"parsample/api"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	addr        string
	phases      map[string]bool
	duration    time.Duration
	concurrency int
	genes       int
	samples     int
	seed        int64
	burstFactor float64
	require429  bool
	max500      int
	maxSlowdown float64
	reqDiskHit  bool
	jsonOut     bool
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "http://localhost:8080", "daemon base URL")
		phases   = fs.String("phases", "baseline,cold,warm,burst,slowloris", "comma-separated phases to run")
		duration = fs.Duration("duration", 10*time.Second, "wall-time budget per timed phase")
		conc     = fs.Int("concurrency", 8, "workers per timed phase")
		genes    = fs.Int("genes", 256, "synthesis matrix height (drives per-request cost)")
		samples  = fs.Int("samples", 32, "synthesis matrix width")
		seed     = fs.Int64("seed", 1, "base seed; cold requests use seed+i so every request is a distinct fingerprint")
		burstF   = fs.Float64("burst-factor", 4, "burst wave size in multiples of the daemon's admission budget")
		req429   = fs.Bool("require-429", false, "fail unless the burst phase observes a structured 429 with Retry-After")
		max500   = fs.Int("max-500", -1, "fail when more than this many HTTP 500s are observed (-1: no assertion)")
		maxSlow  = fs.Float64("max-warm-slowdown", 0, "fail when burst-phase warm p99 exceeds this multiple of the baseline warm p99 (0: no assertion)")
		reqDisk  = fs.Bool("require-disk-hit", false, "fail unless at least one 200 is served from the persistent disk tier (X-Parsample-Cache: disk)")
		jsonOut  = fs.Bool("json", false, "emit the summary as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := config{
		addr: strings.TrimRight(*addr, "/"), duration: *duration, concurrency: *conc,
		genes: *genes, samples: *samples, seed: *seed, burstFactor: *burstF,
		require429: *req429, max500: *max500, maxSlowdown: *maxSlow, reqDiskHit: *reqDisk, jsonOut: *jsonOut,
		phases: make(map[string]bool),
	}
	for _, p := range strings.Split(*phases, ",") {
		cfg.phases[strings.TrimSpace(p)] = true
	}

	if err := waitHealthy(cfg.addr, 30*time.Second); err != nil {
		return err
	}
	g := &generator{cfg: cfg, client: &http.Client{Timeout: 120 * time.Second}}
	return g.runAll()
}

func waitHealthy(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s never became healthy: %v", addr, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// ---------------------------------------------------------------- request

func (g *generator) body(seed int64) string {
	return fmt.Sprintf(`{
		"network": {"synthesis": {"genes": %d, "samples": %d, "modules": 4, "moduleSize": 8, "seed": %d}},
		"filter": {"algorithm": "chordal-nocomm", "ordering": "HD", "p": 2, "seed": 3}
	}`, g.cfg.genes, g.cfg.samples, seed)
}

// estimate prices one generated request exactly as the daemon will: both
// sides share api.EstimateCost.
func (g *generator) estimate() float64 {
	var req api.Request
	if err := json.Unmarshal([]byte(g.body(g.cfg.seed)), &req); err != nil {
		return 1
	}
	return api.EstimateCost(&req).Units
}

// shot is one request's outcome.
type shot struct {
	status     int
	code       string // api.Error code on non-2xx
	cache      string // raw X-Parsample-Cache header: hit, disk or miss
	retryAfter bool
	latency    time.Duration
}

func (g *generator) fire(seed int64, client, priority string) shot {
	start := time.Now()
	req, err := http.NewRequest(http.MethodPost, g.cfg.addr+"/v1/pipeline", strings.NewReader(g.body(seed)))
	if err != nil {
		return shot{status: -1, latency: time.Since(start)}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Parsample-Client", client)
	if priority != "" {
		req.Header.Set("X-Parsample-Priority", priority)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return shot{status: -1, latency: time.Since(start)}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	s := shot{
		status:     resp.StatusCode,
		cache:      resp.Header.Get("X-Parsample-Cache"),
		retryAfter: resp.Header.Get("Retry-After") != "",
		latency:    time.Since(start),
	}
	if resp.StatusCode >= 400 {
		var ae api.Error
		if json.Unmarshal(bytes.TrimSpace(body), &ae) == nil {
			s.code = ae.Code
		}
	}
	return s
}

// ---------------------------------------------------------------- phases

type phaseReport struct {
	Phase      string         `json:"phase"`
	Requests   int            `json:"requests"`
	Statuses   map[string]int `json:"statuses"`
	Rejections map[string]int `json:"rejections,omitempty"`
	CacheHit   float64        `json:"cacheHitRate"`
	// Cache attributes each 200 to how the daemon obtained its artifacts:
	// memory (header "hit"), disk (persistent-tier load) or computed
	// (header "miss" — at least one kernel ran).
	Cache map[string]int `json:"cacheSources,omitempty"`
	P50MS float64        `json:"p50Ms"`
	P95MS float64        `json:"p95Ms"`
	P99MS float64        `json:"p99Ms"`
	Extra map[string]any `json:"extra,omitempty"`
	shots []shot         `json:"-"`
}

type generator struct {
	cfg    config
	client *http.Client

	reports []phaseReport

	baselineWarmP99 float64
	burstWarmP99    float64
	total500        int
	burst429        int
	totalDiskHits   int
}

func summarize(phase string, shots []shot, extra map[string]any) phaseReport {
	r := phaseReport{Phase: phase, Requests: len(shots), Statuses: map[string]int{}, Rejections: map[string]int{}, Cache: map[string]int{}, Extra: extra, shots: shots}
	var lats []float64
	hits := 0
	for _, s := range shots {
		r.Statuses[fmt.Sprint(s.status)]++
		if s.code != "" {
			r.Rejections[s.code]++
		}
		if s.status == http.StatusOK {
			lats = append(lats, float64(s.latency.Microseconds())/1000)
			switch s.cache {
			case "hit":
				hits++
				r.Cache["memory"]++
			case "disk":
				r.Cache["disk"]++
			default:
				r.Cache["computed"]++
			}
		}
	}
	if n := r.Statuses["200"]; n > 0 {
		r.CacheHit = float64(hits) / float64(n)
	}
	sort.Float64s(lats)
	r.P50MS, r.P95MS, r.P99MS = quantile(lats, 0.50), quantile(lats, 0.95), quantile(lats, 0.99)
	return r
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func (g *generator) runAll() error {
	order := []string{"baseline", "cold", "warm", "burst", "slowloris"}
	for _, phase := range order {
		if !g.cfg.phases[phase] {
			continue
		}
		var rep phaseReport
		switch phase {
		case "baseline":
			rep = g.phaseBaseline()
		case "cold":
			rep = g.phaseTimed("cold", true)
		case "warm":
			rep = g.phaseTimed("warm", false)
		case "burst":
			rep = g.phaseBurst()
		case "slowloris":
			rep = g.phaseSlowLoris()
		}
		for _, s := range rep.shots {
			if s.status == http.StatusInternalServerError {
				g.total500++
			}
			if s.status == http.StatusOK && s.cache == "disk" {
				g.totalDiskHits++
			}
		}
		g.reports = append(g.reports, rep)
	}
	g.print()
	return g.assert()
}

// phaseBaseline: one cold prime, then sequential warm repeats on the idle
// daemon. Its warm p99 is the burst comparison's denominator.
func (g *generator) phaseBaseline() phaseReport {
	prime := g.fire(g.cfg.seed, "loadgen-baseline", "")
	var shots []shot
	for i := 0; i < 50; i++ {
		shots = append(shots, g.fire(g.cfg.seed, "loadgen-baseline", ""))
	}
	rep := summarize("baseline", shots, map[string]any{"primeStatus": prime.status, "primeMs": float64(prime.latency.Microseconds()) / 1000})
	g.baselineWarmP99 = rep.P99MS
	return rep
}

// phaseTimed: -concurrency workers for -duration. cold gives every
// request a fresh seed (distinct fingerprint, full compute); warm hammers
// the primed request.
func (g *generator) phaseTimed(name string, cold bool) phaseReport {
	var mu sync.Mutex
	var shots []shot
	var next int64 = 1000
	if name == "warm" {
		g.fire(g.cfg.seed, "loadgen-warm-prime", "")
	}
	stop := time.Now().Add(g.cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < g.cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := fmt.Sprintf("loadgen-%s-%d", name, w)
			for time.Now().Before(stop) {
				seed := g.cfg.seed
				if cold {
					mu.Lock()
					next++
					seed = g.cfg.seed + next
					mu.Unlock()
				}
				s := g.fire(seed, client, "")
				mu.Lock()
				shots = append(shots, s)
				mu.Unlock()
				if s.status >= 400 {
					// Rejected: ease off instead of busy-spinning the
					// daemon's rejection fast path.
					time.Sleep(5 * time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	return summarize(name, shots, nil)
}

// phaseBurst: repeated synchronized cold-heavy waves, each sized
// burst-factor × the daemon's admission budget, fired back to back for
// -duration with warm interactive probes riding along the whole time.
// /statsz is polled throughout for peak queue depth.
func (g *generator) phaseBurst() phaseReport {
	st, err := g.statsz()
	if err != nil {
		return phaseReport{Phase: "burst", Extra: map[string]any{"error": err.Error()}}
	}
	capacity := st.Admission.CapacityUnits
	perReq := g.estimate()
	wave := int(math.Ceil(g.cfg.burstFactor * capacity / perReq))
	if wave < g.cfg.concurrency {
		wave = g.cfg.concurrency
	}
	if wave > 512 {
		wave = 512
	}
	// Prime one warm request for the in-load probes.
	g.fire(g.cfg.seed, "loadgen-burst-probe", "")

	var mu sync.Mutex
	var shots, warmShots []shot
	stopPoll := make(chan struct{})
	var peakQueue int
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stopPoll:
				return
			case <-time.After(50 * time.Millisecond):
				if st, err := g.statsz(); err == nil && st.Admission.QueueDepth > peakQueue {
					peakQueue = st.Admission.QueueDepth
				}
			}
		}
	}()
	// Warm interactive probes while the waves are in flight.
	probeStop := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		for {
			select {
			case <-probeStop:
				return
			case <-time.After(10 * time.Millisecond):
				s := g.fire(g.cfg.seed, "loadgen-burst-probe", "interactive")
				mu.Lock()
				warmShots = append(warmShots, s)
				mu.Unlock()
			}
		}
	}()

	var nextSeed int64 = 20000
	waves := 0
	stop := time.Now().Add(g.cfg.duration)
	for waves == 0 || time.Now().Before(stop) {
		waves++
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < wave; i++ {
			wg.Add(1)
			nextSeed++
			go func(i int, seed int64) {
				defer wg.Done()
				<-start
				s := g.fire(g.cfg.seed+seed, fmt.Sprintf("loadgen-burst-%d", i%g.cfg.concurrency), "batch")
				mu.Lock()
				shots = append(shots, s)
				mu.Unlock()
			}(i, nextSeed)
		}
		close(start)
		wg.Wait()
	}
	close(probeStop)
	probeWG.Wait()
	close(stopPoll)
	pollWG.Wait()

	warmRep := summarize("burst-warm-probes", warmShots, nil)
	g.burstWarmP99 = warmRep.P99MS
	for _, s := range shots {
		if s.status == http.StatusTooManyRequests && s.retryAfter {
			g.burst429++
		}
	}
	rep := summarize("burst", shots, map[string]any{
		"waves":           waves,
		"waveSize":        wave,
		"perRequestUnits": perReq,
		"capacityUnits":   capacity,
		"peakQueueDepth":  peakQueue,
		"queueLimit":      st.Admission.QueueLimit,
		"warmProbeP50Ms":  warmRep.P50MS,
		"warmProbeP99Ms":  warmRep.P99MS,
		"warmProbes":      warmRep.Requests,
	})
	rep.shots = append(rep.shots, warmShots...)
	return rep
}

// phaseSlowLoris: SSE consumers that subscribe to a job's event stream
// and never read, leaving the server's per-write deadline to shed them.
func (g *generator) phaseSlowLoris() phaseReport {
	before, _ := g.statsz()
	// A job with enough work to emit several frames.
	resp, err := g.client.Post(g.cfg.addr+"/v1/jobs", "application/json", strings.NewReader(g.body(g.cfg.seed+777)))
	if err != nil {
		return phaseReport{Phase: "slowloris", Extra: map[string]any{"error": err.Error()}}
	}
	var ji struct {
		ID string `json:"id"`
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(body, &ji); err != nil || ji.ID == "" {
		return phaseReport{Phase: "slowloris", Extra: map[string]any{"error": fmt.Sprintf("job submit: %d %s", resp.StatusCode, body)}}
	}
	const consumers = 4
	var wg sync.WaitGroup
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Connect and stall: no reads until the hold expires.
			resp, err := g.client.Get(g.cfg.addr + "/v1/jobs/" + ji.ID + "/events")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			hold := g.cfg.duration
			if hold > 5*time.Second {
				hold = 5 * time.Second
			}
			time.Sleep(hold)
			// Drain whatever survived; the server may have shed us long ago.
			br := bufio.NewReader(resp.Body)
			for {
				if _, err := br.ReadString('\n'); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	after, _ := g.statsz()
	extra := map[string]any{"consumers": consumers, "jobID": ji.ID}
	if before != nil && after != nil {
		extra["sseShedDelta"] = after.Admission.Shed.SSESlowConsumers - before.Admission.Shed.SSESlowConsumers
	}
	return phaseReport{Phase: "slowloris", Statuses: map[string]int{}, Extra: extra}
}

// ---------------------------------------------------------------- statsz

type statszBody struct {
	Admission struct {
		CapacityUnits float64          `json:"capacityUnits"`
		InUseUnits    float64          `json:"inUseUnits"`
		QueueDepth    int              `json:"queueDepth"`
		QueueLimit    int              `json:"queueLimit"`
		Admitted      int64            `json:"admitted"`
		Rejected      map[string]int64 `json:"rejected"`
		Shed          struct {
			ColdRequests     int64 `json:"coldRequests"`
			SSESlowConsumers int64 `json:"sseSlowConsumers"`
		} `json:"shed"`
		Level int `json:"level"`
	} `json:"admission"`
}

func (g *generator) statsz() (*statszBody, error) {
	resp, err := g.client.Get(g.cfg.addr + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st statszBody
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// ---------------------------------------------------------------- report

func (g *generator) print() {
	if g.cfg.jsonOut {
		out := struct {
			Phases          []phaseReport `json:"phases"`
			BaselineWarmP99 float64       `json:"baselineWarmP99Ms"`
			BurstWarmP99    float64       `json:"burstWarmP99Ms"`
			Burst429        int           `json:"burst429WithRetryAfter"`
			Total500        int           `json:"total500"`
			DiskHits        int           `json:"diskHits"`
		}{g.reports, g.baselineWarmP99, g.burstWarmP99, g.burst429, g.total500, g.totalDiskHits}
		b, _ := json.MarshalIndent(out, "", "  ")
		fmt.Println(string(b))
		return
	}
	for _, r := range g.reports {
		fmt.Printf("== %s: %d requests\n", r.Phase, r.Requests)
		if len(r.Statuses) > 0 {
			fmt.Printf("   statuses: %v\n", r.Statuses)
		}
		if len(r.Rejections) > 0 {
			fmt.Printf("   rejections: %v\n", r.Rejections)
		}
		if r.Requests > 0 {
			fmt.Printf("   cache-hit rate: %.2f  p50 %.1fms  p95 %.1fms  p99 %.1fms\n", r.CacheHit, r.P50MS, r.P95MS, r.P99MS)
			if len(r.Cache) > 0 {
				fmt.Printf("   cache sources: memory %d  disk %d  computed %d\n", r.Cache["memory"], r.Cache["disk"], r.Cache["computed"])
			}
		}
		if len(r.Extra) > 0 {
			b, _ := json.Marshal(r.Extra)
			fmt.Printf("   %s\n", b)
		}
	}
	if g.baselineWarmP99 > 0 && g.burstWarmP99 > 0 {
		fmt.Printf("== warm p99 under burst: %.1fms vs %.1fms unloaded (%.1fx)\n",
			g.burstWarmP99, g.baselineWarmP99, g.burstWarmP99/g.baselineWarmP99)
	}
}

func (g *generator) assert() error {
	var fails []string
	if g.cfg.require429 && g.burst429 == 0 {
		fails = append(fails, "burst phase observed no structured 429 with Retry-After")
	}
	if g.cfg.max500 >= 0 && g.total500 > g.cfg.max500 {
		fails = append(fails, fmt.Sprintf("observed %d HTTP 500s (max %d) — an internal error or escaped panic", g.total500, g.cfg.max500))
	}
	if g.cfg.maxSlowdown > 0 && g.baselineWarmP99 > 0 && g.burstWarmP99 > g.cfg.maxSlowdown*g.baselineWarmP99 {
		fails = append(fails, fmt.Sprintf("warm p99 under burst %.1fms exceeds %.1fx baseline %.1fms",
			g.burstWarmP99, g.cfg.maxSlowdown, g.baselineWarmP99))
	}
	if g.cfg.reqDiskHit && g.totalDiskHits == 0 {
		fails = append(fails, "no response was served from the persistent disk tier (X-Parsample-Cache: disk)")
	}
	if len(fails) > 0 {
		return fmt.Errorf("assertions failed:\n  - %s", strings.Join(fails, "\n  - "))
	}
	return nil
}
